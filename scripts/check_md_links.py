#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scans README.md, docs/*.md, and the other top-level .md files for inline
markdown links `[text](target)`, skips external schemes (http/https/mailto)
and pure in-page anchors, and verifies every relative target exists on disk
(anchors are stripped before the check). Exits non-zero listing the broken
links, so CI fails when a doc rename orphans a cross-reference.

Usage: python3 scripts/check_md_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(root):
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def check(root):
    broken = []
    checked = 0
    for path in markdown_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    for path, target in broken:
        print(f"BROKEN: {path} -> {target}")
    print(f"{checked} relative links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else os.getcwd()))
