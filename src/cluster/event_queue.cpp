#include "cluster/event_queue.h"

namespace hack {

void EventQueue::schedule(double time, Callback callback) {
  HACK_CHECK(time >= now_ - 1e-12,
             "event scheduled in the past: " << time << " < " << now_);
  queue_.push(Event{time, next_seq_++, std::move(callback)});
}

double EventQueue::run() {
  while (!queue_.empty()) {
    // Moving out of the priority queue requires a const_cast dance; copy the
    // callback instead (events are small).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.callback(now_);
  }
  return now_;
}

}  // namespace hack
