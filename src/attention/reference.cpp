#include "attention/reference.h"

#include <cmath>

#include "tensor/ops.h"

namespace hack {

Matrix attention_probs(const Matrix& q, const Matrix& k,
                       const AttentionOptions& options) {
  HACK_CHECK(q.cols() == k.cols(), "Q/K head dim mismatch");
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.cols()));
  Matrix scores = scale(matmul_nt(q, k), inv_sqrt_d);
  if (options.causal) {
    return softmax_rows_causal(scores, options.key_offset);
  }
  return softmax_rows(scores);
}

Matrix attention_reference(const Matrix& q, const Matrix& k, const Matrix& v,
                           const AttentionOptions& options) {
  HACK_CHECK(k.rows() == v.rows(), "K/V token count mismatch");
  return matmul(attention_probs(q, k, options), v);
}

}  // namespace hack
