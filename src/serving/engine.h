// Continuous-batching serving engine over shared-weight model sessions.
//
// One TinyModelWeights instance (model/session.h) serves every concurrent
// request; each admitted request gets a TinyModelSession (per-layer KV
// backends + position) built from a fresh LayerBackendFactory, so a
// sequence's backend seeding — and therefore its generated tokens — is
// identical to a solo run. Each engine step executes the scheduler's plan
// (serving/scheduler.h) layer by layer across all scheduled sequences:
//
//   step:  embed inputs per sequence
//          for each layer:
//            phase A  per-sequence norm/QKV/RoPE/KV-append   (pool tasks)
//            attend   all sequences' heads in ONE batched launch
//                     (MultiAttendBatch) when the backends are batched HACK
//                     layers; per-sequence attends otherwise (pool tasks)
//            phase B  per-sequence Wo/residual/SwiGLU        (pool tasks)
//          logits + greedy argmax for emitting sequences, bookkeeping
//
// The fused attend is where continuous batching feeds the thread pool: at
// decode shapes each sequence alone offers query_heads single-row work
// items, and a batch of N sequences turns the per-layer dispatch into
// N × query_heads items — multiple sequences' (head × q-band) tiles in one
// pool launch, instead of N engine calls back to back. Phase A/B tasks give
// the same cross-sequence parallelism to the dense projections, whose
// single-row GEMVs cannot split row-wise.
//
// Determinism contract (verified in tests/test_serving_engine.cpp, details
// in docs/serving.md): every per-task computation in the batched attention
// engine and every per-sequence phase touches only that sequence's state, so
// a request's tokens do not depend on what it was batched with, the thread
// count, or the engine's admission timing. With whole-prompt prefill
// (prefill_chunk_tokens >= prompt) tokens are bit-identical to a solo
// TinyTransformer::generate() even under stochastic rounding; with chunked
// prefill they are bit-identical to a solo run of the same chunk schedule
// (and to generate() under deterministic rounding).
//
// Timing is wall-clock: requests become visible at their arrival_time_s on
// the engine clock (run() start = 0), admission is FCFS against the
// scheduler's slot/KV-block limits, and TTFT/TBT/JCT are measured, not
// modeled.
//
// Tiered mode (scheduler.tiered, docs/serving.md "Tiered KV memory"): the
// worst-case FCFS block reservation is replaced by a KvTierManager
// (kvcache/tier_manager.h) — blocks are charged as tokens append, admission
// only requires that a request fit the pool alone, and under pressure the
// scheduler's deterministic priority function evicts whole sequences to a
// compressed far tier as kv_wire v2 blobs (bit-identical restore by the
// PR 5 contract). A speculative prefetcher deserializes predicted resumes
// on a background thread so swap-ins overlap step compute; prediction and
// the evict/resume schedule are pure functions of the submissions, so
// replays are bitwise (tests/test_kv_tiering.cpp), while stall/overlap
// timings are measurement only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kvcache/block_allocator.h"
#include "kvcache/tier_manager.h"
#include "metrics/stats.h"
#include "model/session.h"
#include "serving/request.h"
#include "serving/scheduler.h"

namespace hack {

struct ServingEngineConfig {
  SchedulerConfig scheduler;
  // Pool convention: 0 = auto (all shared-pool lanes), 1 = serial, N = cap.
  int threads = 0;
  // Fuse all sequences' layer attends into one MultiAttendBatch launch when
  // the backends expose a HackLayerKvState; per-sequence attends otherwise.
  bool fused_attention = true;
};

// One tier transition, in engine-schedule order. The sequence of events is
// a pure function of the submissions (no wall-clock in the policy), so two
// runs of the same workload produce bitwise-equal logs — the determinism
// property tests/test_kv_tiering.cpp and the chaos corpus replay-check.
struct SwapEvent {
  enum class Kind : std::uint8_t {
    kEvict,          // serialized to the far tier, hot blocks freed
    kResume,         // rehydrated and scheduled
    kPrefetchIssue,  // speculative deserialize started in the background
  };
  Kind kind = Kind::kEvict;
  std::size_t step = 0;        // engine iteration index
  std::uint64_t request = 0;   // ServingRequest::id
  std::size_t tokens = 0;      // KV rows at the transition
  bool prefetch_hit = false;   // kResume only: served by a staged prefetch

  friend bool operator==(const SwapEvent&, const SwapEvent&) = default;
};

// Work/occupancy counters of one run() episode.
struct ServingEngineStats {
  std::size_t steps = 0;              // engine iterations executed
  std::size_t fused_attend_launches = 0;  // MultiAttendBatch::run calls
  std::size_t prefill_chunks = 0;     // bounded prompt chunks processed
  std::size_t peak_running = 0;       // max concurrently admitted sequences
  std::size_t rejected = 0;           // requests that could never fit
  std::size_t kv_bytes_admitted = 0;  // block bytes reserved over the run
  std::size_t kv_bytes_released = 0;  // block bytes returned (finish/reject)

  // Tiered mode only: the tier manager's swap/prefetch counters and the
  // ordered transition log (empty otherwise).
  KvTierStats tier;
  std::vector<SwapEvent> swap_events;
};

// One run() episode's outcome: per-request records plus percentile rollups
// (metrics/stats.h) over the measured lifecycle.
struct ServingReport {
  std::vector<ServingRecord> requests;  // submit order

  double makespan_s = 0.0;          // first step to last finish
  std::size_t total_generated = 0;  // tokens across finished requests
  double tokens_per_s = 0.0;        // total_generated / makespan
  // Decode-side aggregate: tokens emitted during steps that carried at least
  // one decode row, over the wall time of those steps. This is the number
  // continuous batching is supposed to move (chunked prefill time it steals
  // from decodes is charged here, not hidden).
  double decode_tokens_per_s = 0.0;
  double decode_time_s = 0.0;
  // Steady-state variant over pure decode steps only (≥1 decode row, no
  // prefill chunk) — the apples-to-apples number against a serial loop's
  // decode phase, free of prefill interference.
  double pure_decode_tokens_per_s = 0.0;
  double pure_decode_time_s = 0.0;
  double goodput_rps = 0.0;         // finished requests / makespan

  SampleStats ttft_s;  // over finished requests
  SampleStats jct_s;   // over finished requests
  SampleStats tbt_s;   // pooled over all finished requests' token gaps

  ServingEngineStats engine;
};

class ServingEngine {
 public:
  // `make_backend_factory` is called once per admitted request; returning a
  // freshly seeded factory each time is what makes a request's generation
  // match its solo run. `allocator` (optional, caller-owned) enables KV
  // block admission control; null means slots-only admission.
  ServingEngine(std::shared_ptr<const TinyModelWeights> weights,
                std::function<LayerBackendFactory()> make_backend_factory,
                ServingEngineConfig config = {},
                BlockAllocator* allocator = nullptr);
  ~ServingEngine();

  const TinyModelWeights& weights() const { return *weights_; }
  const Scheduler& scheduler() const { return scheduler_; }

  // Queues a request. Submissions accumulate until run().
  void submit(ServingRequest request);

  // Serves every submitted, not-yet-finished request to completion and
  // returns the episode's report. The engine clock restarts at 0.
  ServingReport run();

 private:
  struct RunningSeq;
  struct StagedPrefetch;

  double now_s() const;
  void admit_arrivals(std::vector<std::size_t>& queued, double now);
  void execute_step(const StepPlan& plan);
  void finish_sequence(RunningSeq& seq, double now);

  // Tiered-mode step machinery (engine.cpp): executes a plan's evictions
  // and resumes, grows runners' hot footprints, then speculatively stages
  // the *next* plan's predicted resumes on background threads.
  std::vector<Scheduler::TieredSeqView> tiered_views() const;
  void evict_sequence(std::size_t run_idx);
  void resume_sequence(std::size_t run_idx);
  void issue_prefetch(std::size_t run_idx);
  void predict_and_prefetch(const std::vector<Scheduler::TieredSeqView>& views,
                            const TieredStepPlan& plan);
  StagedPrefetch* find_staged(std::size_t record_idx);
  void drop_staged(std::size_t record_idx);

  std::shared_ptr<const TinyModelWeights> weights_;
  std::function<LayerBackendFactory()> make_backend_factory_;
  ServingEngineConfig config_;
  Scheduler scheduler_;
  BlockAllocator* allocator_;  // not owned; may be null
  std::unique_ptr<KvTierManager> tier_;  // tiered mode only

  std::vector<ServingRecord> records_;
  std::vector<std::unique_ptr<RunningSeq>> running_;
  std::vector<std::unique_ptr<StagedPrefetch>> staged_;
  std::size_t next_ordinal_ = 0;
  ServingEngineStats stats_;
  double run_start_s_ = 0.0;  // steady-clock origin of the current episode
  std::size_t total_generated_ = 0;
  double decode_time_s_ = 0.0;
  std::size_t decode_step_tokens_ = 0;
  double pure_decode_time_s_ = 0.0;
  std::size_t pure_decode_tokens_ = 0;
};

}  // namespace hack
