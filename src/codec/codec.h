// KV codec interface and registry.
//
// A KvCodec turns a [tokens, d_head] K or V chunk into a self-describing byte
// blob and back. The baselines (CacheGen, KVQuant) compress through these
// codecs and must *dequantize before attention* — the cost HACK eliminates.
// Blob sizes feed the communication and memory models; reconstruction error
// feeds the accuracy experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tensor/matrix.h"

namespace hack {

enum class KvKind {
  kKey,
  kValue,
};

class KvCodec {
 public:
  virtual ~KvCodec() = default;

  virtual std::string name() const = 0;

  // Encodes a [tokens, d_head] chunk into a self-describing blob.
  virtual std::vector<std::uint8_t> encode(const Matrix& chunk, KvKind kind,
                                           Rng& rng) const = 0;

  // Decodes a blob back into the reconstructed (lossy) chunk.
  virtual Matrix decode(std::span<const std::uint8_t> blob) const = 0;
};

// Compression rate versus FP16 storage for a given chunk: 1 - blob/fp16.
double compression_vs_fp16(const Matrix& chunk, std::size_t blob_bytes);

// Codecs by paper name: "cachegen", "kvquant", "fp16" (identity baseline).
std::unique_ptr<KvCodec> make_codec(const std::string& name);

}  // namespace hack
