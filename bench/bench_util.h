// Shared helpers for the per-figure/table bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation:
// it runs the cluster simulator (JCT experiments) or the tiny transformer
// (accuracy experiments) and prints the same rows/series the paper reports,
// both human-readable and as csv-prefixed lines.
#pragma once

#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "metrics/report.h"

namespace hack::bench {

inline const std::vector<std::string>& prefill_gpus() {
  static const std::vector<std::string> gpus = {"A10G", "V100", "T4", "L4",
                                                "A100"};
  return gpus;
}

inline const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {"IMDb", "arXiv", "Cocktail",
                                                 "HumanEval"};
  return names;
}

// The model sweep of Fig. 1b / 3 / 11: M, P, Y, L on Cocktail; Falcon-180B
// cannot fit Cocktail's context (§2.1) and runs arXiv, labeled F-arXiv.
struct ModelScenario {
  std::string label;
  std::string model_letter;
  std::string dataset;
};

inline const std::vector<ModelScenario>& model_scenarios() {
  static const std::vector<ModelScenario> scenarios = {
      {"M", "M", "Cocktail"},  {"P", "P", "Cocktail"}, {"Y", "Y", "Cocktail"},
      {"L", "L", "Cocktail"},  {"F-arXiv", "F", "arXiv"},
  };
  return scenarios;
}

// Standard run size: large enough for stable averages, small enough that
// every bench binary finishes in seconds.
inline constexpr int kRequests = 48;
inline constexpr std::uint64_t kSeed = 2025;

inline SimSummary run(ClusterConfig config) {
  config.num_requests = kRequests;
  config.seed = kSeed;
  return run_cluster_sim(config);
}

}  // namespace hack::bench
