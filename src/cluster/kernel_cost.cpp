#include "cluster/kernel_cost.h"

#include <cmath>

#include "base/check.h"

namespace hack {
namespace {

// KV gathers through paged block tables sustain well under peak HBM
// bandwidth (scattered reads + block-table indirection).
constexpr double kKvGatherEfficiency = 0.06;

// Decode-side auxiliary-kernel cost factors, expressed relative to the time
// one full FP16 sweep of the KV cache takes at gather rate. This anchoring
// keeps the paper's accounting consistent: dequantization must (a) consume
// a double-digit share of JCT (Fig. 2-4) while (b) still leaving the codec
// methods ahead of the baseline on decode (§7.2) — which is only possible
// if its per-iteration cost sits just below one FP16 KV sweep.
constexpr double kDequantVsFp16Read = 0.70;    // codec dequant pass
constexpr double kConvertVsFp16Read = 0.40;    // mini-float -> FP16 cast
constexpr double kSumRecomputeVsFp16Read = 0.60;  // SE-off Σb' recompute
// Prefill-side quantization throughput (values/s per GPU): one fused pass.
constexpr double kQuantGValuesPerGpu = 1e9;
// Per-layer kernel-launch cost of the codecs' unfused dequantization passes
// (one for K, one for V per layer, each decode iteration). These launches
// are what makes dequantization a double-digit JCT share even at modest
// batch sizes (§2.2).
constexpr double kDequantLaunchPerLayerS = 40e-6;
// HACK's Eq. (4) epilogue runs inside the fused attention kernel; its fixed
// per-layer cost is a fraction of a launch.
constexpr double kApproxFloorPerLayerS = 2e-6;
// RQE-off: per-(layer, kv head) requantization round trip each iteration.
constexpr double kRequantUnitS = 12e-6;

}  // namespace

std::string method_name(Method m) {
  switch (m) {
    case Method::kBaseline: return "Baseline";
    case Method::kCacheGen: return "CacheGen";
    case Method::kKvQuant: return "KVQuant";
    case Method::kHack: return "HACK";
    case Method::kHackNoSE: return "HACK/SE";
    case Method::kHackNoRQE: return "HACK/RQE";
    case Method::kFp4: return "FP4";
    case Method::kFp6: return "FP6";
    case Method::kFp8: return "FP8";
  }
  return "?";
}

bool is_hack(Method m) {
  return m == Method::kHack || m == Method::kHackNoSE ||
         m == Method::kHackNoRQE;
}

bool is_dequant_codec(Method m) {
  return m == Method::kCacheGen || m == Method::kKvQuant;
}

bool is_minifloat(Method m) {
  return m == Method::kFp4 || m == Method::kFp6 || m == Method::kFp8;
}

MethodTraits method_traits(Method m, std::size_t pi, int kv_bits) {
  MethodTraits t;
  switch (m) {
    case Method::kBaseline:
      return t;
    case Method::kCacheGen:
      // Measured from codec/cachegen on correlated KV chunks (~86%
      // compression); tests pin the real codec into this band.
      t.wire_fraction = 0.139;
      t.mem_fraction = 0.139;
      t.dequant_per_step = true;
      return t;
    case Method::kKvQuant:
      t.wire_fraction = 0.143;
      t.mem_fraction = 0.141;
      t.dequant_per_step = true;
      return t;
    case Method::kHack:
    case Method::kHackNoSE:
    case Method::kHackNoRQE: {
      // Packed codes + FP16 (m, s) metadata per partition (+ INT16 sums when
      // SE stores them): bits/16 + (4 or 6 bytes)/(2·Π) of FP16 size.
      const double meta = 4.0 / (2.0 * static_cast<double>(pi));
      const double sums = 2.0 / (2.0 * static_cast<double>(pi));
      const double codes = static_cast<double>(kv_bits) / 16.0;
      const bool store_sums = m != Method::kHackNoSE;
      t.wire_fraction = codes + meta + (store_sums ? sums : 0.0);
      t.mem_fraction = t.wire_fraction;
      t.hack_approx = true;
      t.sum_recompute = m == Method::kHackNoSE;
      t.requant_per_step = m == Method::kHackNoRQE;
      t.int8_attention = true;
      t.tile_efficiency =
          static_cast<double>(pi) / (static_cast<double>(pi) + 32.0);
      return t;
    }
    case Method::kFp4:
    case Method::kFp6:
    case Method::kFp8: {
      const int bits = m == Method::kFp4 ? 4 : m == Method::kFp6 ? 6 : 8;
      t.wire_fraction = static_cast<double>(bits) / 16.0;
      t.mem_fraction = t.wire_fraction;
      // All formats must convert to FP16 before the matmul on the paper's
      // GPUs; FP8 additionally gets the simulated 2x matmul (§3).
      t.convert_per_step = 1.0;
      t.matmul_speedup = m == Method::kFp8 ? 2.0 : 1.0;
      return t;
    }
  }
  HACK_CHECK(false, "unhandled method");
  return t;
}

double KernelCostModel::effective_tflops(bool attention_math) const {
  const double pp_eff =
      1.0 / (1.0 + pp_bubble * static_cast<double>(plan.pp - 1));
  double per_gpu = gpu.fp16_tflops;
  double speedup = 1.0;
  if (attention_math) {
    if (traits.int8_attention && gpu.supports_int8()) {
      per_gpu = gpu.int8_tops;  // quantized matmuls ride INT8 tensor cores
    }
    speedup = traits.matmul_speedup;
    if (traits.int8_attention) {
      speedup *= traits.tile_efficiency;
    }
  }
  return per_gpu * 1e12 * speedup * mfu * static_cast<double>(plan.gpus()) *
         pp_eff;
}

double KernelCostModel::aggregate_mem_bw() const {
  return gpu.mem_bw_gbps * 1e9 * static_cast<double>(plan.gpus());
}

double KernelCostModel::vector_flops_per_s() const {
  return gpu.fp16_tflops * 1e12 * vector_eff * static_cast<double>(plan.gpus());
}

double KernelCostModel::prefill_s(double l_in) const {
  const double weight_flops = 2.0 * model.params * l_in;
  const double attn_flops = prefill_attention_flops(model, l_in);
  return weight_flops / effective_tflops(/*attention_math=*/false) +
         attn_flops / effective_tflops(/*attention_math=*/true);
}

double KernelCostModel::prefill_quant_s(double l_in) const {
  if (method == Method::kBaseline) return 0.0;
  const double kv_values =
      kv_bytes_fp16(model, l_in) / 2.0;  // produced K/V elements
  // Quantize K and V once (and for HACK, Q/P on the fly inside the fused
  // kernel — charged the same per-value rate).
  return kv_values /
         (kQuantGValuesPerGpu * static_cast<double>(plan.gpus()));
}

double KernelCostModel::kv_wire_bytes(double l_in) const {
  return kv_bytes_fp16(model, l_in) * traits.wire_fraction;
}

double KernelCostModel::decode_weight_read_s() const {
  // Every decode iteration streams the weights once per replica; TP splits
  // them across GPUs whose bandwidths add.
  return decode_overhead * model.weight_bytes_fp16() / aggregate_mem_bw();
}

double KernelCostModel::decode_kv_read_s(double l) const {
  return kv_mem_bytes(l) / (kKvGatherEfficiency * aggregate_mem_bw());
}

double KernelCostModel::decode_dequant_s(double l) const {
  const double fp16_sweep = kv_bytes_fp16(model, l) /
                            (kKvGatherEfficiency * aggregate_mem_bw());
  double s = 0.0;
  if (traits.dequant_per_step) {
    s += kDequantVsFp16Read * fp16_sweep;
  }
  if (traits.convert_per_step > 0.0) {
    // Mini-float -> FP16 conversion before the matmul (§3).
    s += traits.convert_per_step * kConvertVsFp16Read * fp16_sweep;
  }
  return s;
}

double KernelCostModel::decode_iter_fixed_s() const {
  const auto layers = static_cast<double>(model.layers);
  if (traits.dequant_per_step) {
    return 2.0 * layers * kDequantLaunchPerLayerS;  // K and V passes
  }
  if (traits.convert_per_step > 0.0) {
    return layers * kDequantLaunchPerLayerS;  // one cast pass per layer
  }
  if (traits.hack_approx) {
    double s = layers * kApproxFloorPerLayerS;
    if (traits.sum_recompute) {
      s += layers * kDequantLaunchPerLayerS;  // extra Σb' pass per layer
    }
    if (traits.requant_per_step) {
      // Dequantize + requantize the last block of V and resync the fused
      // kernel, per (layer, kv head), once per iteration (batch-wide pass).
      s += layers * static_cast<double>(model.kv_heads) * kRequantUnitS;
    }
    return s;
  }
  return 0.0;
}

double KernelCostModel::decode_approx_s(double l) const {
  if (!traits.hack_approx) return 0.0;
  double s = decode_hack_approx_flops(model, l) / vector_flops_per_s();
  if (traits.sum_recompute) {
    // Recomputing Σ b' re-reads every code and adds an unfused pass.
    s += kSumRecomputeVsFp16Read * kv_bytes_fp16(model, l) /
         (kKvGatherEfficiency * aggregate_mem_bw());
  }
  return s;
}

double KernelCostModel::decode_compute_s(double l) const {
  const double weight_flops = 2.0 * model.params;
  const double attn_flops = decode_step_attention_flops(model, l);
  return weight_flops / effective_tflops(false) +
         attn_flops / effective_tflops(true);
}

double KernelCostModel::decode_request_iter_s(double l) const {
  return decode_kv_read_s(l) + decode_dequant_s(l) + decode_approx_s(l) +
         decode_compute_s(l);
}

double KernelCostModel::kv_mem_bytes(double l_total) const {
  double bytes = kv_bytes_fp16(model, l_total) * traits.mem_fraction;
  if (method == Method::kHack || method == Method::kHackNoSE) {
    // RQE keeps the trailing (< Π, avg Π/2) tokens of V per (layer, head) in
    // FP16 (§7.4: 0.24-0.51% of capacity).
    bytes += static_cast<double>(model.layers * model.kv_heads) * 32.0 *
             static_cast<double>(model.d_head) * 2.0;
  }
  return bytes;
}

double KernelCostModel::weight_bytes_per_replica() const {
  return model.weight_bytes_fp16();
}

KernelCostModel make_cost_model(const ModelConfig& model, const GpuSpec& gpu,
                                Method method, std::size_t pi, int kv_bits) {
  KernelCostModel cost;
  cost.model = model;
  cost.gpu = gpu;
  cost.plan = parallelism_for(model, gpu.family);
  cost.traits = method_traits(method, pi, kv_bits);
  cost.method = method;
  return cost;
}

}  // namespace hack
