#include "model/flops.h"

#include "core/cost_model.h"

namespace hack {

double prefill_flops(const ModelConfig& m, double l) {
  // Weight matmuls: 2 flops per parameter per token.
  const double weight = 2.0 * m.params * l;
  return weight + prefill_attention_flops(m, l);
}

double prefill_attention_flops(const ModelConfig& m, double l) {
  // Causal attention touches ~L²/2 (query, key) pairs; Q·Kᵀ and P·V each
  // cost 2·d_head flops per pair per head.
  const double pairs = 0.5 * l * l;
  return 4.0 * pairs * static_cast<double>(m.d_head * m.heads * m.layers);
}

double decode_step_flops(const ModelConfig& m, double l) {
  const double weight = 2.0 * m.params;
  return weight + decode_step_attention_flops(m, l);
}

double decode_step_attention_flops(const ModelConfig& m, double l) {
  return 4.0 * l * static_cast<double>(m.d_head * m.heads * m.layers);
}

double kv_bytes_fp16(const ModelConfig& m, double l) {
  return m.kv_bytes_per_token_fp16() * l;
}

double decode_kv_read_bytes(const ModelConfig& m, double l,
                            double kv_compression) {
  return kv_bytes_fp16(m, l) * (1.0 - kv_compression);
}

double prefill_quant_flops(const ModelConfig& m, double l) {
  // One subtract-multiply-round per produced K/V element.
  const double kv_values =
      2.0 * l * static_cast<double>(m.layers * m.kv_heads * m.d_head);
  return 3.0 * kv_values;
}

double decode_dequant_flops(const ModelConfig& m, double l) {
  // 4·d_h·L per (layer, kv head): one FMA per K and V element (§5.3).
  return static_cast<double>(m.layers * m.kv_heads) *
         static_cast<double>(decode_dequant_flops(
             static_cast<std::int64_t>(m.d_head), static_cast<std::int64_t>(l)));
}

double decode_hack_approx_flops(const ModelConfig& m, double l) {
  // 10(d_h + L) per (layer, attention head): both HQ matmuls of the step.
  return static_cast<double>(m.layers * m.heads) *
         static_cast<double>(decode_approx_flops_se(
             static_cast<std::int64_t>(m.d_head), static_cast<std::int64_t>(l)));
}

double decode_sum_recompute_flops(const ModelConfig& m, double l) {
  return static_cast<double>(m.layers * m.kv_heads) *
         static_cast<double>(hack::decode_sum_recompute_flops(
             static_cast<std::int64_t>(m.d_head), static_cast<std::int64_t>(l)));
}

}  // namespace hack
