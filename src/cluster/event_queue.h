// Deterministic discrete-event engine.
//
// Events are (time, sequence) ordered; equal-time events fire in insertion
// order so simulation runs are bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/check.h"

namespace hack {

class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  void schedule(double time, Callback callback);

  // Runs events until the queue drains. Returns the time of the last event.
  double run();

  double now() const { return now_; }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  std::size_t processed_ = 0;
};

}  // namespace hack
