#include <gtest/gtest.h>

#include <cmath>

#include "metrics/tensor_metrics.h"
#include "quant/quantizer.h"

namespace hack {
namespace {

TEST(Quantizer, CodesWithinRange) {
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(8, 64, rng);
  for (const int bits : {2, 4, 8}) {
    Rng qrng(2);
    const QuantizedMatrix q =
        quantize(m, bits, 16, QuantAxis::kRow, Rounding::kStochastic, qrng);
    for (const std::uint8_t code : q.codes) {
      EXPECT_LT(code, 1u << bits);
    }
  }
}

TEST(Quantizer, RoundTripErrorBoundedByScale) {
  Rng rng(3);
  const Matrix m = Matrix::random_gaussian(16, 128, rng, 2.0f);
  Rng qrng(4);
  const QuantizedMatrix q =
      quantize(m, 2, 32, QuantAxis::kRow, Rounding::kStochastic, qrng);
  const Matrix recon = dequantize(q);
  EXPECT_LE(max_abs_diff(recon, m), max_abs_error_bound(q));
}

TEST(Quantizer, NearestRoundingErrorHalfStep) {
  Rng rng(5);
  const Matrix m = Matrix::random_gaussian(8, 64, rng);
  Rng qrng(6);
  const QuantizedMatrix q =
      quantize(m, 8, 16, QuantAxis::kRow, Rounding::kNearest, qrng);
  const Matrix recon = dequantize(q);
  // Nearest rounding: error <= scale/2 (+ FP16 metadata slack).
  const std::size_t groups = q.group_count();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const float s = q.scale_of(r, c / 16);
      EXPECT_LE(std::fabs(recon(r, c) - m(r, c)), 0.5f * s + 0.01f)
          << r << "," << c << " groups=" << groups;
    }
  }
}

TEST(Quantizer, ExactOnConstantPartitions) {
  // A constant partition has scale 0; dequantization returns the constant.
  Matrix m(4, 32, 3.25f);
  Rng qrng(7);
  const QuantizedMatrix q =
      quantize(m, 2, 16, QuantAxis::kRow, Rounding::kStochastic, qrng);
  const Matrix recon = dequantize(q);
  for (const float v : recon.flat()) EXPECT_EQ(v, 3.25f);
}

TEST(Quantizer, ExtremesRepresentedExactly) {
  // Partition min maps to code 0 and max to the top code; both reconstruct
  // to within FP16 metadata precision.
  Matrix m(1, 16);
  for (std::size_t c = 0; c < 16; ++c) {
    m(0, c) = static_cast<float>(c);  // min 0, max 15
  }
  Rng qrng(8);
  const QuantizedMatrix q =
      quantize(m, 4, 16, QuantAxis::kRow, Rounding::kNearest, qrng);
  const Matrix recon = dequantize(q);
  EXPECT_NEAR(recon(0, 0), 0.0f, 1e-3f);
  EXPECT_NEAR(recon(0, 15), 15.0f, 0.02f);
}

TEST(Quantizer, ColumnAxisPartitionsColumns) {
  // Distinct column statistics must yield distinct per-column metadata.
  Matrix m(32, 2);
  for (std::size_t r = 0; r < 32; ++r) {
    m(r, 0) = static_cast<float>(r);         // [0, 31]
    m(r, 1) = 100.0f + static_cast<float>(r);  // [100, 131]
  }
  Rng qrng(9);
  const QuantizedMatrix q =
      quantize(m, 2, 32, QuantAxis::kCol, Rounding::kNearest, qrng);
  EXPECT_EQ(q.group_count(), 1u);
  EXPECT_NEAR(q.min_of(0, 0), 0.0f, 0.01f);
  EXPECT_NEAR(q.min_of(1, 0), 100.0f, 0.1f);
}

TEST(Quantizer, StochasticRoundingIsUnbiasedPerElement) {
  // Averaging many stochastic quantizations approaches the source value.
  Matrix m(1, 16);
  for (std::size_t c = 0; c < 16; ++c) m(0, c) = 0.1f * static_cast<float>(c);
  Rng qrng(10);
  Matrix sum(1, 16, 0.0f);
  constexpr int kRuns = 3000;
  for (int run = 0; run < kRuns; ++run) {
    const QuantizedMatrix q =
        quantize(m, 2, 16, QuantAxis::kRow, Rounding::kStochastic, qrng);
    const Matrix recon = dequantize(q);
    for (std::size_t c = 0; c < 16; ++c) sum(0, c) += recon(0, c);
  }
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(sum(0, c) / kRuns, m(0, c), 0.02f) << c;
  }
}

TEST(Quantizer, FinerPartitionsReduceError) {
  Rng rng(11);
  // Heavy-tailed data: per-partition ranges shrink with finer partitions.
  Matrix m = Matrix::random_gaussian(8, 128, rng, 1.0f);
  for (std::size_t i = 0; i < m.size(); i += 17) m.flat()[i] *= 4.0f;
  double err_by_pi[3] = {0, 0, 0};
  const std::size_t pis[3] = {32, 64, 128};
  for (int p = 0; p < 3; ++p) {
    Rng qrng(12);
    const QuantizedMatrix q = quantize(m, 2, pis[p], QuantAxis::kRow,
                                       Rounding::kStochastic, qrng);
    err_by_pi[p] = relative_l2(dequantize(q), m);
  }
  EXPECT_LT(err_by_pi[0], err_by_pi[1]);
  EXPECT_LT(err_by_pi[1], err_by_pi[2]);
}

TEST(Quantizer, MoreBitsReduceError) {
  Rng rng(13);
  const Matrix m = Matrix::random_gaussian(8, 64, rng);
  double errs[3] = {0, 0, 0};
  const int bits[3] = {2, 4, 8};
  for (int i = 0; i < 3; ++i) {
    Rng qrng(14);
    const QuantizedMatrix q = quantize(m, bits[i], 16, QuantAxis::kRow,
                                       Rounding::kStochastic, qrng);
    errs[i] = relative_l2(dequantize(q), m);
  }
  EXPECT_LT(errs[1], errs[0]);
  EXPECT_LT(errs[2], errs[1]);
}

TEST(Quantizer, PackedBytesMatchFormula) {
  Rng rng(15);
  const Matrix m = Matrix::random_gaussian(10, 64, rng);
  Rng qrng(16);
  const QuantizedMatrix q =
      quantize(m, 2, 16, QuantAxis::kRow, Rounding::kStochastic, qrng);
  // 64 codes * 2 bits = 16 bytes per row; 10 rows.
  EXPECT_EQ(q.packed_code_bytes(), 160u);
  // 4 groups * 10 rows * (min + scale) * 2 bytes.
  EXPECT_EQ(q.metadata_bytes(), 160u);
  EXPECT_EQ(q.stored_bytes(), 320u);
}

TEST(Quantizer, AppendRowsPreservesOldMetadata) {
  Rng rng(17);
  const Matrix a = Matrix::random_gaussian(4, 64, rng);
  const Matrix b = Matrix::random_gaussian(2, 64, rng);
  Rng qrng(18);
  QuantizedMatrix qa =
      quantize(a, 2, 32, QuantAxis::kRow, Rounding::kStochastic, qrng);
  const std::vector<float> mins_before = qa.mins;
  const QuantizedMatrix qb =
      quantize(b, 2, 32, QuantAxis::kRow, Rounding::kStochastic, qrng);
  append_rows(qa, qb);
  EXPECT_EQ(qa.rows, 6u);
  for (std::size_t i = 0; i < mins_before.size(); ++i) {
    EXPECT_EQ(qa.mins[i], mins_before[i]);
  }
  // Reconstruction equals per-part reconstructions stacked.
  const Matrix recon = dequantize(qa);
  EXPECT_EQ(recon.rows(), 6u);
}

TEST(Quantizer, AppendInnerGroupsGrowsColumns) {
  Rng rng(19);
  const Matrix a = Matrix::random_gaussian(32, 8, rng);
  const Matrix b = Matrix::random_gaussian(32, 8, rng);
  Rng qrng(20);
  QuantizedMatrix qa =
      quantize(a, 2, 32, QuantAxis::kCol, Rounding::kStochastic, qrng);
  const QuantizedMatrix qb =
      quantize(b, 2, 32, QuantAxis::kCol, Rounding::kStochastic, qrng);
  const Matrix ra = dequantize(qa);
  const Matrix rb = dequantize(qb);
  append_inner_groups(qa, qb);
  EXPECT_EQ(qa.rows, 64u);
  EXPECT_EQ(qa.group_count(), 2u);
  const Matrix merged = dequantize(qa);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(merged(r, c), ra(r, c));
      EXPECT_EQ(merged(32 + r, c), rb(r, c));
    }
  }
}

TEST(Quantizer, AppendInnerGroupsRejectsPartialPartitions) {
  Rng rng(21);
  const Matrix a = Matrix::random_gaussian(32, 4, rng);
  const Matrix partial = Matrix::random_gaussian(20, 4, rng);
  Rng qrng(22);
  QuantizedMatrix qa =
      quantize(a, 2, 32, QuantAxis::kCol, Rounding::kStochastic, qrng);
  const QuantizedMatrix qp = quantize(partial, 2, 32, QuantAxis::kCol,
                                      Rounding::kStochastic, qrng,
                                      /*allow_ragged_tail=*/true);
  EXPECT_THROW(append_inner_groups(qa, qp), CheckError);
}

struct QuantCase {
  int bits;
  std::size_t pi;
  std::size_t rows;
  std::size_t cols;
  int axis;  // 0 = row, 1 = col
};

class QuantizerSweep : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantizerSweep, RoundTripWithinBound) {
  const auto param = GetParam();
  Rng rng(100 + param.bits);
  const Matrix m =
      Matrix::random_gaussian(param.rows, param.cols, rng, 1.5f);
  Rng qrng(200 + param.pi);
  const QuantizedMatrix q =
      quantize(m, param.bits, param.pi,
               param.axis == 0 ? QuantAxis::kRow : QuantAxis::kCol,
               Rounding::kStochastic, qrng, /*allow_ragged_tail=*/true);
  EXPECT_EQ(q.rows, param.rows);
  EXPECT_EQ(q.cols, param.cols);
  const Matrix recon = dequantize(q);
  EXPECT_LE(max_abs_diff(recon, m), max_abs_error_bound(q));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantizerSweep,
    ::testing::Values(QuantCase{2, 32, 7, 96, 0}, QuantCase{2, 64, 1, 128, 0},
                      QuantCase{2, 128, 3, 128, 0}, QuantCase{4, 16, 5, 80, 0},
                      QuantCase{8, 64, 2, 64, 0}, QuantCase{2, 32, 96, 7, 1},
                      QuantCase{2, 64, 130, 5, 1}, QuantCase{4, 16, 50, 3, 1},
                      QuantCase{8, 32, 64, 2, 1},
                      QuantCase{2, 64, 100, 128, 0}));

TEST(Quantizer, ParallelPathDeterministicAcrossThreadRequests) {
  // Above kParallelQuantizeMinValues the outer-slice loop moves onto the
  // shared pool with one sub-Rng forked per slice; the codes must depend
  // only on the seed, never on the requested thread count or pool size.
  Rng rng(40);
  const Matrix m = Matrix::random_gaussian(1200, 128, rng);  // 153k values
  ASSERT_GE(m.size(), kParallelQuantizeMinValues);
  Rng r1(41), r2(41), r3(41);
  const QuantizedMatrix serial =
      quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, r1,
               /*allow_ragged_tail=*/false, /*threads=*/1);
  const QuantizedMatrix auto_threads =
      quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, r2,
               /*allow_ragged_tail=*/false, /*threads=*/0);
  const QuantizedMatrix three =
      quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, r3,
               /*allow_ragged_tail=*/false, /*threads=*/3);
  EXPECT_EQ(serial.codes, auto_threads.codes);
  EXPECT_EQ(serial.mins, auto_threads.mins);
  EXPECT_EQ(serial.scales, auto_threads.scales);
  EXPECT_EQ(serial.codes, three.codes);

  // And the callers' master streams advanced identically.
  EXPECT_EQ(r1.next_u64(), r2.next_u64());

  // Col-axis too (the V-cache layout).
  Rng c1(42), c2(42);
  const QuantizedMatrix col_serial =
      quantize(m, 2, 64, QuantAxis::kCol, Rounding::kStochastic, c1,
               /*allow_ragged_tail=*/true, /*threads=*/1);
  const QuantizedMatrix col_auto =
      quantize(m, 2, 64, QuantAxis::kCol, Rounding::kStochastic, c2,
               /*allow_ragged_tail=*/true, /*threads=*/0);
  EXPECT_EQ(col_serial.codes, col_auto.codes);

  // dequantize parallelizes over rows; serial and pooled must agree exactly.
  const Matrix d1 = dequantize(serial, /*threads=*/1);
  const Matrix d0 = dequantize(serial, /*threads=*/0);
  EXPECT_TRUE(d1 == d0);
}

TEST(Quantizer, PackStorageRoundTripsAndIndexes) {
  // pack_storage rewrites .codes in place to the bit-packed resident layout;
  // code_at must read the same values either way, dequantize must be
  // bit-identical, and unpack_storage must restore the original byte vector.
  Rng rng(50);
  for (const int bits : {2, 4}) {
    // 96 cols: (cols * bits) % 8 == 0, the KV-plane shape (flat pack).
    // 13 cols at 2-bit: padded rows, the per-row subspan pack.
    for (const std::size_t cols : {std::size_t{96}, std::size_t{13}}) {
      const Matrix m = Matrix::random_gaussian(9, cols, rng);
      Rng qrng(51);
      QuantizedMatrix q = quantize(m, bits, 16, QuantAxis::kRow,
                                   Rounding::kStochastic, qrng,
                                   /*allow_ragged_tail=*/true);
      const std::vector<std::uint8_t> byte_codes = q.codes;
      const Matrix recon_bytes = dequantize(q);

      pack_storage(q);
      EXPECT_EQ(q.storage_bits, bits);
      EXPECT_EQ(q.codes.size(), q.rows * q.code_row_stride());
      EXPECT_LT(q.codes.size(), byte_codes.size());
      for (std::size_t r = 0; r < q.rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          ASSERT_EQ(q.code_at(r, c), byte_codes[r * cols + c])
              << "bits=" << bits << " cols=" << cols << " (" << r << "," << c
              << ")";
        }
      }
      const Matrix recon_packed = dequantize(q);
      EXPECT_TRUE(recon_packed == recon_bytes);

      pack_storage(q);  // idempotent on already-packed storage
      EXPECT_EQ(q.storage_bits, bits);

      unpack_storage(q);
      EXPECT_EQ(q.storage_bits, 8);
      EXPECT_EQ(q.codes, byte_codes) << "bits=" << bits << " cols=" << cols;
    }
  }
}

TEST(Quantizer, PackStorageEightBitIsNoOp) {
  Rng rng(52);
  const Matrix m = Matrix::random_gaussian(4, 32, rng);
  Rng qrng(53);
  QuantizedMatrix q =
      quantize(m, 8, 16, QuantAxis::kRow, Rounding::kStochastic, qrng);
  const std::vector<std::uint8_t> before = q.codes;
  pack_storage(q);
  EXPECT_EQ(q.storage_bits, 8);
  EXPECT_EQ(q.codes, before);
}

TEST(Quantizer, AppendRowsRequiresMatchingStorage) {
  // Row append concatenates code storage; mixing packed and byte planes
  // would corrupt the layout, so it must be rejected — and packed-to-packed
  // appends must equal pack(append(unpacked)).
  Rng rng(54);
  const Matrix a = Matrix::random_gaussian(4, 64, rng);
  const Matrix b = Matrix::random_gaussian(3, 64, rng);
  Rng q1(55), q2(55);
  QuantizedMatrix qa_bytes =
      quantize(a, 2, 32, QuantAxis::kRow, Rounding::kStochastic, q1);
  QuantizedMatrix qb_bytes =
      quantize(b, 2, 32, QuantAxis::kRow, Rounding::kStochastic, q1);
  QuantizedMatrix qa_packed =
      quantize(a, 2, 32, QuantAxis::kRow, Rounding::kStochastic, q2);
  QuantizedMatrix qb_packed =
      quantize(b, 2, 32, QuantAxis::kRow, Rounding::kStochastic, q2);
  pack_storage(qa_packed);
  pack_storage(qb_packed);

  QuantizedMatrix mixed = qa_packed;
  EXPECT_THROW(append_rows(mixed, qb_bytes), CheckError);

  append_rows(qa_bytes, qb_bytes);
  append_rows(qa_packed, qb_packed);
  pack_storage(qa_bytes);
  EXPECT_EQ(qa_packed.codes, qa_bytes.codes);
  EXPECT_EQ(qa_packed.rows, 7u);
}

}  // namespace
}  // namespace hack
