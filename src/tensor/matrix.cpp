#include "tensor/matrix.h"

#include "tensor/half.h"

namespace hack {

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              float lo, float hi) {
  HACK_CHECK(lo <= hi, "invalid uniform range");
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = lo + (hi - lo) * rng.next_float();
  }
  return m;
}

Matrix Matrix::random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                               float stddev) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = stddev * static_cast<float>(rng.next_gaussian());
  }
  return m;
}

void Matrix::round_to_fp16() {
  for (float& v : data_) {
    v = fp16_round(v);
  }
}

Matrix Tensor3::slice(std::size_t i) const {
  HACK_CHECK(i < d0_, "slice " << i << " out of " << d0_);
  Matrix m(d1_, d2_);
  for (std::size_t j = 0; j < d1_; ++j) {
    for (std::size_t k = 0; k < d2_; ++k) {
      m(j, k) = (*this)(i, j, k);
    }
  }
  return m;
}

void Tensor3::set_slice(std::size_t i, const Matrix& m) {
  HACK_CHECK(i < d0_, "slice " << i << " out of " << d0_);
  HACK_CHECK(m.rows() == d1_ && m.cols() == d2_, "slice shape mismatch");
  for (std::size_t j = 0; j < d1_; ++j) {
    for (std::size_t k = 0; k < d2_; ++k) {
      (*this)(i, j, k) = m(j, k);
    }
  }
}

}  // namespace hack
