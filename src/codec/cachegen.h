// CacheGen-style KV codec: quantize, then entropy-code exploiting the
// distributional properties of KV data.
//
// Adjacent tokens' K/V vectors are highly correlated, so after per-partition
// 2-bit asymmetric quantization the codec delta-codes each channel across
// tokens and Rice-codes the zigzagged deltas with a per-chunk optimal k.
// Metadata (FP16 min/scale per partition) is stored raw. This reproduces
// CacheGen's "encode KV into compact bitstreams" approach with a real
// encoder/decoder, real compression rates (~85-88% vs FP16) and a real
// decode cost.
#pragma once

#include "codec/codec.h"

namespace hack {

class CacheGenCodec : public KvCodec {
 public:
  explicit CacheGenCodec(int bits = 2, std::size_t pi = 64)
      : bits_(bits), pi_(pi) {}

  std::string name() const override { return "cachegen"; }
  std::vector<std::uint8_t> encode(const Matrix& chunk, KvKind kind,
                                   Rng& rng) const override;
  Matrix decode(std::span<const std::uint8_t> blob) const override;

 private:
  int bits_;
  std::size_t pi_;
};

}  // namespace hack
