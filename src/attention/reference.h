// Reference scaled-dot-product attention (Eq. 2–3), exact float arithmetic.
//
// O = softmax(Q·Kᵀ / √d_h) · V, optionally causal. Q is [L_Q, d_h]; K and V
// are [L_KV, d_h] with one token per row. This is the golden model every
// other attention kernel in the library is tested against.
#pragma once

#include "tensor/matrix.h"

namespace hack {

struct AttentionOptions {
  bool causal = true;
  // Index of the first query row relative to the key timeline. During decode
  // the single query row sits at position L_KV - 1, so key_offset = L_KV - 1.
  // During prefill over a whole prompt, key_offset = 0.
  std::size_t key_offset = 0;
};

// Full-precision attention output [L_Q, d_h].
Matrix attention_reference(const Matrix& q, const Matrix& k, const Matrix& v,
                           const AttentionOptions& options = {});

// The intermediate attention probability matrix P (softmaxed scores), exposed
// for tests and for the quantized kernels that re-use the exact softmax.
Matrix attention_probs(const Matrix& q, const Matrix& k,
                       const AttentionOptions& options = {});

}  // namespace hack
