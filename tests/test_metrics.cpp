#include <gtest/gtest.h>

#include <sstream>

#include "base/check.h"

#include "metrics/report.h"
#include "metrics/stats.h"
#include "metrics/text_metrics.h"

namespace hack {
namespace {

TEST(Rouge1, IdenticalSequencesScoreOne) {
  const std::vector<int> s = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rouge1_f1(s, s), 1.0);
}

TEST(Rouge1, DisjointSequencesScoreZero) {
  EXPECT_DOUBLE_EQ(rouge1_f1({1, 2}, {3, 4}), 0.0);
}

TEST(Rouge1, KnownOverlap) {
  // candidate {1,2,3}, reference {2,3,4,5}: overlap 2,
  // precision 2/3, recall 2/4 -> F1 = 2*(2/3)*(1/2)/(2/3+1/2) = 4/7.
  EXPECT_NEAR(rouge1_f1({1, 2, 3}, {2, 3, 4, 5}), 4.0 / 7.0, 1e-12);
}

TEST(Rouge1, ClippedCounts) {
  // Repeating a token in the candidate cannot inflate overlap past the
  // reference count: overlap 1, precision 1/4, recall 1/4 -> F1 = 1/4.
  EXPECT_NEAR(rouge1_f1({7, 7, 7, 7}, {7, 1, 2, 3}), 0.25, 1e-12);
}

TEST(Rouge1, EmptyEdgeCases) {
  EXPECT_DOUBLE_EQ(rouge1_f1({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(rouge1_f1({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(rouge1_f1({1}, {}), 0.0);
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 3}), 1u);        // delete
  EXPECT_EQ(edit_distance({1, 3}, {1, 2, 3}), 1u);        // insert
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 9, 3}), 1u);     // substitute
  EXPECT_EQ(edit_distance({}, {1, 2, 3}), 3u);
  // "kitten" -> "sitting" classic: 3.
  EXPECT_EQ(edit_distance({'k', 'i', 't', 't', 'e', 'n'},
                          {'s', 'i', 't', 't', 'i', 'n', 'g'}),
            3u);
}

TEST(EditDistance, SymmetryAndTriangle) {
  const std::vector<int> a = {1, 2, 3, 4, 5};
  const std::vector<int> b = {2, 3, 4, 6};
  const std::vector<int> c = {9, 2, 3};
  EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  EXPECT_LE(edit_distance(a, c),
            edit_distance(a, b) + edit_distance(b, c));
}

TEST(EditSimilarity, NormalizedToUnitInterval) {
  EXPECT_DOUBLE_EQ(edit_similarity({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(edit_similarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(edit_similarity({}, {}), 1.0);
  EXPECT_NEAR(edit_similarity({1, 2, 3, 4}, {1, 2, 3, 9}), 0.75, 1e-12);
}

TEST(PrefixAgreement, MeasuresDivergencePoint) {
  EXPECT_DOUBLE_EQ(prefix_agreement({1, 2, 3, 4}, {1, 2, 9, 9}), 0.5);
  EXPECT_DOUBLE_EQ(prefix_agreement({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(prefix_agreement({9}, {1, 2}), 0.0);
}

TEST(Stats, KnownDistribution) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const SampleStats s = compute_stats(xs);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
  EXPECT_GT(s.stddev, 28.0);
  EXPECT_LT(s.stddev, 29.5);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 1.0), 20.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(compute_stats({}), CheckError);
  EXPECT_THROW(percentile({}, 0.5), CheckError);
}

TEST(Report, TableFormatsRowsAndCsv) {
  Table t("Demo");
  t.header({"name", "value"});
  t.row({"alpha", "1.00"});
  t.row({"beta", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("csv,Demo,beta,2.50"), std::string::npos);
}

TEST(Report, RowWidthValidated) {
  Table t("Bad");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), CheckError);
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(pct(0.415), "41.5%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace hack
