#include "serving/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.h"
#include "netsim/transfer.h"

namespace hack {
namespace {

// A contiguous byte span of the blob carried by one transfer chunk (the
// same framing DisaggEngine uses — retransmissions address these ranges).
struct ChunkRange {
  std::size_t off = 0;
  std::size_t len = 0;
};

std::vector<ChunkRange> chunk_ranges(std::size_t bytes, int chunks) {
  std::vector<ChunkRange> ranges(static_cast<std::size_t>(chunks));
  for (int i = 0; i < chunks; ++i) {
    const std::size_t begin = bytes * static_cast<std::size_t>(i) /
                              static_cast<std::size_t>(chunks);
    const std::size_t end = bytes * (static_cast<std::size_t>(i) + 1) /
                            static_cast<std::size_t>(chunks);
    ranges[static_cast<std::size_t>(i)] = {begin, end - begin};
  }
  return ranges;
}

void corrupt_range(std::vector<std::uint8_t>& wire, const ChunkRange& range,
                   std::uint64_t entropy) {
  if (range.len == 0) return;
  const std::size_t byte =
      range.off + static_cast<std::size_t>(entropy % range.len);
  const unsigned bit = static_cast<unsigned>((entropy >> 32) % 8);
  wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

// Lower is better; policies never see kDown workers but rank them anyway so
// a custom policy handed a full snapshot set stays well-defined.
int health_rank(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return 0;
    case WorkerHealth::kRecovering:
      return 1;
    case WorkerHealth::kSuspect:
      return 2;
    case WorkerHealth::kDown:
      return 3;
  }
  return 4;
}

int best_rank(std::span<const WorkerSnapshot> candidates) {
  int best = 4;
  for (const WorkerSnapshot& s : candidates) {
    best = std::min(best, health_rank(s.health));
  }
  return best;
}

}  // namespace

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kSuspect:
      return "suspect";
    case WorkerHealth::kDown:
      return "down";
    case WorkerHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

std::size_t dispatch_round_robin(const DispatchContext& context,
                                 std::span<const WorkerSnapshot> candidates) {
  HACK_CHECK(!candidates.empty(), "dispatch over an empty candidate set");
  const int best = best_rank(candidates);
  const std::size_t n = candidates.size();
  for (std::size_t k = 0; k < n; ++k) {
    const WorkerSnapshot& s =
        candidates[(context.rr_cursor + k) % n];
    if (health_rank(s.health) == best) return s.index;
  }
  return candidates[0].index;  // unreachable: best came from candidates
}

std::size_t dispatch_least_outstanding_bytes(
    const DispatchContext& context,
    std::span<const WorkerSnapshot> candidates) {
  (void)context;
  HACK_CHECK(!candidates.empty(), "dispatch over an empty candidate set");
  const int best = best_rank(candidates);
  const WorkerSnapshot* pick = nullptr;
  for (const WorkerSnapshot& s : candidates) {
    if (health_rank(s.health) != best) continue;
    if (pick == nullptr || s.outstanding_bytes < pick->outstanding_bytes ||
        (s.outstanding_bytes == pick->outstanding_bytes &&
         (s.free_at_s < pick->free_at_s ||
          (s.free_at_s == pick->free_at_s && s.index < pick->index)))) {
      pick = &s;
    }
  }
  return pick->index;
}

std::size_t dispatch_most_free_blocks(
    const DispatchContext& context,
    std::span<const WorkerSnapshot> candidates) {
  (void)context;
  HACK_CHECK(!candidates.empty(), "dispatch over an empty candidate set");
  const int best = best_rank(candidates);
  const WorkerSnapshot* pick = nullptr;
  for (const WorkerSnapshot& s : candidates) {
    if (health_rank(s.health) != best) continue;
    if (pick == nullptr || s.free_kv_blocks > pick->free_kv_blocks ||
        (s.free_kv_blocks == pick->free_kv_blocks &&
         (s.outstanding_bytes < pick->outstanding_bytes ||
          (s.outstanding_bytes == pick->outstanding_bytes &&
           s.index < pick->index)))) {
      pick = &s;
    }
  }
  return pick->index;
}

const char* dispatch_policy_name(DispatchPolicyFn policy) {
  if (policy == &dispatch_round_robin) return "round_robin";
  if (policy == &dispatch_least_outstanding_bytes) {
    return "least_outstanding_bytes";
  }
  if (policy == &dispatch_most_free_blocks) return "most_free_blocks";
  return "custom";
}

void FleetEngine::HealthTracker::transition(WorkerHealth to, double t) {
  if (to == state) return;
  transitions.push_back({t, state, to});
  state = to;
}

void FleetEngine::HealthTracker::refresh(double t,
                                         const HealthPolicy& policy) {
  if (state == WorkerHealth::kDown &&
      t >= down_since_s + policy.down_cooldown_s) {
    // The transition is stamped when the cooldown elapsed, not when the
    // engine happened to look.
    transition(WorkerHealth::kRecovering,
               down_since_s + policy.down_cooldown_s);
    probation = 0;
    consecutive_failures = 0;
  }
}

void FleetEngine::HealthTracker::on_success(double t,
                                            const HealthPolicy& policy) {
  consecutive_failures = 0;
  if (state == WorkerHealth::kSuspect) {
    transition(WorkerHealth::kHealthy, t);
  } else if (state == WorkerHealth::kRecovering) {
    if (++probation >= policy.probation_successes) {
      transition(WorkerHealth::kHealthy, t);
    }
  }
}

void FleetEngine::HealthTracker::on_failure(double t,
                                            const HealthPolicy& policy,
                                            bool fatal) {
  ++consecutive_failures;
  if (fatal || consecutive_failures >= policy.down_after) {
    transition(WorkerHealth::kDown, t);
    down_since_s = t;
  } else if (state == WorkerHealth::kHealthy &&
             consecutive_failures >= policy.suspect_after) {
    transition(WorkerHealth::kSuspect, t);
  }
}

FleetEngine::FleetEngine(std::shared_ptr<const TinyModelWeights> weights,
                         FleetConfig config)
    : weights_(std::move(weights)), config_(std::move(config)) {
  HACK_CHECK(config_.prefill_workers >= 1,
             "fleet needs at least one prefill worker");
  HACK_CHECK(config_.decode_workers >= 1,
             "fleet needs at least one decode worker");
  HACK_CHECK(config_.decode_pool_blocks.empty() ||
                 config_.decode_pool_blocks.size() == config_.decode_workers,
             "decode_pool_blocks must name every decode worker ("
                 << config_.decode_pool_blocks.size() << " sizes for "
                 << config_.decode_workers << " workers)");
  for (std::size_t i = 0; i < config_.prefill_workers; ++i) {
    prefill_.push_back(std::make_unique<PrefillWorker>(
        weights_, config_.worker, "prefill" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < config_.decode_workers; ++j) {
    DisaggConfig wc = config_.worker;
    if (!config_.decode_pool_blocks.empty()) {
      wc.decode_kv_blocks = config_.decode_pool_blocks[j];
    }
    decode_.push_back(std::make_unique<DecodeWorker>(
        weights_, wc, "decode" + std::to_string(j)));
  }
  // Link (p, d) gets link id p·M + d — link 0 is (prefill0, decode0) and
  // keeps the base seed, so a 1×1 fleet replays DisaggEngine's exact fault
  // schedule.
  for (std::size_t p = 0; p < config_.prefill_workers; ++p) {
    for (std::size_t d = 0; d < config_.decode_workers; ++d) {
      links_.push_back(std::make_unique<FaultModel>(fault_config_for_link(
          config_.worker.transfer_faults, p * config_.decode_workers + d)));
    }
  }
  prefill_book_.resize(config_.prefill_workers);
  decode_book_.resize(config_.decode_workers);
}

FaultModel& FleetEngine::link_faults(std::size_t prefill, std::size_t decode) {
  return *links_.at(prefill * decode_.size() + decode);
}

void FleetEngine::set_link_faults(std::size_t prefill, std::size_t decode,
                                  const FaultConfig& config) {
  links_.at(prefill * decode_.size() + decode) =
      std::make_unique<FaultModel>(config);
}

FaultStats FleetEngine::fault_ledger() const {
  FaultStats total;
  for (const auto& link : links_) {
    const FaultStats& s = link->stats();
    total.chunks_seen += s.chunks_seen;
    total.drops += s.drops;
    total.corruptions += s.corruptions;
    total.latency_spikes += s.latency_spikes;
    total.down_delays += s.down_delays;
  }
  return total;
}

WorkerSnapshot FleetEngine::snapshot(const WorkerBook& book, std::size_t index,
                                     double t,
                                     std::size_t free_blocks) const {
  WorkerSnapshot s;
  s.index = index;
  s.health = book.health.state;
  s.free_at_s = book.free_s;
  for (const Commitment& c : book.commitments) {
    if (c.until_s > t) {
      s.outstanding_bytes += c.bytes;
      ++s.active_requests;
    }
  }
  s.served_requests = book.served;
  s.free_kv_blocks = free_blocks;
  return s;
}

std::size_t FleetEngine::pick_prefill(const DispatchContext& context,
                                      double t) {
  std::vector<WorkerSnapshot> candidates;
  for (std::size_t i = 0; i < prefill_.size(); ++i) {
    WorkerBook& book = prefill_book_[i];
    book.health.refresh(t, config_.health);
    if (book.health.state == WorkerHealth::kDown) continue;
    candidates.push_back(snapshot(book, i, t, SIZE_MAX));
  }
  if (candidates.empty()) return kNoWorker;
  // Probe-then-readmit: the stock policies all prefer the best health tier,
  // so a recovering worker can never win a dispatch while a healthy sibling
  // exists — it would sit on probation forever. Route this request at the
  // lowest-index recovering candidate as its probe; one success
  // (HealthPolicy::probation_successes) earns healthy back, one failure
  // sends it straight down again.
  for (const WorkerSnapshot& s : candidates) {
    if (s.health == WorkerHealth::kRecovering) return s.index;
  }
  DispatchContext ctx = context;
  ctx.rr_cursor = rr_prefill_++;
  const std::size_t pick = config_.prefill_policy(ctx, candidates);
  for (const WorkerSnapshot& s : candidates) {
    if (s.index == pick) return pick;
  }
  HACK_CHECK(false, "prefill dispatch policy picked ineligible worker "
                        << pick);
  return kNoWorker;
}

std::size_t FleetEngine::pick_decode(const DispatchContext& context,
                                     double t) {
  std::vector<WorkerSnapshot> candidates;
  for (std::size_t j = 0; j < decode_.size(); ++j) {
    WorkerBook& book = decode_book_[j];
    book.health.refresh(t, config_.health);
    if (book.health.state == WorkerHealth::kDown) continue;
    const std::size_t free = decode_[j]->free_kv_blocks();
    if (context.need_kv_blocks > free) continue;  // pool cannot admit
    candidates.push_back(snapshot(book, j, t, free));
  }
  if (candidates.empty()) return kNoWorker;
  // Probe-then-readmit, as in pick_prefill: a recovering worker gets the
  // next admissible request as its probation probe instead of starving
  // behind healthy siblings.
  for (const WorkerSnapshot& s : candidates) {
    if (s.health == WorkerHealth::kRecovering) return s.index;
  }
  DispatchContext ctx = context;
  ctx.rr_cursor = rr_decode_++;
  const std::size_t pick = config_.decode_policy(ctx, candidates);
  for (const WorkerSnapshot& s : candidates) {
    if (s.index == pick) return pick;
  }
  HACK_CHECK(false, "decode dispatch policy picked ineligible worker "
                        << pick);
  return kNoWorker;
}

double FleetEngine::earliest_recovery(
    const std::vector<WorkerBook>& books) const {
  double best = std::numeric_limits<double>::infinity();
  for (const WorkerBook& b : books) {
    if (b.health.state == WorkerHealth::kDown) {
      best = std::min(best,
                      b.health.down_since_s + config_.health.down_cooldown_s);
    }
  }
  return best;
}

std::size_t FleetEngine::decode_pool_capacity(std::size_t j) const {
  const BlockAllocator* pool = decode_[j]->allocator();
  return pool == nullptr ? SIZE_MAX : pool->num_blocks();
}

FleetReport FleetEngine::run(std::vector<ServingRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const ServingRequest& a, const ServingRequest& b) {
              return a.arrival_time_s < b.arrival_time_s;
            });

  FleetReport report;
  std::vector<double> ttfts, jcts;
  const TinyConfig& c = weights_->config();
  const RetryPolicy& policy = config_.worker.retry;
  const HealthPolicy& hp = config_.health;

  // Sums every per-request counter into the report; called once per request
  // on every exit path.
  const auto rollup = [&](const FleetRecord& rec) {
    report.retries_total += rec.d.retries;
    report.chunks_dropped_total += rec.d.chunks_dropped;
    report.chunks_corrupted_total += rec.d.chunks_corrupted;
    report.crc_failures_total += rec.d.crc_failures;
    report.prefill_crashes_total += rec.d.prefill_crashes;
    report.decode_crashes_total += rec.d.decode_crashes;
    report.retransmitted_bytes_total += rec.d.retransmitted_bytes;
    report.reroutes_total += rec.reroutes;
    report.prefill_failovers_total += rec.prefill_failovers;
    report.re_prefills_total += rec.re_prefills;
    report.checkpoints_total += rec.d.checkpoints;
    report.checkpoint_bytes_total += rec.d.checkpoint_bytes;
    report.checkpoint_failures_total += rec.d.checkpoint_failures;
    report.resumes_total += rec.d.resumes;
    report.tokens_replayed_total += rec.d.tokens_replayed;
    report.tokens_recomputed_total += rec.d.tokens_recomputed;
    report.migrations_total += rec.migrations;
    report.drain_events_total += rec.drains;
    if (rec.shed) ++report.shed_total;
    if (rec.d.deadline_missed) ++report.deadline_misses;
    if (rec.d.rejected) ++report.rejected;
    if (rec.d.fallback_local) ++report.fallbacks;
  };

  for (std::size_t index = 0; index < requests.size(); ++index) {
    const ServingRequest& request = requests[index];
    FleetRecord rec;
    rec.d.request = request;
    std::size_t budget = policy.max_retries;
    Rng jitter = retry_jitter_rng(policy, index);

    // Fleet-wide admission preflight: a request whose worst-case block need
    // exceeds every decode pool can never be served disaggregated — shed it
    // now (reject outright, or mark it for the local-decode path) instead of
    // burning transfer retries discovering the same thing.
    const std::size_t need = decode_[0]->blocks_needed(
        request.prompt.size(), request.max_new_tokens);
    bool fits_somewhere = false;
    for (std::size_t j = 0; j < decode_.size(); ++j) {
      if (need <= decode_pool_capacity(j)) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere && !policy.fallback_local) {
      rec.shed = true;
      rec.d.rejected = true;
      rollup(rec);
      report.requests.push_back(std::move(rec));
      continue;
    }

    // ---- Prefill: dispatch, re-dispatching to a sibling on a crash. ----
    double prefill_ready = request.arrival_time_s;
    PrefillWorker::Result pre;
    std::size_t pworker = kNoWorker;
    bool prefilled = false;
    bool prefill_exhausted = false;
    while (!prefilled && !prefill_exhausted) {
      DispatchContext ctx;
      ctx.request_index = index;
      ctx.prompt_tokens = request.prompt.size();
      ctx.need_kv_blocks = need;
      const std::size_t pick = pick_prefill(ctx, prefill_ready);
      if (pick == kNoWorker) {
        // Every prefill worker is down. Wait out the earliest cooldown if
        // the budget allows — a retry round, never a deadlock.
        const double recover = earliest_recovery(prefill_book_);
        if (budget == 0 || !std::isfinite(recover)) {
          prefill_exhausted = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
        ++rec.d.retries;
        rec.d.backoff_s += wait;
        prefill_ready = std::max(prefill_ready, recover) + wait;
        continue;
      }
      rec.prefill_route.push_back(pick);
      if (rec.prefill_route.size() > 1 &&
          pick != rec.prefill_route[rec.prefill_route.size() - 2]) {
        ++rec.prefill_failovers;
      }
      WorkerBook& book = prefill_book_[pick];
      const double start = std::max(prefill_ready, book.free_s);
      try {
        pre = prefill_[pick]->prefill(request, index);
        prefilled = true;
        pworker = pick;
        book.health.on_success(start, hp);
        const double busy = pre.prefill_s + pre.serialize_s;
        book.free_s = start + busy;
        book.busy_s += busy;
        book.commitments.push_back({book.free_s, pre.blob.size()});
        ++book.served;
      } catch (const WorkerCrash&) {
        ++rec.d.prefill_crashes;
        ++book.crashes;
        book.health.on_failure(start, hp, /*fatal=*/true);
        if (budget == 0) {
          prefill_exhausted = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
        ++rec.d.retries;
        rec.d.backoff_s += wait;
        // A prefill crash leaves no KV state anywhere — the prompt must run
        // again, on whichever sibling the policy picks next.
        ++rec.re_prefills;
        prefill_ready = start + wait;
      }
    }
    if (prefill_exhausted) {
      rec.d.rejected = true;  // no KV state exists; nothing to degrade to
      rollup(rec);
      report.requests.push_back(std::move(rec));
      continue;
    }
    rec.prefill_worker = pworker;
    rec.d.prefill_s = pre.prefill_s;
    rec.d.serialize_s = pre.serialize_s;
    rec.d.prefill_chunks = pre.prefill_chunks;
    rec.d.wire_bytes = pre.blob.size();
    rec.d.sections = pre.sections;
    rec.d.fp16_kv_bytes = parse_kv_wire_header(pre.blob).tokens * c.kv_heads *
                          c.d_head * 2 * 2 * c.layers;

    // ---- Transfer + decode: route the blob, re-route on failure. ----
    const double transfer_epoch = prefill_book_[pworker].free_s;
    double ready = transfer_epoch;
    double first_start = -1.0;
    double last_finish = transfer_epoch;
    bool first_transmission = true;

    const auto deadline_passed = [&] {
      return policy.transfer_deadline_s > 0.0 &&
             last_finish - transfer_epoch > policy.transfer_deadline_s;
    };
    // Books one delivery pass of `wire` from src to dst over `fm`,
    // retransmitting dropped chunk ranges until all land or the budget or
    // deadline gives out. Retransmit rounds and waited-out link-down windows
    // are transfer failures against `book`'s health (the decode-side worker
    // of the link, whichever direction the bytes flow). `first` feeds the
    // retransmitted_bytes ledger: request-scoped for the base blob, fresh
    // per checkpoint-delta delivery (a delta's first copy is new bytes).
    const auto deliver_blob = [&](std::vector<std::uint8_t>& wire, Nic& src,
                                  Nic& dst, FaultModel* fm, WorkerBook& book,
                                  bool& first) {
      const int chunks = kv_wire_transfer_chunks(
          wire.size(), config_.worker.transfer_chunk_bytes);
      std::vector<ChunkRange> pending = chunk_ranges(wire.size(), chunks);
      while (true) {
        double bytes = 0.0;
        for (const ChunkRange& r : pending) {
          bytes += static_cast<double>(r.len);
        }
        if (!first) {
          rec.d.retransmitted_bytes += static_cast<std::size_t>(bytes);
        }
        const std::size_t down_before = fm->stats().down_delays;
        const FaultyTransferResult attempt = nccl_transfer_faulty(
            src, dst, ready, bytes, static_cast<int>(pending.size()), fm);
        first = false;
        if (first_start < 0.0) first_start = attempt.result.start;
        last_finish = std::max(last_finish, attempt.result.finish);
        if (fm->stats().down_delays > down_before) {
          ++book.transfer_failures;
          book.health.on_failure(attempt.result.start, hp, /*fatal=*/false);
        }

        std::vector<ChunkRange> still_pending;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const ChunkEvent& event = attempt.chunks[i];
          if (event.fate == ChunkFate::kDropped) {
            ++rec.d.chunks_dropped;
            still_pending.push_back(pending[i]);
          } else if (event.fate == ChunkFate::kCorrupted) {
            ++rec.d.chunks_corrupted;
            corrupt_range(wire, pending[i], event.corrupt_entropy);
          }
        }
        if (still_pending.empty()) return true;
        ++book.transfer_failures;
        book.health.on_failure(last_finish, hp, /*fatal=*/false);
        if (deadline_passed()) {
          rec.d.deadline_missed = true;
          return false;
        }
        if (budget == 0) return false;
        --budget;
        const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
        ++rec.d.retries;
        rec.d.backoff_s += wait;
        ready = last_finish + wait;
        pending = std::move(still_pending);
      }
    };
    // The prefill→decode handoff to worker j over link (pworker, j).
    const auto deliver = [&](std::vector<std::uint8_t>& wire, std::size_t j) {
      return deliver_blob(wire, prefill_[pworker]->nic(), decode_[j]->nic(),
                          link(pworker, j), decode_book_[j],
                          first_transmission);
    };

    // Checkpoint store: the request's prefill worker doubles as the standby
    // — it already holds the pristine base blob, so base + latest verified
    // delta is everything a resuming replica needs. The sink buffers cuts
    // during the worker call (returning false at a cut is the proactive-
    // drain stop signal); book_checkpoints ships them decode→prefill over
    // the same faulty link afterwards, in cut order — checkpoints that left
    // a crashing worker before it died still reach the store.
    std::vector<std::uint8_t> stored_delta;
    std::size_t stored_tokens = 0;
    std::vector<DecodeCheckpoint> cut;
    bool drain_now = false;
    CheckpointSink sink;
    if (config_.worker.checkpoint_every_tokens > 0) {
      sink = [&cut, &drain_now](DecodeCheckpoint c) {
        cut.push_back(std::move(c));
        return !drain_now;
      };
    }
    const auto book_checkpoints = [&](std::size_t j) {
      for (DecodeCheckpoint& c : cut) {
        ++rec.d.checkpoints;
        rec.d.checkpoint_bytes += c.delta.size();
        bool stored = false;
        while (!stored) {
          std::vector<std::uint8_t> dwire = c.delta;
          bool first = true;
          if (!deliver_blob(dwire, decode_[j]->nic(), prefill_[pworker]->nic(),
                            link(pworker, j), decode_book_[j], first)) {
            break;
          }
          try {
            // Admission gate: a delta lands in the store only after its CRC
            // frames verify on the delivered bytes — a corrupted delivery
            // costs a redelivery round, never a poisoned store.
            verify_kv_wire(dwire);
          } catch (const KvWireError&) {
            ++rec.d.crc_failures;
            ++decode_book_[j].transfer_failures;
            decode_book_[j].health.on_failure(last_finish, hp,
                                              /*fatal=*/false);
            if (budget == 0) break;
            --budget;
            const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
            ++rec.d.retries;
            rec.d.backoff_s += wait;
            ready = last_finish + wait;
            continue;
          }
          stored_delta = std::move(dwire);
          stored_tokens = c.tokens_decoded;
          stored = true;
        }
        // Budget exhausted before the delta landed: the store keeps the
        // previous checkpoint; a resume just replays a longer window.
        if (!stored) ++rec.d.checkpoint_failures;
      }
      cut.clear();
    };

    DecodeWorker::Result dec;
    std::size_t dworker = kNoWorker;
    bool delivered = false;
    bool failed = false;
    while (!delivered && !failed) {
      DispatchContext ctx;
      ctx.request_index = index;
      ctx.prompt_tokens = request.prompt.size();
      ctx.need_kv_blocks = need;
      const std::size_t pick = pick_decode(ctx, ready);
      if (pick == kNoWorker) {
        // No decode worker can admit the blob right now. If a down worker
        // whose pool could hold it will recover, waiting is a retry round;
        // otherwise the fleet sheds the request.
        double recover = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < decode_.size(); ++j) {
          if (decode_book_[j].health.state == WorkerHealth::kDown &&
              need <= decode_pool_capacity(j)) {
            recover = std::min(recover,
                               decode_book_[j].health.down_since_s +
                                   hp.down_cooldown_s);
          }
        }
        if (budget == 0 || !std::isfinite(recover)) {
          rec.shed = true;
          failed = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
        ++rec.d.retries;
        rec.d.backoff_s += wait;
        ready = std::max(ready, recover) + wait;
        continue;
      }
      rec.decode_route.push_back(pick);
      if (rec.decode_route.size() > 1 &&
          pick != rec.decode_route[rec.decode_route.size() - 2]) {
        // The serialized blob changes destination: a reroute, not a
        // re-prefill — the prompt never runs again for a decode failure.
        ++rec.reroutes;
      }
      std::vector<std::uint8_t> wire = pre.blob;
      if (!deliver(wire, pick)) {
        failed = true;
        break;
      }
      if (deadline_passed()) {
        rec.d.deadline_missed = true;
        failed = true;
        break;
      }
      WorkerBook& book = decode_book_[pick];
      // Proactive drain decision: the handoff's link faults may have marked
      // this worker suspect *after* dispatch picked it healthy. If a healthy
      // replica with pool headroom exists, let the worker decode only to its
      // first checkpoint cut, then migrate the request there. Bounded: each
      // drain needs a distinct healthy target, and workers only degrade
      // within one request's routing loop.
      drain_now = false;
      if (config_.proactive_drain && sink &&
          book.health.state == WorkerHealth::kSuspect) {
        for (std::size_t j = 0; j < decode_.size(); ++j) {
          if (j != pick &&
              decode_book_[j].health.state == WorkerHealth::kHealthy &&
              need <= decode_[j]->free_kv_blocks()) {
            drain_now = true;
            break;
          }
        }
      }
      // A replica resumes from base + stored delta when the store has one
      // (only ever true after a crash or drain); the delta ships back over
      // this worker's own link first. If its delivery exhausts the budget,
      // fall back to a full recompute from the base blob — the previously
      // salvaged tokens are recomputed after all.
      bool resume_now = stored_tokens > 0;
      std::vector<std::uint8_t> delta_wire;
      if (resume_now) {
        delta_wire = stored_delta;
        bool first = true;
        if (!deliver_blob(delta_wire, prefill_[pworker]->nic(),
                          decode_[pick]->nic(), link(pworker, pick), book,
                          first)) {
          resume_now = false;
          rec.d.tokens_recomputed += stored_tokens;
        }
      }
      bool retransmit = false;
      try {
        dec = resume_now ? decode_[pick]->resume(wire, delta_wire, request,
                                                 index, sink)
                         : decode_[pick]->decode(wire, pre.first_token,
                                                 request, index, sink);
        book_checkpoints(pick);
        if (!dec.admitted) {
          // The reservation lost to the preflight — pool pressure; shed.
          rec.shed = true;
          failed = true;
          break;
        }
        if (resume_now) {
          ++rec.d.resumes;
          rec.d.tokens_replayed += dec.replayed_tokens;
          if (rec.decode_route.size() > 1 &&
              pick != rec.decode_route[rec.decode_route.size() - 2]) {
            ++rec.migrations;  // resumed on a different replica: live move
          }
        }
        if (dec.drained) {
          // The suspect worker stopped at a consistent cut (now booked into
          // the store). Its partial service occupies it on the timeline, but
          // it did not complete the request — no served count, no health
          // verdict either way — and the next round resumes elsewhere.
          ++rec.drains;
          ++book.drains;
          const double start = std::max(last_finish, book.free_s);
          const double partial_end = start + dec.deserialize_s + dec.decode_s;
          book.free_s = partial_end;
          book.busy_s += dec.deserialize_s + dec.decode_s;
          rec.d.tokens_recomputed +=
              dec.generated.size() -
              std::min(stored_tokens, dec.generated.size());
          ready = std::max(partial_end, last_finish);
          continue;
        }
        delivered = true;
        dworker = pick;
        book.health.on_success(last_finish, hp);
      } catch (const MidDecodeCrash& crash) {
        // Mid-generation death. Checkpoints cut before the crash had already
        // left the worker — book them into the store now; the lost window
        // past the last stored cut is recomputed on whichever replica the
        // next round picks. The blob never goes back through prefill.
        ++rec.d.decode_crashes;
        ++book.crashes;
        book.health.on_failure(last_finish, hp, /*fatal=*/true);
        book_checkpoints(pick);
        rec.d.tokens_recomputed +=
            crash.tokens_decoded -
            std::min(stored_tokens, crash.tokens_decoded);
        retransmit = true;
      } catch (const WorkerCrash&) {
        // The worker lost its receive buffer with the crash; the pristine
        // blob still sits on the prefill worker, so the next round routes
        // it to whichever replica the policy picks — rehydrate elsewhere.
        ++rec.d.decode_crashes;
        ++book.crashes;
        book.health.on_failure(last_finish, hp, /*fatal=*/true);
        cut.clear();
        retransmit = true;
      } catch (const KvWireError&) {
        ++rec.d.crc_failures;
        ++book.transfer_failures;
        book.health.on_failure(last_finish, hp, /*fatal=*/false);
        cut.clear();
        retransmit = true;
      }
      if (retransmit) {
        if (budget == 0) {
          failed = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.d.retries, jitter);
        ++rec.d.retries;
        rec.d.backoff_s += wait;
        ready = last_finish + wait;
      }
    }
    rec.d.transfer_s = first_start < 0.0 ? 0.0 : last_finish - first_start;

    double first_token_at = 0.0;
    double finish_at = 0.0;
    if (delivered) {
      rec.decode_worker = dworker;
      rec.d.deserialize_s = dec.deserialize_s;
      rec.d.decode_s = dec.decode_s;
      rec.d.decode_kv_blocks = dec.kv_blocks;
      rec.d.generated = std::move(dec.generated);
      WorkerBook& book = decode_book_[dworker];
      first_token_at = std::max(last_finish, book.free_s) + dec.deserialize_s;
      finish_at = first_token_at + dec.decode_s;
      book.free_s = finish_at;
      book.busy_s += dec.deserialize_s + dec.decode_s;
      book.commitments.push_back({finish_at, rec.d.wire_bytes});
      ++book.served;
    } else if (policy.fallback_local) {
      // Shed-to-local / exhausted-budget degradation: the prefill worker
      // that made the blob decodes it — still bit-identical.
      rec.d.fallback_local = true;
      const PrefillWorker::LocalDecode fb =
          prefill_[pworker]->local_decode(pre.blob, pre.first_token, request);
      rec.d.deserialize_s = fb.deserialize_s;
      rec.d.decode_s = fb.decode_s;
      rec.d.generated = fb.generated;
      WorkerBook& book = prefill_book_[pworker];
      const double fallback_start = std::max(last_finish, book.free_s);
      first_token_at = fallback_start + fb.deserialize_s;
      finish_at = first_token_at + fb.decode_s;
      book.busy_s += fb.deserialize_s + fb.decode_s;
      book.free_s = finish_at;
      // served already counted this request at prefill time.
    } else {
      rec.d.rejected = true;
    }

    rollup(rec);
    if (rec.d.rejected) {
      report.requests.push_back(std::move(rec));
      continue;
    }

    rec.d.ttft_s = first_token_at - request.arrival_time_s;
    rec.d.jct_s = finish_at - request.arrival_time_s;
    ttfts.push_back(rec.d.ttft_s);
    jcts.push_back(rec.d.jct_s);

    report.total_generated += rec.d.generated.size();
    report.wire_bytes_total += rec.d.wire_bytes;
    report.fp16_kv_bytes_total += rec.d.fp16_kv_bytes;
    report.makespan_s = std::max(report.makespan_s, finish_at);
    report.requests.push_back(std::move(rec));
  }

  if (!ttfts.empty()) report.ttft_s = compute_stats(std::move(ttfts));
  if (!jcts.empty()) report.jct_s = compute_stats(std::move(jcts));

  const auto worker_stats = [&](const WorkerBook& book,
                                const std::string& name) {
    FleetWorkerStats s;
    s.name = name;
    s.served = book.served;
    s.crashes = book.crashes;
    s.transfer_failures = book.transfer_failures;
    s.drains = book.drains;
    s.busy_s = book.busy_s;
    s.utilization =
        report.makespan_s > 0.0 ? book.busy_s / report.makespan_s : 0.0;
    s.final_health = book.health.state;
    s.transitions = book.health.transitions;
    report.health_transitions_total += s.transitions.size();
    return s;
  };
  for (std::size_t i = 0; i < prefill_.size(); ++i) {
    report.prefill_workers.push_back(
        worker_stats(prefill_book_[i], prefill_[i]->name()));
  }
  for (std::size_t j = 0; j < decode_.size(); ++j) {
    FleetWorkerStats s = worker_stats(decode_book_[j], decode_[j]->name());
    if (decode_[j]->allocator() != nullptr) {
      s.failed_allocations = decode_[j]->allocator()->failed_allocations();
      s.min_free_watermark = decode_[j]->allocator()->min_free_watermark();
    }
    report.decode_workers.push_back(std::move(s));
  }
  return report;
}

}  // namespace hack
