// CRC32C (Castagnoli) — the wire-integrity checksum.
//
// The KV wire format v2 (kvcache/kv_wire.h) protects its header and every
// per-(layer × KV head) record with a CRC32C so a corrupted or truncated blob
// is a *typed error* at the receiver, never undefined behavior. Castagnoli's
// polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one iSCSI, ext4, and
// RDMA NICs use; this is the portable slice-by-one table implementation —
// the blobs it guards are megabytes moved once per request, so checksum
// throughput is nowhere near the critical path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hack {

// CRC32C of `data[0, n)`. Chain incremental updates by passing the previous
// return value as `seed` (the default starts a fresh checksum).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace hack
