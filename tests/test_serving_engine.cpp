// Continuous-batching engine: scheduling determinism, shared weights,
// admission control, and lifecycle metrics.
//
// The load-bearing property is determinism: a request's generated tokens
// must not depend on what it was batched with, the thread count, or the
// prefill chunking — the engine is a scheduler, not a sampler. The contract
// (docs/serving.md) comes in two strengths:
//   - any backend, any rounding: continuous batching with whole-prompt
//     prefill is bit-identical to a solo TinyTransformer::generate(), and
//     chunked prefill is bit-identical to a solo run of the same chunk
//     schedule (tested as max_active=1 vs max_active=N);
//   - deterministic rounding (and RNG-free backends): chunked prefill is
//     bit-identical to generate() for every chunk size.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/check.h"
#include "model/tiny_transformer.h"
#include "serving/engine.h"
#include "serving/scheduler.h"
#include "workload/corpus.h"

namespace hack {
namespace {

TinyConfig small_config(std::size_t heads = 4, std::size_t kv_heads = 2) {
  TinyConfig c;
  c.vocab = 64;
  c.layers = 2;
  c.heads = heads;
  c.kv_heads = kv_heads;
  c.d_head = 32;
  c.d_ff = 128;
  return c;
}

HackAttentionConfig hack_config(Rounding rounding = Rounding::kStochastic) {
  HackAttentionConfig hc;
  hc.pi = 32;  // must divide d_head = 32
  hc.rounding = rounding;
  return hc;
}

std::vector<int> make_prompt(std::size_t len, std::size_t vocab,
                             std::uint64_t seed) {
  SyntheticCorpus corpus({.vocab = vocab}, seed);
  return corpus.prompt(0, len);
}

struct TestRequest {
  std::size_t prompt_len;
  std::size_t max_new;
};

std::vector<ServingRequest> make_requests(
    const std::vector<TestRequest>& shapes, std::size_t vocab) {
  std::vector<ServingRequest> reqs;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    ServingRequest r;
    r.id = i;
    r.prompt = make_prompt(shapes[i].prompt_len, vocab, 100 + i);
    r.max_new_tokens = shapes[i].max_new;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

using FactoryMaker = std::function<LayerBackendFactory()>;

// Solo baseline: a fresh TinyTransformer over the same shared weights and an
// identically seeded backend factory.
std::vector<int> solo_generate(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const FactoryMaker& maker, const ServingRequest& req) {
  TinyTransformer model(weights, maker());
  return model.generate(req.prompt, req.max_new_tokens, req.eos);
}

std::map<std::uint64_t, std::vector<int>> run_engine(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const FactoryMaker& maker, const std::vector<ServingRequest>& reqs,
    const ServingEngineConfig& config, BlockAllocator* allocator = nullptr,
    ServingReport* report_out = nullptr) {
  ServingEngine engine(weights, maker, config, allocator);
  for (const ServingRequest& r : reqs) engine.submit(r);
  ServingReport report = engine.run();
  std::map<std::uint64_t, std::vector<int>> out;
  for (const ServingRecord& rec : report.requests) {
    out[rec.request.id] = rec.generated;
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return out;
}

// ------------------------------------------------------------- scheduler

TEST(Scheduler, ChunkPolicyNeverMakesSingleRowLaunches) {
  SchedulerConfig cfg;
  cfg.prefill_chunk_tokens = 4;
  const Scheduler sched(cfg);
  for (std::size_t prompt = 2; prompt <= 23; ++prompt) {
    std::size_t begin = 0;
    while (begin < prompt) {
      const std::size_t end = sched.chunk_end(begin, prompt);
      ASSERT_GT(end, begin);
      ASSERT_LE(end, prompt);
      // No single-row chunk of a multi-row prompt, no single-row remainder.
      EXPECT_GE(end - begin, 2u) << "prompt " << prompt << " at " << begin;
      EXPECT_NE(prompt - end, 1u) << "prompt " << prompt << " at " << begin;
      begin = end;
    }
  }
  // A one-token prompt is a single 1-row chunk (the solo path is flat too).
  EXPECT_EQ(sched.chunk_end(0, 1), 1u);
}

TEST(Scheduler, ChunkSizeOneStillProgresses) {
  SchedulerConfig cfg;
  cfg.prefill_chunk_tokens = 1;
  const Scheduler sched(cfg);
  EXPECT_EQ(sched.chunk_end(0, 5), 2u);  // floored to 2 rows
  EXPECT_EQ(sched.chunk_end(2, 5), 5u);  // 2 rows, then absorb the 1-row tail
}

TEST(Scheduler, PlanTakesAllDecodesAndOnePrefill) {
  SchedulerConfig cfg;
  cfg.prefill_chunk_tokens = 8;
  const Scheduler sched(cfg);
  const std::vector<Scheduler::SeqView> running = {
      {RequestState::kDecoding, 10, 10},
      {RequestState::kPrefill, 20, 4},
      {RequestState::kDecoding, 6, 6},
      {RequestState::kPrefill, 30, 0},  // second prefill waits its turn
  };
  const StepPlan plan = sched.plan(running);
  EXPECT_EQ(plan.decode, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.prefill, 1u);
  EXPECT_EQ(plan.prefill_begin, 4u);
  EXPECT_EQ(plan.prefill_end, 12u);
}

TEST(Scheduler, AdmissionAgainstBlocks) {
  SchedulerConfig cfg;
  cfg.max_active = 4;
  cfg.block_tokens = 8;
  cfg.free_block_floor = 1;
  const Scheduler sched(cfg);
  BlockAllocator alloc(6, 64);
  ServingRequest req;
  req.prompt.assign(17, 0);   // 17 + 14 = 31 tokens -> 4 blocks
  req.max_new_tokens = 14;
  EXPECT_EQ(sched.blocks_needed(req), 4u);
  EXPECT_TRUE(sched.can_admit(req, 0, &alloc));
  (void)alloc.allocate();
  (void)alloc.allocate();  // 4 free left; 4 needed but floor=1 blocks it
  EXPECT_FALSE(sched.can_admit(req, 0, &alloc));
  EXPECT_TRUE(sched.can_ever_admit(req, &alloc));
  req.max_new_tokens = 60;  // 77 tokens -> 10 blocks > 6-block pool
  EXPECT_FALSE(sched.can_ever_admit(req, &alloc));
}

// ----------------------------------------------------- determinism sweeps

// Whole-prompt prefill: continuous batching must reproduce solo generate()
// bit-identically for every backend, including stochastic HACK, at any
// thread count and any batch composition.
TEST(ServingEngine, MatchesSoloGenerateAcrossBackends) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const std::shared_ptr<const KvCodec> codec = make_codec("cachegen");
  const std::vector<std::pair<std::string, FactoryMaker>> backends = {
      {"hack-layer",
       [] { return make_hack_layer_backend(hack_config(), 7); }},
      {"hack-per-head",
       [] { return per_head_layer_factory(make_hack_backend(hack_config(), 7)); }},
      {"fp16", [] { return per_head_layer_factory(make_fp16_backend()); }},
      {"codec",
       [codec] {
         return per_head_layer_factory(make_codec_backend(codec, 11));
       }},
      {"minifloat",
       [] {
         return per_head_layer_factory(
             make_minifloat_backend(MiniFloatFormat::kFp8E4M3));
       }},
  };
  const auto reqs = make_requests(
      {{24, 10}, {17, 8}, {31, 12}, {1, 6}}, cfg.vocab);

  for (const auto& [name, maker] : backends) {
    for (const int threads : {0, 1}) {
      ServingEngineConfig ec;
      ec.scheduler.prefill_chunk_tokens = 256;  // whole-prompt prefill
      ec.scheduler.max_active = 8;
      ec.threads = threads;
      const auto got = run_engine(weights, maker, reqs, ec);
      for (const ServingRequest& r : reqs) {
        EXPECT_EQ(got.at(r.id), solo_generate(weights, maker, r))
            << name << " request " << r.id << " threads " << threads;
      }
    }
  }
}

// The fused cross-sequence attention launch must not change any sequence's
// tokens relative to per-sequence attends.
TEST(ServingEngine, FusedAttentionMatchesUnfused) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_config(), 7);
  };
  const auto reqs = make_requests({{24, 10}, {17, 8}, {9, 12}}, cfg.vocab);
  ServingEngineConfig fused, unfused;
  fused.scheduler.prefill_chunk_tokens = 256;
  unfused.scheduler.prefill_chunk_tokens = 256;
  unfused.fused_attention = false;
  ServingReport fused_report, unfused_report;
  const auto a = run_engine(weights, maker, reqs, fused, nullptr,
                            &fused_report);
  const auto b = run_engine(weights, maker, reqs, unfused, nullptr,
                            &unfused_report);
  EXPECT_EQ(a, b);
  EXPECT_GT(fused_report.engine.fused_attend_launches, 0u);
  EXPECT_EQ(unfused_report.engine.fused_attend_launches, 0u);
}

// Deterministic rounding: chunked prefill is bit-identical to generate()
// for every chunk size — the scheduler's chunk policy keeps every prompt row
// on the same kernel (streaming vs flat) a whole-prompt prefill uses.
TEST(ServingEngine, ChunkedPrefillMatchesGenerateUnderNearestRounding) {
  for (const auto& [heads, kv_heads] : std::vector<std::pair<std::size_t,
                                                             std::size_t>>{
           {4, 2}, {2, 2}}) {
    const TinyConfig cfg = small_config(heads, kv_heads);
    const auto weights = make_tiny_weights(cfg);
    const std::vector<std::pair<std::string, FactoryMaker>> backends = {
        {"hack-layer-nearest",
         [] {
           return make_hack_layer_backend(hack_config(Rounding::kNearest), 7);
         }},
        {"fp16", [] { return per_head_layer_factory(make_fp16_backend()); }},
    };
    const auto reqs = make_requests({{23, 8}, {17, 6}, {8, 5}}, cfg.vocab);
    for (const auto& [name, maker] : backends) {
      std::map<std::uint64_t, std::vector<int>> solo;
      for (const ServingRequest& r : reqs) {
        solo[r.id] = solo_generate(weights, maker, r);
      }
      for (const std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 16u, 64u}) {
        ServingEngineConfig ec;
        ec.scheduler.prefill_chunk_tokens = chunk;
        const auto got = run_engine(weights, maker, reqs, ec);
        for (const ServingRequest& r : reqs) {
          EXPECT_EQ(got.at(r.id), solo.at(r.id))
              << name << " request " << r.id << " chunk " << chunk
              << " heads " << heads << "/" << kv_heads;
        }
      }
    }
  }
}

// Stochastic rounding with chunked prefill: the chunk schedule changes the
// RNG consumption (so generate() is not the baseline), but scheduling and
// batching still must not — a request interleaved with three others decodes
// the exact tokens of the same request running through the engine alone.
TEST(ServingEngine, ChunkedSchedulingInvariantUnderStochasticRounding) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const std::shared_ptr<const KvCodec> codec = make_codec("kvquant");
  const std::vector<std::pair<std::string, FactoryMaker>> backends = {
      {"hack-layer",
       [] { return make_hack_layer_backend(hack_config(), 7); }},
      {"codec",
       [codec] {
         return per_head_layer_factory(make_codec_backend(codec, 11));
       }},
  };
  const auto reqs = make_requests(
      {{23, 8}, {17, 6}, {31, 7}, {12, 5}}, cfg.vocab);
  for (const auto& [name, maker] : backends) {
    ServingEngineConfig batched, alone;
    batched.scheduler.prefill_chunk_tokens = 5;
    batched.scheduler.max_active = 4;
    alone.scheduler.prefill_chunk_tokens = 5;
    alone.scheduler.max_active = 1;  // solo run of the same chunk schedule
    const auto together = run_engine(weights, maker, reqs, batched);
    const auto sequential = run_engine(weights, maker, reqs, alone);
    EXPECT_EQ(together, sequential) << name;
  }
}

TEST(ServingEngine, EosStopsGenerationLikeGenerate) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return per_head_layer_factory(make_exact_backend());
  };
  ServingRequest probe;
  probe.prompt = make_prompt(16, cfg.vocab, 200);
  probe.max_new_tokens = 12;
  const auto unbounded = solo_generate(weights, maker, probe);
  ASSERT_GE(unbounded.size(), 2u);
  ServingRequest stopped = probe;
  stopped.eos = unbounded[1];
  const auto got = run_engine(weights, maker, {stopped},
                              ServingEngineConfig{});
  EXPECT_EQ(got.at(0), solo_generate(weights, maker, stopped));
  EXPECT_LT(got.at(0).size(), unbounded.size());
}

// ------------------------------------------------- shared weights / memory

TEST(ServingEngine, SessionsShareOneWeightInstance) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const long base_count = weights.use_count();
  TinyModelSession a(weights, per_head_layer_factory(make_exact_backend()));
  TinyModelSession b(weights, per_head_layer_factory(make_exact_backend()));
  // Pointer identity: both sessions read the same parameter object.
  EXPECT_EQ(&a.weights(), weights.get());
  EXPECT_EQ(&a.weights(), &b.weights());
  EXPECT_EQ(weights.use_count(), base_count + 2);  // refs, not copies
  EXPECT_GT(weights->weight_bytes(), 0u);

  // TinyTransformer wrappers built from the same pointer share it too.
  TinyTransformer t1(weights, per_head_layer_factory(make_exact_backend()));
  TinyTransformer t2(weights, per_head_layer_factory(make_exact_backend()));
  EXPECT_EQ(&t1.session().weights(), &t2.session().weights());

  // And the engine's sessions all hang off the caller's instance: after a
  // run with 4 concurrent requests, no copy survives.
  ServingEngine engine(
      weights, [] { return per_head_layer_factory(make_exact_backend()); },
      ServingEngineConfig{});
  for (auto& r : make_requests({{8, 4}, {9, 4}, {10, 4}, {11, 4}},
                               cfg.vocab)) {
    engine.submit(std::move(r));
  }
  const ServingReport report = engine.run();
  EXPECT_EQ(report.engine.peak_running, 4u);
  EXPECT_EQ(weights.use_count(), base_count + 2 + 2 + 1);  // a,b,t1,t2,engine
}

// --------------------------------------------------- admission + metrics

TEST(ServingEngine, AdmissionRespectsBlockPoolAndReleasesEverything) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_config(), 7);
  };
  // Each request: 16 + 8 = 24 tokens over 8-token blocks -> 3 blocks. A
  // 7-block pool runs at most 2 requests at once.
  ServingEngineConfig ec;
  ec.scheduler.block_tokens = 8;
  ec.scheduler.max_active = 8;
  ec.scheduler.prefill_chunk_tokens = 256;
  BlockAllocator alloc(7, 1024);
  const auto reqs = make_requests(
      {{16, 8}, {16, 8}, {16, 8}, {16, 8}}, cfg.vocab);
  ServingReport report;
  const auto got = run_engine(weights, maker, reqs, ec, &alloc, &report);
  for (const ServingRequest& r : reqs) {
    EXPECT_EQ(got.at(r.id), solo_generate(weights, maker, r)) << r.id;
  }
  EXPECT_LE(report.engine.peak_running, 2u);
  EXPECT_EQ(report.engine.kv_bytes_admitted, 4u * 3u * 1024u);
  EXPECT_EQ(report.engine.kv_bytes_released,
            report.engine.kv_bytes_admitted);
  EXPECT_EQ(alloc.blocks_in_use(), 0u);
  EXPECT_LE(alloc.min_free_watermark(), 1u);  // two residents = 6 of 7 blocks
}

TEST(ServingEngine, OversizedRequestIsRejectedNotWedged) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return per_head_layer_factory(make_fp16_backend());
  };
  ServingEngineConfig ec;
  ec.scheduler.block_tokens = 8;
  BlockAllocator alloc(4, 256);  // 32-token capacity
  auto reqs = make_requests({{16, 8}, {40, 30}}, cfg.vocab);  // 2nd: 9 blocks
  ServingReport report;
  const auto got = run_engine(weights, maker, reqs, ec, &alloc, &report);
  EXPECT_EQ(got.at(0), solo_generate(weights, maker, reqs[0]));
  EXPECT_TRUE(got.at(1).empty());
  EXPECT_EQ(report.engine.rejected, 1u);
  EXPECT_EQ(report.requests[1].state, RequestState::kRejected);
  EXPECT_EQ(alloc.blocks_in_use(), 0u);
}

TEST(ServingEngine, LifecycleTimestampsAndRollups) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_config(), 7);
  };
  ServingEngineConfig ec;
  ec.scheduler.prefill_chunk_tokens = 8;
  const auto reqs = make_requests({{20, 6}, {13, 5}, {9, 4}}, cfg.vocab);
  ServingReport report;
  (void)run_engine(weights, maker, reqs, ec, nullptr, &report);

  std::size_t tbt_count = 0;
  for (const ServingRecord& rec : report.requests) {
    ASSERT_EQ(rec.state, RequestState::kFinished);
    EXPECT_EQ(rec.generated.size(), rec.request.max_new_tokens);
    EXPECT_EQ(rec.token_times_s.size(), rec.generated.size());
    EXPECT_GE(rec.admit_time_s, rec.request.arrival_time_s);
    EXPECT_GE(rec.first_token_time_s, rec.admit_time_s);
    EXPECT_GE(rec.finish_time_s, rec.first_token_time_s);
    EXPECT_GE(rec.ttft_s(), 0.0);
    EXPECT_GE(rec.jct_s(), rec.ttft_s());
    for (const double gap : rec.tbt_s()) EXPECT_GE(gap, 0.0);
    tbt_count += rec.tbt_s().size();
  }
  EXPECT_EQ(report.ttft_s.count, reqs.size());
  EXPECT_EQ(report.jct_s.count, reqs.size());
  EXPECT_EQ(report.tbt_s.count, tbt_count);
  EXPECT_EQ(report.total_generated, 6u + 5u + 4u);
  EXPECT_GT(report.tokens_per_s, 0.0);
  EXPECT_GT(report.decode_tokens_per_s, 0.0);
  EXPECT_GT(report.goodput_rps, 0.0);
  EXPECT_GT(report.engine.prefill_chunks, reqs.size());  // chunked prompts
  EXPECT_GT(report.makespan_s, 0.0);
}

TEST(ServingEngine, StaggeredArrivalsAreHonored) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return per_head_layer_factory(make_fp16_backend());
  };
  auto reqs = make_requests({{12, 4}, {12, 4}}, cfg.vocab);
  reqs[1].arrival_time_s = 0.05;
  ServingReport report;
  const auto got = run_engine(weights, maker, reqs, ServingEngineConfig{},
                              nullptr, &report);
  for (const ServingRequest& r : reqs) {
    EXPECT_EQ(got.at(r.id), solo_generate(weights, maker, r));
  }
  EXPECT_GE(report.requests[1].admit_time_s, 0.05);
}

}  // namespace
}  // namespace hack
