// Figure 12: average JCT for Llama-3.1 70B with Cocktail across prefill
// instances, four methods. Key shapes: HACK's edge over CacheGen/KVQuant is
// smallest on V100 (no INT8 tensor cores), while HACK's edge over the
// baseline is largest on V100 (lowest bandwidth, biggest transfer win).
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  Table t("Fig 12: avg JCT (s) for L + Cocktail across prefill GPUs");
  t.header({"gpu", "Baseline", "CacheGen", "KVQuant", "HACK", "HACK_vs_base",
            "HACK_vs_CacheGen", "HACK_vs_KVQuant"});
  for (const std::string& gpu : prefill_gpus()) {
    double jct[4] = {};
    for (int m = 0; m < 4; ++m) {
      jct[m] =
          run(standard_cluster(gpu, "L", "Cocktail", methods[m])).avg_jct_s;
    }
    t.row({gpu, fmt(jct[0], 1), fmt(jct[1], 1), fmt(jct[2], 1), fmt(jct[3], 1),
           pct(1.0 - jct[3] / jct[0]), pct(1.0 - jct[3] / jct[1]),
           pct(1.0 - jct[3] / jct[2])});
  }
  t.print();
  return 0;
}
