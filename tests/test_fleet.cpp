// Multi-replica disaggregated fleet: dispatch, failover, shedding.
//
// The fleet-wide contract (docs/robustness.md): any schedule of worker
// crashes, link faults, and down windows that does not exhaust a request's
// retry budget yields token streams bit-identical to the fault-free
// single-pair run; decode-worker failures re-route the serialized blob to a
// replica (never back through prefill); routing decisions are a pure
// function of (seed, kill schedule) so the same episode replays exactly; and
// the report's fault counters equal the sum of the per-link injection
// ledgers. When no decode pool can ever hold a request, admission control
// sheds it — local decode or reject, never a deadlock.
#include <gtest/gtest.h>

#include "model/tiny_transformer.h"
#include "serving/disagg.h"
#include "serving/fleet.h"
#include "workload/corpus.h"

namespace hack {
namespace {

std::shared_ptr<const TinyModelWeights> small_weights() {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  return make_tiny_weights(tc);
}

DisaggConfig base_config() {
  DisaggConfig dc;
  dc.attn.pi = 32;
  dc.attn.kv_bits = 4;
  dc.attn.summation_elimination = true;
  dc.attn.requant_elimination = true;
  dc.transfer_chunk_bytes = 2048;  // several chunks per blob
  return dc;
}

std::vector<ServingRequest> make_requests(std::size_t n, std::size_t vocab) {
  SyntheticCorpus corpus({.vocab = vocab}, 42);
  std::vector<ServingRequest> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    ServingRequest r;
    r.prompt = corpus.prompt(i, 40 + 7 * (i % 3));
    r.max_new_tokens = 6 + (i % 4);
    r.arrival_time_s = 0.01 * static_cast<double>(i);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

// The contract's reference: the fault-free single-pair engine. Fleet runs of
// any shape must reproduce these token streams bit-for-bit.
std::vector<std::vector<int>> reference_tokens(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const DisaggConfig& dc, const std::vector<ServingRequest>& reqs) {
  DisaggConfig clean = dc;
  clean.transfer_faults = {};
  DisaggEngine engine(weights, clean);
  const DisaggReport report = engine.run(reqs);
  std::vector<std::vector<int>> out;
  for (const DisaggRecord& rec : report.requests) {
    EXPECT_FALSE(rec.rejected);
    out.push_back(rec.generated);
  }
  return out;
}

WorkerSnapshot snap(std::size_t index, WorkerHealth health,
                    std::size_t outstanding_bytes, double free_at_s = 0.0,
                    std::size_t free_kv_blocks = SIZE_MAX) {
  WorkerSnapshot s;
  s.index = index;
  s.health = health;
  s.outstanding_bytes = outstanding_bytes;
  s.free_at_s = free_at_s;
  s.free_kv_blocks = free_kv_blocks;
  return s;
}

// ------------------------------------------------------- dispatch policies

TEST(DispatchPolicies, RoundRobinRotatesWithCursor) {
  const std::vector<WorkerSnapshot> c = {snap(0, WorkerHealth::kHealthy, 0),
                                         snap(1, WorkerHealth::kHealthy, 0),
                                         snap(2, WorkerHealth::kHealthy, 0)};
  DispatchContext ctx;
  for (std::uint64_t cursor = 0; cursor < 6; ++cursor) {
    ctx.rr_cursor = cursor;
    EXPECT_EQ(dispatch_round_robin(ctx, c), cursor % 3);
  }
}

TEST(DispatchPolicies, RoundRobinSkipsWorseHealthTiers) {
  const std::vector<WorkerSnapshot> c = {snap(0, WorkerHealth::kHealthy, 0),
                                         snap(1, WorkerHealth::kSuspect, 0),
                                         snap(2, WorkerHealth::kHealthy, 0)};
  DispatchContext ctx;
  ctx.rr_cursor = 1;  // would land on the suspect worker
  EXPECT_EQ(dispatch_round_robin(ctx, c), 2u);
  // Only suspect workers left: the tier itself is eligible.
  const std::vector<WorkerSnapshot> all_suspect = {
      snap(3, WorkerHealth::kSuspect, 0), snap(4, WorkerHealth::kSuspect, 0)};
  ctx.rr_cursor = 1;
  EXPECT_EQ(dispatch_round_robin(ctx, all_suspect), 4u);
}

TEST(DispatchPolicies, LeastOutstandingBytesBreaksTiesDeterministically) {
  DispatchContext ctx;
  const std::vector<WorkerSnapshot> c = {
      snap(0, WorkerHealth::kHealthy, 100),
      snap(1, WorkerHealth::kHealthy, 50, /*free_at_s=*/2.0),
      snap(2, WorkerHealth::kHealthy, 50, /*free_at_s=*/1.0)};
  EXPECT_EQ(dispatch_least_outstanding_bytes(ctx, c), 2u);
  // A loaded healthy worker still beats an idle suspect one.
  const std::vector<WorkerSnapshot> tiers = {
      snap(0, WorkerHealth::kSuspect, 0),
      snap(1, WorkerHealth::kHealthy, 1000)};
  EXPECT_EQ(dispatch_least_outstanding_bytes(ctx, tiers), 1u);
}

TEST(DispatchPolicies, MostFreeBlocksPrefersHeadroom) {
  DispatchContext ctx;
  const std::vector<WorkerSnapshot> c = {
      snap(0, WorkerHealth::kHealthy, 0, 0.0, /*free_kv_blocks=*/5),
      snap(1, WorkerHealth::kHealthy, 10, 0.0, /*free_kv_blocks=*/9),
      snap(2, WorkerHealth::kHealthy, 0, 0.0, /*free_kv_blocks=*/9)};
  EXPECT_EQ(dispatch_most_free_blocks(ctx, c), 2u);  // tie → fewer bytes
}

TEST(DispatchPolicies, NamesRoundTrip) {
  EXPECT_STREQ(dispatch_policy_name(&dispatch_round_robin), "round_robin");
  EXPECT_STREQ(dispatch_policy_name(&dispatch_least_outstanding_bytes),
               "least_outstanding_bytes");
  EXPECT_STREQ(dispatch_policy_name(&dispatch_most_free_blocks),
               "most_free_blocks");
}

// --------------------------------------------------------- fault-free fleet

TEST(FleetEngine, FaultFreeFleetMatchesSinglePairBitIdentity) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 2;
  fc.decode_workers = 2;
  const auto reqs = make_requests(6, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  const FleetReport report = engine.run(reqs);

  ASSERT_EQ(report.requests.size(), reqs.size());
  std::size_t served = 0;
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    const FleetRecord& rec = report.requests[i];
    EXPECT_FALSE(rec.d.rejected);
    EXPECT_FALSE(rec.shed);
    EXPECT_EQ(rec.d.generated, expected[i]);
    EXPECT_EQ(rec.decode_route.size(), 1u);
    EXPECT_EQ(rec.prefill_route.size(), 1u);
  }
  EXPECT_EQ(report.reroutes_total, 0u);
  EXPECT_EQ(report.re_prefills_total, 0u);
  EXPECT_EQ(report.shed_total, 0u);
  EXPECT_EQ(report.health_transitions_total, 0u);

  ASSERT_EQ(report.decode_workers.size(), 2u);
  for (const FleetWorkerStats& s : report.decode_workers) {
    EXPECT_EQ(s.final_health, WorkerHealth::kHealthy);
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0 + 1e-9);
    served += s.served;
  }
  EXPECT_EQ(served, reqs.size());
  EXPECT_EQ(report.decode_workers[0].name, "decode0");
  EXPECT_EQ(report.prefill_workers[1].name, "prefill1");
}

// -------------------------------------------------------------- failover

TEST(FleetEngine, DecodeCrashReroutesBlobWithoutRePrefill) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  fc.decode_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e9;  // a crashed worker stays down
  const auto reqs = make_requests(4, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  // Round-robin with no faults routes request r to decode worker r % 2;
  // request 1 lands on decode1 — kill it there, mid-handoff.
  engine.decode_worker(1).inject_crash(1);
  const FleetReport report = engine.run(reqs);

  ASSERT_EQ(report.requests.size(), reqs.size());
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_FALSE(report.requests[i].d.rejected);
    EXPECT_FALSE(report.requests[i].d.fallback_local);
    EXPECT_EQ(report.requests[i].d.generated, expected[i]);
  }
  // The killed handoff re-routed the already-serialized blob to the replica:
  // one reroute, a full-blob retransmit, and — the headline — zero
  // re-prefills.
  const FleetRecord& hit = report.requests[1];
  EXPECT_EQ(hit.decode_route, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(hit.reroutes, 1u);
  EXPECT_EQ(hit.d.decode_crashes, 1u);
  EXPECT_GT(hit.d.retransmitted_bytes, 0u);
  EXPECT_EQ(report.reroutes_total, 1u);
  EXPECT_EQ(report.decode_crashes_total, 1u);
  EXPECT_EQ(report.re_prefills_total, 0u);
  EXPECT_EQ(report.re_prefills_from_decode_crashes, 0u);
  // Later requests avoid the down worker.
  EXPECT_EQ(report.requests[2].decode_route, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report.requests[3].decode_route, (std::vector<std::size_t>{0}));

  const FleetWorkerStats& dead = report.decode_workers[1];
  EXPECT_EQ(dead.crashes, 1u);
  EXPECT_EQ(dead.final_health, WorkerHealth::kDown);
  ASSERT_EQ(dead.transitions.size(), 1u);
  EXPECT_EQ(dead.transitions[0].from, WorkerHealth::kHealthy);
  EXPECT_EQ(dead.transitions[0].to, WorkerHealth::kDown);
  // decode0 served every request, including the rerouted one.
  EXPECT_EQ(report.decode_workers[0].served, reqs.size());
  EXPECT_EQ(dead.served, 0u);
}

TEST(FleetEngine, PrefillCrashFailsOverToSibling) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 2;
  fc.decode_workers = 1;
  fc.prefill_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e9;
  const auto reqs = make_requests(4, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  engine.prefill_worker(0).inject_crash(0);  // round-robin sends request 0 here
  const FleetReport report = engine.run(reqs);

  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_FALSE(report.requests[i].d.rejected);
    EXPECT_EQ(report.requests[i].d.generated, expected[i]);
  }
  const FleetRecord& hit = report.requests[0];
  EXPECT_EQ(hit.prefill_route, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(hit.prefill_failovers, 1u);
  EXPECT_EQ(hit.re_prefills, 1u);  // the prompt had to run again
  EXPECT_EQ(report.prefill_failovers_total, 1u);
  EXPECT_EQ(report.re_prefills_total, 1u);
  EXPECT_EQ(report.prefill_crashes_total, 1u);
  EXPECT_EQ(report.prefill_workers[0].final_health, WorkerHealth::kDown);
  EXPECT_EQ(report.prefill_workers[1].served, reqs.size());
}

// ------------------------------------------------------------ determinism

TEST(FleetEngine, SameSeedAndKillScheduleReplaysRoutesAndCounters) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 2;
  fc.decode_workers = 2;
  fc.prefill_policy = &dispatch_round_robin;
  fc.decode_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e9;
  fc.worker.transfer_faults.chunk_drop_prob = 0.15;
  fc.worker.transfer_faults.chunk_corrupt_prob = 0.05;
  fc.worker.transfer_faults.seed = 0xD15C;
  fc.worker.retry.max_retries = 16;
  const auto reqs = make_requests(6, 64);

  const auto episode = [&] {
    FleetEngine engine(weights, fc);
    engine.prefill_worker(0).inject_crash(1);
    engine.decode_worker(0).inject_crash(2);
    return engine.run(reqs);
  };
  const FleetReport a = episode();
  const FleetReport b = episode();

  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_EQ(a.requests[i].prefill_route, b.requests[i].prefill_route);
    EXPECT_EQ(a.requests[i].decode_route, b.requests[i].decode_route);
    EXPECT_EQ(a.requests[i].reroutes, b.requests[i].reroutes);
    EXPECT_EQ(a.requests[i].d.generated, b.requests[i].d.generated);
    EXPECT_EQ(a.requests[i].d.retries, b.requests[i].d.retries);
    // Bitwise-equal backoffs: the jitter streams replayed exactly.
    EXPECT_EQ(a.requests[i].d.backoff_s, b.requests[i].d.backoff_s);
  }
  EXPECT_EQ(a.reroutes_total, b.reroutes_total);
  EXPECT_EQ(a.prefill_failovers_total, b.prefill_failovers_total);
  EXPECT_EQ(a.chunks_dropped_total, b.chunks_dropped_total);
  EXPECT_EQ(a.crc_failures_total, b.crc_failures_total);
  EXPECT_EQ(a.health_transitions_total, b.health_transitions_total);
  EXPECT_GT(a.chunks_dropped_total, 0u);  // the schedule was not vacuous
}

// The replay contract extends to the checkpoint/migration machinery: same
// seed + same kill schedule (including a mid-decode kill) replays checkpoint
// counts, resume counts, migrations, and drains bitwise.
TEST(FleetEngine, SameSeedReplaysCheckpointAndMigrationCounters) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 2;
  fc.decode_workers = 2;
  fc.prefill_policy = &dispatch_round_robin;
  fc.decode_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e9;
  fc.worker.checkpoint_every_tokens = 2;
  fc.worker.transfer_faults.chunk_drop_prob = 0.1;
  fc.worker.transfer_faults.chunk_corrupt_prob = 0.02;
  fc.worker.transfer_faults.seed = 0xCAFE;
  fc.worker.retry.max_retries = 16;
  const auto reqs = make_requests(6, 64);

  const auto episode = [&] {
    FleetEngine engine(weights, fc);
    // Arm the mid-decode kill on both replicas so it fires wherever request
    // 3 lands; the resume replays past the scripted count, so the second
    // worker's trap never triggers.
    engine.decode_worker(0).inject_crash_at_token(3, 2);
    engine.decode_worker(1).inject_crash_at_token(3, 2);
    return engine.run(reqs);
  };
  const FleetReport a = episode();
  const FleetReport b = episode();

  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_EQ(a.requests[i].decode_route, b.requests[i].decode_route);
    EXPECT_EQ(a.requests[i].d.generated, b.requests[i].d.generated);
    EXPECT_EQ(a.requests[i].d.checkpoints, b.requests[i].d.checkpoints);
    EXPECT_EQ(a.requests[i].d.checkpoint_bytes,
              b.requests[i].d.checkpoint_bytes);
    EXPECT_EQ(a.requests[i].d.resumes, b.requests[i].d.resumes);
    EXPECT_EQ(a.requests[i].d.tokens_replayed,
              b.requests[i].d.tokens_replayed);
    EXPECT_EQ(a.requests[i].d.tokens_recomputed,
              b.requests[i].d.tokens_recomputed);
    EXPECT_EQ(a.requests[i].migrations, b.requests[i].migrations);
    EXPECT_EQ(a.requests[i].drains, b.requests[i].drains);
  }
  EXPECT_EQ(a.checkpoints_total, b.checkpoints_total);
  EXPECT_EQ(a.checkpoint_bytes_total, b.checkpoint_bytes_total);
  EXPECT_EQ(a.checkpoint_failures_total, b.checkpoint_failures_total);
  EXPECT_EQ(a.resumes_total, b.resumes_total);
  EXPECT_EQ(a.tokens_replayed_total, b.tokens_replayed_total);
  EXPECT_EQ(a.tokens_recomputed_total, b.tokens_recomputed_total);
  EXPECT_EQ(a.migrations_total, b.migrations_total);
  EXPECT_EQ(a.drain_events_total, b.drain_events_total);
  // The schedule was non-vacuous: the mid-decode kill fired and a replica
  // resumed from a checkpoint.
  EXPECT_GE(a.decode_crashes_total, 1u);
  EXPECT_GE(a.resumes_total, 1u);
  EXPECT_GT(a.checkpoints_total, 0u);
  EXPECT_EQ(a.re_prefills_from_decode_crashes, 0u);
}

// Concurrent retries on different links draw independent jitter streams: a
// fault injected into one request never shifts another request's backoff
// draws. Under PR 6's engine-wide stream, request 0's recovery would consume
// draws and change request 3's backoff.
TEST(FleetEngine, RetryJitterStreamsAreIndependentAcrossRequests) {
  RetryPolicy policy;
  // Index 0 keeps the bare seed; other indices derive distinct streams.
  Rng bare(policy.jitter_seed);
  Rng derived0 = retry_jitter_rng(policy, 0);
  EXPECT_EQ(derived0.next_u64(), bare.next_u64());
  Rng one = retry_jitter_rng(policy, 1);
  Rng two = retry_jitter_rng(policy, 2);
  Rng one_again = retry_jitter_rng(policy, 1);
  const std::uint64_t d1 = one.next_u64();
  EXPECT_NE(d1, two.next_u64());
  EXPECT_EQ(d1, one_again.next_u64());

  const auto weights = small_weights();
  const DisaggConfig dc = base_config();
  const auto reqs = make_requests(4, 64);

  const auto run_with_crashes =
      [&](std::initializer_list<std::size_t> crash_at) {
        DisaggEngine engine(weights, dc);
        for (const std::size_t index : crash_at) {
          engine.prefill_worker().inject_crash(index);
        }
        return engine.run(reqs);
      };
  const DisaggReport both = run_with_crashes({0, 3});
  const DisaggReport only3 = run_with_crashes({3});
  EXPECT_GT(both.requests[0].backoff_s, 0.0);
  EXPECT_GT(both.requests[3].backoff_s, 0.0);
  // Request 3's draws are unchanged by request 0's recovery activity.
  EXPECT_EQ(both.requests[3].backoff_s, only3.requests[3].backoff_s);
}

// ------------------------------------------------------------- shedding

TEST(FleetEngine, OversizedRequestsAreShedNotDeadlocked) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  // Every pool is one block: no request (40+ prompt tokens, 16-token blocks)
  // can ever be admitted.
  fc.decode_pool_blocks = {1, 1};
  const auto reqs = make_requests(3, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  // Reject policy: shed before burning any prefill compute.
  fc.worker.retry.fallback_local = false;
  {
    FleetEngine engine(weights, fc);
    const FleetReport report = engine.run(reqs);
    EXPECT_EQ(report.shed_total, reqs.size());
    EXPECT_EQ(report.rejected, reqs.size());
    for (const FleetRecord& rec : report.requests) {
      EXPECT_TRUE(rec.shed);
      EXPECT_TRUE(rec.d.rejected);
      EXPECT_TRUE(rec.prefill_route.empty());
      EXPECT_EQ(rec.d.wire_bytes, 0u);
    }
  }

  // Local-decode policy: shed from the disaggregated path but still served,
  // bit-identical, on the prefill worker.
  fc.worker.retry.fallback_local = true;
  {
    FleetEngine engine(weights, fc);
    const FleetReport report = engine.run(reqs);
    EXPECT_EQ(report.shed_total, reqs.size());
    EXPECT_EQ(report.fallbacks, reqs.size());
    EXPECT_EQ(report.rejected, 0u);
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      EXPECT_TRUE(report.requests[i].shed);
      EXPECT_TRUE(report.requests[i].d.fallback_local);
      EXPECT_EQ(report.requests[i].d.generated, expected[i]);
    }
    EXPECT_EQ(report.prefill_workers[0].served, reqs.size());
  }
}

TEST(FleetEngine, FreeBlockPolicyRoutesAroundExhaustedPools) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  fc.decode_policy = &dispatch_most_free_blocks;
  // decode0's pool can never hold a request; decode1's always can.
  fc.decode_pool_blocks = {1, 64};
  const auto reqs = make_requests(4, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  const FleetReport report = engine.run(reqs);
  EXPECT_EQ(report.shed_total, 0u);
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_EQ(report.requests[i].decode_route,
              (std::vector<std::size_t>{1}));
    EXPECT_EQ(report.requests[i].d.generated, expected[i]);
  }
  EXPECT_EQ(report.decode_workers[0].served, 0u);
  EXPECT_EQ(report.decode_workers[1].served, reqs.size());
}

// ------------------------------- checkpointing, crash-resume, live migration

// The tentpole acceptance path: a decode worker dies mid-generation after
// checkpoints have left it. The replica resumes from base blob + latest
// stored delta + replayed suffix — bit-identical tokens, at most one
// checkpoint window recomputed, and zero re-prefills.
TEST(FleetEngine, MidDecodeCrashResumesOnReplicaWithoutRePrefill) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  fc.decode_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e9;  // the crashed worker stays down
  fc.worker.checkpoint_every_tokens = 2;
  const auto reqs = make_requests(4, 64);  // request 1: max_new = 7
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  // Round-robin routes request 1 to decode1; kill it after 5 decoded tokens.
  // Checkpoints at 2 and 4 left the worker before the crash, so the lost
  // window is exactly one token (5 − 4).
  engine.decode_worker(1).inject_crash_at_token(1, 5);
  const FleetReport report = engine.run(reqs);

  ASSERT_EQ(report.requests.size(), reqs.size());
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_FALSE(report.requests[i].d.rejected);
    EXPECT_FALSE(report.requests[i].d.fallback_local);
    EXPECT_EQ(report.requests[i].d.generated, expected[i]);
  }

  const FleetRecord& hit = report.requests[1];
  EXPECT_EQ(hit.decode_route, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(hit.reroutes, 1u);
  EXPECT_EQ(hit.d.decode_crashes, 1u);
  // Checkpoints: cuts at 2 and 4 on the victim, then at 6 on the replica
  // (the resume keeps checkpointing past the replayed suffix).
  EXPECT_EQ(hit.d.checkpoints, 3u);
  EXPECT_GT(hit.d.checkpoint_bytes, 0u);
  EXPECT_EQ(hit.d.checkpoint_failures, 0u);
  EXPECT_EQ(hit.d.resumes, 1u);
  EXPECT_EQ(hit.d.tokens_replayed, 4u);    // the stored cut's suffix
  EXPECT_EQ(hit.d.tokens_recomputed, 1u);  // 5 decoded − 4 checkpointed
  EXPECT_EQ(hit.migrations, 1u);           // resumed on a different replica
  EXPECT_EQ(hit.drains, 0u);

  EXPECT_EQ(report.decode_crashes_total, 1u);
  EXPECT_EQ(report.resumes_total, 1u);
  EXPECT_EQ(report.migrations_total, 1u);
  EXPECT_EQ(report.tokens_replayed_total, 4u);
  EXPECT_EQ(report.tokens_recomputed_total, 1u);
  // The headline: a mid-decode crash never sends the prompt back through
  // prefill.
  EXPECT_EQ(report.re_prefills_total, 0u);
  EXPECT_EQ(report.re_prefills_from_decode_crashes, 0u);
  EXPECT_EQ(report.decode_workers[1].final_health, WorkerHealth::kDown);
}

// Proactive drain: link faults during the handoff demote the worker to
// suspect after dispatch picked it healthy. The worker decodes only to its
// first checkpoint cut; the request migrates live to the healthy replica and
// resumes from that cut — no tokens recomputed, no crash involved.
TEST(FleetEngine, ProactiveDrainMigratesLiveToHealthyReplica) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  fc.decode_policy = &dispatch_round_robin;
  fc.worker.checkpoint_every_tokens = 2;
  const auto reqs = make_requests(1, 64);  // request 0: max_new = 6
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  // Drop the first chunk of request 0's handoff on link (prefill0, decode0):
  // the retransmit round marks decode0 suspect (suspect_after = 1) after the
  // policy already committed the blob there.
  engine.link_faults(0, 0).script_fate(0, ChunkFate::kDropped);
  const FleetReport report = engine.run(reqs);

  ASSERT_EQ(report.requests.size(), 1u);
  const FleetRecord& rec = report.requests[0];
  EXPECT_FALSE(rec.d.rejected);
  EXPECT_EQ(rec.d.generated, expected[0]);

  // decode0 stopped at its first cut (2 tokens); decode1 resumed from it.
  EXPECT_EQ(rec.decode_route, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(rec.drains, 1u);
  EXPECT_EQ(rec.d.resumes, 1u);
  EXPECT_EQ(rec.migrations, 1u);
  EXPECT_EQ(rec.d.tokens_replayed, 2u);
  EXPECT_EQ(rec.d.tokens_recomputed, 0u);  // a drain loses nothing
  EXPECT_EQ(rec.d.decode_crashes, 0u);
  EXPECT_GE(rec.d.checkpoints, 2u);  // the drain cut + the replica's cuts
  EXPECT_EQ(report.drain_events_total, 1u);
  EXPECT_EQ(report.migrations_total, 1u);
  EXPECT_EQ(report.re_prefills_total, 0u);

  EXPECT_EQ(report.decode_workers[0].drains, 1u);
  EXPECT_EQ(report.decode_workers[0].served, 0u);
  EXPECT_EQ(report.decode_workers[0].final_health, WorkerHealth::kSuspect);
  EXPECT_EQ(report.decode_workers[1].served, 1u);
  EXPECT_GT(report.decode_workers[0].busy_s, 0.0);  // partial service booked
}

// Satellite regression: a worker that served its down cooldown re-enters the
// dispatch rotation. The stock policies prefer healthy workers, so without
// the engine's probe-then-readmit rule a recovering worker would starve on
// probation forever while its healthy sibling absorbed all traffic.
TEST(FleetEngine, RecoveringWorkerIsReadmittedAfterCooldown) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 1;
  fc.decode_workers = 2;
  fc.decode_policy = &dispatch_round_robin;
  fc.health.down_cooldown_s = 1e-6;  // recovers before the next dispatch
  fc.health.probation_successes = 1;
  const auto reqs = make_requests(6, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  FleetEngine engine(weights, fc);
  engine.decode_worker(1).inject_crash(1);  // round-robin sends request 1 here
  const FleetReport report = engine.run(reqs);

  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_FALSE(report.requests[i].d.rejected);
    EXPECT_EQ(report.requests[i].d.generated, expected[i]);
  }
  EXPECT_EQ(report.re_prefills_total, 0u);

  // decode1 walked the full trajectory: healthy → down (crash) → recovering
  // (cooldown) → healthy (probe served) — and served requests again.
  const FleetWorkerStats& revived = report.decode_workers[1];
  EXPECT_EQ(revived.crashes, 1u);
  EXPECT_EQ(revived.final_health, WorkerHealth::kHealthy);
  ASSERT_GE(revived.transitions.size(), 3u);
  EXPECT_EQ(revived.transitions[0].from, WorkerHealth::kHealthy);
  EXPECT_EQ(revived.transitions[0].to, WorkerHealth::kDown);
  EXPECT_EQ(revived.transitions[1].from, WorkerHealth::kDown);
  EXPECT_EQ(revived.transitions[1].to, WorkerHealth::kRecovering);
  EXPECT_EQ(revived.transitions[2].from, WorkerHealth::kRecovering);
  EXPECT_EQ(revived.transitions[2].to, WorkerHealth::kHealthy);
  EXPECT_GE(revived.served, 1u);
  // Some post-crash request actually landed on the readmitted worker.
  bool readmitted = false;
  for (std::size_t i = 2; i < report.requests.size(); ++i) {
    for (const std::size_t j : report.requests[i].decode_route) {
      if (j == 1) readmitted = true;
    }
  }
  EXPECT_TRUE(readmitted);
}

// ------------------------------------------------- 2×2 chaos acceptance run

// The PR's acceptance schedule: a 2×2 fleet under probabilistic drops and
// corruption, a link-down window on every link's early life, one scheduled
// prefill kill and one scheduled decode kill. Everything must complete over
// the wire path, bit-identical to the fault-free single-pair run, with zero
// re-prefills attributable to the decode crash and report counters equal to
// the summed per-link ledgers.
TEST(FleetEngine, ChaosTwoByTwoIsBitIdenticalWithZeroDecodeRePrefills) {
  const auto weights = small_weights();
  FleetConfig fc;
  fc.worker = base_config();
  fc.prefill_workers = 2;
  fc.decode_workers = 2;
  fc.prefill_policy = &dispatch_round_robin;
  fc.decode_policy = &dispatch_round_robin;
  fc.worker.transfer_faults.chunk_drop_prob = 0.05;
  fc.worker.transfer_faults.chunk_corrupt_prob = 0.01;
  fc.worker.transfer_faults.seed = 0xF1EE7;
  // Every link is dark for the first simulated second; early chunks wait the
  // window out (down_delays in the ledger) and mark the path suspect.
  fc.worker.transfer_faults.down_windows = {{0.0, 1.0}};
  fc.worker.retry.max_retries = 16;
  const auto reqs = make_requests(8, 64);
  const auto expected = reference_tokens(weights, fc.worker, reqs);

  // Probe run (same seeds, no kills) to learn which workers serve requests 1
  // and 3 — the chaos run replays identical routing up to the first kill, so
  // the scheduled crashes are guaranteed to fire mid-assignment.
  std::size_t decode_victim = 0;
  std::size_t prefill_victim = 0;
  {
    FleetEngine probe(weights, fc);
    const FleetReport r = probe.run(reqs);
    ASSERT_FALSE(r.requests[1].decode_route.empty());
    ASSERT_FALSE(r.requests[3].prefill_route.empty());
    decode_victim = r.requests[1].decode_route.front();
    prefill_victim = r.requests[3].prefill_route.front();
  }

  FleetEngine engine(weights, fc);
  engine.decode_worker(decode_victim).inject_crash(1);
  engine.prefill_worker(prefill_victim).inject_crash(3);
  // Belt-and-braces corruption: request 0's first transfer rides link
  // (prefill0, decode0); its first chunk arrives bit-flipped and the
  // receiver CRC must catch it.
  engine.link_faults(0, 0).script_fate(0, ChunkFate::kCorrupted);
  const FleetReport report = engine.run(reqs);

  ASSERT_EQ(report.requests.size(), reqs.size());
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    const FleetRecord& rec = report.requests[i];
    EXPECT_FALSE(rec.d.rejected);
    EXPECT_FALSE(rec.d.fallback_local);
    EXPECT_FALSE(rec.shed);
    EXPECT_EQ(rec.d.generated, expected[i]);
  }

  // The scheduled kills fired where the probe said they would.
  EXPECT_EQ(report.requests[1].decode_route.front(), decode_victim);
  EXPECT_GE(report.requests[1].decode_route.size(), 2u);
  EXPECT_GE(report.requests[1].reroutes, 1u);
  EXPECT_EQ(report.requests[3].prefill_route.front(), prefill_victim);
  EXPECT_GE(report.requests[3].prefill_failovers, 1u);
  EXPECT_EQ(report.decode_crashes_total, 1u);
  EXPECT_EQ(report.prefill_crashes_total, 1u);

  // Zero re-prefills attributable to the decode crash: the only re-prefill
  // is the prefill kill's.
  EXPECT_EQ(report.re_prefills_total, 1u);
  EXPECT_EQ(report.re_prefills_from_decode_crashes, 0u);

  // Counters equal the summed per-link ledgers, and the schedule was
  // non-vacuous on every fault class.
  const FaultStats ledger = engine.fault_ledger();
  EXPECT_EQ(report.chunks_dropped_total, ledger.drops);
  EXPECT_EQ(report.chunks_corrupted_total, ledger.corruptions);
  EXPECT_GT(ledger.drops, 0u);
  EXPECT_GE(ledger.corruptions, 1u);
  EXPECT_GT(ledger.down_delays, 0u);
  EXPECT_GE(report.crc_failures_total, 1u);
  EXPECT_LE(report.crc_failures_total, ledger.corruptions);
  EXPECT_GT(report.health_transitions_total, 0u);
}

}  // namespace
}  // namespace hack
