// Figure 11: average JCT across requests for different models with Cocktail
// (Falcon-180B with arXiv), A10G prefill, four methods.
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  Table t("Fig 11: avg JCT (s) across models (A10G prefill)");
  t.header({"model", "Baseline", "CacheGen", "KVQuant", "HACK",
            "HACK_vs_base", "HACK_vs_CacheGen"});
  for (const ModelScenario& sc : model_scenarios()) {
    double jct[4] = {};
    for (int m = 0; m < 4; ++m) {
      jct[m] = run(standard_cluster("A10G", sc.model_letter, sc.dataset,
                                    methods[m]))
                   .avg_jct_s;
    }
    t.row({sc.label, fmt(jct[0], 1), fmt(jct[1], 1), fmt(jct[2], 1),
           fmt(jct[3], 1), pct(1.0 - jct[3] / jct[0]),
           pct(1.0 - jct[3] / jct[1])});
  }
  t.print();
  return 0;
}
