#include "attention/layer_attention.h"

#include <cmath>
#include <functional>
#include <utility>

#include "base/thread_pool.h"
#include "core/hq_matmul.h"
#include "tensor/ops.h"

namespace hack {
namespace {

void add_hq(HackAttnStats& stats, const HqStats& hq) {
  stats.int_macs += hq.int_macs;
  stats.approx_flops += hq.approx_flops;
  stats.sum_recompute_flops += hq.sum_flops;
}

void add_attn_stats(HackAttnStats& dst, const HackAttnStats& src) {
  dst.quantized_values += src.quantized_values;
  dst.int_macs += src.int_macs;
  dst.approx_flops += src.approx_flops;
  dst.sum_recompute_flops += src.sum_recompute_flops;
  dst.fp16_tail_macs += src.fp16_tail_macs;
  dst.requant_events += src.requant_events;
  dst.requant_values += src.requant_values;
}

// Runs fn(t) for t in [0, n) on the shared pool; `threads` caps concurrency
// (0 = auto: one dynamically claimed chunk per task). Every task is
// independent — own output slot, own pre-forked RNG streams — so scheduling
// cannot change results.
void for_each_task(std::size_t n, int threads,
                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 1 || n == 1) {
    for (std::size_t t = 0; t < n; ++t) fn(t);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(n, chunks_for_request(threads, n, /*auto_chunks=*/n),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t t = begin; t < end; ++t) fn(t);
                    });
}

}  // namespace

namespace {

// Per-chunk score-buffer budget. Each in-flight head holds an lq × lkv score
// matrix, its softmax, and the P codes (4 + 4 + 1 ≈ 9 bytes per cell); a
// launch that keeps the whole chunk inside the last-level cache streams the
// softmax → quantize → P·V phases from cache instead of DRAM. Decode steps
// and serving-sized prefill chunks fit a whole layer in one launch; huge
// one-shot prefills fall back toward fewer heads per launch, where the
// row-band decomposition already fills the pool. Chunking never changes
// results: every head's streams are forked before the first chunk runs.
inline constexpr std::size_t kBatchedScoreBudgetBytes = 96u << 20;

std::size_t chunk_score_bytes(std::size_t lq, std::size_t lkv) {
  return lq * lkv * 9;
}

// One chunk of heads through quantize-Q → batched Q·Kᵀ → softmax →
// quantize-P → batched P·V → FP16 tail.
void run_attention_chunk(std::span<HeadAttentionTask> tasks,
                         std::span<const std::size_t> lq,
                         std::span<const std::size_t> lkv,
                         std::span<const std::size_t> vq_rows,
                         const AttentionOptions& options,
                         std::span<Matrix> outs, HackAttnStats& local,
                         int threads) {
  const std::size_t t_count = tasks.size();

  // --- Quantize Q for every head (step 3 in Fig. 5). The sub-streams were
  // forked before this call, so the head loop parallelizes without
  // reordering any RNG stream.
  std::vector<QuantizedMatrix> qq(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    local.quantized_values += static_cast<std::int64_t>(tasks[t].q->size());
  }
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackAttentionConfig& cfg = tasks[t].state->config();
    qq[t] = quantize(*tasks[t].q, cfg.q_bits, cfg.pi, QuantAxis::kRow,
                     cfg.rounding, *tasks[t].q_rng,
                     /*allow_ragged_tail=*/false, threads);
  });

  // --- S = Q·Kᵀ for all heads in one (head × row-band) launch.
  std::vector<Matrix> scores(t_count);
  {
    std::vector<HqStats> hq_nt(t_count);
    std::vector<HqGemmTask> gemm(t_count);
    for (std::size_t t = 0; t < t_count; ++t) {
      const HackKvState& st = *tasks[t].state;
      gemm[t] = {&qq[t], &st.k(),
                 st.config().summation_elimination ? &st.k_sums() : nullptr,
                 &scores[t], &hq_nt[t]};
    }
    hq_matmul_nt_batched(gemm, threads);
    for (const HqStats& hq : hq_nt) add_hq(local, hq);
  }
  qq.clear();

  // --- P = softmax(S / √d) (step 4), head-parallel, full precision as on
  // the GPU.
  std::vector<Matrix> p(t_count);
  for_each_task(t_count, threads, [&](std::size_t t) {
    Matrix& s = scores[t];
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(tasks[t].q->cols()));
    for (float& v : s.flat()) v *= inv_sqrt_d;
    p[t] = options.causal ? softmax_rows_causal(s, options.key_offset)
                          : softmax_rows(s);
    s = Matrix();  // scores for this head are dead; cap peak memory
  });

  // --- Quantize P per head. RQE-off heads multiply against the spliced
  // (full + ragged tail) V store, built once per distinct KV head.
  std::vector<QuantizedMatrix> pq(t_count);
  std::vector<const HackKvState*> spliced_owner;
  std::vector<QuantizedMatrix> spliced_v;
  std::vector<std::size_t> spliced_of(t_count, 0);
  for (std::size_t t = 0; t < t_count; ++t) {
    const HackKvState& st = *tasks[t].state;
    if (st.config().requant_elimination) {
      local.quantized_values +=
          vq_rows[t] > 0
              ? static_cast<std::int64_t>(lq[t]) * vq_rows[t]
              : 0;
      continue;
    }
    local.quantized_values += static_cast<std::int64_t>(lq[t]) * lkv[t];
    std::size_t found = spliced_owner.size();
    for (std::size_t s = 0; s < spliced_owner.size(); ++s) {
      if (spliced_owner[s] == &st) {
        found = s;
        break;
      }
    }
    if (found == spliced_owner.size()) {
      spliced_owner.push_back(&st);
      spliced_v.push_back(st.v_quantized_all());
      HACK_CHECK(spliced_v.back().rows == lkv[t],
                 "RQE-off V store out of sync");
    }
    spliced_of[t] = found;
  }
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackAttentionConfig& cfg = tasks[t].state->config();
    if (cfg.requant_elimination) {
      if (vq_rows[t] > 0) {
        pq[t] = quantize(take_cols(p[t], 0, vq_rows[t]), cfg.q_bits, cfg.pi,
                         QuantAxis::kRow, cfg.rounding, *tasks[t].p_rng,
                         /*allow_ragged_tail=*/false, threads);
      }
    } else {
      pq[t] = quantize(p[t], cfg.q_bits, cfg.pi, QuantAxis::kRow, cfg.rounding,
                       *tasks[t].p_rng, /*allow_ragged_tail=*/true, threads);
    }
  });

  // --- O = P·V for all heads with quantized V rows, one batched launch.
  std::vector<Matrix> oq(t_count);
  {
    std::vector<HqStats> hq_nn(t_count);
    std::vector<HqGemmTask> gemm;
    gemm.reserve(t_count);
    std::vector<std::size_t> gemm_task;
    for (std::size_t t = 0; t < t_count; ++t) {
      const HackKvState& st = *tasks[t].state;
      const HackAttentionConfig& cfg = st.config();
      if (cfg.requant_elimination) {
        if (vq_rows[t] == 0) continue;
        gemm.push_back({&pq[t], &st.v_quantized(),
                        cfg.summation_elimination ? &st.v_sums() : nullptr,
                        &oq[t], &hq_nn[t]});
      } else {
        gemm.push_back(
            {&pq[t], &spliced_v[spliced_of[t]], nullptr, &oq[t], &hq_nn[t]});
      }
      gemm_task.push_back(t);
    }
    hq_matmul_batched(gemm, threads);
    for (const std::size_t t : gemm_task) add_hq(local, hq_nn[t]);
  }
  pq.clear();

  // --- RQE FP16 tail (§5.3) and per-head output assembly, head-parallel.
  std::vector<std::int64_t> tail_macs(t_count, 0);
  for_each_task(t_count, threads, [&](std::size_t t) {
    const HackKvState& st = *tasks[t].state;
    Matrix out;
    if (st.config().requant_elimination) {
      out = vq_rows[t] > 0 ? std::move(oq[t])
                           : Matrix(lq[t], tasks[t].q->cols(), 0.0f);
      if (vq_rows[t] < lkv[t]) {
        const Matrix p_tail = take_cols(p[t], vq_rows[t], lkv[t]);
        out = add(out, matmul(p_tail, st.v_tail_fp16()));
        tail_macs[t] = static_cast<std::int64_t>(lq[t]) *
                       (lkv[t] - vq_rows[t]) * tasks[t].q->cols();
      }
    } else {
      out = std::move(oq[t]);
    }
    outs[t] = std::move(out);
    p[t] = Matrix();
  });
  for (const std::int64_t macs : tail_macs) local.fp16_tail_macs += macs;
}

}  // namespace

void hack_attention_batched(std::span<HeadAttentionTask> tasks,
                            const AttentionOptions& options,
                            std::vector<Matrix>& outs, HackAttnStats* stats,
                            int threads) {
  const std::size_t t_count = tasks.size();
  outs.assign(t_count, Matrix());
  if (t_count == 0) return;

  std::vector<std::size_t> lq(t_count), lkv(t_count), vq_rows(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    const HeadAttentionTask& task = tasks[t];
    HACK_CHECK(task.q != nullptr && task.state != nullptr &&
                   task.q_rng != nullptr && task.p_rng != nullptr,
               "attention task missing a field");
    HACK_CHECK(task.q->cols() == task.state->d_head(),
               "query head dim mismatch");
    HACK_CHECK(task.state->tokens() > 0, "attention over empty KV state");
    lq[t] = task.q->rows();
    lkv[t] = task.state->tokens();
    vq_rows[t] = task.state->quantized_v_rows();
  }

  HackAttnStats local{};
  std::size_t begin = 0;
  while (begin < t_count) {
    std::size_t end = begin + 1;
    std::size_t bytes = chunk_score_bytes(lq[begin], lkv[begin]);
    while (end < t_count &&
           bytes + chunk_score_bytes(lq[end], lkv[end]) <=
               kBatchedScoreBudgetBytes) {
      bytes += chunk_score_bytes(lq[end], lkv[end]);
      ++end;
    }
    run_attention_chunk(
        tasks.subspan(begin, end - begin),
        std::span<const std::size_t>(lq).subspan(begin, end - begin),
        std::span<const std::size_t>(lkv).subspan(begin, end - begin),
        std::span<const std::size_t>(vq_rows).subspan(begin, end - begin),
        options, std::span<Matrix>(outs).subspan(begin, end - begin), local,
        threads);
    begin = end;
  }

  if (stats != nullptr) {
    add_attn_stats(*stats, local);
  }
}

// ------------------------------------------------------------ layer state

HackLayerKvState::HackLayerKvState(std::size_t d_head, std::size_t kv_heads,
                                   std::size_t query_heads,
                                   const HackAttentionConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      d_head_(d_head),
      kv_heads_(kv_heads),
      query_heads_(query_heads),
      group_(kv_heads == 0 ? 0 : query_heads / kv_heads) {
  HACK_CHECK(kv_heads > 0, "layer needs at least one KV head");
  HACK_CHECK(query_heads > 0 && query_heads % kv_heads == 0,
             "query_heads=" << query_heads << " must be a positive multiple "
                            << "of kv_heads=" << kv_heads << " (GQA)");
  states_.reserve(kv_heads);
  rngs_.reserve(kv_heads);
  for (std::size_t h = 0; h < kv_heads; ++h) {
    states_.emplace_back(d_head, config);
    rngs_.emplace_back(seed + h);
  }
}

void HackLayerKvState::append_tokens(const Matrix& k_all, const Matrix& v_all,
                                     HackAttnStats* stats) {
  HACK_CHECK(k_all.rows() == v_all.rows(), "K/V row count mismatch");
  HACK_CHECK(k_all.cols() == kv_heads_ * d_head_ &&
                 v_all.cols() == kv_heads_ * d_head_,
             "layer K/V width must be kv_heads * d_head");
  std::vector<HackAttnStats> local(kv_heads_);
  const auto append_head = [&](std::size_t h) {
    states_[h].append_tokens(take_cols(k_all, h * d_head_, (h + 1) * d_head_),
                             take_cols(v_all, h * d_head_, (h + 1) * d_head_),
                             rngs_[h], stats != nullptr ? &local[h] : nullptr);
  };
  // Decode-step appends (one row per head) stay serial; prefill-sized chunks
  // quantize every head in one pool pass. Either way each head consumes only
  // its own stream, so the codes are identical.
  if (config_.threads == 1 ||
      k_all.size() + v_all.size() < kParallelQuantizeMinValues) {
    for (std::size_t h = 0; h < kv_heads_; ++h) append_head(h);
  } else {
    for_each_task(kv_heads_, config_.threads, append_head);
  }
  if (stats != nullptr) {
    for (const HackAttnStats& s : local) add_attn_stats(*stats, s);
  }
}

Matrix HackLayerKvState::attend(const Matrix& q_all,
                                const AttentionOptions& options,
                                HackAttnStats* stats) {
  HACK_CHECK(q_all.cols() == query_heads_ * d_head_,
             "layer Q width must be query_heads * d_head");

  // Fork the Q/P sub-streams in query-head order within each KV head — the
  // exact master-stream consumption of serial per-head hack_attention calls.
  std::vector<Rng> q_rngs, p_rngs;
  q_rngs.reserve(query_heads_);
  p_rngs.reserve(query_heads_);
  for (std::size_t g = 0; g < kv_heads_; ++g) {
    for (std::size_t sub = 0; sub < group_; ++sub) {
      q_rngs.push_back(rngs_[g].fork());
      p_rngs.push_back(rngs_[g].fork());
    }
  }

  std::vector<Matrix> q_heads(query_heads_);
  for (std::size_t t = 0; t < query_heads_; ++t) {
    q_heads[t] = take_cols(q_all, t * d_head_, (t + 1) * d_head_);
  }
  std::vector<HeadAttentionTask> tasks(query_heads_);
  for (std::size_t t = 0; t < query_heads_; ++t) {
    tasks[t] = {&q_heads[t], &states_[t / group_], &q_rngs[t], &p_rngs[t]};
  }
  std::vector<Matrix> outs;
  hack_attention_batched(tasks, options, outs, stats, config_.threads);

  Matrix out(q_all.rows(), query_heads_ * d_head_);
  for (std::size_t t = 0; t < query_heads_; ++t) {
    for (std::size_t r = 0; r < out.rows(); ++r) {
      const auto src = outs[t].row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin() + t * d_head_);
    }
  }
  return out;
}

Matrix HackLayerKvState::prefill(const Matrix& q_all, const Matrix& k_all,
                                 const Matrix& v_all, HackAttnStats* stats) {
  HACK_CHECK(tokens() == 0, "prefill requires a fresh layer state");
  append_tokens(k_all, v_all, stats);
  return attend(q_all, AttentionOptions{.causal = true, .key_offset = 0},
                stats);
}

Matrix HackLayerKvState::decode_step(const Matrix& q_all, const Matrix& k_all,
                                     const Matrix& v_all,
                                     HackAttnStats* stats) {
  HACK_CHECK(q_all.rows() == 1 && k_all.rows() == 1 && v_all.rows() == 1,
             "decode processes one token at a time");
  append_tokens(k_all, v_all, stats);
  return attend(q_all,
                AttentionOptions{.causal = true, .key_offset = tokens() - 1},
                stats);
}

std::size_t HackLayerKvState::packed_kv_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.packed_kv_bytes();
  return total;
}

std::size_t HackLayerKvState::sum_cache_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.sum_cache_bytes();
  return total;
}

std::size_t HackLayerKvState::fp16_tail_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.fp16_tail_bytes();
  return total;
}

std::size_t HackLayerKvState::wire_bytes() const {
  std::size_t total = 0;
  for (const HackKvState& st : states_) total += st.wire_bytes();
  return total;
}

const HackKvState& HackLayerKvState::head_state(std::size_t kv_head) const {
  HACK_CHECK(kv_head < kv_heads_, "kv head " << kv_head << " out of "
                                             << kv_heads_);
  return states_[kv_head];
}

}  // namespace hack
