#include "netsim/transfer.h"

#include <algorithm>

namespace hack {

TransferResult nccl_transfer(Nic& src, Nic& dst, double ready_time,
                             double bytes, int chunks) {
  HACK_CHECK(chunks > 0, "transfer needs at least one chunk");
  const double chunk_bytes = bytes / chunks;
  TransferResult result;
  result.bytes = bytes;
  double chunk_ready = ready_time;
  for (int i = 0; i < chunks; ++i) {
    const Nic::Booking out = src.book(chunk_ready, chunk_bytes);
    const Nic::Booking in = dst.book(out.finish, chunk_bytes);
    if (i == 0) {
      result.start = out.start;
    }
    result.finish = in.finish;
    // The next chunk can leave as soon as the sender NIC frees up; the
    // receive of chunk i overlaps the send of chunk i+1.
    chunk_ready = out.finish;
  }
  return result;
}

FaultyTransferResult nccl_transfer_faulty(Nic& src, Nic& dst,
                                          double ready_time, double bytes,
                                          int chunks, FaultModel* faults) {
  HACK_CHECK(chunks > 0, "transfer needs at least one chunk");
  const double chunk_bytes = bytes / chunks;
  FaultyTransferResult out;
  out.result.bytes = bytes;
  out.chunks.reserve(static_cast<std::size_t>(chunks));
  double chunk_ready = ready_time;
  bool first = true;
  for (int i = 0; i < chunks; ++i) {
    ChunkEvent event;  // default: clean delivery
    double down_s = 0.0;
    if (faults != nullptr) {
      event = faults->next_chunk();
      down_s = faults->down_delay(chunk_ready);
    }
    out.fault_delay_s += down_s;
    const Nic::Booking send = src.book(chunk_ready + down_s, chunk_bytes);
    if (first) {
      out.result.start = send.start;
      first = false;
    }
    if (event.fate == ChunkFate::kDropped) {
      // The chunk burned sender wire time but never occupies the receiver;
      // the sender is free to push the next chunk immediately.
      out.result.finish = std::max(out.result.finish, send.finish);
    } else {
      out.fault_delay_s += event.spike_s;
      const Nic::Booking recv =
          dst.book(send.finish + event.spike_s, chunk_bytes);
      out.result.finish = std::max(out.result.finish, recv.finish);
    }
    out.chunks.push_back(event);
    // Pipelining: the receive (or loss) of chunk i overlaps the send of
    // chunk i+1, exactly like the fault-free model.
    chunk_ready = send.finish;
  }
  return out;
}

}  // namespace hack
