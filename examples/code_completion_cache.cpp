// Code-completion cache scenario (the HumanEval workload): many short
// requests share a long common prefix (repository context), exercising the
// paged KV cache's copy-on-write prefix sharing together with HACK's
// quantized per-head state.
//
// Shows: (1) forked sequences share physical blocks until they diverge;
// (2) the quantized cache admits ~6x the sequences of the FP16 cache under
// the same byte budget.
//
// Build & run:  ./build/examples/code_completion_cache
#include <cstdio>

#include "kvcache/paged_cache.h"
#include "kvcache/quantized_cache.h"
#include "metrics/report.h"

using namespace hack;

int main() {
  constexpr std::size_t kDHead = 64;
  constexpr std::size_t kBlockTokens = 16;
  constexpr std::size_t kPrefix = 96;  // shared repository context

  // ---- FP16 paged cache with prefix sharing -------------------------------
  BlockAllocator allocator(128,
                           PagedKvCache::block_bytes_for(kDHead, kBlockTokens));
  PagedKvCache cache(allocator, kDHead, kBlockTokens);

  Rng rng(3);
  const Matrix prefix_k = Matrix::random_gaussian(kPrefix, kDHead, rng);
  const Matrix prefix_v = Matrix::random_gaussian(kPrefix, kDHead, rng);
  if (!cache.append(0, prefix_k, prefix_v)) return 1;
  const std::size_t blocks_for_prefix = allocator.blocks_in_use();

  // Five completion requests fork the shared prefix, then extend privately.
  for (SeqId seq = 1; seq <= 5; ++seq) {
    cache.fork(0, seq);
    const Matrix k = Matrix::random_gaussian(8, kDHead, rng);
    const Matrix v = Matrix::random_gaussian(8, kDHead, rng);
    if (!cache.append(seq, k, v)) return 1;
  }

  Table t("FP16 paged cache: prefix sharing (5 forks of a 96-token prefix)");
  t.header({"metric", "value"});
  t.row({"blocks for the shared prefix", std::to_string(blocks_for_prefix)});
  t.row({"blocks in use after 5 forks + 8 private tokens each",
         std::to_string(allocator.blocks_in_use())});
  t.row({"blocks if forks copied everything",
         std::to_string(6 * blocks_for_prefix + 5)});
  t.print();

  // ---- Quantized cache capacity under a fixed byte budget -----------------
  HackAttentionConfig hc;
  hc.pi = 32;
  constexpr std::size_t kBudget = 600 * 1024;  // bytes of "GPU memory"
  QuantizedKvCache qcache(/*layers=*/2, /*kv_heads=*/2, kDHead, hc, kBudget);

  std::size_t admitted = 0;
  Rng qrng(4);
  for (SeqId seq = 0; seq < 64; ++seq) {
    if (!qcache.admit(seq)) break;
    std::vector<Matrix> ks, vs;
    for (int head = 0; head < 4; ++head) {
      ks.push_back(Matrix::random_gaussian(kPrefix + 8, kDHead, qrng));
      vs.push_back(Matrix::random_gaussian(kPrefix + 8, kDHead, qrng));
    }
    qcache.append_tokens(seq, ks, vs, qrng);
    ++admitted;
  }
  const double fp16_per_seq =
      2.0 * 2.0 * (kPrefix + 8) * kDHead * 4;  // K+V, FP16, 4 head-states

  Table q("Quantized KV cache under a 600 KiB budget");
  q.header({"metric", "value"});
  q.row({"sequences admitted (2-bit HACK cache)", std::to_string(admitted)});
  q.row({"sequences an FP16 cache would fit",
         std::to_string(static_cast<int>(kBudget / fp16_per_seq))});
  q.row({"bytes in use", std::to_string(qcache.gpu_bytes_in_use())});
  const QuantizedCacheUsage usage = qcache.total_usage();
  q.row({"  packed codes + metadata", std::to_string(usage.packed_kv_bytes)});
  q.row({"  SE sum cache", std::to_string(usage.sum_cache_bytes)});
  q.row({"  RQE FP16 tail", std::to_string(usage.fp16_tail_bytes)});
  q.print();
  return 0;
}
