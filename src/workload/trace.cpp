#include "workload/trace.h"

#include <iomanip>
#include <sstream>

#include "base/check.h"

namespace hack {

std::string Trace::serialize() const {
  std::ostringstream os;
  os << "# hack trace v1: arrival_time_s input_tokens output_tokens\n";
  os << std::setprecision(17);
  for (const ArrivalRecord& r : requests) {
    os << r.time << ' ' << r.shape.input_tokens << ' ' << r.shape.output_tokens
       << '\n';
  }
  return os.str();
}

Trace Trace::parse(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  double last_time = -1.0;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    ArrivalRecord r;
    fields >> r.time >> r.shape.input_tokens >> r.shape.output_tokens;
    HACK_CHECK(!fields.fail(), "malformed trace line " << line_no << ": '"
                                                       << line << "'");
    HACK_CHECK(r.time >= last_time,
               "trace arrivals out of order at line " << line_no);
    HACK_CHECK(r.shape.input_tokens > 0 && r.shape.output_tokens > 0,
               "non-positive lengths at line " << line_no);
    last_time = r.time;
    trace.requests.push_back(r);
  }
  return trace;
}

Trace Trace::record(const DatasetSpec& dataset, double rps, int count,
                    Rng& rng) {
  return Trace{.requests = generate_arrivals(dataset, rps, count, rng)};
}

bool operator==(const ArrivalRecord& a, const ArrivalRecord& b) {
  return a.time == b.time && a.shape.input_tokens == b.shape.input_tokens &&
         a.shape.output_tokens == b.shape.output_tokens;
}

bool operator==(const Trace& a, const Trace& b) {
  return a.requests == b.requests;
}

}  // namespace hack
