#include "attention/dequant_attention.h"

#include "tensor/ops.h"

namespace hack {

DequantKvState::DequantKvState(std::size_t d_head,
                               std::shared_ptr<const KvCodec> codec)
    : d_head_(d_head), codec_(std::move(codec)) {
  HACK_CHECK(codec_ != nullptr, "DequantKvState requires a codec");
}

void DequantKvState::append_tokens(const Matrix& k_new, const Matrix& v_new,
                                   Rng& rng, DequantAttnStats* stats) {
  HACK_CHECK(k_new.rows() == v_new.rows(), "K/V row count mismatch");
  HACK_CHECK(k_new.cols() == d_head_ && v_new.cols() == d_head_,
             "K/V head dim mismatch");
  k_blobs_.push_back(codec_->encode(k_new, KvKind::kKey, rng));
  v_blobs_.push_back(codec_->encode(v_new, KvKind::kValue, rng));
  tokens_ += k_new.rows();
  if (stats != nullptr) {
    stats->encoded_values +=
        static_cast<std::int64_t>(k_new.size() + v_new.size());
  }
}

namespace {

Matrix reconstruct_all(const std::vector<std::vector<std::uint8_t>>& blobs,
                       const KvCodec& codec) {
  Matrix out;
  for (const auto& blob : blobs) {
    out = out.empty() ? codec.decode(blob) : vstack(out, codec.decode(blob));
  }
  return out;
}

}  // namespace

Matrix DequantKvState::reconstruct_k(DequantAttnStats* stats) const {
  Matrix k = reconstruct_all(k_blobs_, *codec_);
  if (stats != nullptr) {
    stats->dequantized_values += static_cast<std::int64_t>(k.size());
  }
  return k;
}

Matrix DequantKvState::reconstruct_v(DequantAttnStats* stats) const {
  Matrix v = reconstruct_all(v_blobs_, *codec_);
  if (stats != nullptr) {
    stats->dequantized_values += static_cast<std::int64_t>(v.size());
  }
  return v;
}

std::size_t DequantKvState::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& blob : k_blobs_) total += blob.size();
  for (const auto& blob : v_blobs_) total += blob.size();
  return total;
}

Matrix dequant_attention(const Matrix& q, const DequantKvState& state,
                         const AttentionOptions& options,
                         DequantAttnStats* stats) {
  HACK_CHECK(state.tokens() > 0, "attention over empty KV state");
  const Matrix k = state.reconstruct_k(stats);
  const Matrix v = state.reconstruct_v(stats);
  if (stats != nullptr) {
    ++stats->dequant_calls;
  }
  return attention_reference(q, k, v, options);
}

}  // namespace hack
