// Kernel microbenchmarks (google-benchmark): the primitive costs behind the
// paper's argument. The headline comparison is HQ_MatmulDecode vs
// DequantThenMatmulDecode — computing on quantized KV versus the baselines'
// dequantize-first path, at decode shapes (single query row, long KV).
//
// Before the google-benchmark suite runs, main() emits a JSON line per
// layout comparing the seed scalar HQ-GEMM (hq_matmul_reference) against the
// blocked engine at 1 thread and at full parallelism, at prefill shapes —
// the old-vs-new speedup lands in the bench trajectory as
// {"bench":"hq_gemm_prefill","layout":...,"speedup_blocked_1t":...,...}.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "attention/flash.h"
#include "attention/hack_attention.h"
#include "attention/reference.h"
#include "base/thread_pool.h"
#include "codec/cachegen.h"
#include "codec/kvquant.h"
#include "core/hq_matmul.h"
#include "quant/packed.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"

namespace {

using namespace hack;

void BM_Quantize2Bit(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(tokens, 128, rng);
  Rng qrng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, qrng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_Quantize2Bit)->Arg(256)->Arg(1024);

void BM_Dequantize(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix m = Matrix::random_gaussian(tokens, 128, rng);
  Rng qrng(4);
  const QuantizedMatrix q =
      quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, qrng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dequantize(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_Dequantize)->Arg(256)->Arg(1024);

void BM_PackUnpack2Bit(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint8_t> codes(1 << 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.next_below(4));
  for (auto _ : state) {
    const PackedBits packed = PackedBits::pack(codes, 2);
    benchmark::DoNotOptimize(packed.unpack());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_PackUnpack2Bit);

// Decode-shape comparison: S = q · Kᵀ with L cached keys.
void BM_HqMatmulDecode(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q1(7), q2(8);
  const QuantizedMatrix qq =
      quantize(q, 8, 64, QuantAxis::kRow, Rounding::kStochastic, q1);
  const QuantizedMatrix qk =
      quantize(k, 2, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  const SumCache sums = SumCache::build(qk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hq_matmul_nt(qq, qk, &sums));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_HqMatmulDecode)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DequantThenMatmulDecode(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q2(10);
  const QuantizedMatrix qk =
      quantize(k, 2, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  for (auto _ : state) {
    const Matrix k_restored = dequantize(qk);  // the per-iteration dequant
    benchmark::DoNotOptimize(matmul_nt(q, k_restored));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_DequantThenMatmulDecode)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FlashAttention(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  const Matrix v = Matrix::random_gaussian(l, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_flash(
        q, k, v, {.causal = true, .key_offset = l - 1, .tile_tokens = 64}));
  }
}
BENCHMARK(BM_FlashAttention)->Arg(1024)->Arg(4096);

void BM_HackAttentionDecodeStep(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  HackAttentionConfig config;
  config.pi = 64;
  HackKvState kv(128, config);
  kv.append_tokens(Matrix::random_gaussian(l, 128, rng),
                   Matrix::random_gaussian(l, 128, rng), rng);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hack_attention(
        q, kv, {.causal = true, .key_offset = kv.tokens() - 1}, rng));
  }
}
BENCHMARK(BM_HackAttentionDecodeStep)->Arg(1024)->Arg(4096);

void BM_CacheGenEncode(benchmark::State& state) {
  Rng rng(13);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const CacheGenCodec codec;
  Rng qrng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(chunk, KvKind::kKey, qrng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_CacheGenEncode);

void BM_CacheGenDecode(benchmark::State& state) {
  Rng rng(15);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const CacheGenCodec codec;
  Rng qrng(16);
  const auto blob = codec.encode(chunk, KvKind::kKey, qrng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(blob));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_CacheGenDecode);

void BM_KvQuantRoundTrip(benchmark::State& state) {
  Rng rng(17);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const KvQuantCodec codec;
  Rng qrng(18);
  for (auto _ : state) {
    const auto blob = codec.encode(chunk, KvKind::kKey, qrng);
    benchmark::DoNotOptimize(codec.decode(blob));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_KvQuantRoundTrip);

// --- Prefill-shape HQ-GEMM: seed scalar path vs the blocked engine. --------

struct PrefillOperands {
  QuantizedMatrix a;      // 8-bit row-axis P/Q operand, M x Z
  QuantizedMatrix b_col;  // 2-bit col-axis V operand, Z x N
  QuantizedMatrix b_row;  // 2-bit row-axis K operand, N x Z
};

PrefillOperands make_prefill_operands(std::size_t m, std::size_t z,
                                      std::size_t n, std::size_t pi) {
  Rng rng(42);
  const Matrix a = Matrix::random_gaussian(m, z, rng);
  const Matrix b = Matrix::random_gaussian(z, n, rng);
  const Matrix bt = transpose(b);
  Rng q1(43), q2(44), q3(45);
  PrefillOperands ops;
  ops.a = quantize(a, 8, pi, QuantAxis::kRow, Rounding::kStochastic, q1);
  ops.b_col = quantize(b, 2, pi, QuantAxis::kCol, Rounding::kStochastic, q2);
  ops.b_row = quantize(bt, 2, pi, QuantAxis::kRow, Rounding::kStochastic, q3);
  return ops;
}

void BM_HqGemmPrefillScalarNn(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const PrefillOperands ops = make_prefill_operands(dim, 128, dim, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hq_matmul_reference(ops.a, ops.b_col));
  }
}
BENCHMARK(BM_HqGemmPrefillScalarNn)->Arg(256)->Arg(512);

void BM_HqGemmPrefillBlockedNn(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const PrefillOperands ops = make_prefill_operands(dim, 128, dim, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hq_matmul(ops.a, ops.b_col, nullptr, nullptr, threads));
  }
}
BENCHMARK(BM_HqGemmPrefillBlockedNn)
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({512, 0});  // 0 = all lanes of the global pool

void BM_HqGemmPrefillScalarNt(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const PrefillOperands ops = make_prefill_operands(dim, 128, dim, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hq_matmul_nt_reference(ops.a, ops.b_row));
  }
}
BENCHMARK(BM_HqGemmPrefillScalarNt)->Arg(256)->Arg(512);

void BM_HqGemmPrefillBlockedNt(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  const PrefillOperands ops = make_prefill_operands(dim, 128, dim, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hq_matmul_nt(ops.a, ops.b_row, nullptr, nullptr, threads));
  }
}
BENCHMARK(BM_HqGemmPrefillBlockedNt)
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({512, 0});

// Best-of-reps wall time of `fn`, in milliseconds.
double time_best_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm up caches and the thread pool
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

// The headline old-vs-new numbers, one JSON object per layout.
void print_hq_gemm_comparison_json() {
  const std::size_t m = 512, z = 128, n = 512, pi = 64;
  const PrefillOperands ops = make_prefill_operands(m, z, n, pi);
  const std::size_t lanes = ThreadPool::global().lanes();
  const int reps = 3;

  const struct {
    const char* layout;
    std::function<Matrix()> scalar, blocked_1t, blocked_mt;
  } legs[] = {
      {"nn",
       [&] { return hq_matmul_reference(ops.a, ops.b_col); },
       [&] { return hq_matmul(ops.a, ops.b_col, nullptr, nullptr, 1); },
       [&] { return hq_matmul(ops.a, ops.b_col, nullptr, nullptr, 0); }},
      {"nt",
       [&] { return hq_matmul_nt_reference(ops.a, ops.b_row); },
       [&] { return hq_matmul_nt(ops.a, ops.b_row, nullptr, nullptr, 1); },
       [&] { return hq_matmul_nt(ops.a, ops.b_row, nullptr, nullptr, 0); }},
  };
  for (const auto& leg : legs) {
    Matrix sink;
    const double scalar_ms =
        time_best_ms([&] { sink = leg.scalar(); }, reps);
    const double blocked_1t_ms =
        time_best_ms([&] { sink = leg.blocked_1t(); }, reps);
    const double blocked_mt_ms =
        time_best_ms([&] { sink = leg.blocked_mt(); }, reps);
    benchmark::DoNotOptimize(sink);
    std::printf(
        "{\"bench\":\"hq_gemm_prefill\",\"layout\":\"%s\",\"m\":%zu,"
        "\"n\":%zu,\"z\":%zu,\"pi\":%zu,\"a_bits\":8,\"b_bits\":2,"
        "\"threads\":%zu,\"scalar_ms\":%.3f,\"blocked_1t_ms\":%.3f,"
        "\"blocked_mt_ms\":%.3f,\"speedup_blocked_1t\":%.2f,"
        "\"speedup_blocked_mt\":%.2f}\n",
        leg.layout, m, n, z, pi, lanes, scalar_ms, blocked_1t_ms,
        blocked_mt_ms, scalar_ms / blocked_1t_ms, scalar_ms / blocked_mt_ms);
  }
  std::fflush(stdout);
}

// --- Packed-resident decode GEMV vs unpack-first. ---------------------------

// One decode step's score GEMV (q · Kᵀ, NT) and value GEMV (p · V, NN) over a
// packed-resident cache, against the unpack-first alternative: expand the
// packed plane to bytes, then run the same byte-storage kernel. The packed
// kernels expand codes in-register, so the gap is the memory traffic of the
// materialized byte plane — the tentpole claim.
void BM_PackedGemvDecodeNt(benchmark::State& state) {
  const auto bits = static_cast<int>(state.range(0));
  const auto l = static_cast<std::size_t>(state.range(1));
  Rng rng(19);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q1(20), q2(21);
  const QuantizedMatrix qq =
      quantize(q, 8, 64, QuantAxis::kRow, Rounding::kStochastic, q1);
  QuantizedMatrix qk =
      quantize(k, bits, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  pack_storage(qk);
  const SumCache sums = SumCache::build(qk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hq_matmul_nt(qq, qk, &sums, nullptr, 1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_PackedGemvDecodeNt)
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096});

void BM_UnpackFirstGemvDecodeNt(benchmark::State& state) {
  const auto bits = static_cast<int>(state.range(0));
  const auto l = static_cast<std::size_t>(state.range(1));
  Rng rng(22);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q1(23), q2(24);
  const QuantizedMatrix qq =
      quantize(q, 8, 64, QuantAxis::kRow, Rounding::kStochastic, q1);
  QuantizedMatrix qk =
      quantize(k, bits, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  pack_storage(qk);
  const SumCache sums = SumCache::build(qk);
  for (auto _ : state) {
    QuantizedMatrix expanded = qk;  // the per-step unpack the kernels avoid
    unpack_storage(expanded);
    benchmark::DoNotOptimize(hq_matmul_nt(qq, expanded, &sums, nullptr, 1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_UnpackFirstGemvDecodeNt)
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096});

// The headline packed-vs-unpack-first numbers: one JSON line per
// (mode, kv_bits) at a long decode context, single thread.
void print_packed_gemm_comparison_json() {
  const std::size_t l = 8192, d = 128, pi = 64;
  Rng rng(60);
  const Matrix qrow = Matrix::random_gaussian(1, d, rng);
  const Matrix k = Matrix::random_gaussian(l, d, rng);
  const Matrix v = Matrix::random_gaussian(l, d, rng);
  const Matrix prow = Matrix::random_gaussian(1, l, rng);
  // Best-of-9 per leg: the gated metric is a ratio of two timings, so each
  // side needs a stable floor or the trend step sees noise as regression.
  const int reps = 9;

  for (const int bits : {2, 4, 8}) {
    Rng q1(61), q2(62), q3(63), q4(64);
    const QuantizedMatrix qq =
        quantize(qrow, 8, pi, QuantAxis::kRow, Rounding::kStochastic, q1);
    QuantizedMatrix qk =
        quantize(k, bits, pi, QuantAxis::kRow, Rounding::kStochastic, q2);
    pack_storage(qk);
    const SumCache k_sums = SumCache::build(qk);
    const QuantizedMatrix pq =
        quantize(prow, 8, pi, QuantAxis::kRow, Rounding::kStochastic, q3);
    QuantizedMatrix qv =
        quantize(v, bits, pi, QuantAxis::kCol, Rounding::kStochastic, q4);
    pack_storage(qv);
    const SumCache v_sums = SumCache::build(qv);

    const struct {
      const char* mode;
      std::function<Matrix()> packed, unpack_first;
    } legs[] = {
        {"nt", [&] { return hq_matmul_nt(qq, qk, &k_sums, nullptr, 1); },
         [&] {
           QuantizedMatrix e = qk;
           unpack_storage(e);
           return hq_matmul_nt(qq, e, &k_sums, nullptr, 1);
         }},
        {"nn", [&] { return hq_matmul(pq, qv, &v_sums, nullptr, 1); },
         [&] {
           QuantizedMatrix e = qv;
           unpack_storage(e);
           return hq_matmul(pq, e, &v_sums, nullptr, 1);
         }},
    };
    for (const auto& leg : legs) {
      Matrix sink;
      const double packed_ms =
          time_best_ms([&] { sink = leg.packed(); }, reps);
      const double unpack_ms =
          time_best_ms([&] { sink = leg.unpack_first(); }, reps);
      benchmark::DoNotOptimize(sink);
      std::printf(
          "{\"bench\":\"packed_gemm_decode\",\"mode\":\"%s\",\"kv_bits\":%d,"
          "\"context\":%zu,\"d_head\":%zu,\"pi\":%zu,\"threads\":1,"
          "\"packed_ms\":%.3f,\"unpack_first_ms\":%.3f,\"speedup\":%.2f,"
          "\"tokens_per_s\":%.0f}\n",
          leg.mode, bits, l, d, pi, packed_ms, unpack_ms,
          unpack_ms / packed_ms, static_cast<double>(l) / (packed_ms * 1e-3));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  print_hq_gemm_comparison_json();
  print_packed_gemm_comparison_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
