// Per-partition code sums — the "summation elimination" (SE) optimization.
//
// Eq. (4)'s correction needs Σ_{z∈g} b'_{zj} for every (column j, group g) of
// the quantized KV matrices. Recomputing that each decode iteration costs
// N·Z adds; HACK instead stores the sums when data is quantized and reuses
// them. A sum of Π codes of b bits needs b + ⌈log2 Π⌉ bits; the paper stores
// INT16 for alignment (§6), and so does this cache (2 bytes per entry in the
// memory accounting).
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quantizer.h"

namespace hack {

class SumCache {
 public:
  SumCache() = default;

  // Computes code sums over each (outer index, partition) of q.
  static SumCache build(const QuantizedMatrix& q);

  // Rehydrates a cache from wire-format sections (kvcache/kv_wire.h): the
  // shipped SE sums land here directly instead of being recomputed from the
  // codes, which is the whole point of transmitting them.
  static SumCache from_parts(std::size_t outer, std::size_t groups,
                             std::vector<std::int32_t> sums);

  std::size_t outer() const { return outer_; }
  std::size_t groups() const { return groups_; }

  std::int32_t sum(std::size_t outer_idx, std::size_t group) const {
    HACK_CHECK(outer_idx < outer_ && group < groups_, "sum index out of range");
    return sums_[outer_idx * groups_ + group];
  }

  // Contiguous outer-major storage ([outer_idx * groups + group]), read
  // directly by the HQ-GEMM kernels instead of copying entry by entry.
  const std::int32_t* data() const { return sums_.data(); }

  // Extends the cache with the sums of newly appended data. For row-axis
  // matrices (K cache) `extra` adds outer entries; for col-axis matrices
  // (V cache) it adds groups to each existing outer entry.
  void append_rows(const QuantizedMatrix& extra);
  void append_inner_groups(const QuantizedMatrix& extra);

  // Modeled storage footprint: INT16 per entry.
  std::size_t storage_bytes() const { return 2 * sums_.size(); }

 private:
  static std::vector<std::int32_t> sums_of(const QuantizedMatrix& q);

  std::size_t outer_ = 0;
  std::size_t groups_ = 0;
  std::vector<std::int32_t> sums_;
};

}  // namespace hack
