#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"

namespace hack {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++seen[rng.next_below(8)];
  }
  for (const int count : seen) {
    EXPECT_GT(count, 300);  // each bucket near 500 under uniformity
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.next_exponential(4.0);
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StochasticRound, IntegerFixedPoint) {
  Rng rng(1);
  EXPECT_EQ(stochastic_round(3.0, rng), 3);
  EXPECT_EQ(stochastic_round(-2.0, rng), -2);
  EXPECT_EQ(stochastic_round(0.0, rng), 0);
}

TEST(StochasticRound, AlwaysAdjacent) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double x = (rng.next_double() - 0.5) * 100.0;
    const auto r = static_cast<double>(stochastic_round(x, rng));
    EXPECT_TRUE(r == std::floor(x) || r == std::ceil(x)) << "x=" << x;
  }
}

TEST(StochasticRound, UnbiasedEstimator) {
  Rng rng(3);
  const double x = 2.3;
  double sum = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(stochastic_round(x, rng));
  }
  EXPECT_NEAR(sum / kN, x, 0.01);
}

TEST(StochasticRound, NegativeValuesUnbiased) {
  Rng rng(4);
  const double x = -1.75;
  double sum = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(stochastic_round(x, rng));
  }
  EXPECT_NEAR(sum / kN, x, 0.01);
}

TEST(NearestRound, HalfwayAndExact) {
  EXPECT_EQ(nearest_round(2.5), 3);  // llround: away from zero
  EXPECT_EQ(nearest_round(-2.5), -3);
  EXPECT_EQ(nearest_round(2.49), 2);
  EXPECT_EQ(nearest_round(7.0), 7);
}

}  // namespace
}  // namespace hack
