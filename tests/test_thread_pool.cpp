#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/thread_pool.h"

namespace hack {
namespace {

// Every index in [0, n) must be visited exactly once, whatever the pool size
// and chunk count.
void expect_full_coverage(ThreadPool& pool, std::size_t n,
                          std::size_t chunks) {
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(n, chunks, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  EXPECT_EQ(pool.lanes(), 1u);
  expect_full_coverage(pool, 100, 1);
  // Chunk decomposition still honored serially.
  expect_full_coverage(pool, 100, 7);
}

TEST(ThreadPool, SingleWorker) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 2u);
  expect_full_coverage(pool, 1000, 2);
}

TEST(ThreadPool, ManyWorkers) {
  ThreadPool pool(7);
  expect_full_coverage(pool, 12345, 8);
  // More chunks than lanes: workers drain the queue.
  expect_full_coverage(pool, 12345, 64);
  // More chunks than indices: clamped to one index per chunk.
  expect_full_coverage(pool, 5, 100);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int> data(100000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> total{0};
  pool.parallel_for(data.size(), 16, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    total.fetch_add(local);
  });
  const long long expect =
      std::accumulate(data.begin(), data.end(), 0LL);
  EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100, 8,
                        [&](std::size_t begin, std::size_t) {
                          if (begin >= 50) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
  // The pool survives and keeps working after a throwing batch.
  expect_full_coverage(pool, 64, 8);
}

TEST(ThreadPool, ExceptionPropagatesInline) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.parallel_for(
                   10, 2, [](std::size_t, std::size_t) { throw 42; }),
               int);
}

TEST(ThreadPool, ChunkDecompositionIsPoolSizeIndependent) {
  // The same (n, chunks) request must produce identical ranges on any pool —
  // this is what makes threaded float kernels reproducible across machines.
  auto ranges_of = [](ThreadPool& pool, std::size_t n, std::size_t chunks) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    pool.parallel_for(n, chunks, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  ThreadPool serial(0), wide(6);
  EXPECT_EQ(ranges_of(serial, 103, 8), ranges_of(wide, 103, 8));
  EXPECT_EQ(ranges_of(serial, 8, 3), ranges_of(wide, 8, 3));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A loop body calling parallel_for on its own pool must not deadlock on
  // the dispatch lock; the nested loop runs inline with full coverage.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(64 * 16);
  pool.parallel_for(64, 8, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(16, 4, [&, o](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i) {
          visits[o * 16 + i].fetch_add(1);
        }
      });
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, CurrentReportsParallelRegion) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::current(), nullptr);
  EXPECT_FALSE(pool.in_parallel_region());
  std::atomic<int> inside{0}, outside{0};
  pool.parallel_for(32, 8, [&](std::size_t, std::size_t) {
    (pool.in_parallel_region() ? inside : outside).fetch_add(1);
  });
  EXPECT_GT(inside.load(), 0);
  EXPECT_EQ(outside.load(), 0);
  EXPECT_EQ(ThreadPool::current(), nullptr);  // cleared after the dispatch
}

TEST(ThreadPool, DeepNestedParallelForTerminates) {
  // Scheduler-driven launches can nest three levels deep (engine step task →
  // matmul → quantize slice); every level must fall back to inline execution
  // with exact coverage instead of deadlocking the shared pool.
  ThreadPool pool(3);
  constexpr std::size_t kA = 8, kB = 4, kC = 4;
  std::vector<std::atomic<int>> visits(kA * kB * kC);
  pool.parallel_for(kA, 4, [&](std::size_t ab, std::size_t ae) {
    for (std::size_t a = ab; a < ae; ++a) {
      EXPECT_TRUE(pool.in_parallel_region());
      pool.parallel_for(kB, 2, [&, a](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          pool.parallel_for(kC, 2, [&, a, b](std::size_t cb, std::size_t ce) {
            for (std::size_t c = cb; c < ce; ++c) {
              visits[(a * kB + b) * kC + c].fetch_add(1);
            }
          });
        }
      });
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NestedExceptionPropagatesThroughOuterLoop) {
  // An exception thrown inside a nested (inline) parallel_for surfaces from
  // the nested call, crosses the outer chunk boundary, and reaches the
  // outermost caller; the pool keeps working afterwards.
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16, 4,
                        [&](std::size_t begin, std::size_t) {
                          pool.parallel_for(
                              8, 2, [&](std::size_t ib, std::size_t) {
                                if (begin >= 8 && ib >= 4) {
                                  throw std::runtime_error("nested boom");
                                }
                              });
                        }),
      std::runtime_error);
  expect_full_coverage(pool, 64, 8);
}

TEST(ThreadPool, NestedOnGlobalPoolFromEngineStyleTasks) {
  // The serving engine's shape: per-sequence tasks on the global pool whose
  // bodies call library kernels that re-enter global().parallel_for. Total
  // work must be exact and the dispatch must terminate.
  ThreadPool& pool = ThreadPool::global();
  std::atomic<long long> total{0};
  pool.parallel_for(6, 6, [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      pool.parallel_for(1000, 0, [&](std::size_t b, std::size_t e) {
        long long local = 0;
        for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(i);
        total.fetch_add(local);
      });
    }
  });
  EXPECT_EQ(total.load(), 6LL * (999LL * 1000LL / 2));
}

TEST(ThreadPool, BackToBackBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, 8, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 64) << "round " << round;
  }
}

TEST(ThreadPool, ParseThreadOverride) {
  EXPECT_EQ(ThreadPool::parse_thread_override(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override("4"), 4u);
  EXPECT_EQ(ThreadPool::parse_thread_override("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_thread_override("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override("-3"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override("abc"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override("8x"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_override("999999"), 0u);  // capped
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  ThreadPool& pool = ThreadPool::global();
  EXPECT_GE(pool.lanes(), 1u);
  EXPECT_EQ(&pool, &ThreadPool::global());
  expect_full_coverage(pool, 1000, 0);  // chunks=0 -> all lanes
}

}  // namespace
}  // namespace hack
