#include "kvcache/paged_cache.h"

#include "tensor/half.h"

namespace hack {

PagedKvCache::PagedKvCache(BlockAllocator& allocator, std::size_t d_head,
                           std::size_t block_tokens)
    : allocator_(allocator), d_head_(d_head), block_tokens_(block_tokens) {
  HACK_CHECK(d_head > 0 && block_tokens > 0, "bad cache geometry");
  HACK_CHECK(allocator.block_bytes() >= block_bytes_for(d_head, block_tokens),
             "allocator blocks too small for this cache geometry");
  storage_.resize(allocator.num_blocks());
}

std::size_t PagedKvCache::tokens(SeqId seq) const {
  const auto it = tables_.find(seq);
  return it == tables_.end() ? 0 : it->second.tokens;
}

float PagedKvCache::read(BlockId block, std::size_t slot, std::size_t col,
                         bool v) const {
  const auto& data = storage_[block];
  const std::size_t idx = ((v ? block_tokens_ : 0) + slot) * d_head_ + col;
  return Half::from_bits(data[idx]).to_float();
}

void PagedKvCache::write(BlockId block, std::size_t slot, std::size_t col,
                         bool v, float value) {
  auto& data = storage_[block];
  if (data.empty()) {
    data.assign(block_tokens_ * d_head_ * 2, 0);
  }
  const std::size_t idx = ((v ? block_tokens_ : 0) + slot) * d_head_ + col;
  data[idx] = Half(value).bits();
}

void PagedKvCache::make_unique(Table& table, std::size_t block_idx) {
  const BlockId old_id = table.blocks[block_idx];
  if (allocator_.ref_count(old_id) == 1) {
    return;
  }
  const BlockId copy = allocator_.allocate();
  HACK_CHECK(copy != kInvalidBlock, "pool exhausted during copy-on-write");
  storage_[copy] = storage_[old_id];
  allocator_.release(old_id);
  table.blocks[block_idx] = copy;
  ++cow_copies_;
}

bool PagedKvCache::append(SeqId seq, const Matrix& k_new, const Matrix& v_new) {
  HACK_CHECK(k_new.rows() == v_new.rows() && k_new.cols() == d_head_ &&
                 v_new.cols() == d_head_,
             "bad K/V append shape");
  Table& table = tables_[seq];

  // Pre-flight: count blocks needed so failure leaves the table untouched.
  // Besides fresh blocks this counts the copy-on-write copies the write loop
  // will make for shared blocks in the written range — without them a forked
  // sequence could pass the check and then hit exhaustion mid-write.
  const std::size_t total_after = table.tokens + k_new.rows();
  const std::size_t blocks_after = (total_after + block_tokens_ - 1) / block_tokens_;
  std::size_t need = blocks_after - table.blocks.size();
  const std::size_t first_written = table.tokens / block_tokens_;
  for (std::size_t idx = first_written; idx < table.blocks.size(); ++idx) {
    if (allocator_.ref_count(table.blocks[idx]) > 1) ++need;
  }
  if (!allocator_.can_allocate(need)) {
    ++oom_appends_;
    if (table.blocks.empty() && table.tokens == 0) tables_.erase(seq);
    return false;
  }
  for (std::size_t i = 0; i < need; ++i) {
    const BlockId id = allocator_.allocate();
    HACK_CHECK(id != kInvalidBlock, "allocator lied about capacity");
    storage_[id].assign(block_tokens_ * d_head_ * 2, 0);
    table.blocks.push_back(id);
  }

  for (std::size_t r = 0; r < k_new.rows(); ++r) {
    const std::size_t token = table.tokens + r;
    const std::size_t block_idx = token / block_tokens_;
    make_unique(table, block_idx);
    const BlockId block = table.blocks[block_idx];
    const std::size_t slot = token % block_tokens_;
    for (std::size_t c = 0; c < d_head_; ++c) {
      write(block, slot, c, /*v=*/false, k_new(r, c));
      write(block, slot, c, /*v=*/true, v_new(r, c));
    }
  }
  table.tokens += k_new.rows();
  return true;
}

namespace {

Matrix gather(const std::vector<BlockId>& blocks, std::size_t tokens,
              std::size_t block_tokens, std::size_t d_head, bool v,
              const PagedKvCache& cache,
              float (PagedKvCache::*reader)(BlockId, std::size_t, std::size_t,
                                            bool) const) {
  Matrix out(tokens, d_head);
  for (std::size_t t = 0; t < tokens; ++t) {
    const BlockId block = blocks[t / block_tokens];
    const std::size_t slot = t % block_tokens;
    for (std::size_t c = 0; c < d_head; ++c) {
      out(t, c) = (cache.*reader)(block, slot, c, v);
    }
  }
  return out;
}

}  // namespace

Matrix PagedKvCache::gather_k(SeqId seq) const {
  const auto it = tables_.find(seq);
  HACK_CHECK(it != tables_.end(), "unknown sequence " << seq);
  return gather(it->second.blocks, it->second.tokens, block_tokens_, d_head_,
                /*v=*/false, *this, &PagedKvCache::read);
}

Matrix PagedKvCache::gather_v(SeqId seq) const {
  const auto it = tables_.find(seq);
  HACK_CHECK(it != tables_.end(), "unknown sequence " << seq);
  return gather(it->second.blocks, it->second.tokens, block_tokens_, d_head_,
                /*v=*/true, *this, &PagedKvCache::read);
}

void PagedKvCache::fork(SeqId src, SeqId dst) {
  const auto it = tables_.find(src);
  HACK_CHECK(it != tables_.end(), "fork of unknown sequence " << src);
  HACK_CHECK(!tables_.contains(dst), "fork target already exists");
  Table copy;
  copy.tokens = it->second.tokens;
  copy.blocks = it->second.blocks;
  copy.forked = true;
  it->second.forked = true;
  for (const BlockId id : copy.blocks) {
    allocator_.add_ref(id);
  }
  tables_.emplace(dst, std::move(copy));
}

void PagedKvCache::drop(SeqId seq) {
  const auto it = tables_.find(seq);
  HACK_CHECK(it != tables_.end(), "drop of unknown sequence " << seq);
  for (const BlockId id : it->second.blocks) {
    allocator_.release(id);
  }
  tables_.erase(it);
}

std::size_t PagedKvCache::blocks_held(SeqId seq) const {
  const auto it = tables_.find(seq);
  return it == tables_.end() ? 0 : it->second.blocks.size();
}

}  // namespace hack
