#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "base/thread_pool.h"
#include "quant/packed.h"
#include "tensor/half.h"

namespace hack {
namespace {

struct MinMax {
  float min;
  float max;
};

}  // namespace

// Quantizes one partition: values[i] -> codes via (min, scale) in FP16.
void quantize_span(std::span<const float> values,
                   std::span<std::uint8_t> codes, int bits, Rounding rounding,
                   Rng& rng, float& out_min, float& out_scale) {
  HACK_CHECK(!values.empty() && codes.size() == values.size(),
             "quantize_span needs matching non-empty spans");
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const float lo = *lo_it;
  const float hi = *hi_it;
  const int levels = (1 << bits) - 1;

  // Metadata is stored in FP16 (§6), so round it before use: the codes must
  // be computed against the metadata the dequantizer will actually see.
  const float min_fp16 = fp16_round(lo);
  const float scale_fp16 = fp16_round((hi - lo) / static_cast<float>(levels));
  out_min = min_fp16;
  out_scale = scale_fp16;

  if (scale_fp16 == 0.0f) {
    std::fill(codes.begin(), codes.end(), std::uint8_t{0});
    return;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double normalized =
        (static_cast<double>(values[i]) - min_fp16) / scale_fp16;
    std::int64_t code = rounding == Rounding::kStochastic
                            ? stochastic_round(normalized, rng)
                            : nearest_round(normalized);
    code = std::clamp<std::int64_t>(code, 0, levels);
    codes[i] = static_cast<std::uint8_t>(code);
  }
}

QuantizedMatrix quantize(const Matrix& m, int bits, std::size_t pi,
                         QuantAxis axis, Rounding rounding, Rng& rng,
                         bool allow_ragged_tail, int threads) {
  HACK_CHECK(bits == 2 || bits == 4 || bits == 8,
             "unsupported quantization width: " << bits);
  HACK_CHECK(!m.empty(), "cannot quantize an empty matrix");

  QuantizedMatrix q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.bits = bits;
  q.axis = axis;
  q.pi = pi;

  const std::size_t inner = axis == QuantAxis::kRow ? m.cols() : m.rows();
  const std::size_t outer = axis == QuantAxis::kRow ? m.rows() : m.cols();
  const PartitionScheme scheme(inner, pi, allow_ragged_tail);
  const std::size_t groups = scheme.group_count();

  q.codes.resize(m.size());
  q.mins.resize(outer * groups);
  q.scales.resize(outer * groups);
  q.groups = groups;

  // Quantizes one outer slice's partitions from `slice_rng`.
  const auto quantize_slice = [&](std::size_t o, Rng& slice_rng,
                                  std::vector<float>& scratch,
                                  std::vector<std::uint8_t>& scratch_codes) {
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t begin = scheme.group_begin(g);
      const std::size_t len = scheme.group_size(g);
      scratch.resize(len);
      scratch_codes.resize(len);
      for (std::size_t t = 0; t < len; ++t) {
        scratch[t] = axis == QuantAxis::kRow ? m(o, begin + t)
                                             : m(begin + t, o);
      }
      float part_min = 0.0f, part_scale = 0.0f;
      quantize_span(scratch, scratch_codes, bits, rounding, slice_rng,
                    part_min, part_scale);
      q.mins[o * groups + g] = part_min;
      q.scales[o * groups + g] = part_scale;
      for (std::size_t t = 0; t < len; ++t) {
        const std::size_t r = axis == QuantAxis::kRow ? o : begin + t;
        const std::size_t c = axis == QuantAxis::kRow ? begin + t : o;
        q.codes[r * q.cols + c] = scratch_codes[t];
      }
    }
  };

  if (outer < 2 || m.size() < kParallelQuantizeMinValues) {
    // Serial path on the caller's stream: byte-identical to the original
    // implementation, no pool dispatch for decode-step appends.
    std::vector<float> scratch;
    std::vector<std::uint8_t> scratch_codes;
    for (std::size_t o = 0; o < outer; ++o) {
      quantize_slice(o, rng, scratch, scratch_codes);
    }
    return q;
  }

  // Parallel path: sub-streams are forked in slice order before dispatch, so
  // the result depends only on the caller's rng state — not on the pool size,
  // the `threads` request, or scheduling.
  std::vector<Rng> slice_rngs;
  slice_rngs.reserve(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    slice_rngs.push_back(rng.fork());
  }
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    std::vector<float> scratch;
    std::vector<std::uint8_t> scratch_codes;
    for (std::size_t o = begin; o < end; ++o) {
      quantize_slice(o, slice_rngs[o], scratch, scratch_codes);
    }
  };
  if (threads == 1) {
    run_range(0, outer);
  } else {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(outer, chunks_for_request(threads, outer, pool.lanes()),
                      run_range);
  }
  return q;
}

void pack_storage(QuantizedMatrix& q) {
  HACK_CHECK(q.bits == 2 || q.bits == 4 || q.bits == 8,
             "unsupported code width " << q.bits);
  if (q.bits == 8 || q.storage_bits == q.bits) return;
  HACK_CHECK(q.storage_bits == 8,
             "cannot pack from storage width " << q.storage_bits);
  const std::size_t stride =
      (q.cols * static_cast<std::size_t>(q.bits) + 7) / 8;
  std::vector<std::uint8_t> packed(q.rows * stride, 0);
  if (!q.codes.empty()) {
    if ((q.cols * static_cast<std::size_t>(q.bits)) % 8 == 0) {
      // Rows are byte-exact, so row-padded packing equals one flat pack.
      pack_codes(q.codes, q.bits, packed.data());
    } else {
      for (std::size_t r = 0; r < q.rows; ++r) {
        pack_codes(std::span<const std::uint8_t>(q.codes)
                       .subspan(r * q.cols, q.cols),
                   q.bits, packed.data() + r * stride);
      }
    }
  }
  q.codes = std::move(packed);
  q.storage_bits = q.bits;
}

void unpack_storage(QuantizedMatrix& q) {
  if (q.storage_bits == 8) return;
  const std::size_t stride = q.code_row_stride();
  std::vector<std::uint8_t> raw(q.rows * q.cols);
  if (!raw.empty()) {
    if ((q.cols * static_cast<std::size_t>(q.storage_bits)) % 8 == 0) {
      unpack_codes(q.codes, q.storage_bits, q.rows * q.cols, raw.data());
    } else {
      for (std::size_t r = 0; r < q.rows; ++r) {
        unpack_codes(
            std::span<const std::uint8_t>(q.codes).subspan(r * stride, stride),
            q.storage_bits, q.cols, raw.data() + r * q.cols);
      }
    }
  }
  q.codes = std::move(raw);
  q.storage_bits = 8;
}

Matrix dequantize(const QuantizedMatrix& q, int threads) {
  Matrix m(q.rows, q.cols);
  const std::size_t groups = q.group_count();
  const PartitionScheme scheme(q.inner(), q.pi, /*allow_ragged_tail=*/true);
  HACK_CHECK(scheme.group_count() == groups, "inconsistent group count");
  const auto dequantize_rows = [&](std::size_t r_begin, std::size_t r_end) {
    for (std::size_t r = r_begin; r < r_end; ++r) {
      for (std::size_t c = 0; c < q.cols; ++c) {
        const std::size_t o = q.axis == QuantAxis::kRow ? r : c;
        const std::size_t z = q.axis == QuantAxis::kRow ? c : r;
        const std::size_t g = scheme.group_of(z);
        m(r, c) = q.scale_of(o, g) * static_cast<float>(q.code_at(r, c)) +
                  q.min_of(o, g);
      }
    }
  };
  if (threads == 1 || q.rows < 2 ||
      q.rows * q.cols < kParallelQuantizeMinValues) {
    dequantize_rows(0, q.rows);
  } else {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(q.rows,
                      chunks_for_request(threads, q.rows, pool.lanes()),
                      dequantize_rows);
  }
  return m;
}

float max_abs_error_bound(const QuantizedMatrix& q) {
  // Stochastic rounding moves a value by at most one code step (one scale),
  // and FP16 metadata rounding adds at most half an ULP of min plus the value
  // range times half an ULP of scale; the dominant term is the code step.
  float bound = 0.0f;
  const int levels = (1 << q.bits) - 1;
  for (std::size_t i = 0; i < q.scales.size(); ++i) {
    const float s = q.scales[i];
    const float m = std::fabs(q.mins[i]);
    // scale step + fp16 rounding slack on metadata.
    const float slack = s + 0.001f * (m + s * static_cast<float>(levels));
    bound = std::max(bound, slack);
  }
  return bound;
}

std::size_t QuantizedMatrix::packed_code_bytes() const {
  // Each outer slice is padded to a whole byte, matching the packed layout in
  // quant/packed.h.
  const std::size_t bits_per_outer = inner() * static_cast<std::size_t>(bits);
  const std::size_t bytes_per_outer = (bits_per_outer + 7) / 8;
  return outer() * bytes_per_outer;
}

void append_rows(QuantizedMatrix& q, const QuantizedMatrix& extra) {
  HACK_CHECK(q.axis == QuantAxis::kRow && extra.axis == QuantAxis::kRow,
             "append_rows requires row-axis quantization");
  HACK_CHECK(q.cols == extra.cols && q.bits == extra.bits && q.pi == extra.pi,
             "append_rows layout mismatch");
  HACK_CHECK(q.storage_bits == extra.storage_bits,
             "append_rows storage mismatch: " << q.storage_bits << " vs "
                                              << extra.storage_bits);
  // Rows are byte-padded in packed storage, so the concat stays row-exact.
  q.codes.insert(q.codes.end(), extra.codes.begin(), extra.codes.end());
  q.mins.insert(q.mins.end(), extra.mins.begin(), extra.mins.end());
  q.scales.insert(q.scales.end(), extra.scales.begin(), extra.scales.end());
  q.rows += extra.rows;
}

void append_inner_groups(QuantizedMatrix& q, const QuantizedMatrix& extra) {
  HACK_CHECK(q.axis == QuantAxis::kCol && extra.axis == QuantAxis::kCol,
             "append_inner_groups requires col-axis quantization");
  HACK_CHECK(q.cols == extra.cols && q.bits == extra.bits && q.pi == extra.pi,
             "append_inner_groups layout mismatch");
  HACK_CHECK(q.rows % q.pi == 0,
             "existing inner dim must be whole partitions, got " << q.rows);
  HACK_CHECK(extra.rows % q.pi == 0,
             "appended chunk must be whole partitions, got " << extra.rows);
  HACK_CHECK(q.storage_bits == extra.storage_bits,
             "append_inner_groups storage mismatch: "
                 << q.storage_bits << " vs " << extra.storage_bits);

  // Codes are row-major so appending rows is contiguous.
  q.codes.insert(q.codes.end(), extra.codes.begin(), extra.codes.end());

  // Metadata is indexed outer * group_count + group; group_count changes, so
  // re-lay it out.
  const std::size_t old_groups = q.rows / q.pi;
  const std::size_t add_groups = extra.rows / q.pi;
  const std::size_t new_groups = old_groups + add_groups;
  std::vector<float> mins(q.cols * new_groups);
  std::vector<float> scales(q.cols * new_groups);
  for (std::size_t o = 0; o < q.cols; ++o) {
    for (std::size_t g = 0; g < old_groups; ++g) {
      mins[o * new_groups + g] = q.mins[o * old_groups + g];
      scales[o * new_groups + g] = q.scales[o * old_groups + g];
    }
    for (std::size_t g = 0; g < add_groups; ++g) {
      mins[o * new_groups + old_groups + g] = extra.mins[o * add_groups + g];
      scales[o * new_groups + old_groups + g] =
          extra.scales[o * add_groups + g];
    }
  }
  q.mins = std::move(mins);
  q.scales = std::move(scales);
  q.rows += extra.rows;
  q.groups = new_groups;
}

}  // namespace hack
