// FlashAttention-2-style streaming attention.
//
// Computes the same output as attention_reference but in one pass over KV
// tiles with an online softmax (running row max and denominator), never
// materializing the full [L_Q, L_KV] score matrix. HACK integrates with this
// backend in the paper (§6); we reproduce the tiling structure so the fused
// HACK kernels inherit the same loop shape.
#pragma once

#include "attention/reference.h"
#include "tensor/matrix.h"

namespace hack {

struct FlashOptions {
  bool causal = true;
  std::size_t key_offset = 0;
  std::size_t tile_tokens = 64;  // KV tokens per streamed tile
};

Matrix attention_flash(const Matrix& q, const Matrix& k, const Matrix& v,
                       const FlashOptions& options = {});

}  // namespace hack
