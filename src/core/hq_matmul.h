// Homomorphic quantized matrix multiplication — the paper's core contribution.
//
// For C = A·B with both operands quantized per-partition (§5.2, Eq. 4):
//
//   C[i,j] = Σ_g ( s_a[i,g]·s_b[j,g]·Σ_{z∈g} a'b'     <- integer GEMM
//                + m_b[j,g]·s_a[i,g]·Σ_{z∈g} a'       <- A code row-sums
//                + m_a[i,g]·s_b[j,g]·Σ_{z∈g} b'       <- B code col-sums (SE)
//                + |g|·m_a[i,g]·m_b[j,g] )
//
// The integer GEMM runs on the codes (INT8 path); the three affine terms
// "approximate the quantized output into the real output" without ever
// materializing dequantized operands. Passing a prebuilt SumCache for B
// enables summation elimination: the Σ b' term is read instead of recomputed,
// reducing the approximation cost from 9MN + MZ + NZ to 9MN + MZ flops.
//
// Engine: the hot path is a blocked, multithreaded kernel. Per partition g
// the integer part runs through the register-blocked CodeView kernels in
// core/int_gemm.h, and the Eq. (4) correction collapses to
//
//   C[i,j] += A1[i]·B1[j]·dot + A2[i]·B2[j] + A3[i]·B3[j]
//
// with the per-(i,g) factors A1 = s_a, A2 = s_a·Σa', A3 = m_a and the
// per-(j,g) factors B1 = s_b, B2 = m_b, B3 = s_b·Σb' + |g|·m_b hoisted out of
// the inner loop. The M dimension splits into row bands dispatched on the
// shared ThreadPool; a single-row A (the decode GEMV case) bypasses the pool
// entirely. `hq_matmul_reference` keeps the original scalar triple loop for
// equivalence tests and old-vs-new benchmarking.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/sum_cache.h"
#include "quant/quantizer.h"
#include "tensor/matrix.h"

namespace hack {

// Operation counters filled by the HQ kernels; tests pin these against the
// closed-form costs in core/cost_model.h.
struct HqStats {
  std::int64_t int_macs = 0;      // integer multiply-accumulates (code GEMM)
  std::int64_t approx_flops = 0;  // float ops spent on the Eq. (4) correction
  std::int64_t sum_flops = 0;     // adds spent computing Σ b' (0 when cached)
};

// `threads` for the calls below: 0 = auto (one row band per lane of the
// global ThreadPool, itself sized by HACK_NUM_THREADS / the hardware),
// 1 = serial, N = split into N row bands. The band decomposition — and hence
// the float result — depends only on the requested count, not on how many
// worker threads actually exist.

// C = A·B. A must be row-axis quantized (M x Z), B col-axis (Z x N), with
// identical partition size. `b_sums`, when provided, must match B.
Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums = nullptr, HqStats* stats = nullptr,
                 int threads = 0);

// C = A·Bᵀ. A row-axis (M x Z), B row-axis (N x Z) — the Q·Kᵀ form where K
// stores one token per row. `b_sums`, when provided, must match B.
Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums = nullptr, HqStats* stats = nullptr,
                    int threads = 0);

// One C = A·B (or A·Bᵀ) problem of a batched launch. Shapes follow the
// single-call contracts above; `c` is resized and filled by the call, `stats`
// (optional) receives this task's counters. When several tasks share the same
// (b, b_sums) pair — GQA query heads attending one KV head — the hoisted
// Eq. (4) B factors are prepared once, and any Σ b' recompute cost is charged
// to the first task using that pair.
struct HqGemmTask {
  const QuantizedMatrix* a = nullptr;
  const QuantizedMatrix* b = nullptr;
  const SumCache* b_sums = nullptr;
  Matrix* c = nullptr;
  HqStats* stats = nullptr;
};

// Batched heads-in-one-launch variants: every task's M dimension splits into
// row bands and all (task × band) work items are dispatched through a single
// parallel_for on the shared ThreadPool, so many small matmuls (one per
// attention head of a layer) fill the pool instead of paying one dispatch
// each. Single-row tasks get exactly one work item — the batched decode GEMV
// path. Results are bit-identical to the equivalent single calls for any
// thread count.
void hq_matmul_batched(std::span<HqGemmTask> tasks, int threads = 0);
void hq_matmul_nt_batched(std::span<HqGemmTask> tasks, int threads = 0);

// The original scalar Eq. (4) triple loop (seed implementation), kept as the
// ground truth for randomized equivalence tests and as the baseline leg of
// the kernel microbenchmarks. Same contracts and HqStats accounting as the
// blocked engine.
Matrix hq_matmul_reference(const QuantizedMatrix& a, const QuantizedMatrix& b,
                           const SumCache* b_sums = nullptr,
                           HqStats* stats = nullptr);
Matrix hq_matmul_nt_reference(const QuantizedMatrix& a,
                              const QuantizedMatrix& b,
                              const SumCache* b_sums = nullptr,
                              HqStats* stats = nullptr);

}  // namespace hack
