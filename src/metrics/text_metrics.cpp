#include "metrics/text_metrics.h"

#include <algorithm>
#include <unordered_map>

namespace hack {

double rouge1_f1(const std::vector<int>& candidate,
                 const std::vector<int>& reference) {
  if (candidate.empty() && reference.empty()) return 1.0;
  if (candidate.empty() || reference.empty()) return 0.0;
  std::unordered_map<int, int> ref_counts;
  for (const int tok : reference) ++ref_counts[tok];
  int overlap = 0;
  for (const int tok : candidate) {
    const auto it = ref_counts.find(tok);
    if (it != ref_counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  const double precision =
      static_cast<double>(overlap) / static_cast<double>(candidate.size());
  const double recall =
      static_cast<double>(overlap) / static_cast<double>(reference.size());
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

std::size_t edit_distance(const std::vector<int>& a,
                          const std::vector<int>& b) {
  // Two-row dynamic program.
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> prev(m + 1), curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double edit_similarity(const std::vector<int>& a, const std::vector<int>& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(edit_distance(a, b)) /
                   static_cast<double>(longest);
}

double prefix_agreement(const std::vector<int>& candidate,
                        const std::vector<int>& reference) {
  if (reference.empty()) return candidate.empty() ? 1.0 : 0.0;
  std::size_t agree = 0;
  while (agree < candidate.size() && agree < reference.size() &&
         candidate[agree] == reference[agree]) {
    ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(reference.size());
}

}  // namespace hack
