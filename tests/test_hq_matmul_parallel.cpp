// Randomized equivalence: the blocked, multithreaded HQ-GEMM engine must
// match the seed scalar reference (hq_matmul_reference) across layouts,
// ragged tails, SE on/off, band counts, and tile-remainder shapes. The two
// paths reassociate the Eq. (4) float terms differently, so "match" means
// within 1e-4 — the integer GEMM part is exact, only correction-term rounding
// differs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hq_matmul.h"
#include "metrics/tensor_metrics.h"

namespace hack {
namespace {

struct Operands {
  QuantizedMatrix a;      // row-axis, M x Z
  QuantizedMatrix b_col;  // col-axis, Z x N
  QuantizedMatrix b_row;  // row-axis, N x Z
};

Operands make_operands(std::size_t m, std::size_t z, std::size_t n,
                       std::size_t pi, int a_bits, int b_bits,
                       std::uint64_t seed, bool ragged) {
  Rng rng(seed);
  const Matrix a_src = Matrix::random_gaussian(m, z, rng);
  const Matrix b_src = Matrix::random_gaussian(z, n, rng);
  Matrix bt(n, z);
  for (std::size_t i = 0; i < z; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      bt(j, i) = b_src(i, j);
    }
  }
  Rng q1(seed + 1), q2(seed + 2), q3(seed + 3);
  Operands ops;
  ops.a = quantize(a_src, a_bits, pi, QuantAxis::kRow, Rounding::kStochastic,
                   q1, ragged);
  ops.b_col = quantize(b_src, b_bits, pi, QuantAxis::kCol,
                       Rounding::kStochastic, q2, ragged);
  ops.b_row = quantize(bt, b_bits, pi, QuantAxis::kRow, Rounding::kStochastic,
                       q3, ragged);
  return ops;
}

void expect_close(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  float max_diff = 0.0f;
  float max_mag = 0.0f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(got.flat()[i] - want.flat()[i]));
    max_mag = std::max(max_mag, std::fabs(want.flat()[i]));
  }
  // 1e-4 relative to the result's magnitude (absolute for values near zero).
  EXPECT_LT(max_diff, 1e-4f * std::max(1.0f, max_mag)) << what;
}

struct EquivCase {
  std::size_t m, z, n, pi;
  bool ragged;
  int threads;
};

class HqMatmulEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(HqMatmulEquivalence, BlockedMatchesScalarReference) {
  const EquivCase p = GetParam();
  const Operands ops =
      make_operands(p.m, p.z, p.n, p.pi, 8, 2, 4000 + p.m + p.z + p.n,
                    p.ragged);

  // SE off.
  HqStats blocked{}, scalar{};
  expect_close(hq_matmul(ops.a, ops.b_col, nullptr, &blocked, p.threads),
               hq_matmul_reference(ops.a, ops.b_col, nullptr, &scalar), "NN");
  EXPECT_EQ(blocked.int_macs, scalar.int_macs);
  EXPECT_EQ(blocked.approx_flops, scalar.approx_flops);
  EXPECT_EQ(blocked.sum_flops, scalar.sum_flops);

  HqStats blocked_nt{}, scalar_nt{};
  expect_close(hq_matmul_nt(ops.a, ops.b_row, nullptr, &blocked_nt, p.threads),
               hq_matmul_nt_reference(ops.a, ops.b_row, nullptr, &scalar_nt),
               "NT");
  EXPECT_EQ(blocked_nt.int_macs, scalar_nt.int_macs);
  EXPECT_EQ(blocked_nt.approx_flops, scalar_nt.approx_flops);
  EXPECT_EQ(blocked_nt.sum_flops, scalar_nt.sum_flops);

  // SE on: same values through the SumCache fast path.
  const SumCache nn_sums = SumCache::build(ops.b_col);
  const SumCache nt_sums = SumCache::build(ops.b_row);
  HqStats se{};
  expect_close(hq_matmul(ops.a, ops.b_col, &nn_sums, &se, p.threads),
               hq_matmul_reference(ops.a, ops.b_col, &nn_sums), "NN+SE");
  EXPECT_EQ(se.sum_flops, 0);
  expect_close(hq_matmul_nt(ops.a, ops.b_row, &nt_sums, nullptr, p.threads),
               hq_matmul_nt_reference(ops.a, ops.b_row, &nt_sums), "NT+SE");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HqMatmulEquivalence,
    ::testing::Values(
        // Decode GEMV path, serial and with a thread request to ignore.
        EquivCase{1, 128, 333, 64, false, 0},
        EquivCase{1, 64, 200, 64, false, 8},
        // Tile remainders: m % 4 and n % 4 nonzero, tiny shapes.
        EquivCase{2, 64, 3, 32, false, 1}, EquivCase{5, 96, 7, 32, false, 3},
        EquivCase{7, 64, 9, 64, false, 4}, EquivCase{3, 32, 2, 16, false, 2},
        // Ragged inner tails (Z not a multiple of Π).
        EquivCase{6, 100, 11, 32, true, 3},
        EquivCase{4, 72, 5, 64, true, 8},
        EquivCase{1, 150, 40, 64, true, 0},
        // Prefill-ish shapes with more bands than a small machine has cores.
        EquivCase{64, 128, 48, 64, false, 8},
        EquivCase{33, 128, 65, 32, false, 16},
        EquivCase{16, 256, 16, 128, false, 0}));

TEST(HqMatmulParallel, ThreadCountDoesNotChangeResults) {
  // Same request, different band counts: every C row is produced entirely
  // within one band, so results must be bit-identical.
  const Operands ops = make_operands(31, 128, 29, 64, 8, 2, 99, false);
  const Matrix serial = hq_matmul(ops.a, ops.b_col, nullptr, nullptr, 1);
  for (const int threads : {2, 3, 8, 0}) {
    const Matrix threaded =
        hq_matmul(ops.a, ops.b_col, nullptr, nullptr, threads);
    EXPECT_EQ(max_abs_diff(serial, threaded), 0.0f) << threads << " threads";
  }
}

TEST(HqMatmulParallel, MixedPrecisionSweep) {
  for (const int b_bits : {2, 4, 8}) {
    const Operands ops = make_operands(9, 96, 13, 32, 8, b_bits,
                                       700 + b_bits, /*ragged=*/false);
    expect_close(hq_matmul(ops.a, ops.b_col, nullptr, nullptr, 4),
                 hq_matmul_reference(ops.a, ops.b_col), "NN bits");
    expect_close(hq_matmul_nt(ops.a, ops.b_row, nullptr, nullptr, 4),
                 hq_matmul_nt_reference(ops.a, ops.b_row), "NT bits");
  }
}

}  // namespace
}  // namespace hack
