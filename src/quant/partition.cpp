#include "quant/partition.h"

namespace hack {

bool valid_partition_size(std::size_t pi) {
  return pi > 0 && pi % 16 == 0;
}

PartitionScheme::PartitionScheme(std::size_t inner, std::size_t pi,
                                 bool allow_ragged_tail)
    : inner_(inner), pi_(pi) {
  HACK_CHECK(valid_partition_size(pi),
             "partition size " << pi << " must be a positive multiple of 16");
  HACK_CHECK(inner > 0, "inner dimension must be positive");
  if (!allow_ragged_tail) {
    HACK_CHECK(inner % pi == 0, "inner dim " << inner
                                << " not divisible by partition size " << pi);
  }
  groups_ = (inner + pi - 1) / pi;
}

}  // namespace hack
