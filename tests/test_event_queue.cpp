#include <gtest/gtest.h>

#include "cluster/event_queue.h"

namespace hack {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&, i](double) { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void(double)> chain = [&](double now) {
    ++fired;
    if (fired < 5) {
      q.schedule(now + 1.0, chain);
    }
  };
  q.schedule(0.0, chain);
  const double end = q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(end, 4.0);
}

TEST(EventQueue, NowAdvancesMonotonically) {
  EventQueue q;
  double last = -1.0;
  for (const double t : {5.0, 1.0, 3.0, 3.0, 9.0}) {
    q.schedule(t, [&](double now) {
      EXPECT_GE(now, last);
      last = now;
    });
  }
  q.run();
  EXPECT_DOUBLE_EQ(last, 9.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [&](double) {
    EXPECT_THROW(q.schedule(1.0, [](double) {}), CheckError);
  });
  q.run();
}

TEST(EventQueue, CountsProcessedEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(i, [](double) {});
  q.run();
  EXPECT_EQ(q.events_processed(), 7u);
}

}  // namespace
}  // namespace hack
