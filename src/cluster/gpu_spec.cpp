#include "cluster/gpu_spec.h"

#include "base/check.h"

namespace hack {

const std::vector<InstanceSpec>& instance_zoo() {
  static const std::vector<InstanceSpec> zoo = {
      {.name = "g5.12xlarge",
       .gpu = {.name = "A10G",
               .fp16_tflops = 125.0,
               .int8_tops = 250.0,
               .mem_bw_gbps = 600.0,
               .mem_gb = 24.0,
               .family = GpuFamily::kA10gL4},
       .gpus = 4,
       .net_gbps = 40.0},
      {.name = "p3.8xlarge",
       .gpu = {.name = "V100",
               .fp16_tflops = 112.0,
               // V100 tensor cores are FP16-only; no INT8 acceleration.
               .int8_tops = 0.0,
               .mem_bw_gbps = 900.0,
               .mem_gb = 16.0,
               .family = GpuFamily::kV100T4},
       .gpus = 4,
       .net_gbps = 10.0},
      {.name = "g4dn.12xlarge",
       .gpu = {.name = "T4",
               .fp16_tflops = 65.0,
               .int8_tops = 130.0,
               .mem_bw_gbps = 320.0,
               .mem_gb = 16.0,
               .family = GpuFamily::kV100T4},
       .gpus = 4,
       .net_gbps = 50.0},
      {.name = "g6.12xlarge",
       .gpu = {.name = "L4",
               .fp16_tflops = 121.0,
               .int8_tops = 242.0,
               .mem_bw_gbps = 300.0,
               .mem_gb = 24.0,
               .family = GpuFamily::kA10gL4},
       .gpus = 4,
       .net_gbps = 40.0},
      {.name = "p4de.24xlarge",
       .gpu = {.name = "A100",
               .fp16_tflops = 312.0,
               .int8_tops = 624.0,
               .mem_bw_gbps = 2039.0,
               .mem_gb = 80.0,
               .family = GpuFamily::kA100},
       .gpus = 8,
       .net_gbps = 400.0},
  };
  return zoo;
}

const InstanceSpec& instance_for_gpu(const std::string& gpu_name) {
  for (const InstanceSpec& spec : instance_zoo()) {
    if (spec.gpu.name == gpu_name) return spec;
  }
  HACK_CHECK(false, "unknown GPU: " << gpu_name);
  return instance_zoo().front();
}

int paper_prefill_gpu_count(const std::string& gpu_name) {
  if (gpu_name == "A10G") return 10 * 4;  // ten g5.12xlarge
  if (gpu_name == "V100") return 16 * 4;  // sixteen p3.8xlarge
  if (gpu_name == "T4") return 16 * 4;    // sixteen g4dn.12xlarge
  if (gpu_name == "L4") return 10 * 4;    // ten g6.12xlarge
  if (gpu_name == "A100") return 2 * 8;   // two p4de.24xlarge
  HACK_CHECK(false, "unknown GPU: " << gpu_name);
  return 0;
}

}  // namespace hack
