// §3: low-precision floating-point KV (FP4/FP6/FP8) simulation.
// The paper's method: store KV in the mini format, convert to FP16 before
// attention, and halve matmul time to emulate FP8 tensor cores. The point of
// the section: FP formats cannot compress enough to fix the communication or
// memory-access bottlenecks.
#include "bench_util.h"
#include "quant/minifloat.h"

using namespace hack;
using namespace hack::bench;

int main() {
  {
    Table t("Sec 3: mini-float KV across prefill GPUs (L, Cocktail)");
    t.header({"format", "gpu", "comm", "kv_mem_access", "avg_jct_s"});
    for (const Method method : {Method::kFp4, Method::kFp6, Method::kFp8}) {
      for (const std::string& gpu : prefill_gpus()) {
        const SimSummary s =
            run(standard_cluster(gpu, "L", "Cocktail", method));
        t.row({method_name(method), gpu, pct(s.comm_ratio),
               pct(s.kv_access_ratio), fmt(s.avg_jct_s, 1)});
      }
    }
    t.print();
  }

  {
    Table t("Sec 3: compression rate vs FP16 (storage formats)");
    t.header({"format", "compression", "paper_band"});
    t.row({"FP4",
           pct(minifloat_compression_vs_fp16(MiniFloatFormat::kFp4E2M1)),
           "<= 75%"});
    t.row({"FP6",
           pct(minifloat_compression_vs_fp16(MiniFloatFormat::kFp6E3M2)),
           "62.5%"});
    t.row({"FP8",
           pct(minifloat_compression_vs_fp16(MiniFloatFormat::kFp8E4M3)),
           "50%"});
    t.row({"2-bit quant (CacheGen/KVQuant/HACK)", "~86%", "86%"});
    t.print();
  }
  return 0;
}
