// KV wire format: round-trip fidelity and the bit-identical handoff.
//
// The disaggregated contract (docs/disaggregation.md) has two halves:
//   1. serialize → deserialize reproduces every layer's HACK KV state
//      byte for byte — codes, FP16 metadata, SE sums, RQE tail, and each
//      KV head's RNG stream position;
//   2. a decode worker that rehydrates the blob continues generation
//      bit-identically to the single-node engine — the codes on the wire
//      are the codes attention consumes, so the handoff point is invisible
//      in the token stream.
// Both are swept across GQA shapes × {2,4,8}-bit PackedBits × RQE/SE ×
// rounding modes, including ragged (non-multiple-of-Π) contexts.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/check.h"
#include "kvcache/kv_wire.h"
#include "model/tiny_transformer.h"
#include "quant/packed.h"
#include "serving/disagg.h"
#include "serving/engine.h"
#include "workload/corpus.h"

namespace hack {
namespace {

HackAttentionConfig wire_config(int kv_bits, bool se, bool rqe,
                                Rounding rounding = Rounding::kStochastic) {
  HackAttentionConfig cfg;
  cfg.pi = 32;
  cfg.kv_bits = kv_bits;
  cfg.summation_elimination = se;
  cfg.requant_elimination = rqe;
  cfg.rounding = rounding;
  return cfg;
}

// Builds a prefilled layer stack directly at the attention level.
std::vector<std::unique_ptr<HackLayerKvState>> make_prefilled_layers(
    std::size_t layers, std::size_t d_head, std::size_t kv_heads,
    std::size_t query_heads, std::size_t tokens,
    const HackAttentionConfig& cfg, std::uint64_t seed) {
  Rng data_rng(9000 + tokens);
  std::vector<std::unique_ptr<HackLayerKvState>> out;
  for (std::size_t l = 0; l < layers; ++l) {
    auto layer = std::make_unique<HackLayerKvState>(d_head, kv_heads,
                                                    query_heads, cfg,
                                                    seed + l * kv_heads);
    const Matrix q =
        Matrix::random_gaussian(tokens, query_heads * d_head, data_rng);
    const Matrix k =
        Matrix::random_gaussian(tokens, kv_heads * d_head, data_rng);
    const Matrix v =
        Matrix::random_gaussian(tokens, kv_heads * d_head, data_rng);
    (void)layer->prefill(q, k, v);
    out.push_back(std::move(layer));
  }
  return out;
}

std::vector<HackLayerKvState*> pointers(
    const std::vector<std::unique_ptr<HackLayerKvState>>& layers) {
  std::vector<HackLayerKvState*> ptrs;
  for (const auto& l : layers) ptrs.push_back(l.get());
  return ptrs;
}

void expect_states_equal(const HackKvState& a, const HackKvState& b) {
  ASSERT_EQ(a.tokens(), b.tokens());
  // K codes byte for byte, metadata bit for bit.
  EXPECT_EQ(a.k().codes, b.k().codes);
  EXPECT_EQ(a.k().mins, b.k().mins);
  EXPECT_EQ(a.k().scales, b.k().scales);
  EXPECT_EQ(a.k().groups, b.k().groups);
  // SE sums.
  ASSERT_EQ(a.k_sums().outer(), b.k_sums().outer());
  ASSERT_EQ(a.k_sums().groups(), b.k_sums().groups());
  for (std::size_t o = 0; o < a.k_sums().outer(); ++o) {
    for (std::size_t g = 0; g < a.k_sums().groups(); ++g) {
      ASSERT_EQ(a.k_sums().sum(o, g), b.k_sums().sum(o, g));
    }
  }
  // V store + tail.
  ASSERT_EQ(a.v_quantized_ready(), b.v_quantized_ready());
  if (a.v_quantized_ready()) {
    EXPECT_EQ(a.v_quantized().codes, b.v_quantized().codes);
    EXPECT_EQ(a.v_quantized().mins, b.v_quantized().mins);
    EXPECT_EQ(a.v_quantized().scales, b.v_quantized().scales);
  }
  EXPECT_EQ(a.v_tail_fp16(), b.v_tail_fp16());
  ASSERT_EQ(a.v_tail_quantized_ready(), b.v_tail_quantized_ready());
  if (a.v_tail_quantized_ready()) {
    EXPECT_EQ(a.v_tail_quantized().codes, b.v_tail_quantized().codes);
    EXPECT_EQ(a.v_tail_quantized().mins, b.v_tail_quantized().mins);
    EXPECT_EQ(a.v_tail_quantized().scales, b.v_tail_quantized().scales);
  }
}

// ---------------------------------------------------------- wire round-trip

TEST(KvWire, RoundTripAcrossShapesBitsAndAblations) {
  const std::size_t d_head = 64;
  struct Gqa {
    std::size_t kv_heads, query_heads;
  };
  for (const Gqa gqa : {Gqa{1, 1}, Gqa{2, 4}, Gqa{2, 6}}) {
    for (const int kv_bits : {2, 4, 8}) {
      for (const bool se : {true, false}) {
        for (const bool rqe : {true, false}) {
          // 70 tokens: two whole Π=32 partitions + a 6-row tail, so the
          // blob carries every section kind.
          const HackAttentionConfig cfg = wire_config(kv_bits, se, rqe);
          const auto layers = make_prefilled_layers(
              2, d_head, gqa.kv_heads, gqa.query_heads, 70, cfg, 40);
          KvWireSections sections;
          const auto blob = serialize_kv_wire(pointers(layers), &sections);
          EXPECT_EQ(sections.total(), blob.size());
          EXPECT_EQ(sections.sums > 0, se);
          EXPECT_EQ(sections.fp16_tail > 0, rqe);

          std::vector<std::unique_ptr<HackLayerKvState>> fresh;
          for (std::size_t l = 0; l < layers.size(); ++l) {
            fresh.push_back(std::make_unique<HackLayerKvState>(
                d_head, gqa.kv_heads, gqa.query_heads, cfg, 777));
          }
          deserialize_kv_wire(blob, pointers(fresh));

          for (std::size_t l = 0; l < layers.size(); ++l) {
            for (std::size_t h = 0; h < gqa.kv_heads; ++h) {
              SCOPED_TRACE(testing::Message()
                           << "kv_bits " << kv_bits << " se " << se << " rqe "
                           << rqe << " layer " << l << " head " << h);
              expect_states_equal(layers[l]->head_state(h),
                                  fresh[l]->head_state(h));
              EXPECT_EQ(layers[l]->head_rng(h).state(),
                        fresh[l]->head_rng(h).state());
            }
          }
        }
      }
    }
  }
}

TEST(KvWire, WholePartitionContextHasNoTail) {
  const HackAttentionConfig cfg = wire_config(2, true, true);
  const auto layers = make_prefilled_layers(1, 64, 2, 4, 64, cfg, 11);
  KvWireSections sections;
  const auto blob = serialize_kv_wire(pointers(layers), &sections);
  EXPECT_EQ(sections.fp16_tail, 0u);

  std::vector<std::unique_ptr<HackLayerKvState>> fresh;
  fresh.push_back(std::make_unique<HackLayerKvState>(64, 2, 4, cfg, 3));
  deserialize_kv_wire(blob, pointers(fresh));
  expect_states_equal(layers[0]->head_state(0), fresh[0]->head_state(0));
}

TEST(KvWire, HeaderParsesAndRejectsForeignBlobs) {
  const HackAttentionConfig cfg = wire_config(4, true, true);
  const auto layers = make_prefilled_layers(2, 64, 2, 4, 40, cfg, 5);
  auto blob = serialize_kv_wire(pointers(layers));

  const KvWireInfo info = parse_kv_wire_header(blob);
  EXPECT_EQ(info.version, kKvWireVersion);
  EXPECT_EQ(info.layers, 2u);
  EXPECT_EQ(info.kv_heads, 2u);
  EXPECT_EQ(info.query_heads, 4u);
  EXPECT_EQ(info.d_head, 64u);
  EXPECT_EQ(info.kv_bits, 4);
  EXPECT_EQ(info.tokens, 40u);
  EXPECT_EQ(info.payload_bytes, blob.size());
  EXPECT_TRUE(info.summation_elimination);
  EXPECT_TRUE(info.requant_elimination);
  EXPECT_TRUE(info.stochastic_rounding);

  // Bad magic, truncation, and trailing garbage all throw.
  auto corrupted = blob;
  corrupted[0] ^= 0xFF;
  EXPECT_THROW(parse_kv_wire_header(corrupted), CheckError);
  EXPECT_THROW(
      parse_kv_wire_header({blob.data(), blob.size() - 1}), CheckError);

  // Geometry mismatch on the decode side throws instead of corrupting.
  std::vector<std::unique_ptr<HackLayerKvState>> wrong;
  wrong.push_back(std::make_unique<HackLayerKvState>(64, 2, 4, cfg, 0));
  EXPECT_THROW(deserialize_kv_wire(blob, pointers(wrong)), CheckError);
  const HackAttentionConfig other_bits = wire_config(2, true, true);
  std::vector<std::unique_ptr<HackLayerKvState>> mismatched;
  mismatched.push_back(
      std::make_unique<HackLayerKvState>(64, 2, 4, other_bits, 0));
  mismatched.push_back(
      std::make_unique<HackLayerKvState>(64, 2, 4, other_bits, 2));
  EXPECT_THROW(deserialize_kv_wire(blob, pointers(mismatched)), CheckError);
}

// Every single-bit flip and every truncation point must surface as a typed
// KvWireError with a precise code — never UB, an untyped assert, or a
// silently corrupted rehydration. This is the integrity contract the disagg
// recovery layer retries on.
TEST(KvWire, CorruptionSweepYieldsTypedErrors) {
  const HackAttentionConfig cfg = wire_config(4, true, true);
  const auto layers = make_prefilled_layers(2, 64, 2, 4, 40, cfg, 5);
  const auto blob = serialize_kv_wire(pointers(layers));

  const auto fresh_targets = [&] {
    std::vector<std::unique_ptr<HackLayerKvState>> fresh;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      fresh.push_back(std::make_unique<HackLayerKvState>(64, 2, 4, cfg, 777));
    }
    return fresh;
  };
  const auto deserialize_code =
      [&](std::span<const std::uint8_t> bytes) -> KvWireErrorCode {
    const auto fresh = fresh_targets();
    try {
      deserialize_kv_wire(bytes, pointers(fresh));
    } catch (const KvWireError& e) {
      return e.code();
    }
    ADD_FAILURE() << "corrupted blob deserialized without an error";
    return KvWireErrorCode::kBadMagic;
  };

  // Bit flips: every header byte, and the body on a stride (every record is
  // CRC-framed, so any body flip trips its record's checksum — or the bounds
  // check when the flip lands in a record_bytes length field).
  for (std::size_t byte = 0; byte < blob.size();
       byte += (byte < 52 ? 1 : 7)) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupted = blob;
      corrupted[byte] ^= mask;
      SCOPED_TRACE(testing::Message() << "flip byte " << byte << " mask "
                                      << int(mask));
      const KvWireErrorCode code = deserialize_code(corrupted);
      if (byte < 4) {
        EXPECT_EQ(code, KvWireErrorCode::kBadMagic);
      } else if (byte < 8) {
        // Most flips yield an unsupported version number; 2→3 turns the blob
        // into an alleged v3 delta, which the (differently laid out) header
        // CRC then rejects.
        EXPECT_TRUE(code == KvWireErrorCode::kBadVersion ||
                    code == KvWireErrorCode::kBadCrc)
            << kv_wire_error_name(code);
      } else if (byte < 52) {
        // Geometry, flags, token count, payload length, or the stored CRC
        // itself: the header checksum catches all of them.
        EXPECT_EQ(code, KvWireErrorCode::kBadCrc);
      } else {
        EXPECT_TRUE(code == KvWireErrorCode::kBadCrc ||
                    code == KvWireErrorCode::kTruncated)
            << kv_wire_error_name(code);
      }
    }
  }

  // Truncation at every prefix length (strided): always kTruncated.
  for (std::size_t len = 0; len < blob.size(); len += 13) {
    SCOPED_TRACE(testing::Message() << "truncate to " << len);
    EXPECT_EQ(deserialize_code({blob.data(), len}),
              KvWireErrorCode::kTruncated);
  }

  // Trailing garbage past the framed payload.
  auto padded = blob;
  padded.push_back(0);
  EXPECT_EQ(deserialize_code(padded), KvWireErrorCode::kTrailingBytes);

  // The pristine blob still round-trips after all that.
  const auto fresh = fresh_targets();
  deserialize_kv_wire(blob, pointers(fresh));
  expect_states_equal(layers[0]->head_state(0), fresh[0]->head_state(0));
}

// The v2 reader keeps accepting PR 5's CRC-less v1 blobs. The v1 writer path
// is the unchanged v1 serializer, so these are authentic v1 bytes.
TEST(KvWire, LegacyV1BlobsStillDeserialize) {
  const HackAttentionConfig cfg = wire_config(2, true, true);
  const auto layers = make_prefilled_layers(2, 64, 2, 4, 70, cfg, 21);

  KvWireSections v1_sections, v2_sections;
  const auto v1 =
      serialize_kv_wire(pointers(layers), &v1_sections, kKvWireVersionLegacy);
  const auto v2 = serialize_kv_wire(pointers(layers), &v2_sections);

  const KvWireInfo info = parse_kv_wire_header(v1);
  EXPECT_EQ(info.version, kKvWireVersionLegacy);
  EXPECT_EQ(info.header_bytes, 48u);
  EXPECT_EQ(parse_kv_wire_header(v2).header_bytes, 52u);
  // v2's integrity framing is the only difference: header CRC (4 bytes) plus
  // 12 bytes of length+CRC per (layer × KV head) record.
  EXPECT_EQ(v2.size(), v1.size() + 4 + 12 * 2 * 2);
  EXPECT_EQ(v2_sections.framing, v1_sections.framing + 4 + 12 * 2 * 2);
  // The payload bytes themselves are identical — v2 wraps, never rewrites.
  EXPECT_TRUE(std::equal(v1.begin() + 48, v1.begin() + 48 + 32,
                         v2.begin() + 52 + 12));

  std::vector<std::unique_ptr<HackLayerKvState>> fresh;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    fresh.push_back(std::make_unique<HackLayerKvState>(64, 2, 4, cfg, 9));
  }
  deserialize_kv_wire(v1, pointers(fresh));
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      SCOPED_TRACE(testing::Message() << "layer " << l << " head " << h);
      expect_states_equal(layers[l]->head_state(h),
                          fresh[l]->head_state(h));
      EXPECT_EQ(layers[l]->head_rng(h).state(), fresh[l]->head_rng(h).state());
    }
  }

  // A v1 blob has no CRCs: a body flip is *not* detected at the wire layer
  // (that is exactly why v2 exists), but header truncation still is.
  EXPECT_THROW(parse_kv_wire_header({v1.data(), v1.size() - 1}), KvWireError);
}

TEST(KvWire, PackedBitsViewRoundTripsWireSections) {
  // The packed-code sections use PackedBits' layout: adopting bytes via
  // from_bytes and unpacking reproduces the codes exactly.
  std::vector<std::uint8_t> codes(1000);
  Rng rng(3);
  for (const int bits : {1, 2, 4, 8}) {
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
    }
    const PackedBits packed = PackedBits::pack(codes, bits);
    const PackedBits view =
        PackedBits::from_bytes(bits, codes.size(), packed.bytes());
    EXPECT_EQ(view.unpack(), codes);
    EXPECT_THROW(PackedBits::from_bytes(bits, codes.size() + 64,
                                        packed.bytes()),
                 CheckError);
  }
}

// ------------------------------------------------------- delta checkpoints

// Appends `steps` decode tokens to every layer, drawing fresh gaussian rows —
// the attention-level mirror of the decode loop's per-token appends.
void decode_extra_tokens(
    const std::vector<std::unique_ptr<HackLayerKvState>>& layers,
    std::size_t query_heads, std::size_t kv_heads, std::size_t d_head,
    int steps, Rng& rng) {
  for (int i = 0; i < steps; ++i) {
    const Matrix q = Matrix::random_gaussian(1, query_heads * d_head, rng);
    const Matrix k = Matrix::random_gaussian(1, kv_heads * d_head, rng);
    const Matrix v = Matrix::random_gaussian(1, kv_heads * d_head, rng);
    for (const auto& layer : layers) (void)layer->decode_step(q, k, v);
  }
}

// The tentpole's core contract: base blob + delta ⇒ a state byte-identical
// to a full serialize/deserialize of the donor, across GQA × bit-width ×
// SE/RQE — including the re-interleave of V's column-outer metadata when the
// delta seals new Π partitions, and the tail replacement when it stays ragged.
TEST(KvWire, DeltaRoundTripIsBitIdenticalToFullRestore) {
  const std::size_t d_head = 64;
  struct Gqa {
    std::size_t kv_heads, query_heads;
  };
  for (const Gqa gqa : {Gqa{1, 1}, Gqa{2, 4}}) {
    for (const int kv_bits : {2, 4, 8}) {
      for (const bool se : {true, false}) {
        for (const bool rqe : {true, false}) {
          SCOPED_TRACE(testing::Message()
                       << gqa.query_heads << "Q/" << gqa.kv_heads
                       << "KV kv_bits " << kv_bits << " se " << se << " rqe "
                       << rqe);
          const HackAttentionConfig cfg = wire_config(kv_bits, se, rqe);
          // Base at 70 tokens (ragged 6-row tail), then 41 decode steps: the
          // delta seals a Π=32 partition and ends ragged again at 111.
          const auto donor = make_prefilled_layers(
              2, d_head, gqa.kv_heads, gqa.query_heads, 70, cfg, 40);
          const auto base_blob = serialize_kv_wire(pointers(donor));

          Rng step_rng(7100);
          decode_extra_tokens(donor, gqa.query_heads, gqa.kv_heads, d_head,
                              41, step_rng);
          KvDeltaSuffix suffix;
          for (int i = 0; i < 41; ++i) suffix.generated.push_back(3 + i % 7);
          suffix.next_token = 11;

          KvWireSections delta_sections;
          const auto delta =
              serialize_kv_delta(pointers(donor), 70, suffix, &delta_sections);
          EXPECT_EQ(delta_sections.total(), delta.size());
          const auto full = serialize_kv_wire(pointers(donor));
          EXPECT_LT(delta.size(), full.size());
          verify_kv_wire(delta);  // admission gate accepts a pristine delta

          const KvWireInfo info = parse_kv_wire_header(delta);
          EXPECT_EQ(info.version, kKvWireVersionDelta);
          EXPECT_EQ(info.base_tokens, 70u);
          EXPECT_EQ(info.tokens, 111u);

          std::vector<std::unique_ptr<HackLayerKvState>> replica;
          for (std::size_t l = 0; l < donor.size(); ++l) {
            replica.push_back(std::make_unique<HackLayerKvState>(
                d_head, gqa.kv_heads, gqa.query_heads, cfg, 777));
          }
          deserialize_kv_wire(base_blob, pointers(replica));
          const KvDeltaSuffix got = apply_kv_delta(delta, pointers(replica));
          EXPECT_EQ(got.generated, suffix.generated);
          EXPECT_EQ(got.next_token, suffix.next_token);

          for (std::size_t l = 0; l < donor.size(); ++l) {
            for (std::size_t h = 0; h < gqa.kv_heads; ++h) {
              SCOPED_TRACE(testing::Message() << "layer " << l << " head "
                                              << h);
              expect_states_equal(donor[l]->head_state(h),
                                  replica[l]->head_state(h));
              EXPECT_EQ(donor[l]->head_rng(h).state(),
                        replica[l]->head_rng(h).state());
            }
          }
          // Byte identity, not just field equality: a full blob of the
          // merged replica is the full blob of the donor.
          EXPECT_EQ(serialize_kv_wire(pointers(replica)), full);
        }
      }
    }
  }
}

// The economy argument that makes checkpoint cadence affordable: a K-token
// delta against a long context costs a small fraction of re-shipping the
// whole blob (here ≥10× smaller for an 8-token window over 512 tokens).
TEST(KvWire, DeltaBytesAreSmallFractionOfFullBlob) {
  const HackAttentionConfig cfg = wire_config(4, true, true);
  const auto donor = make_prefilled_layers(2, 64, 2, 4, 512, cfg, 19);
  Rng step_rng(88);
  decode_extra_tokens(donor, 4, 2, 64, 8, step_rng);
  KvDeltaSuffix suffix;
  for (int i = 0; i < 8; ++i) suffix.generated.push_back(i);
  suffix.next_token = 2;
  const auto delta = serialize_kv_delta(pointers(donor), 512, suffix);
  const auto full = serialize_kv_wire(pointers(donor));
  EXPECT_LT(delta.size() * 10, full.size());
}

TEST(KvWire, DeltaTypedErrors) {
  const HackAttentionConfig cfg = wire_config(4, true, true);
  const auto donor = make_prefilled_layers(2, 64, 2, 4, 70, cfg, 40);
  const auto base_blob = serialize_kv_wire(pointers(donor));
  Rng step_rng(5);
  decode_extra_tokens(donor, 4, 2, 64, 9, step_rng);
  KvDeltaSuffix suffix;
  for (int i = 0; i < 9; ++i) suffix.generated.push_back(i);
  suffix.next_token = 1;
  const auto delta = serialize_kv_delta(pointers(donor), 70, suffix);

  const auto fresh_targets = [&] {
    std::vector<std::unique_ptr<HackLayerKvState>> fresh;
    for (std::size_t l = 0; l < donor.size(); ++l) {
      fresh.push_back(std::make_unique<HackLayerKvState>(64, 2, 4, cfg, 777));
    }
    return fresh;
  };
  const auto code_of = [](const auto& fn) -> KvWireErrorCode {
    try {
      fn();
    } catch (const KvWireError& e) {
      return e.code();
    }
    ADD_FAILURE() << "expected a KvWireError";
    return KvWireErrorCode::kBadMagic;
  };

  // A delta blob never reaches the full-restore path, and vice versa.
  {
    const auto fresh = fresh_targets();
    EXPECT_EQ(code_of([&] { deserialize_kv_wire(delta, pointers(fresh)); }),
              KvWireErrorCode::kBadVersion);
    EXPECT_EQ(code_of([&] { apply_kv_delta(base_blob, pointers(fresh)); }),
              KvWireErrorCode::kBadVersion);
  }
  // Applying at the wrong base position is a typed geometry error: a fresh
  // (0-token) stack, and a stack that already absorbed the delta.
  {
    const auto fresh = fresh_targets();
    EXPECT_EQ(code_of([&] { apply_kv_delta(delta, pointers(fresh)); }),
              KvWireErrorCode::kBadGeometry);
    deserialize_kv_wire(base_blob, pointers(fresh));
    (void)apply_kv_delta(delta, pointers(fresh));
    EXPECT_EQ(code_of([&] { apply_kv_delta(delta, pointers(fresh)); }),
              KvWireErrorCode::kBadGeometry);
  }
  // In-flight corruption: every body byte is CRC-covered, so both the
  // admission gate (verify_kv_wire) and the apply path reject the bytes
  // before interpreting them.
  {
    auto corrupted = delta;
    corrupted[corrupted.size() / 2] ^= 0x10;
    EXPECT_EQ(code_of([&] { verify_kv_wire(corrupted); }),
              KvWireErrorCode::kBadCrc);
    const auto fresh = fresh_targets();
    deserialize_kv_wire(base_blob, pointers(fresh));
    EXPECT_EQ(code_of([&] { apply_kv_delta(corrupted, pointers(fresh)); }),
              KvWireErrorCode::kBadCrc);
  }
  // verify_kv_wire walks v2 blobs too; v1 has nothing to verify.
  verify_kv_wire(base_blob);
  const auto v1 =
      serialize_kv_wire(pointers(donor), nullptr, kKvWireVersionLegacy);
  EXPECT_EQ(code_of([&] { verify_kv_wire(v1); }),
            KvWireErrorCode::kBadVersion);
}

// Session-level delta resume: checkpoint a mid-decode session, rehydrate a
// replica from base blob + delta, and finish generation — the combined token
// stream is bit-identical to the uninterrupted solo generate() run.
TEST(KvWire, SessionDeltaResumeMatchesSoloGenerate) {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);
  const HackAttentionConfig cfg = wire_config(4, true, true);
  const std::vector<int> prompt =
      SyntheticCorpus({.vocab = tc.vocab}, 123).prompt(0, 45);
  const std::size_t max_new = 12;

  TinyTransformer solo(weights, make_hack_layer_backend(cfg, 0));
  const std::vector<int> expected = solo.generate(prompt, max_new, -1);

  // Donor: prefill, serialize the base, then decode 5 tokens and checkpoint.
  TinyModelSession donor(weights, make_hack_layer_backend(cfg, 0));
  Matrix hidden = donor.forward_rows(prompt);
  int token = argmax_logits(donor.logits_for_row(hidden, hidden.rows() - 1));
  const auto base_blob = serialize_session_kv(donor);

  std::vector<int> generated;
  for (int i = 0; i < 5; ++i) {
    generated.push_back(token);
    hidden = donor.forward_rows({token});
    token = argmax_logits(donor.logits_for_row(hidden, hidden.rows() - 1));
  }
  const auto delta =
      serialize_session_kv_delta(donor, prompt.size(), {generated, token});

  // Replica: base + delta, then finish the decode loop mid-stride.
  TinyModelSession replica(weights, make_hack_layer_backend(cfg, 0));
  deserialize_session_kv(base_blob, replica);
  const KvDeltaSuffix suffix = apply_session_kv_delta(delta, replica);
  EXPECT_EQ(replica.position(), prompt.size() + 5);
  std::vector<int> resumed = suffix.generated;
  int t = suffix.next_token;
  while (resumed.size() < max_new) {
    resumed.push_back(t);
    const Matrix h = replica.forward_rows({t});
    t = argmax_logits(replica.logits_for_row(h, h.rows() - 1));
  }
  EXPECT_EQ(resumed, expected);
}

// ------------------------------------------------ bit-identical continuation

struct HandoffCase {
  std::size_t heads, kv_heads;
  int kv_bits;
  bool se, rqe;
  Rounding rounding;
};

std::vector<int> disagg_generate(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const DisaggConfig& cfg, const ServingRequest& req,
    DisaggRecord* rec_out = nullptr) {
  DisaggEngine engine(weights, cfg);
  DisaggRecord rec = engine.serve(req);
  EXPECT_FALSE(rec.rejected);
  if (rec_out != nullptr) *rec_out = rec;
  return rec.generated;
}

TEST(DisaggHandoff, DecodeContinuationMatchesSoloGenerate) {
  const std::vector<HandoffCase> cases = {
      {4, 2, 2, true, true, Rounding::kStochastic},
      {4, 2, 4, true, true, Rounding::kStochastic},
      {4, 2, 8, true, true, Rounding::kStochastic},
      {6, 2, 2, true, true, Rounding::kStochastic},   // ragged GQA group
      {4, 4, 2, true, true, Rounding::kStochastic},   // MHA
      {4, 2, 2, false, true, Rounding::kStochastic},  // SE off: sums rebuilt
      {4, 2, 2, true, false, Rounding::kStochastic},  // RQE off: ragged tail
      {4, 2, 2, false, false, Rounding::kNearest},
  };
  for (const HandoffCase& c : cases) {
    SCOPED_TRACE(testing::Message()
                 << c.heads << "Q/" << c.kv_heads << "KV kv_bits " << c.kv_bits
                 << " se " << c.se << " rqe " << c.rqe);
    TinyConfig tc;
    tc.vocab = 64;
    tc.layers = 2;
    tc.heads = c.heads;
    tc.kv_heads = c.kv_heads;
    tc.d_head = 32;
    tc.d_ff = 128;
    const auto weights = make_tiny_weights(tc);

    DisaggConfig dc;
    dc.attn = wire_config(c.kv_bits, c.se, c.rqe, c.rounding);
    ServingRequest req;
    req.id = 1;
    req.prompt = SyntheticCorpus({.vocab = tc.vocab}, 123).prompt(0, 45);
    req.max_new_tokens = 12;

    TinyTransformer solo(
        weights, make_hack_layer_backend(dc.attn, dc.backend_seed));
    const std::vector<int> expected =
        solo.generate(req.prompt, req.max_new_tokens, req.eos);

    DisaggRecord rec;
    const std::vector<int> got = disagg_generate(weights, dc, req, &rec);
    EXPECT_EQ(got, expected);
    EXPECT_GT(rec.wire_bytes, 0u);
    EXPECT_GT(rec.transfer_s, 0.0);
    EXPECT_LT(rec.wire_bytes, rec.fp16_kv_bytes);
  }
}

TEST(DisaggHandoff, ChunkedPrefillMatchesSoloUnderNearestRounding) {
  // Chunk boundaries change which stochastic draw lands where (the same
  // caveat as the continuous-batching engine, docs/serving.md), so the
  // chunked ≡ generate() equivalence is pinned under deterministic rounding,
  // and — like the engine's own chunked test — with a prompt shorter than Π:
  // a longer prompt promotes V partitions mid-prefill, so early chunks
  // attend against a still-FP16 tail that whole-prompt prefill has already
  // quantized (a data-representation difference, not a scheduling one).
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);

  DisaggConfig dc;
  dc.attn = wire_config(2, true, true, Rounding::kNearest);
  ServingRequest req;
  req.prompt = SyntheticCorpus({.vocab = tc.vocab}, 77).prompt(1, 23);
  req.max_new_tokens = 10;

  TinyTransformer solo(weights,
                       make_hack_layer_backend(dc.attn, dc.backend_seed));
  const std::vector<int> expected =
      solo.generate(req.prompt, req.max_new_tokens, req.eos);

  for (const std::size_t chunk : {5u, 16u, 64u}) {
    DisaggConfig chunked = dc;
    chunked.prefill_chunk_tokens = chunk;
    DisaggRecord rec;
    EXPECT_EQ(disagg_generate(weights, chunked, req, &rec), expected)
        << "chunk " << chunk;
    if (chunk < req.prompt.size()) EXPECT_GT(rec.prefill_chunks, 1u);
  }
}

// The disagg-relevant chunked property: the wire handoff is invisible. A
// local session run with the *same* chunk schedule — prefill chunks, then
// in-process decode, no serialization anywhere — produces the same tokens
// the prefill→wire→decode split does, even under stochastic rounding and a
// long prompt whose V store promotes partitions mid-prefill.
TEST(DisaggHandoff, ChunkedHandoffMatchesLocalRunOfSameSchedule) {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);

  DisaggConfig dc;
  dc.attn = wire_config(2, true, true, Rounding::kStochastic);
  ServingRequest req;
  req.prompt = SyntheticCorpus({.vocab = tc.vocab}, 77).prompt(1, 37);
  req.max_new_tokens = 10;

  for (const std::size_t chunk : {5u, 16u}) {
    DisaggConfig chunked = dc;
    chunked.prefill_chunk_tokens = chunk;

    // Local baseline: same chunk schedule on one session, never serialized.
    TinyModelSession local(
        weights, make_hack_layer_backend(dc.attn, dc.backend_seed));
    SchedulerConfig sc;
    sc.prefill_chunk_tokens = chunk;
    const Scheduler chunker(sc);
    std::vector<float> logits;
    std::size_t begin = 0;
    while (begin < req.prompt.size()) {
      const std::size_t end = chunker.chunk_end(begin, req.prompt.size());
      const std::vector<int> rows(req.prompt.begin() + begin,
                                  req.prompt.begin() + end);
      const Matrix x = local.forward_rows(rows);
      if (end == req.prompt.size()) {
        logits = local.logits_for_row(x, x.rows() - 1);
      }
      begin = end;
    }
    std::vector<int> expected;
    int token = argmax_logits(logits);
    for (std::size_t i = 0; i < req.max_new_tokens; ++i) {
      if (token == req.eos) break;
      expected.push_back(token);
      const Matrix x = local.forward_rows({token});
      token = argmax_logits(local.logits_for_row(x, 0));
    }

    EXPECT_EQ(disagg_generate(weights, chunked, req), expected)
        << "chunk " << chunk;
  }
}

TEST(DisaggHandoff, MatchesSingleNodeServingEngine) {
  // The same request through the single-node continuous-batching engine and
  // through the disaggregated split produces the same tokens.
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);

  DisaggConfig dc;
  dc.attn = wire_config(2, true, true);
  ServingRequest req;
  req.id = 7;
  req.prompt = SyntheticCorpus({.vocab = tc.vocab}, 5).prompt(2, 33);
  req.max_new_tokens = 8;

  ServingEngineConfig ec;
  ec.scheduler.prefill_chunk_tokens = 256;  // whole-prompt prefill
  ServingEngine engine(
      weights,
      [&dc] { return make_hack_layer_backend(dc.attn, dc.backend_seed); }, ec);
  engine.submit(req);
  const ServingReport report = engine.run();
  ASSERT_EQ(report.requests.size(), 1u);

  EXPECT_EQ(disagg_generate(weights, dc, req),
            report.requests[0].generated);
}

TEST(DisaggHandoff, DecodePoolRejectsOversizedRequests) {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);

  DisaggConfig dc;
  dc.attn = wire_config(2, true, true);
  dc.block_tokens = 16;
  dc.decode_kv_blocks = 2;  // 32 tokens of decode KV — too small

  ServingRequest req;
  req.prompt = SyntheticCorpus({.vocab = tc.vocab}, 9).prompt(0, 40);
  req.max_new_tokens = 8;

  // Default policy: the rejection degrades gracefully to a local decode on
  // the prefill worker — the request still completes.
  DisaggEngine engine(weights, dc);
  const DisaggRecord rec = engine.serve(req);
  EXPECT_FALSE(rec.rejected);
  EXPECT_TRUE(rec.fallback_local);
  EXPECT_FALSE(rec.generated.empty());

  // With fallback disabled, the old drop semantics hold.
  DisaggConfig strict = dc;
  strict.retry.fallback_local = false;
  DisaggEngine engine_strict(weights, strict);
  const DisaggRecord rec_strict = engine_strict.serve(req);
  EXPECT_TRUE(rec_strict.rejected);
  EXPECT_TRUE(rec_strict.generated.empty());

  // A pool that fits admits, decodes, and releases every block.
  DisaggConfig roomy = dc;
  roomy.decode_kv_blocks = 8;
  DisaggEngine engine2(weights, roomy);
  const DisaggRecord rec2 = engine2.serve(req);
  EXPECT_FALSE(rec2.rejected);
  EXPECT_FALSE(rec2.fallback_local);
  EXPECT_EQ(rec2.decode_kv_blocks, 3u);  // ceil(48 / 16)
  EXPECT_EQ(engine2.decode_worker().allocator()->blocks_in_use(), 0u);
  // The fallback's output matches the admitted decode bit for bit.
  EXPECT_EQ(rec.generated, rec2.generated);
}

TEST(DisaggHandoff, TimelineOverlapsTransfersWithNextPrefill) {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  const auto weights = make_tiny_weights(tc);

  DisaggConfig dc;
  dc.attn = wire_config(2, true, true);
  dc.prefill_nic_gbps = 1e-5;  // ~1.25 KB/s: transfers dominate the timeline

  std::vector<ServingRequest> reqs;
  for (std::size_t i = 0; i < 3; ++i) {
    ServingRequest r;
    r.id = i;
    r.prompt = SyntheticCorpus({.vocab = tc.vocab}, 50 + i).prompt(i, 32);
    r.max_new_tokens = 4;
    reqs.push_back(std::move(r));
  }

  DisaggEngine engine(weights, dc);
  const DisaggReport report = engine.run(reqs);
  ASSERT_EQ(report.requests.size(), 3u);
  for (const DisaggRecord& rec : report.requests) {
    EXPECT_FALSE(rec.rejected);
    EXPECT_GT(rec.transfer_s, 0.5);  // the slow NIC really is on the path
    EXPECT_GT(rec.ttft_s, rec.transfer_s);  // TTFT charges the transfer
  }
  // Transfer overlap: with all three prompts prefilled while blobs crawl
  // the wire, the makespan is far below the sum of serialized stages.
  double serial_sum = 0.0;
  for (const DisaggRecord& rec : report.requests) {
    serial_sum += rec.prefill_s + rec.serialize_s + rec.transfer_s +
                  rec.deserialize_s + rec.decode_s;
  }
  EXPECT_LT(report.makespan_s, serial_sum);
  EXPECT_GT(report.wire_vs_fp16, 0.0);
  EXPECT_LT(report.wire_vs_fp16, 0.25);  // 2-bit wire vs FP16 KV
}

}  // namespace
}  // namespace hack
