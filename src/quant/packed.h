// Bit-exact packing of quantization codes into bytes.
//
// The paper transmits 2-bit codes over the network and stores them packed in
// the KV cache; compute unpacks them to INT8 first (§6). PackedBits is the
// wire/storage representation: n codes of b bits each, little-endian within a
// byte, each logical slice padded to a byte boundary by the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/check.h"

namespace hack {

class PackedBits {
 public:
  PackedBits(int bits_per_code, std::size_t count);

  // Packs `codes` (each < 2^bits) into the internal byte buffer.
  static PackedBits pack(std::span<const std::uint8_t> codes,
                         int bits_per_code);

  // Unpacks all codes back into bytes (values < 2^bits).
  std::vector<std::uint8_t> unpack() const;

  std::uint8_t get(std::size_t index) const;
  void set(std::size_t index, std::uint8_t code);

  int bits_per_code() const { return bits_; }
  std::size_t count() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  int bits_;
  std::size_t count_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace hack
