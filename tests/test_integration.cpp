// Cross-module integration tests: the properties that only hold when the
// whole stack composes correctly.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/hack_attention.h"
#include "base/check.h"
#include "cluster/simulator.h"
#include "metrics/text_metrics.h"
#include "model/tiny_transformer.h"
#include "workload/corpus.h"
#include "workload/trace.h"

namespace hack {
namespace {

TEST(Integration, TraceReplayReproducesSimulation) {
  // Recording a workload, serializing it to text, and replaying it through
  // the simulator must give bit-identical JCTs: the simulator's only
  // stochastic input is the arrival sequence.
  ClusterConfig config =
      standard_cluster("A10G", "L", "arXiv", Method::kHack);
  config.num_requests = 16;
  config.seed = 99;
  const SimSummary direct = run_cluster_sim(config);

  // The same seed regenerates the same trace text.
  Rng r1(config.seed), r2(config.seed);
  const Trace t1 = Trace::record(config.dataset, config.rps, 16, r1);
  const Trace t2 = Trace::parse(Trace::record(config.dataset, config.rps, 16,
                                              r2)
                                    .serialize());
  ASSERT_TRUE(t1 == t2);

  const SimSummary replay = run_cluster_sim(config);
  ASSERT_EQ(direct.records.size(), replay.records.size());
  for (std::size_t i = 0; i < direct.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.records[i].completion,
                     replay.records[i].completion);
  }
}

TEST(Integration, WireBytesMatchCacheGrowth) {
  // The per-head wire accounting that the cluster simulator models
  // analytically must agree with what the real quantized state measures.
  HackAttentionConfig config;
  config.pi = 64;
  HackKvState state(128, config);
  Rng rng(5);
  const std::size_t tokens = 512;  // whole partitions: no FP16 tail
  state.append_tokens(Matrix::random_gaussian(tokens, 128, rng),
                      Matrix::random_gaussian(tokens, 128, rng), rng);
  const double fp16 = 2.0 * 2.0 * 128.0 * static_cast<double>(tokens);
  const double measured = static_cast<double>(state.wire_bytes()) / fp16;
  const double modeled = method_traits(Method::kHack, 64, 2).wire_fraction;
  EXPECT_NEAR(measured, modeled, 0.01);
}

TEST(Integration, TinyModelAccuracyOrderingMatchesTable6Mechanism) {
  // One end-to-end check of the Table 6 mechanism: finer partitions give
  // logits closer to the exact model's, aggregated over several seeds.
  SyntheticCorpus corpus({.vocab = 64}, 3);
  TinyConfig cfg;
  cfg.vocab = 64;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.kv_heads = 2;
  cfg.d_head = 128;
  cfg.d_ff = 256;

  auto fidelity = [&](std::size_t pi) {
    double total = 0.0;
    for (int run = 0; run < 2; ++run) {
      cfg.weight_seed = 100 + static_cast<std::uint64_t>(run);
      const auto prompt = corpus.prompt(static_cast<std::size_t>(run), 280);
      TinyTransformer exact(cfg, make_exact_backend());
      const auto ref = exact.generate(prompt, 12);

      HackAttentionConfig hc;
      hc.pi = pi;
      hc.rounding = Rounding::kNearest;
      TinyTransformer exact2(cfg, make_exact_backend());
      TinyTransformer quantized(cfg, make_hack_backend(hc, 7));
      auto le = exact2.prefill(prompt);
      auto lq = quantized.prefill(prompt);
      for (const int tok : ref) {
        double dot = 0.0, ne = 0.0, nq = 0.0;
        for (std::size_t i = 0; i < le.size(); ++i) {
          dot += static_cast<double>(le[i]) * lq[i];
          ne += static_cast<double>(le[i]) * le[i];
          nq += static_cast<double>(lq[i]) * lq[i];
        }
        total += dot / std::sqrt(ne * nq);
        le = exact2.decode_step(tok);
        lq = quantized.decode_step(tok);
      }
    }
    return total;
  };
  const double fine = fidelity(32);
  const double coarse = fidelity(128);
  EXPECT_GT(fine, coarse);
}

TEST(Integration, SimulatorMethodSweepPreservesWorkload) {
  // Every method must see the identical arrival sequence and request shapes
  // (the paper compares methods at a fixed workload).
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kHack, Method::kFp8};
  std::vector<SimSummary> results;
  for (const Method m : methods) {
    ClusterConfig config = standard_cluster("L4", "M", "HumanEval", m);
    config.num_requests = 12;
    config.seed = 31;
    results.push_back(run_cluster_sim(config));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].records.size(), results[0].records.size());
    for (std::size_t r = 0; r < results[0].records.size(); ++r) {
      EXPECT_EQ(results[i].records[r].arrival, results[0].records[r].arrival);
      EXPECT_EQ(results[i].records[r].shape.input_tokens,
                results[0].records[r].shape.input_tokens);
    }
  }
}

TEST(Integration, AllModelsAllGpusProduceSaneConfigs) {
  // The full Table 2 x Table 3 grid builds valid clusters with positive
  // capacity estimates.
  for (const char* gpu : {"A10G", "V100", "T4", "L4", "A100"}) {
    for (const char* model : {"M", "P", "Y", "L", "F"}) {
      const char* dataset =
          std::string(model) == "F" ? "arXiv" : "Cocktail";  // 2K cap (§2.1)
      const ClusterConfig config =
          standard_cluster(gpu, model, dataset, Method::kHack);
      EXPECT_GE(config.prefill_replicas, 1) << gpu << model;
      EXPECT_GE(config.decode_replicas, 1) << gpu << model;
      EXPECT_GT(config.rps, 0.0) << gpu << model;
    }
  }
}

}  // namespace
}  // namespace hack
