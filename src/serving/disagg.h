// Disaggregated prefill → decode serving over the HACK KV wire format.
//
// The paper's headline deployment (§2, §6, §7) runs prefill and decode on
// separate workers and ships the *quantized* KV cache between them. This
// module is that path for the real engine, not the analytical simulator:
//
//   PrefillWorker   runs (optionally chunked) prefill through a
//                   TinyModelSession, emits the first token, and serializes
//                   the per-layer HACK KV state into a KV wire blob
//                   (kvcache/kv_wire.h) — every byte measured, not modeled.
//   DecodeWorker    reserves KV blocks from its own BlockAllocator pool (the
//                   same substrate PagedKvCache rides), rehydrates the blob
//                   into a fresh session, and decodes to completion. The
//                   codes on the wire are the codes attention consumes —
//                   nothing is dequantized or requantized in the handoff, so
//                   generation is bit-identical to the single-node engine
//                   (pinned in tests/test_kv_wire.cpp).
//   DisaggEngine    orchestrates both workers on one timeline: compute is
//                   measured wall-clock, the transfer is the netsim
//                   NCCL-style pipelined model (netsim/transfer.h) over each
//                   worker's NIC — bytes real, timing simulated — and the
//                   prefill worker starts the next request's prompt while
//                   the previous blob is still in flight (transfer overlap,
//                   the NIC busy horizons serialize contending transfers).
//
// TTFT here charges what single-node serving never shows: the first token is
// counted as delivered only when the KV blob has landed and rehydrated on the
// decode worker. docs/disaggregation.md walks the format and the contract.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kvcache/block_allocator.h"
#include "kvcache/kv_wire.h"
#include "metrics/stats.h"
#include "model/session.h"
#include "netsim/link.h"
#include "serving/request.h"

namespace hack {

struct DisaggConfig {
  // Quantization config shared by both workers — the wire header pins it and
  // rehydration rejects a mismatch.
  HackAttentionConfig attn;
  // Backend factory seed; identical on both workers so the decode-side
  // session is the one the prefill session would have become.
  std::uint64_t backend_seed = 7;
  // Prefill chunking (0 = whole prompt in one pass). Chunks follow the
  // serving scheduler's policy (never a 1-row chunk or remainder), so a
  // chunked prefill here matches the continuous-batching engine's schedule.
  std::size_t prefill_chunk_tokens = 0;
  // NIC line rates for the netsim-timed KV transfer.
  double prefill_nic_gbps = 100.0;
  double decode_nic_gbps = 100.0;
  // Pipelining granularity of the transfer (kv_wire_transfer_chunks).
  std::size_t transfer_chunk_bytes = 1 << 20;
  // Decode-side KV block admission: tokens per accounting block, and the
  // pool size (0 = unlimited, no admission control).
  std::size_t block_tokens = 16;
  std::size_t decode_kv_blocks = 0;
};

// One request's measured + modeled lifecycle through the disaggregated path.
struct DisaggRecord {
  ServingRequest request;
  bool rejected = false;           // decode pool could not hold the request
  std::vector<int> generated;      // first (prefill-side) token included

  std::size_t wire_bytes = 0;      // serialized blob size, measured
  KvWireSections sections;         // per-section byte accounting
  std::size_t fp16_kv_bytes = 0;   // FP16 K+V footprint of the same tokens
  std::size_t prefill_chunks = 0;
  std::size_t decode_kv_blocks = 0;

  double prefill_s = 0.0;          // measured compute
  double serialize_s = 0.0;        // measured
  double transfer_s = 0.0;         // netsim-modeled wire time
  double deserialize_s = 0.0;      // measured
  double decode_s = 0.0;           // measured compute

  double ttft_s = 0.0;  // arrival → first token deliverable at decode worker
  double jct_s = 0.0;   // arrival → last token

  // Compression ratio the wire actually achieved for this request.
  double wire_vs_fp16() const {
    return fp16_kv_bytes == 0
               ? 0.0
               : static_cast<double>(wire_bytes) /
                     static_cast<double>(fp16_kv_bytes);
  }
};

struct DisaggReport {
  std::vector<DisaggRecord> requests;  // arrival order
  std::size_t total_generated = 0;
  std::size_t wire_bytes_total = 0;
  std::size_t fp16_kv_bytes_total = 0;
  double wire_vs_fp16 = 0.0;
  double makespan_s = 0.0;
  double transfer_s_total = 0.0;
  SampleStats ttft_s;
  SampleStats jct_s;
};

// The prefill half: prompt in, first token + wire blob out.
class PrefillWorker {
 public:
  struct Result {
    std::vector<std::uint8_t> blob;
    KvWireSections sections;
    int first_token = -1;
    std::size_t prefill_chunks = 0;
    double prefill_s = 0.0;    // measured model compute
    double serialize_s = 0.0;  // measured serialization
  };

  PrefillWorker(std::shared_ptr<const TinyModelWeights> weights,
                const DisaggConfig& config);

  Result prefill(const ServingRequest& request);

  Nic& nic() { return nic_; }

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  Nic nic_;
};

// The decode half: wire blob in, remaining tokens out — bit-identical to the
// single-node continuation.
class DecodeWorker {
 public:
  struct Result {
    bool admitted = false;
    std::vector<int> generated;  // first token included when admitted
    std::size_t kv_blocks = 0;
    double deserialize_s = 0.0;  // measured rehydration
    double decode_s = 0.0;       // measured model compute
  };

  DecodeWorker(std::shared_ptr<const TinyModelWeights> weights,
               const DisaggConfig& config);

  Result decode(std::span<const std::uint8_t> blob, int first_token,
                const ServingRequest& request);

  Nic& nic() { return nic_; }
  const BlockAllocator* allocator() const { return allocator_.get(); }

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  Nic nic_;
  std::unique_ptr<BlockAllocator> allocator_;  // null: no admission control
};

// Orchestrates the two workers over a request timeline with transfer overlap.
class DisaggEngine {
 public:
  DisaggEngine(std::shared_ptr<const TinyModelWeights> weights,
               DisaggConfig config = {});

  PrefillWorker& prefill_worker() { return prefill_; }
  DecodeWorker& decode_worker() { return decode_; }

  // Serves every request FCFS on its arrival timeline and returns the
  // episode's records + rollups. Compute times are measured on this machine;
  // transfer times come from the netsim NIC model.
  DisaggReport run(std::vector<ServingRequest> requests);

  // Single-request convenience. Worker busy horizons persist across calls,
  // so back-to-back serves share one timeline like run() would.
  DisaggRecord serve(const ServingRequest& request);

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  DisaggConfig config_;
  PrefillWorker prefill_;
  DecodeWorker decode_;
  double prefill_free_s_ = 0.0;
  double decode_free_s_ = 0.0;
};

}  // namespace hack
