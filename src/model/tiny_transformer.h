// A real, runnable decoder-only transformer with pluggable KV backends.
//
// The paper's accuracy experiments (Table 6, Table 7, Table 8) measure how
// each KV-compression scheme perturbs generation. The mechanism is entirely
// inside attention — quantization error in K/V (and in HACK's case Q/P)
// shifts attention outputs, which shift logits, which eventually flip
// generated tokens. This module reproduces that mechanism end-to-end with a
// small but complete model: token embeddings, RMSNorm, RoPE, grouped-query
// attention routed through a pluggable per-head KV backend, SwiGLU MLP, tied
// LM head, greedy decoding. Weights are deterministic functions of a seed.
//
// Backends:
//   - exact FP32 (reference / "ground truth" generation)
//   - FP16 cache (the disaggregation baseline)
//   - HACK (homomorphic quantized attention, any HackAttentionConfig)
//   - codec (CacheGen/KVQuant: compress on append, dequantize to attend)
//   - mini-float (FP4/6/8 storage)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "attention/dequant_attention.h"
#include "attention/hack_attention.h"
#include "codec/codec.h"
#include "quant/minifloat.h"
#include "tensor/matrix.h"

namespace hack {

// One KV head's cache + attention kernel. With grouped-query attention a
// single backend serves every query head in its group: the model appends the
// group's K/V once, then attends once per query head.
class HeadBackend {
 public:
  virtual ~HeadBackend() = default;

  // Appends new tokens' K/V rows ([n, d_head] each) to the cache.
  virtual void append(const Matrix& k_new, const Matrix& v_new) = 0;

  // Causal attention of q over all cached tokens; `key_offset` is the
  // timeline index of q's first row.
  virtual Matrix attend(const Matrix& q, std::size_t key_offset) = 0;

  // Bytes the cache occupies in its stored (possibly compressed) form.
  virtual std::size_t stored_bytes() const = 0;
};

using BackendFactory =
    std::function<std::unique_ptr<HeadBackend>(std::size_t d_head)>;

// All KV heads of one transformer layer behind one interface. The model
// appends a layer's K/V once ([n, kv_heads * d_head] slabs) and attends all
// query heads in one call ([n, heads * d_head] in, same shape out) — which
// lets the HACK backend run the batched multi-head engine
// (attention/layer_attention.h) instead of a per-head loop.
class LayerBackend {
 public:
  virtual ~LayerBackend() = default;

  // Appends new tokens' K/V rows for every KV head.
  virtual void append(const Matrix& k_all, const Matrix& v_all) = 0;

  // Causal attention of all query heads over the cached tokens; `key_offset`
  // is the timeline index of q_all's first row.
  virtual Matrix attend(const Matrix& q_all, std::size_t key_offset) = 0;

  // Bytes this layer's caches occupy in stored (possibly compressed) form.
  virtual std::size_t stored_bytes() const = 0;
};

using LayerBackendFactory = std::function<std::unique_ptr<LayerBackend>(
    std::size_t d_head, std::size_t kv_heads, std::size_t query_heads)>;

// Factories for each method. Stochastic backends fork deterministic RNG
// streams from `seed`.
BackendFactory make_exact_backend();
BackendFactory make_fp16_backend();
BackendFactory make_hack_backend(HackAttentionConfig config,
                                 std::uint64_t seed);
BackendFactory make_codec_backend(std::shared_ptr<const KvCodec> codec,
                                  std::uint64_t seed);
BackendFactory make_minifloat_backend(MiniFloatFormat format);

// Adapts a per-head factory into a layer backend that loops KV heads on
// append and query heads on attend — the pre-batching model behavior, still
// used by every non-HACK method.
LayerBackendFactory per_head_layer_factory(BackendFactory factory);

// Native batched HACK layer backend over HackLayerKvState: one quantize pass
// and fused head-parallel HQ-GEMM launches per layer. Seeded so that KV head
// h of layer l draws the same stream as the per-head backend
// make_hack_backend(config, seed) would give it — generation is
// bit-identical between the two, the batched path just runs wider.
LayerBackendFactory make_hack_layer_backend(HackAttentionConfig config,
                                            std::uint64_t seed);

struct TinyConfig {
  std::size_t vocab = 256;   // byte-level tokens
  std::size_t layers = 2;
  std::size_t heads = 4;
  std::size_t kv_heads = 2;  // GQA: heads % kv_heads == 0
  std::size_t d_head = 64;
  std::size_t d_ff = 512;
  float rope_base = 10000.0f;
  std::uint64_t weight_seed = 0x7acc5eedULL;

  std::size_t d_model() const { return heads * d_head; }
};

class TinyTransformer {
 public:
  TinyTransformer(const TinyConfig& config, LayerBackendFactory factory);
  // Per-head compatibility constructor: wraps `factory` in
  // per_head_layer_factory.
  TinyTransformer(const TinyConfig& config, BackendFactory factory);

  const TinyConfig& config() const { return config_; }
  std::size_t tokens_processed() const { return position_; }

  // Processes the prompt and returns the logits row for its last token.
  std::vector<float> prefill(const std::vector<int>& prompt);

  // Processes one token and returns the next logits row.
  std::vector<float> decode_step(int token);

  // Greedy generation: prefill + argmax decode loop. Returns generated
  // tokens (prompt excluded). Stops at max_new_tokens or eos (if >= 0).
  std::vector<int> generate(const std::vector<int>& prompt,
                            std::size_t max_new_tokens, int eos = -1);

  // Total stored KV bytes across all heads/layers.
  std::size_t kv_stored_bytes() const;

 private:
  struct LayerWeights {
    Matrix wq, wk, wv, wo;          // attention projections
    Matrix w_gate, w_up, w_down;    // SwiGLU
    std::vector<float> norm_attn;   // RMSNorm gains
    std::vector<float> norm_mlp;
  };

  // Runs `tokens` rows through the stack; returns final hidden states.
  Matrix forward(const std::vector<int>& tokens, std::size_t start_pos);
  std::vector<float> logits_for_last(const Matrix& hidden);

  void apply_rope(Matrix& x, std::size_t head_count, std::size_t start_pos) const;

  TinyConfig config_;
  Matrix embedding_;                 // vocab x d_model (tied LM head)
  std::vector<LayerWeights> layers_;
  std::vector<float> norm_final_;
  std::vector<std::unique_ptr<LayerBackend>> backends_;  // one per layer
  std::size_t position_ = 0;
};

}  // namespace hack
