// Partition geometry for per-partition asymmetric quantization (§5.2, Fig. 6).
//
// Quantization slices the *inner* (contracted) dimension of a matmul into
// partitions of size Π. For C = A·B with A (M x Z) and B (Z x N):
//   - A is partitioned per row: each row's Z entries split into groups of Π;
//   - B is partitioned per column: each column's Z entries likewise.
// The paper requires Π to be a multiple of 16 so GPU tiles stay aligned; we
// enforce the same constraint.
#pragma once

#include <cstddef>

#include "base/check.h"

namespace hack {

// Which way the partitioned (inner) dimension runs through the matrix.
enum class QuantAxis {
  kRow,  // partitions run along a row (inner dim = columns); used for A, Q, P
  kCol,  // partitions run along a column (inner dim = rows); used for B, K^T, V
};

// Describes how an inner dimension of length `inner` splits into groups.
class PartitionScheme {
 public:
  // `allow_ragged_tail` permits a final partition shorter than Π. The KV-cache
  // V matrix grows one token at a time, so its trailing partition is ragged
  // until it fills (the paper keeps that block in FP16 — see RQE).
  PartitionScheme(std::size_t inner, std::size_t pi, bool allow_ragged_tail);

  std::size_t inner() const { return inner_; }
  std::size_t pi() const { return pi_; }
  std::size_t group_count() const { return groups_; }

  std::size_t group_begin(std::size_t g) const {
    HACK_CHECK(g < groups_, "group " << g << " out of " << groups_);
    return g * pi_;
  }
  std::size_t group_end(std::size_t g) const {
    const std::size_t e = group_begin(g) + pi_;
    return e < inner_ ? e : inner_;
  }
  std::size_t group_size(std::size_t g) const {
    return group_end(g) - group_begin(g);
  }
  std::size_t group_of(std::size_t z) const {
    HACK_CHECK(z < inner_, "index " << z << " out of inner " << inner_);
    return z / pi_;
  }

 private:
  std::size_t inner_;
  std::size_t pi_;
  std::size_t groups_;
};

// True when `pi` is a legal partition size (positive multiple of 16).
bool valid_partition_size(std::size_t pi);

}  // namespace hack
