#include "quant/packed.h"

namespace hack {

PackedBits::PackedBits(int bits_per_code, std::size_t count)
    : bits_(bits_per_code), count_(count) {
  HACK_CHECK(bits_ == 1 || bits_ == 2 || bits_ == 4 || bits_ == 8,
             "bits per code must divide 8, got " << bits_);
  bytes_.assign((count * static_cast<std::size_t>(bits_) + 7) / 8, 0);
}

PackedBits PackedBits::pack(std::span<const std::uint8_t> codes,
                            int bits_per_code) {
  PackedBits packed(bits_per_code, codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    packed.set(i, codes[i]);
  }
  return packed;
}

std::vector<std::uint8_t> PackedBits::unpack() const {
  std::vector<std::uint8_t> codes(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    codes[i] = get(i);
  }
  return codes;
}

std::uint8_t PackedBits::get(std::size_t index) const {
  HACK_CHECK(index < count_, "packed index out of range");
  const std::size_t bit = index * static_cast<std::size_t>(bits_);
  const std::size_t byte = bit / 8;
  const int shift = static_cast<int>(bit % 8);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits_) - 1);
  return static_cast<std::uint8_t>((bytes_[byte] >> shift) & mask);
}

void PackedBits::set(std::size_t index, std::uint8_t code) {
  HACK_CHECK(index < count_, "packed index out of range");
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits_) - 1);
  HACK_CHECK(code <= mask, "code " << int(code) << " exceeds " << bits_
                           << "-bit range");
  const std::size_t bit = index * static_cast<std::size_t>(bits_);
  const std::size_t byte = bit / 8;
  const int shift = static_cast<int>(bit % 8);
  bytes_[byte] =
      static_cast<std::uint8_t>((bytes_[byte] & ~(mask << shift)) |
                                (code << shift));
}

}  // namespace hack
