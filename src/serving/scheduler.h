// Iteration-level scheduler for the continuous-batching engine.
//
// Continuous batching (Orca-style, the policy FlowKV/KVServe assume under
// their disaggregated codecs) schedules work per model iteration, not per
// request: every engine step carries the single-token decode rows of all
// running sequences plus at most one bounded chunk of one prefilling
// sequence's prompt. Decodes never wait for a whole prompt to clear
// (bounded TBT), and the prefill chunk keeps new sequences flowing in
// (bounded TTFT) without monopolizing a step.
//
// The scheduler is deliberately pure: given views of the running sequences
// it returns a StepPlan, and given a request it answers admission-control
// questions against the KV block pool (free-block watermark in
// kvcache/block_allocator.h). The engine owns the clock, the sessions, and
// the mutation.
//
// Chunk policy: prompts are ingested in chunks of at most
// `prefill_chunk_tokens` rows, with two determinism-preserving rules —
// a chunk of a multi-token prompt is never a single row, and a chunk never
// leaves a single trailing row for the next step (it absorbs it instead).
// Single-row launches take the attention engine's flat decode kernel, whose
// float path differs from the streaming prefill kernel; the rules keep every
// prompt row of a chunked prefill on the same kernel a whole-prompt prefill
// would use, which is what makes chunked generation bit-identical to
// `generate()` under deterministic rounding (docs/serving.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "kvcache/block_allocator.h"
#include "serving/request.h"

namespace hack {

struct SchedulerConfig {
  // Max sequences holding KV concurrently (admitted but unfinished).
  std::size_t max_active = 8;
  // Per-step cap on prompt rows ingested (one sequence's chunk); the policy
  // above may stretch a chunk by one row to avoid a 1-row remainder.
  std::size_t prefill_chunk_tokens = 128;
  // KV accounting granularity: tokens per block when reserving from the
  // allocator. One sequence's worst case is ceil((prompt + max_new) /
  // block_tokens) blocks.
  std::size_t block_tokens = 16;
  // Admission keeps at least this many blocks free after a reservation —
  // headroom the engine never hands out (e.g. for bursts on a shared pool).
  std::size_t free_block_floor = 0;
};

inline constexpr std::size_t kNoSequence = static_cast<std::size_t>(-1);

// One engine iteration's work assignment, as indices into the engine's
// running-sequence list.
struct StepPlan {
  std::vector<std::size_t> decode;       // sequences decoding one token
  std::size_t prefill = kNoSequence;     // sequence getting a prompt chunk
  std::size_t prefill_begin = 0;         // prompt row range [begin, end)
  std::size_t prefill_end = 0;
  bool empty() const { return decode.empty() && prefill == kNoSequence; }
};

class Scheduler {
 public:
  // What the scheduler needs to know about one running sequence.
  struct SeqView {
    RequestState state = RequestState::kQueued;
    std::size_t prompt_len = 0;
    std::size_t prefill_done = 0;
  };

  explicit Scheduler(const SchedulerConfig& config);

  const SchedulerConfig& config() const { return config_; }

  // Plans one iteration over the running sequences (engine order): every
  // kDecoding sequence decodes; the first kPrefill sequence gets the next
  // chunk of its prompt.
  StepPlan plan(std::span<const SeqView> running) const;

  // The next chunk [begin, end) of a prompt, honoring the chunk policy.
  std::size_t chunk_end(std::size_t begin, std::size_t prompt_len) const;

  // Worst-case KV block reservation for a request.
  std::size_t blocks_needed(const ServingRequest& request) const;

  // Whether a request may be admitted now: a running-batch slot is open and
  // the reservation fits without dipping below the free-block floor.
  // `allocator` may be null (no KV accounting — admission is slots-only).
  bool can_admit(const ServingRequest& request, std::size_t running_count,
                 const BlockAllocator* allocator) const;

  // Whether a request could EVER be admitted (fits an empty pool). False
  // means reject outright rather than queue forever.
  bool can_ever_admit(const ServingRequest& request,
                      const BlockAllocator* allocator) const;

 private:
  SchedulerConfig config_;
};

}  // namespace hack
