#include "core/cost_model.h"

#include "base/check.h"

namespace hack {

std::int64_t hq_gemm_macs(std::int64_t m, std::int64_t z, std::int64_t n) {
  return m * z * n;
}

std::int64_t hq_approx_flops(std::int64_t m, std::int64_t z, std::int64_t n) {
  return 9 * m * n + m * z + n * z;
}

std::int64_t hq_approx_flops_se(std::int64_t m, std::int64_t z,
                                std::int64_t n) {
  return 9 * m * n + m * z;
}

std::int64_t decode_approx_flops_se(std::int64_t d_h, std::int64_t l_kv) {
  // QKᵀ: M=1, Z=d_h, N=L -> 9L + d_h.  PV: M=1, Z=L, N=d_h -> 9d_h + L.
  return hq_approx_flops_se(1, d_h, l_kv) + hq_approx_flops_se(1, l_kv, d_h);
}

std::int64_t decode_dequant_flops(std::int64_t d_h, std::int64_t l_kv) {
  return 4 * d_h * l_kv;
}

std::int64_t decode_sum_recompute_flops(std::int64_t d_h, std::int64_t l_kv) {
  return 2 * d_h * l_kv;
}

int sum_storage_bits(int bits, std::int64_t pi) {
  HACK_CHECK(bits > 0 && pi > 0, "invalid sum storage query");
  int log2_pi = 0;
  std::int64_t v = 1;
  while (v < pi) {
    v <<= 1;
    ++log2_pi;
  }
  return bits + log2_pi;
}

int sum_storage_bytes(int bits, std::int64_t pi) {
  return sum_storage_bits(bits, pi) <= 8 ? 1 : 2;
}

}  // namespace hack
