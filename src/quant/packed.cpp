#include "quant/packed.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define HACK_PACKED_X86_SIMD 1
#include <immintrin.h>
#endif

namespace hack {
namespace {

bool valid_code_width(int bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8;
}

std::size_t packed_bytes(int bits, std::size_t count) {
  return (count * static_cast<std::size_t>(bits) + 7) / 8;
}

void unpack_codes_scalar(const std::uint8_t* bytes, int bits,
                         std::size_t count, std::uint8_t* out) {
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1);
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits);
  std::size_t i = 0;
  for (std::size_t byte = 0; i < count; ++byte) {
    const std::uint8_t v = bytes[byte];
    for (std::size_t k = 0; k < per_byte && i < count; ++k, ++i) {
      out[i] = static_cast<std::uint8_t>(
          (v >> (k * static_cast<std::size_t>(bits))) & mask);
    }
  }
}

#ifdef HACK_PACKED_X86_SIMD

bool packed_cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// 4-bit: each input byte holds [lo nibble = code 2i, hi nibble = code 2i+1],
// so a 16-byte load expands to 32 codes via two shifts/masks and a byte
// interleave — all in registers.
__attribute__((target("avx2"))) void unpack4_avx2(const std::uint8_t* bytes,
                                                  std::size_t n_bytes,
                                                  std::uint8_t* out) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t byte = 0;
  for (; byte + 16 <= n_bytes; byte += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + byte));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * byte),
                     _mm_unpacklo_epi8(lo, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * byte + 16),
                     _mm_unpackhi_epi8(lo, hi));
  }
  if (byte < n_bytes) {
    unpack_codes_scalar(bytes + byte, 4, (n_bytes - byte) * 2,
                        out + 2 * byte);
  }
}

// 2-bit: each input byte holds codes [4i, 4i+1, 4i+2, 4i+3] in ascending bit
// pairs. Four shift/mask planes zipped twice (8-bit then 16-bit interleave)
// restore code order, 64 codes per 16-byte load.
__attribute__((target("avx2"))) void unpack2_avx2(const std::uint8_t* bytes,
                                                  std::size_t n_bytes,
                                                  std::uint8_t* out) {
  const __m128i mask = _mm_set1_epi8(0x03);
  std::size_t byte = 0;
  for (; byte + 16 <= n_bytes; byte += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + byte));
    const __m128i c0 = _mm_and_si128(v, mask);
    const __m128i c1 = _mm_and_si128(_mm_srli_epi16(v, 2), mask);
    const __m128i c2 = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    const __m128i c3 = _mm_and_si128(_mm_srli_epi16(v, 6), mask);
    // [c0 c1] byte-zips and [c2 c3] byte-zips, then 16-bit zips give
    // (c0,c1,c2,c3) per source byte in order.
    const __m128i lo01 = _mm_unpacklo_epi8(c0, c1);
    const __m128i hi01 = _mm_unpackhi_epi8(c0, c1);
    const __m128i lo23 = _mm_unpacklo_epi8(c2, c3);
    const __m128i hi23 = _mm_unpackhi_epi8(c2, c3);
    std::uint8_t* dst = out + 4 * byte;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     _mm_unpacklo_epi16(lo01, lo23));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                     _mm_unpackhi_epi16(lo01, lo23));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                     _mm_unpacklo_epi16(hi01, hi23));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                     _mm_unpackhi_epi16(hi01, hi23));
  }
  if (byte < n_bytes) {
    unpack_codes_scalar(bytes + byte, 2, (n_bytes - byte) * 4,
                        out + 4 * byte);
  }
}

#endif  // HACK_PACKED_X86_SIMD

}  // namespace

void pack_codes(std::span<const std::uint8_t> codes, int bits_per_code,
                std::uint8_t* out_bytes) {
  HACK_CHECK(valid_code_width(bits_per_code),
             "bits per code must divide 8, got " << bits_per_code);
  if (bits_per_code == 8) {
    std::memcpy(out_bytes, codes.data(), codes.size());
    return;
  }
  const std::uint8_t mask =
      static_cast<std::uint8_t>((1u << bits_per_code) - 1);
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits_per_code);
  const std::size_t n_bytes = packed_bytes(bits_per_code, codes.size());
  std::memset(out_bytes, 0, n_bytes);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    HACK_CHECK(codes[i] <= mask, "code " << int(codes[i]) << " exceeds "
                                         << bits_per_code << "-bit range");
    out_bytes[i / per_byte] = static_cast<std::uint8_t>(
        out_bytes[i / per_byte] |
        (codes[i] << ((i % per_byte) * static_cast<std::size_t>(bits_per_code))));
  }
}

void unpack_codes(std::span<const std::uint8_t> bytes, int bits_per_code,
                  std::size_t count, std::uint8_t* out_codes) {
  HACK_CHECK(valid_code_width(bits_per_code),
             "bits per code must divide 8, got " << bits_per_code);
  HACK_CHECK(bytes.size() >= packed_bytes(bits_per_code, count),
             "packed buffer too small: " << bytes.size() << " bytes for "
                                         << count << " codes");
  if (bits_per_code == 8) {
    std::memcpy(out_codes, bytes.data(), count);
    return;
  }
#ifdef HACK_PACKED_X86_SIMD
  if (packed_cpu_has_avx2() &&
      (bits_per_code == 2 || bits_per_code == 4)) {
    const std::size_t per_byte = 8 / static_cast<std::size_t>(bits_per_code);
    // Whole input bytes run the vector path; a trailing partial byte (count
    // not a multiple of codes-per-byte) finishes scalar.
    const std::size_t whole_bytes = count / per_byte;
    if (bits_per_code == 4) {
      unpack4_avx2(bytes.data(), whole_bytes, out_codes);
    } else {
      unpack2_avx2(bytes.data(), whole_bytes, out_codes);
    }
    const std::size_t done = whole_bytes * per_byte;
    if (done < count) {
      unpack_codes_scalar(bytes.data() + whole_bytes, bits_per_code,
                          count - done, out_codes + done);
    }
    return;
  }
#endif
  unpack_codes_scalar(bytes.data(), bits_per_code, count, out_codes);
}

PackedBits::PackedBits(int bits_per_code, std::size_t count)
    : bits_(bits_per_code), count_(count) {
  HACK_CHECK(valid_code_width(bits_),
             "bits per code must divide 8, got " << bits_);
  bytes_.assign(packed_bytes(bits_, count), 0);
}

PackedBits PackedBits::pack(std::span<const std::uint8_t> codes,
                            int bits_per_code) {
  PackedBits packed(bits_per_code, codes.size());
  pack_codes(codes, bits_per_code, packed.bytes_.data());
  return packed;
}

PackedBits PackedBits::from_bytes(int bits_per_code, std::size_t count,
                                  std::span<const std::uint8_t> bytes) {
  PackedBits packed(bits_per_code, count);
  HACK_CHECK(bytes.size() == packed.bytes_.size(),
             "packed section holds " << bytes.size() << " bytes, expected "
                                     << packed.bytes_.size() << " for "
                                     << count << " " << bits_per_code
                                     << "-bit codes");
  if (!bytes.empty()) {
    std::memcpy(packed.bytes_.data(), bytes.data(), bytes.size());
  }
  return packed;
}

std::vector<std::uint8_t> PackedBits::unpack() const {
  std::vector<std::uint8_t> codes(count_);
  unpack_codes(bytes_, bits_, count_, codes.data());
  return codes;
}

std::uint8_t PackedBits::get(std::size_t index) const {
  HACK_CHECK(index < count_, "packed index out of range");
  const std::size_t bit = index * static_cast<std::size_t>(bits_);
  const std::size_t byte = bit / 8;
  const int shift = static_cast<int>(bit % 8);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits_) - 1);
  return static_cast<std::uint8_t>((bytes_[byte] >> shift) & mask);
}

void PackedBits::set(std::size_t index, std::uint8_t code) {
  HACK_CHECK(index < count_, "packed index out of range");
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits_) - 1);
  HACK_CHECK(code <= mask, "code " << int(code) << " exceeds " << bits_
                           << "-bit range");
  const std::size_t bit = index * static_cast<std::size_t>(bits_);
  const std::size_t byte = bit / 8;
  const int shift = static_cast<int>(bit % 8);
  bytes_[byte] =
      static_cast<std::uint8_t>((bytes_[byte] & ~(mask << shift)) |
                                (code << shift));
}

}  // namespace hack
