#include "netsim/fault.h"

#include "base/check.h"

namespace hack {

FaultConfig fault_config_for_link(const FaultConfig& base,
                                  std::uint64_t link_id) {
  // splitmix64 finalizer over the link id; link 0 keeps the base seed so a
  // single-link fleet replays exactly the schedule the 1×1 engine saw.
  FaultConfig out = base;
  if (link_id != 0) {
    std::uint64_t z = link_id + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out.seed = base.seed ^ (z ^ (z >> 31));
  }
  return out;
}

FaultModel::FaultModel(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  HACK_CHECK(config_.chunk_drop_prob >= 0.0 && config_.chunk_drop_prob <= 1.0,
             "drop probability " << config_.chunk_drop_prob << " outside [0,1]");
  HACK_CHECK(
      config_.chunk_corrupt_prob >= 0.0 && config_.chunk_corrupt_prob <= 1.0,
      "corrupt probability " << config_.chunk_corrupt_prob << " outside [0,1]");
  HACK_CHECK(
      config_.latency_spike_prob >= 0.0 && config_.latency_spike_prob <= 1.0,
      "spike probability " << config_.latency_spike_prob << " outside [0,1]");
  HACK_CHECK(config_.latency_spike_s >= 0.0, "negative latency spike");
  for (const LinkDownWindow& w : config_.down_windows) {
    HACK_CHECK(w.end_s >= w.start_s, "down window ends before it starts");
  }
}

void FaultModel::script_fate(std::size_t chunk_ordinal, ChunkFate fate) {
  HACK_CHECK(chunk_ordinal >= ordinal_,
             "chunk " << chunk_ordinal << " already drawn (at ordinal "
                      << ordinal_ << ")");
  scripted_[chunk_ordinal] = fate;
}

ChunkEvent FaultModel::next_chunk() {
  // Fixed draw order and count per chunk, independent of the outcome.
  const double drop_draw = rng_.next_double();
  const double corrupt_draw = rng_.next_double();
  const double spike_draw = rng_.next_double();
  const std::uint64_t entropy = rng_.next_u64();

  ChunkEvent event;
  event.corrupt_entropy = entropy;
  const auto scripted = scripted_.find(ordinal_);
  if (scripted != scripted_.end()) {
    event.fate = scripted->second;
  } else if (drop_draw < config_.chunk_drop_prob) {
    event.fate = ChunkFate::kDropped;
  } else if (corrupt_draw < config_.chunk_corrupt_prob) {
    event.fate = ChunkFate::kCorrupted;
  }
  if (spike_draw < config_.latency_spike_prob) {
    event.spike_s = config_.latency_spike_s;
    ++stats_.latency_spikes;
  }

  ++ordinal_;
  ++stats_.chunks_seen;
  if (event.fate == ChunkFate::kDropped) ++stats_.drops;
  if (event.fate == ChunkFate::kCorrupted) ++stats_.corruptions;
  return event;
}

double FaultModel::down_delay(double t) {
  for (const LinkDownWindow& w : config_.down_windows) {
    if (t >= w.start_s && t < w.end_s) {
      ++stats_.down_delays;
      return w.end_s - t;
    }
  }
  return 0.0;
}

}  // namespace hack
