// Dequantize-then-compute attention — the CacheGen/KVQuant execution model.
//
// KV chunks are compressed through a KvCodec when produced (once per token),
// but *every* attention call must first reconstruct all tokens' K and V back
// to full precision before the FP16 matmuls run (§2.2). The reconstruction
// work is what HACK's homomorphic path eliminates; this module counts it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attention/reference.h"
#include "base/rng.h"
#include "codec/codec.h"
#include "tensor/matrix.h"

namespace hack {

struct DequantAttnStats {
  std::int64_t dequantized_values = 0;  // K/V elements reconstructed
  std::int64_t dequant_calls = 0;       // attention invocations paying it
  std::int64_t encoded_values = 0;      // K/V elements pushed through encode
};

// Per-head KV state held in codec-compressed form.
class DequantKvState {
 public:
  DequantKvState(std::size_t d_head, std::shared_ptr<const KvCodec> codec);

  std::size_t tokens() const { return tokens_; }
  std::size_t d_head() const { return d_head_; }

  // Compresses and stores the new tokens' K/V rows ([n, d_head] each).
  void append_tokens(const Matrix& k_new, const Matrix& v_new, Rng& rng,
                     DequantAttnStats* stats = nullptr);

  // Reconstructs all stored K (or V) rows — the per-iteration dequantization.
  Matrix reconstruct_k(DequantAttnStats* stats = nullptr) const;
  Matrix reconstruct_v(DequantAttnStats* stats = nullptr) const;

  // Compressed footprint in bytes (wire + cache).
  std::size_t stored_bytes() const;

 private:
  std::size_t d_head_;
  std::size_t tokens_ = 0;
  std::shared_ptr<const KvCodec> codec_;
  std::vector<std::vector<std::uint8_t>> k_blobs_;
  std::vector<std::vector<std::uint8_t>> v_blobs_;
};

// Attention that reconstructs K/V from the compressed state each call, then
// runs the exact reference kernel on the reconstruction.
Matrix dequant_attention(const Matrix& q, const DequantKvState& state,
                         const AttentionOptions& options,
                         DequantAttnStats* stats = nullptr);

}  // namespace hack
