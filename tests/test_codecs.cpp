// KV codec tests: round-trip behaviour, compression rates in the paper's
// band (~86% vs FP16 for CacheGen/KVQuant), and the structural choices
// (KVQuant per-channel K, outlier patching).
#include <gtest/gtest.h>

#include "codec/cachegen.h"
#include "codec/codec.h"
#include "codec/kvquant.h"
#include "metrics/tensor_metrics.h"

namespace hack {
namespace {

// Token-correlated KV chunk: row t = momentum * row(t-1) + noise. Real KV
// exhibits exactly this smoothness, which CacheGen's delta stage exploits.
Matrix correlated_chunk(std::size_t tokens, std::size_t d, double momentum,
                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(tokens, d);
  for (std::size_t c = 0; c < d; ++c) {
    m(0, c) = static_cast<float>(rng.next_gaussian());
  }
  for (std::size_t t = 1; t < tokens; ++t) {
    for (std::size_t c = 0; c < d; ++c) {
      m(t, c) = static_cast<float>(momentum * m(t - 1, c) +
                                   (1.0 - momentum) * rng.next_gaussian());
    }
  }
  return m;
}

TEST(Codecs, FactoryKnowsAllNames) {
  EXPECT_EQ(make_codec("cachegen")->name(), "cachegen");
  EXPECT_EQ(make_codec("kvquant")->name(), "kvquant");
  EXPECT_EQ(make_codec("fp16")->name(), "fp16");
  EXPECT_THROW(make_codec("nope"), CheckError);
}

TEST(Codecs, Fp16RoundTripIsValueExact) {
  const Matrix chunk = correlated_chunk(32, 64, 0.9, 1);
  const auto codec = make_codec("fp16");
  Rng rng(2);
  const auto blob = codec->encode(chunk, KvKind::kKey, rng);
  const Matrix recon = codec->decode(blob);
  Matrix expect = chunk;
  expect.round_to_fp16();
  EXPECT_EQ(max_abs_diff(recon, expect), 0.0f);
  // Header + 2 bytes per value.
  EXPECT_NEAR(static_cast<double>(blob.size()), 2.0 * chunk.size(), 16.0);
}

TEST(Codecs, CacheGenShapePreserved) {
  const Matrix chunk = correlated_chunk(50, 64, 0.95, 3);
  CacheGenCodec codec;
  Rng rng(4);
  const auto blob = codec.encode(chunk, KvKind::kKey, rng);
  const Matrix recon = codec.decode(blob);
  EXPECT_EQ(recon.rows(), 50u);
  EXPECT_EQ(recon.cols(), 64u);
}

TEST(Codecs, CacheGenReconstructionTracksSource) {
  const Matrix chunk = correlated_chunk(64, 64, 0.95, 5);
  CacheGenCodec codec;
  Rng rng(6);
  const auto blob = codec.encode(chunk, KvKind::kValue, rng);
  const Matrix recon = codec.decode(blob);
  EXPECT_GT(cosine_similarity(recon, chunk), 0.78);
}

TEST(Codecs, CacheGenCompressionInPaperBand) {
  // §2.2: ~86% compression vs FP16. Accept 82-92% on correlated data.
  const Matrix chunk = correlated_chunk(256, 128, 0.95, 7);
  CacheGenCodec codec;
  Rng rng(8);
  const auto blob = codec.encode(chunk, KvKind::kKey, rng);
  const double compression = compression_vs_fp16(chunk, blob.size());
  EXPECT_GT(compression, 0.82);
  EXPECT_LT(compression, 0.92);
}

TEST(Codecs, CacheGenDeltaHelpsOnCorrelatedData) {
  // More correlation -> smaller Rice-coded deltas -> smaller blob.
  CacheGenCodec codec;
  Rng r1(9), r2(9);
  const Matrix smooth = correlated_chunk(256, 64, 0.98, 10);
  const Matrix rough = correlated_chunk(256, 64, 0.0, 11);
  const auto blob_smooth = codec.encode(smooth, KvKind::kKey, r1);
  const auto blob_rough = codec.encode(rough, KvKind::kKey, r2);
  EXPECT_LT(blob_smooth.size(), blob_rough.size());
}

TEST(Codecs, KvQuantCompressionInPaperBand) {
  const Matrix chunk = correlated_chunk(256, 128, 0.9, 12);
  KvQuantCodec codec;
  Rng rng(13);
  const auto blob = codec.encode(chunk, KvKind::kKey, rng);
  const double compression = compression_vs_fp16(chunk, blob.size());
  EXPECT_GT(compression, 0.80);
  EXPECT_LT(compression, 0.90);
}

TEST(Codecs, KvQuantOutliersPatchedExactly) {
  // Plant a huge outlier; reconstruction must return it at FP16 precision
  // instead of destroying the whole partition's scale.
  Matrix chunk = correlated_chunk(64, 64, 0.9, 14);
  chunk(10, 3) = 250.0f;
  KvQuantCodec codec(2, 64, /*outlier_fraction=*/0.01);
  Rng rng(15);
  const auto blob = codec.encode(chunk, KvKind::kValue, rng);
  const Matrix recon = codec.decode(blob);
  EXPECT_EQ(recon(10, 3), 250.0f);  // 250 is exactly representable in FP16
  // Bulk error stays small despite the outlier.
  Matrix bulk_src = chunk, bulk_rec = recon;
  bulk_src(10, 3) = 0.0f;
  bulk_rec(10, 3) = 0.0f;
  EXPECT_GT(cosine_similarity(bulk_rec, bulk_src), 0.80);
}

TEST(Codecs, KvQuantOutliersImproveAccuracy) {
  Matrix chunk = correlated_chunk(128, 64, 0.9, 16);
  // Sprinkle heavy tails.
  Rng noise(17);
  for (int i = 0; i < 40; ++i) {
    chunk(noise.next_below(128), noise.next_below(64)) =
        static_cast<float>(20.0 * (noise.next_double() - 0.5));
  }
  Rng r1(18), r2(18);
  KvQuantCodec with(2, 64, 0.02);
  KvQuantCodec without(2, 64, 0.0);
  const Matrix recon_with = with.decode(with.encode(chunk, KvKind::kKey, r1));
  const Matrix recon_without =
      without.decode(without.encode(chunk, KvKind::kKey, r2));
  EXPECT_LT(relative_l2(recon_with, chunk), relative_l2(recon_without, chunk));
}

TEST(Codecs, KvQuantSingleTokenChunkFallsBackPerToken) {
  // Decode-phase appends are single rows; per-channel needs >= 16 rows.
  const Matrix chunk = correlated_chunk(1, 64, 0.9, 19);
  KvQuantCodec codec;
  Rng rng(20);
  const auto blob = codec.encode(chunk, KvKind::kKey, rng);
  const Matrix recon = codec.decode(blob);
  EXPECT_EQ(recon.rows(), 1u);
  EXPECT_GT(cosine_similarity(recon, chunk), 0.78);
}

TEST(Codecs, DecodeRejectsWrongMagic) {
  const Matrix chunk = correlated_chunk(8, 32, 0.9, 21);
  Rng rng(22);
  const auto cg_blob = CacheGenCodec().encode(chunk, KvKind::kKey, rng);
  EXPECT_THROW(KvQuantCodec().decode(cg_blob), CheckError);
  EXPECT_THROW(make_codec("fp16")->decode(cg_blob), CheckError);
}

TEST(Codecs, KvQuantRejectsCorruptBitsField) {
  // The bits byte sits at bit offset 80 (magic + rows + cols) = byte 10.
  // A corrupt width must throw before the decoder's 8 / bits chunk math.
  Rng rng(61);
  const Matrix chunk = correlated_chunk(32, 64, 0.9, 62);
  auto blob = KvQuantCodec().encode(chunk, KvKind::kKey, rng);
  blob[10] = 0;
  EXPECT_THROW(KvQuantCodec().decode(blob), CheckError);
  blob[10] = 16;
  EXPECT_THROW(KvQuantCodec().decode(blob), CheckError);
  EXPECT_THROW(KvQuantCodec(3), CheckError);  // constructor validates too
}

TEST(Codecs, ParallelChunkLoopsAreDeterministicAtPrefillSize) {
  // A chunk past the parallel threshold (≥ 64k values) runs the channel-/
  // byte-chunk loops on the shared pool; the blob and the reconstruction
  // must be identical to what a same-seed encode produces on any schedule,
  // and the roundtrip must still land on the source.
  const Matrix chunk = correlated_chunk(768, 128, 0.9, 321);  // 98k values
  for (const char* name : {"cachegen", "kvquant"}) {
    const auto codec = make_codec(name);
    Rng r1(55), r2(55);
    const auto blob1 = codec->encode(chunk, KvKind::kKey, r1);
    const auto blob2 = codec->encode(chunk, KvKind::kKey, r2);
    EXPECT_EQ(blob1, blob2) << name;
    const Matrix recon1 = codec->decode(blob1);
    const Matrix recon2 = codec->decode(blob1);
    EXPECT_TRUE(recon1 == recon2) << name;
    EXPECT_GT(cosine_similarity(recon1, chunk), 0.75) << name;
  }
}

struct CodecCase {
  const char* name;
  std::size_t tokens;
  std::size_t d;
};

class CodecSweep : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecSweep, RoundTripShapeAndFidelity) {
  const auto p = GetParam();
  const Matrix chunk = correlated_chunk(p.tokens, p.d, 0.9, 100 + p.tokens);
  const auto codec = make_codec(p.name);
  Rng rng(23);
  for (const KvKind kind : {KvKind::kKey, KvKind::kValue}) {
    const auto blob = codec->encode(chunk, kind, rng);
    const Matrix recon = codec->decode(blob);
    ASSERT_EQ(recon.rows(), p.tokens);
    ASSERT_EQ(recon.cols(), p.d);
    // 2-bit quantization of weakly-structured data sits near cosine 0.8-0.9;
    // real KV (strong channel structure) does much better (§7.3).
    EXPECT_GT(cosine_similarity(recon, chunk), 0.75)
        << p.name << " tokens=" << p.tokens;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecSweep,
    ::testing::Values(CodecCase{"cachegen", 1, 64},
                      CodecCase{"cachegen", 17, 64},
                      CodecCase{"cachegen", 128, 128},
                      CodecCase{"kvquant", 1, 64},
                      CodecCase{"kvquant", 16, 64},
                      CodecCase{"kvquant", 128, 128},
                      CodecCase{"fp16", 5, 32}));

}  // namespace
}  // namespace hack
