// Shared accuracy-measurement harness for the Table 6/7/8 benches.
//
// Free-running greedy decode is chaotic on a random-weight model: the first
// flipped token derails everything after it, so sequence similarity
// collapses to ~0 and stops discriminating between methods. The statistic
// that isolates the paper's mechanism — how often KV-quantization error
// flips a generation decision — is *teacher-forced token agreement*: both
// models consume the reference token stream, and we count the steps where
// the method's argmax matches the reference's. This is a per-decision error
// rate, directly comparable across methods, and maps monotonically onto the
// paper's task-accuracy deltas.
#pragma once

#include <cmath>
#include <vector>

#include "model/tiny_transformer.h"
#include "workload/corpus.h"

namespace hack::bench {

inline TinyConfig accuracy_model_config(std::uint64_t weight_seed) {
  TinyConfig c;
  c.vocab = 256;
  c.layers = 2;
  c.heads = 2;
  c.kv_heads = 2;
  c.d_head = 128;  // divisible by Π = 32, 64 and 128
  c.d_ff = 512;
  c.weight_seed = weight_seed;
  return c;
}

inline int argmax(const std::vector<float>& logits) {
  int best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

// Reference greedy continuation from the exact-arithmetic model.
inline std::vector<int> reference_tokens(const TinyConfig& config,
                                         const std::vector<int>& prompt,
                                         std::size_t steps) {
  TinyTransformer model(config, make_exact_backend());
  return model.generate(prompt, steps);
}

// Fraction of decode steps where `factory`'s model picks the same token as
// the reference, with both fed the reference stream (teacher forcing).
inline double token_agreement(const TinyConfig& config,
                              const BackendFactory& factory,
                              const std::vector<int>& prompt,
                              const std::vector<int>& reference) {
  TinyTransformer model(config, factory);
  std::vector<float> logits = model.prefill(prompt);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (argmax(logits) == reference[i]) {
      ++agree;
    }
    logits = model.decode_step(reference[i]);
  }
  return reference.empty()
             ? 1.0
             : static_cast<double>(agree) / static_cast<double>(reference.size());
}

// Mean per-step cosine similarity between the method's logits and the exact
// model's logits under teacher forcing. Continuous and low-variance — the
// right instrument for sub-point accuracy deltas (Table 7, Table 8) where
// discrete token flips would be all noise.
inline double logit_fidelity(const TinyConfig& config,
                             const BackendFactory& factory,
                             const std::vector<int>& prompt,
                             const std::vector<int>& reference) {
  TinyTransformer exact(config, make_exact_backend());
  TinyTransformer model(config, factory);
  std::vector<float> exact_logits = exact.prefill(prompt);
  std::vector<float> logits = model.prefill(prompt);
  double total = 0.0;
  std::size_t steps = 0;
  auto cosine = [](const std::vector<float>& a, const std::vector<float>& b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    return dot / std::sqrt(na * nb);
  };
  for (const int token : reference) {
    total += cosine(logits, exact_logits);
    ++steps;
    exact_logits = exact.decode_step(token);
    logits = model.decode_step(token);
  }
  return steps == 0 ? 1.0 : total / static_cast<double>(steps);
}

}  // namespace hack::bench
