// Table 5: peak GPU memory usage on decode instances across datasets, plus
// §7.4's overhead accounting: SE sum storage (paper: 2.2-2.7% of capacity)
// and RQE FP16 last-block storage (paper: 0.24-0.51%), measured from the
// real quantized cache rather than the analytic model.
#include "attention/hack_attention.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  {
    Table t("Table 5: peak decode GPU memory usage (L, A10G prefill)");
    t.header({"method", "IMDb", "arXiv", "Cocktail", "HumanEval"});
    for (const Method method : methods) {
      std::vector<std::string> cells = {method_name(method)};
      for (const std::string& dataset : dataset_names()) {
        ClusterConfig config =
            standard_cluster("A10G", "L", dataset, method);
        // The paper's memory-pressured operating point: RPS at maximum
        // processing capacity against half the decode fleet, so the FP16
        // baseline's KV footprint saturates decode memory while the
        // quantized methods stay comfortable (Table 5's 93.7% vs ~60%).
        config.decode_replicas = 2;
        config.rps *= 1.6;
        cells.push_back(pct(run(config).peak_decode_mem_fraction));
      }
      t.row(cells);
    }
    t.print();
  }

  // §7.4: exact byte accounting from the real per-head quantized KV state.
  {
    Table t("Sec 7.4: HACK cache overhead accounting (measured, per head)");
    t.header({"tokens", "packed_kv", "sum_cache(SE)", "fp16_tail(RQE)",
              "sum_share", "tail_share_of_fp16_kv"});
    HackAttentionConfig hc;
    hc.pi = 64;
    Rng rng(1);
    HackKvState state(128, hc);
    for (const std::size_t target : {250u, 1000u, 4100u, 16000u}) {
      while (state.tokens() < target) {
        const std::size_t n = target - state.tokens();
        const std::size_t chunk = n < 512 ? n : 512;
        const Matrix k = Matrix::random_gaussian(chunk, 128, rng);
        const Matrix v = Matrix::random_gaussian(chunk, 128, rng);
        state.append_tokens(k, v, rng);
      }
      const double fp16_kv = 2.0 * 2.0 * 128.0 * static_cast<double>(target);
      const double total = static_cast<double>(state.packed_kv_bytes()) +
                           state.sum_cache_bytes() + state.fp16_tail_bytes();
      t.row({std::to_string(target), std::to_string(state.packed_kv_bytes()),
             std::to_string(state.sum_cache_bytes()),
             std::to_string(state.fp16_tail_bytes()),
             pct(state.sum_cache_bytes() / total),
             pct(state.fp16_tail_bytes() / fp16_kv, 3)});
    }
    t.print();
  }
  return 0;
}
