// Extension study (§8, Limitations and Future Work): the paper plans to
// explore quantization schemes beyond 2-bit (INT4 compute in CUDA) that
// trade a little compression for accuracy without the small-Π JCT penalty.
// The whole stack here is bit-width generic, so we can run that study today:
// HACK with 4-bit KV against 2-bit at several partition sizes — accuracy
// (teacher-forced logit fidelity), wire footprint, and end-to-end JCT.
#include "accuracy_util.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

namespace {

double fidelity_for(int kv_bits, std::size_t pi) {
  SyntheticCorpus corpus({.vocab = 256}, 55);
  double total = 0.0;
  constexpr int kRuns = 3;
  for (int run = 0; run < kRuns; ++run) {
    const TinyConfig cfg = accuracy_model_config(60 + run);
    const auto prompt = corpus.prompt(static_cast<std::size_t>(run), 320);
    const auto ref = reference_tokens(cfg, prompt, 28);
    HackAttentionConfig hc;
    hc.pi = pi;
    hc.kv_bits = kv_bits;
    hc.rounding = Rounding::kNearest;
    total +=
        logit_fidelity(cfg, make_hack_backend(hc, 300 + run), prompt, ref) /
        kRuns;
  }
  return total;
}

}  // namespace

int main() {
  Table t("Future work (Sec 8): HACK KV bit width x partition size");
  t.header({"kv_bits", "pi", "wire_fraction", "logit_fidelity",
            "avg_jct_s (L+Cocktail, A10G)"});
  for (const int bits : {2, 4}) {
    for (const std::size_t pi : {32u, 64u, 128u}) {
      const MethodTraits traits = method_traits(Method::kHack, pi, bits);
      ClusterConfig config =
          standard_cluster("A10G", "L", "Cocktail", Method::kHack);
      config.pi = pi;
      config.kv_bits = bits;
      const SimSummary s = run(config);
      t.row({std::to_string(bits), std::to_string(pi),
             pct(traits.wire_fraction), pct(fidelity_for(bits, pi)),
             fmt(s.avg_jct_s, 1)});
    }
  }
  t.print();

  Table n("Future work: the paper's trade-off, quantified");
  n.header({"finding", "value"});
  const double fid_2_32 = fidelity_for(2, 32);
  const double fid_4_128 = fidelity_for(4, 128);
  n.row({"2-bit needs Pi=32 for fidelity", pct(fid_2_32)});
  n.row({"4-bit reaches higher fidelity at Pi=128", pct(fid_4_128)});
  n.row({"4-bit Pi=128 wire fraction",
         pct(method_traits(Method::kHack, 128, 4).wire_fraction)});
  n.row({"2-bit Pi=32 wire fraction",
         pct(method_traits(Method::kHack, 32, 2).wire_fraction)});
  n.print();
  return 0;
}
