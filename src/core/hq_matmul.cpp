#include "core/hq_matmul.h"

#include "base/thread_pool.h"
#include "core/int_gemm.h"

namespace hack {
namespace {

// Shared Eq. (4) engine. Layout differences between NN (P·V) and NT (Q·Kᵀ)
// are confined to the banded integer kernel and the Σ b' recompute loop,
// selected at compile time.
template <bool kNT>
Matrix hq_matmul_blocked(const QuantizedMatrix& a, const QuantizedMatrix& b,
                         std::size_t n, const SumCache* b_sums, HqStats* stats,
                         int threads) {
  HACK_CHECK(a.axis == QuantAxis::kRow, "A must be row-axis quantized");
  HACK_CHECK(a.bits >= 1 && b.bits >= 1, "operands must be quantized");
  HACK_CHECK(a.pi == b.pi, "partition size mismatch: " << a.pi << " vs "
                            << b.pi);
  const std::size_t m = a.rows;
  const std::size_t z = a.cols;
  const PartitionScheme scheme(z, a.pi, /*allow_ragged_tail=*/true);
  const std::size_t groups = scheme.group_count();
  HACK_CHECK(a.group_count() == groups, "A group count mismatch");
  HACK_CHECK(b.group_count() == groups,
             "B group count mismatch: " << b.group_count() << " vs " << groups);
  if (b_sums != nullptr) {
    HACK_CHECK(b_sums->outer() == n && b_sums->groups() == groups,
               "SumCache does not match B");
  }

  HqStats local{};

  const CodeView a_codes{a.codes.data(), a.rows, a.cols};
  const CodeView b_codes{b.codes.data(), b.rows, b.cols};

  // Σ b' per (j, g): read straight out of the SumCache's contiguous storage
  // (it uses the same outer-major layout) or recompute from the codes.
  std::vector<std::int32_t> b_col_sums_storage;
  const std::int32_t* b_col_sums = nullptr;
  if (b_sums != nullptr) {
    b_col_sums = b_sums->data();
  } else {
    b_col_sums_storage.assign(n * groups, 0);
    if constexpr (kNT) {
      // B is N x Z: each (j, g) sum is a contiguous run of row j.
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint8_t* row = b.codes.data() + j * b.cols;
        for (std::size_t g = 0; g < groups; ++g) {
          std::int32_t acc = 0;
          for (std::size_t zz = scheme.group_begin(g);
               zz < scheme.group_end(g); ++zz) {
            acc += row[zz];
          }
          b_col_sums_storage[j * groups + g] = acc;
        }
      }
    } else {
      // B is Z x N: stream the rows, scattering into per-column slots.
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t zz = scheme.group_begin(g); zz < scheme.group_end(g);
             ++zz) {
          const std::uint8_t* row = b.codes.data() + zz * b.cols;
          for (std::size_t j = 0; j < n; ++j) {
            b_col_sums_storage[j * groups + g] += row[j];
          }
        }
      }
    }
    b_col_sums = b_col_sums_storage.data();
    local.sum_flops += static_cast<std::int64_t>(n) * z;  // NZ adds
  }

  // Hoisted per-(j, g) Eq. (4) factors, group-major so the inner j-loop of
  // the correction reads them contiguously:
  //   B1 = s_b, B2 = m_b, B3 = s_b·Σb' + |g|·m_b.
  std::vector<float> b1(groups * n), b2(groups * n), b3(groups * n);
  for (std::size_t g = 0; g < groups; ++g) {
    const auto group_len = static_cast<float>(scheme.group_size(g));
    float* f1 = b1.data() + g * n;
    float* f2 = b2.data() + g * n;
    float* f3 = b3.data() + g * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float sb = b.scales[j * groups + g];
      const float mb = b.mins[j * groups + g];
      f1[j] = sb;
      f2[j] = mb;
      f3[j] = sb * static_cast<float>(b_col_sums[j * groups + g]) +
              group_len * mb;
    }
  }

  Matrix c(m, n, 0.0f);

  // One row band of C: integer GEMM per group into a band-local int32 tile,
  // then the vectorizable three-term correction
  //   C[i,j] += A1·B1[j]·dot + A2·B2[j] + A3·B3[j]
  // with A1 = s_a, A2 = s_a·Σa', A3 = m_a. Every C row is produced entirely
  // inside one band, so results do not depend on the band decomposition.
  auto process_band = [&](std::size_t r0, std::size_t r1) {
    const std::size_t band = r1 - r0;
    // Σ a' per (band row, g): contiguous runs of each A row.
    std::vector<std::int32_t> a_row_sums(band * groups, 0);
    for (std::size_t i = r0; i < r1; ++i) {
      const std::uint8_t* row = a.codes.data() + i * a.cols;
      for (std::size_t g = 0; g < groups; ++g) {
        std::int32_t acc = 0;
        for (std::size_t zz = scheme.group_begin(g); zz < scheme.group_end(g);
             ++zz) {
          acc += row[zz];
        }
        a_row_sums[(i - r0) * groups + g] = acc;
      }
    }

    std::vector<std::int32_t> dot(band * n);
    for (std::size_t g = 0; g < groups; ++g) {
      std::fill(dot.begin(), dot.end(), 0);
      if constexpr (kNT) {
        int_gemm_nt_rows(a_codes, b_codes, r0, r1, scheme.group_begin(g),
                         scheme.group_end(g), dot.data(), b.bits);
      } else {
        int_gemm_nn_rows(a_codes, b_codes, r0, r1, scheme.group_begin(g),
                         scheme.group_end(g), dot.data());
      }
      const float* f1 = b1.data() + g * n;
      const float* f2 = b2.data() + g * n;
      const float* f3 = b3.data() + g * n;
      for (std::size_t i = r0; i < r1; ++i) {
        const float sa = a.scales[i * groups + g];
        const float a2 =
            sa * static_cast<float>(a_row_sums[(i - r0) * groups + g]);
        const float a3 = a.mins[i * groups + g];
        float* crow = &c(i, 0);
        const std::int32_t* drow = dot.data() + (i - r0) * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += sa * f1[j] * static_cast<float>(drow[j]) + a2 * f2[j] +
                     a3 * f3[j];
        }
      }
    }
  };

  if (m == 1 || threads == 1) {
    // Decode GEMV fast path / explicit serial: no pool dispatch, the banded
    // kernels degrade to j-tiled dot loops over the single row.
    process_band(0, m);
  } else {
    ThreadPool& pool = ThreadPool::global();
    const std::size_t bands =
        threads <= 0 ? pool.lanes() : static_cast<std::size_t>(threads);
    pool.parallel_for(m, bands, process_band);
  }

  // Cost accounting (pinned by test_cost_model / test_hq_matmul):
  //   MZ adds for Σ a', and 9MN for Eq. (4) — 2 for sa·sb·dot, 2+2 for the
  //   two affine terms, 2 for Z·ma·mb, 3 adds folding the terms together.
  local.approx_flops += static_cast<std::int64_t>(m) * z;
  local.approx_flops += 9 * static_cast<std::int64_t>(m) * n;
  local.int_macs += static_cast<std::int64_t>(m) * n * z;

  if (stats != nullptr) {
    *stats = local;
  }
  return c;
}

}  // namespace

Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums, HqStats* stats, int threads) {
  HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
  HACK_CHECK(a.cols == b.rows, "hq_matmul shape mismatch: " << a.rows << "x"
                               << a.cols << " * " << b.rows << "x" << b.cols);
  return hq_matmul_blocked<false>(a, b, b.cols, b_sums, stats, threads);
}

Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums, HqStats* stats, int threads) {
  HACK_CHECK(b.axis == QuantAxis::kRow,
             "B must be row-axis quantized (token-per-row K layout)");
  HACK_CHECK(a.cols == b.cols, "hq_matmul_nt inner dim mismatch: " << a.cols
                               << " vs " << b.cols);
  return hq_matmul_blocked<true>(a, b, b.rows, b_sums, stats, threads);
}

}  // namespace hack
