#include "netsim/transfer.h"

namespace hack {

TransferResult nccl_transfer(Nic& src, Nic& dst, double ready_time,
                             double bytes, int chunks) {
  HACK_CHECK(chunks > 0, "transfer needs at least one chunk");
  const double chunk_bytes = bytes / chunks;
  TransferResult result;
  result.bytes = bytes;
  double chunk_ready = ready_time;
  for (int i = 0; i < chunks; ++i) {
    const Nic::Booking out = src.book(chunk_ready, chunk_bytes);
    const Nic::Booking in = dst.book(out.finish, chunk_bytes);
    if (i == 0) {
      result.start = out.start;
    }
    result.finish = in.finish;
    // The next chunk can leave as soon as the sender NIC frees up; the
    // receive of chunk i overlaps the send of chunk i+1.
    chunk_ready = out.finish;
  }
  return result;
}

}  // namespace hack
