// Model architecture configs — the paper's evaluation zoo (Table 3).
//
// The analytic cost model only needs architecture shape (layers, heads, head
// dim, parameter count), which is public for every model in the paper:
// Mistral-v0.3 7B (M), Phi-3 14B (P), Yi 34B (Y), Llama-3.1 70B (L) and
// Falcon 180B (F). TP/PP degrees per GPU family follow Table 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hack {

struct ModelConfig {
  std::string name;       // full name
  std::string letter;     // paper shorthand: M, P, Y, L, F
  std::size_t layers = 0;
  std::size_t hidden = 0;     // d_model
  std::size_t heads = 0;      // attention heads
  std::size_t kv_heads = 0;   // GQA KV heads
  std::size_t d_head = 0;
  std::size_t intermediate = 0;  // MLP inner dim
  std::size_t vocab = 0;
  double params = 0.0;        // total parameter count
  std::size_t max_context = 0;

  // FP16 bytes of KV data for one token across all layers (K and V).
  double kv_bytes_per_token_fp16() const {
    return 2.0 * 2.0 * static_cast<double>(layers * kv_heads * d_head);
  }

  // FP16 bytes of model weights.
  double weight_bytes_fp16() const { return 2.0 * params; }
};

// Tensor/pipeline parallel degrees (Table 3).
struct ParallelismPlan {
  int tp = 1;
  int pp = 1;
  int gpus() const { return tp * pp; }
};

// GPU families used for plan lookup: A10G and L4 share a column in Table 3,
// as do V100 and T4.
enum class GpuFamily {
  kA10gL4,
  kV100T4,
  kA100,
};

// The five evaluation models, in paper order M, P, Y, L, F.
const std::vector<ModelConfig>& model_zoo();

// Lookup by shorthand letter ("M", "P", "Y", "L", "F").
const ModelConfig& model_by_letter(const std::string& letter);

// Table 3 entry for (model, GPU family).
ParallelismPlan parallelism_for(const ModelConfig& model, GpuFamily family);

}  // namespace hack
