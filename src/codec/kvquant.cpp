#include "codec/kvquant.h"

#include <algorithm>
#include <cmath>

#include "base/thread_pool.h"
#include "codec/bitstream.h"
#include "quant/packed.h"
#include "quant/quantizer.h"
#include "tensor/half.h"

namespace hack {
namespace {

// "KR": bumped from "KQ" when the code section gained byte-alignment padding
// — a v1 blob decoded by this reader would silently skip valid code bits, so
// cross-version blobs must fail the magic check loudly instead.
constexpr std::uint32_t kMagic = 0x4b52u;

struct Outlier {
  std::uint32_t flat_index;
  float value;
};

// The code section of a KVQuant blob is byte-aligned and fixed-width, so it
// carves into independent whole-byte chunks: each chunk packs (encode) or
// unpacks (decode) its own code range through the bulk PackedBits paths,
// chunk-parallel on the shared pool above the quantizer's size threshold.
// Chunk boundaries land on byte edges, so the bytes are identical to a
// serial pass.
void for_each_code_chunk(std::size_t n_codes, int bits,
                         const std::function<void(std::size_t, std::size_t)>&
                             fn /* code range [begin, end) */) {
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits);
  const std::size_t n_bytes = (n_codes + per_byte - 1) / per_byte;
  if (n_codes < kParallelQuantizeMinValues || n_bytes < 2) {
    fn(0, n_codes);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.parallel_for(n_bytes, pool.lanes(),
                    [&](std::size_t byte0, std::size_t byte1) {
                      fn(byte0 * per_byte,
                         std::min(byte1 * per_byte, n_codes));
                    });
}

}  // namespace

std::vector<std::uint8_t> KvQuantCodec::encode(const Matrix& chunk,
                                               KvKind kind, Rng& rng) const {
  // Pull the largest-magnitude values out as exact FP16 outliers.
  const std::size_t n = chunk.size();
  std::size_t outlier_count =
      static_cast<std::size_t>(std::floor(outlier_fraction_ * static_cast<double>(n)));
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(outlier_count),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::fabs(chunk.flat()[a]) > std::fabs(chunk.flat()[b]);
                   });
  order.resize(outlier_count);
  std::sort(order.begin(), order.end());

  // Clamp outliers toward the bulk so they don't widen the 2-bit range.
  Matrix clamped = chunk;
  std::vector<Outlier> outliers;
  outliers.reserve(outlier_count);
  for (const std::uint32_t idx : order) {
    outliers.push_back({idx, chunk.flat()[idx]});
    clamped.flat()[idx] = 0.0f;  // bulk-neutral placeholder, patched on decode
  }

  // Per-channel for K when the chunk is tall enough; per-token otherwise/V.
  const bool per_channel = kind == KvKind::kKey && chunk.rows() >= 16;
  const QuantAxis axis = per_channel ? QuantAxis::kCol : QuantAxis::kRow;
  // Partition size must be a multiple of 16 and may exceed the inner extent;
  // cap it so PartitionScheme sees at least one group.
  const std::size_t inner = per_channel ? chunk.rows() : chunk.cols();
  std::size_t pi = std::min(pi_, (inner / 16) * 16);
  if (pi == 0) pi = 16;
  const QuantizedMatrix q = quantize(clamped, bits_, pi, axis,
                                     Rounding::kStochastic, rng,
                                     /*allow_ragged_tail=*/true);

  BitWriter w;
  w.write_bits(kMagic, 16);
  w.write_bits(q.rows, 32);
  w.write_bits(q.cols, 32);
  w.write_bits(static_cast<std::uint64_t>(bits_), 8);
  w.write_bits(pi / 16, 8);
  w.write_bits(axis == QuantAxis::kCol ? 1 : 0, 1);
  w.write_bits(outliers.size(), 32);
  for (std::size_t i = 0; i < q.mins.size(); ++i) {
    w.write_bits(Half(q.mins[i]).bits(), 16);
    w.write_bits(Half(q.scales[i]).bits(), 16);
  }
  for (const Outlier& o : outliers) {
    w.write_bits(o.flat_index, 32);
    w.write_bits(Half(o.value).bits(), 16);
  }
  // Codes: byte-aligned fixed-width section, bit-packed chunk-parallel.
  w.align_to_byte();
  const std::size_t per_byte = 8 / static_cast<std::size_t>(bits_);
  std::vector<std::uint8_t> packed(
      (q.codes.size() * static_cast<std::size_t>(bits_) + 7) / 8);
  for_each_code_chunk(q.codes.size(), bits_,
                      [&](std::size_t c0, std::size_t c1) {
                        pack_codes(std::span(q.codes).subspan(c0, c1 - c0),
                                   bits_, packed.data() + c0 / per_byte);
                      });
  w.append_aligned_bytes(packed);
  return w.finish();
}

Matrix KvQuantCodec::decode(std::span<const std::uint8_t> blob) const {
  BitReader r(blob);
  HACK_CHECK(r.read_bits(16) == kMagic, "not a KVQuant blob");
  QuantizedMatrix q;
  q.rows = static_cast<std::size_t>(r.read_bits(32));
  q.cols = static_cast<std::size_t>(r.read_bits(32));
  q.bits = static_cast<int>(r.read_bits(8));
  // The encoder only emits quantize()-supported widths; anything else is a
  // corrupt blob and must throw here rather than reach the 8 / bits chunk
  // arithmetic below.
  HACK_CHECK(q.bits == 2 || q.bits == 4 || q.bits == 8,
             "corrupt KVQuant blob: bits=" << q.bits);
  q.pi = static_cast<std::size_t>(r.read_bits(8)) * 16;
  q.axis = r.read_bits(1) != 0 ? QuantAxis::kCol : QuantAxis::kRow;
  const std::size_t outlier_count = static_cast<std::size_t>(r.read_bits(32));

  const std::size_t inner = q.axis == QuantAxis::kRow ? q.cols : q.rows;
  const std::size_t outer = q.axis == QuantAxis::kRow ? q.rows : q.cols;
  const PartitionScheme scheme(inner, q.pi, /*allow_ragged_tail=*/true);
  const std::size_t groups = scheme.group_count();
  q.mins.resize(outer * groups);
  q.scales.resize(outer * groups);
  q.groups = groups;
  for (std::size_t i = 0; i < q.mins.size(); ++i) {
    q.mins[i] = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
                    .to_float();
    q.scales[i] = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
                      .to_float();
  }
  std::vector<Outlier> outliers(outlier_count);
  for (Outlier& o : outliers) {
    o.flat_index = static_cast<std::uint32_t>(r.read_bits(32));
    o.value = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
                  .to_float();
  }
  q.codes.resize(q.rows * q.cols);
  r.align_to_byte();
  const std::size_t per_byte = 8 / static_cast<std::size_t>(q.bits);
  const std::span<const std::uint8_t> packed = r.view_aligned_bytes(
      (q.codes.size() * static_cast<std::size_t>(q.bits) + 7) / 8);
  for_each_code_chunk(q.codes.size(), q.bits,
                      [&](std::size_t c0, std::size_t c1) {
                        unpack_codes(packed.subspan(c0 / per_byte), q.bits,
                                     c1 - c0, q.codes.data() + c0);
                      });

  Matrix out = dequantize(q);
  for (const Outlier& o : outliers) {
    out.flat()[o.flat_index] = o.value;
  }
  return out;
}

}  // namespace hack
