#include <gtest/gtest.h>

#include "base/check.h"
#include "model/config.h"
#include "model/flops.h"

namespace hack {
namespace {

TEST(ModelZoo, FivePaperModels) {
  const auto& zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].letter, "M");
  EXPECT_EQ(zoo[4].letter, "F");
  EXPECT_EQ(model_by_letter("L").name, "Llama-3.1 70B");
  EXPECT_THROW(model_by_letter("X"), CheckError);
}

TEST(ModelZoo, ArchitectureConsistency) {
  for (const ModelConfig& m : model_zoo()) {
    EXPECT_EQ(m.heads * m.d_head, m.hidden) << m.name;
    EXPECT_EQ(m.heads % m.kv_heads, 0u) << m.name;
    EXPECT_GT(m.params, 1e9) << m.name;
  }
}

TEST(ModelZoo, FalconContextCap) {
  // §2.1: Falcon-180B cannot process Cocktail (2K context limit).
  EXPECT_LT(model_by_letter("F").max_context, 16200u);
  EXPECT_GT(model_by_letter("L").max_context, 28800u);
}

TEST(ModelZoo, KvBytesPerTokenLlama70B) {
  // 80 layers * 8 kv heads * 128 dims * 2 (K,V) * 2 bytes = 327,680 B.
  const ModelConfig& l = model_by_letter("L");
  EXPECT_DOUBLE_EQ(l.kv_bytes_per_token_fp16(), 327680.0);
}

TEST(Parallelism, Table3Entries) {
  const ModelConfig& l = model_by_letter("L");
  EXPECT_EQ(parallelism_for(l, GpuFamily::kA10gL4).tp, 4);
  EXPECT_EQ(parallelism_for(l, GpuFamily::kA10gL4).pp, 2);
  EXPECT_EQ(parallelism_for(l, GpuFamily::kV100T4).pp, 4);
  EXPECT_EQ(parallelism_for(l, GpuFamily::kA100).pp, 1);

  const ModelConfig& m = model_by_letter("M");
  EXPECT_EQ(parallelism_for(m, GpuFamily::kA100).gpus(), 1);

  const ModelConfig& f = model_by_letter("F");
  EXPECT_EQ(parallelism_for(f, GpuFamily::kA10gL4).gpus(), 20);
  EXPECT_EQ(parallelism_for(f, GpuFamily::kV100T4).gpus(), 32);
  EXPECT_EQ(parallelism_for(f, GpuFamily::kA100).gpus(), 8);
}

TEST(Flops, PrefillScalesSuperlinearly) {
  const ModelConfig& l = model_by_letter("L");
  const double f1 = prefill_flops(l, 1000);
  const double f2 = prefill_flops(l, 2000);
  EXPECT_GT(f2, 2.0 * f1);  // attention's L^2 term
}

TEST(Flops, DecodeStepGrowsLinearlyWithContext) {
  const ModelConfig& l = model_by_letter("L");
  const double d1 = decode_step_flops(l, 1000);
  const double d2 = decode_step_flops(l, 2000);
  EXPECT_GT(d2, d1);
  // Weight term dominates: growth is sub-2x.
  EXPECT_LT(d2, 2.0 * d1);
  EXPECT_NEAR(decode_step_attention_flops(l, 2000),
              2.0 * decode_step_attention_flops(l, 1000), 1.0);
}

TEST(Flops, WeightsDominateShortContextDecode) {
  const ModelConfig& l = model_by_letter("L");
  EXPECT_GT(2.0 * l.params, decode_step_attention_flops(l, 315));
}

TEST(Flops, KvBytesLinear) {
  const ModelConfig& l = model_by_letter("L");
  EXPECT_DOUBLE_EQ(kv_bytes_fp16(l, 16200), 327680.0 * 16200);
}

TEST(Flops, HackApproxFarBelowDequant) {
  // The core asymmetry the paper exploits, at model scale (§5.3).
  const ModelConfig& l = model_by_letter("L");
  for (const double len : {315.0, 6300.0, 16200.0}) {
    EXPECT_LT(decode_hack_approx_flops(l, len),
              decode_dequant_flops(l, len))
        << len;
  }
}

}  // namespace
}  // namespace hack
