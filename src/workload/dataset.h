// Dataset length models — Table 4 of the paper.
//
// The JCT experiments depend on the datasets only through their input/output
// length distributions and the arrival process. Each dataset is modeled as a
// truncated log-normal fitted to the published (avg, min, max) for input and
// output lengths; samples are deterministic under a seed.
#pragma once

#include <string>
#include <vector>

#include "base/rng.h"

namespace hack {

struct LengthStats {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct DatasetSpec {
  std::string name;
  LengthStats input;
  LengthStats output;

  bool long_sequence() const { return input.avg > 1000.0; }
};

// IMDb, arXiv, Cocktail, HumanEval (Table 4).
const std::vector<DatasetSpec>& dataset_zoo();
const DatasetSpec& dataset_by_name(const std::string& name);

struct RequestShape {
  double input_tokens = 0.0;
  double output_tokens = 0.0;
};

// Draws a request's lengths from the dataset model.
RequestShape sample_request(const DatasetSpec& dataset, Rng& rng);

// Draws a length from a truncated log-normal matched to `stats`.
double sample_length(const LengthStats& stats, Rng& rng);

}  // namespace hack
