#include "kvcache/kv_wire.h"

#include <cstring>
#include <sstream>

#include "base/crc32c.h"
#include "model/session.h"
#include "quant/packed.h"
#include "tensor/half.h"

namespace hack {
namespace {

[[noreturn]] void wire_fail(KvWireErrorCode code, const std::string& what) {
  throw KvWireError(code, "KV wire [" + std::string(kv_wire_error_name(code)) +
                              "]: " + what);
}

#define KV_WIRE_CHECK(cond, code, ...)            \
  do {                                            \
    if (!(cond)) {                                \
      ::std::ostringstream kv_wire_os_;           \
      kv_wire_os_ << __VA_ARGS__;                 \
      wire_fail(code, kv_wire_os_.str());         \
    }                                             \
  } while (false)

std::size_t packed_code_section_bytes(int bits, std::size_t count) {
  return (count * static_cast<std::size_t>(bits) + 7) / 8;
}

// Bump-pointer little-endian writer with per-section byte accounting.
struct Writer {
  std::vector<std::uint8_t> buf;
  KvWireSections sections;

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf.insert(buf.end(), p, p + n);
  }
  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void patch_u32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  void patch_u64(std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  // FP16 (min, scale) metadata: the floats are already fp16_round()ed by the
  // quantizer, so binary16 bit patterns round-trip them exactly.
  void halves(std::span<const float> values) {
    for (const float v : values) u16(Half(v).bits());
    sections.metadata += 2 * values.size();
  }
  void fp16_rows(const Matrix& m) {
    for (const float v : m.flat()) u16(Half(v).bits());
    sections.fp16_tail += 2 * m.size();
  }
  void sum_span(const std::int32_t* data, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      HACK_CHECK(data[i] >= 0 && data[i] <= 0xFFFF,
                 "partition sum " << data[i] << " outside the wire's u16");
      u16(static_cast<std::uint16_t>(data[i]));
    }
    sections.sums += 2 * count;
  }
  void sum_entries(const SumCache& s) {
    sum_span(s.data(), s.outer() * s.groups());
  }
  void packed(std::span<const std::uint8_t> codes, int bits) {
    const std::size_t bytes = packed_code_section_bytes(bits, codes.size());
    const std::size_t at = buf.size();
    buf.resize(at + bytes, 0);
    if (!codes.empty()) pack_codes(codes, bits, buf.data() + at);
    sections.packed_codes += bytes;
  }
};

// Bounds-checked little-endian reader. Every take() validates against the
// remaining bytes *before* touching (or allocating for) them, so a malformed
// length field is a typed kTruncated error, never an out-of-bounds read or a
// runaway allocation.
struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;

  std::size_t remaining() const { return buf.size() - pos; }
  std::span<const std::uint8_t> take(std::size_t n) {
    KV_WIRE_CHECK(n <= remaining(), KvWireErrorCode::kTruncated,
                  "need " << n << " bytes at offset " << pos << " of "
                          << buf.size());
    const auto out = buf.subspan(pos, n);
    pos += n;
    return out;
  }
  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::vector<float> halves(std::size_t count) {
    const auto b = take(2 * count);  // bounds before allocation
    std::vector<float> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = Half::from_bits(
                   static_cast<std::uint16_t>(b[2 * i] | (b[2 * i + 1] << 8)))
                   .to_float();
    }
    return out;
  }
  std::vector<std::uint8_t> packed(int bits, std::size_t count) {
    const auto bytes = take(packed_code_section_bytes(bits, count));
    return PackedBits::from_bytes(bits, count, bytes).unpack();
  }
  // The packed code section verbatim — what the packed-resident planes adopt
  // directly instead of unpacking to bytes.
  std::vector<std::uint8_t> packed_raw(int bits, std::size_t count) {
    const auto bytes = take(packed_code_section_bytes(bits, count));
    return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
  }
};

constexpr std::uint8_t kFlagSe = 1u << 0;
constexpr std::uint8_t kFlagRqe = 1u << 1;
constexpr std::uint8_t kFlagStochastic = 1u << 2;

constexpr std::uint8_t kTailNone = 0;
constexpr std::uint8_t kTailFp16 = 1;
constexpr std::uint8_t kTailRaggedQuantized = 2;

// v1 fixed header: 7 × u32 + 4 × u8 + 2 × u64. v2 appends header_crc (u32)
// and frames each record with record_bytes (u64) + record_crc (u32). v3
// (delta) inserts base_tokens (u64) before the CRC and keeps v2's framing.
constexpr std::size_t kHeaderBytesV1 = 7 * 4 + 4 + 2 * 8;
constexpr std::size_t kHeaderBytesV2 = kHeaderBytesV1 + 4;
constexpr std::size_t kHeaderBytesV3 = kHeaderBytesV1 + 8 + 4;
constexpr std::size_t kRecordFramingBytes = 8 + 4;

// Consumes one CRC-framed record (record_bytes u64 · record_crc u32 ·
// payload), verifying the checksum before a single payload byte is parsed.
std::span<const std::uint8_t> take_crc_record(Reader& r) {
  const std::uint64_t record_bytes = r.u64();
  const std::uint32_t stored = r.u32();
  const auto record = r.take(record_bytes);
  const std::uint32_t computed = crc32c(record.data(), record.size());
  KV_WIRE_CHECK(stored == computed, KvWireErrorCode::kBadCrc,
                "record CRC mismatch (stored " << stored << ", computed "
                                               << computed << ")");
  return record;
}

// Writes rows [row_begin, row_begin + row_count) of `q`'s codes as the
// bit-packed wire section. Resident KV planes already hold bit-packed rows;
// because every plane is d_head (a multiple of 16) codes wide, each packed
// row is byte-exact and the section is a straight copy of the resident bytes
// — byte-identical to packing unpacked codes, so the wire format is
// unchanged. Unpacked (byte-storage) matrices take the classic pack path.
void write_packed_rows(Writer& w, const QuantizedMatrix& q,
                       std::size_t row_begin, std::size_t row_count) {
  if (q.packed_storage()) {
    HACK_CHECK(q.storage_bits == q.bits,
               "packed storage width " << q.storage_bits
                                       << " != code width " << q.bits);
    HACK_CHECK((q.cols * static_cast<std::size_t>(q.storage_bits)) % 8 == 0,
               "packed rows must be byte-exact for the wire");
    const std::size_t stride = q.code_row_stride();
    w.raw(q.codes.data() + row_begin * stride, row_count * stride);
    w.sections.packed_codes += row_count * stride;
  } else {
    w.packed(std::span<const std::uint8_t>(q.codes)
                 .subspan(row_begin * q.cols, row_count * q.cols),
             q.bits);
  }
}

void write_quantized(Writer& w, const QuantizedMatrix& q) {
  write_packed_rows(w, q, 0, q.rows);
  w.halves(q.mins);
  w.halves(q.scales);
}

// The V-tail section: FP16 rows (RQE on) or one ragged quantized group (RQE
// off). Shared by the full and delta writers — a delta ships the whole
// current tail.
void write_tail(Writer& w, const HackAttentionConfig& config,
                const HackKvState& st) {
  if (config.requant_elimination && st.v_tail_fp16().rows() > 0) {
    w.u8(kTailFp16);
    w.u64(st.v_tail_fp16().rows());
    w.fp16_rows(st.v_tail_fp16());
  } else if (!config.requant_elimination && st.v_tail_quantized_ready()) {
    w.u8(kTailRaggedQuantized);
    w.u64(st.v_tail_quantized().rows);
    write_quantized(w, st.v_tail_quantized());
  } else {
    w.u8(kTailNone);
    w.u64(0);
  }
}

QuantizedMatrix read_quantized(Reader& r, std::size_t rows, std::size_t cols,
                               int bits, QuantAxis axis, std::size_t pi,
                               std::size_t groups) {
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.bits = bits;
  q.axis = axis;
  q.pi = pi;
  q.groups = groups;
  if (bits != 8 && (cols * static_cast<std::size_t>(bits)) % 8 == 0) {
    // Adopt the wire's packed bytes as the resident representation — the
    // decode-side half of the near-memcpy handoff.
    q.codes = r.packed_raw(bits, rows * cols);
    q.storage_bits = bits;
  } else {
    q.codes = r.packed(bits, rows * cols);
  }
  const std::size_t meta = q.outer() * groups;
  q.mins = r.halves(meta);
  q.scales = r.halves(meta);
  return q;
}

SumCache read_sums(Reader& r, std::size_t outer, std::size_t groups) {
  const std::size_t count = outer * groups;
  const auto b = r.take(2 * count);  // bounds before allocation
  std::vector<std::int32_t> sums(count);
  for (std::size_t i = 0; i < count; ++i) {
    sums[i] = static_cast<std::int32_t>(b[2 * i] | (b[2 * i + 1] << 8));
  }
  return SumCache::from_parts(outer, groups, std::move(sums));
}

const HackAttentionConfig& checked_shared_config(
    std::span<HackLayerKvState* const> layers) {
  HACK_CHECK(!layers.empty(), "KV wire needs at least one layer");
  const HackLayerKvState& first = *layers[0];
  for (const HackLayerKvState* layer : layers) {
    HACK_CHECK(layer != nullptr, "null layer state");
    const HackAttentionConfig& c = layer->config();
    const HackAttentionConfig& f = first.config();
    HACK_CHECK(c.pi == f.pi && c.q_bits == f.q_bits &&
                   c.kv_bits == f.kv_bits && c.rounding == f.rounding &&
                   c.summation_elimination == f.summation_elimination &&
                   c.requant_elimination == f.requant_elimination &&
                   layer->d_head() == first.d_head() &&
                   layer->kv_heads() == first.kv_heads() &&
                   layer->query_heads() == first.query_heads() &&
                   layer->tokens() == first.tokens(),
               "layers disagree on config/geometry/tokens; one wire blob "
               "ships one sequence");
  }
  return first.config();
}

// Parses a record's trailing V-tail section (kind u8 · rows u64 · payload)
// into `tail_fp16`/`tail_q`, returning the kind. Shared by the full-restore
// and delta paths — a delta ships the entire current tail, replacing the
// base's (tails mutate in place as tokens cross Π boundaries).
std::uint8_t read_tail(Reader& r, const KvWireInfo& info, Matrix* tail_fp16,
                       QuantizedMatrix* tail_q) {
  const std::size_t d_head = info.d_head;
  const std::uint8_t tail_kind = r.u8();
  const std::uint64_t tail_rows = r.u64();
  if (tail_kind == kTailFp16) {
    KV_WIRE_CHECK(info.requant_elimination && tail_rows > 0 &&
                      tail_rows < info.pi,
                  KvWireErrorCode::kBadSection,
                  "FP16 tail of " << tail_rows << " rows is invalid");
    const std::vector<float> values = r.halves(tail_rows * d_head);
    *tail_fp16 = Matrix::from_rows(tail_rows, d_head, values);
  } else if (tail_kind == kTailRaggedQuantized) {
    KV_WIRE_CHECK(!info.requant_elimination && tail_rows > 0 &&
                      tail_rows < info.pi,
                  KvWireErrorCode::kBadSection,
                  "ragged tail of " << tail_rows << " rows is invalid");
    *tail_q = read_quantized(r, tail_rows, d_head, info.kv_bits,
                             QuantAxis::kCol, info.pi, 1);
  } else {
    KV_WIRE_CHECK(tail_kind == kTailNone && tail_rows == 0,
                  KvWireErrorCode::kBadSection,
                  "unknown tail kind " << int(tail_kind));
  }
  return tail_kind;
}

// Parses one (layer × KV head) record from `r` into the layer's head `h`.
// For v2 the caller hands a sub-reader whose span is exactly the
// CRC-verified record; for v1 it is the tail of the blob.
void read_head_record(Reader& r, const KvWireInfo& info,
                      HackLayerKvState* layer, std::size_t h) {
  const std::size_t tokens = info.tokens;
  const std::size_t d_head = info.d_head;
  const std::size_t k_groups = d_head / info.pi;

  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  Rng rng(0);
  rng.set_state(rng_state);
  layer->set_head_rng(h, rng);

  QuantizedMatrix k = read_quantized(r, tokens, d_head, info.kv_bits,
                                     QuantAxis::kRow, info.pi, k_groups);
  SumCache k_sums = info.summation_elimination
                        ? read_sums(r, tokens, k_groups)
                        : SumCache::build(k);

  const std::uint64_t v_rows = r.u64();
  KV_WIRE_CHECK(v_rows % info.pi == 0 && v_rows <= tokens,
                KvWireErrorCode::kBadSection,
                "V section rows " << v_rows << " not a whole-Π prefix of "
                                  << tokens << " tokens");
  QuantizedMatrix v_q;
  SumCache v_sums;
  if (v_rows > 0) {
    v_q = read_quantized(r, v_rows, d_head, info.kv_bits, QuantAxis::kCol,
                         info.pi, v_rows / info.pi);
    v_sums = info.summation_elimination
                 ? read_sums(r, d_head, v_rows / info.pi)
                 : SumCache::build(v_q);
  }

  Matrix tail_fp16;
  QuantizedMatrix tail_q;
  const std::uint8_t tail_kind = read_tail(r, info, &tail_fp16, &tail_q);

  layer->head_state_mut(h).restore(
      tokens, std::move(k), std::move(k_sums), std::move(v_q),
      std::move(v_sums), std::move(tail_fp16), std::move(tail_q),
      tail_kind == kTailRaggedQuantized);
}

// Applies one (layer × KV head) v3 delta record onto the head's current
// (base) state and restores the merged result. K rows and whole-Π V
// partitions are append-only — their codes and metadata never change once
// written — so base + delta covers every entry exactly once and the merge is
// bit-identical to a full-blob restore of the checkpointed head. K appends
// are contiguous (rows are the outer axis); V metadata is column-outer, so
// the shipped per-column gathers are re-interleaved here. The tail and the
// RNG stream replace the base's outright.
void apply_head_delta(Reader& r, const KvWireInfo& info,
                      HackLayerKvState* layer, std::size_t h) {
  const std::size_t tokens = info.tokens;
  const std::size_t base = info.base_tokens;
  const std::size_t dt = tokens - base;
  const std::size_t d_head = info.d_head;
  const std::size_t k_groups = d_head / info.pi;

  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  Rng rng(0);
  rng.set_state(rng_state);

  const HackKvState& st = layer->head_state(h);
  KV_WIRE_CHECK(st.tokens() == base, KvWireErrorCode::kBadGeometry,
                "delta applies at base " << base << "; target head holds "
                                         << st.tokens() << " tokens");

  // K: concatenate the appended rows' codes, metadata, and sums.
  QuantizedMatrix k_delta = read_quantized(r, dt, d_head, info.kv_bits,
                                           QuantAxis::kRow, info.pi, k_groups);
  const QuantizedMatrix& k_old = st.k();
  QuantizedMatrix k;
  k.rows = tokens;
  k.cols = d_head;
  k.bits = info.kv_bits;
  k.axis = QuantAxis::kRow;
  k.pi = info.pi;
  k.groups = k_groups;
  // Both sides hold the resident representation (bit-packed rows below 8
  // bits), and rows are byte-exact, so appended rows concatenate byte-wise.
  KV_WIRE_CHECK(k_delta.storage_bits == k_old.storage_bits,
                KvWireErrorCode::kBadSection,
                "delta K storage width " << k_delta.storage_bits
                                         << " != base " << k_old.storage_bits);
  k.storage_bits = k_old.storage_bits;
  k.codes = k_old.codes;
  k.codes.insert(k.codes.end(), k_delta.codes.begin(), k_delta.codes.end());
  k.mins = k_old.mins;
  k.mins.insert(k.mins.end(), k_delta.mins.begin(), k_delta.mins.end());
  k.scales = k_old.scales;
  k.scales.insert(k.scales.end(), k_delta.scales.begin(),
                  k_delta.scales.end());
  SumCache k_sums;
  if (info.summation_elimination) {
    const SumCache delta_sums = read_sums(r, dt, k_groups);
    std::vector<std::int32_t> merged(tokens * k_groups);
    const std::int32_t* old_sums = st.k_sums().data();
    std::copy(old_sums, old_sums + base * k_groups, merged.begin());
    std::copy(delta_sums.data(), delta_sums.data() + dt * k_groups,
              merged.begin() + base * k_groups);
    k_sums = SumCache::from_parts(tokens, k_groups, std::move(merged));
  } else {
    k_sums = SumCache::build(k);
  }

  // V: append the new whole-Π partitions' codes and re-interleave each
  // column's metadata (old groups, then new).
  const std::size_t base_v_rows = base - base % info.pi;
  const std::size_t old_v_rows =
      st.v_quantized_ready() ? st.v_quantized().rows : 0;
  KV_WIRE_CHECK(old_v_rows == base_v_rows, KvWireErrorCode::kBadGeometry,
                "target V store holds " << old_v_rows
                                        << " rows; the delta's base implies "
                                        << base_v_rows);
  const std::uint64_t new_v_rows = r.u64();
  const std::size_t total_v_rows = tokens - tokens % info.pi;
  KV_WIRE_CHECK(new_v_rows % info.pi == 0 &&
                    base_v_rows + new_v_rows == total_v_rows,
                KvWireErrorCode::kBadSection,
                "delta V section carries " << new_v_rows
                                           << " rows; expected "
                                           << total_v_rows - base_v_rows);
  QuantizedMatrix v_q;
  SumCache v_sums;
  if (total_v_rows > 0) {
    const std::size_t g_old = base_v_rows / info.pi;
    const std::size_t g_new = new_v_rows / info.pi;
    const std::size_t g_all = total_v_rows / info.pi;
    const bool packed_resident =
        info.kv_bits != 8 &&
        (d_head * static_cast<std::size_t>(info.kv_bits)) % 8 == 0;
    std::vector<std::uint8_t> new_codes;
    std::vector<float> new_mins, new_scales;
    if (new_v_rows > 0) {
      new_codes = packed_resident
                      ? r.packed_raw(info.kv_bits, new_v_rows * d_head)
                      : r.packed(info.kv_bits, new_v_rows * d_head);
      new_mins = r.halves(d_head * g_new);
      new_scales = r.halves(d_head * g_new);
    }
    const QuantizedMatrix* v_old = g_old > 0 ? &st.v_quantized() : nullptr;
    if (v_old != nullptr) {
      KV_WIRE_CHECK((v_old->storage_bits != 8) == packed_resident,
                    KvWireErrorCode::kBadSection,
                    "delta V storage width does not match the base store");
    }
    v_q.rows = total_v_rows;
    v_q.cols = d_head;
    v_q.bits = info.kv_bits;
    v_q.axis = QuantAxis::kCol;
    v_q.pi = info.pi;
    v_q.groups = g_all;
    if (packed_resident) v_q.storage_bits = info.kv_bits;
    v_q.codes.reserve(total_v_rows * d_head);
    if (v_old != nullptr) {
      v_q.codes.insert(v_q.codes.end(), v_old->codes.begin(),
                       v_old->codes.end());
    }
    v_q.codes.insert(v_q.codes.end(), new_codes.begin(), new_codes.end());
    v_q.mins.resize(d_head * g_all);
    v_q.scales.resize(d_head * g_all);
    for (std::size_t col = 0; col < d_head; ++col) {
      for (std::size_t g = 0; g < g_old; ++g) {
        v_q.mins[col * g_all + g] = v_old->mins[col * g_old + g];
        v_q.scales[col * g_all + g] = v_old->scales[col * g_old + g];
      }
      for (std::size_t g = 0; g < g_new; ++g) {
        v_q.mins[col * g_all + g_old + g] = new_mins[col * g_new + g];
        v_q.scales[col * g_all + g_old + g] = new_scales[col * g_new + g];
      }
    }
    if (info.summation_elimination) {
      SumCache new_sums;
      if (g_new > 0) new_sums = read_sums(r, d_head, g_new);
      std::vector<std::int32_t> merged(d_head * g_all);
      const std::int32_t* old_sums = g_old > 0 ? st.v_sums().data() : nullptr;
      for (std::size_t col = 0; col < d_head; ++col) {
        for (std::size_t g = 0; g < g_old; ++g) {
          merged[col * g_all + g] = old_sums[col * g_old + g];
        }
        for (std::size_t g = 0; g < g_new; ++g) {
          merged[col * g_all + g_old + g] = new_sums.data()[col * g_new + g];
        }
      }
      v_sums = SumCache::from_parts(d_head, g_all, std::move(merged));
    } else {
      v_sums = SumCache::build(v_q);
    }
  }

  Matrix tail_fp16;
  QuantizedMatrix tail_q;
  const std::uint8_t tail_kind = read_tail(r, info, &tail_fp16, &tail_q);

  layer->head_state_mut(h).restore(
      tokens, std::move(k), std::move(k_sums), std::move(v_q),
      std::move(v_sums), std::move(tail_fp16), std::move(tail_q),
      tail_kind == kTailRaggedQuantized);
  layer->set_head_rng(h, rng);
}

// The big header-vs-target compatibility gate shared by the full and delta
// read paths: the handoff contract requires identical HackAttentionConfig
// and geometry on both workers.
void check_wire_geometry(const KvWireInfo& info,
                         std::span<HackLayerKvState* const> layers) {
  KV_WIRE_CHECK(info.layers == layers.size(), KvWireErrorCode::kBadGeometry,
                "blob carries " << info.layers << " layers, target has "
                                << layers.size());
  const HackAttentionConfig& config = checked_shared_config(layers);
  const HackLayerKvState& first = *layers[0];
  KV_WIRE_CHECK(
      info.kv_heads == first.kv_heads() &&
          info.query_heads == first.query_heads() &&
          info.d_head == first.d_head() && info.pi == config.pi &&
          info.q_bits == config.q_bits && info.kv_bits == config.kv_bits &&
          info.summation_elimination == config.summation_elimination &&
          info.requant_elimination == config.requant_elimination &&
          info.stochastic_rounding ==
              (config.rounding == Rounding::kStochastic),
      KvWireErrorCode::kBadGeometry,
      "decode-side config/geometry does not match the wire header; the "
      "handoff contract requires identical HackAttentionConfig on both "
      "workers");
}

// Collects every layer's HACK KV state of a (HACK layer backend) session.
std::vector<HackLayerKvState*> session_layers(TinyModelSession& session,
                                              const char* action) {
  std::vector<HackLayerKvState*> layers;
  layers.reserve(session.layers());
  for (std::size_t l = 0; l < session.layers(); ++l) {
    HackLayerKvState* state = session.backend(l).hack_state();
    HACK_CHECK(state != nullptr,
               "KV wire " << action
                          << " needs batched HACK layer backends "
                             "(make_hack_layer_backend)");
    layers.push_back(state);
  }
  return layers;
}

}  // namespace

const char* kv_wire_error_name(KvWireErrorCode code) {
  switch (code) {
    case KvWireErrorCode::kBadMagic: return "bad-magic";
    case KvWireErrorCode::kBadVersion: return "bad-version";
    case KvWireErrorCode::kBadGeometry: return "bad-geometry";
    case KvWireErrorCode::kBadCrc: return "bad-crc";
    case KvWireErrorCode::kTruncated: return "truncated";
    case KvWireErrorCode::kTrailingBytes: return "trailing-bytes";
    case KvWireErrorCode::kBadSection: return "bad-section";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize_kv_wire(
    std::span<HackLayerKvState* const> layers, KvWireSections* sections,
    std::uint32_t version) {
  HACK_CHECK(version == kKvWireVersion || version == kKvWireVersionLegacy,
             "cannot write KV wire version " << version);
  const HackAttentionConfig& config = checked_shared_config(layers);
  const HackLayerKvState& first = *layers[0];
  const std::uint64_t tokens = first.tokens();
  HACK_CHECK(tokens > 0, "serializing an empty KV cache; run prefill first");
  const bool v2 = version == kKvWireVersion;

  Writer w;
  w.u32(kKvWireMagic);
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(layers.size()));
  w.u32(static_cast<std::uint32_t>(first.kv_heads()));
  w.u32(static_cast<std::uint32_t>(first.query_heads()));
  w.u32(static_cast<std::uint32_t>(first.d_head()));
  w.u32(static_cast<std::uint32_t>(config.pi));
  w.u8(static_cast<std::uint8_t>(config.q_bits));
  w.u8(static_cast<std::uint8_t>(config.kv_bits));
  std::uint8_t flags = 0;
  if (config.summation_elimination) flags |= kFlagSe;
  if (config.requant_elimination) flags |= kFlagRqe;
  if (config.rounding == Rounding::kStochastic) flags |= kFlagStochastic;
  w.u8(flags);
  w.u8(0);  // reserved
  w.u64(tokens);
  const std::size_t payload_at = w.buf.size();
  w.u64(0);  // payload_bytes, patched below
  const std::size_t header_crc_at = w.buf.size();
  if (v2) w.u32(0);  // header_crc, patched below

  for (HackLayerKvState* layer : layers) {
    for (std::size_t h = 0; h < layer->kv_heads(); ++h) {
      const HackKvState& st = layer->head_state(h);
      HACK_CHECK(st.k_ready() && st.tokens() == tokens,
                 "head state out of step with the sequence");

      // v2 record framing: length + CRC precede the payload so the reader
      // can verify integrity before interpreting a single record byte.
      const std::size_t framing_at = w.buf.size();
      if (v2) {
        w.u64(0);  // record_bytes, patched below
        w.u32(0);  // record_crc, patched below
      }
      const std::size_t record_at = w.buf.size();

      const auto rng_state = layer->head_rng(h).state();
      for (const std::uint64_t word : rng_state) w.u64(word);
      w.sections.rng_streams += 32;

      // K: row-axis codes over d_head, whole partitions only.
      write_quantized(w, st.k());
      if (config.summation_elimination) w.sum_entries(st.k_sums());

      // V: the full-partition col-axis store.
      const std::size_t v_rows =
          st.v_quantized_ready() ? st.v_quantized().rows : 0;
      w.u64(v_rows);
      if (v_rows > 0) {
        write_quantized(w, st.v_quantized());
        if (config.summation_elimination) w.sum_entries(st.v_sums());
      }

      // V tail: FP16 rows (RQE on) or one ragged quantized group (RQE off).
      write_tail(w, config, st);

      if (v2) {
        const std::size_t record_bytes = w.buf.size() - record_at;
        w.patch_u64(framing_at, record_bytes);
        w.patch_u32(framing_at + 8,
                    crc32c(w.buf.data() + record_at, record_bytes));
      }
    }
  }

  const std::uint64_t total = w.buf.size();
  w.patch_u64(payload_at, total);
  if (v2) {
    // The header CRC covers every header byte before it — payload_bytes
    // included, so a truncating edit cannot fix up the length unnoticed.
    w.patch_u32(header_crc_at, crc32c(w.buf.data(), kHeaderBytesV1));
  }
  w.sections.framing =
      total - w.sections.rng_streams - w.sections.packed_codes -
      w.sections.metadata - w.sections.sums - w.sections.fp16_tail;
  if (sections != nullptr) *sections = w.sections;
  return std::move(w.buf);
}

KvWireInfo parse_kv_wire_header(std::span<const std::uint8_t> blob) {
  KV_WIRE_CHECK(blob.size() >= kHeaderBytesV1, KvWireErrorCode::kTruncated,
                "blob of " << blob.size() << " bytes is shorter than the "
                           << kHeaderBytesV1 << "-byte wire header");
  Reader r{blob};
  KvWireInfo info;
  KV_WIRE_CHECK(r.u32() == kKvWireMagic, KvWireErrorCode::kBadMagic,
                "not a HACK KV wire blob");
  info.version = r.u32();
  KV_WIRE_CHECK(
      info.version == kKvWireVersion || info.version == kKvWireVersionLegacy ||
          info.version == kKvWireVersionDelta,
      KvWireErrorCode::kBadVersion,
      "unsupported KV wire version " << info.version);
  info.layers = r.u32();
  info.kv_heads = r.u32();
  info.query_heads = r.u32();
  info.d_head = r.u32();
  info.pi = r.u32();
  info.q_bits = r.u8();
  info.kv_bits = r.u8();
  const std::uint8_t flags = r.u8();
  info.summation_elimination = (flags & kFlagSe) != 0;
  info.requant_elimination = (flags & kFlagRqe) != 0;
  info.stochastic_rounding = (flags & kFlagStochastic) != 0;
  (void)r.u8();  // reserved
  info.tokens = r.u64();
  info.payload_bytes = r.u64();
  if (info.version == kKvWireVersionLegacy) {
    info.header_bytes = kHeaderBytesV1;
  } else {
    // v2 and v3 end the header with a CRC over every preceding byte; v3
    // inserts base_tokens before it.
    const bool delta = info.version == kKvWireVersionDelta;
    const std::size_t header_bytes = delta ? kHeaderBytesV3 : kHeaderBytesV2;
    const std::size_t covered = header_bytes - 4;
    info.header_bytes = header_bytes;
    KV_WIRE_CHECK(blob.size() >= header_bytes, KvWireErrorCode::kTruncated,
                  "blob shorter than its CRC-framed header");
    if (delta) info.base_tokens = r.u64();
    const std::uint32_t stored = r.u32();
    const std::uint32_t computed = crc32c(blob.data(), covered);
    KV_WIRE_CHECK(stored == computed, KvWireErrorCode::kBadCrc,
                  "header CRC mismatch: stored " << stored << ", computed "
                                                 << computed);
    if (delta) {
      KV_WIRE_CHECK(info.base_tokens > 0 && info.base_tokens < info.tokens,
                    KvWireErrorCode::kBadSection,
                    "delta base " << info.base_tokens
                                  << " does not precede its " << info.tokens
                                  << "-token checkpoint");
    }
  }
  if (blob.size() < info.payload_bytes) {
    wire_fail(KvWireErrorCode::kTruncated,
              "blob holds " + std::to_string(blob.size()) +
                  " bytes, header claims " +
                  std::to_string(info.payload_bytes));
  }
  if (blob.size() > info.payload_bytes) {
    wire_fail(KvWireErrorCode::kTrailingBytes,
              "blob has " + std::to_string(blob.size() - info.payload_bytes) +
                  " trailing bytes past the framed payload");
  }
  return info;
}

void deserialize_kv_wire(std::span<const std::uint8_t> blob,
                         std::span<HackLayerKvState* const> layers) {
  const KvWireInfo info = parse_kv_wire_header(blob);
  KV_WIRE_CHECK(info.version != kKvWireVersionDelta,
                KvWireErrorCode::kBadVersion,
                "blob is a v3 delta checkpoint; rehydrate its base blob "
                "first, then apply_kv_delta");
  check_wire_geometry(info, layers);
  HACK_CHECK(layers[0]->tokens() == 0, "rehydrating into a non-fresh state");
  // Sanity-bound tokens against the blob before any size arithmetic: each of
  // the blob's tokens costs at least one K code (kv_bits × d_head bits) per
  // record, so a corrupted v1 header (v2 headers are CRC-checked) cannot
  // trigger runaway allocations downstream.
  const std::size_t min_bits_per_token =
      static_cast<std::size_t>(info.kv_bits) * info.d_head;
  KV_WIRE_CHECK(
      info.tokens <= blob.size() * 8 / min_bits_per_token,
      KvWireErrorCode::kBadSection,
      "token count " << info.tokens << " cannot fit a " << blob.size()
                     << "-byte blob");

  Reader r{blob};
  r.pos = info.header_bytes;
  const bool v2 = info.version == kKvWireVersion;
  for (HackLayerKvState* layer : layers) {
    for (std::size_t h = 0; h < info.kv_heads; ++h) {
      if (v2) {
        // Verify the record CRC before parsing a single payload byte; a
        // corrupted length field fails either the bounds check (kTruncated)
        // or, with overwhelming probability, the checksum (kBadCrc).
        const auto record = take_crc_record(r);
        Reader record_reader{record};
        read_head_record(record_reader, info, layer, h);
        KV_WIRE_CHECK(record_reader.pos == record.size(),
                      KvWireErrorCode::kBadSection,
                      "record has " << record.size() - record_reader.pos
                                    << " unparsed bytes");
      } else {
        read_head_record(r, info, layer, h);
      }
    }
  }
  KV_WIRE_CHECK(r.pos == blob.size(), KvWireErrorCode::kTrailingBytes,
                "blob has " << blob.size() - r.pos << " trailing bytes");
}

void verify_kv_wire(std::span<const std::uint8_t> blob) {
  const KvWireInfo info = parse_kv_wire_header(blob);
  KV_WIRE_CHECK(info.version != kKvWireVersionLegacy,
                KvWireErrorCode::kBadVersion,
                "v1 blobs carry no CRCs to verify");
  Reader r{blob};
  r.pos = info.header_bytes;
  std::size_t records = info.layers * info.kv_heads;
  if (info.version == kKvWireVersionDelta) ++records;  // the suffix record
  for (std::size_t i = 0; i < records; ++i) (void)take_crc_record(r);
  KV_WIRE_CHECK(r.pos == blob.size(), KvWireErrorCode::kTrailingBytes,
                "blob has " << blob.size() - r.pos << " trailing bytes");
}

std::vector<std::uint8_t> serialize_kv_delta(
    std::span<HackLayerKvState* const> layers, std::uint64_t base_tokens,
    const KvDeltaSuffix& suffix, KvWireSections* sections) {
  const HackAttentionConfig& config = checked_shared_config(layers);
  const HackLayerKvState& first = *layers[0];
  const std::uint64_t tokens = first.tokens();
  HACK_CHECK(base_tokens > 0 && base_tokens < tokens,
             "delta base " << base_tokens << " must precede the current "
                           << tokens << "-token state");
  HACK_CHECK(suffix.generated.size() == tokens - base_tokens,
             "delta suffix carries " << suffix.generated.size()
                                     << " tokens; the KV delta spans "
                                     << tokens - base_tokens);
  const std::size_t d_head = first.d_head();
  const std::size_t k_groups = d_head / config.pi;
  const std::size_t dt = tokens - base_tokens;
  const std::size_t base_v_rows = base_tokens - base_tokens % config.pi;

  Writer w;
  w.u32(kKvWireMagic);
  w.u32(kKvWireVersionDelta);
  w.u32(static_cast<std::uint32_t>(layers.size()));
  w.u32(static_cast<std::uint32_t>(first.kv_heads()));
  w.u32(static_cast<std::uint32_t>(first.query_heads()));
  w.u32(static_cast<std::uint32_t>(d_head));
  w.u32(static_cast<std::uint32_t>(config.pi));
  w.u8(static_cast<std::uint8_t>(config.q_bits));
  w.u8(static_cast<std::uint8_t>(config.kv_bits));
  std::uint8_t flags = 0;
  if (config.summation_elimination) flags |= kFlagSe;
  if (config.requant_elimination) flags |= kFlagRqe;
  if (config.rounding == Rounding::kStochastic) flags |= kFlagStochastic;
  w.u8(flags);
  w.u8(0);  // reserved
  w.u64(tokens);
  const std::size_t payload_at = w.buf.size();
  w.u64(0);  // payload_bytes, patched below
  w.u64(base_tokens);
  const std::size_t header_crc_at = w.buf.size();
  w.u32(0);  // header_crc, patched below

  // Suffix record: the tokens decoded since the base plus the next input
  // token, CRC-framed like every other record.
  {
    const std::size_t framing_at = w.buf.size();
    w.u64(0);
    w.u32(0);
    const std::size_t record_at = w.buf.size();
    w.u64(suffix.generated.size());
    w.u32(static_cast<std::uint32_t>(suffix.next_token));
    for (const int t : suffix.generated) w.u32(static_cast<std::uint32_t>(t));
    const std::size_t record_bytes = w.buf.size() - record_at;
    w.patch_u64(framing_at, record_bytes);
    w.patch_u32(framing_at + 8, crc32c(w.buf.data() + record_at, record_bytes));
  }

  for (HackLayerKvState* layer : layers) {
    for (std::size_t h = 0; h < layer->kv_heads(); ++h) {
      const HackKvState& st = layer->head_state(h);
      HACK_CHECK(st.k_ready() && st.tokens() == tokens,
                 "head state out of step with the sequence");

      const std::size_t framing_at = w.buf.size();
      w.u64(0);  // record_bytes, patched below
      w.u32(0);  // record_crc, patched below
      const std::size_t record_at = w.buf.size();

      const auto rng_state = layer->head_rng(h).state();
      for (const std::uint64_t word : rng_state) w.u64(word);
      w.sections.rng_streams += 32;

      // K delta: rows are the outer axis, so codes, metadata, and sums for
      // rows [base, tokens) are contiguous slices of the stores.
      const QuantizedMatrix& k = st.k();
      write_packed_rows(w, k, base_tokens, dt);
      w.halves(std::span<const float>(k.mins).subspan(base_tokens * k_groups,
                                                      dt * k_groups));
      w.halves(std::span<const float>(k.scales).subspan(base_tokens * k_groups,
                                                        dt * k_groups));
      if (config.summation_elimination) {
        w.sum_span(st.k_sums().data() + base_tokens * k_groups,
                   dt * k_groups);
      }

      // V delta: only the whole-Π partitions sealed past the base. Codes are
      // row-major (contiguous slice); metadata and sums are column-outer, so
      // gather each column's new groups — apply re-interleaves them.
      const std::size_t v_rows =
          st.v_quantized_ready() ? st.v_quantized().rows : 0;
      HACK_CHECK(v_rows == tokens - tokens % config.pi,
                 "V store out of step: " << v_rows << " rows for " << tokens
                                         << " tokens");
      const std::size_t new_v_rows = v_rows - base_v_rows;
      w.u64(new_v_rows);
      if (new_v_rows > 0) {
        const QuantizedMatrix& v = st.v_quantized();
        const std::size_t g_old = base_v_rows / config.pi;
        const std::size_t g_all = v_rows / config.pi;
        const std::size_t g_new = g_all - g_old;
        write_packed_rows(w, v, base_v_rows, new_v_rows);
        std::vector<float> mins(d_head * g_new);
        std::vector<float> scales(d_head * g_new);
        for (std::size_t col = 0; col < d_head; ++col) {
          for (std::size_t g = 0; g < g_new; ++g) {
            mins[col * g_new + g] = v.mins[col * g_all + g_old + g];
            scales[col * g_new + g] = v.scales[col * g_all + g_old + g];
          }
        }
        w.halves(mins);
        w.halves(scales);
        if (config.summation_elimination) {
          const std::int32_t* sums = st.v_sums().data();
          std::vector<std::int32_t> gathered(d_head * g_new);
          for (std::size_t col = 0; col < d_head; ++col) {
            for (std::size_t g = 0; g < g_new; ++g) {
              gathered[col * g_new + g] = sums[col * g_all + g_old + g];
            }
          }
          w.sum_span(gathered.data(), gathered.size());
        }
      }

      // The tail mutates in place as rows accumulate, so the delta replaces
      // it outright with the full current tail.
      write_tail(w, config, st);

      const std::size_t record_bytes = w.buf.size() - record_at;
      w.patch_u64(framing_at, record_bytes);
      w.patch_u32(framing_at + 8,
                  crc32c(w.buf.data() + record_at, record_bytes));
    }
  }

  const std::uint64_t total = w.buf.size();
  w.patch_u64(payload_at, total);
  w.patch_u32(header_crc_at, crc32c(w.buf.data(), kHeaderBytesV1 + 8));
  w.sections.framing =
      total - w.sections.rng_streams - w.sections.packed_codes -
      w.sections.metadata - w.sections.sums - w.sections.fp16_tail;
  if (sections != nullptr) *sections = w.sections;
  return std::move(w.buf);
}

KvDeltaSuffix apply_kv_delta(std::span<const std::uint8_t> blob,
                             std::span<HackLayerKvState* const> layers) {
  const KvWireInfo info = parse_kv_wire_header(blob);
  KV_WIRE_CHECK(info.version == kKvWireVersionDelta,
                KvWireErrorCode::kBadVersion,
                "not a delta checkpoint (wire version " << info.version
                                                        << ")");
  check_wire_geometry(info, layers);
  KV_WIRE_CHECK(layers[0]->tokens() == info.base_tokens,
                KvWireErrorCode::kBadGeometry,
                "delta applies at base " << info.base_tokens
                                         << "; target holds "
                                         << layers[0]->tokens() << " tokens");

  Reader r{blob};
  r.pos = info.header_bytes;

  KvDeltaSuffix suffix;
  {
    const auto record = take_crc_record(r);
    Reader sr{record};
    const std::uint64_t count = sr.u64();
    KV_WIRE_CHECK(count == info.tokens - info.base_tokens,
                  KvWireErrorCode::kBadSection,
                  "suffix carries " << count << " tokens; the delta spans "
                                    << info.tokens - info.base_tokens);
    suffix.next_token = static_cast<int>(sr.u32());
    suffix.generated.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      suffix.generated.push_back(static_cast<int>(sr.u32()));
    }
    KV_WIRE_CHECK(sr.pos == record.size(), KvWireErrorCode::kBadSection,
                  "suffix record has " << record.size() - sr.pos
                                       << " unparsed bytes");
  }

  for (HackLayerKvState* layer : layers) {
    for (std::size_t h = 0; h < info.kv_heads; ++h) {
      const auto record = take_crc_record(r);
      Reader record_reader{record};
      apply_head_delta(record_reader, info, layer, h);
      KV_WIRE_CHECK(record_reader.pos == record.size(),
                    KvWireErrorCode::kBadSection,
                    "record has " << record.size() - record_reader.pos
                                  << " unparsed bytes");
    }
  }
  KV_WIRE_CHECK(r.pos == blob.size(), KvWireErrorCode::kTrailingBytes,
                "blob has " << blob.size() - r.pos << " trailing bytes");
  return suffix;
}

std::vector<std::uint8_t> serialize_session_kv(TinyModelSession& session,
                                               KvWireSections* sections,
                                               std::uint32_t version) {
  std::vector<HackLayerKvState*> layers =
      session_layers(session, "serialization");
  HACK_CHECK(!layers.empty() && layers[0]->tokens() == session.position(),
             "session position out of step with its KV state; commit the "
             "prefill chunk (advance) before serializing");
  return serialize_kv_wire(layers, sections, version);
}

void deserialize_session_kv(std::span<const std::uint8_t> blob,
                            TinyModelSession& session) {
  HACK_CHECK(session.position() == 0,
             "rehydrating into a used session; construct a fresh one");
  std::vector<HackLayerKvState*> layers =
      session_layers(session, "rehydration");
  deserialize_kv_wire(blob, layers);
  session.restore_position(parse_kv_wire_header(blob).tokens);
}

std::vector<std::uint8_t> serialize_session_kv_delta(
    TinyModelSession& session, std::uint64_t base_tokens,
    const KvDeltaSuffix& suffix, KvWireSections* sections) {
  std::vector<HackLayerKvState*> layers =
      session_layers(session, "delta serialization");
  HACK_CHECK(!layers.empty() && layers[0]->tokens() == session.position(),
             "session position out of step with its KV state; commit the "
             "decode step (advance) before checkpointing");
  return serialize_kv_delta(layers, base_tokens, suffix, sections);
}

KvDeltaSuffix apply_session_kv_delta(std::span<const std::uint8_t> blob,
                                     TinyModelSession& session) {
  std::vector<HackLayerKvState*> layers =
      session_layers(session, "delta rehydration");
  const KvWireInfo info = parse_kv_wire_header(blob);
  HACK_CHECK(session.position() == info.base_tokens,
             "delta applies at position " << info.base_tokens
                                          << "; session is at "
                                          << session.position());
  KvDeltaSuffix suffix = apply_kv_delta(blob, layers);
  session.advance(info.tokens - info.base_tokens);
  return suffix;
}

int kv_wire_transfer_chunks(std::size_t blob_bytes, std::size_t chunk_bytes) {
  HACK_CHECK(chunk_bytes > 0, "transfer chunk size must be positive");
  const std::size_t chunks = (blob_bytes + chunk_bytes - 1) / chunk_bytes;
  if (chunks < 1) return 1;
  if (chunks > 64) return 64;
  return static_cast<int>(chunks);
}

}  // namespace hack
