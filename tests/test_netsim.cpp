#include <gtest/gtest.h>

#include "netsim/link.h"
#include "netsim/transfer.h"

namespace hack {
namespace {

constexpr double kGB = 1e9;

TEST(Nic, TransferTimeMatchesRate) {
  Nic nic(80.0, /*latency_s=*/0.0);  // 10 GB/s
  const auto booking = nic.book(0.0, 10.0 * kGB);
  EXPECT_DOUBLE_EQ(booking.start, 0.0);
  EXPECT_NEAR(booking.finish, 1.0, 1e-9);
}

TEST(Nic, LatencyAdds) {
  Nic nic(80.0, 0.001);
  const auto booking = nic.book(0.0, 0.0);
  EXPECT_NEAR(booking.finish, 0.001, 1e-12);
}

TEST(Nic, SerializesConcurrentTransfers) {
  Nic nic(80.0, 0.0);
  const auto first = nic.book(0.0, 10.0 * kGB);
  const auto second = nic.book(0.0, 10.0 * kGB);  // queued behind first
  EXPECT_NEAR(second.start, first.finish, 1e-9);
  EXPECT_NEAR(second.finish, 2.0, 1e-9);
}

TEST(Nic, IdleGapRespectsReadyTime) {
  Nic nic(80.0, 0.0);
  (void)nic.book(0.0, 10.0 * kGB);
  const auto late = nic.book(5.0, 10.0 * kGB);
  EXPECT_DOUBLE_EQ(late.start, 5.0);
}

TEST(Nic, TracksTotalBytes) {
  Nic nic(100.0, 0.0);
  (void)nic.book(0.0, 123.0);
  (void)nic.book(0.0, 877.0);
  EXPECT_DOUBLE_EQ(nic.total_bytes(), 1000.0);
}

TEST(NcclTransfer, BottleneckIsSlowerNic) {
  // 10 GB over a 10 GB/s sender into a 5 GB/s receiver: ~2s end to end
  // (+ one pipeline-fill chunk on the sender).
  Nic fast(80.0, 0.0), slow(40.0, 0.0);
  const TransferResult result = nccl_transfer(fast, slow, 0.0, 10.0 * kGB, 8);
  EXPECT_GT(result.finish, 2.0);
  EXPECT_LT(result.finish, 2.3);
}

TEST(NcclTransfer, PipeliningBeatsSerial) {
  // With chunking, total < sum of full store-and-forward times (2s + 2s).
  Nic a(40.0, 0.0), b(40.0, 0.0);
  const TransferResult result = nccl_transfer(a, b, 0.0, 10.0 * kGB, 16);
  EXPECT_LT(result.duration(), 2.5);
  EXPECT_GT(result.duration(), 2.0);  // can't beat the line rate
}

TEST(NcclTransfer, ContentionBetweenFlows) {
  // Two transfers sharing the sender NIC take twice as long in aggregate.
  Nic src(80.0, 0.0);
  Nic dst1(400.0, 0.0), dst2(400.0, 0.0);
  const TransferResult r1 = nccl_transfer(src, dst1, 0.0, 10.0 * kGB, 4);
  const TransferResult r2 = nccl_transfer(src, dst2, 0.0, 10.0 * kGB, 4);
  EXPECT_GT(r2.finish, 1.9);
  EXPECT_GT(r2.finish, r1.finish);
}

TEST(NcclTransfer, ReadyTimeDelaysStart) {
  Nic a(80.0, 0.0), b(80.0, 0.0);
  const TransferResult r = nccl_transfer(a, b, 3.0, 1.0 * kGB, 4);
  EXPECT_GE(r.start, 3.0);
  EXPECT_GT(r.finish, 3.1);
}

TEST(NcclTransfer, ZeroBytesCostsOnlyLatency) {
  Nic a(80.0, 1e-4), b(80.0, 1e-4);
  const TransferResult r = nccl_transfer(a, b, 0.0, 0.0, 2);
  EXPECT_LT(r.finish, 1e-3);
}

TEST(Nic, RejectsBadParameters) {
  EXPECT_THROW(Nic(0.0), CheckError);
  EXPECT_THROW(Nic(-5.0), CheckError);
  Nic nic(10.0);
  EXPECT_THROW(nic.book(0.0, -1.0), CheckError);
}

}  // namespace
}  // namespace hack
