#include "base/crc32c.h"

#include <array>

namespace hack {
namespace {

// Reflected Castagnoli polynomial, table generated once at static init.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& t = table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ t[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace hack
