// Golomb–Rice coding of unsigned integers.
//
// Rice(k) writes q = v >> k in unary followed by the low k bits of v. The
// CacheGen-style codec picks k per chunk to minimize the encoded size of its
// zigzagged code deltas — small deltas dominate because adjacent tokens' KV
// values are correlated, which is exactly the distributional property
// CacheGen exploits.
#pragma once

#include <cstdint>
#include <span>

#include "codec/bitstream.h"

namespace hack {

void rice_encode(BitWriter& writer, std::uint32_t value, int k);
std::uint32_t rice_decode(BitReader& reader, int k);

// Encoded bit length of `value` under Rice(k), without writing it.
std::size_t rice_bit_length(std::uint32_t value, int k);

// The k in [0, max_k] minimizing the total encoded length of `values`.
int rice_best_k(std::span<const std::uint32_t> values, int max_k = 8);

}  // namespace hack
