#include "codec/codec.h"

#include "codec/bitstream.h"
#include "codec/cachegen.h"
#include "codec/kvquant.h"
#include "tensor/half.h"

namespace hack {
namespace {

constexpr std::uint32_t kFp16Magic = 0x4631u;  // "F1"

// Identity FP16 codec: what the disaggregation baseline ships on the wire.
class Fp16Codec : public KvCodec {
 public:
  std::string name() const override { return "fp16"; }

  std::vector<std::uint8_t> encode(const Matrix& chunk, KvKind /*kind*/,
                                   Rng& /*rng*/) const override {
    BitWriter w;
    w.write_bits(kFp16Magic, 16);
    w.write_bits(chunk.rows(), 32);
    w.write_bits(chunk.cols(), 32);
    for (const float v : chunk.flat()) {
      w.write_bits(Half(v).bits(), 16);
    }
    return w.finish();
  }

  Matrix decode(std::span<const std::uint8_t> blob) const override {
    BitReader r(blob);
    HACK_CHECK(r.read_bits(16) == kFp16Magic, "not an FP16 blob");
    const std::size_t rows = static_cast<std::size_t>(r.read_bits(32));
    const std::size_t cols = static_cast<std::size_t>(r.read_bits(32));
    Matrix out(rows, cols);
    for (float& v : out.flat()) {
      v = Half::from_bits(static_cast<std::uint16_t>(r.read_bits(16)))
              .to_float();
    }
    return out;
  }
};

}  // namespace

double compression_vs_fp16(const Matrix& chunk, std::size_t blob_bytes) {
  const double fp16_bytes = 2.0 * static_cast<double>(chunk.size());
  return 1.0 - static_cast<double>(blob_bytes) / fp16_bytes;
}

std::unique_ptr<KvCodec> make_codec(const std::string& name) {
  if (name == "cachegen") return std::make_unique<CacheGenCodec>();
  if (name == "kvquant") return std::make_unique<KvQuantCodec>();
  if (name == "fp16") return std::make_unique<Fp16Codec>();
  HACK_CHECK(false, "unknown codec: " << name);
  return nullptr;
}

}  // namespace hack
