// Figure 4: CacheGen / KVQuant time ratios across datasets
// (Llama-3.1 70B, A10G prefill). The paper's headline: long-sequence
// datasets pay 12.4-24.9x the dequantization time of short ones.
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  double dequant_short = 0.0, dequant_long = 0.0;
  for (const Method method : {Method::kCacheGen, Method::kKvQuant}) {
    Table t("Fig 4 (" + method_name(method) +
            "): time ratios across datasets (L, A10G prefill)");
    t.header({"dataset", "prefill", "comm", "dequant", "decode",
              "dequant_s", "avg_jct_s"});
    for (const std::string& dataset : dataset_names()) {
      const SimSummary s = run(standard_cluster("A10G", "L", dataset, method));
      t.row({dataset, pct(s.prefill_ratio), pct(s.comm_ratio),
             pct(s.dequant_or_approx_ratio), pct(s.decode_ratio),
             fmt(s.mean_dequant_or_approx_s, 2), fmt(s.avg_jct_s, 1)});
      if (method == Method::kCacheGen) {
        if (dataset == "IMDb") dequant_short = s.mean_dequant_or_approx_s;
        if (dataset == "Cocktail") dequant_long = s.mean_dequant_or_approx_s;
      }
    }
    t.print();
  }

  Table t("Fig 4 summary: long-vs-short dequantization time");
  t.header({"metric", "value"});
  t.row({"CacheGen Cocktail/IMDb dequant time ratio",
         fmt(dequant_long / dequant_short, 1) + "x"});
  t.print();
  return 0;
}
