#include "kvcache/block_allocator.h"

#include <algorithm>

namespace hack {

BlockAllocator::BlockAllocator(std::size_t num_blocks, std::size_t block_bytes)
    : block_bytes_(block_bytes), ref_counts_(num_blocks, 0),
      min_free_(num_blocks) {
  HACK_CHECK(num_blocks > 0 && block_bytes > 0, "empty allocator");
  free_list_.reserve(num_blocks);
  // Hand out low ids first: push high ids first so pop_back yields low.
  for (std::size_t i = num_blocks; i > 0; --i) {
    free_list_.push_back(static_cast<BlockId>(i - 1));
  }
}

BlockId BlockAllocator::allocate() {
  if (free_list_.empty()) {
    ++failed_allocations_;
    return kInvalidBlock;
  }
  const BlockId id = free_list_.back();
  free_list_.pop_back();
  ref_counts_[id] = 1;
  peak_in_use_ = std::max(peak_in_use_, blocks_in_use());
  min_free_ = std::min(min_free_, blocks_free());
  return id;
}

void BlockAllocator::add_ref(BlockId id) {
  HACK_CHECK(id < ref_counts_.size() && ref_counts_[id] > 0,
             "add_ref on unallocated block " << id);
  ++ref_counts_[id];
}

void BlockAllocator::release(BlockId id) {
  HACK_CHECK(id < ref_counts_.size() && ref_counts_[id] > 0,
             "release of unallocated block " << id);
  if (--ref_counts_[id] == 0) {
    free_list_.push_back(id);
  }
}

int BlockAllocator::ref_count(BlockId id) const {
  HACK_CHECK(id < ref_counts_.size(), "bad block id " << id);
  return ref_counts_[id];
}

}  // namespace hack
