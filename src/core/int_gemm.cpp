#include "core/int_gemm.h"

namespace hack {

std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  const std::uint8_t* pa = a.data + i * a.cols;
  const std::uint8_t* pb = b.data + j * b.cols;
  std::int32_t acc = 0;
  for (std::size_t z = z_begin; z < z_end; ++z) {
    acc += static_cast<std::int32_t>(pa[z]) * static_cast<std::int32_t>(pb[z]);
  }
  return acc;
}

void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out) {
  HACK_CHECK(a.cols == b.rows, "NN shape mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.cols, "output size mismatch");
  for (std::size_t i = 0; i < a.rows; ++i) {
    std::int32_t* dst = out.data() + i * b.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      const std::int32_t aiz = a.at(i, z);
      if (aiz == 0) continue;
      const std::uint8_t* brow = b.data + z * b.cols;
      for (std::size_t j = 0; j < b.cols; ++j) {
        dst[j] += aiz * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.rows, "output size mismatch");
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j < b.rows; ++j) {
      out[i * b.rows + j] += int_dot_nt(a, b, i, j, z_begin, z_end);
    }
  }
}

}  // namespace hack
