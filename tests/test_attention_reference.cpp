#include <gtest/gtest.h>

#include <cmath>

#include "attention/reference.h"
#include "metrics/tensor_metrics.h"
#include "tensor/ops.h"

namespace hack {
namespace {

TEST(AttentionReference, SingleTokenIsIdentityOnV) {
  // One query, one key: softmax of a single score is 1, output = v.
  Rng rng(1);
  const Matrix q = Matrix::random_uniform(1, 8, rng);
  const Matrix k = Matrix::random_uniform(1, 8, rng);
  const Matrix v = Matrix::random_uniform(1, 8, rng);
  const Matrix o = attention_reference(q, k, v);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(o(0, c), v(0, c), 1e-6f);
  }
}

TEST(AttentionReference, UniformScoresAverageV) {
  // Zero query -> all scores equal -> output is the mean of visible V rows.
  const Matrix q(1, 4, 0.0f);
  Rng rng(2);
  const Matrix k = Matrix::random_uniform(3, 4, rng);
  const Matrix v = Matrix::from_rows(3, 1, {3.0f, 6.0f, 9.0f});
  const Matrix o = attention_reference(
      q, k, v, {.causal = true, .key_offset = 2});  // sees all 3
  EXPECT_NEAR(o(0, 0), 6.0f, 1e-5f);
}

TEST(AttentionReference, CausalFirstRowSeesOnlyFirstKey) {
  Rng rng(3);
  const Matrix q = Matrix::random_uniform(3, 8, rng);
  const Matrix k = Matrix::random_uniform(3, 8, rng);
  const Matrix v = Matrix::random_uniform(3, 8, rng);
  const Matrix o = attention_reference(q, k, v, {.causal = true});
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(o(0, c), v(0, c), 1e-6f);  // row 0 attends only to token 0
  }
}

TEST(AttentionReference, OutputIsConvexCombinationOfV) {
  Rng rng(4);
  const Matrix q = Matrix::random_uniform(2, 8, rng, -3.0f, 3.0f);
  const Matrix k = Matrix::random_uniform(5, 8, rng, -3.0f, 3.0f);
  const Matrix v = Matrix::random_uniform(5, 1, rng, 0.0f, 1.0f);
  const Matrix o =
      attention_reference(q, k, v, {.causal = false});
  float vmin = 1.0f, vmax = 0.0f;
  for (const float x : v.flat()) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
  }
  for (const float x : o.flat()) {
    EXPECT_GE(x, vmin - 1e-5f);
    EXPECT_LE(x, vmax + 1e-5f);
  }
}

TEST(AttentionReference, SharpScoresSelectArgmaxV) {
  // A query strongly aligned with one key concentrates probability there.
  Matrix q(1, 4, 0.0f);
  q(0, 0) = 50.0f;
  Matrix k(3, 4, 0.0f);
  k(1, 0) = 1.0f;  // only key 1 aligns
  const Matrix v = Matrix::from_rows(3, 1, {1.0f, 2.0f, 3.0f});
  const Matrix o = attention_reference(
      q, k, v, {.causal = true, .key_offset = 2});
  EXPECT_NEAR(o(0, 0), 2.0f, 1e-3f);
}

TEST(AttentionReference, ProbsRowsSumToOne) {
  Rng rng(5);
  const Matrix q = Matrix::random_uniform(4, 16, rng);
  const Matrix k = Matrix::random_uniform(7, 16, rng);
  const Matrix p = attention_probs(q, k, {.causal = true, .key_offset = 3});
  for (std::size_t i = 0; i < p.rows(); ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < p.cols(); ++j) sum += p(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(AttentionReference, DecodeStepMatchesBatchedLastRow) {
  // Running the final token as a single decode row (key_offset = L-1) must
  // reproduce the last row of the full batched prefill.
  Rng rng(6);
  const std::size_t l = 9, d = 16;
  const Matrix q = Matrix::random_uniform(l, d, rng);
  const Matrix k = Matrix::random_uniform(l, d, rng);
  const Matrix v = Matrix::random_uniform(l, d, rng);
  const Matrix full = attention_reference(q, k, v, {.causal = true});
  const Matrix last_q = take_rows(q, l - 1, l);
  const Matrix step = attention_reference(
      last_q, k, v, {.causal = true, .key_offset = l - 1});
  for (std::size_t c = 0; c < d; ++c) {
    EXPECT_NEAR(step(0, c), full(l - 1, c), 1e-5f);
  }
}

TEST(AttentionReference, ScaleInvarianceOfHeadDim) {
  // The 1/sqrt(d) factor keeps score magnitude stable: doubling all of Q is
  // NOT the same as halving temperature of something else — just check the
  // kernel honors the documented formula against a manual computation.
  Rng rng(7);
  const Matrix q = Matrix::random_uniform(2, 4, rng);
  const Matrix k = Matrix::random_uniform(3, 4, rng);
  const Matrix v = Matrix::random_uniform(3, 4, rng);
  const Matrix manual =
      matmul(softmax_rows(scale(matmul_nt(q, k), 0.5f)), v);  // 1/sqrt(4)
  const Matrix o = attention_reference(q, k, v, {.causal = false});
  EXPECT_LT(relative_l2(o, manual), 1e-6);
}

TEST(AttentionReference, MismatchedShapesThrow) {
  Matrix q(1, 8), k(2, 4), v(2, 8);
  EXPECT_THROW(attention_reference(q, k, v), CheckError);
  Matrix k2(2, 8), v2(3, 8);
  EXPECT_THROW(attention_reference(q, k2, v2), CheckError);
}

}  // namespace
}  // namespace hack
