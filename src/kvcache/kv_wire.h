// Versioned KV wire format — what a prefill instance ships to decode.
//
// The paper's disaggregated flow (§2, §6) transfers the *quantized* KV cache
// between workers: the decode side attends homomorphically on the very codes
// that crossed the wire, never dequantizing or requantizing them. This module
// is that wire: it serializes every transformer layer's HACK KV state — the
// packed code planes, the FP16 (min, scale) metadata, the SE partition sums,
// the RQE FP16 tail of V, and each KV head's RNG stream position — into one
// contiguous versioned blob, and rehydrates it into a fresh decode-side state
// that continues generation bit-identically to the single-node engine
// (pinned in tests/test_kv_wire.cpp; contract in docs/disaggregation.md).
//
// Layout (all integers little-endian):
//
//   header   magic "HKVW" u32 · version u32 · layers u32 · kv_heads u32 ·
//            query_heads u32 · d_head u32 · pi u32 ·
//            q_bits u8 · kv_bits u8 · flags u8 (bit0 SE, bit1 RQE,
//            bit2 stochastic rounding) · reserved u8 ·
//            tokens u64 · payload_bytes u64
//   body     layers × kv_heads head records, layer-major:
//     rng    4 × u64                      xoshiro256** state after prefill
//     K      packed codes (kv_bits × tokens·d_head) ·
//            mins, scales (binary16 × tokens·(d_head/Π)) ·
//            [SE] sums (u16 × tokens·(d_head/Π))
//     V      v_q_rows u64 (multiple of Π) ·
//            packed codes (kv_bits × v_q_rows·d_head) ·
//            mins, scales (binary16 × d_head·(v_q_rows/Π)) ·
//            [SE] sums (u16 × d_head·(v_q_rows/Π))
//     tail   kind u8 (0 none · 1 FP16 rows, RQE on · 2 ragged quantized
//            group, RQE off) · rows u64 · payload (binary16 × rows·d_head,
//            or packed codes + per-column binary16 (min, scale))
//
// With SE off the sums are not transmitted (the decode side recomputes them
// per iteration, exactly like the paper's ablation); rehydration rebuilds the
// bookkeeping caches from the codes, which is bit-identical. The blob rides
// the netsim NCCL-style pipelined transfer in `kv_wire_transfer_chunks`-sized
// chunks (serving/disagg.h drives that end to end).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attention/layer_attention.h"

namespace hack {

class TinyModelSession;

inline constexpr std::uint32_t kKvWireMagic = 0x57564B48u;  // "HKVW"
inline constexpr std::uint32_t kKvWireVersion = 1u;

// Byte accounting of one serialized blob, by section kind. `framing` is the
// header plus the per-record length/kind fields — the format's own overhead.
struct KvWireSections {
  std::size_t framing = 0;
  std::size_t rng_streams = 0;
  std::size_t packed_codes = 0;
  std::size_t metadata = 0;   // FP16 (min, scale) pairs
  std::size_t sums = 0;       // SE partition sums
  std::size_t fp16_tail = 0;  // RQE FP16 tail rows of V

  std::size_t total() const {
    return framing + rng_streams + packed_codes + metadata + sums + fp16_tail;
  }
};

// Parsed header of a blob (validated magic/version/length).
struct KvWireInfo {
  std::uint32_t version = 0;
  std::size_t layers = 0;
  std::size_t kv_heads = 0;
  std::size_t query_heads = 0;
  std::size_t d_head = 0;
  std::size_t pi = 0;
  int q_bits = 0;
  int kv_bits = 0;
  bool summation_elimination = false;
  bool requant_elimination = false;
  bool stochastic_rounding = false;
  std::uint64_t tokens = 0;
  std::uint64_t payload_bytes = 0;
};

// Serializes the given layers' KV states (one HackLayerKvState per
// transformer layer, all sharing one config and token count) into a wire
// blob. `sections` (optional) receives the byte accounting.
std::vector<std::uint8_t> serialize_kv_wire(
    std::span<HackLayerKvState* const> layers,
    KvWireSections* sections = nullptr);

// Validates and parses the fixed header. Throws CheckError on a foreign or
// truncated blob.
KvWireInfo parse_kv_wire_header(std::span<const std::uint8_t> blob);

// Rehydrates `layers` (fresh, zero-token states whose config and geometry
// must match the header) from a blob. Codes, metadata, sums, tails, and RNG
// stream positions land exactly as shipped.
void deserialize_kv_wire(std::span<const std::uint8_t> blob,
                         std::span<HackLayerKvState* const> layers);

// Session-level wrappers: serialize every layer of a (HACK layer backend)
// session after prefill, or rehydrate a fresh session — including its
// timeline position — so decoding continues where the prefill worker stopped.
std::vector<std::uint8_t> serialize_session_kv(
    TinyModelSession& session, KvWireSections* sections = nullptr);
void deserialize_session_kv(std::span<const std::uint8_t> blob,
                            TinyModelSession& session);

// How many pipeline chunks a blob of `blob_bytes` rides the netsim NCCL-style
// transfer in: ceil(blob/chunk), clamped to [1, 64] so tiny blobs don't pay
// per-chunk latency and huge ones don't book unbounded events.
int kv_wire_transfer_chunks(std::size_t blob_bytes, std::size_t chunk_bytes);

}  // namespace hack
