#include "serving/scheduler.h"

#include <algorithm>

#include "base/check.h"

namespace hack {

Scheduler::Scheduler(const SchedulerConfig& config) : config_(config) {
  HACK_CHECK(config.max_active > 0, "scheduler needs at least one slot");
  HACK_CHECK(config.prefill_chunk_tokens > 0, "prefill chunk must be > 0");
  HACK_CHECK(config.block_tokens > 0, "block_tokens must be > 0");
}

std::size_t Scheduler::chunk_end(std::size_t begin,
                                 std::size_t prompt_len) const {
  HACK_CHECK(begin < prompt_len, "chunk past the prompt");
  std::size_t take = std::min(config_.prefill_chunk_tokens,
                              prompt_len - begin);
  if (take < prompt_len - begin) {
    // Mid-prompt chunk: never a single row (the flat decode kernel would
    // take it; whole-prompt prefill runs every row through the streaming
    // kernel)...
    take = std::max<std::size_t>(take, 2);
    // ...and never leave a single trailing row behind — absorb it.
    if (prompt_len - begin - take == 1) take = prompt_len - begin;
  }
  return begin + take;
}

StepPlan Scheduler::plan(std::span<const SeqView> running) const {
  StepPlan plan;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const SeqView& seq = running[i];
    switch (seq.state) {
      case RequestState::kDecoding:
        plan.decode.push_back(i);
        break;
      case RequestState::kPrefill:
        if (plan.prefill == kNoSequence) {
          plan.prefill = i;
          plan.prefill_begin = seq.prefill_done;
          plan.prefill_end = chunk_end(seq.prefill_done, seq.prompt_len);
        }
        break;
      default:
        HACK_CHECK(false, "sequence " << i << " in the running batch is "
                                      << request_state_name(seq.state));
    }
  }
  return plan;
}

std::size_t Scheduler::blocks_needed(const ServingRequest& request) const {
  const std::size_t tokens = request.prompt.size() + request.max_new_tokens;
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool Scheduler::can_admit(const ServingRequest& request,
                          std::size_t running_count,
                          const BlockAllocator* allocator) const {
  if (running_count >= config_.max_active) return false;
  if (allocator == nullptr) return true;
  const std::size_t need = blocks_needed(request);
  return allocator->can_allocate(need) &&
         allocator->blocks_free() - need >= config_.free_block_floor;
}

bool Scheduler::can_ever_admit(const ServingRequest& request,
                               const BlockAllocator* allocator) const {
  if (allocator == nullptr) return true;
  const std::size_t need = blocks_needed(request);
  return need + config_.free_block_floor <= allocator->num_blocks();
}

}  // namespace hack
