// Poisson arrival process (§7.1: Poisson arrivals at a configured RPS).
#pragma once

#include <vector>

#include "base/rng.h"
#include "workload/dataset.h"

namespace hack {

struct ArrivalRecord {
  double time = 0.0;
  RequestShape shape;
};

// Generates `count` arrivals with exponential inter-arrival times at `rps`,
// each with lengths drawn from the dataset model. Deterministic per rng.
std::vector<ArrivalRecord> generate_arrivals(const DatasetSpec& dataset,
                                             double rps, int count, Rng& rng);

}  // namespace hack
