#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace hack {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HACK_CHECK(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::next_gaussian() {
  // Box–Muller; u1 is kept away from zero so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * M_PI * u2);
}

double Rng::next_exponential(double rate) {
  HACK_CHECK(rate > 0.0, "exponential rate must be positive");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  HACK_CHECK(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
             "all-zero xoshiro256** state is a fixed point");
  state_ = state;
}

std::int64_t stochastic_round(double x, Rng& rng) {
  const double lo = std::floor(x);
  const double frac = x - lo;
  if (frac == 0.0) {
    return static_cast<std::int64_t>(lo);
  }
  // Round up with probability equal to the fractional part, so the result is
  // an unbiased estimator of x.
  return static_cast<std::int64_t>(lo) + (rng.next_double() < frac ? 1 : 0);
}

std::int64_t nearest_round(double x) {
  return static_cast<std::int64_t>(std::llround(x));
}

}  // namespace hack
