#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "model/tiny_transformer.h"
#include "workload/corpus.h"

namespace hack {
namespace {

TinyConfig small_config() {
  TinyConfig c;
  c.vocab = 64;
  c.layers = 2;
  c.heads = 2;
  c.kv_heads = 2;
  c.d_head = 32;
  c.d_ff = 128;
  return c;
}

std::vector<int> make_prompt(std::size_t len, std::size_t vocab,
                             std::uint64_t seed) {
  SyntheticCorpus corpus({.vocab = vocab}, seed);
  return corpus.prompt(0, len);
}

TEST(TinyTransformer, DeterministicGeneration) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(24, cfg.vocab, 1);
  TinyTransformer a(cfg, make_exact_backend());
  TinyTransformer b(cfg, make_exact_backend());
  EXPECT_EQ(a.generate(prompt, 16), b.generate(prompt, 16));
}

TEST(TinyTransformer, DifferentSeedsDifferentWeights) {
  TinyConfig c1 = small_config(), c2 = small_config();
  c2.weight_seed = 999;
  const auto prompt = make_prompt(24, c1.vocab, 2);
  TinyTransformer a(c1, make_exact_backend());
  TinyTransformer b(c2, make_exact_backend());
  EXPECT_NE(a.generate(prompt, 16), b.generate(prompt, 16));
}

TEST(TinyTransformer, LogitsFiniteAndVocabSized) {
  const TinyConfig cfg = small_config();
  TinyTransformer model(cfg, make_exact_backend());
  const auto logits = model.prefill(make_prompt(16, cfg.vocab, 3));
  ASSERT_EQ(logits.size(), cfg.vocab);
  for (const float l : logits) EXPECT_TRUE(std::isfinite(l));
}

TEST(TinyTransformer, PrefillThenDecodeAdvancesPosition) {
  const TinyConfig cfg = small_config();
  TinyTransformer model(cfg, make_exact_backend());
  (void)model.prefill(make_prompt(10, cfg.vocab, 4));
  EXPECT_EQ(model.tokens_processed(), 10u);
  (void)model.decode_step(5);
  EXPECT_EQ(model.tokens_processed(), 11u);
}

TEST(TinyTransformer, DecodeBeforePrefillThrows) {
  TinyTransformer model(small_config(), make_exact_backend());
  EXPECT_THROW(model.decode_step(0), CheckError);
}

TEST(TinyTransformer, TokenOutOfVocabThrows) {
  TinyTransformer model(small_config(), make_exact_backend());
  EXPECT_THROW(model.prefill({0, 1, 64}), CheckError);
}

TEST(TinyTransformer, GqaGrouping) {
  TinyConfig cfg = small_config();
  cfg.heads = 4;
  cfg.kv_heads = 2;  // 2 query heads per KV head
  TinyTransformer model(cfg, make_exact_backend());
  const auto out = model.generate(make_prompt(16, cfg.vocab, 5), 8);
  EXPECT_EQ(out.size(), 8u);
}

TEST(TinyTransformer, InvalidGqaThrows) {
  TinyConfig cfg = small_config();
  cfg.heads = 3;
  cfg.kv_heads = 2;
  EXPECT_THROW(TinyTransformer(cfg, make_exact_backend()), CheckError);
}

TEST(TinyTransformer, Fp16BackendMatchesExactClosely) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(32, cfg.vocab, 6);
  TinyTransformer exact(cfg, make_exact_backend());
  TinyTransformer fp16(cfg, make_fp16_backend());
  const auto ref = exact.generate(prompt, 24);
  const auto out = fp16.generate(prompt, 24);
  // FP16 KV rounding rarely flips tokens at this scale.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < ref.size() && i < out.size(); ++i) {
    if (ref[i] == out[i]) ++agree;
  }
  EXPECT_GT(agree * 10, ref.size() * 7);  // >= 70% agreement
}

TEST(TinyTransformer, HackBackendGeneratesPlausibly) {
  TinyConfig cfg = small_config();
  const auto prompt = make_prompt(48, cfg.vocab, 7);
  HackAttentionConfig hc;
  hc.pi = 32;  // must divide d_head = 32
  TinyTransformer exact(cfg, make_exact_backend());
  TinyTransformer hacked(cfg, make_hack_backend(hc, 42));
  const auto ref = exact.generate(prompt, 16);
  const auto out = hacked.generate(prompt, 16);
  EXPECT_EQ(out.size(), 16u);
  for (const int tok : out) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, static_cast<int>(cfg.vocab));
  }
  (void)ref;
}

TEST(TinyTransformer, HackBackendDeterministicForSeed) {
  TinyConfig cfg = small_config();
  const auto prompt = make_prompt(32, cfg.vocab, 8);
  HackAttentionConfig hc;
  hc.pi = 32;
  TinyTransformer a(cfg, make_hack_backend(hc, 7));
  TinyTransformer b(cfg, make_hack_backend(hc, 7));
  EXPECT_EQ(a.generate(prompt, 12), b.generate(prompt, 12));
}

TEST(TinyTransformer, HackLayerBackendMatchesPerHeadGeneration) {
  // The batched layer backend must generate exactly the tokens of the
  // per-head backend: same seeds, same RNG stream discipline, wider launch.
  TinyConfig cfg = small_config();
  cfg.heads = 4;
  cfg.kv_heads = 2;  // GQA so the batched path shares KV heads
  const auto prompt = make_prompt(40, cfg.vocab, 13);
  HackAttentionConfig hc;
  hc.pi = 32;
  TinyTransformer per_head(cfg, make_hack_backend(hc, 7));
  TinyTransformer batched(cfg, make_hack_layer_backend(hc, 7));
  EXPECT_EQ(per_head.generate(prompt, 16), batched.generate(prompt, 16));
  EXPECT_EQ(per_head.kv_stored_bytes(), batched.kv_stored_bytes());
}

TEST(TinyTransformer, CodecBackendRuns) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(24, cfg.vocab, 9);
  TinyTransformer model(
      cfg, make_codec_backend(make_codec("cachegen"), 11));
  const auto out = model.generate(prompt, 8);
  EXPECT_EQ(out.size(), 8u);
}

TEST(TinyTransformer, MiniFloatBackendRuns) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(24, cfg.vocab, 10);
  TinyTransformer model(cfg,
                        make_minifloat_backend(MiniFloatFormat::kFp8E4M3));
  EXPECT_EQ(model.generate(prompt, 8).size(), 8u);
}

TEST(TinyTransformer, KvBytesReflectBackendCompression) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(64, cfg.vocab, 11);
  HackAttentionConfig hc;
  hc.pi = 32;

  TinyTransformer fp16(cfg, make_fp16_backend());
  TinyTransformer hacked(cfg, make_hack_backend(hc, 13));
  (void)fp16.prefill(prompt);
  (void)hacked.prefill(prompt);
  // HACK's quantized cache is far below the FP16 cache (≈ 6x smaller).
  EXPECT_LT(hacked.kv_stored_bytes() * 3, fp16.kv_stored_bytes());
}

TEST(TinyTransformer, Fp8CacheIsHalfOfFp16) {
  const TinyConfig cfg = small_config();
  const auto prompt = make_prompt(64, cfg.vocab, 12);
  TinyTransformer fp16(cfg, make_fp16_backend());
  TinyTransformer fp8(cfg, make_minifloat_backend(MiniFloatFormat::kFp8E4M3));
  (void)fp16.prefill(prompt);
  (void)fp8.prefill(prompt);
  EXPECT_EQ(fp8.kv_stored_bytes() * 2, fp16.kv_stored_bytes());
}

TEST(TinyTransformer, EosStopsGeneration) {
  const TinyConfig cfg = small_config();
  TinyTransformer probe(cfg, make_exact_backend());
  const auto prompt = make_prompt(16, cfg.vocab, 13);
  const auto unbounded = probe.generate(prompt, 12);
  ASSERT_GE(unbounded.size(), 2u);
  // Re-run with eos = the second generated token: generation must stop there.
  TinyTransformer model(cfg, make_exact_backend());
  const auto stopped = model.generate(prompt, 12, /*eos=*/unbounded[1]);
  EXPECT_LT(stopped.size(), unbounded.size());
}

}  // namespace
}  // namespace hack
