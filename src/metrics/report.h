// Plain-text table/series printers for the benchmark harness.
//
// Every bench binary prints the paper's tables and figure series through
// these helpers so output stays uniform and diffable (also emitted as CSV
// rows prefixed with "csv," for machine consumption).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace hack {

class Table {
 public:
  explicit Table(std::string title);

  Table& header(std::vector<std::string> columns);
  Table& row(std::vector<std::string> cells);

  void print(std::ostream& os = std::cout) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` fraction digits.
std::string fmt(double value, int digits = 2);

// Formats a ratio as a percentage string ("41.5%").
std::string pct(double ratio, int digits = 1);

}  // namespace hack
