#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/event_queue.h"
#include "netsim/transfer.h"

namespace hack {
namespace {

constexpr double kPcieGBps = 25.0;  // CPU<->GPU staging for swapped KV

struct RequestState {
  RequestRecord record;
  double prefill_done = 0.0;
  int prefill_replica = -1;
  int decode_replica = -1;
  double kv_wire_bytes = 0.0;
  double kv_mem_bytes = 0.0;   // reservation at final length
  bool pipelined_reservation = false;
};

class Simulation {
 public:
  explicit Simulation(const ClusterConfig& config)
      : config_(config),
        cost_(make_cost_model(config.model, config.prefill_instance.gpu,
                              config.method, config.pi, config.kv_bits)),
        decode_cost_(make_cost_model(config.model, config.decode_instance.gpu,
                                     config.method, config.pi,
                                     config.kv_bits)) {
    // Only tensor parallelism crossing an instance boundary wrecks MFU;
    // pipeline stages exchange activations, which Ethernet handles fine.
    const bool prefill_multi_node =
        cost_.plan.tp > config.prefill_instance.gpus;
    cost_.mfu = prefill_multi_node ? config.mfu_multi_node
                                   : config.mfu_single_node;
    decode_cost_.plan = parallelism_for(config.model, GpuFamily::kA100);
    const bool decode_multi_node =
        decode_cost_.plan.tp > config.decode_instance.gpus;
    decode_cost_.mfu = decode_multi_node ? config.mfu_multi_node
                                         : config.mfu_single_node;
    decode_cost_.decode_overhead = config.decode_overhead;

    for (int i = 0; i < config.prefill_replicas; ++i) {
      prefill_.emplace_back(i,
                            config.prefill_nic_gbps * config.nic_efficiency);
    }
    const double budget =
        decode_mem_capacity_bytes() -
        decode_cost_.weight_bytes_per_replica() -
        config.activation_reserve_gb * 1e9;
    HACK_CHECK(budget > 0,
               "decode replica cannot even hold the model weights");
    for (int i = 0; i < config.decode_replicas; ++i) {
      decode_.emplace_back(i, config.decode_nic_gbps * config.nic_efficiency);
      decode_.back().mem_budget_bytes = budget;
    }
  }

  double decode_mem_capacity_bytes() const {
    return decode_cost_.plan.gpus() * config_.decode_instance.gpu.mem_gb * 1e9;
  }

  SimSummary run() {
    Rng rng(config_.seed);
    const auto arrivals = generate_arrivals(config_.dataset, config_.rps,
                                            config_.num_requests, rng);
    requests_.resize(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      RequestState& req = requests_[i];
      req.record.id = static_cast<RequestId>(i);
      req.record.arrival = arrivals[i].time;
      req.record.shape = arrivals[i].shape;
      req.kv_wire_bytes = cost_.kv_wire_bytes(arrivals[i].shape.input_tokens);
      req.kv_mem_bytes = decode_cost_.kv_mem_bytes(
          arrivals[i].shape.input_tokens + arrivals[i].shape.output_tokens);
      events_.schedule(arrivals[i].time,
                       [this, i](double now) { on_arrival(i, now); });
    }
    events_.run();
    return summarize();
  }

 private:
  // ---- prefill side -------------------------------------------------------

  void on_arrival(std::size_t i, double now) {
    // Dispatch to the prefill replica with the shortest token queue (§7.1).
    PrefillReplica* best = &prefill_[0];
    for (PrefillReplica& replica : prefill_) {
      if (replica.queued_tokens < best->queued_tokens) best = &replica;
    }
    best->queue.push_back(static_cast<RequestId>(i));
    best->queued_tokens += requests_[i].record.shape.input_tokens;
    requests_[i].prefill_replica = best->id;
    pump_prefill(*best, now);
  }

  void pump_prefill(PrefillReplica& replica, double now) {
    if (replica.busy_until > now + 1e-12 || replica.queue.empty()) return;
    const std::size_t i = replica.queue.front();
    replica.queue.pop_front();
    RequestState& req = requests_[i];

    const double start = now;
    req.record.prefill_wait_s = start - req.record.arrival;
    req.record.prefill_s = cost_.prefill_s(req.record.shape.input_tokens);
    req.record.quant_s =
        cost_.prefill_quant_s(req.record.shape.input_tokens);
    const double done = start + req.record.prefill_s + req.record.quant_s;
    replica.busy_until = done;
    req.prefill_done = done;

    // Pipelining: reserve a decode replica now so the KV transfer can
    // overlap prefill compute (§2.1). Falls back to the swap path when no
    // replica has memory — exactly the case where pipelining is infeasible.
    if (config_.pipelining) {
      DecodeReplica* target = pick_decode(req.kv_mem_bytes);
      if (target != nullptr) {
        target->reserve(req.kv_mem_bytes);
        target->queued_tokens += req.record.shape.output_tokens;
        req.decode_replica = target->id;
        req.pipelined_reservation = true;
        // Book the NICs from prefill start; only the tail past `done` is
        // exposed in JCT.
        const TransferResult xfer =
            nccl_transfer(prefill_[static_cast<std::size_t>(replica.id)].nic,
                          target->nic, start, req.kv_wire_bytes);
        const double arrive = std::max(done, xfer.finish);
        req.record.comm_s = arrive - done;
        events_.schedule(arrive,
                         [this, i](double t) { on_decode_join(i, t); });
        events_.schedule(done, [this, id = replica.id](double t) {
          pump_prefill(prefill_[static_cast<std::size_t>(id)], t);
        });
        replica.queued_tokens -= req.record.shape.input_tokens;
        return;
      }
    }

    events_.schedule(done, [this, i](double t) { on_prefill_done(i, t); });
    events_.schedule(done, [this, id = replica.id](double t) {
      pump_prefill(prefill_[static_cast<std::size_t>(id)], t);
    });
    replica.queued_tokens -= req.record.shape.input_tokens;
  }

  void on_prefill_done(std::size_t i, double now) {
    RequestState& req = requests_[i];
    DecodeReplica* target = pick_decode(req.kv_mem_bytes);
    if (target == nullptr) {
      // No decode replica has memory: KV moves to prefill-side CPU memory
      // (Fig. 5 step 6) and waits. PCIe staging is paid on the way out.
      req.record.swapped = true;
      ++swapped_count_;
      waiting_.push_back(static_cast<RequestId>(i));
      return;
    }
    start_transfer(i, *target, now);
  }

  DecodeReplica* pick_decode(double bytes) {
    DecodeReplica* best = nullptr;
    for (DecodeReplica& replica : decode_) {
      if (!replica.has_memory_for(bytes)) continue;
      if (best == nullptr || replica.queued_tokens < best->queued_tokens) {
        best = &replica;
      }
    }
    return best;
  }

  void start_transfer(std::size_t i, DecodeReplica& target, double now) {
    RequestState& req = requests_[i];
    target.reserve(req.kv_mem_bytes);
    target.queued_tokens += req.record.shape.output_tokens;
    req.decode_replica = target.id;
    req.record.swap_wait_s = now - req.prefill_done;

    double ready = now;
    if (req.record.swapped) {
      // Read the parked KV back across PCIe before it can hit the wire.
      ready += req.kv_wire_bytes / (kPcieGBps * 1e9);
    }
    const TransferResult xfer = nccl_transfer(
        prefill_[static_cast<std::size_t>(req.prefill_replica)].nic,
        target.nic, ready, req.kv_wire_bytes);
    req.record.comm_s = xfer.finish - now;
    events_.schedule(xfer.finish,
                     [this, i](double t) { on_decode_join(i, t); });
  }

  // ---- decode side --------------------------------------------------------

  void on_decode_join(std::size_t i, double now) {
    RequestState& req = requests_[i];
    DecodeReplica& replica =
        decode_[static_cast<std::size_t>(req.decode_replica)];
    replica.active.push_back(
        {.request = static_cast<RequestId>(i),
         .context_len = req.record.shape.input_tokens,
         .remaining = static_cast<std::size_t>(
             std::max(1.0, req.record.shape.output_tokens)),
         .joined_at = now});
    req.record.decode_total_s = -now;  // completed on finish
    schedule_iteration(replica, now);
  }

  void schedule_iteration(DecodeReplica& replica, double now) {
    if (replica.iteration_pending || replica.active.empty()) return;
    double iter =
        decode_cost_.decode_weight_read_s() + decode_cost_.decode_iter_fixed_s();
    for (const DecodeResident& resident : replica.active) {
      if (resident.joined_at > now + 1e-12) continue;
      iter += decode_cost_.decode_request_iter_s(resident.context_len);
    }
    replica.iteration_pending = true;
    replica.iteration_started = now;
    events_.schedule(now + iter, [this, id = replica.id](double t) {
      on_iteration_done(decode_[static_cast<std::size_t>(id)], t);
    });
  }

  void on_iteration_done(DecodeReplica& replica, double now) {
    replica.iteration_pending = false;
    const double started = replica.iteration_started;
    bool memory_freed = false;

    // A request's per-token latency includes the *batch's* work for that
    // iteration, so stage attribution uses the iteration aggregates — this
    // matches how the paper measures per-request stage times (§2.1).
    double iter_kv = 0.0, iter_dequant = 0.0, iter_approx = 0.0;
    const double fixed = decode_cost_.decode_iter_fixed_s();
    if (decode_cost_.traits.hack_approx) {
      iter_approx += fixed;
    } else {
      iter_dequant += fixed;
    }
    for (const DecodeResident& resident : replica.active) {
      if (resident.joined_at > started + 1e-12) continue;
      iter_kv += decode_cost_.decode_kv_read_s(resident.context_len);
      iter_dequant += decode_cost_.decode_dequant_s(resident.context_len);
      iter_approx += decode_cost_.decode_approx_s(resident.context_len);
    }

    std::vector<DecodeResident> still_active;
    still_active.reserve(replica.active.size());
    for (DecodeResident& resident : replica.active) {
      if (resident.joined_at > started + 1e-12) {
        still_active.push_back(resident);  // joins the next iteration
        continue;
      }
      RequestState& req = requests_[resident.request];
      req.record.kv_access_s += iter_kv;
      req.record.dequant_s += iter_dequant;
      req.record.approx_s += iter_approx;
      resident.context_len += 1.0;
      --resident.remaining;
      if (resident.remaining == 0) {
        req.record.completion = now;
        req.record.decode_total_s += now;
        replica.release(req.kv_mem_bytes);
        replica.queued_tokens -= req.record.shape.output_tokens;
        memory_freed = true;
        ++completed_;
      } else {
        still_active.push_back(resident);
      }
    }
    replica.active = std::move(still_active);

    if (memory_freed) {
      admit_waiting(now);
    }
    schedule_iteration(replica, now);
  }

  void admit_waiting(double now) {
    while (!waiting_.empty()) {
      const std::size_t i = waiting_.front();
      DecodeReplica* target = pick_decode(requests_[i].kv_mem_bytes);
      if (target == nullptr) return;
      waiting_.pop_front();
      start_transfer(i, *target, now);
    }
  }

  // ---- aggregation --------------------------------------------------------

  SimSummary summarize() const {
    HACK_CHECK(completed_ == requests_.size(),
               "simulation ended with " << requests_.size() - completed_
                                        << " unfinished requests");
    SimSummary s;
    s.records.reserve(requests_.size());
    const double n = static_cast<double>(requests_.size());
    for (const RequestState& req : requests_) {
      const RequestRecord& r = req.record;
      s.records.push_back(r);
      const double jct = r.jct();
      HACK_CHECK(jct > 0.0, "non-positive JCT");
      const double dq_or_ap = r.dequant_s + r.approx_s;
      s.avg_jct_s += jct / n;
      s.prefill_ratio += r.prefill_s / jct / n;
      s.quant_ratio += r.quant_s / jct / n;
      s.comm_ratio += r.comm_s / jct / n;
      s.dequant_or_approx_ratio += dq_or_ap / jct / n;
      s.decode_ratio += (r.decode_total_s - dq_or_ap) / jct / n;
      s.kv_access_ratio += r.kv_access_s / jct / n;
      s.mean_prefill_s += r.prefill_s / n;
      s.mean_quant_s += r.quant_s / n;
      s.mean_comm_s += r.comm_s / n;
      s.mean_dequant_or_approx_s += dq_or_ap / n;
      s.mean_decode_s += (r.decode_total_s - dq_or_ap) / n;
    }
    const double capacity = decode_mem_capacity_bytes();
    for (const DecodeReplica& replica : decode_) {
      const double peak =
          (decode_cost_.weight_bytes_per_replica() +
           config_.activation_reserve_gb * 1e9 + replica.peak_mem_reserved) /
          capacity;
      s.peak_decode_mem_fraction = std::max(s.peak_decode_mem_fraction, peak);
    }
    s.swapped_requests = swapped_count_;
    return s;
  }

  ClusterConfig config_;
  KernelCostModel cost_;         // prefill-side (prefill GPU)
  KernelCostModel decode_cost_;  // decode-side (A100 fleet)
  EventQueue events_;
  std::vector<PrefillReplica> prefill_;
  std::vector<DecodeReplica> decode_;
  std::vector<RequestState> requests_;
  std::deque<RequestId> waiting_;
  std::size_t completed_ = 0;
  int swapped_count_ = 0;
};

}  // namespace

SimSummary run_cluster_sim(const ClusterConfig& config) {
  Simulation sim(config);
  return sim.run();
}

double auto_rps(const ClusterConfig& config) {
  // Capacity estimate under the *baseline* method so that every compared
  // method serves an identical workload (§7.1 fixes RPS per scenario).
  ClusterConfig base = config;
  base.method = Method::kBaseline;
  KernelCostModel pre = make_cost_model(base.model, base.prefill_instance.gpu,
                                        base.method, base.pi);
  pre.mfu = pre.plan.tp > base.prefill_instance.gpus ? base.mfu_multi_node
                                                       : base.mfu_single_node;
  KernelCostModel dec = make_cost_model(base.model, base.decode_instance.gpu,
                                        base.method, base.pi);
  dec.decode_overhead = base.decode_overhead;

  const double l_in = base.dataset.input.avg;
  const double l_out = std::max(1.0, base.dataset.output.avg);
  const double prefill_each = pre.prefill_s(l_in) + pre.prefill_quant_s(l_in);
  const double rps_prefill = base.prefill_replicas / prefill_each;

  const double capacity = dec.plan.gpus() * base.decode_instance.gpu.mem_gb *
                          1e9;
  const double budget = capacity - dec.weight_bytes_per_replica() -
                        base.activation_reserve_gb * 1e9;
  const double concurrency =
      std::max(1.0, budget / dec.kv_mem_bytes(l_in + l_out));
  const double iter = dec.decode_weight_read_s() +
                      concurrency * dec.decode_request_iter_s(l_in);
  // Each iteration advances `concurrency` requests one token, so a replica
  // sustains concurrency/iter tokens/s and finishes a request every
  // l_out/(concurrency/iter) seconds.
  const double rps_decode =
      base.decode_replicas * concurrency / iter / l_out;

  const double nic_bps = base.prefill_nic_gbps * base.nic_efficiency * 1e9 /
                         8.0;
  const double rps_net =
      base.prefill_replicas * nic_bps / pre.kv_wire_bytes(l_in);

  const double cap = std::min({rps_prefill, rps_decode, rps_net});
  // 70% of the binding bottleneck: high enough to load the fleet (the paper
  // runs at "maximum processing capacity"), low enough that queueing delay
  // does not dominate JCT.
  return 0.70 * cap;
}

ClusterConfig standard_cluster(const std::string& prefill_gpu,
                               const std::string& model_letter,
                               const std::string& dataset_name, Method method,
                               double rps) {
  ClusterConfig config;
  config.model = model_by_letter(model_letter);
  config.prefill_instance = instance_for_gpu(prefill_gpu);
  config.decode_instance = instance_for_gpu("A100");
  config.method = method;
  config.dataset = dataset_by_name(dataset_name);

  const ParallelismPlan prefill_plan =
      parallelism_for(config.model, config.prefill_instance.gpu.family);
  const int prefill_gpus = paper_prefill_gpu_count(prefill_gpu);
  config.prefill_replicas =
      std::max(1, prefill_gpus / prefill_plan.gpus());
  // Effective per-replica NIC: the replica's share of one instance NIC; a
  // replica spanning several instances is still gated by per-stage egress
  // (Table 2's bandwidth column is the operative rate — §7.6 confirms the
  // "share of the instance NIC" reading for sub-instance replicas).
  config.prefill_nic_gbps =
      config.prefill_instance.net_gbps *
      std::min(1.0, static_cast<double>(prefill_plan.gpus()) /
                        config.prefill_instance.gpus);

  const ParallelismPlan decode_plan =
      parallelism_for(config.model, GpuFamily::kA100);
  const int decode_gpus = 2 * config.decode_instance.gpus;  // two p4de (§7.1)
  config.decode_replicas = std::max(1, decode_gpus / decode_plan.gpus());
  config.decode_nic_gbps =
      config.decode_instance.net_gbps *
      std::min(1.0, static_cast<double>(decode_plan.gpus()) /
                        config.decode_instance.gpus);

  config.rps = rps > 0.0 ? rps : auto_rps(config);
  return config;
}

}  // namespace hack
