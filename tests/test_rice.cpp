#include <gtest/gtest.h>

#include "base/rng.h"
#include "codec/rice.h"

namespace hack {
namespace {

TEST(Rice, RoundTripAcrossK) {
  for (int k = 0; k <= 6; ++k) {
    BitWriter w;
    for (std::uint32_t v = 0; v < 200; ++v) {
      rice_encode(w, v, k);
    }
    const auto bytes = w.finish();
    BitReader r(bytes);
    for (std::uint32_t v = 0; v < 200; ++v) {
      EXPECT_EQ(rice_decode(r, k), v) << "k=" << k;
    }
  }
}

TEST(Rice, BitLengthMatchesEncoding) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next_below(1000));
    const int k = static_cast<int>(rng.next_below(6));
    BitWriter w;
    rice_encode(w, v, k);
    EXPECT_EQ(w.bit_count(), rice_bit_length(v, k)) << v << " k=" << k;
  }
}

TEST(Rice, BestKMinimizesLength) {
  Rng rng(2);
  std::vector<std::uint32_t> values(500);
  for (auto& v : values) {
    v = static_cast<std::uint32_t>(rng.next_below(32));
  }
  const int best = rice_best_k(values);
  auto total_bits = [&](int k) {
    std::size_t bits = 0;
    for (const auto v : values) bits += rice_bit_length(v, k);
    return bits;
  };
  for (int k = 0; k <= 8; ++k) {
    EXPECT_LE(total_bits(best), total_bits(k)) << "k=" << k;
  }
}

TEST(Rice, GeometricDataCompressesBelowFixedWidth) {
  // Zigzagged deltas of correlated sequences are geometric-ish: mostly 0/1.
  Rng rng(3);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 2000; ++i) {
    // ~80% zeros, 15% ones, rest small.
    const double u = rng.next_double();
    values.push_back(u < 0.8 ? 0 : u < 0.95 ? 1 : 2 + rng.next_below(3));
  }
  const int k = rice_best_k(values);
  std::size_t bits = 0;
  for (const auto v : values) bits += rice_bit_length(v, k);
  // A fixed 3-bit code would need 6000 bits; Rice should beat it well.
  EXPECT_LT(bits, 4000u);
}

TEST(Rice, LargeOutlierStillDecodes) {
  BitWriter w;
  rice_encode(w, 5000, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(rice_decode(r, 2), 5000u);
}

}  // namespace
}  // namespace hack
