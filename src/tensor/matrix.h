// Dense row-major float matrices and rank-3 tensors.
//
// Deliberately minimal: the library needs predictable memory layout (the
// quantizer partitions contiguous runs of a row or a column) and cheap
// row views, not a full BLAS. All shapes are checked.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace hack {

// Row-major M x N matrix of float.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<float> data) {
    HACK_CHECK(data.size() == rows * cols,
               "data size " << data.size() << " != " << rows << "x" << cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  // Matrix with i.i.d. U(lo, hi) entries. Deterministic for a given rng state.
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               float lo = -1.0f, float hi = 1.0f);

  // Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                                float stddev = 1.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    HACK_CHECK(r < rows_ && c < cols_,
               "index (" << r << "," << c << ") out of " << rows_ << "x"
                         << cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    HACK_CHECK(r < rows_ && c < cols_,
               "index (" << r << "," << c << ") out of " << rows_ << "x"
                         << cols_);
    return data_[r * cols_ + c];
  }

  // Unchecked access for inner loops.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) {
    HACK_CHECK(r < rows_, "row " << r << " out of " << rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    HACK_CHECK(r < rows_, "row " << r << " out of " << rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  // Rounds every entry to FP16 precision in place (storage-precision filter).
  void round_to_fp16();

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// Rank-3 tensor (e.g. [heads, tokens, d_head]), row-major innermost-last.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(std::size_t d0, std::size_t d1, std::size_t d2, float fill = 0.0f)
      : d0_(d0), d1_(d1), d2_(d2), data_(d0 * d1 * d2, fill) {}

  std::size_t dim0() const { return d0_; }
  std::size_t dim1() const { return d1_; }
  std::size_t dim2() const { return d2_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * d1_ + j) * d2_ + k];
  }
  float operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * d1_ + j) * d2_ + k];
  }

  // The [d1, d2] slice at index i of the leading dimension, as a copy.
  Matrix slice(std::size_t i) const;

  // Overwrites slice i with m (shape-checked).
  void set_slice(std::size_t i, const Matrix& m);

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

 private:
  std::size_t d0_ = 0, d1_ = 0, d2_ = 0;
  std::vector<float> data_;
};

}  // namespace hack
