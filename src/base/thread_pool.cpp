#include "base/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace hack {
namespace {

// Pool whose parallel_for machinery this thread is currently executing
// inside (as dispatching caller or as worker). Nested parallel_for calls on
// the same pool run their chunks inline instead of self-deadlocking on the
// dispatch lock.
thread_local const ThreadPool* active_pool = nullptr;

}  // namespace

// One parallel_for dispatch. Heap-allocated and shared with the workers so a
// worker that wakes late and finds no chunk left can still touch the claim
// counter (and the stored fn) safely after the caller has returned.
struct ThreadPool::Batch {
  RangeFn fn;
  std::size_t n = 0;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};  // next unclaimed chunk

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;  // finished chunks (guarded by mu)
  std::exception_ptr error;  // first exception (guarded by mu)
};

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::run_chunks(Batch& batch) {
  for (;;) {
    const std::size_t c = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.chunks) {
      return;
    }
    // Static partitioning: chunk c covers [c*n/chunks, (c+1)*n/chunks).
    const std::size_t begin = c * batch.n / batch.chunks;
    const std::size_t end = (c + 1) * batch.n / batch.chunks;
    try {
      if (begin < end) {
        batch.fn(begin, end);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.mu);
      if (!batch.error) {
        batch.error = std::current_exception();
      }
    }
    std::size_t finished;
    {
      std::lock_guard<std::mutex> lock(batch.mu);
      finished = ++batch.done;
    }
    if (finished == batch.chunks) {
      batch.cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunks,
                              const RangeFn& fn) {
  if (n == 0) {
    return;
  }
  if (chunks == 0) {
    chunks = lanes();
  }
  if (chunks > n) {
    chunks = n;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->n = n;
  batch->chunks = chunks;

  if (threads_.empty() || chunks == 1 || active_pool == this) {
    // No workers (or nothing to share, or nested): the caller runs every
    // chunk. The chunk decomposition is identical to the threaded path, so
    // results do not depend on pool size or nesting.
    run_chunks(*batch);
  } else {
    // One parallel loop at a time per pool; concurrent callers queue here.
    std::lock_guard<std::mutex> dispatch(dispatch_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
    const ThreadPool* const prev = active_pool;
    active_pool = this;
    run_chunks(*batch);
    active_pool = prev;
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->done == batch->chunks; });
  }

  if (batch->error) {
    std::rethrow_exception(batch->error);
  }
}

const ThreadPool* ThreadPool::current() { return active_pool; }

void parallel_for_each_index(std::size_t n, int threads,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (threads == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for(
      n, chunks_for_request(threads, n, /*auto_chunks=*/n),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
}

void ThreadPool::worker_loop() {
  active_pool = this;  // chunk bodies re-entering parallel_for stay inline
  std::size_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      batch = batch_;
    }
    run_chunks(*batch);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count() - 1);
  return pool;
}

std::size_t ThreadPool::default_thread_count() {
  const std::size_t override_count =
      parse_thread_override(std::getenv("HACK_NUM_THREADS"));
  if (override_count > 0) {
    return override_count;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::parse_thread_override(const char* value) {
  if (value == nullptr || *value == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0 || parsed > 4096) {
    return 0;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace hack
