#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace hack {
namespace {

TEST(Matrix, ShapeAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (const float v : m.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, 2), CheckError);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_THROW(Matrix::from_rows(2, 2, {1.0f, 2.0f, 3.0f}), CheckError);
}

TEST(Matmul, KnownProduct) {
  const Matrix a = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Matrix::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(MatmulNT, AgreesWithExplicitTranspose) {
  Rng rng(42);
  const Matrix a = Matrix::random_uniform(5, 7, rng);
  const Matrix b = Matrix::random_uniform(6, 7, rng);
  const Matrix direct = matmul_nt(a, b);
  const Matrix via_transpose = matmul(a, transpose(b));
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.flat()[i], via_transpose.flat()[i], 1e-5f);
  }
}

TEST(Transpose, Involution) {
  Rng rng(1);
  const Matrix a = Matrix::random_uniform(4, 9, rng);
  EXPECT_TRUE(transpose(transpose(a)) == a);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(2);
  const Matrix s = Matrix::random_uniform(6, 11, rng, -5.0f, 5.0f);
  const Matrix p = softmax_rows(s);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p(i, j), 0.0f);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, InvariantToRowShift) {
  const Matrix a = Matrix::from_rows(1, 3, {1.0f, 2.0f, 3.0f});
  const Matrix b = Matrix::from_rows(1, 3, {101.0f, 102.0f, 103.0f});
  const Matrix pa = softmax_rows(a);
  const Matrix pb = softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(pa(0, j), pb(0, j), 1e-6f);
  }
}

TEST(Softmax, NumericallyStableAtLargeMagnitude) {
  const Matrix a = Matrix::from_rows(1, 2, {1000.0f, 999.0f});
  const Matrix p = softmax_rows(a);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0f, 1e-6f);
  EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(SoftmaxCausal, MasksFutureKeys) {
  Rng rng(3);
  const Matrix s = Matrix::random_uniform(4, 4, rng);
  const Matrix p = softmax_rows_causal(s, /*key_offset=*/0);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_EQ(p(i, j), 0.0f) << i << "," << j;
      }
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxCausal, OffsetShiftsVisibility) {
  Rng rng(4);
  const Matrix s = Matrix::random_uniform(2, 6, rng);
  const Matrix p = softmax_rows_causal(s, /*key_offset=*/3);
  // Row 0 sees keys 0..3, row 1 sees 0..4.
  EXPECT_EQ(p(0, 4), 0.0f);
  EXPECT_EQ(p(0, 5), 0.0f);
  EXPECT_EQ(p(1, 5), 0.0f);
  EXPECT_GT(p(1, 4), 0.0f);
}

TEST(AddSubScale, Elementwise) {
  const Matrix a = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  const Matrix b = Matrix::from_rows(2, 2, {10, 20, 30, 40});
  const Matrix sum = add(a, b);
  const Matrix diff = sub(b, a);
  const Matrix twice = scale(a, 2.0f);
  EXPECT_FLOAT_EQ(sum(1, 1), 44.0f);
  EXPECT_FLOAT_EQ(diff(0, 1), 18.0f);
  EXPECT_FLOAT_EQ(twice(1, 0), 6.0f);
}

TEST(Vstack, StacksRows) {
  const Matrix a = Matrix::from_rows(1, 2, {1, 2});
  const Matrix b = Matrix::from_rows(2, 2, {3, 4, 5, 6});
  const Matrix c = vstack(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c(2, 1), 6.0f);
}

TEST(Vstack, EmptyBaseReturnsExtra) {
  const Matrix b = Matrix::from_rows(2, 2, {3, 4, 5, 6});
  EXPECT_TRUE(vstack(Matrix(), b) == b);
}

TEST(TakeRowsCols, Slicing) {
  const Matrix a = Matrix::from_rows(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Matrix mid_rows = take_rows(a, 1, 2);
  EXPECT_EQ(mid_rows.rows(), 1u);
  EXPECT_FLOAT_EQ(mid_rows(0, 2), 6.0f);
  const Matrix right_cols = take_cols(a, 2, 3);
  EXPECT_EQ(right_cols.cols(), 1u);
  EXPECT_FLOAT_EQ(right_cols(1, 0), 6.0f);
}

TEST(Tensor3, SliceRoundTrip) {
  Tensor3 t(2, 3, 4);
  Rng rng(5);
  const Matrix m = Matrix::random_uniform(3, 4, rng);
  t.set_slice(1, m);
  EXPECT_TRUE(t.slice(1) == m);
  // Slice 0 untouched. (Bind the slice: flat() returns a span into it.)
  const Matrix s0 = t.slice(0);
  for (const float v : s0.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Matrix, RoundToFp16AppliesPrecisionFilter) {
  Matrix m = Matrix::from_rows(1, 2, {1.0000001f, 3.14159265f});
  m.round_to_fp16();
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_NEAR(m(0, 1), 3.140625f, 1e-6f);  // nearest binary16 to pi
}

}  // namespace
}  // namespace hack
