#include <gtest/gtest.h>

#include "core/cost_model.h"

namespace hack {
namespace {

TEST(CostModel, GemmMacs) {
  EXPECT_EQ(hq_gemm_macs(2, 3, 4), 24);
  EXPECT_EQ(hq_gemm_macs(1, 128, 1000), 128000);
}

TEST(CostModel, ApproxFlopsFormula) {
  // 9MN + MZ + NZ (§5.2).
  EXPECT_EQ(hq_approx_flops(2, 5, 3), 9 * 6 + 10 + 15);
  EXPECT_EQ(hq_approx_flops_se(2, 5, 3), 9 * 6 + 10);
}

TEST(CostModel, DecodeApproxIsTenTimesSum) {
  // §5.3: with SE the per-head decode approximation cost is 10(d_h + L).
  for (const std::int64_t l : {1, 30, 100, 16384}) {
    EXPECT_EQ(decode_approx_flops_se(128, l), 10 * (128 + l)) << l;
  }
}

TEST(CostModel, DequantCostFourDhL) {
  EXPECT_EQ(decode_dequant_flops(128, 1000), 4 * 128 * 1000);
}

TEST(CostModel, SumRecomputeTwoDhL) {
  EXPECT_EQ(decode_sum_recompute_flops(128, 1000), 2 * 128 * 1000);
}

TEST(CostModel, CrossoverAtSequence2Point5) {
  // §5.3: 4 d_h L > 10(d_h + L) once L > 2.5 (for d_h = 128).
  const std::int64_t d = 128;
  EXPECT_LT(decode_dequant_flops(d, 2), decode_approx_flops_se(d, 2));
  EXPECT_GT(decode_dequant_flops(d, 3), decode_approx_flops_se(d, 3));
}

TEST(CostModel, OrderOfMagnitudeGapBeyond30) {
  // §5.3: dequantization exceeds the approximation by ~10x once L > 30
  // (the exact crossover for d_h=128 sits between L=31 and L=32).
  const std::int64_t d = 128;
  for (const std::int64_t l : {32, 100, 1000, 16384}) {
    EXPECT_GT(decode_dequant_flops(d, l), 10 * decode_approx_flops_se(d, l))
        << l;
  }
  EXPECT_LT(decode_dequant_flops(d, 20), 10 * decode_approx_flops_se(d, 20));
}

TEST(CostModel, SumStorageBits) {
  // b + ceil(log2 Π) (§5.3): 2-bit, Π=64 -> 8 bits; Π=128 -> 9 bits.
  EXPECT_EQ(sum_storage_bits(2, 64), 8);
  EXPECT_EQ(sum_storage_bits(2, 128), 9);
  EXPECT_EQ(sum_storage_bits(8, 64), 14);
  EXPECT_EQ(sum_storage_bits(2, 32), 7);
}

TEST(CostModel, SumStorageAlignment) {
  // §6: 9-bit sums cannot align; INT16 is used. 8-bit sums fit one byte.
  EXPECT_EQ(sum_storage_bytes(2, 64), 1);
  EXPECT_EQ(sum_storage_bytes(2, 128), 2);
  EXPECT_EQ(sum_storage_bytes(4, 64), 2);
}

TEST(CostModel, ApproxCheaperThanDequantGrowsWithL) {
  // "The longer the sequence, the greater the reduction" (§5.3).
  const std::int64_t d = 128;
  std::int64_t prev_gap = 0;
  for (const std::int64_t l : {100, 1000, 10000, 100000}) {
    const std::int64_t gap =
        decode_dequant_flops(d, l) - decode_approx_flops_se(d, l);
    EXPECT_GT(gap, prev_gap);
    prev_gap = gap;
  }
}

}  // namespace
}  // namespace hack
