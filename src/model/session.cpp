#include "model/session.h"

#include <cmath>

#include "attention/layer_attention.h"
#include "attention/reference.h"
#include "base/thread_pool.h"
#include "tensor/half.h"
#include "tensor/ops.h"

namespace hack {
namespace {

// ---------------------------------------------------------------- backends

class ExactBackend : public HeadBackend {
 public:
  void append(const Matrix& k_new, const Matrix& v_new) override {
    k_ = k_.empty() ? k_new : vstack(k_, k_new);
    v_ = v_.empty() ? v_new : vstack(v_, v_new);
  }
  Matrix attend(const Matrix& q, std::size_t key_offset) override {
    return attention_reference(
        q, k_, v_, {.causal = true, .key_offset = key_offset});
  }
  std::size_t stored_bytes() const override {
    return (k_.size() + v_.size()) * 4;
  }

 private:
  Matrix k_, v_;
};

class Fp16Backend : public HeadBackend {
 public:
  void append(const Matrix& k_new, const Matrix& v_new) override {
    Matrix k = k_new, v = v_new;
    k.round_to_fp16();
    v.round_to_fp16();
    k_ = k_.empty() ? k : vstack(k_, k);
    v_ = v_.empty() ? v : vstack(v_, v);
  }
  Matrix attend(const Matrix& q, std::size_t key_offset) override {
    return attention_reference(
        q, k_, v_, {.causal = true, .key_offset = key_offset});
  }
  std::size_t stored_bytes() const override {
    return (k_.size() + v_.size()) * 2;
  }

 private:
  Matrix k_, v_;
};

class HackBackend : public HeadBackend {
 public:
  HackBackend(std::size_t d_head, const HackAttentionConfig& config,
              std::uint64_t seed)
      : state_(d_head, config), rng_(seed) {}

  void append(const Matrix& k_new, const Matrix& v_new) override {
    state_.append_tokens(k_new, v_new, rng_, &stats_);
  }
  Matrix attend(const Matrix& q, std::size_t key_offset) override {
    return hack_attention(q, state_,
                          {.causal = true, .key_offset = key_offset}, rng_,
                          &stats_);
  }
  std::size_t stored_bytes() const override { return state_.wire_bytes(); }

 private:
  HackKvState state_;
  Rng rng_;
  HackAttnStats stats_;
};

class CodecBackend : public HeadBackend {
 public:
  CodecBackend(std::size_t d_head, std::shared_ptr<const KvCodec> codec,
               std::uint64_t seed)
      : state_(d_head, std::move(codec)), rng_(seed) {}

  void append(const Matrix& k_new, const Matrix& v_new) override {
    state_.append_tokens(k_new, v_new, rng_, &stats_);
  }
  Matrix attend(const Matrix& q, std::size_t key_offset) override {
    return dequant_attention(
        q, state_, {.causal = true, .key_offset = key_offset}, &stats_);
  }
  std::size_t stored_bytes() const override { return state_.stored_bytes(); }

 private:
  DequantKvState state_;
  Rng rng_;
  DequantAttnStats stats_;
};

class MiniFloatBackend : public HeadBackend {
 public:
  explicit MiniFloatBackend(MiniFloatFormat format) : format_(format) {}

  void append(const Matrix& k_new, const Matrix& v_new) override {
    const Matrix k = minifloat_round_matrix(k_new, format_);
    const Matrix v = minifloat_round_matrix(v_new, format_);
    k_ = k_.empty() ? k : vstack(k_, k);
    v_ = v_.empty() ? v : vstack(v_, v);
  }
  Matrix attend(const Matrix& q, std::size_t key_offset) override {
    return attention_reference(
        q, k_, v_, {.causal = true, .key_offset = key_offset});
  }
  std::size_t stored_bytes() const override {
    return (k_.size() + v_.size()) * static_cast<std::size_t>(
               minifloat_bits(format_)) / 8;
  }

 private:
  MiniFloatFormat format_;
  Matrix k_, v_;
};

// ------------------------------------------------------------ layer backends

// The pre-batching model path: one HeadBackend per KV head, appended and
// attended in a serial loop. Still the route for every non-HACK method.
class PerHeadLayerBackend : public LayerBackend {
 public:
  PerHeadLayerBackend(const BackendFactory& factory, std::size_t d_head,
                      std::size_t kv_heads, std::size_t query_heads)
      : d_head_(d_head), kv_heads_(kv_heads), group_(query_heads / kv_heads) {
    heads_.reserve(kv_heads);
    for (std::size_t h = 0; h < kv_heads; ++h) {
      heads_.push_back(factory(d_head));
    }
  }

  void append(const Matrix& k_all, const Matrix& v_all) override {
    for (std::size_t h = 0; h < kv_heads_; ++h) {
      heads_[h]->append(take_cols(k_all, h * d_head_, (h + 1) * d_head_),
                        take_cols(v_all, h * d_head_, (h + 1) * d_head_));
    }
  }

  Matrix attend(const Matrix& q_all, std::size_t key_offset) override {
    Matrix out(q_all.rows(), kv_heads_ * group_ * d_head_);
    for (std::size_t g = 0; g < kv_heads_; ++g) {
      for (std::size_t sub = 0; sub < group_; ++sub) {
        const std::size_t head = g * group_ + sub;
        const Matrix o = heads_[g]->attend(
            take_cols(q_all, head * d_head_, (head + 1) * d_head_),
            key_offset);
        for (std::size_t r = 0; r < out.rows(); ++r) {
          const auto src = o.row(r);
          std::copy(src.begin(), src.end(),
                    out.row(r).begin() + head * d_head_);
        }
      }
    }
    return out;
  }

  std::size_t stored_bytes() const override {
    std::size_t total = 0;
    for (const auto& head : heads_) total += head->stored_bytes();
    return total;
  }

 private:
  std::size_t d_head_;
  std::size_t kv_heads_;
  std::size_t group_;
  std::vector<std::unique_ptr<HeadBackend>> heads_;
};

// The batched HACK path: all heads of the layer through HackLayerKvState.
class HackLayerBackend : public LayerBackend {
 public:
  HackLayerBackend(std::size_t d_head, std::size_t kv_heads,
                   std::size_t query_heads, const HackAttentionConfig& config,
                   std::uint64_t seed)
      : state_(d_head, kv_heads, query_heads, config, seed) {}

  void append(const Matrix& k_all, const Matrix& v_all) override {
    state_.append_tokens(k_all, v_all, &stats_);
  }
  Matrix attend(const Matrix& q_all, std::size_t key_offset) override {
    return state_.attend(q_all, {.causal = true, .key_offset = key_offset},
                         &stats_);
  }
  std::size_t stored_bytes() const override { return state_.wire_bytes(); }
  HackLayerKvState* hack_state() override { return &state_; }

 private:
  HackLayerKvState state_;
  HackAttnStats stats_;
};

// ------------------------------------------------------------ small kernels

std::vector<float> rms_norm(std::span<const float> x,
                            std::span<const float> gain) {
  double sum_sq = 0.0;
  for (const float v : x) sum_sq += static_cast<double>(v) * v;
  const float inv_rms = 1.0f / std::sqrt(static_cast<float>(
                                  sum_sq / static_cast<double>(x.size())) +
                              1e-6f);
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * inv_rms * gain[i];
  }
  return out;
}

Matrix rms_norm_rows(const Matrix& x, std::span<const float> gain) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto normed = rms_norm(x.row(i), gain);
    std::copy(normed.begin(), normed.end(), out.row(i).begin());
  }
  return out;
}

float silu(float x) { return x / (1.0f + std::exp(-x)); }

}  // namespace

BackendFactory make_exact_backend() {
  return [](std::size_t) { return std::make_unique<ExactBackend>(); };
}

BackendFactory make_fp16_backend() {
  return [](std::size_t) { return std::make_unique<Fp16Backend>(); };
}

BackendFactory make_hack_backend(HackAttentionConfig config,
                                 std::uint64_t seed) {
  auto counter = std::make_shared<std::uint64_t>(seed);
  return [config, counter](std::size_t d_head) {
    return std::make_unique<HackBackend>(d_head, config, (*counter)++);
  };
}

BackendFactory make_codec_backend(std::shared_ptr<const KvCodec> codec,
                                  std::uint64_t seed) {
  auto counter = std::make_shared<std::uint64_t>(seed);
  return [codec, counter](std::size_t d_head) {
    return std::make_unique<CodecBackend>(d_head, codec, (*counter)++);
  };
}

BackendFactory make_minifloat_backend(MiniFloatFormat format) {
  return [format](std::size_t) {
    return std::make_unique<MiniFloatBackend>(format);
  };
}

LayerBackendFactory per_head_layer_factory(BackendFactory factory) {
  return [factory = std::move(factory)](std::size_t d_head,
                                        std::size_t kv_heads,
                                        std::size_t query_heads) {
    return std::make_unique<PerHeadLayerBackend>(factory, d_head, kv_heads,
                                                 query_heads);
  };
}

LayerBackendFactory make_hack_layer_backend(HackAttentionConfig config,
                                            std::uint64_t seed) {
  auto counter = std::make_shared<std::uint64_t>(seed);
  return [config, counter](std::size_t d_head, std::size_t kv_heads,
                           std::size_t query_heads) {
    // Mirror the per-head counter: one stream per KV head, layer-major.
    const std::uint64_t base = *counter;
    *counter += kv_heads;
    return std::make_unique<HackLayerBackend>(d_head, kv_heads, query_heads,
                                              config, base);
  };
}

// ----------------------------------------------------------------- weights

TinyModelWeights::TinyModelWeights(const TinyConfig& config)
    : config_(config) {
  HACK_CHECK(config.heads % config.kv_heads == 0,
             "heads must be a multiple of kv_heads (GQA)");
  Rng rng(config.weight_seed);
  const std::size_t d = config.d_model();
  const float proj_std = 1.0f / std::sqrt(static_cast<float>(d));
  const float ff_std = 1.0f / std::sqrt(static_cast<float>(config.d_ff));

  embedding_ = Matrix::random_gaussian(config.vocab, d, rng, proj_std);
  layers_.resize(config.layers);
  for (LayerWeights& lw : layers_) {
    lw.wq = Matrix::random_gaussian(d, config.heads * config.d_head, rng,
                                    proj_std);
    lw.wk = Matrix::random_gaussian(d, config.kv_heads * config.d_head, rng,
                                    proj_std);
    lw.wv = Matrix::random_gaussian(d, config.kv_heads * config.d_head, rng,
                                    proj_std);
    lw.wo = Matrix::random_gaussian(config.heads * config.d_head, d, rng,
                                    proj_std);
    lw.w_gate = Matrix::random_gaussian(d, config.d_ff, rng, proj_std);
    lw.w_up = Matrix::random_gaussian(d, config.d_ff, rng, proj_std);
    lw.w_down = Matrix::random_gaussian(config.d_ff, d, rng, ff_std);
    lw.norm_attn.assign(d, 1.0f);
    lw.norm_mlp.assign(d, 1.0f);
  }
  norm_final_.assign(d, 1.0f);
}

Matrix TinyModelWeights::embed(const std::vector<int>& tokens) const {
  HACK_CHECK(!tokens.empty(), "empty token batch");
  Matrix x(tokens.size(), config_.d_model());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    HACK_CHECK(tokens[t] >= 0 &&
                   static_cast<std::size_t>(tokens[t]) < config_.vocab,
               "token " << tokens[t] << " out of vocab");
    const auto row = embedding_.row(static_cast<std::size_t>(tokens[t]));
    std::copy(row.begin(), row.end(), x.row(t).begin());
  }
  return x;
}

std::vector<float> TinyModelWeights::logits(
    std::span<const float> hidden_row) const {
  const auto normed = rms_norm(hidden_row, norm_final_);
  std::vector<float> logits(config_.vocab);
  for (std::size_t t = 0; t < config_.vocab; ++t) {
    const auto row = embedding_.row(t);
    float acc = 0.0f;
    for (std::size_t c = 0; c < normed.size(); ++c) {
      acc += normed[c] * row[c];
    }
    logits[t] = acc;
  }
  return logits;
}

Matrix TinyModelWeights::logits_batch(const Matrix& hidden,
                                      int threads) const {
  const std::size_t m_rows = hidden.rows();
  const std::size_t d = config_.d_model();
  HACK_CHECK(hidden.cols() == d, "hidden width " << hidden.cols()
                                                 << " != d_model " << d);
  Matrix normed(m_rows, d);
  for (std::size_t r = 0; r < m_rows; ++r) {
    const auto n = rms_norm(hidden.row(r), norm_final_);
    std::copy(n.begin(), n.end(), normed.row(r).begin());
  }
  Matrix out(m_rows, config_.vocab);
  // Vocab-major sweep: each embedding row is read once and dotted against
  // every batched hidden row while hot. Each out(r, t) runs the same
  // ascending-c accumulation as logits(), so chunking cannot change results.
  const auto sweep = [&](std::size_t t0, std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      const auto erow = embedding_.row(t);
      for (std::size_t r = 0; r < m_rows; ++r) {
        const auto nrow = normed.row(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < d; ++c) acc += nrow[c] * erow[c];
        out(r, t) = acc;
      }
    }
  };
  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks =
      chunks_for_request(threads, config_.vocab, pool.lanes());
  if (chunks <= 1) {
    sweep(0, config_.vocab);
  } else {
    pool.parallel_for(config_.vocab, chunks, sweep);
  }
  return out;
}

void TinyModelWeights::apply_rope(Matrix& x, std::size_t head_count,
                                  std::size_t start_pos) const {
  const std::size_t dh = config_.d_head;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto pos = static_cast<float>(start_pos + r);
    for (std::size_t h = 0; h < head_count; ++h) {
      for (std::size_t i = 0; i + 1 < dh; i += 2) {
        const float theta =
            pos * std::pow(config_.rope_base,
                           -static_cast<float>(i) / static_cast<float>(dh));
        const float c = std::cos(theta);
        const float s = std::sin(theta);
        const std::size_t base = h * dh + i;
        const float x0 = x(r, base);
        const float x1 = x(r, base + 1);
        x(r, base) = x0 * c - x1 * s;
        x(r, base + 1) = x0 * s + x1 * c;
      }
    }
  }
}

std::size_t TinyModelWeights::weight_bytes() const {
  std::size_t floats = embedding_.size() + norm_final_.size();
  for (const LayerWeights& lw : layers_) {
    floats += lw.wq.size() + lw.wk.size() + lw.wv.size() + lw.wo.size() +
              lw.w_gate.size() + lw.w_up.size() + lw.w_down.size() +
              lw.norm_attn.size() + lw.norm_mlp.size();
  }
  return floats * sizeof(float);
}

std::shared_ptr<const TinyModelWeights> make_tiny_weights(
    const TinyConfig& config) {
  return std::make_shared<const TinyModelWeights>(config);
}

int argmax_logits(std::span<const float> logits) {
  int best = 0;
  for (std::size_t t = 1; t < logits.size(); ++t) {
    if (logits[t] > logits[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(t);
    }
  }
  return best;
}

// ----------------------------------------------------------------- session

TinyModelSession::TinyModelSession(
    std::shared_ptr<const TinyModelWeights> weights,
    const LayerBackendFactory& factory)
    : weights_(std::move(weights)) {
  HACK_CHECK(weights_ != nullptr, "session needs weights");
  const TinyConfig& config = weights_->config();
  backends_.reserve(config.layers);
  for (std::size_t i = 0; i < config.layers; ++i) {
    backends_.push_back(factory(config.d_head, config.kv_heads, config.heads));
  }
}

Matrix TinyModelSession::project_and_append(std::size_t layer, const Matrix& x,
                                            std::size_t start_pos) {
  HACK_CHECK(layer < backends_.size(), "layer " << layer << " out of range");
  HACK_CHECK(start_pos == position_,
             "chunk start " << start_pos << " != session position "
                            << position_);
  const TinyConfig& config = weights_->config();
  const TinyModelWeights::LayerWeights& lw = weights_->layer(layer);
  const Matrix h = rms_norm_rows(x, lw.norm_attn);
  Matrix q = matmul(h, lw.wq);
  Matrix k = matmul(h, lw.wk);
  const Matrix v = matmul(h, lw.wv);
  weights_->apply_rope(q, config.heads, start_pos);
  weights_->apply_rope(k, config.kv_heads, start_pos);
  backends_[layer]->append(k, v);
  return q;
}

Matrix TinyModelSession::finish_layer(std::size_t layer, Matrix x,
                                      const Matrix& attn_out) const {
  const TinyModelWeights::LayerWeights& lw = weights_->layer(layer);
  x = add(x, matmul(attn_out, lw.wo));
  const Matrix h2 = rms_norm_rows(x, lw.norm_mlp);
  Matrix gate = matmul(h2, lw.w_gate);
  const Matrix up = matmul(h2, lw.w_up);
  for (std::size_t i = 0; i < gate.size(); ++i) {
    gate.flat()[i] = silu(gate.flat()[i]) * up.flat()[i];
  }
  return add(x, matmul(gate, lw.w_down));
}

Matrix TinyModelSession::forward_layer(std::size_t layer, const Matrix& x,
                                       std::size_t start_pos) {
  const Matrix q = project_and_append(layer, x, start_pos);
  const Matrix attn_out = backends_[layer]->attend(q, start_pos);
  return finish_layer(layer, Matrix(x), attn_out);
}

Matrix TinyModelSession::forward_rows(const std::vector<int>& tokens) {
  const std::size_t start_pos = position_;
  Matrix x = weights_->embed(tokens);
  for (std::size_t layer = 0; layer < backends_.size(); ++layer) {
    x = forward_layer(layer, x, start_pos);
  }
  advance(tokens.size());
  return x;
}

void TinyModelSession::advance(std::size_t rows) { position_ += rows; }

void TinyModelSession::restore_position(std::size_t position) {
  HACK_CHECK(position_ == 0, "restore_position on a used session");
  position_ = position;
}

std::vector<float> TinyModelSession::logits_for_row(const Matrix& hidden,
                                                    std::size_t row) const {
  return weights_->logits(hidden.row(row));
}

std::size_t TinyModelSession::kv_stored_bytes() const {
  std::size_t total = 0;
  for (const auto& backend : backends_) {
    total += backend->stored_bytes();
  }
  return total;
}

}  // namespace hack
