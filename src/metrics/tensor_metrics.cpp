#include "metrics/tensor_metrics.h"

#include <cmath>

namespace hack {

float max_abs_diff(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.flat()[i] - b.flat()[i]));
  }
  return worst;
}

double relative_l2(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.flat()[i]) - b.flat()[i];
    num += d * d;
    den += static_cast<double>(b.flat()[i]) * b.flat()[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

double cosine_similarity(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a.flat()[i]) * b.flat()[i];
    na += static_cast<double>(a.flat()[i]) * a.flat()[i];
    nb += static_cast<double>(b.flat()[i]) * b.flat()[i];
  }
  if (na == 0.0 || nb == 0.0) return na == nb ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace hack
