#include <gtest/gtest.h>

#include "attention/dequant_attention.h"
#include "attention/reference.h"
#include "metrics/tensor_metrics.h"
#include "tensor/ops.h"

namespace hack {
namespace {

TEST(DequantAttention, Fp16CodecIsNearExact) {
  Rng rng(1);
  const std::size_t l = 24, d = 32;
  const Matrix q = Matrix::random_gaussian(l, d, rng);
  const Matrix k = Matrix::random_gaussian(l, d, rng);
  const Matrix v = Matrix::random_gaussian(l, d, rng);

  DequantKvState state(d, make_codec("fp16"));
  Rng qrng(2);
  state.append_tokens(k, v, qrng);
  const Matrix out = dequant_attention(q, state, {.causal = true});
  const Matrix ref = attention_reference(q, k, v, {.causal = true});
  EXPECT_LT(relative_l2(out, ref), 1e-3);  // FP16 storage rounding only
}

TEST(DequantAttention, CacheGenTracksReference) {
  Rng rng(3);
  const std::size_t l = 64, d = 64;
  const Matrix q = Matrix::random_gaussian(l, d, rng);
  const Matrix k = Matrix::random_gaussian(l, d, rng);
  const Matrix v = Matrix::random_gaussian(l, d, rng);
  DequantKvState state(d, make_codec("cachegen"));
  Rng qrng(4);
  state.append_tokens(k, v, qrng);
  const Matrix out = dequant_attention(q, state, {.causal = true});
  const Matrix ref = attention_reference(q, k, v, {.causal = true});
  // Worst-case (unstructured) data through a 2-bit codec.
  EXPECT_GT(cosine_similarity(out, ref), 0.70);
}

TEST(DequantAttention, CountsDequantizationWork) {
  Rng rng(5);
  const std::size_t d = 32;
  DequantKvState state(d, make_codec("kvquant"));
  Rng qrng(6);
  DequantAttnStats stats{};
  const Matrix k = Matrix::random_gaussian(10, d, rng);
  const Matrix v = Matrix::random_gaussian(10, d, rng);
  state.append_tokens(k, v, qrng, &stats);
  EXPECT_EQ(stats.encoded_values, 2 * 10 * 32);

  const Matrix q = Matrix::random_gaussian(1, d, rng);
  // Three decode iterations dequantize the whole cache three times (§2.2).
  for (int i = 0; i < 3; ++i) {
    (void)dequant_attention(q, state, {.causal = true, .key_offset = 9},
                            &stats);
  }
  EXPECT_EQ(stats.dequant_calls, 3);
  EXPECT_EQ(stats.dequantized_values, 3 * 2 * 10 * 32);
}

TEST(DequantAttention, StoredBytesReflectCompression) {
  Rng rng(7);
  const std::size_t l = 128, d = 64;
  const Matrix k = Matrix::random_gaussian(l, d, rng);
  const Matrix v = Matrix::random_gaussian(l, d, rng);

  DequantKvState fp16(d, make_codec("fp16"));
  DequantKvState cg(d, make_codec("cachegen"));
  Rng q1(8), q2(8);
  fp16.append_tokens(k, v, q1);
  cg.append_tokens(k, v, q2);
  // CacheGen lands well under a quarter of the FP16 footprint.
  EXPECT_LT(cg.stored_bytes() * 4, fp16.stored_bytes());
}

TEST(DequantAttention, IncrementalAppendMatchesBatch) {
  Rng rng(9);
  const std::size_t l = 12, d = 32;
  const Matrix q = Matrix::random_gaussian(1, d, rng);
  const Matrix k = Matrix::random_gaussian(l, d, rng);
  const Matrix v = Matrix::random_gaussian(l, d, rng);

  DequantKvState batch(d, make_codec("fp16"));
  DequantKvState stepped(d, make_codec("fp16"));
  Rng q1(10), q2(10);
  batch.append_tokens(k, v, q1);
  for (std::size_t t = 0; t < l; ++t) {
    stepped.append_tokens(take_rows(k, t, t + 1), take_rows(v, t, t + 1), q2);
  }
  const AttentionOptions opt{.causal = true, .key_offset = l - 1};
  const Matrix o1 = dequant_attention(q, batch, opt);
  const Matrix o2 = dequant_attention(q, stepped, opt);
  EXPECT_EQ(max_abs_diff(o1, o2), 0.0f);  // FP16 codec is value-exact
}

TEST(DequantAttention, EmptyStateThrows) {
  DequantKvState state(16, make_codec("fp16"));
  Matrix q(1, 16, 0.0f);
  EXPECT_THROW(dequant_attention(q, state, {}), CheckError);
}

TEST(DequantAttention, ShapeMismatchThrows) {
  DequantKvState state(16, make_codec("fp16"));
  Rng rng(11);
  Matrix k(2, 16, 0.0f), v(3, 16, 0.0f);
  EXPECT_THROW(state.append_tokens(k, v, rng), CheckError);
}

}  // namespace
}  // namespace hack
