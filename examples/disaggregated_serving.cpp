// Disaggregated serving scenario: Llama-3.1 70B serving a long-context
// information-retrieval workload (Cocktail), prefill on an A10G fleet and
// decode on A100s — the paper's default testbed (§7.1).
//
// Part 1 runs the discrete-event cluster simulator once per method and prints
// the JCT decomposition, showing where HACK's wins come from: compressed KV
// transfers, INT8 prefill, and the eliminated per-iteration dequantization.
//
// Part 2 exercises the per-layer path a real deployment runs: one batched
// HackLayerKvState per transformer layer (Llama-3.1 70B GQA geometry, 64
// query heads over 8 KV heads, d_head 128). The wire bytes it reports are
// *serialized*, not modeled: the layer's KV state — packed 2-bit codes, FP16
// (m, s) metadata, SE sums, the RQE FP16 tail, and the RNG stream positions
// — goes through the versioned KV wire format (kvcache/kv_wire.h) and the
// blob's actual size rides the netsim NCCL-style pipelined transfer for the
// printed duration. The latencies are the measured cost of one batched
// prefill and decode step on this machine.
//
// Part 3 runs the continuous-batching serving engine end to end: one shared
// TinyModelWeights instance, a handful of requests arriving staggered on an
// open-loop timeline, iteration-level scheduling (all decode rows + one
// bounded prefill chunk per step), KV-block admission control, and fused
// cross-sequence HACK attention. Per-request TTFT/JCT are measured, not
// modeled. (A reduced GQA geometry keeps the example's weight generation
// quick; the bench sweeps the full 32Q/8KV d_head-128 serving shape.)
//
// Part 4 splits that engine across the worker boundary: a DisaggEngine
// (serving/disagg.h) prefills each request on one worker, ships the
// serialized KV blob over the netsim link, rehydrates it on the decode
// worker, and finishes decoding bit-identically to the single-node run —
// the check is printed per request.
//
// Build & run:  ./build/examples/disaggregated_serving
#include <chrono>
#include <cstdio>

#include "attention/layer_attention.h"
#include "base/thread_pool.h"
#include "cluster/simulator.h"
#include "kvcache/kv_wire.h"
#include "metrics/report.h"
#include "model/tiny_transformer.h"
#include "netsim/transfer.h"
#include "serving/disagg.h"
#include "serving/engine.h"
#include "tensor/matrix.h"
#include "workload/corpus.h"

using namespace hack;

namespace {

double elapsed_ms(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void per_layer_batched_path() {
  const std::size_t heads = 64, kv_heads = 8, d_head = 128;  // Llama-3.1 70B
  const std::size_t context = 1024;
  HackAttentionConfig cfg;  // paper defaults: Π=64, 8-bit Q/P, 2-bit KV

  Rng rng(2025);
  const Matrix q = Matrix::random_gaussian(context, heads * d_head, rng);
  const Matrix k = Matrix::random_gaussian(context, kv_heads * d_head, rng);
  const Matrix v = Matrix::random_gaussian(context, kv_heads * d_head, rng);

  HackLayerKvState layer(d_head, kv_heads, heads, cfg, 7);
  auto start = std::chrono::steady_clock::now();
  (void)layer.prefill(q, k, v);
  const double prefill_ms = elapsed_ms(start);

  const Matrix q1 = Matrix::random_gaussian(1, heads * d_head, rng);
  const Matrix k1 = Matrix::random_gaussian(1, kv_heads * d_head, rng);
  const Matrix v1 = Matrix::random_gaussian(1, kv_heads * d_head, rng);
  start = std::chrono::steady_clock::now();
  (void)layer.decode_step(q1, k1, v1);
  const double decode_ms = elapsed_ms(start);

  const double fp16_bytes =
      2.0 * 2.0 * static_cast<double>(context) * kv_heads * d_head;

  // Serialize the layer through the real wire format: the byte count below
  // is the blob a prefill worker ships, not the analytical model.
  HackLayerKvState* layers[] = {&layer};
  KvWireSections sections;
  start = std::chrono::steady_clock::now();
  const auto blob = serialize_kv_wire(layers, &sections);
  const double serialize_ms = elapsed_ms(start);

  // ...and ride it over the paper's testbed link (A10G prefill → A100
  // decode, 100 Gbps NICs) with the NCCL-style pipelined transfer.
  Nic prefill_nic(100.0), decode_nic(100.0);
  const TransferResult transfer = nccl_transfer(
      prefill_nic, decode_nic, /*ready_time=*/0.0,
      static_cast<double>(blob.size()),
      kv_wire_transfer_chunks(blob.size(), /*chunk_bytes=*/1 << 20));

  Table t("Per-layer batched path (64 Q heads / 8 KV heads, d_head 128, "
          "1024-token context)");
  t.header({"metric", "value"});
  t.row({"prefill latency (all heads, one launch)", fmt(prefill_ms, 1) + " ms"});
  t.row({"prefill throughput",
         fmt(1000.0 * static_cast<double>(context) / prefill_ms, 0) +
             " tok/s/layer"});
  t.row({"decode step latency (batched GEMV)", fmt(decode_ms, 2) + " ms"});
  t.row({"serialized wire bytes per layer (measured blob)",
         fmt(static_cast<double>(blob.size()) / 1024.0, 0) + " KiB"});
  t.row({"  codes / metadata / sums / tail KiB",
         fmt(static_cast<double>(sections.packed_codes) / 1024.0, 0) + " / " +
             fmt(static_cast<double>(sections.metadata) / 1024.0, 0) + " / " +
             fmt(static_cast<double>(sections.sums) / 1024.0, 0) + " / " +
             fmt(static_cast<double>(sections.fp16_tail) / 1024.0, 0)});
  t.row({"vs FP16 KV per layer",
         pct(static_cast<double>(blob.size()) / fp16_bytes)});
  t.row({"serialize latency", fmt(serialize_ms, 2) + " ms"});
  t.row({"netsim transfer (100 Gbps NICs, pipelined)",
         fmt(transfer.duration() * 1000.0, 3) + " ms"});
  t.row({"pool lanes", std::to_string(ThreadPool::global().lanes())});
  t.print();
}

void continuous_batching_engine() {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = 2;
  cfg.heads = 16;
  cfg.kv_heads = 4;
  cfg.d_head = 64;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);

  ServingEngineConfig ec;
  ec.scheduler.max_active = 4;
  ec.scheduler.prefill_chunk_tokens = 32;
  ec.scheduler.block_tokens = 16;
  // 8 blocks per request (96 prompt + 24 output = 120 tokens): a 24-block
  // pool holds three concurrent sequences; later arrivals queue for blocks.
  BlockAllocator allocator(
      24, ec.scheduler.block_tokens * cfg.kv_heads * cfg.d_head * 2 * 2 *
              cfg.layers);

  HackAttentionConfig attn;  // paper defaults: Π=64, 8-bit Q/P, 2-bit KV
  ServingEngine engine(
      weights, [attn] { return make_hack_layer_backend(attn, 7); }, ec,
      &allocator);

  SyntheticCorpus corpus({.vocab = cfg.vocab}, 2025);
  for (std::size_t i = 0; i < 6; ++i) {
    ServingRequest req;
    req.id = i;
    req.prompt = corpus.prompt(i, 96);
    req.max_new_tokens = 24;
    req.arrival_time_s = 0.08 * static_cast<double>(i);  // staggered
    engine.submit(std::move(req));
  }
  const ServingReport report = engine.run();

  Table t("Continuous-batching engine (16Q/4KV d_head 64, shared weights, "
          "staggered arrivals)");
  t.header({"request", "arrival_s", "ttft_s", "jct_s", "tokens", "state"});
  for (const ServingRecord& rec : report.requests) {
    t.row({std::to_string(rec.request.id),
           fmt(rec.request.arrival_time_s, 2), fmt(rec.ttft_s(), 3),
           fmt(rec.jct_s(), 3), std::to_string(rec.generated.size()),
           request_state_name(rec.state)});
  }
  t.print();

  Table a("Engine aggregate");
  a.header({"metric", "value"});
  a.row({"decode tokens/s", fmt(report.decode_tokens_per_s, 1)});
  a.row({"goodput", fmt(report.goodput_rps, 2) + " req/s"});
  a.row({"TTFT p50 / p99", fmt(report.ttft_s.p50, 3) + " / " +
                               fmt(report.ttft_s.p99, 3) + " s"});
  a.row({"TBT p50 / p99", fmt(report.tbt_s.p50, 4) + " / " +
                              fmt(report.tbt_s.p99, 4) + " s"});
  a.row({"peak concurrent sequences",
         std::to_string(report.engine.peak_running)});
  a.row({"fused attend launches",
         std::to_string(report.engine.fused_attend_launches)});
  a.row({"KV bytes admitted",
         fmt(static_cast<double>(report.engine.kv_bytes_admitted) / 1024.0,
             0) + " KiB"});
  a.row({"free-block watermark",
         std::to_string(allocator.min_free_watermark()) + " of " +
             std::to_string(allocator.num_blocks())});
  a.row({"pool lanes", std::to_string(ThreadPool::global().lanes())});
  a.print();
}

void disaggregated_engine() {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = 2;
  cfg.heads = 16;
  cfg.kv_heads = 4;
  cfg.d_head = 64;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);

  DisaggConfig dc;  // paper defaults: Π=64, 8-bit Q/P, 2-bit KV, 100 Gbps
  dc.decode_kv_blocks = 64;

  SyntheticCorpus corpus({.vocab = cfg.vocab}, 2025);
  std::vector<ServingRequest> requests;
  for (std::size_t i = 0; i < 3; ++i) {
    ServingRequest req;
    req.id = i;
    req.prompt = corpus.prompt(i, 96);
    req.max_new_tokens = 16;
    req.arrival_time_s = 0.05 * static_cast<double>(i);
    requests.push_back(std::move(req));
  }

  DisaggEngine engine(weights, dc);
  const DisaggReport report = engine.run(requests);

  Table t("Disaggregated prefill→decode (16Q/4KV d_head 64, KV wire + netsim "
          "transfer)");
  t.header({"request", "wire_KiB", "vs_fp16", "prefill_ms", "transfer_ms",
            "decode_ms", "ttft_s", "tokens", "bit-identical"});
  for (const DisaggRecord& rec : report.requests) {
    // The check the whole module exists for: the decode worker's token
    // stream equals the single-node run's.
    TinyTransformer solo(weights,
                         make_hack_layer_backend(dc.attn, dc.backend_seed));
    const bool identical =
        solo.generate(rec.request.prompt, rec.request.max_new_tokens,
                      rec.request.eos) == rec.generated;
    t.row({std::to_string(rec.request.id),
           fmt(static_cast<double>(rec.wire_bytes) / 1024.0, 0),
           pct(rec.wire_vs_fp16()), fmt(rec.prefill_s * 1000.0, 0),
           fmt(rec.transfer_s * 1000.0, 3), fmt(rec.decode_s * 1000.0, 0),
           fmt(rec.ttft_s, 3), std::to_string(rec.generated.size()),
           identical ? "yes" : "NO"});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("Disaggregated serving: Llama-3.1 70B + Cocktail\n");
  std::printf("prefill: 5 A10G replicas (TP4/PP2), decode: 4 A100 replicas "
              "(TP4)\n");

  Table t("JCT decomposition by method");
  t.header({"method", "jct_s", "prefill_s", "comm_s", "dequant/approx_s",
            "decode_s", "peak_mem", "swapped"});
  for (const Method method :
       {Method::kBaseline, Method::kCacheGen, Method::kKvQuant,
        Method::kHack}) {
    ClusterConfig config =
        standard_cluster("A10G", "L", "Cocktail", method);
    config.num_requests = 40;
    config.seed = 11;
    const SimSummary s = run_cluster_sim(config);
    t.row({method_name(method), fmt(s.avg_jct_s, 1), fmt(s.mean_prefill_s, 1),
           fmt(s.mean_comm_s, 2), fmt(s.mean_dequant_or_approx_s, 2),
           fmt(s.mean_decode_s, 1), pct(s.peak_decode_mem_fraction),
           std::to_string(s.swapped_requests)});
  }
  t.print();

  // The pipelining counterpoint (§2.1): overlap helps until decode memory
  // runs out, at which point KV must park in prefill CPU memory.
  Table p("Pipelining at increasing load (baseline)");
  p.header({"rps", "comm_ratio", "swapped"});
  for (const double rps : {0.06, 0.12, 0.18, 0.24}) {
    ClusterConfig config =
        standard_cluster("A10G", "L", "Cocktail", Method::kBaseline, rps);
    config.pipelining = true;
    config.num_requests = 40;
    config.seed = 11;
    config.activation_reserve_gb = 120.0;
    const SimSummary s = run_cluster_sim(config);
    p.row({fmt(rps, 2), pct(s.comm_ratio), std::to_string(s.swapped_requests)});
  }
  p.print();

  per_layer_batched_path();
  continuous_batching_engine();
  disaggregated_engine();
  return 0;
}
