// FLOP and byte calculators for transformer inference.
//
// Standard counting: a weight matmul over L tokens costs 2·L·params_in_layer
// flops; attention score/value matmuls cost 4·L²·d_head·heads per layer in
// prefill and 4·L·d_head·heads per generated token in decode. The cluster
// simulator converts these into seconds with per-GPU throughputs.
#pragma once

#include "model/config.h"

namespace hack {

// Total prefill flops for a prompt of length l.
double prefill_flops(const ModelConfig& m, double l);

// Flops of one decode step at context length l (weights + attention).
double decode_step_flops(const ModelConfig& m, double l);

// Of which: the KV-related attention matmul flops (the part HACK accelerates
// with integer compute). Prefill variant counts Q·Kᵀ and P·V over the
// causal half.
double prefill_attention_flops(const ModelConfig& m, double l);
double decode_step_attention_flops(const ModelConfig& m, double l);

// FP16 KV bytes for a whole sequence of length l (all layers, K and V).
double kv_bytes_fp16(const ModelConfig& m, double l);

// Bytes read from GPU memory per decode step: weights (per active PP stage)
// plus the entire KV cache at the current context length.
double decode_kv_read_bytes(const ModelConfig& m, double l,
                            double kv_compression);

// Quantization work at prefill (one pass over produced KV values) and the
// per-step dequantization work baseline methods pay in decode, in flops.
double prefill_quant_flops(const ModelConfig& m, double l);
double decode_dequant_flops(const ModelConfig& m, double l);

// HACK's Eq. (4) approximation flops for one decode step with SE (§5.3):
// 10(d_h + L) per head per layer.
double decode_hack_approx_flops(const ModelConfig& m, double l);

// Extra flops when SE is disabled: recomputing Σ b' over K and V.
double decode_sum_recompute_flops(const ModelConfig& m, double l);

}  // namespace hack
