#include "attention/hack_attention.h"

#include <cmath>

#include "attention/layer_attention.h"
#include "tensor/half.h"
#include "tensor/ops.h"

namespace hack {
namespace {

void count_quantized(HackAttnStats* stats, std::size_t values) {
  if (stats != nullptr) {
    stats->quantized_values += static_cast<std::int64_t>(values);
  }
}

}  // namespace

HackKvState::HackKvState(std::size_t d_head, const HackAttentionConfig& config)
    : config_(config), d_head_(d_head) {
  HACK_CHECK(valid_partition_size(config.pi),
             "Π=" << config.pi << " must be a positive multiple of 16");
  HACK_CHECK(d_head % config.pi == 0,
             "Π=" << config.pi << " must divide d_head=" << d_head
                  << " (K partitions run along the head dimension)");
  HACK_CHECK(config.q_bits == 8 || config.q_bits == 4 || config.q_bits == 2,
             "unsupported q_bits");
  HACK_CHECK(config.kv_bits == 8 || config.kv_bits == 4 || config.kv_bits == 2,
             "unsupported kv_bits");
}

std::size_t HackKvState::quantized_v_rows() const {
  return v_init_ ? v_q_.rows : 0;
}

void HackKvState::append_tokens(const Matrix& k_new, const Matrix& v_new,
                                Rng& rng, HackAttnStats* stats) {
  HACK_CHECK(k_new.rows() == v_new.rows(), "K/V row count mismatch");
  HACK_CHECK(k_new.cols() == d_head_ && v_new.cols() == d_head_,
             "K/V head dim mismatch");
  HACK_CHECK(k_new.rows() > 0, "appending zero tokens");

  // K: each token's row partitions along the fixed head dimension, so new
  // tokens form whole new partitions and old metadata never changes (§5.3).
  QuantizedMatrix k_chunk =
      quantize(k_new, config_.kv_bits, config_.pi, QuantAxis::kRow,
               config_.rounding, rng, /*allow_ragged_tail=*/false,
               config_.threads);
  pack_storage(k_chunk);  // resident planes hold bit-packed codes
  count_quantized(stats, k_new.size());
  if (!k_init_) {
    k_ = std::move(k_chunk);
    k_sums_ = SumCache::build(k_);
    k_init_ = true;
  } else {
    k_sums_.append_rows(k_chunk);
    append_rows(k_, k_chunk);
  }

  // V: rows accumulate along the sequence dimension.
  if (config_.requant_elimination) {
    Matrix staged = v_new;
    staged.round_to_fp16();  // the tail buffer is an FP16 cache (§5.3)
    v_tail_fp16_ = v_tail_fp16_.empty() ? staged : vstack(v_tail_fp16_, staged);
    promote_full_partitions(rng, stats);
  } else {
    requantize_tail(v_new, rng, stats);
    promote_full_partitions(rng, stats);
  }
  tokens_ += k_new.rows();
}

void HackKvState::promote_full_partitions(Rng& rng, HackAttnStats* stats) {
  const std::size_t pi = config_.pi;
  if (config_.requant_elimination) {
    while (v_tail_fp16_.rows() >= pi) {
      const Matrix chunk = take_rows(v_tail_fp16_, 0, pi);
      QuantizedMatrix qchunk =
          quantize(chunk, config_.kv_bits, pi, QuantAxis::kCol,
                   config_.rounding, rng, /*allow_ragged_tail=*/false,
                   config_.threads);
      pack_storage(qchunk);
      count_quantized(stats, chunk.size());
      if (!v_init_) {
        v_q_ = std::move(qchunk);
        v_sums_ = SumCache::build(v_q_);
        v_init_ = true;
      } else {
        v_sums_.append_inner_groups(qchunk);
        append_inner_groups(v_q_, qchunk);
      }
      v_tail_fp16_ = v_tail_fp16_.rows() == pi
                         ? Matrix()
                         : take_rows(v_tail_fp16_, pi, v_tail_fp16_.rows());
    }
  } else {
    while (v_tail_q_init_ && v_tail_q_.rows >= pi) {
      HACK_CHECK(v_tail_q_.rows == pi,
                 "requantized tail grew past one partition");
      if (!v_init_) {
        v_q_ = v_tail_q_;
        v_sums_ = SumCache::build(v_q_);
        v_init_ = true;
      } else {
        v_sums_.append_inner_groups(v_tail_q_);
        append_inner_groups(v_q_, v_tail_q_);
      }
      v_tail_q_ = QuantizedMatrix{};
      v_tail_q_init_ = false;
    }
  }
}

void HackKvState::requantize_tail(const Matrix& rows, Rng& rng,
                                  HackAttnStats* stats) {
  const std::size_t pi = config_.pi;
  std::size_t consumed = 0;
  while (consumed < rows.rows()) {
    const std::size_t tail_rows = v_tail_q_init_ ? v_tail_q_.rows : 0;
    const std::size_t room = pi - tail_rows;
    const std::size_t take = std::min(room, rows.rows() - consumed);
    const Matrix incoming = take_rows(rows, consumed, consumed + take);
    consumed += take;

    Matrix block;
    if (v_tail_q_init_) {
      // The expensive path of Fig. 8: reconstruct the old values from their
      // codes, then requantize everything under the widened [min, max]. The
      // reconstruction error of each round compounds.
      block = vstack(dequantize(v_tail_q_, config_.threads), incoming);
      if (stats != nullptr) {
        ++stats->requant_events;
        stats->requant_values += static_cast<std::int64_t>(block.size());
      }
    } else {
      block = incoming;
    }
    v_tail_q_ = quantize(block, config_.kv_bits, pi, QuantAxis::kCol,
                         config_.rounding, rng, /*allow_ragged_tail=*/true,
                         config_.threads);
    pack_storage(v_tail_q_);
    v_tail_q_init_ = true;
    count_quantized(stats, block.size());
    if (v_tail_q_.rows >= pi) {
      promote_full_partitions(rng, stats);
    }
  }
}

std::size_t HackKvState::packed_kv_bytes() const {
  std::size_t total = 0;
  if (k_init_) total += k_.stored_bytes();
  if (v_init_) total += v_q_.stored_bytes();
  if (v_tail_q_init_) total += v_tail_q_.stored_bytes();
  return total;
}

std::size_t HackKvState::resident_code_bytes() const {
  std::size_t total = 0;
  if (k_init_) total += k_.codes.size();
  if (v_init_) total += v_q_.codes.size();
  if (v_tail_q_init_) total += v_tail_q_.codes.size();
  return total;
}

std::size_t HackKvState::sum_cache_bytes() const {
  if (!config_.summation_elimination) return 0;
  std::size_t total = 0;
  if (k_init_) total += k_sums_.storage_bytes();
  if (v_init_) total += v_sums_.storage_bytes();
  return total;
}

std::size_t HackKvState::fp16_tail_bytes() const {
  return v_tail_fp16_.size() * 2;
}

std::size_t HackKvState::wire_bytes() const {
  return packed_kv_bytes() + sum_cache_bytes() + fp16_tail_bytes();
}

QuantizedMatrix HackKvState::v_quantized_all() const {
  HACK_CHECK(v_init_ || v_tail_q_init_, "RQE-off V store is empty");
  if (!v_init_) {
    return v_tail_q_;
  }
  QuantizedMatrix v_all = v_q_;
  if (v_tail_q_init_) {
    const QuantizedMatrix& tail = v_tail_q_;
    // Rows are padded to whole bytes under packed storage, so concatenating
    // the tail's code bytes below the full-partition store stays row-exact.
    HACK_CHECK(v_all.storage_bits == tail.storage_bits,
               "V store / tail storage width mismatch");
    const std::size_t old_groups = v_all.group_count();
    const std::size_t new_groups = old_groups + 1;
    std::vector<float> mins(v_all.cols * new_groups);
    std::vector<float> scales(v_all.cols * new_groups);
    for (std::size_t o = 0; o < v_all.cols; ++o) {
      for (std::size_t g = 0; g < old_groups; ++g) {
        mins[o * new_groups + g] = v_all.mins[o * old_groups + g];
        scales[o * new_groups + g] = v_all.scales[o * old_groups + g];
      }
      mins[o * new_groups + old_groups] = tail.mins[o];
      scales[o * new_groups + old_groups] = tail.scales[o];
    }
    v_all.mins = std::move(mins);
    v_all.scales = std::move(scales);
    v_all.codes.insert(v_all.codes.end(), tail.codes.begin(),
                       tail.codes.end());
    v_all.rows += tail.rows;
    v_all.groups = new_groups;
  }
  return v_all;
}

void HackKvState::restore(std::size_t tokens, QuantizedMatrix k,
                          SumCache k_sums, QuantizedMatrix v_q,
                          SumCache v_sums, Matrix v_tail_fp16,
                          QuantizedMatrix v_tail_q, bool v_tail_q_present) {
  HACK_CHECK(tokens > 0, "restoring an empty state");
  HACK_CHECK(k.rows == tokens && k.cols == d_head_ &&
                 k.axis == QuantAxis::kRow && k.bits == config_.kv_bits &&
                 k.pi == config_.pi,
             "restored K section does not match this state's geometry");
  HACK_CHECK(k_sums.outer() == k.outer() && k_sums.groups() == k.group_count(),
             "restored K sums do not match the K section");
  const std::size_t v_q_rows = v_q.codes.empty() ? 0 : v_q.rows;
  if (v_q_rows > 0) {
    HACK_CHECK(v_q.cols == d_head_ && v_q.axis == QuantAxis::kCol &&
                   v_q.bits == config_.kv_bits && v_q.pi == config_.pi &&
                   v_q.rows % config_.pi == 0,
               "restored V section does not match this state's geometry");
    HACK_CHECK(v_sums.outer() == v_q.outer() &&
                   v_sums.groups() == v_q.group_count(),
               "restored V sums do not match the V section");
  }
  const std::size_t tail_rows =
      config_.requant_elimination
          ? v_tail_fp16.rows()
          : (v_tail_q_present ? v_tail_q.rows : 0);
  HACK_CHECK(v_q_rows + tail_rows == tokens,
             "restored V rows " << v_q_rows << "+" << tail_rows
                                << " do not cover " << tokens << " tokens");
  if (config_.requant_elimination) {
    HACK_CHECK(!v_tail_q_present,
               "RQE-on state cannot carry a requantized tail");
    HACK_CHECK(v_tail_fp16.empty() || v_tail_fp16.cols() == d_head_,
               "restored FP16 tail width mismatch");
  } else {
    HACK_CHECK(v_tail_fp16.empty(), "RQE-off state cannot carry an FP16 tail");
  }

  tokens_ = tokens;
  k_ = std::move(k);
  k_sums_ = std::move(k_sums);
  k_init_ = true;
  v_q_ = std::move(v_q);
  v_sums_ = std::move(v_sums);
  v_init_ = v_q_rows > 0;
  v_tail_fp16_ = std::move(v_tail_fp16);
  v_tail_q_ = std::move(v_tail_q);
  v_tail_q_init_ = v_tail_q_present;
  // Normalize to the resident representation: bit-packed code rows. No-op
  // when the wire reader already adopted the packed bytes (or kv_bits == 8).
  pack_storage(k_);
  if (v_init_) pack_storage(v_q_);
  if (v_tail_q_init_) pack_storage(v_tail_q_);
}

Matrix hack_attention(const Matrix& q, HackKvState& state,
                      const AttentionOptions& options, Rng& rng,
                      HackAttnStats* stats) {
  // Thin wrapper over the batched engine: one task, with the Q/P quantizer
  // sub-streams forked here in the same order the layer engine uses, so a
  // loop of per-head calls is bit-identical to one batched layer call.
  Rng q_rng = rng.fork();
  Rng p_rng = rng.fork();
  HeadAttentionTask task{&q, &state, &q_rng, &p_rng};
  std::vector<Matrix> outs;
  hack_attention_batched({&task, 1}, options, outs, stats,
                         state.config().threads);
  return std::move(outs[0]);
}

Matrix hack_attn_prefill(const Matrix& q, const Matrix& k, const Matrix& v,
                         HackKvState& state, Rng& rng, HackAttnStats* stats) {
  HACK_CHECK(state.tokens() == 0, "prefill requires a fresh state");
  state.append_tokens(k, v, rng, stats);
  return hack_attention(q, state, AttentionOptions{.causal = true,
                                                   .key_offset = 0},
                        rng, stats);
}

Matrix hack_attn_decode(const Matrix& q_row, const Matrix& k_row,
                        const Matrix& v_row, HackKvState& state, Rng& rng,
                        HackAttnStats* stats) {
  HACK_CHECK(q_row.rows() == 1 && k_row.rows() == 1 && v_row.rows() == 1,
             "decode processes one token at a time");
  state.append_tokens(k_row, v_row, rng, stats);
  return hack_attention(
      q_row, state,
      AttentionOptions{.causal = true, .key_offset = state.tokens() - 1}, rng,
      stats);
}

}  // namespace hack
