#include "workload/arrivals.h"

#include "base/check.h"

namespace hack {

std::vector<ArrivalRecord> generate_arrivals(const DatasetSpec& dataset,
                                             double rps, int count, Rng& rng) {
  HACK_CHECK(rps > 0.0, "arrival rate must be positive");
  HACK_CHECK(count > 0, "need at least one request");
  std::vector<ArrivalRecord> arrivals;
  arrivals.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.next_exponential(rps);
    arrivals.push_back({.time = t, .shape = sample_request(dataset, rng)});
  }
  return arrivals;
}

}  // namespace hack
