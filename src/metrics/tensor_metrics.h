// Numeric error metrics between matrices (quantization-fidelity checks).
#pragma once

#include "tensor/matrix.h"

namespace hack {

// max |a - b| over all entries.
float max_abs_diff(const Matrix& a, const Matrix& b);

// ||a - b||_F / ||b||_F (relative to the reference b).
double relative_l2(const Matrix& a, const Matrix& b);

// Cosine similarity of flattened matrices.
double cosine_similarity(const Matrix& a, const Matrix& b);

}  // namespace hack
