// Integer GEMM on quantization codes.
//
// Models the GPU INT8 tensor-core path HACK rides on: unsigned 8-bit codes
// multiplied with 32-bit accumulation. Two layouts cover attention's needs:
//   - NT: C = A * B^T where both A (M x Z) and B (N x Z) store the contracted
//     dimension contiguously per row (Q * K^T).
//   - NN: C = A * B where B is Z x N (P * V).
// Block-range variants compute the partial dot over one partition's z-range,
// which is how the per-group Eq. (4) correction is assembled.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace hack {

// View over a row-major code matrix (uint8 codes, values < 2^bits).
struct CodeView {
  const std::uint8_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
};

// dot over z in [z_begin, z_end) of A.row(i) and B.row(j) (NT layout).
std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end);

// C[i][j] += over the z-range: A (M x Z) row-major times B (Z x N) row-major.
// `out` is M x N row-major int32, accumulated into.
void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out);

// Same for the NT layout: B is N x Z.
void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out);

}  // namespace hack
