// NCCL-style point-to-point KV transfer.
//
// The paper moves KV between prefill and decode instances with NCCL (§6).
// A transfer is split into chunks that pipeline across the sender and
// receiver NICs: chunk i leaves the sender, then occupies the receiver while
// chunk i+1 leaves the sender. End-to-end time is governed by the slower of
// the two NICs plus one chunk of pipeline fill, and both NICs' busy horizons
// advance so concurrent transfers contend realistically.
//
// Two callers ride this model: the analytical cluster simulator
// (cluster/simulator.h) with modeled byte counts, and the real serving
// engine's disaggregated split (serving/disagg.h), whose byte counts are
// measured KV wire blobs (kvcache/kv_wire.h) — the transfer timing feeds its
// TTFT accounting.
#pragma once

#include <vector>

#include "netsim/fault.h"
#include "netsim/link.h"

namespace hack {

struct TransferResult {
  double start = 0.0;   // when the first chunk left the sender
  double finish = 0.0;  // when the last chunk arrived at the receiver
  double bytes = 0.0;

  double duration() const { return finish - start; }
};

TransferResult nccl_transfer(Nic& src, Nic& dst, double ready_time,
                             double bytes, int chunks = 8);

// One transfer attempt under fault injection. Dropped chunks consumed sender
// wire time but never reached the receiver; corrupted chunks arrived with
// flipped bits (the caller owns the payload — corrupt_entropy picks where);
// the recovery layer (serving/disagg.h) retransmits accordingly. `finish` is
// when the last chunk that *did* arrive landed (or the last send completed
// when everything dropped).
struct FaultyTransferResult {
  TransferResult result;
  // Per-chunk injected outcome, index-aligned with the attempt's chunks.
  std::vector<ChunkEvent> chunks;
  double fault_delay_s = 0.0;  // latency spikes + down-window waits, summed

  bool clean() const {
    for (const ChunkEvent& c : chunks) {
      if (c.fate != ChunkFate::kDelivered) return false;
    }
    return true;
  }
};

// nccl_transfer with a FaultModel in the path. A null `faults` (or an
// inactive model) reproduces nccl_transfer's timing exactly. Chunk fates are
// drawn in send order, so the model's ordinal stream maps 1:1 onto the
// chunks the wire actually carried.
FaultyTransferResult nccl_transfer_faulty(Nic& src, Nic& dst,
                                          double ready_time, double bytes,
                                          int chunks, FaultModel* faults);

}  // namespace hack
