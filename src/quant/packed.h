// Bit-exact packing of quantization codes into bytes.
//
// The paper transmits 2-bit codes over the network and stores them packed in
// the KV cache; compute unpacks them to INT8 first (§6). PackedBits is the
// wire/storage representation: n codes of b bits each, little-endian within a
// byte, each logical slice padded to a byte boundary by the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/check.h"

namespace hack {

// Bulk (de)packing over raw byte ranges — the engine room of PackedBits and
// of the KV codecs' parallel chunk loops, which carve a blob's byte-aligned
// code section into independent ranges. `count` codes of `bits_per_code`
// bits each (1/2/4/8); `bytes` must hold ceil(count * bits / 8) bytes.
//
// unpack_codes is the first step toward a fused packed-consume kernel: for 2-
// and 4-bit codes it runs an AVX2 shift/mask fast path (selected at runtime)
// that expands a 16-byte load into 64 / 32 codes in registers, with a scalar
// fallback elsewhere. pack_codes validates ranges and packs little-endian
// within each byte, matching PackedBits' layout.
void pack_codes(std::span<const std::uint8_t> codes, int bits_per_code,
                std::uint8_t* out_bytes);
void unpack_codes(std::span<const std::uint8_t> bytes, int bits_per_code,
                  std::size_t count, std::uint8_t* out_codes);

class PackedBits {
 public:
  PackedBits(int bits_per_code, std::size_t count);

  // Packs `codes` (each < 2^bits) into the internal byte buffer.
  static PackedBits pack(std::span<const std::uint8_t> codes,
                         int bits_per_code);

  // Adopts an already-packed byte range — e.g. a code section of the KV wire
  // format (kvcache/kv_wire.h) — without a pack/unpack round trip. `bytes`
  // must hold exactly ceil(count * bits / 8) bytes in PackedBits' layout
  // (little-endian within each byte).
  static PackedBits from_bytes(int bits_per_code, std::size_t count,
                               std::span<const std::uint8_t> bytes);

  // Unpacks all codes back into bytes (values < 2^bits) through the bulk
  // unpack_codes path.
  std::vector<std::uint8_t> unpack() const;

  std::uint8_t get(std::size_t index) const;
  void set(std::size_t index, std::uint8_t code);

  int bits_per_code() const { return bits_; }
  std::size_t count() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  int bits_;
  std::size_t count_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace hack
