// Prefill and decode replicas — the schedulable units of the cluster.
//
// A "replica" is one model instance spanning TP×PP GPUs (Table 3), with its
// proportional share of the cloud instance's NIC. Prefill replicas process
// requests FIFO (compute-bound, batch of one, as is standard for long
// prompts). Decode replicas run batched iterations: every iteration all
// resident requests advance one token; iteration time is the shared weight
// stream plus each request's marginal KV/dequant/approx/compute cost.
//
// These analytical replicas model whole fleets; the *real* engine's
// prefill/decode split lives in serving/disagg.h, which reuses the same Nic
// model so the simulator's and the real engine's KV transfers are timed by
// one link abstraction.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/kernel_cost.h"
#include "netsim/link.h"

namespace hack {

using RequestId = std::uint32_t;

struct PrefillReplica {
  int id = 0;
  Nic nic;
  double busy_until = 0.0;
  std::deque<RequestId> queue;
  double queued_tokens = 0.0;  // dispatch metric (§7.1: shortest queue)

  explicit PrefillReplica(int id_, double nic_gbps)
      : id(id_), nic(nic_gbps) {}
};

struct DecodeResident {
  RequestId request = 0;
  double context_len = 0.0;     // current L_KV
  std::size_t remaining = 0;    // output tokens still to generate
  double joined_at = 0.0;       // requests join at the next iteration start
};

struct DecodeReplica {
  int id = 0;
  Nic nic;
  double mem_budget_bytes = 0.0;   // capacity - weights - activation reserve
  double mem_reserved_bytes = 0.0; // admission-reserved KV bytes
  double peak_mem_reserved = 0.0;
  std::vector<DecodeResident> active;
  bool iteration_pending = false;
  double iteration_started = 0.0;
  double queued_tokens = 0.0;

  explicit DecodeReplica(int id_, double nic_gbps) : id(id_), nic(nic_gbps) {}

  bool has_memory_for(double bytes) const {
    return mem_reserved_bytes + bytes <= mem_budget_bytes;
  }
  void reserve(double bytes) {
    mem_reserved_bytes += bytes;
    if (mem_reserved_bytes > peak_mem_reserved) {
      peak_mem_reserved = mem_reserved_bytes;
    }
  }
  void release(double bytes) {
    mem_reserved_bytes -= bytes;
    HACK_CHECK(mem_reserved_bytes > -1.0, "negative decode memory reservation");
  }
};

}  // namespace hack
