// Fault-tolerant disaggregated serving: the recovery contract.
//
// The contract (docs/robustness.md): under any injected fault schedule that
// does not exhaust the retry budget, every request completes with a token
// stream bit-identical to the fault-free run, and the report's fault counters
// equal the FaultModel's injection ledger exactly. When the budget does
// exhaust (or the deadline passes, or the decode pool rejects), the request
// degrades to a local decode on the prefill worker — still bit-identical,
// because the fallback rehydrates the same blob the wire would have carried.
#include <gtest/gtest.h>

#include "model/tiny_transformer.h"
#include "serving/disagg.h"
#include "workload/corpus.h"

namespace hack {
namespace {

std::shared_ptr<const TinyModelWeights> small_weights() {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  return make_tiny_weights(tc);
}

DisaggConfig base_config() {
  DisaggConfig dc;
  dc.attn.pi = 32;
  dc.attn.kv_bits = 4;
  dc.attn.summation_elimination = true;
  dc.attn.requant_elimination = true;
  // Small chunks so every blob rides the wire in several pieces and a
  // scripted chunk fate is a *partial* loss.
  dc.transfer_chunk_bytes = 2048;
  return dc;
}

std::vector<ServingRequest> make_requests(std::size_t n, std::size_t vocab) {
  SyntheticCorpus corpus({.vocab = vocab}, 42);
  std::vector<ServingRequest> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    ServingRequest r;
    r.prompt = corpus.prompt(i, 40 + 7 * (i % 3));
    r.max_new_tokens = 6 + (i % 4);
    r.arrival_time_s = 0.01 * static_cast<double>(i);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

// The fault-free reference: same engine, perfect wire.
std::vector<std::vector<int>> reference_tokens(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const DisaggConfig& dc, const std::vector<ServingRequest>& reqs) {
  DisaggConfig clean = dc;
  clean.transfer_faults = {};
  DisaggEngine engine(weights, clean);
  const DisaggReport report = engine.run(reqs);
  std::vector<std::vector<int>> out;
  for (const DisaggRecord& rec : report.requests) {
    EXPECT_FALSE(rec.rejected);
    out.push_back(rec.generated);
  }
  return out;
}

// ------------------------------------------------------------- chaos contract

TEST(DisaggFaults, ChaosScheduleIsBitIdenticalAndLedgerExact) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  const auto reqs = make_requests(6, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  dc.transfer_faults.chunk_drop_prob = 0.25;
  dc.transfer_faults.chunk_corrupt_prob = 0.10;
  dc.transfer_faults.latency_spike_prob = 0.20;
  dc.transfer_faults.latency_spike_s = 0.005;
  dc.transfer_faults.seed = 0xC4A05;
  dc.retry.max_retries = 16;  // roomy: the schedule must not exhaust it
  DisaggEngine engine(weights, dc);
  const DisaggReport report = engine.run(reqs);
  const FaultStats& ledger = engine.fault_model().stats();

  // The schedule actually injected faults (otherwise this test is vacuous).
  ASSERT_GT(ledger.drops, 0u);
  ASSERT_GT(ledger.corruptions, 0u);

  // Every request completed over the wire path, bit-identical to the
  // fault-free run.
  ASSERT_EQ(report.requests.size(), reqs.size());
  std::size_t drops = 0, corruptions = 0, retries = 0;
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    const DisaggRecord& rec = report.requests[i];
    SCOPED_TRACE(testing::Message() << "request " << i);
    EXPECT_FALSE(rec.rejected);
    EXPECT_FALSE(rec.fallback_local);
    EXPECT_EQ(rec.generated, expected[i]);
    drops += rec.chunks_dropped;
    corruptions += rec.chunks_corrupted;
    retries += rec.retries;
  }

  // Report counters match the injection ledger exactly — nothing lost,
  // nothing double-counted.
  EXPECT_EQ(report.chunks_dropped_total, ledger.drops);
  EXPECT_EQ(report.chunks_corrupted_total, ledger.corruptions);
  EXPECT_EQ(report.chunks_dropped_total, drops);
  EXPECT_EQ(report.chunks_corrupted_total, corruptions);
  EXPECT_EQ(report.retries_total, retries);
  EXPECT_GT(report.retries_total, 0u);
  EXPECT_GT(report.retransmitted_bytes_total, 0u);
  // Corruption detection is the receiver CRC: at least one delivered-corrupt
  // blob was rejected, and never more rejections than injected corruptions.
  EXPECT_GT(report.crc_failures_total, 0u);
  EXPECT_LE(report.crc_failures_total, ledger.corruptions);
  EXPECT_EQ(report.fallbacks, 0u);
  EXPECT_EQ(report.deadline_misses, 0u);
}

TEST(DisaggFaults, SameSeedReplaysIdenticalEpisode) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.transfer_faults.chunk_drop_prob = 0.2;
  dc.transfer_faults.chunk_corrupt_prob = 0.1;
  dc.transfer_faults.seed = 99;
  dc.retry.max_retries = 16;
  const auto reqs = make_requests(4, 64);

  DisaggEngine a(weights, dc), b(weights, dc);
  const DisaggReport ra = a.run(reqs), rb = b.run(reqs);
  EXPECT_EQ(ra.retries_total, rb.retries_total);
  EXPECT_EQ(ra.chunks_dropped_total, rb.chunks_dropped_total);
  EXPECT_EQ(ra.chunks_corrupted_total, rb.chunks_corrupted_total);
  EXPECT_EQ(ra.crc_failures_total, rb.crc_failures_total);
  EXPECT_EQ(ra.retransmitted_bytes_total, rb.retransmitted_bytes_total);
  for (std::size_t i = 0; i < ra.requests.size(); ++i) {
    EXPECT_EQ(ra.requests[i].generated, rb.requests[i].generated);
    EXPECT_DOUBLE_EQ(ra.requests[i].backoff_s, rb.requests[i].backoff_s);
  }
}

// ------------------------------------------------------- scripted single faults

TEST(DisaggFaults, DroppedChunkRetransmitsOnlyTheMissingRange) {
  const auto weights = small_weights();
  const DisaggConfig dc = base_config();
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  engine.fault_model().script_fate(1, ChunkFate::kDropped);
  const DisaggRecord rec = engine.serve(reqs[0]);

  EXPECT_FALSE(rec.rejected);
  EXPECT_FALSE(rec.fallback_local);
  EXPECT_EQ(rec.generated, expected[0]);
  EXPECT_EQ(rec.chunks_dropped, 1u);
  EXPECT_EQ(rec.chunks_corrupted, 0u);
  EXPECT_EQ(rec.crc_failures, 0u);
  EXPECT_EQ(rec.retries, 1u);
  EXPECT_GT(rec.backoff_s, 0.0);
  // Chunk-level recovery: only the lost range went out again.
  EXPECT_GT(rec.retransmitted_bytes, 0u);
  EXPECT_LT(rec.retransmitted_bytes, rec.wire_bytes / 2);
}

TEST(DisaggFaults, CorruptedChunkFailsCrcAndRetransmitsTheBlob) {
  const auto weights = small_weights();
  const DisaggConfig dc = base_config();
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  engine.fault_model().script_fate(0, ChunkFate::kCorrupted);
  const DisaggRecord rec = engine.serve(reqs[0]);

  EXPECT_FALSE(rec.rejected);
  EXPECT_FALSE(rec.fallback_local);
  EXPECT_EQ(rec.generated, expected[0]);
  EXPECT_EQ(rec.chunks_corrupted, 1u);
  // The transport delivered every chunk; the receiver's CRC caught the flip
  // and the whole blob was re-sent from the pristine source.
  EXPECT_EQ(rec.chunks_dropped, 0u);
  EXPECT_EQ(rec.crc_failures, 1u);
  EXPECT_EQ(rec.retries, 1u);
  EXPECT_EQ(rec.retransmitted_bytes, rec.wire_bytes);
}

TEST(DisaggFaults, PrefillCrashReprefillsBitIdentically) {
  const auto weights = small_weights();
  const DisaggConfig dc = base_config();
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  engine.prefill_worker().inject_crash(0);
  const DisaggRecord rec = engine.serve(reqs[0]);

  EXPECT_FALSE(rec.rejected);
  EXPECT_EQ(rec.generated, expected[0]);
  EXPECT_EQ(rec.prefill_crashes, 1u);
  EXPECT_EQ(rec.decode_crashes, 0u);
  EXPECT_EQ(rec.retries, 1u);
  EXPECT_EQ(rec.retransmitted_bytes, 0u);  // the crash was before the wire
}

TEST(DisaggFaults, DecodeCrashLosesTheBufferAndRetransmits) {
  const auto weights = small_weights();
  const DisaggConfig dc = base_config();
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  engine.decode_worker().inject_crash(0);
  const DisaggRecord rec = engine.serve(reqs[0]);

  EXPECT_FALSE(rec.rejected);
  EXPECT_FALSE(rec.fallback_local);
  EXPECT_EQ(rec.generated, expected[0]);
  EXPECT_EQ(rec.decode_crashes, 1u);
  EXPECT_EQ(rec.retries, 1u);
  // The restarted worker's buffer is gone: full blob again.
  EXPECT_EQ(rec.retransmitted_bytes, rec.wire_bytes);
}

// --------------------------------------------------------- graceful degradation

TEST(DisaggFaults, RetryExhaustionFallsBackToLocalDecode) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.retry.max_retries = 2;
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  engine.decode_worker().inject_crash(0, /*times=*/10);
  const DisaggRecord rec = engine.serve(reqs[0]);

  EXPECT_FALSE(rec.rejected);
  EXPECT_TRUE(rec.fallback_local);
  // Still the exact same tokens: the fallback decodes the same blob with the
  // same backend seed the decode worker would have used.
  EXPECT_EQ(rec.generated, expected[0]);
  EXPECT_EQ(rec.retries, 2u);           // the whole budget went to recovery
  EXPECT_EQ(rec.decode_crashes, 3u);    // initial try + 2 retries, all crashed
  EXPECT_GT(rec.jct_s, 0.0);
}

TEST(DisaggFaults, ExhaustionWithFallbackDisabledDropsTheRequest) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.retry.max_retries = 1;
  dc.retry.fallback_local = false;

  DisaggEngine engine(weights, dc);
  engine.decode_worker().inject_crash(0, /*times=*/10);
  const DisaggRecord rec = engine.serve(make_requests(1, 64)[0]);
  EXPECT_TRUE(rec.rejected);
  EXPECT_FALSE(rec.fallback_local);
  EXPECT_TRUE(rec.generated.empty());
}

TEST(DisaggFaults, TransferDeadlineMissDegradesGracefully) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  // A deadline no wire can meet: even the clean transfer overruns it.
  dc.retry.transfer_deadline_s = 1e-12;
  const auto reqs = make_requests(1, 64);
  const auto expected = reference_tokens(weights, dc, reqs);

  DisaggEngine engine(weights, dc);
  const DisaggRecord rec = engine.serve(reqs[0]);
  EXPECT_FALSE(rec.rejected);
  EXPECT_TRUE(rec.deadline_missed);
  EXPECT_TRUE(rec.fallback_local);
  EXPECT_EQ(rec.generated, expected[0]);

  DisaggReport report = engine.run(reqs);
  EXPECT_EQ(report.deadline_misses, 1u);
  EXPECT_EQ(report.fallbacks, 1u);
}

TEST(DisaggFaults, PrefillCrashExhaustionRejectsOutright) {
  // With no prefill there is no blob, so there is nothing to degrade to.
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.retry.max_retries = 1;
  DisaggEngine engine(weights, dc);
  engine.prefill_worker().inject_crash(0, /*times=*/10);
  const DisaggRecord rec = engine.serve(make_requests(1, 64)[0]);
  EXPECT_TRUE(rec.rejected);
  EXPECT_EQ(rec.prefill_crashes, 2u);  // initial try + 1 retry
  EXPECT_TRUE(rec.generated.empty());
}

// ------------------------------------------------------------------ accounting

TEST(DisaggFaults, ReportSurfacesDecodePoolPressure) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.block_tokens = 16;
  dc.decode_kv_blocks = 8;
  const auto reqs = make_requests(3, 64);

  DisaggEngine engine(weights, dc);
  const DisaggReport report = engine.run(reqs);
  const BlockAllocator* pool = engine.decode_worker().allocator();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(report.decode_failed_allocations, pool->failed_allocations());
  EXPECT_EQ(report.decode_min_free_watermark, pool->min_free_watermark());
  // Requests decoded one at a time: the watermark shows the deepest single
  // reservation, and everything was released afterwards.
  EXPECT_LT(report.decode_min_free_watermark, 8u);
  EXPECT_EQ(pool->blocks_in_use(), 0u);
  // No paged cache observed: the counter stays zero.
  EXPECT_EQ(report.decode_oom_appends, 0u);
}

TEST(DisaggFaults, BackoffIsDeterministicPerSeed) {
  const auto weights = small_weights();
  DisaggConfig dc = base_config();
  dc.retry.jitter_seed = 5;
  const auto reqs = make_requests(1, 64);

  DisaggEngine a(weights, dc);
  a.fault_model().script_fate(0, ChunkFate::kDropped);
  DisaggEngine b(weights, dc);
  b.fault_model().script_fate(0, ChunkFate::kDropped);
  const double backoff_a = a.serve(reqs[0]).backoff_s;
  const double backoff_b = b.serve(reqs[0]).backoff_s;
  EXPECT_GT(backoff_a, 0.0);
  EXPECT_DOUBLE_EQ(backoff_a, backoff_b);

  DisaggConfig other = dc;
  other.retry.jitter_seed = 6;
  DisaggEngine c(weights, other);
  c.fault_model().script_fate(0, ChunkFate::kDropped);
  EXPECT_NE(c.serve(reqs[0]).backoff_s, backoff_a);
}

}  // namespace
}  // namespace hack
