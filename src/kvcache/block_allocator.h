// Fixed-pool block allocator — the vLLM PagedAttention memory substrate.
//
// GPU KV memory is carved into equal-size blocks; sequences own lists of
// block ids and blocks are reference-counted so prefix-shared sequences can
// point at the same physical block (KV sharing across requests, §1). The
// allocator never over-commits: alloc fails when the pool is exhausted,
// which is the condition that triggers CPU swap in the disaggregated flow.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace hack {

using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = UINT32_MAX;

class BlockAllocator {
 public:
  BlockAllocator(std::size_t num_blocks, std::size_t block_bytes);

  std::size_t num_blocks() const { return ref_counts_.size(); }
  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t blocks_free() const { return free_list_.size(); }
  std::size_t blocks_in_use() const { return num_blocks() - blocks_free(); }
  std::size_t bytes_in_use() const { return blocks_in_use() * block_bytes_; }
  std::size_t peak_blocks_in_use() const { return peak_in_use_; }

  // Free-block watermark: the lowest blocks_free() ever observed. The serving
  // scheduler's admission control reads this to see how close the pool came
  // to exhaustion under a workload.
  std::size_t min_free_watermark() const { return min_free_; }

  // Cumulative allocate() calls that failed on an empty pool (the OOM signal
  // that triggers CPU swap / admission backpressure in the disaggregated
  // flow).
  std::size_t failed_allocations() const { return failed_allocations_; }

  bool can_allocate(std::size_t count) const { return count <= blocks_free(); }

  // Allocates one block with refcount 1; returns kInvalidBlock when full.
  BlockId allocate();

  // Increments the refcount (prefix sharing / copy-on-write fork).
  void add_ref(BlockId id);

  // Decrements the refcount; the block returns to the free list at zero.
  void release(BlockId id);

  int ref_count(BlockId id) const;

 private:
  std::size_t block_bytes_;
  std::vector<int> ref_counts_;
  std::vector<BlockId> free_list_;
  std::size_t peak_in_use_ = 0;
  std::size_t min_free_ = 0;
  std::size_t failed_allocations_ = 0;
};

}  // namespace hack
