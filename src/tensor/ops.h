// Dense float matrix operations used by the reference (un-quantized) paths.
#pragma once

#include "tensor/matrix.h"

namespace hack {

// C = A * B. A is MxZ, B is ZxN. Large products (>= ~2M MACs, M >= 2) fan
// their output rows out over the shared ThreadPool; each row runs the same
// serial inner loop, so results are bit-identical to the serial path for any
// pool size (single-row decode GEMVs never split).
Matrix matmul(const Matrix& a, const Matrix& b);

// C = A * B^T. A is MxZ, B is NxZ. Attention computes Q K^T in this form.
// Row-parallel above the same threshold as matmul, same bit-identity.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

// Row-wise softmax, numerically stabilized by the row max (Eq. 3).
Matrix softmax_rows(const Matrix& scores);

// Row-wise softmax over the leading `valid` entries of each row only; the
// remainder of the row is zeroed. Used for causal masking where row i of the
// score matrix may attend to keys [0, offset + i].
Matrix softmax_rows_causal(const Matrix& scores, std::size_t key_offset);

// a + b, a - b, elementwise (shape-checked).
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);

// alpha * a.
Matrix scale(const Matrix& a, float alpha);

// Appends the rows of `extra` below `base` (column counts must match).
Matrix vstack(const Matrix& base, const Matrix& extra);

// Takes rows [begin, end) of a.
Matrix take_rows(const Matrix& a, std::size_t begin, std::size_t end);

// Takes columns [begin, end) of a.
Matrix take_cols(const Matrix& a, std::size_t begin, std::size_t end);

}  // namespace hack
