#include <gtest/gtest.h>

#include "base/check.h"
#include "workload/arrivals.h"
#include "workload/corpus.h"
#include "workload/dataset.h"

namespace hack {
namespace {

TEST(Datasets, Table4Zoo) {
  ASSERT_EQ(dataset_zoo().size(), 4u);
  EXPECT_EQ(dataset_by_name("IMDb").input.avg, 315);
  EXPECT_EQ(dataset_by_name("Cocktail").input.max, 28800);
  EXPECT_EQ(dataset_by_name("HumanEval").output.avg, 139);
  EXPECT_THROW(dataset_by_name("SQuAD"), CheckError);
}

TEST(Datasets, LongSequenceClassification) {
  EXPECT_FALSE(dataset_by_name("IMDb").long_sequence());
  EXPECT_TRUE(dataset_by_name("arXiv").long_sequence());
  EXPECT_TRUE(dataset_by_name("Cocktail").long_sequence());
  EXPECT_FALSE(dataset_by_name("HumanEval").long_sequence());
}

TEST(SampleLength, RespectsBounds) {
  Rng rng(1);
  for (const DatasetSpec& d : dataset_zoo()) {
    for (int i = 0; i < 2000; ++i) {
      const double in_len = sample_length(d.input, rng);
      EXPECT_GE(in_len, d.input.min) << d.name;
      EXPECT_LE(in_len, d.input.max) << d.name;
    }
  }
}

TEST(SampleLength, MeanNearAverage) {
  Rng rng(2);
  for (const DatasetSpec& d : dataset_zoo()) {
    double sum = 0.0;
    constexpr int kN = 8000;
    for (int i = 0; i < kN; ++i) {
      sum += sample_length(d.input, rng);
    }
    const double mean = sum / kN;
    // Truncation shifts the mean; stay within 25% of the published average.
    EXPECT_NEAR(mean, d.input.avg, 0.25 * d.input.avg) << d.name;
  }
}

TEST(Arrivals, PoissonRateMatches) {
  Rng rng(3);
  const auto arrivals =
      generate_arrivals(dataset_by_name("IMDb"), 2.0, 4000, rng);
  ASSERT_EQ(arrivals.size(), 4000u);
  const double span = arrivals.back().time;
  EXPECT_NEAR(4000.0 / span, 2.0, 0.15);
  // Strictly increasing times.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i].time, arrivals[i - 1].time);
  }
}

TEST(Arrivals, DeterministicPerSeed) {
  Rng r1(4), r2(4);
  const auto a = generate_arrivals(dataset_by_name("arXiv"), 0.1, 50, r1);
  const auto b = generate_arrivals(dataset_by_name("arXiv"), 0.1, 50, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].shape.input_tokens, b[i].shape.input_tokens);
  }
}

TEST(Corpus, DeterministicPrompts) {
  SyntheticCorpus c1({.vocab = 128}, 9);
  SyntheticCorpus c2({.vocab = 128}, 9);
  EXPECT_EQ(c1.prompt(3, 100), c2.prompt(3, 100));
  EXPECT_NE(c1.prompt(3, 100), c1.prompt(4, 100));
}

TEST(Corpus, TokensWithinVocab) {
  SyntheticCorpus corpus({.vocab = 64}, 10);
  const auto prompt = corpus.prompt(0, 500);
  ASSERT_EQ(prompt.size(), 500u);
  for (const int tok : prompt) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 64);
  }
}

TEST(Corpus, MotifsCreateRepetition) {
  // With motif replay, prompts repeat spans; a simple bigram-repeat count
  // should far exceed an i.i.d. baseline.
  SyntheticCorpus corpus({.vocab = 256, .motif_probability = 0.5}, 11);
  const auto prompt = corpus.prompt(0, 2000);
  std::size_t repeats = 0;
  for (std::size_t i = 2; i < prompt.size(); ++i) {
    for (std::size_t j = 1; j < i; ++j) {
      if (prompt[i] == prompt[j] && prompt[i - 1] == prompt[j - 1]) {
        ++repeats;
        break;
      }
    }
  }
  EXPECT_GT(repeats, 1000u);
}

}  // namespace
}  // namespace hack
