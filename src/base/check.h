// Lightweight invariant checking for the hack library.
//
// HACK_CHECK(cond, msg) throws hack::CheckError when `cond` is false. Checks
// guard API contracts (shape mismatches, invalid partition sizes) and stay
// enabled in release builds: every caller of this library is a simulator or a
// benchmark harness where a silent shape bug costs far more than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hack {

// Error thrown when a library invariant or precondition is violated.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace hack

#define HACK_CHECK(cond, ...)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::std::ostringstream hack_check_os_;                             \
      hack_check_os_ << __VA_ARGS__;                                   \
      ::hack::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                   hack_check_os_.str());              \
    }                                                                  \
  } while (false)
