#include <gtest/gtest.h>

#include "base/rng.h"
#include "quant/packed.h"

namespace hack {
namespace {

TEST(PackedBits, SizeFormula) {
  EXPECT_EQ(PackedBits(2, 4).byte_size(), 1u);
  EXPECT_EQ(PackedBits(2, 5).byte_size(), 2u);
  EXPECT_EQ(PackedBits(4, 2).byte_size(), 1u);
  EXPECT_EQ(PackedBits(8, 3).byte_size(), 3u);
  EXPECT_EQ(PackedBits(1, 8).byte_size(), 1u);
  EXPECT_EQ(PackedBits(1, 9).byte_size(), 2u);
}

TEST(PackedBits, RoundTrip2Bit) {
  const std::vector<std::uint8_t> codes = {0, 1, 2, 3, 3, 2, 1, 0, 2};
  const PackedBits packed = PackedBits::pack(codes, 2);
  EXPECT_EQ(packed.unpack(), codes);
}

TEST(PackedBits, RoundTrip4Bit) {
  std::vector<std::uint8_t> codes;
  for (int i = 0; i < 16; ++i) codes.push_back(static_cast<std::uint8_t>(i));
  const PackedBits packed = PackedBits::pack(codes, 4);
  EXPECT_EQ(packed.unpack(), codes);
}

TEST(PackedBits, RoundTripRandom) {
  Rng rng(33);
  for (const int bits : {1, 2, 4, 8}) {
    std::vector<std::uint8_t> codes(257);
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
    }
    const PackedBits packed = PackedBits::pack(codes, bits);
    EXPECT_EQ(packed.unpack(), codes) << "bits=" << bits;
  }
}

TEST(PackedBits, GetSetIndividual) {
  PackedBits packed(2, 10);
  packed.set(3, 2);
  packed.set(9, 1);
  EXPECT_EQ(packed.get(3), 2);
  EXPECT_EQ(packed.get(9), 1);
  EXPECT_EQ(packed.get(0), 0);
  packed.set(3, 0);
  EXPECT_EQ(packed.get(3), 0);
  EXPECT_EQ(packed.get(9), 1);  // untouched
}

TEST(PackedBits, RejectsOutOfRangeCode) {
  PackedBits packed(2, 4);
  EXPECT_THROW(packed.set(0, 4), CheckError);
}

TEST(PackedBits, RejectsOutOfRangeIndex) {
  PackedBits packed(2, 4);
  EXPECT_THROW(packed.get(4), CheckError);
  EXPECT_THROW(packed.set(4, 0), CheckError);
}

TEST(PackedBits, RejectsInvalidWidth) {
  EXPECT_THROW(PackedBits(3, 4), CheckError);
  EXPECT_THROW(PackedBits(16, 4), CheckError);
}

TEST(PackedBits, CompressionRatioIs8OverBits) {
  // 1024 2-bit codes: 256 bytes vs 1024 unpacked.
  const PackedBits packed(2, 1024);
  EXPECT_EQ(packed.byte_size(), 256u);
}

TEST(PackedBits, BulkUnpackMatchesPerIndexGet) {
  // The batch path (AVX2 shift/mask for 2-/4-bit where available, scalar
  // otherwise) must agree with the bit-addressed get() for every code,
  // across sizes that exercise full vector blocks, vector remainders, and
  // trailing partial bytes.
  Rng rng(91);
  for (const int bits : {1, 2, 4, 8}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{15}, std::size_t{64}, std::size_t{127},
          std::size_t{128}, std::size_t{1000}, std::size_t{4099}}) {
      std::vector<std::uint8_t> codes(count);
      for (auto& c : codes) {
        c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
      }
      const PackedBits packed = PackedBits::pack(codes, bits);
      const std::vector<std::uint8_t> bulk = packed.unpack();
      ASSERT_EQ(bulk.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(bulk[i], packed.get(i)) << "bits=" << bits << " count="
                                          << count << " i=" << i;
        ASSERT_EQ(bulk[i], codes[i]);
      }
    }
  }
}

TEST(PackedBits, FreeFunctionsRoundTripSubranges) {
  // pack_codes/unpack_codes operate on raw byte ranges — the codecs carve a
  // blob's code section into byte-aligned chunks and (de)pack them
  // independently. Packing two halves separately must equal packing whole.
  Rng rng(17);
  for (const int bits : {2, 4}) {
    const std::size_t per_byte = 8 / static_cast<std::size_t>(bits);
    const std::size_t count = 512 + per_byte;  // split lands on a byte edge
    std::vector<std::uint8_t> codes(count);
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
    }
    std::vector<std::uint8_t> whole((count * bits + 7) / 8);
    pack_codes(codes, bits, whole.data());

    const std::size_t half_codes = (count / 2 / per_byte) * per_byte;
    std::vector<std::uint8_t> split(whole.size());
    pack_codes(std::span(codes).subspan(0, half_codes), bits, split.data());
    pack_codes(std::span(codes).subspan(half_codes), bits,
               split.data() + half_codes * bits / 8);
    EXPECT_EQ(split, whole) << "bits=" << bits;

    std::vector<std::uint8_t> out(count);
    unpack_codes(std::span(split).subspan(half_codes * bits / 8), bits,
                 count - half_codes, out.data() + half_codes);
    unpack_codes(split, bits, half_codes, out.data());
    EXPECT_EQ(out, codes) << "bits=" << bits;
  }
}

TEST(PackedBits, BulkPackRejectsOutOfRangeCode) {
  const std::vector<std::uint8_t> codes = {1, 4};
  std::vector<std::uint8_t> bytes(1);
  EXPECT_THROW(pack_codes(codes, 2, bytes.data()), CheckError);
}

}  // namespace
}  // namespace hack
