#include <gtest/gtest.h>

#include "base/rng.h"
#include "codec/bitstream.h"

namespace hack {
namespace {

TEST(BitStream, RoundTripMixedWidths) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xdead, 16);
  w.write_bit(true);
  w.write_bits(0, 0);  // no-op
  w.write_bits(12345, 20);
  const auto bytes = w.finish();

  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xdeadu);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_bits(20), 12345u);
}

TEST(BitStream, RandomRoundTrip) {
  Rng rng(1);
  std::vector<std::pair<std::uint64_t, int>> values;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(57));
    const std::uint64_t v =
        width == 64 ? rng.next_u64() : rng.next_u64() & ((1ULL << width) - 1);
    values.emplace_back(v, width);
    w.write_bits(v, width);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [v, width] : values) {
    EXPECT_EQ(r.read_bits(width), v);
  }
}

TEST(BitStream, UnaryRoundTrip) {
  BitWriter w;
  for (std::uint32_t v : {0u, 1u, 5u, 31u, 100u}) {
    w.write_unary(v);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (std::uint32_t v : {0u, 1u, 5u, 31u, 100u}) {
    EXPECT_EQ(r.read_unary(), v);
  }
}

TEST(BitStream, BitCountMatchesWrites) {
  BitWriter w;
  w.write_bits(1, 3);
  w.write_bits(1, 13);
  EXPECT_EQ(w.bit_count(), 16u);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 2u);
}

TEST(BitStream, FinishPadsToByte) {
  BitWriter w;
  w.write_bits(0b1, 1);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b1);
}

TEST(BitStream, ReaderExhaustionThrows) {
  BitWriter w;
  w.write_bits(3, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(8), 3u);  // padding zeros readable within the byte
  EXPECT_THROW(r.read_bits(1), CheckError);
}

TEST(BitStream, ValueWidthValidation) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(4, 2), CheckError);   // 4 needs 3 bits
  EXPECT_THROW(w.write_bits(0, 58), CheckError);  // width cap
}

TEST(Zigzag, RoundTrip) {
  for (const std::int32_t v :
       {0, -1, 1, -2, 2, 100, -100, 1 << 20, -(1 << 20)}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Zigzag, SmallMagnitudeSmallCode) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

}  // namespace
}  // namespace hack
