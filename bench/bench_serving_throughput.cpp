// Serving-shape throughput of the batched multi-head HQ-attention engine:
// per-layer prefill and decode latency / tokens-per-second at realistic GQA
// shapes (default 32 query heads over 8 KV heads, d_head 128), comparing one
// HackLayerKvState batched launch against the pre-batching per-head loop
// (append per KV head, then one hack_attention per query head).
//
// Emits one JSON line per (context, threads) leg:
//
//   {"bench":"serving_layer_prefill","heads":32,"kv_heads":8,"d_head":128,
//    "context":4096,"threads":4,"lanes":4,"batched_ms":...,
//    "per_head_1t_ms":...,"batched_tokens_per_s":...,
//    "speedup_vs_per_head_1t":...,"wire_bytes":...}
//   {"bench":"serving_layer_decode",...,"batched_ms":...,"per_head_1t_ms":...,
//    "batched_tokens_per_s":...,"speedup_vs_per_head_1t":...}
//
// `per_head_1t_ms` is the serial per-head loop (threads=1) — the honest
// baseline for "what one layer cost before batching". `speedup_vs_per_head_1t`
// therefore folds in both the head-level parallelism (bounded by the machine's
// cores / HACK_NUM_THREADS) and the fused-launch savings; `lanes` records how
// many pool lanes actually existed so a 1-core CI box is readable as such.
//
// `--long` runs the streaming-softmax long-context sweep instead (default
// ctx 4096/16384 at 32Q/8KV heads, d_head 128, auto threads): tiled prefill
// tokens/s plus the modeled peak attention working-set bytes per layer of
// the tiled engine vs the PR 2 untiled engine (full per-head score buffers,
// 96 MiB head chunking), one JSON line per context:
//
//   {"bench":"serving_longctx_prefill","context":16384,...,"tile":1600,
//    "batched_ms":...,"batched_tokens_per_s":...,"tiled_ws_bytes":...,
//    "untiled_ws_bytes":...,"ws_shrink":...,"peak_rss_mib":...}
//
// `--continuous` runs the end-to-end serving comparison instead: N requests
// from an open-loop arrival process (Poisson or trace replay) through the
// full tiny-transformer model (shared weights, HACK batched layer backends),
// once as a serial per-request loop (FCFS queue, one TinyTransformer at a
// time) and once through the continuous-batching ServingEngine. One JSON
// line per leg plus a ratio line:
//
//   {"bench":"serving_continuous","mode":"serial"|"continuous","requests":8,
//    "heads":32,...,"lanes":4,"decode_tokens_per_s":...,"tokens_per_s":...,
//    "ttft_p50_s":...,"ttft_p99_s":...,"tbt_p50_s":...,"jct_p99_s":...,
//    "goodput_rps":...,"kv_bytes_admitted":...,"weights_mib":...}
//   {"bench":"serving_continuous_speedup","decode_speedup":...,
//    "jct_p50_speedup":...}
//
// `--tiered` runs the same continuous workload against a deliberately small
// KV block pool, twice: once with the worst-case FCFS reservation policy
// ("fcfs") and once with the tiered KV memory manager ("tiered" —
// kvcache/tier_manager.h: reserve-on-append admission, priority preemption
// to a compressed kv_wire far tier, speculative prefetch). Arrival stamps
// are zeroed so the swap schedule is deterministic; both constrained legs
// must emit tokens bit-identical to an unconstrained reference run. One
// JSON line per leg plus a comparison line:
//
//   {"bench":"serving_tiered","mode":"fcfs"|"tiered","requests":6,
//    "pool_blocks":10,"completed":...,"peak_running":...,"tokens_per_s":...,
//    "evictions":...,"rehydrations":...,"prefetch_hits":...,
//    "prefetch_misses":...,"swap_out_bytes":...,"swap_in_bytes":...,
//    "far_bytes_peak":...,"swap_in_work_ms":...,"swap_in_stall_ms":...}
//   {"bench":"serving_tiered_compare","fcfs_peak_running":...,
//    "tiered_peak_running":...,"concurrency_gain":...,
//    "prefetch_overlap_ratio":...,"prefetch_overlap_ge_half":true,
//    "bit_identical":true}
//
// `--disagg` runs the disaggregated prefill→decode split (serving/disagg.h)
// instead, once per KV bit-width {2,4,8}: every request prefills on one
// worker, ships its serialized KV wire blob (kvcache/kv_wire.h) over the
// netsim NCCL-style link, and decodes on the other — with the decode tokens
// checked bit-for-bit against a solo single-node run. One JSON line per
// bit-width with the measured wire bytes by section and the handoff timing:
//
//   {"bench":"serving_disagg","kv_bits":2,"requests":4,...,
//    "wire_bytes_total":...,"fp16_kv_bytes_total":...,"wire_vs_fp16":...,
//    "wire_codes_bytes":...,"wire_metadata_bytes":...,"wire_sums_bytes":...,
//    "wire_tail_bytes":...,"transfer_ms_mean":...,"ttft_p50_s":...,
//    "retries":...,"chunks_dropped":...,"chunks_corrupted":...,
//    "crc_failures":...,"retransmitted_bytes":...,"fallbacks":...,
//    "deadline_misses":...,"failed_allocations":...,"min_free_watermark":...,
//    "oom_appends":...,"bit_identical":true}
//
// `--drop=`/`--corrupt=` inject that probability of chunk loss/corruption on
// the disagg transfer path (seeded by `--fault-seed=`, so a chaos leg is
// reproducible); the recovery layer must still deliver bit_identical=true.
//
// `--fleet=NxM` runs the multi-replica fleet (serving/fleet.h) instead: N
// prefill × M decode workers, health-gated dispatch (`--policy=` picks the
// decode policy), per-link fault injection from the same --drop/--corrupt
// knobs, and `--kill=worker:request[@token],...` schedules worker crashes
// (e.g. --kill=prefill0:1,decode1:2 crashes prefill0 at request 1 and
// decode1 at request 2; decode1:2@6 crashes decode1 mid-decode, after
// request 2's sixth generated token). `--checkpoint-every=K` turns on the
// mid-decode checkpoint cadence: every K decoded tokens the decode worker
// cuts an incremental compressed-KV delta and ships it back to the request's
// prefill worker, so a mid-decode crash resumes on a replica from base+delta
// instead of re-prefilling. One fleet JSON line with throughput, tail
// latency, the failover/reroute/shed counters, and the checkpoint economics
// (delta bytes per checkpoint, resume rehydration latency, migrations),
// plus one line per worker:
//
//   {"bench":"serving_fleet","prefill_workers":2,"decode_workers":2,
//    "policy":"round_robin","kills":"prefill0:1,decode1:2@6","tokens_per_s":...,
//    "ttft_p50_s":...,"ttft_p99_s":...,"reroutes":...,"prefill_failovers":...,
//    "shed":...,"re_prefills":...,"re_prefills_from_decode":0,
//    "health_transitions":...,"checkpoint_every":4,"checkpoints":...,
//    "checkpoint_bytes":...,"delta_bytes_per_checkpoint":...,
//    "checkpoint_failures":...,"resumes":...,"resume_latency_mean_s":...,
//    "tokens_replayed":...,"tokens_recomputed":...,"migrations":...,
//    "drains":...,"bit_identical":true}
//   {"bench":"serving_fleet_worker","worker":"decode1","role":"decode",
//    "served":...,"crashes":...,"transfer_failures":...,"drains":...,
//    "utilization":...,"final_health":"down"}
//
// Usage: bench_serving_throughput [--quick] [--long|--continuous|--tiered|
//          --disagg]
//          [--fleet=NxM] [--kill=worker:request[@token],...]
//          [--policy=round_robin|least_bytes|free_blocks]
//          [--checkpoint-every=0]
//          [--context=1024,4096] [--threads=1,2,4] [--heads=32] [--kv-heads=8]
//          [--requests=8] [--input=128] [--output=32] [--layers=2]
//          [--arrival=poisson:<rps>|trace:<file>] [--max-active=8]
//          [--chunk=128] [--kv-blocks=0] [--chunk-bytes=1048576]
//          [--drop=0.0] [--corrupt=0.0] [--fault-seed=24301]
//   --quick shrinks to context 512 / threads {1,2} (or input 48 / output 12
//   in --continuous and --disagg modes) for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "attention/hack_attention.h"
#include "attention/layer_attention.h"
#include "base/thread_pool.h"
#include "metrics/stats.h"
#include "model/tiny_transformer.h"
#include "serving/disagg.h"
#include "serving/engine.h"
#include "serving/fleet.h"
#include "tensor/ops.h"
#include "workload/trace.h"

namespace {

using namespace hack;

struct Shape {
  std::size_t heads = 32;
  std::size_t kv_heads = 8;
  std::size_t d_head = 128;
  std::size_t pi = 64;
};

struct Inputs {
  Matrix q_all, k_all, v_all;
};

Inputs make_inputs(const Shape& s, std::size_t tokens, std::uint64_t seed) {
  Rng rng(seed);
  return {Matrix::random_gaussian(tokens, s.heads * s.d_head, rng),
          Matrix::random_gaussian(tokens, s.kv_heads * s.d_head, rng),
          Matrix::random_gaussian(tokens, s.kv_heads * s.d_head, rng)};
}

HackAttentionConfig make_config(const Shape& s, int threads) {
  HackAttentionConfig cfg;
  cfg.pi = s.pi;
  cfg.threads = threads;
  return cfg;
}

double time_best_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

// The pre-batching model path for one layer: per-KV-head states appended and
// attended in a serial query-head loop.
struct PerHeadLayer {
  Shape shape;
  std::vector<HackKvState> states;
  std::vector<Rng> rngs;

  PerHeadLayer(const Shape& s, const HackAttentionConfig& cfg,
               std::uint64_t seed)
      : shape(s) {
    for (std::size_t h = 0; h < s.kv_heads; ++h) {
      states.emplace_back(s.d_head, cfg);
      rngs.emplace_back(seed + h);
    }
  }

  void append(const Inputs& in) {
    const std::size_t d = shape.d_head;
    for (std::size_t h = 0; h < shape.kv_heads; ++h) {
      states[h].append_tokens(take_cols(in.k_all, h * d, (h + 1) * d),
                              take_cols(in.v_all, h * d, (h + 1) * d),
                              rngs[h]);
    }
  }

  void attend(const Inputs& in, std::size_t key_offset) {
    const std::size_t d = shape.d_head;
    const std::size_t group = shape.heads / shape.kv_heads;
    for (std::size_t g = 0; g < shape.kv_heads; ++g) {
      for (std::size_t sub = 0; sub < group; ++sub) {
        const std::size_t head = g * group + sub;
        const Matrix o = hack_attention(
            take_cols(in.q_all, head * d, (head + 1) * d), states[g],
            {.causal = true, .key_offset = key_offset}, rngs[g]);
        (void)o;
      }
    }
  }
};

void run_prefill_legs(const Shape& shape, std::size_t context,
                      const std::vector<int>& thread_legs) {
  const Inputs in = make_inputs(shape, context, 1234);
  const int reps = context >= 2048 ? 1 : 2;
  const std::size_t lanes = ThreadPool::global().lanes();

  // Serial per-head baseline, measured once per context.
  const HackAttentionConfig cfg_1t = make_config(shape, 1);
  const double per_head_1t_ms = time_best_ms(
      [&] {
        PerHeadLayer layer(shape, cfg_1t, 7);
        layer.append(in);
        layer.attend(in, 0);
      },
      reps);

  std::size_t wire_bytes = 0;
  std::size_t resident_code_bytes = 0;
  for (const int threads : thread_legs) {
    const HackAttentionConfig cfg = make_config(shape, threads);
    const double batched_ms = time_best_ms(
        [&] {
          HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads,
                                 cfg, 7);
          (void)layer.prefill(in.q_all, in.k_all, in.v_all);
          wire_bytes = layer.wire_bytes();
          resident_code_bytes = layer.resident_code_bytes();
        },
        reps);
    // The code planes are bit-packed in memory; the unpacked figure is what
    // the same planes held when resident storage was one byte per code.
    const std::size_t unpacked_code_bytes =
        resident_code_bytes * 8 / static_cast<std::size_t>(cfg.kv_bits);
    std::printf(
        "{\"bench\":\"serving_layer_prefill\",\"heads\":%zu,\"kv_heads\":%zu,"
        "\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,\"threads\":%d,"
        "\"lanes\":%zu,\"batched_ms\":%.2f,\"per_head_1t_ms\":%.2f,"
        "\"batched_tokens_per_s\":%.1f,\"speedup_vs_per_head_1t\":%.2f,"
        "\"wire_bytes\":%zu,\"resident_code_bytes\":%zu,"
        "\"unpacked_code_bytes\":%zu}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, threads,
        lanes, batched_ms, per_head_1t_ms,
        1000.0 * static_cast<double>(context) / batched_ms,
        per_head_1t_ms / batched_ms, wire_bytes, resident_code_bytes,
        unpacked_code_bytes);
    std::fflush(stdout);
  }
}

void run_decode_legs(const Shape& shape, std::size_t context,
                     const std::vector<int>& thread_legs) {
  const std::size_t steps = 16;
  const std::size_t lanes = ThreadPool::global().lanes();

  // Per-head baseline: prefill untimed, then `steps` single-token decodes.
  const Inputs prompt = make_inputs(shape, context, 1234);
  const HackAttentionConfig cfg_1t = make_config(shape, 1);
  PerHeadLayer per_head(shape, cfg_1t, 7);
  per_head.append(prompt);
  std::vector<Inputs> tokens;
  tokens.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    tokens.push_back(make_inputs(shape, 1, 9000 + t));
  }
  const double per_head_1t_ms =
      time_best_ms(
          [&] {
            for (std::size_t t = 0; t < steps; ++t) {
              per_head.append(tokens[t]);
              per_head.attend(tokens[t], per_head.states[0].tokens() - 1);
            }
          },
          1) /
      static_cast<double>(steps);

  for (const int threads : thread_legs) {
    const HackAttentionConfig cfg = make_config(shape, threads);
    HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads, cfg, 7);
    (void)layer.prefill(prompt.q_all, prompt.k_all, prompt.v_all);
    const double batched_ms =
        time_best_ms(
            [&] {
              for (std::size_t t = 0; t < steps; ++t) {
                (void)layer.decode_step(tokens[t].q_all, tokens[t].k_all,
                                        tokens[t].v_all);
              }
            },
            1) /
        static_cast<double>(steps);
    std::printf(
        "{\"bench\":\"serving_layer_decode\",\"heads\":%zu,\"kv_heads\":%zu,"
        "\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,\"threads\":%d,"
        "\"lanes\":%zu,\"batched_ms\":%.3f,\"per_head_1t_ms\":%.3f,"
        "\"batched_tokens_per_s\":%.1f,\"speedup_vs_per_head_1t\":%.2f}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, threads,
        lanes, batched_ms, per_head_1t_ms, 1000.0 / batched_ms,
        per_head_1t_ms / batched_ms);
    std::fflush(stdout);
  }
}

double peak_rss_mib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
}

// Long-context streaming prefill: tiled tokens/s plus the modeled per-layer
// peak attention working set, tiled vs the PR 2 untiled engine. The untiled
// leg is not run (at 16k it would materialize a 2.3 GiB score buffer per
// head); its working set comes from the retired engine's chunking model.
void run_longctx_legs(const Shape& shape,
                      const std::vector<std::size_t>& contexts) {
  const std::size_t lanes = ThreadPool::global().lanes();
  for (const std::size_t context : contexts) {
    const Inputs in = make_inputs(shape, context, 1234);
    const HackAttentionConfig cfg = make_config(shape, /*threads=*/0);
    const std::size_t tile = attention_tile_tokens(cfg, context);
    double batched_ms = 0.0;
    {
      const auto start = std::chrono::steady_clock::now();
      HackLayerKvState layer(shape.d_head, shape.kv_heads, shape.heads, cfg,
                             7);
      (void)layer.prefill(in.q_all, in.k_all, in.v_all);
      const auto stop = std::chrono::steady_clock::now();
      batched_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
    }
    const std::size_t tiled_ws = tiled_attention_working_set_bytes(
        context, context, shape.heads, shape.d_head, tile, lanes);
    const std::size_t untiled_ws =
        untiled_attention_working_set_bytes(context, context, shape.heads);
    std::printf(
        "{\"bench\":\"serving_longctx_prefill\",\"heads\":%zu,"
        "\"kv_heads\":%zu,\"d_head\":%zu,\"pi\":%zu,\"context\":%zu,"
        "\"lanes\":%zu,\"tile\":%zu,\"batched_ms\":%.2f,"
        "\"batched_tokens_per_s\":%.1f,\"tiled_ws_bytes\":%zu,"
        "\"untiled_ws_bytes\":%zu,\"ws_shrink\":%.1f,\"peak_rss_mib\":%.1f}\n",
        shape.heads, shape.kv_heads, shape.d_head, shape.pi, context, lanes,
        tile, batched_ms,
        1000.0 * static_cast<double>(context) / batched_ms, tiled_ws,
        untiled_ws,
        static_cast<double>(untiled_ws) / static_cast<double>(tiled_ws),
        peak_rss_mib());
    std::fflush(stdout);
  }
}

// ------------------------------------------------- continuous serving mode

struct ContOptions {
  std::size_t requests = 8;
  std::size_t input = 128;    // mean prompt tokens
  std::size_t output = 32;    // mean output tokens
  std::size_t layers = 2;
  std::string arrival = "poisson:8";
  std::size_t max_active = 8;
  std::size_t chunk = 128;
  std::size_t kv_blocks = 0;  // 0: no KV admission control
  // --disagg chaos knobs: injected chunk drop/corrupt probabilities and the
  // fault-schedule seed (deterministic: one seed, one schedule).
  double drop = 0.0;
  double corrupt = 0.0;
  std::uint64_t fault_seed = 0x5EED;
  // Transfer pipelining granularity; small values give a chaos leg many
  // chunks (and so many fault-injection opportunities) per blob.
  std::size_t chunk_bytes = 1 << 20;
  // --fleet mode: worker counts (0x0 = fleet mode off), the decode dispatch
  // policy, and the raw --kill=worker:request[@token],... crash schedule.
  std::size_t fleet_prefill = 0;
  std::size_t fleet_decode = 0;
  std::string fleet_policy = "round_robin";
  std::string kills;
  // Mid-decode checkpoint cadence (tokens between incremental KV delta
  // cuts); 0 disables checkpointing, mid-decode crashes then re-prefill.
  std::size_t checkpoint_every = 0;
};

std::vector<ServingRequest> make_continuous_requests(const ContOptions& o) {
  std::vector<ArrivalRecord> arrivals;
  if (o.arrival.rfind("trace:", 0) == 0) {
    const std::string path = o.arrival.substr(6);
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open trace file %s\n", path.c_str());
      std::exit(1);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    arrivals = Trace::parse(buf.str()).requests;
  } else if (o.arrival.rfind("poisson:", 0) == 0) {
    const double rps = std::strtod(o.arrival.c_str() + 8, nullptr);
    if (rps <= 0.0) {
      std::fprintf(stderr, "bad poisson rate in %s\n", o.arrival.c_str());
      std::exit(1);
    }
    const auto mean = [](std::size_t v) { return static_cast<double>(v); };
    const DatasetSpec spec{
        "bench",
        {mean(o.input), mean(std::max<std::size_t>(o.input / 2, 1)),
         mean(o.input * 2)},
        {mean(o.output), mean(std::max<std::size_t>(o.output / 2, 1)),
         mean(o.output * 2)}};
    Rng rng(42);
    arrivals = generate_arrivals(spec, rps, static_cast<int>(o.requests), rng);
  } else {
    std::fprintf(stderr, "bad --arrival (want poisson:<rps> or trace:<file>)"
                 ": %s\n", o.arrival.c_str());
    std::exit(1);
  }
  return requests_from_arrivals(arrivals, /*vocab=*/256, /*prompt_seed=*/7777,
                                /*max_input=*/o.input * 2,
                                /*max_output=*/o.output * 2);
}

struct LegSummary {
  double decode_tokens_per_s = 0.0;
  double pure_decode_tokens_per_s = 0.0;  // decode steps without a prefill
  double tokens_per_s = 0.0;
  double goodput_rps = 0.0;
  double makespan_s = 0.0;
  std::size_t total_tokens = 0;
  SampleStats ttft, tbt, jct;
  std::size_t kv_bytes_admitted = 0;
  std::size_t peak_running = 1;
};

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The pre-engine serving loop: one request at a time, FCFS. Service times
// are measured wall-clock; queueing is accounted on a virtual timeline from
// the arrival stamps, exactly like a single-worker queue.
LegSummary run_serial_leg(const std::shared_ptr<const TinyModelWeights>& w,
                          const std::function<LayerBackendFactory()>& maker,
                          std::vector<ServingRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const ServingRequest& a, const ServingRequest& b) {
              return a.arrival_time_s < b.arrival_time_s;
            });
  LegSummary leg;
  std::vector<double> ttft, tbt, jct;
  double cursor = 0.0, decode_time = 0.0;
  std::size_t decode_tokens = 0;
  for (const ServingRequest& req : requests) {
    TinyTransformer model(w, maker());
    double t0 = wall_s();
    std::vector<float> logits = model.prefill(req.prompt);
    int token = argmax_logits(logits);
    const double prefill_s = wall_s() - t0;  // includes the first token
    std::size_t generated = 1;
    double decode_s = 0.0;
    while (generated < req.max_new_tokens) {
      t0 = wall_s();
      logits = model.decode_step(token);
      token = argmax_logits(logits);
      const double step = wall_s() - t0;
      decode_s += step;
      tbt.push_back(step);
      ++generated;
    }
    const double start = std::max(req.arrival_time_s, cursor);
    ttft.push_back(start + prefill_s - req.arrival_time_s);
    jct.push_back(start + prefill_s + decode_s - req.arrival_time_s);
    cursor = start + prefill_s + decode_s;
    decode_time += decode_s;
    decode_tokens += generated - 1;
    leg.total_tokens += generated;
  }
  leg.makespan_s = cursor;
  if (decode_time > 0.0) {
    leg.decode_tokens_per_s =
        static_cast<double>(decode_tokens) / decode_time;
    leg.pure_decode_tokens_per_s = leg.decode_tokens_per_s;  // no mixing
  }
  if (cursor > 0.0) {
    leg.tokens_per_s = static_cast<double>(leg.total_tokens) / cursor;
    leg.goodput_rps = static_cast<double>(requests.size()) / cursor;
  }
  leg.ttft = compute_stats(std::move(ttft));
  if (!tbt.empty()) leg.tbt = compute_stats(std::move(tbt));
  leg.jct = compute_stats(std::move(jct));
  return leg;
}

LegSummary summarize_report(const ServingReport& report) {
  LegSummary leg;
  leg.decode_tokens_per_s = report.decode_tokens_per_s;
  leg.pure_decode_tokens_per_s = report.pure_decode_tokens_per_s;
  leg.tokens_per_s = report.tokens_per_s;
  leg.goodput_rps = report.goodput_rps;
  leg.makespan_s = report.makespan_s;
  leg.total_tokens = report.total_generated;
  leg.ttft = report.ttft_s;
  leg.tbt = report.tbt_s;
  leg.jct = report.jct_s;
  leg.kv_bytes_admitted = report.engine.kv_bytes_admitted;
  leg.peak_running = report.engine.peak_running;
  return leg;
}

void print_continuous_leg(const char* mode, const Shape& shape,
                          const ContOptions& o, const LegSummary& leg,
                          double weights_mib) {
  std::printf(
      "{\"bench\":\"serving_continuous\",\"mode\":\"%s\",\"requests\":%zu,"
      "\"heads\":%zu,\"kv_heads\":%zu,\"d_head\":%zu,\"layers\":%zu,"
      "\"input_mean\":%zu,\"output_mean\":%zu,\"arrival\":\"%s\","
      "\"max_active\":%zu,\"chunk\":%zu,\"lanes\":%zu,"
      "\"decode_tokens_per_s\":%.1f,\"pure_decode_tokens_per_s\":%.1f,"
      "\"tokens_per_s\":%.1f,"
      "\"goodput_rps\":%.2f,\"makespan_s\":%.3f,\"total_tokens\":%zu,"
      "\"ttft_p50_s\":%.4f,\"ttft_p90_s\":%.4f,\"ttft_p99_s\":%.4f,"
      "\"tbt_p50_s\":%.4f,\"tbt_p99_s\":%.4f,"
      "\"jct_p50_s\":%.4f,\"jct_p99_s\":%.4f,"
      "\"peak_running\":%zu,\"kv_bytes_admitted\":%zu,"
      "\"weights_mib\":%.1f}\n",
      mode, o.requests, shape.heads, shape.kv_heads, shape.d_head, o.layers,
      o.input, o.output, o.arrival.c_str(), o.max_active, o.chunk,
      ThreadPool::global().lanes(), leg.decode_tokens_per_s,
      leg.pure_decode_tokens_per_s,
      leg.tokens_per_s, leg.goodput_rps, leg.makespan_s, leg.total_tokens,
      leg.ttft.p50, leg.ttft.p90, leg.ttft.p99, leg.tbt.p50, leg.tbt.p99,
      leg.jct.p50, leg.jct.p99, leg.peak_running, leg.kv_bytes_admitted,
      weights_mib);
  std::fflush(stdout);
}

void run_continuous_mode(const Shape& shape, const ContOptions& o) {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = o.layers;
  cfg.heads = shape.heads;
  cfg.kv_heads = shape.kv_heads;
  cfg.d_head = shape.d_head;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);
  const double weights_mib =
      static_cast<double>(weights->weight_bytes()) / (1024.0 * 1024.0);
  HackAttentionConfig attn;
  attn.pi = shape.pi;
  const auto maker = [attn] { return make_hack_layer_backend(attn, 7); };
  const auto requests = make_continuous_requests(o);

  std::printf("continuous serving: %zu requests (%s), %zuQ/%zuKV d_head %zu,"
              " %zu layers, pool lanes %zu, weights %.1f MiB (one shared "
              "instance)\n",
              o.requests, o.arrival.c_str(), shape.heads, shape.kv_heads,
              shape.d_head, o.layers, ThreadPool::global().lanes(),
              weights_mib);

  const LegSummary serial = run_serial_leg(weights, maker, requests);
  print_continuous_leg("serial", shape, o, serial, weights_mib);

  ServingEngineConfig ec;
  ec.scheduler.max_active = o.max_active;
  ec.scheduler.prefill_chunk_tokens = o.chunk;
  std::unique_ptr<BlockAllocator> alloc;
  if (o.kv_blocks > 0) {
    // Accounting blocks: FP16 K+V bytes of block_tokens tokens across all
    // layers and KV heads.
    const std::size_t block_bytes = ec.scheduler.block_tokens *
                                    shape.kv_heads * shape.d_head * 2 * 2 *
                                    o.layers;
    alloc = std::make_unique<BlockAllocator>(o.kv_blocks, block_bytes);
  }
  ServingEngine engine(weights, maker, ec, alloc.get());
  for (const ServingRequest& req : requests) engine.submit(req);
  const LegSummary cont = summarize_report(engine.run());
  print_continuous_leg("continuous", shape, o, cont, weights_mib);

  std::printf(
      "{\"bench\":\"serving_continuous_speedup\",\"lanes\":%zu,"
      "\"decode_speedup\":%.2f,\"pure_decode_speedup\":%.2f,"
      "\"tokens_speedup\":%.2f,"
      "\"jct_p50_speedup\":%.2f,\"ttft_p50_ratio\":%.2f}\n",
      ThreadPool::global().lanes(),
      serial.decode_tokens_per_s > 0.0
          ? cont.decode_tokens_per_s / serial.decode_tokens_per_s
          : 0.0,
      serial.pure_decode_tokens_per_s > 0.0
          ? cont.pure_decode_tokens_per_s / serial.pure_decode_tokens_per_s
          : 0.0,
      serial.tokens_per_s > 0.0 ? cont.tokens_per_s / serial.tokens_per_s
                                : 0.0,
      cont.jct.p50 > 0.0 ? serial.jct.p50 / cont.jct.p50 : 0.0,
      serial.ttft.p50 > 0.0 ? cont.ttft.p50 / serial.ttft.p50 : 0.0);
  std::fflush(stdout);
}

// ---------------------------------------------------- tiered KV memory mode

std::size_t count_finished(const ServingReport& report) {
  std::size_t n = 0;
  for (const ServingRecord& rec : report.requests) {
    if (rec.state == RequestState::kFinished) ++n;
  }
  return n;
}

bool tokens_match(const ServingReport& a, const ServingReport& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    if (a.requests[i].generated != b.requests[i].generated) return false;
  }
  return true;
}

void print_tiered_leg(const char* mode, const Shape& shape,
                      const ContOptions& o, const ServingReport& report,
                      std::size_t pool_blocks) {
  const KvTierStats& t = report.engine.tier;
  std::printf(
      "{\"bench\":\"serving_tiered\",\"mode\":\"%s\",\"requests\":%zu,"
      "\"heads\":%zu,\"kv_heads\":%zu,\"d_head\":%zu,\"layers\":%zu,"
      "\"input_mean\":%zu,\"output_mean\":%zu,\"chunk\":%zu,"
      "\"pool_blocks\":%zu,\"max_active\":%zu,"
      "\"completed\":%zu,\"rejected\":%zu,\"peak_running\":%zu,"
      "\"total_tokens\":%zu,\"makespan_s\":%.3f,"
      "\"tokens_per_s\":%.1f,\"decode_tokens_per_s\":%.1f,"
      "\"goodput_rps\":%.2f,\"ttft_p50_s\":%.4f,\"jct_p50_s\":%.4f,"
      "\"evictions\":%zu,\"rehydrations\":%zu,"
      "\"prefetch_hits\":%zu,\"prefetch_misses\":%zu,"
      "\"swap_out_bytes\":%zu,\"swap_in_bytes\":%zu,\"far_bytes_peak\":%zu,"
      "\"swap_in_work_ms\":%.2f,\"swap_in_stall_ms\":%.2f,"
      "\"swap_events\":%zu}\n",
      mode, o.requests, shape.heads, shape.kv_heads, shape.d_head, o.layers,
      o.input, o.output, o.chunk, pool_blocks, o.max_active,
      count_finished(report), report.engine.rejected,
      report.engine.peak_running, report.total_generated, report.makespan_s,
      report.tokens_per_s, report.decode_tokens_per_s, report.goodput_rps,
      report.ttft_s.p50, report.jct_s.p50, t.evictions, t.rehydrations,
      t.prefetch_hits, t.prefetch_misses, t.bytes_swapped_out,
      t.bytes_swapped_in, t.far_bytes_peak, t.swap_in_work_s * 1e3,
      t.swap_in_stall_s * 1e3, report.engine.swap_events.size());
  std::fflush(stdout);
}

void run_tiered_mode(const Shape& shape, const ContOptions& o) {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = o.layers;
  cfg.heads = shape.heads;
  cfg.kv_heads = shape.kv_heads;
  cfg.d_head = shape.d_head;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);
  HackAttentionConfig attn;
  attn.pi = shape.pi;
  const auto maker = [attn] { return make_hack_layer_backend(attn, 7); };

  std::vector<ServingRequest> requests = make_continuous_requests(o);
  // The arrival process only shapes the workload here; stamps are zeroed so
  // every request is visible at t=0. That makes admission order — and with
  // it the whole evict/resume/prefetch schedule — a pure function of the
  // submissions (docs/serving.md "Tiered KV memory"), so the leg is
  // bitwise-replayable and the prefetcher's projection is exact.
  for (ServingRequest& req : requests) req.arrival_time_s = 0.0;

  ServingEngineConfig ec;
  ec.scheduler.max_active = o.max_active;
  ec.scheduler.prefill_chunk_tokens = o.chunk;
  const std::size_t block_tokens = ec.scheduler.block_tokens;
  std::size_t max_worst = 0, sum_worst = 0;
  for (const ServingRequest& req : requests) {
    const std::size_t tokens = req.prompt.size() + req.max_new_tokens;
    const std::size_t blocks = (tokens + block_tokens - 1) / block_tokens;
    max_worst = std::max(max_worst, blocks);
    sum_worst += blocks;
  }
  // Default pool: barely above the largest single request's worst case, so
  // every request is admissible alone (no rejections) but the worst-case
  // FCFS reservation can only co-resident a strict subset — the regime the
  // tiered manager exists for. --kv-blocks overrides.
  const std::size_t pool_blocks =
      o.kv_blocks > 0 ? o.kv_blocks : max_worst + 2;
  const std::size_t block_bytes = block_tokens * shape.kv_heads *
                                  shape.d_head * 2 * 2 * o.layers;

  std::printf("tiered KV serving: %zu requests (%s shapes, arrivals zeroed),"
              " pool %zu blocks (worst-case demand %zu, largest request %zu),"
              " chunk %zu, pool lanes %zu\n",
              o.requests, o.arrival.c_str(), pool_blocks, sum_worst,
              max_worst, o.chunk, ThreadPool::global().lanes());

  // Reference: unconstrained untiered run. Engine tokens are batch- and
  // schedule-invariant for a fixed chunk config, so both constrained legs
  // below must reproduce these tokens bit-for-bit.
  ServingReport ref;
  {
    ServingEngine engine(weights, maker, ec, nullptr);
    for (const ServingRequest& req : requests) engine.submit(req);
    ref = engine.run();
  }

  ServingReport fcfs;
  {
    BlockAllocator alloc(pool_blocks, block_bytes);
    ServingEngine engine(weights, maker, ec, &alloc);
    for (const ServingRequest& req : requests) engine.submit(req);
    fcfs = engine.run();
  }
  print_tiered_leg("fcfs", shape, o, fcfs, pool_blocks);

  ServingEngineConfig tc = ec;
  tc.scheduler.tiered = true;
  ServingReport tiered;
  {
    BlockAllocator alloc(pool_blocks, block_bytes);
    ServingEngine engine(weights, maker, tc, &alloc);
    for (const ServingRequest& req : requests) engine.submit(req);
    tiered = engine.run();
  }
  print_tiered_leg("tiered", shape, o, tiered, pool_blocks);

  const bool bit_identical =
      tokens_match(fcfs, ref) && tokens_match(tiered, ref);
  const KvTierStats& t = tiered.engine.tier;
  // Overlap: of the swap-in deserialize work, the fraction hidden behind
  // step compute by the prefetcher (stall is what the engine actually
  // waited). No swap-ins at all means nothing to hide.
  const double overlap_ratio =
      t.swap_in_work_s > 0.0
          ? std::max(0.0, (t.swap_in_work_s - t.swap_in_stall_s) /
                              t.swap_in_work_s)
          : 1.0;
  std::printf(
      "{\"bench\":\"serving_tiered_compare\",\"requests\":%zu,"
      "\"pool_blocks\":%zu,\"fcfs_peak_running\":%zu,"
      "\"tiered_peak_running\":%zu,\"concurrency_gain\":%.2f,"
      "\"fcfs_completed\":%zu,\"tiered_completed\":%zu,"
      "\"jct_p50_ratio\":%.2f,\"evictions\":%zu,\"prefetch_hits\":%zu,"
      "\"prefetch_overlap_ratio\":%.3f,\"prefetch_overlap_ge_half\":%s,"
      "\"bit_identical\":%s}\n",
      o.requests, pool_blocks, fcfs.engine.peak_running,
      tiered.engine.peak_running,
      fcfs.engine.peak_running > 0
          ? static_cast<double>(tiered.engine.peak_running) /
                static_cast<double>(fcfs.engine.peak_running)
          : 0.0,
      count_finished(fcfs), count_finished(tiered),
      tiered.jct_s.p50 > 0.0 ? fcfs.jct_s.p50 / tiered.jct_s.p50 : 0.0,
      t.evictions, t.prefetch_hits, overlap_ratio,
      overlap_ratio >= 0.5 ? "true" : "false",
      bit_identical ? "true" : "false");
  std::fflush(stdout);
}

// ------------------------------------------------ disaggregated handoff mode

void run_disagg_mode(const Shape& shape, const ContOptions& o) {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = o.layers;
  cfg.heads = shape.heads;
  cfg.kv_heads = shape.kv_heads;
  cfg.d_head = shape.d_head;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);
  const auto requests = make_continuous_requests(o);

  std::printf("disaggregated prefill→decode: %zu requests (%s), %zuQ/%zuKV "
              "d_head %zu, %zu layers, pool lanes %zu\n",
              o.requests, o.arrival.c_str(), shape.heads, shape.kv_heads,
              shape.d_head, o.layers, ThreadPool::global().lanes());

  for (const int kv_bits : {2, 4, 8}) {
    DisaggConfig dc;
    dc.attn.pi = shape.pi;
    dc.attn.kv_bits = kv_bits;
    dc.decode_kv_blocks = o.kv_blocks;
    dc.transfer_chunk_bytes = o.chunk_bytes;
    dc.transfer_faults.chunk_drop_prob = o.drop;
    dc.transfer_faults.chunk_corrupt_prob = o.corrupt;
    dc.transfer_faults.seed = o.fault_seed;
    DisaggEngine engine(weights, dc);
    const DisaggReport report = engine.run(requests);

    // The property the wire exists for: every admitted request's decode-side
    // tokens equal its solo single-node run. Requests the decode pool
    // rejected are a capacity event, not a correctness one — they are
    // counted separately and excluded from the byte/time aggregates (like
    // report.wire_bytes_total already excludes them).
    bool bit_identical = true;
    std::size_t rejected = 0;
    KvWireSections sections;
    double prefill_s = 0.0, serialize_s = 0.0, transfer_s = 0.0,
           deserialize_s = 0.0, decode_s = 0.0;
    for (const DisaggRecord& rec : report.requests) {
      if (rec.rejected) {
        ++rejected;
        continue;
      }
      TinyTransformer solo(
          weights, make_hack_layer_backend(dc.attn, dc.backend_seed));
      if (solo.generate(rec.request.prompt, rec.request.max_new_tokens,
                        rec.request.eos) != rec.generated) {
        bit_identical = false;
      }
      sections.framing += rec.sections.framing;
      sections.rng_streams += rec.sections.rng_streams;
      sections.packed_codes += rec.sections.packed_codes;
      sections.metadata += rec.sections.metadata;
      sections.sums += rec.sections.sums;
      sections.fp16_tail += rec.sections.fp16_tail;
      prefill_s += rec.prefill_s;
      serialize_s += rec.serialize_s;
      transfer_s += rec.transfer_s;
      deserialize_s += rec.deserialize_s;
      decode_s += rec.decode_s;
    }
    const double n =
        std::max<double>(1.0, static_cast<double>(report.requests.size() -
                                                  rejected));
    std::printf(
        "{\"bench\":\"serving_disagg\",\"kv_bits\":%d,\"requests\":%zu,"
        "\"heads\":%zu,\"kv_heads\":%zu,\"d_head\":%zu,\"pi\":%zu,"
        "\"layers\":%zu,\"input_mean\":%zu,\"output_mean\":%zu,\"lanes\":%zu,"
        "\"wire_bytes_total\":%zu,\"fp16_kv_bytes_total\":%zu,"
        "\"wire_vs_fp16\":%.4f,\"wire_codes_bytes\":%zu,"
        "\"wire_metadata_bytes\":%zu,\"wire_sums_bytes\":%zu,"
        "\"wire_tail_bytes\":%zu,\"prefill_s_mean\":%.3f,"
        "\"serialize_s_mean\":%.4f,\"transfer_ms_mean\":%.3f,"
        "\"deserialize_s_mean\":%.4f,\"decode_s_mean\":%.3f,"
        "\"ttft_p50_s\":%.4f,\"ttft_p99_s\":%.4f,\"jct_p50_s\":%.4f,"
        "\"makespan_s\":%.3f,\"rejected\":%zu,"
        "\"drop_prob\":%.3f,\"corrupt_prob\":%.3f,\"fault_seed\":%llu,"
        "\"retries\":%zu,\"chunks_dropped\":%zu,\"chunks_corrupted\":%zu,"
        "\"crc_failures\":%zu,\"retransmitted_bytes\":%zu,"
        "\"prefill_crashes\":%zu,\"decode_crashes\":%zu,\"fallbacks\":%zu,"
        "\"deadline_misses\":%zu,\"failed_allocations\":%zu,"
        "\"min_free_watermark\":%zu,\"oom_appends\":%zu,"
        "\"bit_identical\":%s}\n",
        kv_bits, o.requests, shape.heads, shape.kv_heads, shape.d_head,
        shape.pi, o.layers, o.input, o.output,
        ThreadPool::global().lanes(), report.wire_bytes_total,
        report.fp16_kv_bytes_total, report.wire_vs_fp16,
        sections.packed_codes, sections.metadata, sections.sums,
        sections.fp16_tail, prefill_s / n, serialize_s / n,
        1000.0 * transfer_s / n, deserialize_s / n, decode_s / n,
        report.ttft_s.p50, report.ttft_s.p99, report.jct_s.p50,
        report.makespan_s, rejected, o.drop, o.corrupt,
        static_cast<unsigned long long>(o.fault_seed), report.retries_total,
        report.chunks_dropped_total, report.chunks_corrupted_total,
        report.crc_failures_total, report.retransmitted_bytes_total,
        report.prefill_crashes_total, report.decode_crashes_total,
        report.fallbacks, report.deadline_misses,
        report.decode_failed_allocations, report.decode_min_free_watermark,
        report.decode_oom_appends, bit_identical ? "true" : "false");
    std::fflush(stdout);
  }
}

// --------------------------------------------------- multi-replica fleet mode

// Applies a --kill=worker:request[@token],... schedule ("prefill0:1,
// decode1:2@6") to a freshly built engine. A bare worker:request crashes the
// worker when the request's work starts on it; worker:request@token arms a
// mid-decode crash that fires after the request's token'th generated token
// (decode workers only — prefill has no mid-decode). Exits on malformed
// specs or unknown worker names so a CI chaos leg fails loudly instead of
// running a vacuous schedule.
void apply_kill_schedule(FleetEngine& engine, const std::string& kills) {
  std::stringstream ss(kills);
  std::string spec;
  while (std::getline(ss, spec, ',')) {
    if (spec.empty()) continue;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr,
                   "bad --kill spec (want worker:request[@token]): %s\n",
                   spec.c_str());
      std::exit(1);
    }
    const std::string worker = spec.substr(0, colon);
    char* after_request = nullptr;
    const std::size_t request =
        std::strtoul(spec.c_str() + colon + 1, &after_request, 10);
    bool mid_decode = false;
    std::size_t token = 0;
    if (after_request != nullptr && *after_request == '@') {
      mid_decode = true;
      token = std::strtoul(after_request + 1, nullptr, 10);
      if (token == 0) {
        std::fprintf(stderr, "bad --kill token (want @N with N>=1): %s\n",
                     spec.c_str());
        std::exit(1);
      }
    } else if (after_request != nullptr && *after_request != '\0') {
      std::fprintf(stderr, "bad --kill spec (want worker:request[@token]): "
                   "%s\n", spec.c_str());
      std::exit(1);
    }
    if (worker.rfind("prefill", 0) == 0) {
      if (mid_decode) {
        std::fprintf(stderr,
                     "--kill @token applies to decode workers only: %s\n",
                     spec.c_str());
        std::exit(1);
      }
      const std::size_t idx =
          std::strtoul(worker.c_str() + 7, nullptr, 10);
      if (idx >= engine.prefill_count()) {
        std::fprintf(stderr, "no such worker: %s\n", worker.c_str());
        std::exit(1);
      }
      engine.prefill_worker(idx).inject_crash(request);
    } else if (worker.rfind("decode", 0) == 0) {
      const std::size_t idx = std::strtoul(worker.c_str() + 6, nullptr, 10);
      if (idx >= engine.decode_count()) {
        std::fprintf(stderr, "no such worker: %s\n", worker.c_str());
        std::exit(1);
      }
      if (mid_decode) {
        engine.decode_worker(idx).inject_crash_at_token(request, token);
      } else {
        engine.decode_worker(idx).inject_crash(request);
      }
    } else {
      std::fprintf(stderr, "bad --kill worker (want prefillN/decodeM): %s\n",
                   worker.c_str());
      std::exit(1);
    }
  }
}

void run_fleet_mode(const Shape& shape, const ContOptions& o) {
  TinyConfig cfg;
  cfg.vocab = 256;
  cfg.layers = o.layers;
  cfg.heads = shape.heads;
  cfg.kv_heads = shape.kv_heads;
  cfg.d_head = shape.d_head;
  cfg.d_ff = 512;
  const auto weights = make_tiny_weights(cfg);
  const auto requests = make_continuous_requests(o);

  FleetConfig fc;
  fc.worker.attn.pi = shape.pi;
  fc.worker.attn.kv_bits = 4;
  fc.worker.decode_kv_blocks = o.kv_blocks;
  fc.worker.transfer_chunk_bytes = o.chunk_bytes;
  fc.worker.transfer_faults.chunk_drop_prob = o.drop;
  fc.worker.transfer_faults.chunk_corrupt_prob = o.corrupt;
  fc.worker.transfer_faults.seed = o.fault_seed;
  fc.worker.checkpoint_every_tokens = o.checkpoint_every;
  fc.prefill_workers = o.fleet_prefill;
  fc.decode_workers = o.fleet_decode;
  // Prefill dispatch stays round-robin so a --kill schedule addressed by
  // worker name is reproducible; --policy picks the decode-side policy.
  fc.prefill_policy = &dispatch_round_robin;
  if (o.fleet_policy == "round_robin") {
    fc.decode_policy = &dispatch_round_robin;
  } else if (o.fleet_policy == "least_bytes") {
    fc.decode_policy = &dispatch_least_outstanding_bytes;
  } else if (o.fleet_policy == "free_blocks") {
    fc.decode_policy = &dispatch_most_free_blocks;
  } else {
    std::fprintf(stderr, "bad --policy (want round_robin|least_bytes|"
                 "free_blocks): %s\n", o.fleet_policy.c_str());
    std::exit(1);
  }
  // A chaos schedule needs budget to route around: scale retries with the
  // injected rates rather than failing the bit-identity gate on exhaustion.
  if (o.drop > 0.0 || o.corrupt > 0.0 || !o.kills.empty()) {
    fc.worker.retry.max_retries = 16;
  }

  std::printf("fleet serving: %zu prefill × %zu decode workers, %zu requests "
              "(%s), policy %s, kills \"%s\"\n",
              fc.prefill_workers, fc.decode_workers, o.requests,
              o.arrival.c_str(), dispatch_policy_name(fc.decode_policy),
              o.kills.c_str());

  FleetEngine engine(weights, fc);
  apply_kill_schedule(engine, o.kills);
  const FleetReport report = engine.run(requests);

  // The fleet-wide contract: every non-rejected request — rerouted, failed
  // over, or degraded to a local decode — matches its solo single-node run
  // bit for bit.
  bool bit_identical = true;
  for (const FleetRecord& rec : report.requests) {
    if (rec.d.rejected) continue;
    TinyTransformer solo(weights, make_hack_layer_backend(
                                      fc.worker.attn, fc.worker.backend_seed));
    if (solo.generate(rec.d.request.prompt, rec.d.request.max_new_tokens,
                      rec.d.request.eos) != rec.d.generated) {
      bit_identical = false;
    }
  }

  const double tokens_per_s =
      report.makespan_s > 0.0
          ? static_cast<double>(report.total_generated) / report.makespan_s
          : 0.0;
  // Checkpoint economics: mean delta size per cut, and the measured
  // rehydration (base deserialize + delta apply) latency of requests whose
  // final attempt was a resume.
  const double delta_bytes_per_checkpoint =
      static_cast<double>(report.checkpoint_bytes_total) /
      static_cast<double>(std::max<std::size_t>(report.checkpoints_total, 1));
  double resume_latency_sum = 0.0;
  std::size_t resumed_requests = 0;
  for (const FleetRecord& rec : report.requests) {
    if (rec.d.resumes > 0 && !rec.d.fallback_local) {
      resume_latency_sum += rec.d.deserialize_s;
      ++resumed_requests;
    }
  }
  const double resume_latency_mean_s =
      resumed_requests > 0
          ? resume_latency_sum / static_cast<double>(resumed_requests)
          : 0.0;
  std::printf(
      "{\"bench\":\"serving_fleet\",\"prefill_workers\":%zu,"
      "\"decode_workers\":%zu,\"policy\":\"%s\",\"kills\":\"%s\","
      "\"requests\":%zu,\"kv_bits\":4,\"layers\":%zu,\"input_mean\":%zu,"
      "\"output_mean\":%zu,\"lanes\":%zu,\"drop_prob\":%.3f,"
      "\"corrupt_prob\":%.3f,\"fault_seed\":%llu,\"tokens_per_s\":%.1f,"
      "\"total_tokens\":%zu,\"makespan_s\":%.3f,\"ttft_p50_s\":%.4f,"
      "\"ttft_p99_s\":%.4f,\"jct_p50_s\":%.4f,\"jct_p99_s\":%.4f,"
      "\"wire_bytes_total\":%zu,\"reroutes\":%zu,\"prefill_failovers\":%zu,"
      "\"shed\":%zu,\"re_prefills\":%zu,\"re_prefills_from_decode\":%zu,"
      "\"health_transitions\":%zu,\"retries\":%zu,\"chunks_dropped\":%zu,"
      "\"chunks_corrupted\":%zu,\"crc_failures\":%zu,"
      "\"prefill_crashes\":%zu,\"decode_crashes\":%zu,"
      "\"retransmitted_bytes\":%zu,\"fallbacks\":%zu,\"rejected\":%zu,"
      "\"checkpoint_every\":%zu,\"checkpoints\":%zu,"
      "\"checkpoint_bytes\":%zu,\"delta_bytes_per_checkpoint\":%.1f,"
      "\"checkpoint_failures\":%zu,\"resumes\":%zu,"
      "\"resume_latency_mean_s\":%.6f,\"tokens_replayed\":%zu,"
      "\"tokens_recomputed\":%zu,\"migrations\":%zu,\"drains\":%zu,"
      "\"bit_identical\":%s}\n",
      fc.prefill_workers, fc.decode_workers,
      dispatch_policy_name(fc.decode_policy), o.kills.c_str(), o.requests,
      o.layers, o.input, o.output, ThreadPool::global().lanes(), o.drop,
      o.corrupt, static_cast<unsigned long long>(o.fault_seed), tokens_per_s,
      report.total_generated, report.makespan_s, report.ttft_s.p50,
      report.ttft_s.p99, report.jct_s.p50, report.jct_s.p99,
      report.wire_bytes_total, report.reroutes_total,
      report.prefill_failovers_total, report.shed_total,
      report.re_prefills_total, report.re_prefills_from_decode_crashes,
      report.health_transitions_total, report.retries_total,
      report.chunks_dropped_total, report.chunks_corrupted_total,
      report.crc_failures_total, report.prefill_crashes_total,
      report.decode_crashes_total, report.retransmitted_bytes_total,
      report.fallbacks, report.rejected, o.checkpoint_every,
      report.checkpoints_total, report.checkpoint_bytes_total,
      delta_bytes_per_checkpoint, report.checkpoint_failures_total,
      report.resumes_total, resume_latency_mean_s,
      report.tokens_replayed_total, report.tokens_recomputed_total,
      report.migrations_total, report.drain_events_total,
      bit_identical ? "true" : "false");
  const auto print_worker = [](const FleetWorkerStats& s, const char* role) {
    std::printf(
        "{\"bench\":\"serving_fleet_worker\",\"worker\":\"%s\","
        "\"role\":\"%s\",\"served\":%zu,\"crashes\":%zu,"
        "\"transfer_failures\":%zu,\"drains\":%zu,\"busy_s\":%.3f,"
        "\"utilization\":%.3f,\"health_transitions\":%zu,"
        "\"final_health\":\"%s\"}\n",
        s.name.c_str(), role, s.served, s.crashes, s.transfer_failures,
        s.drains, s.busy_s, s.utilization, s.transitions.size(),
        worker_health_name(s.final_health));
  };
  for (const FleetWorkerStats& s : report.prefill_workers) {
    print_worker(s, "prefill");
  }
  for (const FleetWorkerStats& s : report.decode_workers) {
    print_worker(s, "decode");
  }
  std::fflush(stdout);
}

std::vector<std::size_t> parse_size_list(const char* s) {
  std::vector<std::size_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<std::size_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Shape shape;
  std::vector<std::size_t> contexts = {1024, 4096};
  std::vector<int> thread_legs = {1, 2, 4};
  bool long_sweep = false;
  bool continuous = false;
  bool tiered = false;
  bool disagg = false;
  ContOptions cont;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      // Applied at parse time, like every other flag, so an explicit later
      // --context/--input/--output still wins.
      contexts = {512};
      thread_legs = {1, 2};
      cont.input = 48;  // requests stay as given: concurrency is the point
      cont.output = 12;
    } else if (arg == "--long") {
      long_sweep = true;
    } else if (arg == "--continuous") {
      continuous = true;
    } else if (arg == "--tiered") {
      tiered = true;
    } else if (arg == "--disagg") {
      disagg = true;
    } else if (arg.rfind("--fleet=", 0) == 0) {
      const char* spec = arg.c_str() + 8;
      char* end = nullptr;
      cont.fleet_prefill = std::strtoul(spec, &end, 10);
      if (end == spec || (*end != 'x' && *end != 'X')) {
        std::fprintf(stderr, "bad --fleet (want NxM): %s\n", arg.c_str());
        return 1;
      }
      cont.fleet_decode = std::strtoul(end + 1, nullptr, 10);
    } else if (arg.rfind("--kill=", 0) == 0) {
      cont.kills = arg.substr(7);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      cont.checkpoint_every = std::strtoul(arg.c_str() + 19, nullptr, 10);
    } else if (arg.rfind("--policy=", 0) == 0) {
      cont.fleet_policy = arg.substr(9);
    } else if (arg.rfind("--requests=", 0) == 0) {
      cont.requests = std::strtoul(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--input=", 0) == 0) {
      cont.input = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--output=", 0) == 0) {
      cont.output = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--layers=", 0) == 0) {
      cont.layers = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--arrival=", 0) == 0) {
      cont.arrival = arg.substr(10);
    } else if (arg.rfind("--max-active=", 0) == 0) {
      cont.max_active = std::strtoul(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--chunk=", 0) == 0) {
      cont.chunk = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--kv-blocks=", 0) == 0) {
      cont.kv_blocks = std::strtoul(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--drop=", 0) == 0) {
      cont.drop = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--corrupt=", 0) == 0) {
      cont.corrupt = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      cont.fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--chunk-bytes=", 0) == 0) {
      cont.chunk_bytes = std::strtoul(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--context=", 0) == 0) {
      contexts = parse_size_list(arg.c_str() + 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_legs.clear();
      for (const std::size_t t : parse_size_list(arg.c_str() + 10)) {
        thread_legs.push_back(static_cast<int>(t));
      }
    } else if (arg.rfind("--heads=", 0) == 0) {
      shape.heads = std::strtoul(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--kv-heads=", 0) == 0) {
      shape.kv_heads = std::strtoul(arg.c_str() + 11, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (shape.heads == 0 || shape.kv_heads == 0 ||
      shape.heads % shape.kv_heads != 0) {
    std::fprintf(stderr, "heads must be a positive multiple of kv_heads\n");
    return 1;
  }
  if (contexts.empty() || thread_legs.empty()) {
    std::fprintf(stderr, "--context and --threads need at least one value\n");
    return 1;
  }

  const bool fleet = cont.fleet_prefill > 0 || cont.fleet_decode > 0;
  if (continuous || tiered || disagg || fleet) {
    if (cont.requests == 0 || cont.output == 0) {
      std::fprintf(stderr, "--requests and --output must be positive\n");
      return 1;
    }
    if (fleet) {
      if (cont.fleet_prefill == 0 || cont.fleet_decode == 0) {
        std::fprintf(stderr, "--fleet needs at least 1x1\n");
        return 1;
      }
      run_fleet_mode(shape, cont);
    } else if (disagg) {
      run_disagg_mode(shape, cont);
    } else if (tiered) {
      run_tiered_mode(shape, cont);
    } else {
      run_continuous_mode(shape, cont);
    }
    return 0;
  }

  if (long_sweep) {
    std::vector<std::size_t> long_contexts = contexts;
    if (long_contexts == std::vector<std::size_t>{1024, 4096}) {
      long_contexts = {4096, 16384};  // default --long sweep
    }
    std::printf("streaming-softmax long-context prefill: %zu query heads / "
                "%zu KV heads, d_head %zu, pool lanes %zu\n",
                shape.heads, shape.kv_heads, shape.d_head,
                ThreadPool::global().lanes());
    run_longctx_legs(shape, long_contexts);
    return 0;
  }

  std::printf("batched layer vs per-head loop: %zu query heads / %zu KV heads"
              ", d_head %zu, pool lanes %zu\n",
              shape.heads, shape.kv_heads, shape.d_head,
              ThreadPool::global().lanes());
  for (const std::size_t context : contexts) {
    run_prefill_legs(shape, context, thread_legs);
    run_decode_legs(shape, context, thread_legs);
  }
  return 0;
}
