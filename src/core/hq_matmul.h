// Homomorphic quantized matrix multiplication — the paper's core contribution.
//
// For C = A·B with both operands quantized per-partition (§5.2, Eq. 4):
//
//   C[i,j] = Σ_g ( s_a[i,g]·s_b[j,g]·Σ_{z∈g} a'b'     <- integer GEMM
//                + m_b[j,g]·s_a[i,g]·Σ_{z∈g} a'       <- A code row-sums
//                + m_a[i,g]·s_b[j,g]·Σ_{z∈g} b'       <- B code col-sums (SE)
//                + |g|·m_a[i,g]·m_b[j,g] )
//
// The integer GEMM runs on the codes (INT8 path); the three affine terms
// "approximate the quantized output into the real output" without ever
// materializing dequantized operands. Passing a prebuilt SumCache for B
// enables summation elimination: the Σ b' term is read instead of recomputed,
// reducing the approximation cost from 9MN + MZ + NZ to 9MN + MZ flops.
#pragma once

#include <cstdint>
#include <optional>

#include "core/sum_cache.h"
#include "quant/quantizer.h"
#include "tensor/matrix.h"

namespace hack {

// Operation counters filled by the HQ kernels; tests pin these against the
// closed-form costs in core/cost_model.h.
struct HqStats {
  std::int64_t int_macs = 0;      // integer multiply-accumulates (code GEMM)
  std::int64_t approx_flops = 0;  // float ops spent on the Eq. (4) correction
  std::int64_t sum_flops = 0;     // adds spent computing Σ b' (0 when cached)
};

// C = A·B. A must be row-axis quantized (M x Z), B col-axis (Z x N), with
// identical partition size. `b_sums`, when provided, must match B.
Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums = nullptr, HqStats* stats = nullptr);

// C = A·Bᵀ. A row-axis (M x Z), B row-axis (N x Z) — the Q·Kᵀ form where K
// stores one token per row. `b_sums`, when provided, must match B.
Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums = nullptr, HqStats* stats = nullptr);

}  // namespace hack
