// The seed scalar Eq. (4) implementation, kept verbatim as ground truth for
// the blocked engine: randomized equivalence tests diff against it and the
// microbenchmarks report old-vs-new speedup from it. Deliberately naive —
// lambda-indirected triple loop, per-(i,j,g) metadata reads — do not
// optimize.
#include "core/hq_matmul.h"

#include "core/int_gemm.h"

namespace hack {
namespace {

template <typename BCodeAt>
Matrix hq_matmul_reference_impl(const QuantizedMatrix& a,
                                const QuantizedMatrix& b, std::size_t n,
                                const SumCache* b_sums, HqStats* stats,
                                BCodeAt b_code) {
  HACK_CHECK(a.axis == QuantAxis::kRow, "A must be row-axis quantized");
  HACK_CHECK(a.bits >= 1 && b.bits >= 1, "operands must be quantized");
  HACK_CHECK(a.pi == b.pi, "partition size mismatch: " << a.pi << " vs "
                            << b.pi);
  const std::size_t m = a.rows;
  const std::size_t z = a.cols;
  const PartitionScheme scheme(z, a.pi, /*allow_ragged_tail=*/true);
  const std::size_t groups = scheme.group_count();
  HACK_CHECK(a.group_count() == groups, "A group count mismatch");
  HACK_CHECK(b.group_count() == groups,
             "B group count mismatch: " << b.group_count() << " vs " << groups);
  if (b_sums != nullptr) {
    HACK_CHECK(b_sums->outer() == n && b_sums->groups() == groups,
               "SumCache does not match B");
  }

  HqStats local{};

  // Row sums of A codes per (i, g).
  std::vector<std::int32_t> a_row_sums(m * groups, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::int32_t acc = 0;
      for (std::size_t zz = scheme.group_begin(g); zz < scheme.group_end(g);
           ++zz) {
        acc += a.code_at(i, zz);
      }
      a_row_sums[i * groups + g] = acc;
    }
  }
  local.approx_flops += static_cast<std::int64_t>(m) * z;  // MZ adds

  // Column sums of B codes per (j, g): read from the cache (SE) or recompute.
  std::vector<std::int32_t> b_col_sums_storage;
  const std::int32_t* b_col_sums = nullptr;
  if (b_sums != nullptr) {
    b_col_sums = b_sums->data();
  } else {
    b_col_sums_storage.assign(n * groups, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t g = 0; g < groups; ++g) {
        std::int32_t acc = 0;
        for (std::size_t zz = scheme.group_begin(g); zz < scheme.group_end(g);
             ++zz) {
          acc += b_code(zz, j);
        }
        b_col_sums_storage[j * groups + g] = acc;
      }
    }
    b_col_sums = b_col_sums_storage.data();
    local.sum_flops += static_cast<std::int64_t>(n) * z;  // NZ adds
  }

  Matrix c(m, n, 0.0f);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t z_begin = scheme.group_begin(g);
    const std::size_t z_end = scheme.group_end(g);
    const auto group_len = static_cast<float>(z_end - z_begin);
    for (std::size_t i = 0; i < m; ++i) {
      const float sa = a.scale_of(i, g);
      const float ma = a.min_of(i, g);
      const auto ra = static_cast<float>(a_row_sums[i * groups + g]);
      for (std::size_t j = 0; j < n; ++j) {
        std::int32_t dot = 0;
        for (std::size_t zz = z_begin; zz < z_end; ++zz) {
          dot += static_cast<std::int32_t>(a.code_at(i, zz)) *
                 static_cast<std::int32_t>(b_code(zz, j));
        }
        const float sb = b.scale_of(j, g);
        const float mb = b.min_of(j, g);
        // Eq. (4): four terms per (i, j, g).
        c(i, j) += sa * sb * static_cast<float>(dot) + mb * sa * ra +
                   ma * sb * static_cast<float>(b_col_sums[j * groups + g]) +
                   group_len * ma * mb;
      }
    }
    local.int_macs +=
        static_cast<std::int64_t>(m) * n * (z_end - z_begin);
  }
  // 9MN per Eq. (4): 2 for sa·sb·dot, 2+2 for the two affine terms, 2 for
  // Z·ma·mb, 3 adds folding the terms together.
  local.approx_flops += 9 * static_cast<std::int64_t>(m) * n;

  if (stats != nullptr) {
    *stats = local;
  }
  return c;
}

}  // namespace

Matrix hq_matmul_reference(const QuantizedMatrix& a, const QuantizedMatrix& b,
                           const SumCache* b_sums, HqStats* stats) {
  HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
  HACK_CHECK(a.cols == b.rows, "hq_matmul shape mismatch: " << a.rows << "x"
                               << a.cols << " * " << b.rows << "x" << b.cols);
  return hq_matmul_reference_impl(
      a, b, b.cols, b_sums, stats,
      [&b](std::size_t zz, std::size_t j) { return b.code_at(zz, j); });
}

Matrix hq_matmul_nt_reference(const QuantizedMatrix& a,
                              const QuantizedMatrix& b, const SumCache* b_sums,
                              HqStats* stats) {
  HACK_CHECK(b.axis == QuantAxis::kRow,
             "B must be row-axis quantized (token-per-row K layout)");
  HACK_CHECK(a.cols == b.cols, "hq_matmul_nt inner dim mismatch: " << a.cols
                               << " vs " << b.cols);
  return hq_matmul_reference_impl(
      a, b, b.rows, b_sums, stats,
      [&b](std::size_t zz, std::size_t j) { return b.code_at(j, zz); });
}

}  // namespace hack
