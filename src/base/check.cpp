#include "base/check.h"

namespace hack::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "HACK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckError(os.str());
}

}  // namespace hack::detail
