// Synthetic token corpus for accuracy experiments.
//
// Real dataset text is unavailable offline, so accuracy runs use synthetic
// byte-level token streams with the statistical structure that matters for
// KV data: local correlation (Markov transitions) and repeated motifs
// (recurring phrases), per dataset flavor. Prompts are deterministic given
// (dataset, index, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"

namespace hack {

struct CorpusStyle {
  std::size_t vocab = 256;
  std::size_t motif_count = 8;     // distinct repeated phrases
  std::size_t motif_len = 12;      // tokens per phrase
  double motif_probability = 0.35;  // chance the next span is a motif replay
};

class SyntheticCorpus {
 public:
  SyntheticCorpus(CorpusStyle style, std::uint64_t seed);

  // Deterministic prompt #index of the requested length.
  std::vector<int> prompt(std::size_t index, std::size_t length) const;

 private:
  CorpusStyle style_;
  std::uint64_t seed_;
  std::vector<std::vector<int>> motifs_;
  // Sparse order-1 Markov table: per token, a handful of likely successors.
  std::vector<std::vector<int>> successors_;
};

}  // namespace hack
