// Tests for the batched multi-head attention engine: a HackLayerKvState must
// produce bit-identical outputs to serial per-head hack_attention /
// hack_attn_decode calls over HackKvStates with matching RNG seeds, for any
// GQA grouping, RQE/SE setting, and thread count — and the streaming-softmax
// tiled prefill must agree with the untiled (full score materialization)
// pipeline within quantization noise for every tile width, with the cached
// K/V codes bit-identical regardless of tiling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "attention/hack_attention.h"
#include "attention/layer_attention.h"
#include "core/hq_matmul.h"
#include "tensor/ops.h"

namespace hack {
namespace {

constexpr std::uint64_t kSeed = 77;

float max_abs_diff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    m = std::max(m, std::fabs(a.flat()[i] - b.flat()[i]));
  }
  return m;
}

// The untiled (PR 2) prefill pipeline for one head, rebuilt from public
// pieces: full Q·Kᵀ score materialization, exact row softmax over the whole
// context, one P quantization pass, one P·V launch, FP16 tail matmul. The
// tiled engine replaces the softmax/P phases but must land within
// quantization noise of this for any tile width.
Matrix untiled_reference_attention(const Matrix& q, const HackKvState& st,
                                   const AttentionOptions& options, Rng q_rng,
                                   Rng p_rng) {
  const HackAttentionConfig& cfg = st.config();
  const std::size_t lq = q.rows();
  const std::size_t lkv = st.tokens();
  const QuantizedMatrix qq = quantize(q, cfg.q_bits, cfg.pi, QuantAxis::kRow,
                                      cfg.rounding, q_rng,
                                      /*allow_ragged_tail=*/false);
  Matrix s = hq_matmul_nt(
      qq, st.k(), cfg.summation_elimination ? &st.k_sums() : nullptr);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(q.cols()));
  for (float& v : s.flat()) v *= inv_sqrt_d;
  const Matrix p = options.causal
                       ? softmax_rows_causal(s, options.key_offset)
                       : softmax_rows(s);
  const std::size_t vq_rows = st.quantized_v_rows();
  Matrix out;
  if (cfg.requant_elimination) {
    if (vq_rows > 0) {
      const QuantizedMatrix pq =
          quantize(take_cols(p, 0, vq_rows), cfg.q_bits, cfg.pi,
                   QuantAxis::kRow, cfg.rounding, p_rng,
                   /*allow_ragged_tail=*/false);
      out = hq_matmul(pq, st.v_quantized(),
                      cfg.summation_elimination ? &st.v_sums() : nullptr);
    } else {
      out = Matrix(lq, q.cols(), 0.0f);
    }
    if (vq_rows < lkv) {
      out = add(out, matmul(take_cols(p, vq_rows, lkv), st.v_tail_fp16()));
    }
  } else {
    const QuantizedMatrix v_all = st.v_quantized_all();
    const QuantizedMatrix pq =
        quantize(p, cfg.q_bits, cfg.pi, QuantAxis::kRow, cfg.rounding, p_rng,
                 /*allow_ragged_tail=*/true);
    out = hq_matmul(pq, v_all);
  }
  return out;
}

struct LayerInputs {
  Matrix q_all;  // [l, heads * d_head]
  Matrix k_all;  // [l, kv_heads * d_head]
  Matrix v_all;
};

LayerInputs make_layer_inputs(std::size_t l, std::size_t d_head,
                              std::size_t heads, std::size_t kv_heads,
                              std::uint64_t seed) {
  Rng rng(seed);
  return {Matrix::random_gaussian(l, heads * d_head, rng),
          Matrix::random_gaussian(l, kv_heads * d_head, rng),
          Matrix::random_gaussian(l, kv_heads * d_head, rng)};
}

// The per-head reference: one HackKvState + Rng(kSeed + h) per KV head,
// appended and attended in serial head order — exactly what the batched
// layer must reproduce bit-for-bit.
Matrix per_head_prefill(const LayerInputs& in, std::size_t d_head,
                        std::size_t heads, std::size_t kv_heads,
                        const HackAttentionConfig& cfg,
                        HackAttnStats* stats = nullptr) {
  const std::size_t group = heads / kv_heads;
  const std::size_t l = in.q_all.rows();
  Matrix out(l, heads * d_head);
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState state(d_head, cfg);
    Rng rng(kSeed + g);
    state.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                        take_cols(in.v_all, g * d_head, (g + 1) * d_head),
                        rng, stats);
    for (std::size_t sub = 0; sub < group; ++sub) {
      const std::size_t head = g * group + sub;
      const Matrix o = hack_attention(
          take_cols(in.q_all, head * d_head, (head + 1) * d_head), state,
          {.causal = true, .key_offset = 0}, rng, stats);
      for (std::size_t r = 0; r < l; ++r) {
        std::copy(o.row(r).begin(), o.row(r).end(),
                  out.row(r).begin() + head * d_head);
      }
    }
  }
  return out;
}

struct EquivCase {
  std::size_t heads, kv_heads;
  bool rqe, se;
};

class LayerEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(LayerEquivalence, BatchedPrefillBitIdenticalToPerHead) {
  const EquivCase& c = GetParam();
  const std::size_t d_head = 64;
  // 70 tokens with Π=32: two full V partitions plus a 6-row tail, so the
  // FP16-tail (RQE on) and ragged-group (RQE off) paths both run.
  const LayerInputs in = make_layer_inputs(70, d_head, c.heads, c.kv_heads, 3);

  HackAttentionConfig cfg;
  cfg.pi = 32;
  cfg.requant_elimination = c.rqe;
  cfg.summation_elimination = c.se;
  cfg.rounding = Rounding::kStochastic;

  HackAttnStats per_head_stats{};
  const Matrix expected = per_head_prefill(in, d_head, c.heads, c.kv_heads,
                                           cfg, &per_head_stats);

  for (const int threads : {1, 2, 0}) {
    HackAttentionConfig tcfg = cfg;
    tcfg.threads = threads;
    HackLayerKvState layer(d_head, c.kv_heads, c.heads, tcfg, kSeed);
    HackAttnStats batched_stats{};
    const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all,
                                     &batched_stats);
    EXPECT_TRUE(got == expected)
        << "heads=" << c.heads << " kv=" << c.kv_heads << " rqe=" << c.rqe
        << " se=" << c.se << " threads=" << threads;
    // The roll-up counts the same work the serial loop did (Σ b' recompute
    // sharing aside, which GQA legitimately amortizes).
    EXPECT_EQ(batched_stats.int_macs, per_head_stats.int_macs);
    EXPECT_EQ(batched_stats.quantized_values, per_head_stats.quantized_values);
    EXPECT_EQ(batched_stats.fp16_tail_macs, per_head_stats.fp16_tail_macs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gqa, LayerEquivalence,
    ::testing::Values(EquivCase{4, 4, true, true},    // MHA
                      EquivCase{8, 2, true, true},    // GQA 4:1
                      EquivCase{6, 3, true, true},    // GQA 2:1
                      EquivCase{8, 2, false, true},   // RQE off
                      EquivCase{8, 2, true, false},   // SE off
                      EquivCase{4, 2, false, false}));

TEST(LayerAttention, BatchedDecodeMatchesSerialDecodeCalls) {
  // One batched decode launch per step must equal H serial hack_attn_decode
  // calls on per-head states, token for token, bit for bit.
  const std::size_t d_head = 64, heads = 4;  // heads == kv_heads
  HackAttentionConfig cfg;
  cfg.pi = 32;

  HackLayerKvState layer(d_head, heads, heads, cfg, kSeed);
  std::vector<HackKvState> states(heads, HackKvState(d_head, cfg));
  std::vector<Rng> rngs;
  for (std::size_t h = 0; h < heads; ++h) rngs.emplace_back(kSeed + h);

  // Prefill both sides with the same prompt.
  const LayerInputs prompt = make_layer_inputs(48, d_head, heads, heads, 9);
  const Matrix batched_prefill =
      layer.prefill(prompt.q_all, prompt.k_all, prompt.v_all);
  Matrix serial_prefill(48, heads * d_head);
  for (std::size_t h = 0; h < heads; ++h) {
    Matrix o = hack_attn_prefill(
        take_cols(prompt.q_all, h * d_head, (h + 1) * d_head),
        take_cols(prompt.k_all, h * d_head, (h + 1) * d_head),
        take_cols(prompt.v_all, h * d_head, (h + 1) * d_head), states[h],
        rngs[h]);
    for (std::size_t r = 0; r < o.rows(); ++r) {
      std::copy(o.row(r).begin(), o.row(r).end(),
                serial_prefill.row(r).begin() + h * d_head);
    }
  }
  EXPECT_TRUE(batched_prefill == serial_prefill);

  for (std::size_t step = 0; step < 8; ++step) {
    const LayerInputs tok = make_layer_inputs(1, d_head, heads, heads,
                                              100 + step);
    const Matrix batched = layer.decode_step(tok.q_all, tok.k_all, tok.v_all);
    Matrix serial(1, heads * d_head);
    for (std::size_t h = 0; h < heads; ++h) {
      const Matrix o = hack_attn_decode(
          take_cols(tok.q_all, h * d_head, (h + 1) * d_head),
          take_cols(tok.k_all, h * d_head, (h + 1) * d_head),
          take_cols(tok.v_all, h * d_head, (h + 1) * d_head), states[h],
          rngs[h]);
      std::copy(o.row(0).begin(), o.row(0).end(),
                serial.row(0).begin() + h * d_head);
    }
    EXPECT_TRUE(batched == serial) << "decode step " << step;
  }

  // Per-layer accounting is the sum of the per-head states'.
  std::size_t wire = 0;
  for (const HackKvState& st : states) wire += st.wire_bytes();
  EXPECT_EQ(layer.wire_bytes(), wire);
  EXPECT_EQ(layer.tokens(), states[0].tokens());
}

TEST(LayerAttention, LargePrefillParallelAppendMatchesSerialHeads) {
  // A prompt big enough to cross the parallel-quantize threshold: the layer
  // appends all heads on the pool, the reference one head at a time — codes
  // and outputs must still match exactly.
  const std::size_t d_head = 64, heads = 4, kv_heads = 2;
  const LayerInputs in = make_layer_inputs(512, d_head, heads, kv_heads, 21);
  HackAttentionConfig cfg;
  cfg.pi = 32;

  const Matrix expected = per_head_prefill(in, d_head, heads, kv_heads, cfg);
  HackLayerKvState layer(d_head, kv_heads, heads, cfg, kSeed);
  const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all);
  EXPECT_TRUE(got == expected);

  // And the cached codes themselves are identical per head.
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState ref(d_head, cfg);
    Rng rng(kSeed + g);
    ref.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                      take_cols(in.v_all, g * d_head, (g + 1) * d_head), rng);
    EXPECT_EQ(layer.head_state(g).k().codes, ref.k().codes);
    EXPECT_EQ(layer.head_state(g).v_quantized().codes,
              ref.v_quantized().codes);
  }
}

// ---- streaming-softmax tiled prefill ---------------------------------------

struct TiledCase {
  std::size_t heads, kv_heads;
  bool rqe, se;
};

class TiledEquivalence : public ::testing::TestWithParam<TiledCase> {};

// Tiling changes which values the P quantizer sees (unnormalized exp weights
// per tile instead of one normalized softmax row), so tiled and untiled
// differ by two independent 8-bit stochastic quantization draws — an
// irreducible ≈ (max_p / 255) · √Π · ‖V‖ noise floor, NOT a tiling bug. The
// sweep therefore runs V at σ = 1/32 (the magnitude of value projections in
// trained models; unit-σ i.i.d. V is the quantizer's worst case), where that
// floor sits near 5e-4, and pins 1e-3 max-abs. UnitVarianceV below covers
// σ = 1 against the proportionally scaled bound.
TEST_P(TiledEquivalence, TiledMatchesUntiledAcrossTileWidths) {
  const TiledCase& c = GetParam();
  const std::size_t d_head = 64, l = 70;  // ragged V tail at Π=32
  LayerInputs in = make_layer_inputs(l, d_head, c.heads, c.kv_heads, 3);
  in.v_all = scale(in.v_all, 1.0f / 32.0f);

  HackAttentionConfig cfg;
  cfg.pi = 32;
  cfg.requant_elimination = c.rqe;
  cfg.summation_elimination = c.se;

  // Untiled reference: the PR 2 full-score pipeline, per head, with the
  // exact RNG forking discipline of the engine.
  Matrix ref(l, c.heads * d_head);
  const std::size_t group = c.heads / c.kv_heads;
  std::vector<HackKvState> ref_states;
  for (std::size_t g = 0; g < c.kv_heads; ++g) {
    HackKvState& st = ref_states.emplace_back(d_head, cfg);
    Rng rng(kSeed + g);
    st.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                     take_cols(in.v_all, g * d_head, (g + 1) * d_head), rng);
    for (std::size_t sub = 0; sub < group; ++sub) {
      const std::size_t head = g * group + sub;
      Rng q_rng = rng.fork();
      Rng p_rng = rng.fork();
      const Matrix o = untiled_reference_attention(
          take_cols(in.q_all, head * d_head, (head + 1) * d_head), st,
          {.causal = true, .key_offset = 0}, q_rng, p_rng);
      for (std::size_t r = 0; r < l; ++r) {
        std::copy(o.row(r).begin(), o.row(r).end(),
                  ref.row(r).begin() + head * d_head);
      }
    }
  }

  // Tile sweep: single-token tiles, a prime that cuts every Π group, exactly
  // L, and wider than L (one tile). All must agree with the untiled pipeline
  // within quantization noise, be bit-identical across thread counts, and
  // leave the cached K/V codes untouched by the tiling.
  for (const std::size_t tile : {std::size_t{1}, std::size_t{37},
                                 std::size_t{70}, std::size_t{128}}) {
    HackAttentionConfig tcfg = cfg;
    tcfg.tile_tokens = tile;
    Matrix first;
    for (const int threads : {1, 2, 0}) {
      tcfg.threads = threads;
      HackLayerKvState layer(d_head, c.kv_heads, c.heads, tcfg, kSeed);
      const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all);
      if (first.empty()) {
        first = got;
        EXPECT_LE(max_abs_diff(got, ref), 1e-3f)
            << "tile=" << tile << " heads=" << c.heads << " rqe=" << c.rqe
            << " se=" << c.se;
        for (std::size_t g = 0; g < c.kv_heads; ++g) {
          EXPECT_EQ(layer.head_state(g).k().codes, ref_states[g].k().codes)
              << "tile=" << tile;
          if (ref_states[g].quantized_v_rows() > 0) {
            EXPECT_EQ(layer.head_state(g).v_quantized().codes,
                      ref_states[g].v_quantized().codes)
                << "tile=" << tile;
          }
        }
      } else {
        EXPECT_TRUE(got == first)
            << "tile=" << tile << " threads=" << threads
            << ": banding changed the tiled result";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TiledEquivalence,
    ::testing::Values(TiledCase{4, 4, true, true},    // MHA
                      TiledCase{8, 2, true, true},    // GQA 4:1
                      TiledCase{8, 2, false, true},   // RQE off (spliced V)
                      TiledCase{8, 2, true, false},   // SE off
                      TiledCase{4, 2, false, false}));

TEST(LayerAttention, TiledTracksUntiledAtUnitVarianceV) {
  // Unit-σ V: the same comparison at the quantizer's worst case, against the
  // noise-floor-scaled bound (32 × the sweep's 1e-3) plus a relative check
  // that a structural bug (dropped tile, bad rescale, wrong segment) would
  // blow through.
  const std::size_t d_head = 64, l = 70, heads = 4, kv_heads = 2;
  const LayerInputs in = make_layer_inputs(l, d_head, heads, kv_heads, 3);
  HackAttentionConfig cfg;
  cfg.pi = 32;
  cfg.tile_tokens = 37;

  Matrix ref(l, heads * d_head);
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState st(d_head, cfg);
    Rng rng(kSeed + g);
    st.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                     take_cols(in.v_all, g * d_head, (g + 1) * d_head), rng);
    for (std::size_t sub = 0; sub < heads / kv_heads; ++sub) {
      const std::size_t head = g * (heads / kv_heads) + sub;
      Rng q_rng = rng.fork();
      Rng p_rng = rng.fork();
      const Matrix o = untiled_reference_attention(
          take_cols(in.q_all, head * d_head, (head + 1) * d_head), st,
          {.causal = true, .key_offset = 0}, q_rng, p_rng);
      for (std::size_t r = 0; r < l; ++r) {
        std::copy(o.row(r).begin(), o.row(r).end(),
                  ref.row(r).begin() + head * d_head);
      }
    }
  }
  HackLayerKvState layer(d_head, kv_heads, heads, cfg, kSeed);
  const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all);
  EXPECT_LE(max_abs_diff(got, ref), 32.0f * 1e-3f);
  float num = 0.0f, den = 0.0f;
  for (std::size_t i = 0; i < ref.flat().size(); ++i) {
    const float d = got.flat()[i] - ref.flat()[i];
    num += d * d;
    den += ref.flat()[i] * ref.flat()[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.02f);
}

TEST(LayerAttention, TileWidthResolutionPrecedence) {
  HackAttentionConfig cfg;
  cfg.pi = 64;
  cfg.tile_tokens = 123;
  EXPECT_EQ(attention_tile_tokens(cfg, 4096), 123u);  // explicit config wins
  cfg.tile_tokens = 0;
  const std::size_t auto_tile = attention_tile_tokens(cfg, 4096);
  EXPECT_GE(auto_tile, 64u);               // at least one partition
  EXPECT_LE(auto_tile, 4096u);             // bounded
  EXPECT_EQ(auto_tile % 64, 0u);           // whole-Π: segments stay whole
}

TEST(LayerAttention, WorkingSetModelMeetsLongContextBound) {
  // The acceptance shape: ctx 16384, 32 query heads over 8 KV heads,
  // d_head 128. The tiled model must be ≥ 8× under the PR 2 engine's
  // whole-score buffers for any plausible lane count.
  HackAttentionConfig cfg;
  cfg.pi = 64;
  const std::size_t tile = attention_tile_tokens(cfg, 16384);
  const std::size_t untiled =
      untiled_attention_working_set_bytes(16384, 16384, 32);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
    const std::size_t tiled =
        tiled_attention_working_set_bytes(16384, 16384, 32, 128, tile, lanes);
    EXPECT_GE(untiled, 8 * tiled) << "lanes=" << lanes << " tile=" << tile;
  }
}

#ifdef NDEBUG
TEST(LayerAttention, LongContextStreamingSmoke) {
  // Release-only: an 8k-token context streamed through the tiled engine at
  // two tile widths. Guards against accumulator drift and masking bugs that
  // only show up at depth; tolerance covers two independent P quantization
  // draws.
  const std::size_t d_head = 64, lkv = 8192, lq = 2048;
  Rng rng(5);
  const Matrix k = Matrix::random_gaussian(lkv, d_head, rng);
  const Matrix v =
      scale(Matrix::random_gaussian(lkv, d_head, rng), 1.0f / 32.0f);
  const Matrix q = Matrix::random_gaussian(lq, d_head, rng);

  Matrix outs[2];
  const std::size_t tiles[2] = {512, 1024};
  for (int i = 0; i < 2; ++i) {
    HackAttentionConfig cfg;
    cfg.pi = 64;
    cfg.tile_tokens = tiles[i];
    HackLayerKvState layer(d_head, 1, 1, cfg, kSeed);
    layer.append_tokens(k, v);
    outs[i] = layer.attend(q, {.causal = true, .key_offset = lkv - lq});
    ASSERT_EQ(outs[i].rows(), lq);
    for (const float x : outs[i].flat()) {
      ASSERT_TRUE(std::isfinite(x)) << "tile=" << tiles[i];
    }
  }
  EXPECT_LE(max_abs_diff(outs[0], outs[1]), 1e-3f);
}
#endif  // NDEBUG

TEST(LayerAttention, DecodeGemvBitIdenticalOnPackedResidentCache) {
  // The resident K/V planes hold bit-packed codes; the decode GEMV (one
  // 8-bit Q row against the packed K plane, one 8-bit P row against the
  // packed V store) must produce the same floats as the same GEMV over a
  // byte-unpacked copy of the identical codes. This pins the tentpole
  // contract at the hq_matmul layer on a real cache, not a synthetic view.
  const std::size_t d_head = 64;
  for (const int kv_bits : {2, 4}) {
    HackAttentionConfig cfg;
    cfg.pi = 32;
    cfg.kv_bits = kv_bits;
    HackKvState st(d_head, cfg);
    Rng rng(kSeed);
    const Matrix k = Matrix::random_gaussian(70, d_head, rng);
    const Matrix v = Matrix::random_gaussian(70, d_head, rng);
    st.append_tokens(k, v, rng);
    ASSERT_EQ(st.k().storage_bits, kv_bits);   // resident plane is packed
    ASSERT_GT(st.quantized_v_rows(), 0u);
    ASSERT_EQ(st.v_quantized().storage_bits, kv_bits);

    QuantizedMatrix k_bytes = st.k();
    unpack_storage(k_bytes);
    QuantizedMatrix v_bytes = st.v_quantized();
    unpack_storage(v_bytes);

    const Matrix q_row = Matrix::random_gaussian(1, d_head, rng);
    Rng q_rng(kSeed + 1);
    const QuantizedMatrix qq = quantize(q_row, cfg.q_bits, cfg.pi,
                                        QuantAxis::kRow, cfg.rounding, q_rng);
    const Matrix s_packed = hq_matmul_nt(qq, st.k(), &st.k_sums());
    const Matrix s_bytes = hq_matmul_nt(qq, k_bytes, &st.k_sums());
    EXPECT_TRUE(s_packed == s_bytes) << "kv_bits=" << kv_bits;

    const Matrix p_row =
        Matrix::random_gaussian(1, st.quantized_v_rows(), rng);
    Rng p_rng(kSeed + 2);
    const QuantizedMatrix pq = quantize(p_row, cfg.q_bits, cfg.pi,
                                        QuantAxis::kRow, cfg.rounding, p_rng);
    const Matrix o_packed = hq_matmul(pq, st.v_quantized(), &st.v_sums());
    const Matrix o_bytes = hq_matmul(pq, v_bytes, &st.v_sums());
    EXPECT_TRUE(o_packed == o_bytes) << "kv_bits=" << kv_bits;

    // And the resident footprint really is the packed one.
    EXPECT_EQ(st.k().codes.size(),
              st.k().rows * ((d_head * kv_bits + 7) / 8));
  }
}

TEST(LayerAttention, NonCausalTwoPassMatchesUntiledReference) {
  // Non-causal multi-row attends run the two-pass max-then-sum schedule
  // (score + quantize under running max, then a single rescaled-metadata
  // accumulate pass — no output-band rescale traffic). Against the untiled
  // full-softmax pipeline it must land within the same quantization-noise
  // bound as the causal tiled sweep, for every tile width, and be
  // bit-identical across thread counts at a fixed tile.
  const std::size_t d_head = 64, lkv = 70, lq = 9, heads = 4, kv_heads = 2;
  LayerInputs in = make_layer_inputs(lkv, d_head, heads, kv_heads, 3);
  in.v_all = scale(in.v_all, 1.0f / 32.0f);
  Rng qrng(8);
  const Matrix q_all = Matrix::random_gaussian(lq, heads * d_head, qrng);

  HackAttentionConfig cfg;
  cfg.pi = 32;

  Matrix ref(lq, heads * d_head);
  const std::size_t group = heads / kv_heads;
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState st(d_head, cfg);
    Rng rng(kSeed + g);
    st.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                     take_cols(in.v_all, g * d_head, (g + 1) * d_head), rng);
    for (std::size_t sub = 0; sub < group; ++sub) {
      const std::size_t head = g * group + sub;
      Rng q_rng = rng.fork();
      Rng p_rng = rng.fork();
      const Matrix o = untiled_reference_attention(
          take_cols(q_all, head * d_head, (head + 1) * d_head), st,
          {.causal = false, .key_offset = 0}, q_rng, p_rng);
      for (std::size_t r = 0; r < lq; ++r) {
        std::copy(o.row(r).begin(), o.row(r).end(),
                  ref.row(r).begin() + head * d_head);
      }
    }
  }

  // Tiles: single-token (max-correction exercised hardest), a prime that
  // splits Π groups, and wider than the context (tile max == final max, the
  // degenerate corr = 1 case).
  for (const std::size_t tile :
       {std::size_t{1}, std::size_t{37}, std::size_t{128}}) {
    HackAttentionConfig tcfg = cfg;
    tcfg.tile_tokens = tile;
    Matrix first;
    for (const int threads : {1, 2, 0}) {
      tcfg.threads = threads;
      HackLayerKvState layer(d_head, kv_heads, heads, tcfg, kSeed);
      layer.append_tokens(in.k_all, in.v_all);
      const Matrix got =
          layer.attend(q_all, {.causal = false, .key_offset = 0});
      if (first.empty()) {
        first = got;
        EXPECT_LE(max_abs_diff(got, ref), 1e-3f) << "tile=" << tile;
      } else {
        EXPECT_TRUE(got == first)
            << "tile=" << tile << " threads=" << threads
            << ": banding changed the two-pass result";
      }
    }
  }
}

TEST(LayerAttention, RejectsBadGeometry) {
  HackAttentionConfig cfg;
  cfg.pi = 32;
  EXPECT_THROW(HackLayerKvState(64, 3, 4, cfg, 0), CheckError);  // 3 ∤ 4
  EXPECT_THROW(HackLayerKvState(64, 0, 4, cfg, 0), CheckError);
  HackLayerKvState layer(64, 2, 4, cfg, 0);
  const LayerInputs in = make_layer_inputs(8, 64, 4, 2, 1);
  EXPECT_THROW(layer.append_tokens(in.k_all, in.q_all), CheckError);  // width
}

}  // namespace
}  // namespace hack
