#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "attention/layer_attention.h"
#include "base/thread_pool.h"

namespace hack {
namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// One admitted request's execution state: its session (KV backends +
// position), its KV block reservation, and the token feeding the next
// decode step.
struct ServingEngine::RunningSeq {
  RunningSeq(std::size_t record_idx,
             std::shared_ptr<const TinyModelWeights> weights,
             const LayerBackendFactory& factory)
      : record(record_idx), session(std::move(weights), factory) {}

  std::size_t record;  // index into records_
  TinyModelSession session;
  std::vector<BlockId> blocks;
  int last_token = -1;
};

ServingEngine::ServingEngine(
    std::shared_ptr<const TinyModelWeights> weights,
    std::function<LayerBackendFactory()> make_backend_factory,
    ServingEngineConfig config, BlockAllocator* allocator)
    : weights_(std::move(weights)),
      make_backend_factory_(std::move(make_backend_factory)),
      config_(config),
      scheduler_(config.scheduler),
      allocator_(allocator) {
  HACK_CHECK(weights_ != nullptr, "engine needs model weights");
  HACK_CHECK(make_backend_factory_ != nullptr,
             "engine needs a backend factory maker");
}

ServingEngine::~ServingEngine() = default;

double ServingEngine::now_s() const { return steady_now_s() - run_start_s_; }

void ServingEngine::submit(ServingRequest request) {
  HACK_CHECK(!request.prompt.empty(), "request needs a non-empty prompt");
  ServingRecord record;
  record.request = std::move(request);
  records_.push_back(std::move(record));
}

void ServingEngine::admit_arrivals(std::vector<std::size_t>& queued,
                                   double now) {
  std::vector<std::size_t> ready;
  for (const std::size_t idx : queued) {
    if (records_[idx].request.arrival_time_s <= now) ready.push_back(idx);
  }
  std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
    const double ta = records_[a].request.arrival_time_s;
    const double tb = records_[b].request.arrival_time_s;
    return ta != tb ? ta < tb : a < b;
  });
  for (const std::size_t idx : ready) {
    ServingRecord& rec = records_[idx];
    if (!scheduler_.can_ever_admit(rec.request, allocator_)) {
      rec.state = RequestState::kRejected;
      rec.finish_time_s = now;
      ++stats_.rejected;
      continue;
    }
    if (!scheduler_.can_admit(rec.request, running_.size(), allocator_)) {
      break;  // FCFS: later arrivals wait behind the head of the line
    }
    auto seq = std::make_unique<RunningSeq>(idx, weights_,
                                            make_backend_factory_());
    if (allocator_ != nullptr) {
      const std::size_t need = scheduler_.blocks_needed(rec.request);
      seq->blocks.reserve(need);
      for (std::size_t b = 0; b < need; ++b) {
        const BlockId id = allocator_->allocate();
        HACK_CHECK(id != kInvalidBlock, "allocator lied about capacity");
        seq->blocks.push_back(id);
      }
      rec.kv_blocks = need;
      stats_.kv_bytes_admitted += need * allocator_->block_bytes();
    }
    rec.state = RequestState::kPrefill;
    rec.admit_time_s = now;
    running_.push_back(std::move(seq));
    stats_.peak_running = std::max(stats_.peak_running, running_.size());
  }
}

void ServingEngine::finish_sequence(RunningSeq& seq, double now) {
  ServingRecord& rec = records_[seq.record];
  rec.state = RequestState::kFinished;
  rec.finish_time_s = now;
  if (allocator_ != nullptr) {
    for (const BlockId id : seq.blocks) allocator_->release(id);
    stats_.kv_bytes_released += seq.blocks.size() * allocator_->block_bytes();
    seq.blocks.clear();
  }
}

void ServingEngine::execute_step(const StepPlan& plan) {
  const double step_begin = now_s();

  struct Lane {
    std::size_t run_idx = 0;
    bool is_prefill = false;
    std::size_t chunk_begin = 0, chunk_end = 0;  // prompt rows (prefill)
    bool completes_prefill = false;
    bool emits = false;  // computes logits + greedy token for its last row
    std::size_t start_pos = 0, rows = 0;
    Matrix x;
    int token = -1;
  };

  // Decode lanes first; the (at most one) prefill lane last, so the phase
  // runner can execute it inline on the caller where its big row-parallel
  // matmuls can use the whole pool instead of being nested into one lane.
  std::vector<Lane> lanes;
  lanes.reserve(plan.decode.size() + 1);
  for (const std::size_t idx : plan.decode) {
    Lane lane;
    lane.run_idx = idx;
    lane.rows = 1;
    lane.emits = true;
    lanes.push_back(std::move(lane));
  }
  if (plan.prefill != kNoSequence) {
    RunningSeq& seq = *running_[plan.prefill];
    const ServingRecord& rec = records_[seq.record];
    Lane lane;
    lane.run_idx = plan.prefill;
    lane.is_prefill = true;
    lane.chunk_begin = plan.prefill_begin;
    lane.chunk_end = plan.prefill_end;
    lane.rows = plan.prefill_end - plan.prefill_begin;
    lane.completes_prefill = plan.prefill_end == rec.request.prompt.size();
    lane.emits = lane.completes_prefill && rec.request.max_new_tokens > 0;
    lanes.push_back(std::move(lane));
  }
  const std::size_t n_lanes = lanes.size();
  const bool has_prefill = plan.prefill != kNoSequence;
  const std::size_t n_light = has_prefill ? n_lanes - 1 : n_lanes;
  const int threads = config_.threads;

  // Phase runner: decode lanes fan out as pool tasks; the prefill lane runs
  // on the caller afterwards with the pool at its disposal.
  const auto run_lanes = [&](const std::function<void(std::size_t)>& fn) {
    parallel_for_each_index(n_light, threads, fn);
    if (has_prefill) fn(n_lanes - 1);
  };

  // --- Embed inputs.
  run_lanes([&](std::size_t i) {
    Lane& lane = lanes[i];
    RunningSeq& seq = *running_[lane.run_idx];
    lane.start_pos = seq.session.position();
    if (lane.is_prefill) {
      HACK_CHECK(lane.chunk_begin == lane.start_pos,
                 "prefill chunk out of order");
      const auto& prompt = records_[seq.record].request.prompt;
      lane.x = weights_->embed(
          {prompt.begin() + static_cast<std::ptrdiff_t>(lane.chunk_begin),
           prompt.begin() + static_cast<std::ptrdiff_t>(lane.chunk_end)});
    } else {
      lane.x = weights_->embed({seq.last_token});
    }
  });

  // --- Layer loop: per-sequence phase A, one fused (or per-sequence)
  // attention launch, per-sequence phase B.
  const std::size_t n_layers = weights_->config().layers;
  const bool fused = config_.fused_attention && n_layers > 0 &&
                     running_[lanes[0].run_idx]
                             ->session.backend(0)
                             .hack_state() != nullptr;
  std::vector<Matrix> q(n_lanes), attn(n_lanes);
  std::vector<AttentionOptions> attn_opts(n_lanes);
  for (std::size_t layer = 0; layer < n_layers; ++layer) {
    run_lanes([&](std::size_t i) {
      q[i] = running_[lanes[i].run_idx]->session.project_and_append(
          layer, lanes[i].x, lanes[i].start_pos);
    });
    if (fused) {
      MultiAttendBatch batch;
      for (std::size_t i = 0; i < n_lanes; ++i) {
        HackLayerKvState* state =
            running_[lanes[i].run_idx]->session.backend(layer).hack_state();
        HACK_CHECK(state != nullptr, "mixed backends in a fused step");
        attn_opts[i] = {.causal = true, .key_offset = lanes[i].start_pos};
        batch.add(*state, q[i], attn_opts[i], &attn[i]);
      }
      batch.run(threads);
      ++stats_.fused_attend_launches;
    } else {
      run_lanes([&](std::size_t i) {
        attn[i] = running_[lanes[i].run_idx]->session.backend(layer).attend(
            q[i], lanes[i].start_pos);
      });
    }
    run_lanes([&](std::size_t i) {
      lanes[i].x = running_[lanes[i].run_idx]->session.finish_layer(
          layer, std::move(lanes[i].x), attn[i]);
    });
  }

  // --- Commit positions, then one batched LM-head launch for every
  // emitting lane: the final hidden rows gather into a [batch × d] block and
  // sweep the tied embedding once ([batch × d] · [d × vocab]) instead of
  // per-lane vocab loops. Row r of logits_batch is bit-identical to the
  // per-lane logits_for_row call it replaces.
  run_lanes([&](std::size_t i) {
    running_[lanes[i].run_idx]->session.advance(lanes[i].rows);
  });
  std::vector<std::size_t> emit_idx;
  emit_idx.reserve(n_lanes);
  for (std::size_t i = 0; i < n_lanes; ++i) {
    if (lanes[i].emits) emit_idx.push_back(i);
  }
  if (!emit_idx.empty()) {
    Matrix hidden(emit_idx.size(), weights_->config().d_model());
    for (std::size_t m = 0; m < emit_idx.size(); ++m) {
      const Lane& lane = lanes[emit_idx[m]];
      const auto row = lane.x.row(lane.rows - 1);
      std::copy(row.begin(), row.end(), hidden.row(m).begin());
    }
    const Matrix logits = weights_->logits_batch(hidden, threads);
    for (std::size_t m = 0; m < emit_idx.size(); ++m) {
      lanes[emit_idx[m]].token = argmax_logits(logits.row(m));
    }
  }

  // --- Bookkeeping (serial: timestamps, state transitions, removals).
  const double now = now_s();
  std::size_t emitted_this_step = 0;
  std::vector<std::size_t> finished;
  for (const Lane& lane : lanes) {
    RunningSeq& seq = *running_[lane.run_idx];
    ServingRecord& rec = records_[seq.record];
    if (lane.is_prefill) {
      rec.prefill_done = lane.chunk_end;
      ++stats_.prefill_chunks;
      if (!lane.completes_prefill) continue;
      if (rec.request.max_new_tokens == 0) {
        finish_sequence(seq, now);
        finished.push_back(lane.run_idx);
        continue;
      }
      rec.state = RequestState::kDecoding;
    }
    // Greedy emission, exactly TinyTransformer::generate's rules: an eos
    // argmax stops without being recorded; max_new_tokens bounds the count.
    if (lane.token == rec.request.eos) {
      finish_sequence(seq, now);
      finished.push_back(lane.run_idx);
      continue;
    }
    rec.generated.push_back(lane.token);
    rec.token_times_s.push_back(now);
    if (rec.first_token_time_s < 0) rec.first_token_time_s = now;
    ++total_generated_;
    ++emitted_this_step;
    if (rec.generated.size() >= rec.request.max_new_tokens) {
      finish_sequence(seq, now);
      finished.push_back(lane.run_idx);
    } else {
      seq.last_token = lane.token;
    }
  }
  std::sort(finished.begin(), finished.end());
  for (auto it = finished.rbegin(); it != finished.rend(); ++it) {
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(*it));
  }

  ++stats_.steps;
  if (!plan.decode.empty()) {
    decode_time_s_ += now - step_begin;
    decode_step_tokens_ += emitted_this_step;
    if (plan.prefill == kNoSequence) {
      pure_decode_time_s_ += now - step_begin;
      pure_decode_tokens_ += emitted_this_step;
    }
  }
}

ServingReport ServingEngine::run() {
  HACK_CHECK(running_.empty(), "run() while an episode is active");
  run_start_s_ = steady_now_s();
  stats_ = {};
  total_generated_ = 0;
  decode_time_s_ = 0.0;
  decode_step_tokens_ = 0;
  pure_decode_time_s_ = 0.0;
  pure_decode_tokens_ = 0;
  double last_finish_s = 0.0;

  for (;;) {
    std::vector<std::size_t> queued;
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (records_[i].state == RequestState::kQueued) queued.push_back(i);
    }
    if (queued.empty() && running_.empty()) break;

    const double scan_now = now_s();
    admit_arrivals(queued, scan_now);

    if (running_.empty()) {
      // A ready request that an idle engine cannot admit is a wedge (e.g. an
      // external tenant of a shared allocator holding every block), not a
      // queue: fail loudly instead of spinning. Judged at the admission
      // scan's own timestamp — a request whose arrival lands between two
      // clock reads is a race, not a wedge, and the next scan admits it.
      const double now = scan_now;
      for (const std::size_t idx : queued) {
        const ServingRecord& rec = records_[idx];
        HACK_CHECK(rec.state != RequestState::kQueued ||
                       rec.request.arrival_time_s > now,
                   "admission wedged: request " << rec.request.id
                       << " is due but cannot be admitted into an idle "
                          "engine");
      }
    }

    std::vector<Scheduler::SeqView> views;
    views.reserve(running_.size());
    for (const auto& seq : running_) {
      const ServingRecord& rec = records_[seq->record];
      views.push_back({rec.state, rec.request.prompt.size(),
                       rec.prefill_done});
    }
    const StepPlan plan = scheduler_.plan(views);
    if (plan.empty()) {
      // Nothing runnable: wait for the next arrival (there must be one —
      // otherwise admission is wedged, e.g. an external allocator tenant
      // holding every block).
      double next = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < records_.size(); ++i) {
        if (records_[i].state == RequestState::kQueued) {
          next = std::min(next, records_[i].request.arrival_time_s);
        }
      }
      if (next == std::numeric_limits<double>::infinity()) break;  // all done
      HACK_CHECK(running_.empty(),
                 "empty plan with sequences in the running batch");
      const double wait = next - now_s();
      if (wait > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      }
      continue;  // the arrival is due now; the next scan admits it
    }

    execute_step(plan);
    for (const auto& rec : records_) {
      if (rec.done()) last_finish_s = std::max(last_finish_s,
                                               rec.finish_time_s);
    }
  }

  ServingReport report;
  report.requests = records_;
  report.makespan_s = last_finish_s;
  report.total_generated = total_generated_;
  report.decode_time_s = decode_time_s_;
  if (last_finish_s > 0.0) {
    report.tokens_per_s =
        static_cast<double>(total_generated_) / last_finish_s;
  }
  if (decode_time_s_ > 0.0) {
    report.decode_tokens_per_s =
        static_cast<double>(decode_step_tokens_) / decode_time_s_;
  }
  report.pure_decode_time_s = pure_decode_time_s_;
  if (pure_decode_time_s_ > 0.0) {
    report.pure_decode_tokens_per_s =
        static_cast<double>(pure_decode_tokens_) / pure_decode_time_s_;
  }
  std::vector<double> ttft, jct, tbt;
  std::size_t finished_count = 0;
  for (const ServingRecord& rec : records_) {
    if (rec.state != RequestState::kFinished) continue;
    ++finished_count;
    if (rec.first_token_time_s >= 0.0) ttft.push_back(rec.ttft_s());
    jct.push_back(rec.jct_s());
    const std::vector<double> gaps = rec.tbt_s();
    tbt.insert(tbt.end(), gaps.begin(), gaps.end());
  }
  if (last_finish_s > 0.0) {
    report.goodput_rps =
        static_cast<double>(finished_count) / last_finish_s;
  }
  // Rollups stay default (count 0) over empty sample sets — a run can
  // legitimately finish with no tokens (all rejected, or max_new 0) or no
  // token gaps (single-token outputs).
  if (!ttft.empty()) report.ttft_s = compute_stats(std::move(ttft));
  if (!jct.empty()) report.jct_s = compute_stats(std::move(jct));
  if (!tbt.empty()) report.tbt_s = compute_stats(std::move(tbt));
  report.engine = stats_;
  return report;
}

}  // namespace hack
