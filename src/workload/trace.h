// Trace record / replay.
//
// The paper's experiments are trace-driven (§1: "extensive trace-driven
// experiments"). A Trace captures a concrete arrival sequence — time plus
// input/output lengths per request — in a stable line-based text format, so
// a workload sampled once can be replayed bit-identically across methods,
// machines, and code versions, or captured from production and fed to the
// simulator.
//
// Format (one request per line, '#' comments allowed):
//   arrival_time_s input_tokens output_tokens
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/arrivals.h"

namespace hack {

struct Trace {
  std::vector<ArrivalRecord> requests;

  // Serializes to the line format above.
  std::string serialize() const;

  // Parses the line format; throws CheckError on malformed input.
  static Trace parse(const std::string& text);

  // Captures a synthetic workload (dataset model + Poisson arrivals).
  static Trace record(const DatasetSpec& dataset, double rps, int count,
                      Rng& rng);
};

bool operator==(const ArrivalRecord& a, const ArrivalRecord& b);
bool operator==(const Trace& a, const Trace& b);

}  // namespace hack
