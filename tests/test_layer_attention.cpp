// Tests for the batched multi-head attention engine: a HackLayerKvState must
// produce bit-identical outputs to serial per-head hack_attention /
// hack_attn_decode calls over HackKvStates with matching RNG seeds, for any
// GQA grouping, RQE/SE setting, and thread count.
#include <gtest/gtest.h>

#include "attention/hack_attention.h"
#include "attention/layer_attention.h"
#include "tensor/ops.h"

namespace hack {
namespace {

constexpr std::uint64_t kSeed = 77;

struct LayerInputs {
  Matrix q_all;  // [l, heads * d_head]
  Matrix k_all;  // [l, kv_heads * d_head]
  Matrix v_all;
};

LayerInputs make_layer_inputs(std::size_t l, std::size_t d_head,
                              std::size_t heads, std::size_t kv_heads,
                              std::uint64_t seed) {
  Rng rng(seed);
  return {Matrix::random_gaussian(l, heads * d_head, rng),
          Matrix::random_gaussian(l, kv_heads * d_head, rng),
          Matrix::random_gaussian(l, kv_heads * d_head, rng)};
}

// The per-head reference: one HackKvState + Rng(kSeed + h) per KV head,
// appended and attended in serial head order — exactly what the batched
// layer must reproduce bit-for-bit.
Matrix per_head_prefill(const LayerInputs& in, std::size_t d_head,
                        std::size_t heads, std::size_t kv_heads,
                        const HackAttentionConfig& cfg,
                        HackAttnStats* stats = nullptr) {
  const std::size_t group = heads / kv_heads;
  const std::size_t l = in.q_all.rows();
  Matrix out(l, heads * d_head);
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState state(d_head, cfg);
    Rng rng(kSeed + g);
    state.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                        take_cols(in.v_all, g * d_head, (g + 1) * d_head),
                        rng, stats);
    for (std::size_t sub = 0; sub < group; ++sub) {
      const std::size_t head = g * group + sub;
      const Matrix o = hack_attention(
          take_cols(in.q_all, head * d_head, (head + 1) * d_head), state,
          {.causal = true, .key_offset = 0}, rng, stats);
      for (std::size_t r = 0; r < l; ++r) {
        std::copy(o.row(r).begin(), o.row(r).end(),
                  out.row(r).begin() + head * d_head);
      }
    }
  }
  return out;
}

struct EquivCase {
  std::size_t heads, kv_heads;
  bool rqe, se;
};

class LayerEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(LayerEquivalence, BatchedPrefillBitIdenticalToPerHead) {
  const EquivCase& c = GetParam();
  const std::size_t d_head = 64;
  // 70 tokens with Π=32: two full V partitions plus a 6-row tail, so the
  // FP16-tail (RQE on) and ragged-group (RQE off) paths both run.
  const LayerInputs in = make_layer_inputs(70, d_head, c.heads, c.kv_heads, 3);

  HackAttentionConfig cfg;
  cfg.pi = 32;
  cfg.requant_elimination = c.rqe;
  cfg.summation_elimination = c.se;
  cfg.rounding = Rounding::kStochastic;

  HackAttnStats per_head_stats{};
  const Matrix expected = per_head_prefill(in, d_head, c.heads, c.kv_heads,
                                           cfg, &per_head_stats);

  for (const int threads : {1, 2, 0}) {
    HackAttentionConfig tcfg = cfg;
    tcfg.threads = threads;
    HackLayerKvState layer(d_head, c.kv_heads, c.heads, tcfg, kSeed);
    HackAttnStats batched_stats{};
    const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all,
                                     &batched_stats);
    EXPECT_TRUE(got == expected)
        << "heads=" << c.heads << " kv=" << c.kv_heads << " rqe=" << c.rqe
        << " se=" << c.se << " threads=" << threads;
    // The roll-up counts the same work the serial loop did (Σ b' recompute
    // sharing aside, which GQA legitimately amortizes).
    EXPECT_EQ(batched_stats.int_macs, per_head_stats.int_macs);
    EXPECT_EQ(batched_stats.quantized_values, per_head_stats.quantized_values);
    EXPECT_EQ(batched_stats.fp16_tail_macs, per_head_stats.fp16_tail_macs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gqa, LayerEquivalence,
    ::testing::Values(EquivCase{4, 4, true, true},    // MHA
                      EquivCase{8, 2, true, true},    // GQA 4:1
                      EquivCase{6, 3, true, true},    // GQA 2:1
                      EquivCase{8, 2, false, true},   // RQE off
                      EquivCase{8, 2, true, false},   // SE off
                      EquivCase{4, 2, false, false}));

TEST(LayerAttention, BatchedDecodeMatchesSerialDecodeCalls) {
  // One batched decode launch per step must equal H serial hack_attn_decode
  // calls on per-head states, token for token, bit for bit.
  const std::size_t d_head = 64, heads = 4;  // heads == kv_heads
  HackAttentionConfig cfg;
  cfg.pi = 32;

  HackLayerKvState layer(d_head, heads, heads, cfg, kSeed);
  std::vector<HackKvState> states(heads, HackKvState(d_head, cfg));
  std::vector<Rng> rngs;
  for (std::size_t h = 0; h < heads; ++h) rngs.emplace_back(kSeed + h);

  // Prefill both sides with the same prompt.
  const LayerInputs prompt = make_layer_inputs(48, d_head, heads, heads, 9);
  const Matrix batched_prefill =
      layer.prefill(prompt.q_all, prompt.k_all, prompt.v_all);
  Matrix serial_prefill(48, heads * d_head);
  for (std::size_t h = 0; h < heads; ++h) {
    Matrix o = hack_attn_prefill(
        take_cols(prompt.q_all, h * d_head, (h + 1) * d_head),
        take_cols(prompt.k_all, h * d_head, (h + 1) * d_head),
        take_cols(prompt.v_all, h * d_head, (h + 1) * d_head), states[h],
        rngs[h]);
    for (std::size_t r = 0; r < o.rows(); ++r) {
      std::copy(o.row(r).begin(), o.row(r).end(),
                serial_prefill.row(r).begin() + h * d_head);
    }
  }
  EXPECT_TRUE(batched_prefill == serial_prefill);

  for (std::size_t step = 0; step < 8; ++step) {
    const LayerInputs tok = make_layer_inputs(1, d_head, heads, heads,
                                              100 + step);
    const Matrix batched = layer.decode_step(tok.q_all, tok.k_all, tok.v_all);
    Matrix serial(1, heads * d_head);
    for (std::size_t h = 0; h < heads; ++h) {
      const Matrix o = hack_attn_decode(
          take_cols(tok.q_all, h * d_head, (h + 1) * d_head),
          take_cols(tok.k_all, h * d_head, (h + 1) * d_head),
          take_cols(tok.v_all, h * d_head, (h + 1) * d_head), states[h],
          rngs[h]);
      std::copy(o.row(0).begin(), o.row(0).end(),
                serial.row(0).begin() + h * d_head);
    }
    EXPECT_TRUE(batched == serial) << "decode step " << step;
  }

  // Per-layer accounting is the sum of the per-head states'.
  std::size_t wire = 0;
  for (const HackKvState& st : states) wire += st.wire_bytes();
  EXPECT_EQ(layer.wire_bytes(), wire);
  EXPECT_EQ(layer.tokens(), states[0].tokens());
}

TEST(LayerAttention, LargePrefillParallelAppendMatchesSerialHeads) {
  // A prompt big enough to cross the parallel-quantize threshold: the layer
  // appends all heads on the pool, the reference one head at a time — codes
  // and outputs must still match exactly.
  const std::size_t d_head = 64, heads = 4, kv_heads = 2;
  const LayerInputs in = make_layer_inputs(512, d_head, heads, kv_heads, 21);
  HackAttentionConfig cfg;
  cfg.pi = 32;

  const Matrix expected = per_head_prefill(in, d_head, heads, kv_heads, cfg);
  HackLayerKvState layer(d_head, kv_heads, heads, cfg, kSeed);
  const Matrix got = layer.prefill(in.q_all, in.k_all, in.v_all);
  EXPECT_TRUE(got == expected);

  // And the cached codes themselves are identical per head.
  for (std::size_t g = 0; g < kv_heads; ++g) {
    HackKvState ref(d_head, cfg);
    Rng rng(kSeed + g);
    ref.append_tokens(take_cols(in.k_all, g * d_head, (g + 1) * d_head),
                      take_cols(in.v_all, g * d_head, (g + 1) * d_head), rng);
    EXPECT_EQ(layer.head_state(g).k().codes, ref.k().codes);
    EXPECT_EQ(layer.head_state(g).v_quantized().codes,
              ref.v_quantized().codes);
  }
}

TEST(LayerAttention, RejectsBadGeometry) {
  HackAttentionConfig cfg;
  cfg.pi = 32;
  EXPECT_THROW(HackLayerKvState(64, 3, 4, cfg, 0), CheckError);  // 3 ∤ 4
  EXPECT_THROW(HackLayerKvState(64, 0, 4, cfg, 0), CheckError);
  HackLayerKvState layer(64, 2, 4, cfg, 0);
  const LayerInputs in = make_layer_inputs(8, 64, 4, 2, 1);
  EXPECT_THROW(layer.append_tokens(in.k_all, in.q_all), CheckError);  // width
}

}  // namespace
}  // namespace hack
