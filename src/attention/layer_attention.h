// Batched multi-head HACK attention: every head of a transformer layer runs
// through one quantize pass and fused head-parallel HQ-GEMM launches.
//
// The per-head kernels in hack_attention.h process one (query head, KV head)
// pair at a time; at serving shapes (tens of heads, single-row decode) that
// hands the blocked HQ-GEMM engine tiny matmuls and leaves the ThreadPool
// idle between launches. This module batches a whole layer:
//
//   - HackLayerKvState owns all KV-head states of a layer plus one RNG
//     stream per KV head. Appended K/V is quantized for every head in one
//     pass (head-parallel on the shared pool for prefill-sized chunks) and
//     the stats of all heads roll up into a single HackAttnStats.
//   - hack_attention_batched() is the engine: it forks the Q- and P-quantizer
//     sub-streams for every head up front (in head order, so results are
//     bit-identical to serial per-head calls for any thread count), quantizes
//     all Q heads, then drives the prefill Q·Kᵀ and P·V of every head through
//     hq_matmul_*_batched — a single parallel_for over (head × row-band) work
//     items. Softmax and the RQE FP16-tail matmuls run head-parallel between
//     the launches. Single-row queries take the same path, which makes decode
//     one batched GEMV launch for all heads of the layer instead of H serial
//     calls. Heads are launched in chunks capped at a fixed score-memory
//     budget so the softmax → quantize → P·V phases stream from cache, not
//     DRAM, at long contexts (see docs/perf.md); chunking cannot change
//     results because all sub-streams are forked before the first chunk.
//
// hack_attention() in hack_attention.h is a thin wrapper over this engine
// with a single task.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attention/hack_attention.h"

namespace hack {

// One query head's attention problem over one KV head's quantized state.
// `q_rng` / `p_rng` are the pre-forked sub-streams for quantizing Q and P.
// Several tasks may share a `state` (GQA query heads reading one KV head);
// the engine prepares that head's Eq. (4) factors once.
struct HeadAttentionTask {
  const Matrix* q = nullptr;     // [lq, d_head] slice for this query head
  HackKvState* state = nullptr;  // KV head this query head attends over
  Rng* q_rng = nullptr;
  Rng* p_rng = nullptr;
};

// Runs every task's attention and writes outs[t] ([lq, d_head] per task).
// `stats` (optional) accumulates the work of all tasks. `threads` follows the
// HQ-GEMM convention: 0 = auto (all lanes of the shared pool), 1 = serial,
// N = N-way decomposition. Outputs are bit-identical for any thread count.
void hack_attention_batched(std::span<HeadAttentionTask> tasks,
                            const AttentionOptions& options,
                            std::vector<Matrix>& outs,
                            HackAttnStats* stats = nullptr, int threads = 0);

// All KV-head states of one transformer layer, with the batched engine wired
// through append/attend. Matrix arguments are head-major slabs: K/V are
// [n, kv_heads * d_head], Q and the attention output [lq, query_heads *
// d_head], query head h reading KV head h / (query_heads / kv_heads).
//
// RNG discipline: KV head h draws from an independent stream seeded
// `seed + h`, used for its K/V quantization on append and forked (in query-
// head order) into the engine's Q/P sub-streams on attend. A layer therefore
// produces bit-identical output to query_heads serial hack_attention calls
// over per-head HackKvStates seeded the same way.
class HackLayerKvState {
 public:
  HackLayerKvState(std::size_t d_head, std::size_t kv_heads,
                   std::size_t query_heads, const HackAttentionConfig& config,
                   std::uint64_t seed);

  const HackAttentionConfig& config() const { return config_; }
  std::size_t d_head() const { return d_head_; }
  std::size_t kv_heads() const { return kv_heads_; }
  std::size_t query_heads() const { return query_heads_; }
  std::size_t tokens() const { return states_.empty() ? 0 : states_[0].tokens(); }

  // Appends `n` new tokens' K/V rows for every KV head in one pass.
  void append_tokens(const Matrix& k_all, const Matrix& v_all,
                     HackAttnStats* stats = nullptr);

  // Attention of all query heads over the cached tokens, batched.
  Matrix attend(const Matrix& q_all, const AttentionOptions& options,
                HackAttnStats* stats = nullptr);

  // Fused prefill: ingests the prompt's K/V and attends causally from
  // key_offset 0. The state must be fresh.
  Matrix prefill(const Matrix& q_all, const Matrix& k_all,
                 const Matrix& v_all, HackAttnStats* stats = nullptr);

  // One decode step: appends the new token's K/V rows (one per KV head) and
  // returns the single-row attention output for all query heads.
  Matrix decode_step(const Matrix& q_all, const Matrix& k_all,
                     const Matrix& v_all, HackAttnStats* stats = nullptr);

  // Memory accounting summed over KV heads (per-layer wire/cache footprint).
  std::size_t packed_kv_bytes() const;
  std::size_t sum_cache_bytes() const;
  std::size_t fp16_tail_bytes() const;
  std::size_t wire_bytes() const;

  // Per-KV-head access for tests.
  const HackKvState& head_state(std::size_t kv_head) const;

 private:
  HackAttentionConfig config_;
  std::size_t d_head_;
  std::size_t kv_heads_;
  std::size_t query_heads_;
  std::size_t group_;  // query heads per KV head
  std::vector<HackKvState> states_;
  std::vector<Rng> rngs_;
};

}  // namespace hack
