#include "cluster/instance.h"

namespace hack {

// Selection helpers live in simulator.cpp next to the dispatch policy; this
// translation unit exists so the replica types stay header-only but the
// library still owns a home for future replica logic.

}  // namespace hack
