// Batched multi-head HACK attention: every head of a transformer layer runs
// through one quantize pass and fused head-parallel HQ-GEMM launches.
//
// The per-head kernels in hack_attention.h process one (query head, KV head)
// pair at a time; at serving shapes (tens of heads, single-row decode) that
// hands the blocked HQ-GEMM engine tiny matmuls and leaves the ThreadPool
// idle between launches. This module batches a whole layer:
//
//   - HackLayerKvState owns all KV-head states of a layer plus one RNG
//     stream per KV head. Appended K/V is quantized for every head in one
//     pass (head-parallel on the shared pool for prefill-sized chunks) and
//     the stats of all heads roll up into a single HackAttnStats.
//   - hack_attention_batched() is the engine: it forks the Q- and P-quantizer
//     sub-streams for every head up front (in head order, so results are
//     bit-identical to serial per-head calls for any thread count) and
//     quantizes all Q heads. Multi-row (prefill) tasks then run a
//     streaming-softmax pass: each (head × q-row-band) work item walks the
//     key dimension in KV tiles, computing the Q·Kᵀ score tile, folding it
//     into a running row-max / rescaled-accumulator online softmax
//     (flash-style), quantizing the tile's softmax weights per absolute
//     Π-aligned segment, and accumulating the Eq. (4) P·V contribution —
//     all inside the item, so per-head score memory is O(q_rows · tile)
//     instead of O(L²) and the softmax → quantize → P·V phases stay
//     cache-resident at 16k+ contexts. Single-row queries keep the flat
//     path, which makes decode one batched GEMV launch for all heads.
//     P-tile sub-streams are forked per (head, tile, row) before dispatch
//     order matters, so outputs are bit-identical for any thread count and
//     any band decomposition (tile width does change the P codes, by
//     design — outputs agree within quantization noise).
//
// hack_attention() in hack_attention.h is a thin wrapper over this engine
// with a single task.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "attention/hack_attention.h"

namespace hack {

// One query head's attention problem over one KV head's quantized state.
// `q_rng` / `p_rng` are the pre-forked sub-streams for quantizing Q and P.
// Several tasks may share a `state` (GQA query heads reading one KV head);
// the engine prepares that head's Eq. (4) factors once.
//
// `options` (optional) overrides the launch-level AttentionOptions for this
// task alone. Multi-sequence launches use it: tasks of different serving
// sequences carry different key offsets (and cache lengths) yet run in one
// batched dispatch. Every task's computation touches only its own inputs, so
// outputs are identical whether tasks launch together or one call at a time.
struct HeadAttentionTask {
  const Matrix* q = nullptr;     // [lq, d_head] slice for this query head
  HackKvState* state = nullptr;  // KV head this query head attends over
  Rng* q_rng = nullptr;
  Rng* p_rng = nullptr;
  const AttentionOptions* options = nullptr;  // null: use the call-level one
};

// Runs every task's attention and writes outs[t] ([lq, d_head] per task).
// `stats` (optional) accumulates the work of all tasks. `threads` follows the
// HQ-GEMM convention: 0 = auto (all lanes of the shared pool), 1 = serial,
// N = N-way decomposition. Outputs are bit-identical for any thread count.
void hack_attention_batched(std::span<HeadAttentionTask> tasks,
                            const AttentionOptions& options,
                            std::vector<Matrix>& outs,
                            HackAttnStats* stats = nullptr, int threads = 0);

// Resolved KV-tile width for a streaming prefill over `lkv` cached tokens:
// config.tile_tokens when set, else the HACK_ATTN_TILE_TOKENS environment
// override, else an L2-aware heuristic — the largest whole-Π tile whose
// per-band score + P-code state (≈ 5 bytes/cell over a 64-row q band) fits
// half the per-core L2, clamped to [Π, 4096]. Whole-Π tiles keep every
// quantization segment SumCache-readable; the cap bounds the diagonal-tile
// overshoot of causal masking.
std::size_t attention_tile_tokens(const HackAttentionConfig& config,
                                  std::size_t lkv);

// Modeled peak attention working set (bytes) of one batched multi-head
// launch, for the bench comparison and capacity planning. The tiled model
// counts the at-most-`lanes` in-flight (head × q-row-band) items, each
// holding a band × tile score/P-code block (5 B/cell), the band × d_head
// int32 P·V accumulator tile, and per-segment factor vectors. The untiled
// model is the PR 2 engine: every in-flight head held full lq × lkv score,
// softmax, and P-code buffers (9 B/cell), chunked at a 96 MiB budget with a
// one-head floor.
std::size_t tiled_attention_working_set_bytes(std::size_t lq, std::size_t lkv,
                                              std::size_t query_heads,
                                              std::size_t d_head,
                                              std::size_t tile,
                                              std::size_t lanes);
std::size_t untiled_attention_working_set_bytes(std::size_t lq,
                                                std::size_t lkv,
                                                std::size_t query_heads);

// All KV-head states of one transformer layer, with the batched engine wired
// through append/attend. Matrix arguments are head-major slabs: K/V are
// [n, kv_heads * d_head], Q and the attention output [lq, query_heads *
// d_head], query head h reading KV head h / (query_heads / kv_heads).
//
// RNG discipline: KV head h draws from an independent stream seeded
// `seed + h`, used for its K/V quantization on append and forked (in query-
// head order) into the engine's Q/P sub-streams on attend. A layer therefore
// produces bit-identical output to query_heads serial hack_attention calls
// over per-head HackKvStates seeded the same way.
class HackLayerKvState {
 public:
  HackLayerKvState(std::size_t d_head, std::size_t kv_heads,
                   std::size_t query_heads, const HackAttentionConfig& config,
                   std::uint64_t seed);

  const HackAttentionConfig& config() const { return config_; }
  std::size_t d_head() const { return d_head_; }
  std::size_t kv_heads() const { return kv_heads_; }
  std::size_t query_heads() const { return query_heads_; }
  std::size_t tokens() const { return states_.empty() ? 0 : states_[0].tokens(); }

  // Appends `n` new tokens' K/V rows for every KV head in one pass.
  void append_tokens(const Matrix& k_all, const Matrix& v_all,
                     HackAttnStats* stats = nullptr);

  // Attention of all query heads over the cached tokens, batched.
  Matrix attend(const Matrix& q_all, const AttentionOptions& options,
                HackAttnStats* stats = nullptr);

  // Fused prefill: ingests the prompt's K/V and attends causally from
  // key_offset 0. The state must be fresh.
  Matrix prefill(const Matrix& q_all, const Matrix& k_all,
                 const Matrix& v_all, HackAttnStats* stats = nullptr);

  // One decode step: appends the new token's K/V rows (one per KV head) and
  // returns the single-row attention output for all query heads.
  Matrix decode_step(const Matrix& q_all, const Matrix& k_all,
                     const Matrix& v_all, HackAttnStats* stats = nullptr);

  // Memory accounting summed over KV heads (per-layer wire/cache footprint).
  std::size_t packed_kv_bytes() const;
  // Actual in-memory bytes of the resident code planes (see HackKvState).
  std::size_t resident_code_bytes() const;
  std::size_t sum_cache_bytes() const;
  std::size_t fp16_tail_bytes() const;
  std::size_t wire_bytes() const;

  // Per-KV-head access for tests.
  const HackKvState& head_state(std::size_t kv_head) const;

  // Mutable per-KV-head access for the multi-sequence attention batch.
  HackKvState& head_state_mut(std::size_t kv_head);

  // KV head h's master RNG stream. The KV wire format ships its raw state so
  // a rehydrated decode instance draws the exact sequence the prefill
  // instance would have drawn next — what makes the handoff bit-identical
  // under stochastic rounding.
  const Rng& head_rng(std::size_t kv_head) const;
  void set_head_rng(std::size_t kv_head, const Rng& rng);

  // Forks the Q/P quantizer sub-streams exactly as one attend() call would:
  // query-head order within each KV head, two forks per query head. The
  // multi-sequence batch calls this once per staged attend, so a sequence's
  // master-stream consumption is identical whether its attends run solo or
  // fused with other sequences.
  void fork_attend_streams(std::vector<Rng>& q_rngs, std::vector<Rng>& p_rngs);

 private:
  HackAttentionConfig config_;
  std::size_t d_head_;
  std::size_t kv_heads_;
  std::size_t query_heads_;
  std::size_t group_;  // query heads per KV head
  std::vector<HackKvState> states_;
  std::vector<Rng> rngs_;
};

// Cross-sequence fused attention: the layer attends of several sequences —
// each over its own HackLayerKvState, with its own query rows and key offset
// — staged into one hack_attention_batched launch. This is what keeps the
// thread pool fed under continuous batching: at decode shapes one sequence
// contributes query_heads single-row tasks, so a batch of N sequences gives
// the engine N × query_heads independent (head × q-band) work items in a
// single dispatch instead of N small ones.
//
// add() forks the sequence's Q/P quantizer sub-streams immediately (the same
// draws its solo attend() would make) and run() launches everything batched;
// because every task computes only from its own inputs, each sequence's
// output is bit-identical to a solo attend() on its state. attend() itself
// is a batch of one.
class MultiAttendBatch {
 public:
  // Stages one sequence's layer attend. `q_all` is [lq, query_heads *
  // d_head]; `out` receives the same shape on run(). References must stay
  // valid until run() returns.
  void add(HackLayerKvState& state, const Matrix& q_all,
           const AttentionOptions& options, Matrix* out);

  std::size_t sequences() const { return seqs_.size(); }

  // Launches every staged attend as one batched engine call. `threads`
  // follows the library convention (0 = auto, 1 = serial, N = N-way);
  // `stats` (optional) accumulates the work of all staged sequences.
  void run(int threads = 0, HackAttnStats* stats = nullptr);

 private:
  struct StagedSeq {
    HackLayerKvState* state = nullptr;
    const Matrix* q_all = nullptr;
    AttentionOptions options;
    Matrix* out = nullptr;
    std::vector<Matrix> q_heads;  // per-query-head column slices
    std::vector<Rng> q_rngs, p_rngs;
  };
  std::vector<std::unique_ptr<StagedSeq>> seqs_;  // stable addresses
};

}  // namespace hack
