#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash.h"
#include "attention/reference.h"
#include "metrics/tensor_metrics.h"

namespace hack {
namespace {

TEST(Flash, MatchesReferenceNonCausal) {
  Rng rng(1);
  const Matrix q = Matrix::random_gaussian(5, 32, rng);
  const Matrix k = Matrix::random_gaussian(40, 32, rng);
  const Matrix v = Matrix::random_gaussian(40, 32, rng);
  const Matrix flash = attention_flash(
      q, k, v, {.causal = false, .key_offset = 0, .tile_tokens = 16});
  const Matrix ref = attention_reference(q, k, v, {.causal = false});
  EXPECT_LT(relative_l2(flash, ref), 1e-5);
}

TEST(Flash, MatchesReferenceCausal) {
  Rng rng(2);
  const Matrix q = Matrix::random_gaussian(16, 16, rng);
  const Matrix k = Matrix::random_gaussian(16, 16, rng);
  const Matrix v = Matrix::random_gaussian(16, 16, rng);
  const Matrix flash =
      attention_flash(q, k, v, {.causal = true, .tile_tokens = 5});
  const Matrix ref = attention_reference(q, k, v, {.causal = true});
  EXPECT_LT(relative_l2(flash, ref), 1e-5);
}

TEST(Flash, MatchesReferenceWithKeyOffset) {
  Rng rng(3);
  const Matrix q = Matrix::random_gaussian(1, 32, rng);
  const Matrix k = Matrix::random_gaussian(100, 32, rng);
  const Matrix v = Matrix::random_gaussian(100, 32, rng);
  const FlashOptions opt{.causal = true, .key_offset = 99, .tile_tokens = 7};
  const Matrix flash = attention_flash(q, k, v, opt);
  const Matrix ref = attention_reference(
      q, k, v, {.causal = true, .key_offset = 99});
  EXPECT_LT(relative_l2(flash, ref), 1e-5);
}

TEST(Flash, TileSizeInvariance) {
  // The online-softmax rescaling must make the result independent of tiling.
  Rng rng(4);
  const Matrix q = Matrix::random_gaussian(4, 16, rng);
  const Matrix k = Matrix::random_gaussian(33, 16, rng);
  const Matrix v = Matrix::random_gaussian(33, 16, rng);
  const Matrix whole = attention_flash(
      q, k, v, {.causal = false, .key_offset = 0, .tile_tokens = 64});
  for (const std::size_t tile : {1ul, 2ul, 8ul, 33ul}) {
    const Matrix tiled = attention_flash(
        q, k, v, {.causal = false, .key_offset = 0, .tile_tokens = tile});
    EXPECT_LT(relative_l2(tiled, whole), 1e-5) << "tile=" << tile;
  }
}

TEST(Flash, StableUnderLargeScores) {
  // Scores ~ ±60 would overflow exp() without the running-max trick.
  Rng rng(5);
  const Matrix q = Matrix::random_gaussian(2, 8, rng, 20.0f);
  const Matrix k = Matrix::random_gaussian(24, 8, rng, 20.0f);
  const Matrix v = Matrix::random_gaussian(24, 8, rng);
  const Matrix flash =
      attention_flash(q, k, v, {.causal = false, .tile_tokens = 4});
  for (const float x : flash.flat()) {
    EXPECT_TRUE(std::isfinite(x));
  }
  const Matrix ref = attention_reference(q, k, v, {.causal = false});
  EXPECT_LT(relative_l2(flash, ref), 1e-4);
}

TEST(Flash, FullyMaskedRowThrows) {
  // key_offset puts row 0 before every key -> no visible keys -> error.
  Matrix q(1, 4, 1.0f);
  Matrix k(4, 4, 1.0f);
  Matrix v(4, 4, 1.0f);
  // causal with key_offset=0 sees key 0 — fine; emulate the failure by an
  // empty KV instead.
  EXPECT_NO_THROW(attention_flash(q, k, v, {.causal = true}));
}

struct FlashCase {
  std::size_t lq, lkv, d, tile;
};

class FlashSweep : public ::testing::TestWithParam<FlashCase> {};

TEST_P(FlashSweep, AgreesWithReference) {
  const auto p = GetParam();
  Rng rng(100 + p.lkv);
  const Matrix q = Matrix::random_gaussian(p.lq, p.d, rng);
  const Matrix k = Matrix::random_gaussian(p.lkv, p.d, rng);
  const Matrix v = Matrix::random_gaussian(p.lkv, p.d, rng);
  const std::size_t offset = p.lkv - p.lq;
  const Matrix flash = attention_flash(
      q, k, v, {.causal = true, .key_offset = offset, .tile_tokens = p.tile});
  const Matrix ref =
      attention_reference(q, k, v, {.causal = true, .key_offset = offset});
  EXPECT_LT(relative_l2(flash, ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlashSweep,
    ::testing::Values(FlashCase{1, 1, 8, 4}, FlashCase{1, 257, 64, 64},
                      FlashCase{7, 7, 16, 3}, FlashCase{32, 64, 32, 16},
                      FlashCase{64, 64, 128, 64}, FlashCase{2, 130, 16, 32}));

}  // namespace
}  // namespace hack
