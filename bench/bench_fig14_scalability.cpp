// Figure 14: scalability — avg JCT as the prefill:decode replica ratio p
// grows. The decode side is one A100 replica (TP=4: half a p4de instance,
// 200 Gbps per §7.6); prefill replicas are A10G pairs; RPS grows with p.
// Paper shape: the baseline's JCT blows up with p (KV transfer and decode
// memory saturate), while CacheGen/KVQuant/HACK grow slowly.
//
// Besides the cluster-sim tables, the binary emits JSON trajectory lines:
//   {"bench":"fig14_jct_scalability","method":...,"jct_p1":...,"jct_p8":...}
// and a kernel-level thread-scalability sweep of the batched multi-head
// attention engine (one layer, prefill) so per-PR artifacts track how the
// (head × row-band) decomposition scales:
//   {"bench":"fig14_thread_scalability","threads":...,"layer_prefill_ms":...,
//    "tokens_per_s":...}
#include <chrono>
#include <cstdio>

#include "attention/layer_attention.h"
#include "base/thread_pool.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

namespace {

void batched_engine_thread_sweep() {
  const std::size_t heads = 8, kv_heads = 4, d_head = 128, context = 1024;
  Rng rng(5);
  const Matrix q = Matrix::random_gaussian(context, heads * d_head, rng);
  const Matrix k = Matrix::random_gaussian(context, kv_heads * d_head, rng);
  const Matrix v = Matrix::random_gaussian(context, kv_heads * d_head, rng);
  for (const int threads : {1, 2, 4}) {
    HackAttentionConfig cfg;
    cfg.pi = 64;
    cfg.threads = threads;
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      HackLayerKvState layer(d_head, kv_heads, heads, cfg, 11);
      const auto start = std::chrono::steady_clock::now();
      (void)layer.prefill(q, k, v);
      const auto stop = std::chrono::steady_clock::now();
      best = std::min(
          best,
          std::chrono::duration<double, std::milli>(stop - start).count());
    }
    std::printf(
        "{\"bench\":\"fig14_thread_scalability\",\"heads\":%zu,"
        "\"kv_heads\":%zu,\"d_head\":%zu,\"context\":%zu,\"threads\":%d,"
        "\"lanes\":%zu,\"layer_prefill_ms\":%.2f,\"tokens_per_s\":%.1f}\n",
        heads, kv_heads, d_head, context, threads,
        ThreadPool::global().lanes(), best,
        1000.0 * static_cast<double>(context) / best);
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  Table t("Fig 14: avg JCT (s) vs p (prefill:decode replica ratio)");
  t.header({"p", "rps", "Baseline", "CacheGen", "KVQuant", "HACK"});
  double first[4] = {}, last[4] = {};
  for (int p = 1; p <= 8; ++p) {
    const double rps = 0.05 * p;
    std::vector<std::string> cells = {std::to_string(p), fmt(rps, 2)};
    for (int m = 0; m < 4; ++m) {
      ClusterConfig config =
          standard_cluster("A10G", "L", "Cocktail", methods[m], rps);
      config.prefill_replicas = p;
      config.decode_replicas = 1;  // one A100 model replica (TP=4)
      config.decode_nic_gbps = 200.0;
      const double jct = run(config).avg_jct_s;
      cells.push_back(fmt(jct, 1));
      if (p == 1) first[m] = jct;
      if (p == 8) last[m] = jct;
    }
    t.row(cells);
  }
  t.print();

  Table s("Fig 14 summary: JCT growth from p=1 to p=8");
  s.header({"method", "growth"});
  for (int m = 0; m < 4; ++m) {
    s.row({method_name(methods[m]), pct(last[m] / first[m] - 1.0)});
    std::printf(
        "{\"bench\":\"fig14_jct_scalability\",\"method\":\"%s\","
        "\"jct_p1\":%.2f,\"jct_p8\":%.2f,\"growth\":%.3f}\n",
        method_name(methods[m]).c_str(), first[m], last[m],
        last[m] / first[m] - 1.0);
  }
  s.print();

  batched_engine_thread_sweep();
  return 0;
}
