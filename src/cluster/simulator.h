// Discrete-event simulator for disaggregated LLM inference.
//
// Reproduces the paper's serving pipeline (Fig. 5): Poisson arrivals are
// dispatched to the prefill replica with the shortest token queue; prefill
// computes (and, for quantizing methods, quantizes) the prompt KV; KV is
// transferred over the replicas' NICs with NCCL-style chunking to the decode
// replica with the shortest queue that has memory; when none has memory the
// KV parks in the prefill instance's CPU memory (swap) until capacity frees.
// Decode replicas run batched iterations — every iteration each resident
// request advances one token, paying its marginal KV-read, dequantization
// (CacheGen/KVQuant), approximation (HACK) and attention costs on top of the
// shared weight stream. Optional pipelining overlaps the KV transfer with
// prefill compute when a decode replica can be reserved up front (Fig. 1d).
#pragma once

#include <string>
#include <vector>

#include "cluster/instance.h"
#include "cluster/kernel_cost.h"
#include "workload/arrivals.h"
#include "workload/dataset.h"

namespace hack {

struct ClusterConfig {
  ModelConfig model;
  InstanceSpec prefill_instance;
  int prefill_replicas = 1;
  double prefill_nic_gbps = 40.0;  // effective per-replica rate
  InstanceSpec decode_instance;
  int decode_replicas = 1;
  double decode_nic_gbps = 200.0;
  Method method = Method::kBaseline;
  DatasetSpec dataset;
  double rps = 0.1;
  int num_requests = 60;
  std::uint64_t seed = 42;
  bool pipelining = false;
  std::size_t pi = 64;  // HACK partition size
  int kv_bits = 2;      // HACK KV precision (§8 future work explores 4-bit)
  double activation_reserve_gb = 4.0;

  // Efficiency knobs; defaults calibrated against the paper's ratio bands.
  double mfu_single_node = 0.45;  // replica fits in one cloud instance
  double mfu_multi_node = 0.18;   // TP/PP over Ethernet
  double nic_efficiency = 0.35;   // NCCL goodput over instance Ethernet
  double decode_overhead = 2.0;   // decode kernel/scheduler inflation
};

struct RequestRecord {
  RequestId id = 0;
  double arrival = 0.0;
  RequestShape shape;
  double prefill_wait_s = 0.0;
  double prefill_s = 0.0;
  double quant_s = 0.0;
  double swap_wait_s = 0.0;
  double comm_s = 0.0;
  double decode_total_s = 0.0;   // decode-join to completion
  double kv_access_s = 0.0;      // component: KV reads across iterations
  double dequant_s = 0.0;        // component: codec dequantization
  double approx_s = 0.0;         // component: Eq. (4) approximation
  double completion = 0.0;
  bool swapped = false;

  double jct() const { return completion - arrival; }
};

struct SimSummary {
  std::vector<RequestRecord> records;

  double avg_jct_s = 0.0;
  // Average per-request time ratios, 1/N Σ component_i / JCT_i (§2.1).
  double prefill_ratio = 0.0;
  double quant_ratio = 0.0;
  double comm_ratio = 0.0;
  double dequant_or_approx_ratio = 0.0;
  double decode_ratio = 0.0;     // decode_total minus dequant/approx
  double kv_access_ratio = 0.0;  // within decode

  // Average absolute component times (Fig. 10 rows).
  double mean_prefill_s = 0.0;
  double mean_quant_s = 0.0;
  double mean_comm_s = 0.0;
  double mean_dequant_or_approx_s = 0.0;
  double mean_decode_s = 0.0;

  // Peak decode memory fraction: (weights + reserve + peak KV) / capacity,
  // max across replicas (Table 5).
  double peak_decode_mem_fraction = 0.0;
  int swapped_requests = 0;
};

SimSummary run_cluster_sim(const ClusterConfig& config);

// Builds the paper's standard testbed (§7.1) for (prefill GPU, model,
// dataset, method): fleet sizes, Table 3 plans, per-replica NIC shares.
// rps <= 0 selects the auto-calibrated "maximum processing capacity" rate
// (computed for the baseline method so every method sees the same load).
ClusterConfig standard_cluster(const std::string& prefill_gpu,
                               const std::string& model_letter,
                               const std::string& dataset_name, Method method,
                               double rps = 0.0);

// The auto-calibrated arrival rate for a config (baseline-method capacity).
double auto_rps(const ClusterConfig& config);

}  // namespace hack
