#include "core/sum_cache.h"

#include <limits>

namespace hack {

std::vector<std::int32_t> SumCache::sums_of(const QuantizedMatrix& q) {
  const std::size_t outer = q.outer();
  const std::size_t groups = q.group_count();
  const PartitionScheme scheme(q.inner(), q.pi, /*allow_ragged_tail=*/true);
  std::vector<std::int32_t> sums(outer * groups, 0);
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::int32_t acc = 0;
      for (std::size_t z = scheme.group_begin(g); z < scheme.group_end(g);
           ++z) {
        const std::uint8_t code = q.axis == QuantAxis::kRow
                                      ? q.code_at(o, z)
                                      : q.code_at(z, o);
        acc += code;
      }
      HACK_CHECK(acc <= std::numeric_limits<std::int16_t>::max(),
                 "partition sum overflows the modeled INT16 storage");
      sums[o * groups + g] = acc;
    }
  }
  return sums;
}

SumCache SumCache::build(const QuantizedMatrix& q) {
  SumCache cache;
  cache.outer_ = q.outer();
  cache.groups_ = q.group_count();
  cache.sums_ = sums_of(q);
  return cache;
}

SumCache SumCache::from_parts(std::size_t outer, std::size_t groups,
                              std::vector<std::int32_t> sums) {
  HACK_CHECK(sums.size() == outer * groups,
             "sum count " << sums.size() << " != " << outer << "x" << groups);
  for (const std::int32_t s : sums) {
    HACK_CHECK(s >= 0 && s <= std::numeric_limits<std::int16_t>::max(),
               "restored partition sum " << s << " outside INT16 storage");
  }
  SumCache cache;
  cache.outer_ = outer;
  cache.groups_ = groups;
  cache.sums_ = std::move(sums);
  return cache;
}

void SumCache::append_rows(const QuantizedMatrix& extra) {
  HACK_CHECK(extra.axis == QuantAxis::kRow, "append_rows needs row-axis data");
  HACK_CHECK(extra.group_count() == groups_, "group count mismatch");
  const auto extra_sums = sums_of(extra);
  sums_.insert(sums_.end(), extra_sums.begin(), extra_sums.end());
  outer_ += extra.outer();
}

void SumCache::append_inner_groups(const QuantizedMatrix& extra) {
  HACK_CHECK(extra.axis == QuantAxis::kCol,
             "append_inner_groups needs col-axis data");
  HACK_CHECK(extra.outer() == outer_, "outer dimension mismatch");
  const auto extra_sums = sums_of(extra);
  const std::size_t add_groups = extra.group_count();
  const std::size_t new_groups = groups_ + add_groups;
  std::vector<std::int32_t> merged(outer_ * new_groups);
  for (std::size_t o = 0; o < outer_; ++o) {
    for (std::size_t g = 0; g < groups_; ++g) {
      merged[o * new_groups + g] = sums_[o * groups_ + g];
    }
    for (std::size_t g = 0; g < add_groups; ++g) {
      merged[o * new_groups + groups_ + g] = extra_sums[o * add_groups + g];
    }
  }
  sums_ = std::move(merged);
  groups_ = new_groups;
}

}  // namespace hack
