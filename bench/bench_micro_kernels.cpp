// Kernel microbenchmarks (google-benchmark): the primitive costs behind the
// paper's argument. The headline comparison is HQ_MatmulDecode vs
// DequantThenMatmulDecode — computing on quantized KV versus the baselines'
// dequantize-first path, at decode shapes (single query row, long KV).
#include <benchmark/benchmark.h>

#include "attention/flash.h"
#include "attention/hack_attention.h"
#include "attention/reference.h"
#include "codec/cachegen.h"
#include "codec/kvquant.h"
#include "core/hq_matmul.h"
#include "quant/packed.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"

namespace {

using namespace hack;

void BM_Quantize2Bit(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(tokens, 128, rng);
  Rng qrng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, qrng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_Quantize2Bit)->Arg(256)->Arg(1024);

void BM_Dequantize(benchmark::State& state) {
  const auto tokens = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix m = Matrix::random_gaussian(tokens, 128, rng);
  Rng qrng(4);
  const QuantizedMatrix q =
      quantize(m, 2, 64, QuantAxis::kRow, Rounding::kStochastic, qrng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dequantize(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_Dequantize)->Arg(256)->Arg(1024);

void BM_PackUnpack2Bit(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint8_t> codes(1 << 16);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.next_below(4));
  for (auto _ : state) {
    const PackedBits packed = PackedBits::pack(codes, 2);
    benchmark::DoNotOptimize(packed.unpack());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_PackUnpack2Bit);

// Decode-shape comparison: S = q · Kᵀ with L cached keys.
void BM_HqMatmulDecode(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q1(7), q2(8);
  const QuantizedMatrix qq =
      quantize(q, 8, 64, QuantAxis::kRow, Rounding::kStochastic, q1);
  const QuantizedMatrix qk =
      quantize(k, 2, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  const SumCache sums = SumCache::build(qk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hq_matmul_nt(qq, qk, &sums));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_HqMatmulDecode)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DequantThenMatmulDecode(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  Rng q2(10);
  const QuantizedMatrix qk =
      quantize(k, 2, 64, QuantAxis::kRow, Rounding::kStochastic, q2);
  for (auto _ : state) {
    const Matrix k_restored = dequantize(qk);  // the per-iteration dequant
    benchmark::DoNotOptimize(matmul_nt(q, k_restored));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(l));
}
BENCHMARK(BM_DequantThenMatmulDecode)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FlashAttention(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  const Matrix k = Matrix::random_gaussian(l, 128, rng);
  const Matrix v = Matrix::random_gaussian(l, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_flash(
        q, k, v, {.causal = true, .key_offset = l - 1, .tile_tokens = 64}));
  }
}
BENCHMARK(BM_FlashAttention)->Arg(1024)->Arg(4096);

void BM_HackAttentionDecodeStep(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  HackAttentionConfig config;
  config.pi = 64;
  HackKvState kv(128, config);
  kv.append_tokens(Matrix::random_gaussian(l, 128, rng),
                   Matrix::random_gaussian(l, 128, rng), rng);
  const Matrix q = Matrix::random_gaussian(1, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hack_attention(
        q, kv, {.causal = true, .key_offset = kv.tokens() - 1}, rng));
  }
}
BENCHMARK(BM_HackAttentionDecodeStep)->Arg(1024)->Arg(4096);

void BM_CacheGenEncode(benchmark::State& state) {
  Rng rng(13);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const CacheGenCodec codec;
  Rng qrng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(chunk, KvKind::kKey, qrng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_CacheGenEncode);

void BM_CacheGenDecode(benchmark::State& state) {
  Rng rng(15);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const CacheGenCodec codec;
  Rng qrng(16);
  const auto blob = codec.encode(chunk, KvKind::kKey, qrng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(blob));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_CacheGenDecode);

void BM_KvQuantRoundTrip(benchmark::State& state) {
  Rng rng(17);
  const Matrix chunk = Matrix::random_gaussian(256, 128, rng);
  const KvQuantCodec codec;
  Rng qrng(18);
  for (auto _ : state) {
    const auto blob = codec.encode(chunk, KvKind::kKey, qrng);
    benchmark::DoNotOptimize(codec.decode(blob));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_KvQuantRoundTrip);

}  // namespace

BENCHMARK_MAIN();
