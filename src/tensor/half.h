// Software IEEE 754 binary16 ("FP16").
//
// The paper stores KV data, quantization metadata (m, s), and the trailing
// block of V in FP16. We model FP16 in software so that storage sizes and
// rounding behaviour match the GPU implementation: a value round-tripped
// through Half carries exactly binary16 precision.
#pragma once

#include <cstdint>

namespace hack {

// Value type holding a binary16 bit pattern. Conversions round-to-nearest-even
// and handle subnormals, infinities and NaN like hardware FP16 does.
class Half {
 public:
  Half() = default;
  explicit Half(float value) : bits_(from_float(value)) {}

  static Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return to_float_impl(bits_); }
  std::uint16_t bits() const { return bits_; }

  friend bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

 private:
  static std::uint16_t from_float(float value);
  static float to_float_impl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

// Rounds a float to the nearest representable FP16 value and back. This is
// the precision filter applied to everything the paper keeps "in FP16".
float fp16_round(float value);

}  // namespace hack
