#include <gtest/gtest.h>

#include "base/rng.h"
#include "quant/packed.h"

namespace hack {
namespace {

TEST(PackedBits, SizeFormula) {
  EXPECT_EQ(PackedBits(2, 4).byte_size(), 1u);
  EXPECT_EQ(PackedBits(2, 5).byte_size(), 2u);
  EXPECT_EQ(PackedBits(4, 2).byte_size(), 1u);
  EXPECT_EQ(PackedBits(8, 3).byte_size(), 3u);
  EXPECT_EQ(PackedBits(1, 8).byte_size(), 1u);
  EXPECT_EQ(PackedBits(1, 9).byte_size(), 2u);
}

TEST(PackedBits, RoundTrip2Bit) {
  const std::vector<std::uint8_t> codes = {0, 1, 2, 3, 3, 2, 1, 0, 2};
  const PackedBits packed = PackedBits::pack(codes, 2);
  EXPECT_EQ(packed.unpack(), codes);
}

TEST(PackedBits, RoundTrip4Bit) {
  std::vector<std::uint8_t> codes;
  for (int i = 0; i < 16; ++i) codes.push_back(static_cast<std::uint8_t>(i));
  const PackedBits packed = PackedBits::pack(codes, 4);
  EXPECT_EQ(packed.unpack(), codes);
}

TEST(PackedBits, RoundTripRandom) {
  Rng rng(33);
  for (const int bits : {1, 2, 4, 8}) {
    std::vector<std::uint8_t> codes(257);
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
    }
    const PackedBits packed = PackedBits::pack(codes, bits);
    EXPECT_EQ(packed.unpack(), codes) << "bits=" << bits;
  }
}

TEST(PackedBits, GetSetIndividual) {
  PackedBits packed(2, 10);
  packed.set(3, 2);
  packed.set(9, 1);
  EXPECT_EQ(packed.get(3), 2);
  EXPECT_EQ(packed.get(9), 1);
  EXPECT_EQ(packed.get(0), 0);
  packed.set(3, 0);
  EXPECT_EQ(packed.get(3), 0);
  EXPECT_EQ(packed.get(9), 1);  // untouched
}

TEST(PackedBits, RejectsOutOfRangeCode) {
  PackedBits packed(2, 4);
  EXPECT_THROW(packed.set(0, 4), CheckError);
}

TEST(PackedBits, RejectsOutOfRangeIndex) {
  PackedBits packed(2, 4);
  EXPECT_THROW(packed.get(4), CheckError);
  EXPECT_THROW(packed.set(4, 0), CheckError);
}

TEST(PackedBits, RejectsInvalidWidth) {
  EXPECT_THROW(PackedBits(3, 4), CheckError);
  EXPECT_THROW(PackedBits(16, 4), CheckError);
}

TEST(PackedBits, CompressionRatioIs8OverBits) {
  // 1024 2-bit codes: 256 bytes vs 1024 unpacked.
  const PackedBits packed(2, 1024);
  EXPECT_EQ(packed.byte_size(), 256u);
}

}  // namespace
}  // namespace hack
