#include "core/int_gemm.h"

#include <algorithm>

#if defined(__x86_64__) && defined(__GNUC__)
#define HACK_X86_SIMD 1
#include <immintrin.h>
#endif

namespace hack {
namespace {

// Portable NN band: 4-row register tile; each B row streamed once feeds four
// C rows. The inner j-loop is a plain quad-axpy, which the compiler
// vectorizes.
void int_gemm_nn_rows_portable(const CodeView& a, const CodeView& b,
                               std::size_t i_begin, std::size_t i_end,
                               std::size_t z_begin, std::size_t z_end,
                               std::int32_t* out) {
  const std::size_t n = b.cols;
  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    std::int32_t* dst0 = out + (i - i_begin) * n;
    std::int32_t* dst1 = dst0 + n;
    std::int32_t* dst2 = dst1 + n;
    std::int32_t* dst3 = dst2 + n;
    const std::uint8_t* arow0 = a.data + i * a.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      const std::int32_t a0 = arow0[z];
      const std::int32_t a1 = arow0[a.cols + z];
      const std::int32_t a2 = arow0[2 * a.cols + z];
      const std::int32_t a3 = arow0[3 * a.cols + z];
      if ((a0 | a1 | a2 | a3) == 0) continue;
      const std::uint8_t* brow = b.data + z * n;
      for (std::size_t j = 0; j < n; ++j) {
        const std::int32_t bv = brow[j];
        dst0[j] += a0 * bv;
        dst1[j] += a1 * bv;
        dst2[j] += a2 * bv;
        dst3[j] += a3 * bv;
      }
    }
  }
  for (; i < i_end; ++i) {
    std::int32_t* dst = out + (i - i_begin) * n;
    const std::uint8_t* arow = a.data + i * a.cols;
    for (std::size_t z = z_begin; z < z_end; ++z) {
      const std::int32_t aiz = arow[z];
      if (aiz == 0) continue;
      const std::uint8_t* brow = b.data + z * n;
      for (std::size_t j = 0; j < n; ++j) {
        dst[j] += aiz * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

#ifdef HACK_X86_SIMD

bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// NN band via explicit widening multiplies. B rows are consumed in z-pairs:
// the bytes of two consecutive B rows are interleaved to [b_z0[j], b_z1[j]]
// (the signed operand of pmaddubsw, which is why this path requires B codes
// < 64) and multiplied against the broadcast A pair [a_i[z0], a_i[z1]] (the
// unsigned operand, full 8-bit range). Each resulting int16 lane holds the
// per-column partial a0·b_z0[j] + a1·b_z1[j] (<= 2·255·63 = 32130, no
// saturation), which is widened in j-order into int32 accumulators held in
// registers across the z-chunk.
inline constexpr std::size_t kNnZChunk = 256;  // even, so pairs stay aligned

__attribute__((target("avx2"))) void int_gemm_nn_rows_avx2(
    const CodeView& a, const CodeView& b, std::size_t i_begin,
    std::size_t i_end, std::size_t z_begin, std::size_t z_end,
    std::int32_t* out) {
  const std::size_t n = b.cols;
  const std::size_t jvec = n & ~static_cast<std::size_t>(15);

  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    for (std::size_t zc = z_begin; zc < z_end; zc += kNnZChunk) {
      const std::size_t zc_end = std::min(zc + kNnZChunk, z_end);
      const std::size_t pairs = (zc_end - zc) / 2;
      const bool odd = ((zc_end - zc) & 1) != 0;

      // Broadcast-ready (a[z0] | a[z1] << 8) pairs for the four tile rows.
      std::uint16_t apair[4][kNnZChunk / 2];
      for (std::size_t r = 0; r < 4; ++r) {
        const std::uint8_t* ar = a.data + (i + r) * a.cols + zc;
        for (std::size_t p = 0; p < pairs; ++p) {
          apair[r][p] = static_cast<std::uint16_t>(
              ar[2 * p] | (static_cast<std::uint16_t>(ar[2 * p + 1]) << 8));
        }
      }

      for (std::size_t j = 0; j < jvec; j += 16) {
        __m256i acc_lo[4], acc_hi[4];
        for (std::size_t r = 0; r < 4; ++r) {
          std::int32_t* dst = out + (i + r - i_begin) * n + j;
          acc_lo[r] =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst));
          acc_hi[r] =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 8));
        }
        for (std::size_t p = 0; p < pairs; ++p) {
          if ((apair[0][p] | apair[1][p] | apair[2][p] | apair[3][p]) == 0) {
            continue;
          }
          const std::uint8_t* brow0 = b.data + (zc + 2 * p) * n + j;
          const std::uint8_t* brow1 = brow0 + n;
          const __m128i b0 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow0));
          const __m128i b1 =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow1));
          const __m256i inter = _mm256_set_m128i(_mm_unpackhi_epi8(b0, b1),
                                                 _mm_unpacklo_epi8(b0, b1));
          for (std::size_t r = 0; r < 4; ++r) {
            const __m256i prod = _mm256_maddubs_epi16(
                _mm256_set1_epi16(static_cast<short>(apair[r][p])), inter);
            acc_lo[r] = _mm256_add_epi32(
                acc_lo[r], _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc_hi[r] = _mm256_add_epi32(
                acc_hi[r],
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
        }
        if (odd) {
          const std::size_t z = zc_end - 1;
          const std::uint8_t* brow = b.data + z * n + j;
          const __m256i bw = _mm256_cvtepu8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow)));
          for (std::size_t r = 0; r < 4; ++r) {
            const std::int32_t av = a.data[(i + r) * a.cols + z];
            if (av == 0) continue;
            const __m256i prod =
                _mm256_mullo_epi16(_mm256_set1_epi16(static_cast<short>(av)),
                                   bw);  // <= 255·63, fits int16
            acc_lo[r] = _mm256_add_epi32(
                acc_lo[r], _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc_hi[r] = _mm256_add_epi32(
                acc_hi[r],
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
        }
        for (std::size_t r = 0; r < 4; ++r) {
          std::int32_t* dst = out + (i + r - i_begin) * n + j;
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), acc_lo[r]);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8), acc_hi[r]);
        }
      }

      // Remaining columns: scalar quad-axpy over this z-chunk.
      if (jvec < n) {
        const std::uint8_t* arow0 = a.data + i * a.cols;
        for (std::size_t z = zc; z < zc_end; ++z) {
          const std::int32_t a0 = arow0[z];
          const std::int32_t a1 = arow0[a.cols + z];
          const std::int32_t a2 = arow0[2 * a.cols + z];
          const std::int32_t a3 = arow0[3 * a.cols + z];
          if ((a0 | a1 | a2 | a3) == 0) continue;
          const std::uint8_t* brow = b.data + z * n;
          for (std::size_t j = jvec; j < n; ++j) {
            const std::int32_t bv = brow[j];
            out[(i - i_begin) * n + j] += a0 * bv;
            out[(i + 1 - i_begin) * n + j] += a1 * bv;
            out[(i + 2 - i_begin) * n + j] += a2 * bv;
            out[(i + 3 - i_begin) * n + j] += a3 * bv;
          }
        }
      }
    }
  }
  if (i < i_end) {
    int_gemm_nn_rows_portable(a, b, i, i_end, z_begin, z_end,
                              out + (i - i_begin) * n);
  }
}

// NT band via the u8 x i8 multiply-add idiom. Requires every B code < 64 so
// the adjacent-pair sums of pmaddubsw (<= 2 * 255 * 63 = 32130) fit int16.
// A is the unsigned operand (full 8-bit range allowed).
__attribute__((target("avx2"))) void int_gemm_nt_rows_avx2(
    const CodeView& a, const CodeView& b, std::size_t i_begin,
    std::size_t i_end, std::size_t z_begin, std::size_t z_end,
    std::int32_t* out) {
  const std::size_t n = b.rows;
  const std::size_t zlen = z_end - z_begin;
  const std::size_t zvec = zlen & ~static_cast<std::size_t>(31);
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t i = i_begin; i < i_end; ++i) {
    const std::uint8_t* pa = a.data + i * a.cols + z_begin;
    std::int32_t* dst = out + (i - i_begin) * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b.data + j * b.cols + z_begin;
      const std::uint8_t* pb1 = pb0 + b.cols;
      const std::uint8_t* pb2 = pb1 + b.cols;
      const std::uint8_t* pb3 = pb2 + b.cols;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t z = 0; z < zvec; z += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + z));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(pb0 + z))),
                      ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(pb1 + z))),
                      ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(pb2 + z))),
                      ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(
                          av, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(pb3 + z))),
                      ones));
      }
      // Fold the four accumulators into one lane each.
      const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
      const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
      const __m256i h = _mm256_hadd_epi32(h01, h23);
      const __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(h),
                                        _mm256_extracti128_si256(h, 1));
      alignas(16) std::int32_t lanes[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes), sum);
      std::int32_t c0 = lanes[0], c1 = lanes[1], c2 = lanes[2], c3 = lanes[3];
      for (std::size_t z = zvec; z < zlen; ++z) {
        const std::int32_t av = pa[z];
        c0 += av * static_cast<std::int32_t>(pb0[z]);
        c1 += av * static_cast<std::int32_t>(pb1[z]);
        c2 += av * static_cast<std::int32_t>(pb2[z]);
        c3 += av * static_cast<std::int32_t>(pb3[z]);
      }
      dst[j] += c0;
      dst[j + 1] += c1;
      dst[j + 2] += c2;
      dst[j + 3] += c3;
    }
    for (; j < n; ++j) {
      dst[j] += int_dot_nt(a, b, i, j, z_begin, z_end);
    }
  }
}

#endif  // HACK_X86_SIMD

}  // namespace

std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  const std::uint8_t* pa = a.data + i * a.cols;
  const std::uint8_t* pb = b.data + j * b.cols;
  std::int32_t acc = 0;
  for (std::size_t z = z_begin; z < z_end; ++z) {
    acc += static_cast<std::int32_t>(pa[z]) * static_cast<std::int32_t>(pb[z]);
  }
  return acc;
}

void int_gemm_nn_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits,
                      std::size_t b_row_offset) {
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(b_row_offset + z_end <= b.rows,
             "B row range " << b_row_offset << "+" << z_end << " out of "
                            << b.rows);
  HACK_CHECK(i_begin <= i_end && i_end <= a.rows, "bad row band");
  // The kernels only ever index B at `data + z * cols`, so a KV-tile offset
  // is a plain row-shifted view.
  const CodeView bv{b.data + b_row_offset * b.cols, b.rows - b_row_offset,
                    b.cols};
#ifdef HACK_X86_SIMD
  if (b_bits >= 1 && b_bits <= 6 && cpu_has_avx2()) {
    int_gemm_nn_rows_avx2(a, bv, i_begin, i_end, z_begin, z_end, out);
    return;
  }
#else
  (void)b_bits;
#endif
  int_gemm_nn_rows_portable(a, bv, i_begin, i_end, z_begin, z_end, out);
}

void int_gemm_nt_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits, std::size_t j_begin,
                      std::size_t j_end) {
  if (j_end == kIntGemmFull) j_end = b.rows;
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(i_begin <= i_end && i_end <= a.rows, "bad row band");
  HACK_CHECK(j_begin <= j_end && j_end <= b.rows, "bad B row range");
  // Output columns [j_begin, j_end) come from the row-shifted view of B.
  const CodeView bv{b.data + j_begin * b.cols, j_end - j_begin, b.cols};
#ifdef HACK_X86_SIMD
  if (b_bits >= 1 && b_bits <= 6 && cpu_has_avx2()) {
    int_gemm_nt_rows_avx2(a, bv, i_begin, i_end, z_begin, z_end, out);
    return;
  }
#else
  (void)b_bits;
#endif
  const CodeView& b_tile = bv;
  const std::size_t n = b_tile.rows;
  const std::size_t zlen = z_end - z_begin;
  // 4x4 register tile: 16 accumulators, each A/B row loaded once per z step
  // instead of once per output.
  std::size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const std::uint8_t* pa0 = a.data + i * a.cols + z_begin;
    const std::uint8_t* pa1 = pa0 + a.cols;
    const std::uint8_t* pa2 = pa1 + a.cols;
    const std::uint8_t* pa3 = pa2 + a.cols;
    std::int32_t* dst0 = out + (i - i_begin) * n;
    std::int32_t* dst1 = dst0 + n;
    std::int32_t* dst2 = dst1 + n;
    std::int32_t* dst3 = dst2 + n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b_tile.data + j * b_tile.cols + z_begin;
      const std::uint8_t* pb1 = pb0 + b_tile.cols;
      const std::uint8_t* pb2 = pb1 + b_tile.cols;
      const std::uint8_t* pb3 = pb2 + b_tile.cols;
      std::int32_t c00 = 0, c01 = 0, c02 = 0, c03 = 0;
      std::int32_t c10 = 0, c11 = 0, c12 = 0, c13 = 0;
      std::int32_t c20 = 0, c21 = 0, c22 = 0, c23 = 0;
      std::int32_t c30 = 0, c31 = 0, c32 = 0, c33 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t a0 = pa0[z], a1 = pa1[z], a2 = pa2[z], a3 = pa3[z];
        const std::int32_t b0 = pb0[z], b1 = pb1[z], b2 = pb2[z], b3 = pb3[z];
        c00 += a0 * b0; c01 += a0 * b1; c02 += a0 * b2; c03 += a0 * b3;
        c10 += a1 * b0; c11 += a1 * b1; c12 += a1 * b2; c13 += a1 * b3;
        c20 += a2 * b0; c21 += a2 * b1; c22 += a2 * b2; c23 += a2 * b3;
        c30 += a3 * b0; c31 += a3 * b1; c32 += a3 * b2; c33 += a3 * b3;
      }
      dst0[j] += c00; dst0[j + 1] += c01; dst0[j + 2] += c02; dst0[j + 3] += c03;
      dst1[j] += c10; dst1[j + 1] += c11; dst1[j + 2] += c12; dst1[j + 3] += c13;
      dst2[j] += c20; dst2[j + 1] += c21; dst2[j + 2] += c22; dst2[j + 3] += c23;
      dst3[j] += c30; dst3[j + 1] += c31; dst3[j + 2] += c32; dst3[j + 3] += c33;
    }
    for (; j < n; ++j) {
      const std::uint8_t* pb = b_tile.data + j * b_tile.cols + z_begin;
      std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t bv = pb[z];
        c0 += static_cast<std::int32_t>(pa0[z]) * bv;
        c1 += static_cast<std::int32_t>(pa1[z]) * bv;
        c2 += static_cast<std::int32_t>(pa2[z]) * bv;
        c3 += static_cast<std::int32_t>(pa3[z]) * bv;
      }
      dst0[j] += c0;
      dst1[j] += c1;
      dst2[j] += c2;
      dst3[j] += c3;
    }
  }
  for (; i < i_end; ++i) {
    // Tail rows (and the decode GEMV case): one A row against 4 B rows.
    const std::uint8_t* pa = a.data + i * a.cols + z_begin;
    std::int32_t* dst = out + (i - i_begin) * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint8_t* pb0 = b_tile.data + j * b_tile.cols + z_begin;
      const std::uint8_t* pb1 = pb0 + b_tile.cols;
      const std::uint8_t* pb2 = pb1 + b_tile.cols;
      const std::uint8_t* pb3 = pb2 + b_tile.cols;
      std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (std::size_t z = 0; z < zlen; ++z) {
        const std::int32_t av = pa[z];
        c0 += av * static_cast<std::int32_t>(pb0[z]);
        c1 += av * static_cast<std::int32_t>(pb1[z]);
        c2 += av * static_cast<std::int32_t>(pb2[z]);
        c3 += av * static_cast<std::int32_t>(pb3[z]);
      }
      dst[j] += c0;
      dst[j + 1] += c1;
      dst[j + 2] += c2;
      dst[j + 3] += c3;
    }
    for (; j < n; ++j) {
      dst[j] += int_dot_nt(a, b_tile, i, j, z_begin, z_end);
    }
  }
}

void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits) {
  HACK_CHECK(a.cols == b.rows, "NN shape mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.cols, "output size mismatch");
  int_gemm_nn_rows(a, b, 0, a.rows, z_begin, z_end, out.data(), b_bits);
}

void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits) {
  HACK_CHECK(a.cols == b.cols, "NT inner dim mismatch");
  HACK_CHECK(z_end <= a.cols && z_begin <= z_end, "bad z-range");
  HACK_CHECK(out.size() == a.rows * b.rows, "output size mismatch");
  int_gemm_nt_rows(a, b, 0, a.rows, z_begin, z_end, out.data(), b_bits);
}

}  // namespace hack
