// Long-context summarization scenario (the arXiv workload of the paper's
// intro): a decoder-only transformer generates a continuation of a long
// document while its KV cache lives in different storage formats.
//
// Demonstrates the accuracy/memory trade-off end to end on a real model:
// exact FP32 KV, FP16, HACK (three partition sizes), CacheGen, KVQuant and
// FP8. Prints cache footprint and teacher-forced token agreement.
//
// Build & run:  ./build/examples/long_context_summarization
#include <cstdio>
#include <vector>

#include "metrics/report.h"
#include "model/tiny_transformer.h"
#include "workload/corpus.h"

using namespace hack;

namespace {

int argmax(const std::vector<float>& v) {
  int best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace

int main() {
  TinyConfig config;
  config.vocab = 256;
  config.layers = 2;
  config.heads = 2;
  config.kv_heads = 2;
  config.d_head = 128;
  config.d_ff = 512;

  // A "document": 512 tokens of motif-heavy synthetic text.
  SyntheticCorpus corpus({.vocab = config.vocab, .motif_probability = 0.4},
                         31);
  const auto document = corpus.prompt(0, 512);
  constexpr std::size_t kSummaryLen = 48;

  // Reference continuation from the exact model.
  TinyTransformer reference(config, make_exact_backend());
  const auto summary = reference.generate(document, kSummaryLen);
  std::printf("document: %zu tokens, continuation: %zu tokens\n",
              document.size(), summary.size());

  struct Candidate {
    const char* name;
    BackendFactory factory;
  };
  HackAttentionConfig pi32, pi64, pi128;
  pi32.pi = 32;
  pi64.pi = 64;
  pi128.pi = 128;
  const std::vector<Candidate> candidates = {
      {"FP16", make_fp16_backend()},
      {"HACK pi=32", make_hack_backend(pi32, 1)},
      {"HACK pi=64", make_hack_backend(pi64, 2)},
      {"HACK pi=128", make_hack_backend(pi128, 3)},
      {"CacheGen", make_codec_backend(make_codec("cachegen"), 4)},
      {"KVQuant", make_codec_backend(make_codec("kvquant"), 5)},
      {"FP8", make_minifloat_backend(MiniFloatFormat::kFp8E4M3)},
  };

  Table t("KV storage format vs cache size and decision fidelity");
  t.header({"format", "kv_bytes", "vs_fp16", "token_agreement"});
  std::size_t fp16_bytes = 0;
  for (const Candidate& candidate : candidates) {
    TinyTransformer model(config, candidate.factory);
    std::vector<float> logits = model.prefill(document);
    std::size_t agree = 0;
    for (const int ref_token : summary) {
      if (argmax(logits) == ref_token) ++agree;
      logits = model.decode_step(ref_token);
    }
    const std::size_t bytes = model.kv_stored_bytes();
    if (std::string(candidate.name) == "FP16") fp16_bytes = bytes;
    t.row({candidate.name, std::to_string(bytes),
           fp16_bytes > 0 ? fmt(100.0 * bytes / fp16_bytes, 1) + "%" : "-",
           pct(static_cast<double>(agree) / summary.size())});
  }
  t.print();
  return 0;
}
