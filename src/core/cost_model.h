// Closed-form operation counts from §5.2–§5.3 of the paper.
//
// These formulas serve two roles: unit tests pin the HQ kernels' measured
// counters against them, and the cluster simulator converts them into time
// using per-GPU throughput figures.
#pragma once

#include <cstdint>

namespace hack {

// Integer multiply-accumulates of the quantized GEMM: M·Z·N MACs
// (the paper counts 2MZN flops; one MAC = one multiply + one add).
std::int64_t hq_gemm_macs(std::int64_t m, std::int64_t z, std::int64_t n);

// Float ops of the Eq. (4) approximation without summation elimination:
// 9MN + MZ + NZ.
std::int64_t hq_approx_flops(std::int64_t m, std::int64_t z, std::int64_t n);

// With summation elimination the NZ column-sum term is cached: 9MN + MZ.
std::int64_t hq_approx_flops_se(std::int64_t m, std::int64_t z,
                                std::int64_t n);

// Per-decode-iteration approximation cost with SE for one head (§5.3):
// the Q·Kᵀ matmul (M=1, Z=d_h, N=L) costs 9L + d_h and the P·V matmul
// (M=1, Z=L, N=d_h) costs 9d_h + L, totalling 10(d_h + L).
std::int64_t decode_approx_flops_se(std::int64_t d_h, std::int64_t l_kv);

// Dequantization cost the baselines pay per decode iteration for one head:
// one fused multiply-add per element of K and of V -> 2·d_h·L each, 4·d_h·L
// total (§5.3).
std::int64_t decode_dequant_flops(std::int64_t d_h, std::int64_t l_kv);

// Cost of recomputing the Σ b' sums each iteration when SE is disabled:
// d_h·L adds for K plus d_h·L for V (§5.3).
std::int64_t decode_sum_recompute_flops(std::int64_t d_h, std::int64_t l_kv);

// Bits needed to store one partition sum: b + ⌈log2 Π⌉ (§5.3); the
// implementation stores INT16 when this exceeds 8 bits (§6).
int sum_storage_bits(int bits, std::int64_t pi);

// Bytes per partition sum actually stored (1 or 2, INT8/INT16 alignment).
int sum_storage_bytes(int bits, std::int64_t pi);

}  // namespace hack
