#include "tensor/half.h"

#include <bit>
#include <cstring>

namespace hack {

std::uint16_t Half::from_float(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exponent = (f >> 23) & 0xffu;
  std::uint32_t mantissa = f & 0x7fffffu;

  if (exponent == 0xffu) {
    // Inf / NaN: keep a quiet-NaN payload bit so NaNs stay NaN.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mantissa ? 0x200u : 0));
  }

  // Re-bias from 127 to 15.
  const int unbiased = static_cast<int>(exponent) - 127;
  if (unbiased > 15) {
    return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow -> inf
  }

  if (unbiased >= -14) {
    // Normal range: keep top 10 mantissa bits with round-to-nearest-even.
    const std::uint32_t half_exp = static_cast<std::uint32_t>(unbiased + 15);
    std::uint32_t result = sign | (half_exp << 10) | (mantissa >> 13);
    const std::uint32_t round_bits = mantissa & 0x1fffu;
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (result & 1u))) {
      ++result;  // carries into the exponent correctly (1.111.. -> 10.000..)
    }
    return static_cast<std::uint16_t>(result);
  }

  if (unbiased < -25) {
    return static_cast<std::uint16_t>(sign);  // underflows to signed zero
  }

  // Subnormal half: value = M · 2^(u-23) with M = 1.mantissa as a 24-bit
  // integer; the stored field is round(value / 2^-24) = M >> (-u - 1),
  // round-to-nearest-even on the dropped bits. A carry past 10 bits lands
  // exactly on the smallest normal encoding.
  mantissa |= 0x800000u;
  const int shift = -unbiased - 1;  // in [14, 24] here
  std::uint32_t result = sign | (mantissa >> shift);
  const std::uint32_t dropped = mantissa & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (dropped > halfway || (dropped == halfway && (result & 1u))) {
    ++result;
  }
  return static_cast<std::uint16_t>(result);
}

float Half::to_float_impl(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1fu;
  std::uint32_t mantissa = bits & 0x3ffu;

  std::uint32_t f = 0;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // zero
    } else {
      // Subnormal: normalize by shifting the mantissa up.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
          ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 0x1fu) {
    f = sign | 0x7f800000u | (mantissa << 13);  // inf / NaN
  } else {
    f = sign | ((exponent + 127 - 15) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

float fp16_round(float value) {
  return Half(value).to_float();
}

}  // namespace hack
