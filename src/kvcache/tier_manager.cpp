#include "kvcache/tier_manager.h"

#include <algorithm>

#include "base/check.h"

namespace hack {

KvTierManager::KvTierManager(BlockAllocator& allocator, KvTierConfig config)
    : allocator_(allocator), config_(config) {
  HACK_CHECK(config_.block_tokens > 0, "tier manager needs block_tokens > 0");
}

std::size_t KvTierManager::blocks_for_tokens(std::size_t tokens) const {
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool KvTierManager::can_ever_hold(std::size_t worst_case_tokens) const {
  return blocks_for_tokens(worst_case_tokens) <= allocator_.num_blocks();
}

bool KvTierManager::grow_hot(SeqId seq, std::size_t tokens) {
  std::vector<BlockId>& held = hot_[seq];
  const std::size_t want = blocks_for_tokens(tokens);
  if (want <= held.size()) return true;
  const std::size_t grow = want - held.size();
  std::vector<BlockId> fresh;
  fresh.reserve(grow);
  for (std::size_t b = 0; b < grow; ++b) {
    const BlockId id = allocator_.allocate();
    if (id == kInvalidBlock) {
      for (const BlockId got : fresh) allocator_.release(got);
      return false;
    }
    fresh.push_back(id);
  }
  held.insert(held.end(), fresh.begin(), fresh.end());
  stats_.hot_bytes_admitted += grow * allocator_.block_bytes();
  return true;
}

std::size_t KvTierManager::blocks_held(SeqId seq) const {
  const auto it = hot_.find(seq);
  return it == hot_.end() ? 0 : it->second.size();
}

void KvTierManager::release(SeqId seq) {
  const auto hot = hot_.find(seq);
  if (hot != hot_.end()) {
    for (const BlockId id : hot->second) allocator_.release(id);
    stats_.hot_bytes_released += hot->second.size() * allocator_.block_bytes();
    hot_.erase(hot);
  }
  const auto far = far_.find(seq);
  if (far != far_.end()) {
    far_bytes_ -= far->second->size();
    far_.erase(far);
  }
}

void KvTierManager::swap_out(SeqId seq, std::vector<std::uint8_t> blob) {
  HACK_CHECK(!is_swapped(seq), "sequence " << seq << " is already swapped");
  const auto hot = hot_.find(seq);
  if (hot != hot_.end()) {
    for (const BlockId id : hot->second) allocator_.release(id);
    stats_.hot_bytes_released += hot->second.size() * allocator_.block_bytes();
    hot_.erase(hot);
  }
  ++stats_.evictions;
  stats_.bytes_swapped_out += blob.size();
  far_bytes_ += blob.size();
  stats_.far_bytes_peak = std::max(stats_.far_bytes_peak, far_bytes_);
  far_.emplace(seq, std::make_shared<const std::vector<std::uint8_t>>(
                        std::move(blob)));
}

bool KvTierManager::is_swapped(SeqId seq) const {
  return far_.find(seq) != far_.end();
}

std::shared_ptr<const std::vector<std::uint8_t>> KvTierManager::peek_blob(
    SeqId seq) const {
  const auto it = far_.find(seq);
  return it == far_.end() ? nullptr : it->second;
}

std::shared_ptr<const std::vector<std::uint8_t>> KvTierManager::take_blob(
    SeqId seq) {
  const auto it = far_.find(seq);
  HACK_CHECK(it != far_.end(),
             "sequence " << seq << " has no far-tier blob to take");
  std::shared_ptr<const std::vector<std::uint8_t>> blob = it->second;
  ++stats_.rehydrations;
  stats_.bytes_swapped_in += blob->size();
  far_bytes_ -= blob->size();
  far_.erase(it);
  return blob;
}

}  // namespace hack
