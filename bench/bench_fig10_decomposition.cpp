// Figure 10: average JCT decomposition (prefill / quant / comm /
// dequant-or-approx / decode) for Llama-3.1 70B across datasets, A10G
// prefill. One sub-table per dataset, one row per method, matching the
// paper's stacked bars.
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  for (const std::string& dataset : dataset_names()) {
    Table t("Fig 10 [" + dataset + "]: avg component time (s)");
    t.header({"method", "prefill", "quant", "comm", "dequant/approx",
              "decode", "jct"});
    for (const Method method : methods) {
      const SimSummary s = run(standard_cluster("A10G", "L", dataset, method));
      t.row({method_name(method), fmt(s.mean_prefill_s, 2),
             fmt(s.mean_quant_s, 2), fmt(s.mean_comm_s, 2),
             fmt(s.mean_dequant_or_approx_s, 2), fmt(s.mean_decode_s, 2),
             fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }

  // Headline prefill improvement (the HQ-matmul INT8 path, §7.2).
  Table t("Fig 10 summary: HACK prefill time vs others");
  t.header({"dataset", "prefill_reduction_vs_baseline"});
  for (const std::string& dataset : dataset_names()) {
    const SimSummary base =
        run(standard_cluster("A10G", "L", dataset, Method::kBaseline));
    const SimSummary hck =
        run(standard_cluster("A10G", "L", dataset, Method::kHack));
    t.row({dataset, pct(1.0 - hck.mean_prefill_s / base.mean_prefill_s)});
  }
  t.print();
  return 0;
}
