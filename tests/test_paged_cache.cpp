#include <gtest/gtest.h>

#include "kvcache/paged_cache.h"
#include "metrics/tensor_metrics.h"
#include "tensor/ops.h"

namespace hack {
namespace {

constexpr std::size_t kDHead = 16;
constexpr std::size_t kBlockTokens = 4;

struct CacheFixture {
  CacheFixture(std::size_t blocks = 32)
      : alloc(blocks, PagedKvCache::block_bytes_for(kDHead, kBlockTokens)),
        cache(alloc, kDHead, kBlockTokens) {}
  BlockAllocator alloc;
  PagedKvCache cache;
};

Matrix tokens(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_uniform(n, kDHead, rng, -2.0f, 2.0f);
}

TEST(PagedKvCache, AppendAndGatherRoundTrip) {
  CacheFixture f;
  const Matrix k = tokens(10, 1);
  const Matrix v = tokens(10, 2);
  ASSERT_TRUE(f.cache.append(7, k, v));
  EXPECT_EQ(f.cache.tokens(7), 10u);
  // FP16 storage: round-trip equals fp16-rounded source.
  Matrix k16 = k, v16 = v;
  k16.round_to_fp16();
  v16.round_to_fp16();
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(7), k16), 0.0f);
  EXPECT_EQ(max_abs_diff(f.cache.gather_v(7), v16), 0.0f);
}

TEST(PagedKvCache, BlockCountCeilsTokens) {
  CacheFixture f;
  ASSERT_TRUE(f.cache.append(1, tokens(9, 3), tokens(9, 4)));
  EXPECT_EQ(f.cache.blocks_held(1), 3u);  // ceil(9/4)
  ASSERT_TRUE(f.cache.append(1, tokens(3, 5), tokens(3, 6)));
  EXPECT_EQ(f.cache.blocks_held(1), 3u);  // 12 tokens fill 3 blocks exactly
  ASSERT_TRUE(f.cache.append(1, tokens(1, 7), tokens(1, 8)));
  EXPECT_EQ(f.cache.blocks_held(1), 4u);
}

TEST(PagedKvCache, IncrementalAppendPreservesPrefix) {
  CacheFixture f;
  const Matrix k1 = tokens(6, 9), v1 = tokens(6, 10);
  const Matrix k2 = tokens(5, 11), v2 = tokens(5, 12);
  ASSERT_TRUE(f.cache.append(2, k1, v1));
  ASSERT_TRUE(f.cache.append(2, k2, v2));
  Matrix expect_k = vstack(k1, k2);
  expect_k.round_to_fp16();
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(2), expect_k), 0.0f);
}

TEST(PagedKvCache, AppendFailsAtomicallyWhenFull) {
  CacheFixture f(/*blocks=*/2);
  ASSERT_TRUE(f.cache.append(1, tokens(8, 13), tokens(8, 14)));  // 2 blocks
  EXPECT_FALSE(f.cache.append(1, tokens(1, 15), tokens(1, 16)));
  EXPECT_EQ(f.cache.tokens(1), 8u);         // rolled back
  EXPECT_EQ(f.alloc.blocks_free(), 0u);
  EXPECT_EQ(f.cache.oom_appends(), 1u);
}

TEST(PagedKvCache, OomCounterAndDataSurviveRefusal) {
  CacheFixture f(/*blocks=*/3);
  const Matrix k = tokens(10, 40), v = tokens(10, 41);
  ASSERT_TRUE(f.cache.append(1, k, v));  // 3 blocks, pool exhausted
  // Repeated refusals accumulate and never disturb the stored sequence.
  EXPECT_FALSE(f.cache.append(1, tokens(4, 42), tokens(4, 43)));
  EXPECT_FALSE(f.cache.append(2, tokens(1, 44), tokens(1, 45)));
  EXPECT_EQ(f.cache.oom_appends(), 2u);
  EXPECT_FALSE(f.cache.has_sequence(2));  // refused fresh sequence left no table
  Matrix k16 = k;
  k16.round_to_fp16();
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(1), k16), 0.0f);
  // A fitting append still succeeds afterwards (2 free slots in block 3).
  ASSERT_TRUE(f.cache.append(1, tokens(2, 46), tokens(2, 47)));
  EXPECT_EQ(f.cache.tokens(1), 12u);
  EXPECT_EQ(f.alloc.failed_allocations(), 0u);  // preflight, never mid-write
}

TEST(PagedKvCache, CowAwarePreflightRefusesCleanly) {
  // A forked sequence appending into a shared ragged block needs a CoW copy;
  // with zero free blocks the preflight must refuse instead of crashing
  // mid-write, leaving both sequences intact.
  CacheFixture f(/*blocks=*/2);
  const Matrix k = tokens(6, 50), v = tokens(6, 51);
  ASSERT_TRUE(f.cache.append(1, k, v));  // 2 blocks (6 tokens over 4/block)
  f.cache.fork(1, 2);
  ASSERT_EQ(f.alloc.blocks_free(), 0u);
  EXPECT_FALSE(f.cache.append(2, tokens(1, 52), tokens(1, 53)));
  EXPECT_EQ(f.cache.oom_appends(), 1u);
  EXPECT_EQ(f.cache.tokens(2), 6u);
  EXPECT_EQ(f.cache.cow_copies(), 0u);  // nothing was copied
  Matrix k16 = k;
  k16.round_to_fp16();
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(1), k16), 0.0f);
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(2), k16), 0.0f);
}

TEST(PagedKvCache, CowCopiesCounted) {
  CacheFixture f;
  ASSERT_TRUE(f.cache.append(1, tokens(6, 54), tokens(6, 55)));
  f.cache.fork(1, 2);
  ASSERT_TRUE(f.cache.append(2, tokens(1, 56), tokens(1, 57)));
  EXPECT_EQ(f.cache.cow_copies(), 1u);  // the shared ragged block was copied
}

TEST(PagedKvCache, ForkSharesBlocksCopyOnWrite) {
  CacheFixture f;
  ASSERT_TRUE(f.cache.append(1, tokens(8, 17), tokens(8, 18)));
  const std::size_t used_before = f.alloc.blocks_in_use();
  f.cache.fork(1, 2);
  EXPECT_EQ(f.alloc.blocks_in_use(), used_before);  // shared, no copy yet
  EXPECT_EQ(f.cache.tokens(2), 8u);
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(1), f.cache.gather_k(2)), 0.0f);

  // Writing into the fork copies only the written block.
  ASSERT_TRUE(f.cache.append(2, tokens(1, 19), tokens(1, 20)));
  EXPECT_GT(f.alloc.blocks_in_use(), used_before);
  // Original sequence unchanged.
  EXPECT_EQ(f.cache.tokens(1), 8u);
}

TEST(PagedKvCache, CopyOnWritePreservesSharedPrefixData) {
  CacheFixture f;
  const Matrix k = tokens(6, 21), v = tokens(6, 22);
  ASSERT_TRUE(f.cache.append(1, k, v));
  f.cache.fork(1, 2);
  // Appending into the fork's ragged last block must not corrupt sequence 1.
  ASSERT_TRUE(f.cache.append(2, tokens(2, 23), tokens(2, 24)));
  Matrix k16 = k;
  k16.round_to_fp16();
  EXPECT_EQ(max_abs_diff(f.cache.gather_k(1), k16), 0.0f);
  EXPECT_EQ(f.cache.tokens(2), 8u);
}

TEST(PagedKvCache, DropReleasesBlocks) {
  CacheFixture f;
  ASSERT_TRUE(f.cache.append(5, tokens(12, 25), tokens(12, 26)));
  const std::size_t used = f.alloc.blocks_in_use();
  f.cache.drop(5);
  EXPECT_EQ(f.alloc.blocks_in_use(), used - 3);
  EXPECT_FALSE(f.cache.has_sequence(5));
}

TEST(PagedKvCache, DropForkKeepsOriginalAlive) {
  CacheFixture f;
  ASSERT_TRUE(f.cache.append(1, tokens(8, 27), tokens(8, 28)));
  f.cache.fork(1, 2);
  f.cache.drop(1);
  // Fork still owns the shared blocks.
  EXPECT_EQ(f.cache.tokens(2), 8u);
  EXPECT_EQ(f.cache.gather_k(2).rows(), 8u);
  f.cache.drop(2);
  EXPECT_EQ(f.alloc.blocks_in_use(), 0u);
}

TEST(PagedKvCache, UnknownSequenceThrows) {
  CacheFixture f;
  EXPECT_THROW(f.cache.gather_k(99), CheckError);
  EXPECT_THROW(f.cache.drop(99), CheckError);
  EXPECT_THROW(f.cache.fork(99, 100), CheckError);
}

TEST(PagedKvCache, GeometryValidation) {
  BlockAllocator small(4, 8);  // 8-byte blocks can't hold the geometry
  EXPECT_THROW(PagedKvCache(small, kDHead, kBlockTokens), CheckError);
}

}  // namespace
}  // namespace hack
