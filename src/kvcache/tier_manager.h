// Tiered KV memory manager — hot block pool + compressed far tier.
//
// HACK's premise is that the quantized KV cache is cheap enough to move
// (the wire blob measures 17–55% of FP16, docs/disaggregation.md), which
// makes it cheap enough to *swap*: instead of reserving worst-case blocks
// FCFS and rejecting everything else, the serving engine can admit
// aggressively, grow a sequence's hot-block footprint as tokens append, and
// under pressure evict a whole sequence to a compressed far tier — the
// eviction format IS the kv_wire v2 blob (serialize = evict, deserialize =
// resume, bit-identical by the PR 5 contract), so swap-out costs the same
// 17–55% of FP16 the disaggregated transfer does.
//
// This class owns the two tiers' bookkeeping:
//
//   hot   per-sequence block lists charged against the shared BlockAllocator
//         (accounting granularity: `block_tokens` KV rows per block, the
//         same unit scheduler admission uses). grow_hot() is all-or-nothing.
//   far   per-sequence serialized blobs (shared_ptr so an in-flight
//         speculative prefetch can keep reading a blob the engine is
//         concurrently taking ownership of) plus byte counters.
//
// Capacity model: a sequence can only step while fully hot, so the only
// admission invariant tiering needs is that the sequence's *own* worst case
// fits the whole pool — other residents can always be evicted around it.
// can_ever_hold() is that predicate; Scheduler::can_ever_admit routes
// through it in tiered mode (the PR 4 FCFS formula `need + floor <=
// num_blocks` under-admits exactly the requests tiering exists to serve).
//
// The manager is policy-free and clock-free: *which* sequence to evict or
// resume is the scheduler's deterministic priority function
// (serving/scheduler.h); the wall-clock swap/stall timings recorded here via
// add_swap_in_*_s are metrics only and never feed back into a decision, so
// replays stay bitwise (docs/serving.md, "Tiered KV memory").
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kvcache/block_allocator.h"

namespace hack {

struct KvTierConfig {
  // KV rows per hot block (must match SchedulerConfig::block_tokens).
  std::size_t block_tokens = 16;
};

// Swap/prefetch counters of one serving episode. Counters are exact (the
// chaos corpus asserts evictions == rehydrations at drain and bytes
// out == bytes in); the *_s timings are wall-clock metrics only.
struct KvTierStats {
  std::size_t evictions = 0;          // sequences swapped out (hot -> far)
  std::size_t rehydrations = 0;       // sequences swapped back in
  std::size_t prefetch_hits = 0;      // resumes served by a staged prefetch
  std::size_t prefetch_misses = 0;    // cold resumes (deserialize inline)
  std::size_t bytes_swapped_out = 0;  // wire-blob bytes written to the far tier
  std::size_t bytes_swapped_in = 0;   // wire-blob bytes read back
  std::size_t far_bytes_peak = 0;     // max far-tier residency
  std::size_t hot_bytes_admitted = 0; // block bytes allocated by grow_hot
  std::size_t hot_bytes_released = 0; // block bytes freed (swap-out / release)
  double swap_in_work_s = 0.0;   // total deserialize compute (staged + cold)
  double swap_in_stall_s = 0.0;  // time a step actually blocked on swap-in
};

class KvTierManager {
 public:
  // Sequences are identified by the engine's record index.
  using SeqId = std::size_t;

  KvTierManager(BlockAllocator& allocator, KvTierConfig config = {});

  std::size_t block_tokens() const { return config_.block_tokens; }
  std::size_t pool_blocks() const { return allocator_.num_blocks(); }
  std::size_t blocks_free() const { return allocator_.blocks_free(); }

  // ceil(tokens / block_tokens) — the hot footprint of `tokens` KV rows.
  std::size_t blocks_for_tokens(std::size_t tokens) const;

  // The tiered admission predicate: the sequence's own worst case fits the
  // pool alone (residents around it are evictable; a too-big sequence can
  // never be made fully hot and must be rejected).
  bool can_ever_hold(std::size_t worst_case_tokens) const;

  // --- hot tier ---

  // Ensures `seq` holds blocks covering `tokens` KV rows. All-or-nothing:
  // on a shortfall the partial growth is rolled back and false is returned
  // (the scheduler's budget pass makes failure a logic error in-engine).
  bool grow_hot(SeqId seq, std::size_t tokens);

  std::size_t blocks_held(SeqId seq) const;

  // Releases everything the sequence holds in either tier (finish/reject).
  void release(SeqId seq);

  // --- far tier ---

  // Evicts: frees the sequence's hot blocks and stores its wire blob.
  void swap_out(SeqId seq, std::vector<std::uint8_t> blob);

  bool is_swapped(SeqId seq) const;
  std::size_t swapped_count() const { return far_.size(); }
  std::size_t far_bytes_total() const { return far_bytes_; }

  // Peeks the blob without removing it — what a speculative prefetch thread
  // deserializes from while the sequence stays formally swapped.
  std::shared_ptr<const std::vector<std::uint8_t>> peek_blob(SeqId seq) const;

  // Removes the far entry and counts the rehydration. The blob stays alive
  // through the returned (and any prefetch-held) shared_ptr.
  std::shared_ptr<const std::vector<std::uint8_t>> take_blob(SeqId seq);

  // --- metrics hooks (timing only; never feeds a decision) ---

  void note_prefetch_hit() { ++stats_.prefetch_hits; }
  void note_prefetch_miss() { ++stats_.prefetch_misses; }
  void add_swap_in_work_s(double s) { stats_.swap_in_work_s += s; }
  void add_swap_in_stall_s(double s) { stats_.swap_in_stall_s += s; }

  const KvTierStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  BlockAllocator& allocator_;
  KvTierConfig config_;
  std::unordered_map<SeqId, std::vector<BlockId>> hot_;
  std::unordered_map<SeqId, std::shared_ptr<const std::vector<std::uint8_t>>>
      far_;
  std::size_t far_bytes_ = 0;
  KvTierStats stats_;
};

}  // namespace hack
