#include <gtest/gtest.h>

#include <span>

#include "base/rng.h"
#include "core/int_gemm.h"
#include "quant/packed.h"

namespace hack {
namespace {

std::vector<std::uint8_t> random_codes(std::size_t n, int bits, Rng& rng) {
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) {
    c = static_cast<std::uint8_t>(rng.next_below(1u << bits));
  }
  return codes;
}

TEST(IntGemm, DotNtKnownValues) {
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {5, 6, 7, 8};
  const CodeView av{a.data(), 1, 4};
  const CodeView bv{b.data(), 1, 4};
  EXPECT_EQ(int_dot_nt(av, bv, 0, 0, 0, 4), 1 * 5 + 2 * 6 + 3 * 7 + 4 * 8);
  EXPECT_EQ(int_dot_nt(av, bv, 0, 0, 1, 3), 2 * 6 + 3 * 7);
  EXPECT_EQ(int_dot_nt(av, bv, 0, 0, 2, 2), 0);
}

TEST(IntGemm, NnMatchesNaive) {
  Rng rng(1);
  const std::size_t m = 5, z = 48, n = 7;
  const auto a = random_codes(m * z, 8, rng);
  const auto b = random_codes(z * n, 8, rng);
  const CodeView av{a.data(), m, z};
  const CodeView bv{b.data(), z, n};
  std::vector<std::int32_t> out(m * n, 0);
  int_gemm_nn_block(av, bv, 0, z, out);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t expect = 0;
      for (std::size_t k = 0; k < z; ++k) {
        expect += static_cast<std::int32_t>(a[i * z + k]) * b[k * n + j];
      }
      EXPECT_EQ(out[i * n + j], expect) << i << "," << j;
    }
  }
}

TEST(IntGemm, NtMatchesNaive) {
  Rng rng(2);
  const std::size_t m = 4, z = 64, n = 6;
  const auto a = random_codes(m * z, 2, rng);
  const auto b = random_codes(n * z, 2, rng);
  const CodeView av{a.data(), m, z};
  const CodeView bv{b.data(), n, z};
  std::vector<std::int32_t> out(m * n, 0);
  int_gemm_nt_block(av, bv, 0, z, out);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t expect = 0;
      for (std::size_t k = 0; k < z; ++k) {
        expect += static_cast<std::int32_t>(a[i * z + k]) * b[j * z + k];
      }
      EXPECT_EQ(out[i * n + j], expect);
    }
  }
}

TEST(IntGemm, NtJRangeMatchesFullColumns) {
  // The KV-tile view: restricting output columns to B rows [j0, j1) must
  // reproduce exactly those columns of the full kernel, for both the AVX2
  // small-code path (2-bit B) and the generic path (8-bit B).
  Rng rng(11);
  const std::size_t m = 6, z = 96, n = 37;
  for (const int b_bits : {2, 8}) {
    const auto a = random_codes(m * z, 8, rng);
    const auto b = random_codes(n * z, b_bits, rng);
    const CodeView av{a.data(), m, z};
    const CodeView bv{b.data(), n, z};
    std::vector<std::int32_t> full(m * n, 0);
    int_gemm_nt_rows(av, bv, 0, m, 0, z, full.data(), b_bits);
    for (const auto [j0, j1] : {std::pair<std::size_t, std::size_t>{0, n},
                                {5, 21},
                                {n - 1, n},
                                {0, 1},
                                {16, 16}}) {
      std::vector<std::int32_t> tile(m * (j1 - j0), 0);
      int_gemm_nt_rows(av, bv, 0, m, 0, z, tile.data(), b_bits, j0, j1);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          ASSERT_EQ(tile[i * (j1 - j0) + (j - j0)], full[i * n + j])
              << "b_bits=" << b_bits << " j0=" << j0 << " j1=" << j1;
        }
      }
    }
  }
}

TEST(IntGemm, NnRowOffsetMatchesShiftedContraction) {
  // b_row_offset contracts A columns against B rows [offset, offset + z):
  // the KV-tile P·V case, where A is a tile-local block and B the tall V
  // store. Check against the naive shifted loop for both kernel paths.
  Rng rng(12);
  const std::size_t m = 5, z_tile = 40, n = 19, b_rows = 100;
  for (const int b_bits : {2, 8}) {
    const auto a = random_codes(m * z_tile, 8, rng);
    const auto b = random_codes(b_rows * n, b_bits, rng);
    const CodeView av{a.data(), m, z_tile};
    const CodeView bv{b.data(), b_rows, n};
    for (const std::size_t offset : {std::size_t{0}, std::size_t{7},
                                     std::size_t{60}}) {
      std::vector<std::int32_t> out(m * n, 0);
      int_gemm_nn_rows(av, bv, 0, m, 0, z_tile, out.data(), b_bits, offset);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          std::int32_t expect = 0;
          for (std::size_t k = 0; k < z_tile; ++k) {
            expect += static_cast<std::int32_t>(a[i * z_tile + k]) *
                      b[(offset + k) * n + j];
          }
          ASSERT_EQ(out[i * n + j], expect)
              << "b_bits=" << b_bits << " offset=" << offset;
        }
      }
    }
  }
}

TEST(IntGemm, BlockDecompositionSumsToFull) {
  // Computing per-partition blocks and accumulating equals one full pass —
  // the property Eq. (4) relies on when splitting the inner dimension.
  Rng rng(3);
  const std::size_t m = 3, z = 96, n = 5;
  const auto a = random_codes(m * z, 2, rng);
  const auto b = random_codes(z * n, 2, rng);
  const CodeView av{a.data(), m, z};
  const CodeView bv{b.data(), z, n};

  std::vector<std::int32_t> full(m * n, 0);
  int_gemm_nn_block(av, bv, 0, z, full);

  std::vector<std::int32_t> blocked(m * n, 0);
  for (std::size_t begin = 0; begin < z; begin += 32) {
    int_gemm_nn_block(av, bv, begin, begin + 32, blocked);
  }
  EXPECT_EQ(full, blocked);
}

TEST(IntGemm, AccumulatesIntoExistingOutput) {
  const std::vector<std::uint8_t> a = {1, 1};
  const std::vector<std::uint8_t> b = {2, 2};
  const CodeView av{a.data(), 1, 2};
  const CodeView bv{b.data(), 2, 1};
  std::vector<std::int32_t> out(1, 100);
  int_gemm_nn_block(av, bv, 0, 2, out);
  EXPECT_EQ(out[0], 104);
}

TEST(IntGemm, NoOverflowAtMaxCodes) {
  // Worst case 8-bit: 255*255*Z with Z=4096 is ~2.7e8 < int32 max.
  const std::size_t z = 4096;
  std::vector<std::uint8_t> a(z, 255), b(z, 255);
  const CodeView av{a.data(), 1, z};
  const CodeView bv{b.data(), 1, z};
  const std::int32_t dot = int_dot_nt(av, bv, 0, 0, 0, z);
  EXPECT_EQ(dot, 255 * 255 * static_cast<std::int32_t>(z));
}

TEST(IntGemm, BandedRowsMatchFullKernel) {
  // Computing C in row bands (the thread-pool decomposition) must equal one
  // full-range call, for both layouts and any band split.
  Rng rng(4);
  const std::size_t m = 13, z = 96, n = 11;
  const auto a = random_codes(m * z, 8, rng);
  const auto b_nn = random_codes(z * n, 8, rng);
  const auto b_nt = random_codes(n * z, 8, rng);
  const CodeView av{a.data(), m, z};
  const CodeView bv_nn{b_nn.data(), z, n};
  const CodeView bv_nt{b_nt.data(), n, z};

  std::vector<std::int32_t> full_nn(m * n, 0), full_nt(m * n, 0);
  int_gemm_nn_block(av, bv_nn, 0, z, full_nn);
  int_gemm_nt_block(av, bv_nt, 0, z, full_nt);

  const std::size_t splits[] = {0, 1, 4, 5, 12, m};
  std::vector<std::int32_t> banded_nn(m * n, 0), banded_nt(m * n, 0);
  for (std::size_t s = 0; s + 1 < std::size(splits); ++s) {
    const std::size_t i0 = splits[s], i1 = splits[s + 1];
    int_gemm_nn_rows(av, bv_nn, i0, i1, 0, z, banded_nn.data() + i0 * n);
    int_gemm_nt_rows(av, bv_nt, i0, i1, 0, z, banded_nt.data() + i0 * n);
  }
  EXPECT_EQ(full_nn, banded_nn);
  EXPECT_EQ(full_nt, banded_nt);
}

TEST(IntGemm, NtSmallCodeFastPathMatchesGeneric) {
  // b_bits <= 6 may take a SIMD multiply-add path; the int32 results must be
  // identical to the generic kernel, including ragged z-ranges and row/col
  // remainders.
  Rng rng(5);
  for (const int b_bits : {2, 4, 6}) {
    const std::size_t m = 7, z = 130, n = 9;
    const auto a = random_codes(m * z, 8, rng);
    const auto b = random_codes(n * z, b_bits, rng);
    const CodeView av{a.data(), m, z};
    const CodeView bv{b.data(), n, z};
    for (const auto& range :
         {std::pair<std::size_t, std::size_t>{0, z}, {0, 64}, {64, 128},
          {128, 130}, {3, 37}}) {
      std::vector<std::int32_t> generic(m * n, 17), fast(m * n, 17);
      int_gemm_nt_rows(av, bv, 0, m, range.first, range.second,
                       generic.data(), /*b_bits=*/8);
      int_gemm_nt_rows(av, bv, 0, m, range.first, range.second, fast.data(),
                       b_bits);
      EXPECT_EQ(generic, fast) << "b_bits=" << b_bits << " z-range ["
                               << range.first << "," << range.second << ")";
    }
  }
}

TEST(IntGemm, NnSmallCodeFastPathMatchesGeneric) {
  // b_bits <= 6 may take the explicit AVX2 widening-multiply path (z-pairs
  // through pmaddubsw); the int32 results must be identical to the generic
  // kernel, including odd z-ranges, column remainders, and row remainders.
  Rng rng(6);
  for (const int b_bits : {2, 4, 6}) {
    const std::size_t m = 7, z = 131, n = 37;  // n % 16 != 0, odd z tail
    const auto a = random_codes(m * z, 8, rng);
    const auto b = random_codes(z * n, b_bits, rng);
    const CodeView av{a.data(), m, z};
    const CodeView bv{b.data(), z, n};
    for (const auto& range :
         {std::pair<std::size_t, std::size_t>{0, z}, {0, 64}, {64, 128},
          {128, 131}, {3, 38}}) {
      std::vector<std::int32_t> generic(m * n, 17), fast(m * n, 17);
      int_gemm_nn_rows(av, bv, 0, m, range.first, range.second,
                       generic.data(), /*b_bits=*/8);
      int_gemm_nn_rows(av, bv, 0, m, range.first, range.second, fast.data(),
                       b_bits);
      EXPECT_EQ(generic, fast) << "b_bits=" << b_bits << " z-range ["
                               << range.first << "," << range.second << ")";
    }
  }
}

TEST(IntGemm, NnFastPathLongZAccumulates) {
  // z longer than the AVX2 kernel's chunk (256) with saturating-range codes:
  // accumulation across chunk boundaries must stay exact.
  Rng rng(7);
  const std::size_t m = 5, z = 700, n = 16;
  auto a = random_codes(m * z, 8, rng);
  auto b = random_codes(z * n, 6, rng);
  // Force worst-case magnitudes on a stripe to stress the int16 headroom.
  for (std::size_t i = 0; i < z; ++i) {
    a[i] = 255;
    b[i * n] = 63;
  }
  const CodeView av{a.data(), m, z};
  const CodeView bv{b.data(), z, n};
  std::vector<std::int32_t> generic(m * n, 0), fast(m * n, 0);
  int_gemm_nn_rows(av, bv, 0, m, 0, z, generic.data(), /*b_bits=*/8);
  int_gemm_nn_rows(av, bv, 0, m, 0, z, fast.data(), /*b_bits=*/6);
  EXPECT_EQ(generic, fast);
}

// Bit-packs `codes` ([rows x cols], one byte per code) into the row-padded
// layout packed CodeViews consume: little-endian within each byte, every row
// padded up to a whole byte.
std::vector<std::uint8_t> pack_rows(const std::vector<std::uint8_t>& codes,
                                    std::size_t rows, std::size_t cols,
                                    int bits) {
  const std::size_t stride = (cols * static_cast<std::size_t>(bits) + 7) / 8;
  std::vector<std::uint8_t> packed(rows * stride, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    pack_codes(
        std::span<const std::uint8_t>(codes).subspan(r * cols, cols), bits,
        packed.data() + r * stride);
  }
  return packed;
}

// Restores the dispatch default when a test body throws mid-sweep.
struct PortableGuard {
  ~PortableGuard() { int_gemm_force_portable(false); }
};

TEST(IntGemm, PackedNtBitIdenticalToUnpacked) {
  // The packed NT kernel (in-register crumb/nibble expansion on AVX2, bit
  // extraction on the portable path) must produce the same int32 results as
  // byte-storage B, across odd z-ranges (misaligned packed heads), partial
  // j-ranges, and both dispatch arms.
  PortableGuard guard;
  Rng rng(21);
  for (const int bits : {2, 4}) {
    const std::size_t m = 5, z = 131, n = 23;  // odd z: padded packed rows
    const auto a = random_codes(m * z, 8, rng);
    const auto b = random_codes(n * z, bits, rng);
    const auto bp = pack_rows(b, n, z, bits);
    const CodeView av{a.data(), m, z};
    const CodeView bv{b.data(), n, z};
    const CodeView bpv{bp.data(), n, z, bits};
    for (const bool portable : {false, true}) {
      int_gemm_force_portable(portable);
      for (const auto& range :
           {std::pair<std::size_t, std::size_t>{0, z}, {0, 64}, {64, 128},
            {128, 131}, {3, 37}, {1, 2}}) {
        std::vector<std::int32_t> byte_b(m * n, 17), packed_b(m * n, 17);
        int_gemm_nt_rows(av, bv, 0, m, range.first, range.second,
                         byte_b.data(), bits);
        int_gemm_nt_rows(av, bpv, 0, m, range.first, range.second,
                         packed_b.data(), bits);
        EXPECT_EQ(byte_b, packed_b)
            << "bits=" << bits << " portable=" << portable << " z-range ["
            << range.first << "," << range.second << ")";
      }
      for (const auto [j0, j1] : {std::pair<std::size_t, std::size_t>{0, n},
                                  {5, 21},
                                  {n - 1, n},
                                  {0, 1}}) {
        std::vector<std::int32_t> byte_b(m * (j1 - j0), 0);
        std::vector<std::int32_t> packed_b(m * (j1 - j0), 0);
        int_gemm_nt_rows(av, bv, 0, m, 0, z, byte_b.data(), bits, j0, j1);
        int_gemm_nt_rows(av, bpv, 0, m, 0, z, packed_b.data(), bits, j0, j1);
        EXPECT_EQ(byte_b, packed_b) << "bits=" << bits << " portable="
                                    << portable << " j-range [" << j0 << ","
                                    << j1 << ")";
      }
    }
    int_gemm_force_portable(false);
  }
}

TEST(IntGemm, PackedNnBitIdenticalToUnpacked) {
  // Same contract for the NN kernel, including the b_row_offset KV-tile view
  // (packed rows are byte-padded, so a row offset is a byte-exact view) and
  // banded i-ranges (the thread-pool decomposition). Row counts 1..4 hit the
  // few-row AVX2 blocks the decode GEMV rides on.
  PortableGuard guard;
  Rng rng(22);
  for (const int bits : {2, 4}) {
    const std::size_t z_tile = 41, n = 37, b_rows = 100;
    const auto b = random_codes(b_rows * n, bits, rng);
    const auto bp = pack_rows(b, b_rows, n, bits);
    const CodeView bv{b.data(), b_rows, n};
    const CodeView bpv{bp.data(), b_rows, n, bits};
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{4}, std::size_t{7}}) {
      const auto a = random_codes(m * z_tile, 8, rng);
      const CodeView av{a.data(), m, z_tile};
      for (const bool portable : {false, true}) {
        int_gemm_force_portable(portable);
        for (const std::size_t offset :
             {std::size_t{0}, std::size_t{7}, std::size_t{59}}) {
          std::vector<std::int32_t> byte_b(m * n, 3), packed_b(m * n, 3);
          int_gemm_nn_rows(av, bv, 0, m, 0, z_tile, byte_b.data(), bits,
                           offset);
          int_gemm_nn_rows(av, bpv, 0, m, 0, z_tile, packed_b.data(), bits,
                           offset);
          EXPECT_EQ(byte_b, packed_b)
              << "bits=" << bits << " m=" << m << " portable=" << portable
              << " offset=" << offset;
        }
        // Banded rows over an odd z-range.
        if (m >= 4) {
          std::vector<std::int32_t> byte_b(m * n, 0), packed_b(m * n, 0);
          for (std::size_t i0 = 0; i0 < m; i0 += 3) {
            const std::size_t i1 = std::min(m, i0 + 3);
            int_gemm_nn_rows(av, bv, i0, i1, 3, 38, byte_b.data() + i0 * n,
                             bits, 11);
            int_gemm_nn_rows(av, bpv, i0, i1, 3, 38, packed_b.data() + i0 * n,
                             bits, 11);
          }
          EXPECT_EQ(byte_b, packed_b)
              << "bits=" << bits << " m=" << m << " portable=" << portable;
        }
      }
      int_gemm_force_portable(false);
    }
  }
}

TEST(IntGemm, PackedDispatchArmsAgree) {
  // AVX2 in-register expansion vs the scalar extraction fallback on the same
  // packed operand — byte-aligned rows (z a multiple of 16, the KV-plane
  // shape) plus saturating-range codes to stress the int16 pair sums.
  PortableGuard guard;
  Rng rng(23);
  for (const int bits : {2, 4}) {
    const std::size_t m = 4, z = 320, n = 16;
    const auto a = random_codes(m * z, 8, rng);
    auto b_nt = random_codes(n * z, bits, rng);
    auto b_nn = random_codes(z * n, bits, rng);
    const std::uint8_t top = static_cast<std::uint8_t>((1u << bits) - 1u);
    for (std::size_t i = 0; i < z; ++i) {
      b_nt[i] = top;       // row 0 of NT B saturated
      b_nn[i * n] = top;   // column 0 of NN B saturated
    }
    const auto bp_nt = pack_rows(b_nt, n, z, bits);
    const auto bp_nn = pack_rows(b_nn, z, n, bits);
    const CodeView av{a.data(), m, z};
    const CodeView bv_nt{bp_nt.data(), n, z, bits};
    const CodeView bv_nn{bp_nn.data(), z, n, bits};

    std::vector<std::int32_t> simd_nt(m * n, 0), scalar_nt(m * n, 0);
    std::vector<std::int32_t> simd_nn(m * n, 0), scalar_nn(m * n, 0);
    int_gemm_nt_rows(av, bv_nt, 0, m, 0, z, simd_nt.data(), bits);
    int_gemm_nn_rows(av, bv_nn, 0, m, 0, z, simd_nn.data(), bits);
    int_gemm_force_portable(true);
    int_gemm_nt_rows(av, bv_nt, 0, m, 0, z, scalar_nt.data(), bits);
    int_gemm_nn_rows(av, bv_nn, 0, m, 0, z, scalar_nn.data(), bits);
    int_gemm_force_portable(false);
    EXPECT_EQ(simd_nt, scalar_nt) << "bits=" << bits;
    EXPECT_EQ(simd_nn, scalar_nn) << "bits=" << bits;
  }
}

TEST(IntGemm, PackedEightBitViewIsByteView) {
  // bits == 8 in a CodeView is the classic byte layout: at() and the kernels
  // must treat it identically to the historical two-field aggregate.
  Rng rng(24);
  const std::size_t m = 3, z = 48, n = 5;
  const auto a = random_codes(m * z, 8, rng);
  const auto b = random_codes(n * z, 8, rng);
  const CodeView bv_implicit{b.data(), n, z};
  const CodeView bv_explicit{b.data(), n, z, 8};
  EXPECT_EQ(bv_implicit.row_stride_bytes(), z);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < z; ++c) {
      ASSERT_EQ(bv_implicit.at(j, c), bv_explicit.at(j, c));
    }
  }
  const CodeView av{a.data(), m, z};
  std::vector<std::int32_t> imp(m * n, 0), exp(m * n, 0);
  int_gemm_nt_rows(av, bv_implicit, 0, m, 0, z, imp.data());
  int_gemm_nt_rows(av, bv_explicit, 0, m, 0, z, exp.data());
  EXPECT_EQ(imp, exp);
}

TEST(IntGemm, ShapeChecks) {
  const std::vector<std::uint8_t> a = {1, 2};
  const CodeView av{a.data(), 1, 2};
  const CodeView bv{a.data(), 1, 2};
  std::vector<std::int32_t> bad_out(5, 0);
  EXPECT_THROW(int_gemm_nt_block(av, bv, 0, 2, bad_out), CheckError);
  std::vector<std::int32_t> out(1, 0);
  EXPECT_THROW(int_gemm_nt_block(av, bv, 1, 3, out), CheckError);
}

}  // namespace
}  // namespace hack
