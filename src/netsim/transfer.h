// NCCL-style point-to-point KV transfer.
//
// The paper moves KV between prefill and decode instances with NCCL (§6).
// A transfer is split into chunks that pipeline across the sender and
// receiver NICs: chunk i leaves the sender, then occupies the receiver while
// chunk i+1 leaves the sender. End-to-end time is governed by the slower of
// the two NICs plus one chunk of pipeline fill, and both NICs' busy horizons
// advance so concurrent transfers contend realistically.
//
// Two callers ride this model: the analytical cluster simulator
// (cluster/simulator.h) with modeled byte counts, and the real serving
// engine's disaggregated split (serving/disagg.h), whose byte counts are
// measured KV wire blobs (kvcache/kv_wire.h) — the transfer timing feeds its
// TTFT accounting.
#pragma once

#include "netsim/link.h"

namespace hack {

struct TransferResult {
  double start = 0.0;   // when the first chunk left the sender
  double finish = 0.0;  // when the last chunk arrived at the receiver
  double bytes = 0.0;

  double duration() const { return finish - start; }
};

TransferResult nccl_transfer(Nic& src, Nic& dst, double ready_time,
                             double bytes, int chunks = 8);

}  // namespace hack
