// GPU and cloud-instance specifications (paper Table 2 + public datasheets).
//
// The simulator needs, per GPU: dense FP16 tensor throughput, INT8 tensor
// throughput (zero when the architecture lacks INT8 tensor cores — V100),
// HBM bandwidth, and memory capacity; per instance: GPU count and NIC rate.
#pragma once

#include <string>
#include <vector>

#include "model/config.h"

namespace hack {

struct GpuSpec {
  std::string name;
  double fp16_tflops = 0.0;  // dense tensor-core FP16, TFLOP/s
  double int8_tops = 0.0;    // dense tensor-core INT8, TOP/s (0 = unsupported)
  double mem_bw_gbps = 0.0;  // HBM bandwidth, GB/s
  double mem_gb = 0.0;       // capacity per GPU, GB
  GpuFamily family = GpuFamily::kA100;

  bool supports_int8() const { return int8_tops > 0.0; }
};

struct InstanceSpec {
  std::string name;  // AWS instance type
  GpuSpec gpu;
  int gpus = 0;
  double net_gbps = 0.0;  // instance NIC (Table 2)

  double total_mem_gb() const { return gpu.mem_gb * gpus; }
};

// The five instance types of Table 2, keyed by GPU name:
// A10G, V100, T4, L4, A100.
const std::vector<InstanceSpec>& instance_zoo();
const InstanceSpec& instance_for_gpu(const std::string& gpu_name);

// Total prefill-side GPU count the paper provisions per type (§7.1):
// ten g5, sixteen p3, sixteen g4dn, ten g6, two p4de.
int paper_prefill_gpu_count(const std::string& gpu_name);

}  // namespace hack
