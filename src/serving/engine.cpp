#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "attention/layer_attention.h"
#include "base/thread_pool.h"
#include "kvcache/kv_wire.h"

namespace hack {
namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// One admitted request's execution state: its session (KV backends +
// position), its KV block reservation, and the token feeding the next
// decode step. In tiered mode the session is destroyed on swap-out (the
// kv_wire blob in the far tier is the state) and rebuilt on resume;
// last_token and resume_state survive the round trip.
struct ServingEngine::RunningSeq {
  RunningSeq(std::size_t record_idx,
             std::shared_ptr<const TinyModelWeights> weights,
             const LayerBackendFactory& factory)
      : record(record_idx),
        session(std::make_unique<TinyModelSession>(std::move(weights),
                                                   factory)) {}

  std::size_t record;  // index into records_
  std::unique_ptr<TinyModelSession> session;  // null while swapped
  std::vector<BlockId> blocks;  // FCFS mode: worst-case reservation
  int last_token = -1;
  RequestState resume_state = RequestState::kPrefill;  // phase while swapped
  std::size_t swap_tokens = 0;  // KV rows in the far-tier blob while swapped
  std::size_t stall_steps = 0;  // consecutive planned steps left unscheduled
  std::size_t ordinal = 0;      // admission order (tiered priority tiebreak)
};

// A speculative swap-in staged on a background thread: a fresh session
// being deserialized from the far-tier blob while the engine computes the
// current step. The worker writes `session` and `work_s` before exiting;
// the engine reads them only after join(), so the hand-off is synchronized
// and the worker never touches the shared thread pool (the deserialize
// path is serial by construction — kvcache/kv_wire.cpp).
struct ServingEngine::StagedPrefetch {
  std::size_t record = 0;  // index into records_
  std::thread worker;
  std::unique_ptr<TinyModelSession> session;
  double work_s = 0.0;

  ~StagedPrefetch() {
    if (worker.joinable()) worker.join();
  }
};

ServingEngine::ServingEngine(
    std::shared_ptr<const TinyModelWeights> weights,
    std::function<LayerBackendFactory()> make_backend_factory,
    ServingEngineConfig config, BlockAllocator* allocator)
    : weights_(std::move(weights)),
      make_backend_factory_(std::move(make_backend_factory)),
      config_(config),
      scheduler_(config.scheduler),
      allocator_(allocator) {
  HACK_CHECK(weights_ != nullptr, "engine needs model weights");
  HACK_CHECK(make_backend_factory_ != nullptr,
             "engine needs a backend factory maker");
  if (config_.scheduler.tiered) {
    HACK_CHECK(allocator_ != nullptr,
               "tiered mode needs a block allocator (the hot pool)");
    tier_ = std::make_unique<KvTierManager>(
        *allocator_, KvTierConfig{.block_tokens = config_.scheduler
                                                      .block_tokens});
  }
}

ServingEngine::~ServingEngine() = default;

double ServingEngine::now_s() const { return steady_now_s() - run_start_s_; }

void ServingEngine::submit(ServingRequest request) {
  HACK_CHECK(!request.prompt.empty(), "request needs a non-empty prompt");
  ServingRecord record;
  record.request = std::move(request);
  records_.push_back(std::move(record));
}

void ServingEngine::admit_arrivals(std::vector<std::size_t>& queued,
                                   double now) {
  std::vector<std::size_t> ready;
  for (const std::size_t idx : queued) {
    if (records_[idx].request.arrival_time_s <= now) ready.push_back(idx);
  }
  std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
    const double ta = records_[a].request.arrival_time_s;
    const double tb = records_[b].request.arrival_time_s;
    return ta != tb ? ta < tb : a < b;
  });
  const bool tiered = config_.scheduler.tiered;
  for (const std::size_t idx : ready) {
    ServingRecord& rec = records_[idx];
    // Tiered admission routes through the tier manager's capacity model —
    // the request only has to fit the pool alone (residents are evictable);
    // FCFS keeps the worst-case `need + floor <= num_blocks` predicate.
    const bool ever =
        tiered ? scheduler_.can_ever_admit(rec.request, tier_.get())
               : scheduler_.can_ever_admit(rec.request, allocator_);
    if (!ever) {
      rec.state = RequestState::kRejected;
      rec.finish_time_s = now;
      ++stats_.rejected;
      continue;
    }
    // Tiered mode reserves on append, so admission is slots-only; FCFS
    // reserves the worst case up front.
    if (!scheduler_.can_admit(rec.request, running_.size(),
                              tiered ? nullptr : allocator_)) {
      break;  // FCFS: later arrivals wait behind the head of the line
    }
    auto seq = std::make_unique<RunningSeq>(idx, weights_,
                                            make_backend_factory_());
    seq->ordinal = next_ordinal_++;
    if (!tiered && allocator_ != nullptr) {
      const std::size_t need = scheduler_.blocks_needed(rec.request);
      seq->blocks.reserve(need);
      for (std::size_t b = 0; b < need; ++b) {
        const BlockId id = allocator_->allocate();
        HACK_CHECK(id != kInvalidBlock, "allocator lied about capacity");
        seq->blocks.push_back(id);
      }
      rec.kv_blocks = need;
      stats_.kv_bytes_admitted += need * allocator_->block_bytes();
    }
    rec.state = RequestState::kPrefill;
    rec.admit_time_s = now;
    running_.push_back(std::move(seq));
    stats_.peak_running = std::max(stats_.peak_running, running_.size());
  }
}

void ServingEngine::finish_sequence(RunningSeq& seq, double now) {
  ServingRecord& rec = records_[seq.record];
  rec.state = RequestState::kFinished;
  rec.finish_time_s = now;
  if (tier_ != nullptr) {
    tier_->release(seq.record);
    drop_staged(seq.record);
    return;
  }
  if (allocator_ != nullptr) {
    for (const BlockId id : seq.blocks) allocator_->release(id);
    stats_.kv_bytes_released += seq.blocks.size() * allocator_->block_bytes();
    seq.blocks.clear();
  }
}

void ServingEngine::execute_step(const StepPlan& plan) {
  const double step_begin = now_s();

  struct Lane {
    std::size_t run_idx = 0;
    bool is_prefill = false;
    std::size_t chunk_begin = 0, chunk_end = 0;  // prompt rows (prefill)
    bool completes_prefill = false;
    bool emits = false;  // computes logits + greedy token for its last row
    std::size_t start_pos = 0, rows = 0;
    Matrix x;
    int token = -1;
  };

  // Decode lanes first; the (at most one) prefill lane last, so the phase
  // runner can execute it inline on the caller where its big row-parallel
  // matmuls can use the whole pool instead of being nested into one lane.
  std::vector<Lane> lanes;
  lanes.reserve(plan.decode.size() + 1);
  for (const std::size_t idx : plan.decode) {
    Lane lane;
    lane.run_idx = idx;
    lane.rows = 1;
    lane.emits = true;
    lanes.push_back(std::move(lane));
  }
  if (plan.prefill != kNoSequence) {
    RunningSeq& seq = *running_[plan.prefill];
    const ServingRecord& rec = records_[seq.record];
    Lane lane;
    lane.run_idx = plan.prefill;
    lane.is_prefill = true;
    lane.chunk_begin = plan.prefill_begin;
    lane.chunk_end = plan.prefill_end;
    lane.rows = plan.prefill_end - plan.prefill_begin;
    lane.completes_prefill = plan.prefill_end == rec.request.prompt.size();
    lane.emits = lane.completes_prefill && rec.request.max_new_tokens > 0;
    lanes.push_back(std::move(lane));
  }
  const std::size_t n_lanes = lanes.size();
  const bool has_prefill = plan.prefill != kNoSequence;
  const std::size_t n_light = has_prefill ? n_lanes - 1 : n_lanes;
  const int threads = config_.threads;

  // Phase runner: decode lanes fan out as pool tasks; the prefill lane runs
  // on the caller afterwards with the pool at its disposal.
  const auto run_lanes = [&](const std::function<void(std::size_t)>& fn) {
    parallel_for_each_index(n_light, threads, fn);
    if (has_prefill) fn(n_lanes - 1);
  };

  // --- Embed inputs.
  run_lanes([&](std::size_t i) {
    Lane& lane = lanes[i];
    RunningSeq& seq = *running_[lane.run_idx];
    lane.start_pos = seq.session->position();
    if (lane.is_prefill) {
      HACK_CHECK(lane.chunk_begin == lane.start_pos,
                 "prefill chunk out of order");
      const auto& prompt = records_[seq.record].request.prompt;
      lane.x = weights_->embed(
          {prompt.begin() + static_cast<std::ptrdiff_t>(lane.chunk_begin),
           prompt.begin() + static_cast<std::ptrdiff_t>(lane.chunk_end)});
    } else {
      lane.x = weights_->embed({seq.last_token});
    }
  });

  // --- Layer loop: per-sequence phase A, one fused (or per-sequence)
  // attention launch, per-sequence phase B.
  const std::size_t n_layers = weights_->config().layers;
  const bool fused = config_.fused_attention && n_layers > 0 &&
                     running_[lanes[0].run_idx]
                             ->session->backend(0)
                             .hack_state() != nullptr;
  std::vector<Matrix> q(n_lanes), attn(n_lanes);
  std::vector<AttentionOptions> attn_opts(n_lanes);
  for (std::size_t layer = 0; layer < n_layers; ++layer) {
    run_lanes([&](std::size_t i) {
      q[i] = running_[lanes[i].run_idx]->session->project_and_append(
          layer, lanes[i].x, lanes[i].start_pos);
    });
    if (fused) {
      MultiAttendBatch batch;
      for (std::size_t i = 0; i < n_lanes; ++i) {
        HackLayerKvState* state =
            running_[lanes[i].run_idx]->session->backend(layer).hack_state();
        HACK_CHECK(state != nullptr, "mixed backends in a fused step");
        attn_opts[i] = {.causal = true, .key_offset = lanes[i].start_pos};
        batch.add(*state, q[i], attn_opts[i], &attn[i]);
      }
      batch.run(threads);
      ++stats_.fused_attend_launches;
    } else {
      run_lanes([&](std::size_t i) {
        attn[i] = running_[lanes[i].run_idx]->session->backend(layer).attend(
            q[i], lanes[i].start_pos);
      });
    }
    run_lanes([&](std::size_t i) {
      lanes[i].x = running_[lanes[i].run_idx]->session->finish_layer(
          layer, std::move(lanes[i].x), attn[i]);
    });
  }

  // --- Commit positions, then one batched LM-head launch for every
  // emitting lane: the final hidden rows gather into a [batch × d] block and
  // sweep the tied embedding once ([batch × d] · [d × vocab]) instead of
  // per-lane vocab loops. Row r of logits_batch is bit-identical to the
  // per-lane logits_for_row call it replaces.
  run_lanes([&](std::size_t i) {
    running_[lanes[i].run_idx]->session->advance(lanes[i].rows);
  });
  std::vector<std::size_t> emit_idx;
  emit_idx.reserve(n_lanes);
  for (std::size_t i = 0; i < n_lanes; ++i) {
    if (lanes[i].emits) emit_idx.push_back(i);
  }
  if (!emit_idx.empty()) {
    Matrix hidden(emit_idx.size(), weights_->config().d_model());
    for (std::size_t m = 0; m < emit_idx.size(); ++m) {
      const Lane& lane = lanes[emit_idx[m]];
      const auto row = lane.x.row(lane.rows - 1);
      std::copy(row.begin(), row.end(), hidden.row(m).begin());
    }
    const Matrix logits = weights_->logits_batch(hidden, threads);
    for (std::size_t m = 0; m < emit_idx.size(); ++m) {
      lanes[emit_idx[m]].token = argmax_logits(logits.row(m));
    }
  }

  // --- Bookkeeping (serial: timestamps, state transitions, removals).
  const double now = now_s();
  std::size_t emitted_this_step = 0;
  std::vector<std::size_t> finished;
  for (const Lane& lane : lanes) {
    RunningSeq& seq = *running_[lane.run_idx];
    ServingRecord& rec = records_[seq.record];
    if (lane.is_prefill) {
      rec.prefill_done = lane.chunk_end;
      ++stats_.prefill_chunks;
      if (!lane.completes_prefill) continue;
      if (rec.request.max_new_tokens == 0) {
        finish_sequence(seq, now);
        finished.push_back(lane.run_idx);
        continue;
      }
      rec.state = RequestState::kDecoding;
    }
    // Greedy emission, exactly TinyTransformer::generate's rules: an eos
    // argmax stops without being recorded; max_new_tokens bounds the count.
    if (lane.token == rec.request.eos) {
      finish_sequence(seq, now);
      finished.push_back(lane.run_idx);
      continue;
    }
    rec.generated.push_back(lane.token);
    rec.token_times_s.push_back(now);
    if (rec.first_token_time_s < 0) rec.first_token_time_s = now;
    ++total_generated_;
    ++emitted_this_step;
    if (rec.generated.size() >= rec.request.max_new_tokens) {
      finish_sequence(seq, now);
      finished.push_back(lane.run_idx);
    } else {
      seq.last_token = lane.token;
    }
  }
  std::sort(finished.begin(), finished.end());
  for (auto it = finished.rbegin(); it != finished.rend(); ++it) {
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(*it));
  }

  ++stats_.steps;
  if (!plan.decode.empty()) {
    decode_time_s_ += now - step_begin;
    decode_step_tokens_ += emitted_this_step;
    if (plan.prefill == kNoSequence) {
      pure_decode_time_s_ += now - step_begin;
      pure_decode_tokens_ += emitted_this_step;
    }
  }
}

std::vector<Scheduler::TieredSeqView> ServingEngine::tiered_views() const {
  std::vector<Scheduler::TieredSeqView> views;
  views.reserve(running_.size());
  for (const auto& seq : running_) {
    const ServingRecord& rec = records_[seq->record];
    Scheduler::TieredSeqView v;
    v.state = rec.state;
    v.resume_state = seq->resume_state;
    v.prompt_len = rec.request.prompt.size();
    v.prefill_done = rec.prefill_done;
    v.tokens = seq->session != nullptr ? seq->session->position()
                                       : seq->swap_tokens;
    v.generated = rec.generated.size();
    v.max_new = rec.request.max_new_tokens;
    v.stall_steps = seq->stall_steps;
    v.ordinal = seq->ordinal;
    views.push_back(v);
  }
  return views;
}

ServingEngine::StagedPrefetch* ServingEngine::find_staged(
    std::size_t record_idx) {
  for (const auto& staged : staged_) {
    if (staged->record == record_idx) return staged.get();
  }
  return nullptr;
}

void ServingEngine::drop_staged(std::size_t record_idx) {
  for (auto it = staged_.begin(); it != staged_.end(); ++it) {
    if ((*it)->record == record_idx) {
      staged_.erase(it);  // the entry's destructor joins the worker
      return;
    }
  }
}

void ServingEngine::evict_sequence(std::size_t run_idx) {
  RunningSeq& seq = *running_[run_idx];
  ServingRecord& rec = records_[seq.record];
  HACK_CHECK(seq.session != nullptr,
             "evicting request " << rec.request.id << " which is already "
                                 << request_state_name(rec.state));
  // Sessions are committed between steps (advance() ran), which is exactly
  // the precondition serialize_session_kv checks — the far-tier blob is a
  // bit-identical checkpoint of the sequence.
  seq.swap_tokens = seq.session->position();
  std::vector<std::uint8_t> blob = serialize_session_kv(*seq.session);
  seq.session.reset();
  seq.resume_state = rec.state;
  rec.state = RequestState::kSwapped;
  ++rec.evictions;
  tier_->swap_out(seq.record, std::move(blob));
  stats_.swap_events.push_back({SwapEvent::Kind::kEvict, stats_.steps,
                                rec.request.id, seq.swap_tokens, false});
}

void ServingEngine::resume_sequence(std::size_t run_idx) {
  RunningSeq& seq = *running_[run_idx];
  ServingRecord& rec = records_[seq.record];
  HACK_CHECK(rec.state == RequestState::kSwapped,
             "resuming request " << rec.request.id << " which is "
                                 << request_state_name(rec.state));
  const double t0 = steady_now_s();
  const auto blob = tier_->take_blob(seq.record);
  StagedPrefetch* staged = find_staged(seq.record);
  bool hit = false;
  if (staged != nullptr) {
    // The speculative deserialize ran while previous steps computed; the
    // stall is only however much of it is still unfinished at join time.
    if (staged->worker.joinable()) staged->worker.join();
    const double stall = steady_now_s() - t0;
    seq.session = std::move(staged->session);
    tier_->note_prefetch_hit();
    tier_->add_swap_in_work_s(staged->work_s);
    tier_->add_swap_in_stall_s(stall);
    rec.swap_stall_s += stall;
    ++rec.prefetch_hits;
    hit = true;
    drop_staged(seq.record);
  } else {
    // Cold resume: the whole deserialize is on the critical path.
    seq.session = std::make_unique<TinyModelSession>(weights_,
                                                     make_backend_factory_());
    deserialize_session_kv(*blob, *seq.session);
    const double work = steady_now_s() - t0;
    tier_->note_prefetch_miss();
    tier_->add_swap_in_work_s(work);
    tier_->add_swap_in_stall_s(work);
    rec.swap_stall_s += work;
  }
  HACK_CHECK(seq.session->position() == seq.swap_tokens,
             "far-tier blob restored " << seq.session->position()
                                       << " tokens, expected "
                                       << seq.swap_tokens);
  ++rec.rehydrations;
  rec.state = seq.resume_state;
  stats_.swap_events.push_back({SwapEvent::Kind::kResume, stats_.steps,
                                rec.request.id, seq.swap_tokens, hit});
}

void ServingEngine::issue_prefetch(std::size_t run_idx) {
  RunningSeq& seq = *running_[run_idx];
  if (find_staged(seq.record) != nullptr) return;  // already staged
  auto blob = tier_->peek_blob(seq.record);
  if (blob == nullptr) return;
  auto staged = std::make_unique<StagedPrefetch>();
  staged->record = seq.record;
  StagedPrefetch* entry = staged.get();
  // The worker builds a fresh session and deserializes the blob — a serial,
  // pool-free path (kvcache/kv_wire.cpp) — so it never contends with the
  // engine's compute threads. The factory is made here, on the engine
  // thread, exactly like a cold resume would.
  entry->worker = std::thread(
      [entry, weights = weights_, factory = make_backend_factory_(),
       blob = std::move(blob)]() mutable {
        const double t0 = steady_now_s();
        auto session =
            std::make_unique<TinyModelSession>(std::move(weights), factory);
        deserialize_session_kv(*blob, *session);
        entry->session = std::move(session);
        entry->work_s = steady_now_s() - t0;
      });
  stats_.swap_events.push_back({SwapEvent::Kind::kPrefetchIssue, stats_.steps,
                                records_[seq.record].request.id,
                                seq.swap_tokens, false});
  staged_.push_back(std::move(staged));
}

void ServingEngine::predict_and_prefetch(
    const std::vector<Scheduler::TieredSeqView>& views,
    const TieredStepPlan& plan) {
  // Project the views past the step about to execute and re-run the pure
  // planner on the projection: its resume list is the prediction. The only
  // unpredictable outcome is an early eos finish — a deterministic
  // misprediction that wastes one staged deserialize, never correctness.
  std::vector<Scheduler::TieredSeqView> next = views;
  std::vector<char> runs(views.size(), 0);
  std::vector<char> finished(views.size(), 0);
  for (const std::size_t idx : plan.evict) {
    next[idx].resume_state = next[idx].state;
    next[idx].state = RequestState::kSwapped;
  }
  for (const std::size_t idx : plan.resume) {
    next[idx].state = next[idx].resume_state;
  }
  for (const std::size_t idx : plan.step.decode) {
    runs[idx] = 1;
    next[idx].tokens += 1;
    next[idx].generated += 1;
    if (next[idx].generated >= next[idx].max_new) finished[idx] = 1;
  }
  if (plan.step.prefill != kNoSequence) {
    const std::size_t idx = plan.step.prefill;
    runs[idx] = 1;
    next[idx].tokens += plan.step.prefill_end - plan.step.prefill_begin;
    next[idx].prefill_done = plan.step.prefill_end;
    if (next[idx].prefill_done == next[idx].prompt_len) {
      if (next[idx].max_new == 0) {
        finished[idx] = 1;
      } else {
        next[idx].state = RequestState::kDecoding;
        next[idx].generated += 1;  // the completing chunk emits a token
        if (next[idx].generated >= next[idx].max_new) finished[idx] = 1;
      }
    }
  }
  for (std::size_t i = 0; i < next.size(); ++i) {
    next[i].stall_steps = runs[i] ? 0 : next[i].stall_steps + 1;
  }
  std::vector<Scheduler::TieredSeqView> projected;
  std::vector<std::size_t> back;  // projected index -> running_ index
  for (std::size_t i = 0; i < next.size(); ++i) {
    if (finished[i]) continue;
    projected.push_back(next[i]);
    back.push_back(i);
  }
  if (projected.empty()) return;
  const TieredStepPlan next_plan =
      scheduler_.plan_tiered(projected, tier_->pool_blocks());
  for (const std::size_t pidx : next_plan.resume) issue_prefetch(back[pidx]);
}

ServingReport ServingEngine::run() {
  HACK_CHECK(running_.empty(), "run() while an episode is active");
  run_start_s_ = steady_now_s();
  stats_ = {};
  staged_.clear();
  next_ordinal_ = 0;
  if (tier_ != nullptr) tier_->reset_stats();
  total_generated_ = 0;
  decode_time_s_ = 0.0;
  decode_step_tokens_ = 0;
  pure_decode_time_s_ = 0.0;
  pure_decode_tokens_ = 0;
  double last_finish_s = 0.0;

  for (;;) {
    std::vector<std::size_t> queued;
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (records_[i].state == RequestState::kQueued) queued.push_back(i);
    }
    if (queued.empty() && running_.empty()) break;

    const double scan_now = now_s();
    admit_arrivals(queued, scan_now);

    if (running_.empty()) {
      // A ready request that an idle engine cannot admit is a wedge (e.g. an
      // external tenant of a shared allocator holding every block), not a
      // queue: fail loudly instead of spinning. Judged at the admission
      // scan's own timestamp — a request whose arrival lands between two
      // clock reads is a race, not a wedge, and the next scan admits it.
      const double now = scan_now;
      for (const std::size_t idx : queued) {
        const ServingRecord& rec = records_[idx];
        HACK_CHECK(rec.state != RequestState::kQueued ||
                       rec.request.arrival_time_s > now,
                   "admission wedged: request " << rec.request.id
                       << " is due but cannot be admitted into an idle "
                          "engine");
      }
    }

    StepPlan plan;
    if (tier_ != nullptr) {
      // Tiered iteration: plan against the pool budget, execute the tier
      // transitions (evict displaced residents, rehydrate scheduled
      // swap-ins), grow the runners' hot footprints, update the stall
      // counters the priority function ages on, then stage the *next*
      // step's predicted resumes before compute so the deserializes
      // overlap it.
      const std::vector<Scheduler::TieredSeqView> views = tiered_views();
      const TieredStepPlan tiered =
          scheduler_.plan_tiered(views, tier_->pool_blocks());
      for (const std::size_t idx : tiered.evict) evict_sequence(idx);
      for (const std::size_t idx : tiered.resume) resume_sequence(idx);
      std::vector<char> ran(running_.size(), 0);
      const auto grow_runner = [&](std::size_t idx, std::size_t rows) {
        RunningSeq& seq = *running_[idx];
        ServingRecord& rec = records_[seq.record];
        HACK_CHECK(tier_->grow_hot(seq.record,
                                   seq.session->position() + rows),
                   "tiered planner overcommitted the pool for request "
                       << rec.request.id);
        rec.kv_blocks = std::max(rec.kv_blocks,
                                 tier_->blocks_held(seq.record));
        ran[idx] = 1;
      };
      for (const std::size_t idx : tiered.step.decode) grow_runner(idx, 1);
      if (tiered.step.prefill != kNoSequence) {
        grow_runner(tiered.step.prefill,
                    tiered.step.prefill_end - tiered.step.prefill_begin);
      }
      for (std::size_t i = 0; i < running_.size(); ++i) {
        running_[i]->stall_steps = ran[i] ? 0 : running_[i]->stall_steps + 1;
      }
      if (config_.scheduler.prefetch && !tiered.step.empty()) {
        predict_and_prefetch(views, tiered);
      }
      plan = tiered.step;
    } else {
      std::vector<Scheduler::SeqView> views;
      views.reserve(running_.size());
      for (const auto& seq : running_) {
        const ServingRecord& rec = records_[seq->record];
        views.push_back({rec.state, rec.request.prompt.size(),
                         rec.prefill_done});
      }
      plan = scheduler_.plan(views);
    }
    if (plan.empty()) {
      // Nothing runnable: wait for the next arrival (there must be one —
      // otherwise admission is wedged, e.g. an external allocator tenant
      // holding every block).
      double next = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < records_.size(); ++i) {
        if (records_[i].state == RequestState::kQueued) {
          next = std::min(next, records_[i].request.arrival_time_s);
        }
      }
      if (next == std::numeric_limits<double>::infinity()) break;  // all done
      HACK_CHECK(running_.empty(),
                 "empty plan with sequences in the running batch");
      const double wait = next - now_s();
      if (wait > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      }
      continue;  // the arrival is due now; the next scan admits it
    }

    execute_step(plan);
    for (const auto& rec : records_) {
      if (rec.done()) last_finish_s = std::max(last_finish_s,
                                               rec.finish_time_s);
    }
  }

  ServingReport report;
  report.requests = records_;
  report.makespan_s = last_finish_s;
  report.total_generated = total_generated_;
  report.decode_time_s = decode_time_s_;
  if (last_finish_s > 0.0) {
    report.tokens_per_s =
        static_cast<double>(total_generated_) / last_finish_s;
  }
  if (decode_time_s_ > 0.0) {
    report.decode_tokens_per_s =
        static_cast<double>(decode_step_tokens_) / decode_time_s_;
  }
  report.pure_decode_time_s = pure_decode_time_s_;
  if (pure_decode_time_s_ > 0.0) {
    report.pure_decode_tokens_per_s =
        static_cast<double>(pure_decode_tokens_) / pure_decode_time_s_;
  }
  std::vector<double> ttft, jct, tbt;
  std::size_t finished_count = 0;
  for (const ServingRecord& rec : records_) {
    if (rec.state != RequestState::kFinished) continue;
    ++finished_count;
    if (rec.first_token_time_s >= 0.0) ttft.push_back(rec.ttft_s());
    jct.push_back(rec.jct_s());
    const std::vector<double> gaps = rec.tbt_s();
    tbt.insert(tbt.end(), gaps.begin(), gaps.end());
  }
  if (last_finish_s > 0.0) {
    report.goodput_rps =
        static_cast<double>(finished_count) / last_finish_s;
  }
  // Rollups stay default (count 0) over empty sample sets — a run can
  // legitimately finish with no tokens (all rejected, or max_new 0) or no
  // token gaps (single-token outputs).
  if (!ttft.empty()) report.ttft_s = compute_stats(std::move(ttft));
  if (!jct.empty()) report.jct_s = compute_stats(std::move(jct));
  if (!tbt.empty()) report.tbt_s = compute_stats(std::move(tbt));
  // Join any still-running speculative deserializes (mispredictions staged
  // for sequences that finished via eos before resuming) and fold the tier
  // counters in; tiered block traffic is grow/swap-driven, so the engine's
  // byte ledger mirrors the tier manager's.
  staged_.clear();
  if (tier_ != nullptr) {
    stats_.tier = tier_->stats();
    stats_.kv_bytes_admitted = stats_.tier.hot_bytes_admitted;
    stats_.kv_bytes_released = stats_.tier.hot_bytes_released;
  }
  report.engine = stats_;
  return report;
}

}  // namespace hack
