#include "serving/scheduler.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"
#include "kvcache/tier_manager.h"

namespace hack {
namespace {

// A swapped sequence competes as the phase it will resume into.
RequestState effective_state(const Scheduler::TieredSeqView& v) {
  return v.state == RequestState::kSwapped ? v.resume_state : v.state;
}

std::size_t remaining_work(const Scheduler::TieredSeqView& v) {
  return (v.prompt_len - v.prefill_done) + (v.max_new - v.generated);
}

}  // namespace

Scheduler::Scheduler(const SchedulerConfig& config) : config_(config) {
  HACK_CHECK(config.max_active > 0, "scheduler needs at least one slot");
  HACK_CHECK(config.prefill_chunk_tokens > 0, "prefill chunk must be > 0");
  HACK_CHECK(config.block_tokens > 0, "block_tokens must be > 0");
}

std::size_t Scheduler::chunk_end(std::size_t begin,
                                 std::size_t prompt_len) const {
  HACK_CHECK(begin < prompt_len, "chunk past the prompt");
  std::size_t take = std::min(config_.prefill_chunk_tokens,
                              prompt_len - begin);
  if (take < prompt_len - begin) {
    // Mid-prompt chunk: never a single row (the flat decode kernel would
    // take it; whole-prompt prefill runs every row through the streaming
    // kernel)...
    take = std::max<std::size_t>(take, 2);
    // ...and never leave a single trailing row behind — absorb it.
    if (prompt_len - begin - take == 1) take = prompt_len - begin;
  }
  return begin + take;
}

StepPlan Scheduler::plan(std::span<const SeqView> running) const {
  StepPlan plan;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const SeqView& seq = running[i];
    switch (seq.state) {
      case RequestState::kDecoding:
        plan.decode.push_back(i);
        break;
      case RequestState::kPrefill:
        if (plan.prefill == kNoSequence) {
          plan.prefill = i;
          plan.prefill_begin = seq.prefill_done;
          plan.prefill_end = chunk_end(seq.prefill_done, seq.prompt_len);
        }
        break;
      default:
        HACK_CHECK(false, "sequence " << i << " in the running batch is "
                                      << request_state_name(seq.state));
    }
  }
  return plan;
}

bool Scheduler::tiered_priority_before(const TieredSeqView& a,
                                       const TieredSeqView& b) const {
  // Starvation boost: past the stall limit a sequence outranks everything,
  // most-starved first — this is the preemption quantum. With preemption
  // off nothing is ever "starved" and residents run to completion.
  const auto starved = [&](const TieredSeqView& v) {
    return config_.tiered && config_.preemption &&
           config_.preempt_stall_limit > 0 &&
           v.stall_steps >= config_.preempt_stall_limit;
  };
  const bool sa = starved(a), sb = starved(b);
  if (sa != sb) return sa;
  if (sa && a.stall_steps != b.stall_steps) {
    return a.stall_steps > b.stall_steps;
  }
  // Residents before swapped: a resume costs a deserialize, so prefer the
  // sequences whose KV is already hot when priorities otherwise tie.
  const bool ra = a.state != RequestState::kSwapped;
  const bool rb = b.state != RequestState::kSwapped;
  if (ra != rb) return ra;
  // Decode before prefill (bounded TBT), then shortest-remaining-first
  // (drain sequences that free blocks soonest), then admission order.
  const bool da = effective_state(a) == RequestState::kDecoding;
  const bool db = effective_state(b) == RequestState::kDecoding;
  if (da != db) return da;
  const std::size_t wa = remaining_work(a), wb = remaining_work(b);
  if (wa != wb) return wa < wb;
  return a.ordinal < b.ordinal;
}

TieredStepPlan Scheduler::plan_tiered(std::span<const TieredSeqView> running,
                                      std::size_t pool_blocks) const {
  TieredStepPlan out;
  const auto blocks_for = [&](std::size_t tokens) {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  };
  std::vector<std::size_t> order(running.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t ia, std::size_t ib) {
                     return tiered_priority_before(running[ia], running[ib]);
                   });

  // Pass 1 — schedule runners greedily against the pool budget. The
  // top-priority candidate is always taken (admission guarantees its
  // post-step footprint fits the pool alone); later candidates only if
  // their footprint still fits, so the planned hot set never exceeds the
  // pool and the engine's grow_hot calls cannot fail.
  std::size_t budget = pool_blocks;
  std::vector<char> scheduled(running.size(), 0);
  for (const std::size_t idx : order) {
    const TieredSeqView& v = running[idx];
    HACK_CHECK(v.state == RequestState::kPrefill ||
                   v.state == RequestState::kDecoding ||
                   v.state == RequestState::kSwapped,
               "sequence " << idx << " in the tiered batch is "
                           << request_state_name(v.state));
    const bool decoding = effective_state(v) == RequestState::kDecoding;
    std::size_t rows = 1;
    std::size_t pf_begin = 0, pf_end = 0;
    if (!decoding) {
      if (out.step.prefill != kNoSequence) continue;  // one chunk per step
      pf_begin = v.prefill_done;
      pf_end = chunk_end(v.prefill_done, v.prompt_len);
      rows = pf_end - pf_begin;
    }
    const std::size_t need = blocks_for(v.tokens + rows);
    const bool first = out.step.decode.empty() &&
                       out.step.prefill == kNoSequence;
    if (!first && need > budget) continue;
    HACK_CHECK(need <= pool_blocks,
               "sequence " << idx << " needs " << need << " blocks but the "
                           << "pool only has " << pool_blocks
                           << " — admission should have rejected it");
    budget -= std::min(budget, need);
    if (decoding) {
      out.step.decode.push_back(idx);
    } else {
      out.step.prefill = idx;
      out.step.prefill_begin = pf_begin;
      out.step.prefill_end = pf_end;
    }
    scheduled[idx] = 1;
    if (v.state == RequestState::kSwapped) out.resume.push_back(idx);
  }

  // Pass 2 — unscheduled residents keep their blocks while budget remains
  // (priority order), the rest are evicted, lowest priority first. A
  // zero-token resident holds nothing and is never "evicted".
  for (const std::size_t idx : order) {
    if (scheduled[idx]) continue;
    const TieredSeqView& v = running[idx];
    if (v.state == RequestState::kSwapped) continue;
    const std::size_t held = blocks_for(v.tokens);
    if (held == 0) continue;
    if (held <= budget) {
      budget -= held;
      continue;
    }
    out.evict.push_back(idx);
  }
  std::reverse(out.evict.begin(), out.evict.end());
  return out;
}

std::size_t Scheduler::blocks_needed(const ServingRequest& request) const {
  const std::size_t tokens = request.prompt.size() + request.max_new_tokens;
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool Scheduler::can_admit(const ServingRequest& request,
                          std::size_t running_count,
                          const BlockAllocator* allocator) const {
  if (running_count >= config_.max_active) return false;
  if (allocator == nullptr) return true;
  const std::size_t need = blocks_needed(request);
  return allocator->can_allocate(need) &&
         allocator->blocks_free() - need >= config_.free_block_floor;
}

bool Scheduler::can_ever_admit(const ServingRequest& request,
                               const BlockAllocator* allocator) const {
  if (allocator == nullptr) return true;
  const std::size_t need = blocks_needed(request);
  return need + config_.free_block_floor <= allocator->num_blocks();
}

bool Scheduler::can_ever_admit(const ServingRequest& request,
                               const KvTierManager* tier) const {
  if (tier == nullptr) return true;
  return tier->can_ever_hold(request.prompt.size() + request.max_new_tokens);
}

}  // namespace hack
