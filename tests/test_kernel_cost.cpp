#include <gtest/gtest.h>

#include "base/check.h"
#include "cluster/kernel_cost.h"

namespace hack {
namespace {

KernelCostModel model_for(const std::string& gpu, Method method) {
  return make_cost_model(model_by_letter("L"), instance_for_gpu(gpu).gpu,
                         method);
}

TEST(GpuSpecs, Table2Instances) {
  ASSERT_EQ(instance_zoo().size(), 5u);
  EXPECT_EQ(instance_for_gpu("A10G").name, "g5.12xlarge");
  EXPECT_EQ(instance_for_gpu("A100").gpus, 8);
  EXPECT_EQ(instance_for_gpu("V100").net_gbps, 10.0);
  EXPECT_EQ(instance_for_gpu("T4").net_gbps, 50.0);
  EXPECT_THROW(instance_for_gpu("H100"), CheckError);
}

TEST(GpuSpecs, V100LacksInt8TensorCores) {
  EXPECT_FALSE(instance_for_gpu("V100").gpu.supports_int8());
  for (const char* gpu : {"A10G", "T4", "L4", "A100"}) {
    EXPECT_TRUE(instance_for_gpu(gpu).gpu.supports_int8()) << gpu;
  }
}

TEST(MethodTraits, CompressionBands) {
  // CacheGen/KVQuant ~86% compression; HACK 2-bit ~83% (codes+meta+sums).
  for (const Method m : {Method::kCacheGen, Method::kKvQuant}) {
    const MethodTraits t = method_traits(m);
    EXPECT_GT(t.wire_fraction, 0.12);
    EXPECT_LT(t.wire_fraction, 0.16);
  }
  const MethodTraits hack = method_traits(Method::kHack, 64, 2);
  EXPECT_NEAR(hack.wire_fraction, 0.125 + 3.0 / 64.0, 1e-9);
  EXPECT_DOUBLE_EQ(method_traits(Method::kBaseline).wire_fraction, 1.0);
}

TEST(MethodTraits, MiniFloatFractions) {
  EXPECT_DOUBLE_EQ(method_traits(Method::kFp4).wire_fraction, 0.25);
  EXPECT_DOUBLE_EQ(method_traits(Method::kFp6).wire_fraction, 0.375);
  EXPECT_DOUBLE_EQ(method_traits(Method::kFp8).wire_fraction, 0.5);
  EXPECT_DOUBLE_EQ(method_traits(Method::kFp8).matmul_speedup, 2.0);
  EXPECT_DOUBLE_EQ(method_traits(Method::kFp4).matmul_speedup, 1.0);
}

TEST(MethodTraits, AblationFlags) {
  EXPECT_TRUE(method_traits(Method::kHackNoSE).sum_recompute);
  EXPECT_FALSE(method_traits(Method::kHack).sum_recompute);
  EXPECT_TRUE(method_traits(Method::kHackNoRQE).requant_per_step);
  // HACK/SE stores no sums -> slightly smaller wire size.
  EXPECT_LT(method_traits(Method::kHackNoSE).wire_fraction,
            method_traits(Method::kHack).wire_fraction);
}

TEST(KernelCost, HackSpeedsUpPrefillWhereInt8Exists) {
  const double l = 16200;
  const double base_a10g = model_for("A10G", Method::kBaseline).prefill_s(l);
  const double hack_a10g = model_for("A10G", Method::kHack).prefill_s(l);
  EXPECT_LT(hack_a10g, base_a10g);
  // V100: no INT8 tensor cores, no prefill speedup (§7.2 / Fig. 12) — the
  // quantized path even pays a small tile-fragmentation penalty.
  const double base_v100 = model_for("V100", Method::kBaseline).prefill_s(l);
  const double hack_v100 = model_for("V100", Method::kHack).prefill_s(l);
  EXPECT_GE(hack_v100, base_v100);
  EXPECT_LT(hack_v100, 1.15 * base_v100);
}

TEST(KernelCost, PrefillSpeedupGrowsWithSequenceLength) {
  const auto base = model_for("A10G", Method::kBaseline);
  const auto hack = model_for("A10G", Method::kHack);
  const double short_gain =
      1.0 - hack.prefill_s(315) / base.prefill_s(315);
  const double long_gain =
      1.0 - hack.prefill_s(16200) / base.prefill_s(16200);
  EXPECT_GT(long_gain, short_gain);  // attention share grows with L^2
}

TEST(KernelCost, DequantOnlyForCodecMethods) {
  const double l = 6300;
  EXPECT_EQ(model_for("A100", Method::kBaseline).decode_dequant_s(l), 0.0);
  EXPECT_EQ(model_for("A100", Method::kHack).decode_dequant_s(l), 0.0);
  EXPECT_GT(model_for("A100", Method::kCacheGen).decode_dequant_s(l), 0.0);
  EXPECT_GT(model_for("A100", Method::kKvQuant).decode_dequant_s(l), 0.0);
}

TEST(KernelCost, ApproxFarCheaperThanDequant) {
  // The headline asymmetry: HACK's Eq. (4) approximation costs a small
  // fraction of the codecs' per-iteration dequantization (§7.2).
  const double l = 16200;
  const double approx = model_for("A100", Method::kHack).decode_approx_s(l);
  const double dequant =
      model_for("A100", Method::kCacheGen).decode_dequant_s(l);
  EXPECT_LT(approx * 5.0, dequant);
}

TEST(KernelCost, SumRecomputeInflatesApproxCost) {
  const double l = 16200;
  const double with_se = model_for("A100", Method::kHack).decode_approx_s(l);
  const double no_se = model_for("A100", Method::kHackNoSE).decode_approx_s(l);
  EXPECT_GT(no_se, 2.0 * with_se);
}

TEST(KernelCost, RequantCostIsPerIterationAndLengthIndependent) {
  // RQE-off requantizes the (fixed-size) last block of V once per iteration;
  // the cost lands in the per-iteration fixed term, not the per-request
  // marginal, and does not scale with sequence length.
  const auto no_rqe = model_for("A100", Method::kHackNoRQE);
  const auto with_rqe = model_for("A100", Method::kHack);
  EXPECT_GT(no_rqe.decode_iter_fixed_s(), with_rqe.decode_iter_fixed_s());
  EXPECT_NEAR(no_rqe.decode_approx_s(315) - with_rqe.decode_approx_s(315),
              no_rqe.decode_approx_s(16200) - with_rqe.decode_approx_s(16200),
              1e-9);
}

TEST(KernelCost, KvReadScalesWithCompression) {
  const double l = 16200;
  const double base = model_for("A100", Method::kBaseline).decode_kv_read_s(l);
  const double hack = model_for("A100", Method::kHack).decode_kv_read_s(l);
  EXPECT_LT(hack, 0.25 * base);
}

TEST(KernelCost, QuantizationOnlyOncePerToken) {
  // Prefill-side quantization is charged once; baseline pays none.
  const auto base = model_for("A10G", Method::kBaseline);
  const auto hack = model_for("A10G", Method::kHack);
  EXPECT_EQ(base.prefill_quant_s(1000), 0.0);
  EXPECT_GT(hack.prefill_quant_s(1000), 0.0);
  // And it is small relative to the whole prefill stage (§7.2 pins the
  // quantization share of JCT at 1.25-2.91%).
  EXPECT_LT(hack.prefill_quant_s(16200), 0.10 * hack.prefill_s(16200));
}

TEST(KernelCost, WireBytesOrdering) {
  const double l = 16200;
  const double base = model_for("A10G", Method::kBaseline).kv_wire_bytes(l);
  const double cg = model_for("A10G", Method::kCacheGen).kv_wire_bytes(l);
  const double hack = model_for("A10G", Method::kHack).kv_wire_bytes(l);
  const double fp8 = model_for("A10G", Method::kFp8).kv_wire_bytes(l);
  EXPECT_LT(cg, hack);    // codecs squeeze slightly harder than 2-bit+meta
  EXPECT_LT(hack, fp8);   // but all quantizers beat FP8
  EXPECT_LT(fp8, base);
}

TEST(KernelCost, MemBytesIncludeHackOverheads) {
  // Table 5: HACK slightly above CacheGen/KVQuant (sums + FP16 tail).
  const double l = 16200;
  const double cg = model_for("A100", Method::kCacheGen).kv_mem_bytes(l);
  const double hack = model_for("A100", Method::kHack).kv_mem_bytes(l);
  EXPECT_GT(hack, cg);
  EXPECT_LT(hack, 1.5 * cg);
}

TEST(KernelCost, Fp8ConversionCostCharged) {
  const double l = 6300;
  EXPECT_GT(model_for("A100", Method::kFp8).decode_dequant_s(l), 0.0);
}

TEST(MethodNames, Stable) {
  EXPECT_EQ(method_name(Method::kHack), "HACK");
  EXPECT_EQ(method_name(Method::kHackNoSE), "HACK/SE");
  EXPECT_EQ(method_name(Method::kHackNoRQE), "HACK/RQE");
  EXPECT_EQ(method_name(Method::kCacheGen), "CacheGen");
  EXPECT_TRUE(is_hack(Method::kHackNoRQE));
  EXPECT_FALSE(is_hack(Method::kKvQuant));
  EXPECT_TRUE(is_dequant_codec(Method::kCacheGen));
  EXPECT_TRUE(is_minifloat(Method::kFp6));
}

}  // namespace
}  // namespace hack
