// KVQuant-style KV codec: low-precision quantization with structural choices
// matched to KV statistics.
//
// Following the reference design: K is quantized *per channel* (columns carry
// the outlier structure pre-RoPE), V *per token*; a small fraction of
// largest-magnitude values is kept exact in FP16 as sparse outliers and
// excluded from the quantization range, which tightens the scale for the
// remaining 2-bit codes. Per-channel quantization needs a token batch; chunks
// shorter than 16 tokens fall back to per-token grouping.
#pragma once

#include "codec/codec.h"

namespace hack {

class KvQuantCodec : public KvCodec {
 public:
  // `bits` must be a quantize()-supported width (2/4/8) — also what the
  // byte-aligned code section of the blob format requires; checked here so a
  // misconfigured codec fails at construction, not mid-encode.
  explicit KvQuantCodec(int bits = 2, std::size_t pi = 64,
                        double outlier_fraction = 0.01)
      : bits_(bits), pi_(pi), outlier_fraction_(outlier_fraction) {
    HACK_CHECK(bits == 2 || bits == 4 || bits == 8,
               "KvQuantCodec bits must be 2, 4, or 8, got " << bits);
  }

  std::string name() const override { return "kvquant"; }
  std::vector<std::uint8_t> encode(const Matrix& chunk, KvKind kind,
                                   Rng& rng) const override;
  Matrix decode(std::span<const std::uint8_t> blob) const override;

 private:
  int bits_;
  std::size_t pi_;
  double outlier_fraction_;
};

}  // namespace hack
