#!/usr/bin/env python3
"""Diff committed bench baselines against a fresh run's BENCH_*.json artifacts.

Every bench in this repo emits one JSON object per line (the CI workflow
greps them out of the tool's stdout with `grep '^{'`). This script compares
the throughput-style metrics of two such directories:

    python3 scripts/bench_trend.py \
        --baseline bench/baselines --current bench-json [--threshold 0.10]

Matching is structural, not positional: a line is keyed by its "bench" name
plus any discriminator fields it carries (mode, kv_bits, context, worker,
policy, ...), so reordering lines or adding new legs never misattributes a
number. For each matched pair, every higher-is-better metric present in
*both* lines must satisfy

    current >= baseline * (1 - threshold)

or the script exits non-zero listing each regression.

Missing *files* are hard errors with a per-leg message: a committed baseline
whose BENCH_*.json artifact never materialised means the CI leg silently
failed or was renamed, and a missing/empty baseline directory means the
checkout is broken — both exit non-zero naming the leg, never a stack trace.
Finer-grained gaps — a current artifact with no committed baseline yet, or
lines/metrics present on only one side — warn only: baselines are generated
on whatever machine cut them, and CI runners grow new legs faster than
baselines are refreshed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Fields that identify *which* measurement a line is, as opposed to the
# measurement itself. Any of these present in a JSON line joins the match key.
DISCRIMINATORS = (
    "bench", "mode", "name", "label", "fig", "table", "section", "layout",
    "kv_bits", "q_bits", "bits", "pi", "context", "threads", "requests",
    "engine", "policy", "kills", "prefill_workers", "decode_workers",
    "worker", "role", "arrival", "dataset", "model", "gpus",
)

# Higher-is-better metrics to trend. Latency-style fields are deliberately
# absent: tail latencies on shared CI runners are too noisy to gate on.
THROUGHPUT_KEYS = (
    "tokens_per_s", "decode_tokens_per_s", "prefill_tokens_per_s",
    "batched_tokens_per_s", "goodput_rps", "items_per_second",
    "tokens_per_second", "speedup",
)


def load_lines(path: pathlib.Path):
    """Parse a BENCH_*.json file of JSON lines into {match_key: line_dict}."""
    out = {}
    for raw in path.read_text().splitlines():
        raw = raw.strip()
        if not raw.startswith("{"):
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError:
            print(f"warning: {path.name}: unparseable line skipped", file=sys.stderr)
            continue
        key = tuple((k, obj[k]) for k in DISCRIMINATORS if k in obj)
        if key in out:
            print(f"warning: {path.name}: duplicate key {key}; keeping first",
                  file=sys.stderr)
            continue
        out[key] = obj
    return out


def fmt_key(key) -> str:
    return ",".join(f"{k}={v}" for k, v in key) or "<unkeyed>"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, type=pathlib.Path,
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current", required=True, type=pathlib.Path,
                    help="directory of freshly generated BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional throughput drop (default 0.10)")
    args = ap.parse_args()

    # Directory-level problems are configuration bugs, not trend data: name
    # the path and exit instead of limping on (or raising) further down.
    if not args.baseline.is_dir():
        print(f"error: baseline directory {args.baseline} does not exist",
              file=sys.stderr)
        return 2
    if not args.current.is_dir():
        print(f"error: current-run directory {args.current} does not exist "
              "(did every bench leg fail before writing artifacts?)",
              file=sys.stderr)
        return 2
    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines under {args.baseline}; "
              "the committed baselines are missing from this checkout",
              file=sys.stderr)
        return 2

    # New legs may run before their baseline is cut — warn per leg so the
    # gap is visible in the log, but never fail for it.
    for cpath in sorted(args.current.glob("BENCH_*.json")):
        if not (args.baseline / cpath.name).exists():
            print(f"warning: {cpath.name}: no committed baseline under "
                  f"{args.baseline}; leg not trended", file=sys.stderr)

    missing = []
    regressions = []
    compared = 0
    for bpath in baseline_files:
        cpath = args.current / bpath.name
        if not cpath.exists():
            # The committed baseline promises this leg exists; a missing
            # artifact means the leg silently failed, was renamed, or its
            # output redirect broke. That must fail the build loudly.
            print(f"error: {bpath.name}: committed baseline has no "
                  f"current-run artifact under {args.current} — did the "
                  "bench leg fail or get renamed?", file=sys.stderr)
            missing.append(bpath.name)
            continue
        base = load_lines(bpath)
        cur = load_lines(cpath)
        for key, bline in base.items():
            cline = cur.get(key)
            if cline is None:
                print(f"warning: {bpath.name}: baseline line [{fmt_key(key)}] "
                      "missing from current run", file=sys.stderr)
                continue
            for metric in THROUGHPUT_KEYS:
                if metric not in bline or metric not in cline:
                    continue
                bval, cval = bline[metric], cline[metric]
                if not isinstance(bval, (int, float)) or bval <= 0:
                    continue
                compared += 1
                floor = bval * (1.0 - args.threshold)
                status = "REGRESSION" if cval < floor else "ok"
                print(f"{status:10s} {bpath.name} [{fmt_key(key)}] {metric}: "
                      f"baseline {bval:.4g} -> current {cval:.4g} "
                      f"({(cval / bval - 1.0) * 100.0:+.1f}%)")
                if cval < floor:
                    regressions.append((bpath.name, key, metric, bval, cval))

    print(f"\n{compared} metric(s) compared, {len(regressions)} regression(s) "
          f"beyond {args.threshold * 100.0:.0f}%, "
          f"{len(missing)} missing artifact(s)")
    for fname, key, metric, bval, cval in regressions:
        print(f"FAIL: {fname} [{fmt_key(key)}] {metric} fell "
              f"{(1.0 - cval / bval) * 100.0:.1f}% "
              f"({bval:.4g} -> {cval:.4g})", file=sys.stderr)
    for fname in missing:
        print(f"FAIL: {fname}: baseline exists but the run produced no "
              "artifact", file=sys.stderr)
    return 1 if regressions or missing else 0


if __name__ == "__main__":
    sys.exit(main())
