// Figure 3: CacheGen / KVQuant time ratios across models (A10G prefill).
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  for (const Method method : {Method::kCacheGen, Method::kKvQuant}) {
    Table t("Fig 3 (" + method_name(method) +
            "): time ratios across models (A10G prefill)");
    t.header({"model", "prefill", "comm", "dequant", "decode", "avg_jct_s"});
    for (const ModelScenario& sc : model_scenarios()) {
      const SimSummary s =
          run(standard_cluster("A10G", sc.model_letter, sc.dataset, method));
      t.row({sc.label, pct(s.prefill_ratio), pct(s.comm_ratio),
             pct(s.dequant_or_approx_ratio), pct(s.decode_ratio),
             fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }
  return 0;
}
