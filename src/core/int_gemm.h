// Integer GEMM on quantization codes.
//
// Models the GPU INT8 tensor-core path HACK rides on: unsigned 8-bit codes
// multiplied with 32-bit accumulation. Two layouts cover attention's needs:
//   - NT: C = A * B^T where both A (M x Z) and B (N x Z) store the contracted
//     dimension contiguously per row (Q * K^T).
//   - NN: C = A * B where B is Z x N (P * V).
// Block-range variants compute the partial dot over one partition's z-range,
// which is how the per-group Eq. (4) correction is assembled.
//
// The row-range kernels (`int_gemm_*_rows`) are the engine room of the
// blocked HQ-GEMM path: they compute a contiguous band of C rows with 4x4
// register-blocked micro-tiles, so a thread pool can split the M dimension
// into independent bands. The whole-matrix `int_gemm_*_block` entry points
// are thin wrappers over the banded kernels.
//
// The B operand may be *bit-packed* (CodeView::bits of 2 or 4): rows store
// codes little-endian within each byte, each row padded up to a whole byte.
// The packed kernels expand codes in-register (AVX2 nibble/crumb unpack
// feeding the same pmaddubsw pipeline) or extract them scalar-wise, and are
// bit-identical to unpacking B to bytes first and running the u8 kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace hack {

// View over a row-major code matrix. `bits` is the storage width of each
// code: 8 means the classic one-byte-per-code layout; 2 or 4 mean rows are
// bit-packed little-endian with each row padded to a whole byte, so row r
// starts at byte r * row_stride_bytes().
struct CodeView {
  const std::uint8_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  int bits = 8;

  std::size_t row_stride_bytes() const {
    return bits == 8
               ? cols
               : (cols * static_cast<std::size_t>(bits) + 7) / 8;
  }
  const std::uint8_t* row_ptr(std::size_t r) const {
    return data + r * row_stride_bytes();
  }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    if (bits == 8) return data[r * cols + c];
    const std::size_t bit = c * static_cast<std::size_t>(bits);
    return static_cast<std::uint8_t>(
        (row_ptr(r)[bit >> 3] >> (bit & 7)) & ((1u << bits) - 1u));
  }
};

// dot over z in [z_begin, z_end) of A.row(i) and B.row(j) (NT layout).
std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end);

// Sentinel for "the whole extent" in the offset/range parameters below.
inline constexpr std::size_t kIntGemmFull = static_cast<std::size_t>(-1);

// Banded NN kernel: accumulates rows [i_begin, i_end) of C += A * B over the
// z-range, where A is M x Z and B is row-major with N columns. `out` points
// at the output band, row-major with leading dimension N: out[(i - i_begin) *
// N + j] accumulates C[i][j]. `b_row_offset` is the column-offset stride into
// B's token rows: A column z multiplies B row `b_row_offset + z`, which is
// how a KV-tile view contracts a [M x tile] A block against the middle of a
// tall V store (0 recovers the classic A-cols == B-rows contract). `b_bits`
// is the bit width of B's code *values*: when they fit 6 bits (the paper's
// 2-/4-bit V cache) and the CPU supports AVX2, the kernel runs an explicit
// widening-multiply path (z-pairs through pmaddubsw, widened to int32 in
// j-order); otherwise the portable 4-row axpy tile is used. When B is
// bit-packed (b.bits of 2 or 4) the codes are expanded in-register on the
// same pipeline. All paths produce identical int32 results. A must use byte
// storage (a.bits == 8).
void int_gemm_nn_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits = 8,
                      std::size_t b_row_offset = 0);

// Banded NT kernel: same contract with B stored N x Z (C += A * B^T).
// `[j_begin, j_end)` restricts the output columns to that range of B rows —
// the KV-tile view of a Q·Kᵀ score block — with `out` leading dimension
// shrinking to j_end - j_begin (kIntGemmFull = all of B). `b_bits` is the bit
// width of B's code values (values < 2^b_bits). When B codes fit 6 bits —
// the paper's 2-/4-bit KV caches — and the CPU supports AVX2, the dot
// products run through the u8 x i8 multiply-add idiom (pmaddubsw: 255 * 63 *
// 2 pair sums stay inside int16); otherwise a portable register-blocked path
// is used. Bit-packed B (b.bits of 2 or 4) is expanded in-register. All
// paths produce identical int32 results. A must use byte storage.
void int_gemm_nt_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits = 8,
                      std::size_t j_begin = 0,
                      std::size_t j_end = kIntGemmFull);

// C[i][j] += over the z-range: A (M x Z) row-major times B (Z x N) row-major.
// `out` is M x N row-major int32, accumulated into.
void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits = 8);

// Same for the NT layout: B is N x Z.
void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits = 8);

// Test hook: force the portable (non-SIMD) kernels regardless of CPU
// features, so the scalar packed/unpacked paths can be exercised on AVX2
// hosts. Not thread-safe against in-flight GEMMs; flip it only around
// single-threaded test sections.
void int_gemm_force_portable(bool on);

}  // namespace hack
