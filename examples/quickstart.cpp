// Quickstart: homomorphic quantized matrix multiplication in five steps.
//
//   1. Quantize A (8-bit, row partitions) and B (2-bit, column partitions).
//   2. Build the Σb' sum cache once (summation elimination).
//   3. Multiply the *quantized* operands directly — no dequantization.
//   4. Compare against the exact FP32 product.
//   5. Inspect the wire footprint: ~6x smaller than FP16.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hq_matmul.h"
#include "metrics/tensor_metrics.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"

using namespace hack;

int main() {
  Rng rng(7);
  const std::size_t m = 8, z = 256, n = 16;
  const Matrix a = Matrix::random_gaussian(m, z, rng);
  const Matrix b = Matrix::random_gaussian(z, n, rng);

  // 1. Asymmetric stochastic quantization with Π = 64 partitions (§5.2).
  Rng q1(1), q2(2);
  const QuantizedMatrix aq =
      quantize(a, /*bits=*/8, /*pi=*/64, QuantAxis::kRow,
               Rounding::kStochastic, q1);
  const QuantizedMatrix bq =
      quantize(b, /*bits=*/2, /*pi=*/64, QuantAxis::kCol,
               Rounding::kStochastic, q2);

  // 2. Summation elimination: cache Σ b' per (column, partition).
  const SumCache b_sums = SumCache::build(bq);

  // 3. Eq. (4): integer GEMM on the codes + affine correction.
  HqStats stats{};
  const Matrix c = hq_matmul(aq, bq, &b_sums, &stats);

  // 4. Fidelity versus the exact product.
  const Matrix exact = matmul(a, b);
  std::printf("relative L2 error vs FP32 matmul : %.4f\n",
              relative_l2(c, exact));
  std::printf("cosine similarity                : %.4f\n",
              cosine_similarity(c, exact));

  // The same multiply against the *dequantized* operands is numerically
  // identical — HACK just never materializes them.
  const Matrix via_dequant = matmul(dequantize(aq), dequantize(bq));
  std::printf("max |HQ - dequant-then-matmul|   : %.6f\n",
              max_abs_diff(c, via_dequant));

  // 5. Work and footprint accounting.
  std::printf("integer MACs                     : %lld\n",
              static_cast<long long>(stats.int_macs));
  std::printf("approximation flops (Eq. 4)      : %lld\n",
              static_cast<long long>(stats.approx_flops));
  std::printf("sum recompute flops (SE active)  : %lld\n",
              static_cast<long long>(stats.sum_flops));
  const double fp16_bytes = 2.0 * static_cast<double>(b.size());
  std::printf("B wire bytes: %zu (FP16 would be %.0f, %.1f%% compression)\n",
              bq.stored_bytes(), fp16_bytes,
              100.0 * (1.0 - bq.stored_bytes() / fp16_bytes));
  return 0;
}
