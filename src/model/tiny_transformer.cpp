#include "model/tiny_transformer.h"

namespace hack {

TinyTransformer::TinyTransformer(const TinyConfig& config,
                                 BackendFactory factory)
    : TinyTransformer(config, per_head_layer_factory(std::move(factory))) {}

TinyTransformer::TinyTransformer(const TinyConfig& config,
                                 LayerBackendFactory factory)
    : TinyTransformer(make_tiny_weights(config), std::move(factory)) {}

TinyTransformer::TinyTransformer(
    std::shared_ptr<const TinyModelWeights> weights,
    LayerBackendFactory factory)
    : session_(std::move(weights), factory) {}

Matrix TinyTransformer::forward(const std::vector<int>& tokens) {
  return session_.forward_rows(tokens);
}

std::vector<float> TinyTransformer::prefill(const std::vector<int>& prompt) {
  HACK_CHECK(session_.position() == 0,
             "prefill on a used model; construct a fresh one");
  const Matrix hidden = forward(prompt);
  return session_.logits_for_row(hidden, hidden.rows() - 1);
}

std::vector<float> TinyTransformer::decode_step(int token) {
  HACK_CHECK(session_.position() > 0, "decode before prefill");
  const Matrix hidden = forward({token});
  return session_.logits_for_row(hidden, hidden.rows() - 1);
}

std::vector<int> TinyTransformer::generate(const std::vector<int>& prompt,
                                           std::size_t max_new_tokens,
                                           int eos) {
  std::vector<float> logits = prefill(prompt);
  std::vector<int> out;
  for (std::size_t i = 0; i < max_new_tokens; ++i) {
    const int best = argmax_logits(logits);
    if (best == eos) break;
    out.push_back(best);
    logits = decode_step(best);
  }
  return out;
}

}  // namespace hack
