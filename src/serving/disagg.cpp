#include "serving/disagg.h"

#include <algorithm>
#include <chrono>

#include "netsim/transfer.h"
#include "serving/scheduler.h"

namespace hack {
namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// A contiguous byte span of the blob carried by one transfer chunk.
struct ChunkRange {
  std::size_t off = 0;
  std::size_t len = 0;
};

std::vector<ChunkRange> chunk_ranges(std::size_t bytes, int chunks) {
  std::vector<ChunkRange> ranges(static_cast<std::size_t>(chunks));
  for (int i = 0; i < chunks; ++i) {
    const std::size_t begin = bytes * static_cast<std::size_t>(i) /
                              static_cast<std::size_t>(chunks);
    const std::size_t end = bytes * (static_cast<std::size_t>(i) + 1) /
                            static_cast<std::size_t>(chunks);
    ranges[static_cast<std::size_t>(i)] = {begin, end - begin};
  }
  return ranges;
}

// Flips one deterministically chosen bit inside the chunk's byte range — the
// transport-level realization of a FaultModel kCorrupted fate.
void corrupt_range(std::vector<std::uint8_t>& wire, const ChunkRange& range,
                   std::uint64_t entropy) {
  if (range.len == 0) return;
  const std::size_t byte = range.off + static_cast<std::size_t>(entropy % range.len);
  const unsigned bit = static_cast<unsigned>((entropy >> 32) % 8);
  wire[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

// The continuation of TinyTransformer::generate after its prefill: rehydrate
// the blob into a fresh session and replay generate()'s decode iterations
// exactly — same eos/max semantics, same per-step call sequence, same
// stochastic draws (the wire restored every RNG stream). Shared by the
// decode worker and the prefill worker's local fallback so both paths are
// bit-identical by construction.
struct BlobDecode {
  std::vector<int> generated;
  double deserialize_s = 0.0;
  double decode_s = 0.0;
};

BlobDecode decode_blob(const std::shared_ptr<const TinyModelWeights>& weights,
                       const DisaggConfig& config,
                       std::span<const std::uint8_t> blob, int first_token,
                       const ServingRequest& request) {
  BlobDecode out;
  const auto deser_start = std::chrono::steady_clock::now();
  TinyModelSession session(
      weights, make_hack_layer_backend(config.attn, config.backend_seed));
  deserialize_session_kv(blob, session);
  out.deserialize_s = seconds_since(deser_start);

  const auto decode_start = std::chrono::steady_clock::now();
  int token = first_token;
  for (std::size_t i = 0; i < request.max_new_tokens; ++i) {
    if (token == request.eos) break;
    out.generated.push_back(token);
    const Matrix hidden = session.forward_rows({token});
    token = argmax_logits(session.logits_for_row(hidden, hidden.rows() - 1));
  }
  out.decode_s = seconds_since(decode_start);
  return out;
}

// Consumes one scripted crash if armed for this request index.
void maybe_crash(std::map<std::size_t, std::size_t>& crashes,
                 std::size_t request_index, const std::string& worker) {
  const auto it = crashes.find(request_index);
  if (it != crashes.end() && it->second > 0) {
    --it->second;
    throw WorkerCrash(worker + " worker crashed at request " +
                      std::to_string(request_index));
  }
}

}  // namespace

Rng retry_jitter_rng(const RetryPolicy& policy, std::uint64_t request_index) {
  // splitmix64 finalizer over the index; index 0 keeps the bare seed so
  // single-request episodes replay the pre-fleet stream.
  std::uint64_t mixed = policy.jitter_seed;
  if (request_index != 0) {
    std::uint64_t z = request_index + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    mixed ^= z ^ (z >> 31);
  }
  return Rng(mixed);
}

double retry_backoff_s(const RetryPolicy& policy, std::size_t round,
                       Rng& jitter) {
  double backoff = policy.backoff_base_s;
  for (std::size_t i = 0; i < round; ++i) backoff *= policy.backoff_mult;
  return backoff * (1.0 + policy.backoff_jitter * jitter.next_double());
}

PrefillWorker::PrefillWorker(std::shared_ptr<const TinyModelWeights> weights,
                             const DisaggConfig& config, std::string name)
    : weights_(std::move(weights)), config_(config), name_(std::move(name)),
      nic_(config.prefill_nic_gbps) {}

void PrefillWorker::inject_crash(std::size_t request_index,
                                 std::size_t times) {
  crashes_[request_index] += times;
}

PrefillWorker::Result PrefillWorker::prefill(const ServingRequest& request,
                                             std::size_t request_index) {
  maybe_crash(crashes_, request_index, name_);
  HACK_CHECK(!request.prompt.empty(), "prefill needs a non-empty prompt");
  TinyModelSession session(
      weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));

  Result result;
  const auto compute_start = std::chrono::steady_clock::now();
  SchedulerConfig chunk_cfg;
  chunk_cfg.prefill_chunk_tokens = config_.prefill_chunk_tokens == 0
                                       ? request.prompt.size()
                                       : config_.prefill_chunk_tokens;
  const Scheduler chunker(chunk_cfg);
  std::vector<float> last_logits;
  std::size_t begin = 0;
  while (begin < request.prompt.size()) {
    const std::size_t end = chunker.chunk_end(begin, request.prompt.size());
    const std::vector<int> chunk(request.prompt.begin() + begin,
                                 request.prompt.begin() + end);
    const Matrix hidden = session.forward_rows(chunk);
    if (end == request.prompt.size()) {
      last_logits = session.logits_for_row(hidden, hidden.rows() - 1);
    }
    ++result.prefill_chunks;
    begin = end;
  }
  result.first_token = argmax_logits(last_logits);
  result.prefill_s = seconds_since(compute_start);

  const auto serialize_start = std::chrono::steady_clock::now();
  result.blob = serialize_session_kv(session, &result.sections);
  result.serialize_s = seconds_since(serialize_start);
  return result;
}

PrefillWorker::LocalDecode PrefillWorker::local_decode(
    std::span<const std::uint8_t> blob, int first_token,
    const ServingRequest& request) {
  const BlobDecode d =
      decode_blob(weights_, config_, blob, first_token, request);
  return {d.generated, d.deserialize_s, d.decode_s};
}

DecodeWorker::DecodeWorker(std::shared_ptr<const TinyModelWeights> weights,
                           const DisaggConfig& config, std::string name)
    : weights_(std::move(weights)), config_(config), name_(std::move(name)),
      nic_(config.decode_nic_gbps) {
  if (config_.decode_kv_blocks > 0) {
    // Accounting blocks sized like the serving engine's: FP16 K+V bytes of
    // block_tokens tokens across all layers and KV heads.
    const TinyConfig& c = weights_->config();
    allocator_ = std::make_unique<BlockAllocator>(
        config_.decode_kv_blocks,
        config_.block_tokens * c.kv_heads * c.d_head * 2 * 2 * c.layers);
  }
}

void DecodeWorker::inject_crash(std::size_t request_index, std::size_t times) {
  crashes_[request_index] += times;
}

std::size_t DecodeWorker::blocks_needed(std::size_t blob_tokens,
                                        std::size_t max_new_tokens) const {
  return (blob_tokens + max_new_tokens + config_.block_tokens - 1) /
         config_.block_tokens;
}

std::size_t DecodeWorker::free_kv_blocks() const {
  return allocator_ == nullptr ? SIZE_MAX : allocator_->blocks_free();
}

DecodeWorker::Result DecodeWorker::decode(std::span<const std::uint8_t> blob,
                                          int first_token,
                                          const ServingRequest& request,
                                          std::size_t request_index) {
  maybe_crash(crashes_, request_index, name_);
  Result result;
  // Integrity gate: the header parse throws KvWireError on a corrupted or
  // truncated blob before any admission state is touched.
  const KvWireInfo info = parse_kv_wire_header(blob);

  // Worst-case block reservation, like the engine's admission control:
  // prompt tokens already in the blob plus every token we may yet append.
  std::vector<BlockId> reserved;
  if (allocator_ != nullptr) {
    const std::size_t need =
        blocks_needed(info.tokens, request.max_new_tokens);
    if (!allocator_->can_allocate(need)) {
      return result;  // not admitted
    }
    for (std::size_t i = 0; i < need; ++i) {
      reserved.push_back(allocator_->allocate());
    }
    result.kv_blocks = reserved.size();
  }
  result.admitted = true;

  BlobDecode d;
  try {
    d = decode_blob(weights_, config_, blob, first_token, request);
  } catch (...) {
    // Record CRC / section failures surface here; hand back the reserved
    // blocks before propagating so a retransmit retry sees a clean pool.
    for (const BlockId id : reserved) allocator_->release(id);
    throw;
  }
  result.deserialize_s = d.deserialize_s;
  result.decode_s = d.decode_s;
  result.generated = std::move(d.generated);

  for (const BlockId id : reserved) allocator_->release(id);
  return result;
}

DisaggEngine::DisaggEngine(std::shared_ptr<const TinyModelWeights> weights,
                           DisaggConfig config)
    : weights_(std::move(weights)), config_(config),
      prefill_(weights_, config_), decode_(weights_, config_),
      faults_(config_.transfer_faults) {}

DisaggReport DisaggEngine::run(std::vector<ServingRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const ServingRequest& a, const ServingRequest& b) {
              return a.arrival_time_s < b.arrival_time_s;
            });

  DisaggReport report;
  std::vector<double> ttfts, jcts;
  const TinyConfig& c = weights_->config();
  const RetryPolicy& policy = config_.retry;
  for (std::size_t index = 0; index < requests.size(); ++index) {
    const ServingRequest& request = requests[index];
    DisaggRecord rec;
    rec.request = request;
    std::size_t budget = policy.max_retries;
    Rng jitter = retry_jitter_rng(policy, index);

    // Prefill occupies its worker for the measured compute + serialize time
    // (plus any crash-recovery backoffs); the transfer then rides the NICs
    // while the worker takes the next prompt (the overlap the paper's
    // pipelining discussion assumes).
    const double prefill_start =
        std::max(request.arrival_time_s, prefill_free_s_);
    double prefill_backoffs = 0.0;
    PrefillWorker::Result pre;
    bool prefilled = false;
    while (!prefilled) {
      try {
        pre = prefill_.prefill(request, index);
        prefilled = true;
      } catch (const WorkerCrash&) {
        ++rec.prefill_crashes;
        if (budget == 0) break;
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        prefill_backoffs += wait;
        // The restarted worker re-runs the whole prefill — nothing of the
        // crashed attempt survives, so the next attempt is bit-identical.
      }
    }
    if (!prefilled) {
      // No KV state exists anywhere; there is nothing to degrade to.
      rec.rejected = true;
      report.retries_total += rec.retries;
      report.prefill_crashes_total += rec.prefill_crashes;
      report.requests.push_back(std::move(rec));
      continue;
    }
    rec.prefill_s = pre.prefill_s;
    rec.serialize_s = pre.serialize_s;
    rec.prefill_chunks = pre.prefill_chunks;
    rec.wire_bytes = pre.blob.size();
    rec.sections = pre.sections;
    rec.fp16_kv_bytes = parse_kv_wire_header(pre.blob).tokens * c.kv_heads *
                        c.d_head * 2 * 2 * c.layers;
    prefill_free_s_ =
        prefill_start + prefill_backoffs + pre.prefill_s + pre.serialize_s;

    // Transfer + decode under the retry policy. `wire` is the receiver-side
    // reassembly buffer; retransmissions always source the pristine blob.
    const int chunks =
        kv_wire_transfer_chunks(pre.blob.size(), config_.transfer_chunk_bytes);
    const std::vector<ChunkRange> all_ranges =
        chunk_ranges(pre.blob.size(), chunks);
    const double transfer_epoch = prefill_free_s_;
    double ready = transfer_epoch;
    double first_start = -1.0;
    double last_finish = transfer_epoch;
    bool first_transmission = true;

    const auto deadline_passed = [&] {
      return policy.transfer_deadline_s > 0.0 &&
             last_finish - transfer_epoch > policy.transfer_deadline_s;
    };
    // Books one delivery pass: transmits `pending` ranges, retransmitting
    // dropped chunks (with backoff) until all land or the budget/deadline
    // gives out. Corrupted chunks land with a bit flipped — detection is the
    // receiver's CRC check, not the transport's.
    const auto deliver = [&](std::vector<std::uint8_t>& wire) {
      std::vector<ChunkRange> pending = all_ranges;
      while (true) {
        double bytes = 0.0;
        for (const ChunkRange& r : pending) bytes += static_cast<double>(r.len);
        if (!first_transmission) {
          rec.retransmitted_bytes += static_cast<std::size_t>(bytes);
        }
        const FaultyTransferResult attempt = nccl_transfer_faulty(
            prefill_.nic(), decode_.nic(), ready, bytes,
            static_cast<int>(pending.size()), &faults_);
        first_transmission = false;
        if (first_start < 0.0) first_start = attempt.result.start;
        last_finish = std::max(last_finish, attempt.result.finish);

        std::vector<ChunkRange> still_pending;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const ChunkEvent& event = attempt.chunks[i];
          if (event.fate == ChunkFate::kDropped) {
            ++rec.chunks_dropped;
            still_pending.push_back(pending[i]);
          } else if (event.fate == ChunkFate::kCorrupted) {
            ++rec.chunks_corrupted;
            corrupt_range(wire, pending[i], event.corrupt_entropy);
          }
        }
        if (still_pending.empty()) return true;
        if (deadline_passed()) {
          rec.deadline_missed = true;
          return false;
        }
        if (budget == 0) return false;
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        ready = last_finish + wait;
        pending = std::move(still_pending);
      }
    };

    DecodeWorker::Result dec;
    bool delivered = false;
    bool failed = false;
    while (!delivered && !failed) {
      std::vector<std::uint8_t> wire = pre.blob;
      if (!deliver(wire)) {
        failed = true;
        break;
      }
      if (deadline_passed()) {
        rec.deadline_missed = true;
        failed = true;
        break;
      }
      bool retransmit = false;
      try {
        dec = decode_.decode(wire, pre.first_token, request, index);
        if (!dec.admitted) {
          failed = true;  // pool rejection → graceful degradation
          break;
        }
        delivered = true;
      } catch (const WorkerCrash&) {
        // The restarted worker lost its receive buffer with the crash.
        ++rec.decode_crashes;
        retransmit = true;
      } catch (const KvWireError&) {
        // Corruption survived the transport; the typed CRC/section error is
        // the signal for a full-blob retransmit.
        ++rec.crc_failures;
        retransmit = true;
      }
      if (retransmit) {
        if (budget == 0) {
          failed = true;
          break;
        }
        --budget;
        const double wait = retry_backoff_s(policy, rec.retries, jitter);
        ++rec.retries;
        rec.backoff_s += wait;
        ready = last_finish + wait;
      }
    }
    rec.transfer_s = first_start < 0.0 ? 0.0 : last_finish - first_start;
    report.transfer_s_total += rec.transfer_s;

    double first_token_at = 0.0;
    double finish_at = 0.0;
    if (delivered) {
      rec.deserialize_s = dec.deserialize_s;
      rec.decode_s = dec.decode_s;
      rec.decode_kv_blocks = dec.kv_blocks;
      rec.generated = std::move(dec.generated);
      first_token_at =
          std::max(last_finish, decode_free_s_) + dec.deserialize_s;
      finish_at = first_token_at + dec.decode_s;
      decode_free_s_ = finish_at;
    } else if (policy.fallback_local) {
      // Graceful degradation: the prefill worker decodes from its own copy
      // of the blob — bit-identical to the decode worker's continuation, at
      // the cost of occupying the prefill worker.
      rec.fallback_local = true;
      ++report.fallbacks;
      const PrefillWorker::LocalDecode fb =
          prefill_.local_decode(pre.blob, pre.first_token, request);
      rec.deserialize_s = fb.deserialize_s;
      rec.decode_s = fb.decode_s;
      rec.generated = fb.generated;
      const double fallback_start = std::max(last_finish, prefill_free_s_);
      first_token_at = fallback_start + fb.deserialize_s;
      finish_at = first_token_at + fb.decode_s;
      prefill_free_s_ = finish_at;
    } else {
      rec.rejected = true;
    }

    report.retries_total += rec.retries;
    report.chunks_dropped_total += rec.chunks_dropped;
    report.chunks_corrupted_total += rec.chunks_corrupted;
    report.crc_failures_total += rec.crc_failures;
    report.prefill_crashes_total += rec.prefill_crashes;
    report.decode_crashes_total += rec.decode_crashes;
    report.retransmitted_bytes_total += rec.retransmitted_bytes;
    if (rec.deadline_missed) ++report.deadline_misses;
    if (rec.rejected) {
      report.requests.push_back(std::move(rec));
      continue;
    }

    rec.ttft_s = first_token_at - request.arrival_time_s;
    rec.jct_s = finish_at - request.arrival_time_s;
    ttfts.push_back(rec.ttft_s);
    jcts.push_back(rec.jct_s);

    report.total_generated += rec.generated.size();
    report.wire_bytes_total += rec.wire_bytes;
    report.fp16_kv_bytes_total += rec.fp16_kv_bytes;
    report.makespan_s = std::max(report.makespan_s, finish_at);
    report.requests.push_back(std::move(rec));
  }

  if (report.fp16_kv_bytes_total > 0) {
    report.wire_vs_fp16 =
        static_cast<double>(report.wire_bytes_total) /
        static_cast<double>(report.fp16_kv_bytes_total);
  }
  if (!ttfts.empty()) report.ttft_s = compute_stats(std::move(ttfts));
  if (!jcts.empty()) report.jct_s = compute_stats(std::move(jcts));
  if (decode_.allocator() != nullptr) {
    report.decode_failed_allocations = decode_.allocator()->failed_allocations();
    report.decode_min_free_watermark = decode_.allocator()->min_free_watermark();
  }
  if (decode_.observed_paged_cache() != nullptr) {
    report.decode_oom_appends = decode_.observed_paged_cache()->oom_appends();
  }
  return report;
}

DisaggRecord DisaggEngine::serve(const ServingRequest& request) {
  DisaggReport report = run({request});
  HACK_CHECK(report.requests.size() == 1, "single-request episode");
  return std::move(report.requests[0]);
}

}  // namespace hack
