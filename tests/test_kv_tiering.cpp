// Tiered KV memory: eviction invisibility and scheduling determinism.
//
// The tier layer's load-bearing property is that eviction is *invisible*:
// swapping a sequence to the compressed far tier (kv_wire v2 blob) and
// rehydrating it later must not change a single generated token, because
// the blob restore is bit-identical (PR 5 contract) and the priority /
// preemption policy is a pure function of the submissions (no wall-clock).
// Four families pin that down (docs/serving.md, "Tiered KV memory"):
//
//   1. evict→rehydrate bit-identity vs a never-evicted run, swept across
//      {2,4,8}-bit × RQE on/off × SE on/off and both rounding modes;
//   2. preemption-schedule determinism — the same submissions replay to
//      the same evict/resume/prefetch event log and tokens, bitwise;
//   3. forced thrash (pool sized for ~1 sequence, N active) terminates
//      with every request finished — the starvation boost round-robins;
//   4. prefetch hit vs cold resume produce equal tokens (timing-only).
//
// Plus the PR 4 under-admission regression: FCFS can_ever_admit folds the
// free-block floor into the capacity predicate and rejects requests the
// tier manager can hold; tiered admission routes through can_ever_hold.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/check.h"
#include "kvcache/block_allocator.h"
#include "kvcache/tier_manager.h"
#include "model/tiny_transformer.h"
#include "serving/engine.h"
#include "serving/scheduler.h"
#include "workload/corpus.h"

namespace hack {
namespace {

TinyConfig small_config() {
  TinyConfig c;
  c.vocab = 64;
  c.layers = 2;
  c.heads = 4;
  c.kv_heads = 2;
  c.d_head = 32;
  c.d_ff = 128;
  return c;
}

HackAttentionConfig hack_variant(int kv_bits, bool rqe, bool se,
                                 Rounding rounding = Rounding::kStochastic) {
  HackAttentionConfig hc;
  hc.pi = 32;  // must divide d_head = 32
  hc.kv_bits = kv_bits;
  hc.requant_elimination = rqe;
  hc.summation_elimination = se;
  hc.rounding = rounding;
  return hc;
}

struct TestRequest {
  std::size_t prompt_len;
  std::size_t max_new;
};

std::vector<ServingRequest> make_requests(
    const std::vector<TestRequest>& shapes, std::size_t vocab) {
  SyntheticCorpus corpus({.vocab = vocab}, 42);
  std::vector<ServingRequest> reqs;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    ServingRequest r;
    r.id = i;
    r.prompt = corpus.prompt(i, shapes[i].prompt_len);
    r.max_new_tokens = shapes[i].max_new;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

using FactoryMaker = std::function<LayerBackendFactory()>;

std::map<std::uint64_t, std::vector<int>> run_engine(
    const std::shared_ptr<const TinyModelWeights>& weights,
    const FactoryMaker& maker, const std::vector<ServingRequest>& reqs,
    const ServingEngineConfig& config, BlockAllocator* allocator = nullptr,
    ServingReport* report_out = nullptr) {
  ServingEngine engine(weights, maker, config, allocator);
  for (const ServingRequest& r : reqs) engine.submit(r);
  ServingReport report = engine.run();
  std::map<std::uint64_t, std::vector<int>> out;
  for (const ServingRecord& rec : report.requests) {
    out[rec.request.id] = rec.generated;
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return out;
}

// A tiered engine config over a pool of `pool_blocks` (block_tokens 8);
// small chunks so evictions land mid-prefill too.
ServingEngineConfig tiered_config(std::size_t stall_limit = 3) {
  ServingEngineConfig ec;
  ec.scheduler.tiered = true;
  ec.scheduler.block_tokens = 8;
  ec.scheduler.prefill_chunk_tokens = 8;
  ec.scheduler.max_active = 8;
  ec.scheduler.preempt_stall_limit = stall_limit;
  return ec;
}

// The never-evicted reference: same chunk schedule, pool big enough that
// the FCFS engine never queues — by the serving determinism contract its
// tokens are what the tiered engine must reproduce bitwise.
ServingEngineConfig reference_config() {
  ServingEngineConfig ec;
  ec.scheduler.block_tokens = 8;
  ec.scheduler.prefill_chunk_tokens = 8;
  ec.scheduler.max_active = 8;
  return ec;
}

// ---------------------------------------------------- tier manager (unit)

TEST(KvTierManager, HotGrowSwapResumeAccounting) {
  BlockAllocator alloc(8, 256);
  KvTierManager tier(alloc, {.block_tokens = 4});

  EXPECT_EQ(tier.blocks_for_tokens(0), 0u);
  EXPECT_EQ(tier.blocks_for_tokens(1), 1u);
  EXPECT_EQ(tier.blocks_for_tokens(4), 1u);
  EXPECT_EQ(tier.blocks_for_tokens(5), 2u);
  EXPECT_TRUE(tier.can_ever_hold(32));   // 8 blocks, alone
  EXPECT_FALSE(tier.can_ever_hold(33));  // 9 blocks > pool

  // Reserve-on-append: footprints grow with tokens, all-or-nothing.
  EXPECT_TRUE(tier.grow_hot(0, 10));  // 3 blocks
  EXPECT_TRUE(tier.grow_hot(1, 17));  // 5 blocks
  EXPECT_EQ(tier.blocks_held(0), 3u);
  EXPECT_EQ(tier.blocks_held(1), 5u);
  EXPECT_EQ(alloc.blocks_free(), 0u);
  EXPECT_FALSE(tier.grow_hot(0, 13));     // needs a 4th block; pool is full
  EXPECT_EQ(tier.blocks_held(0), 3u);     // rollback left the holding intact
  EXPECT_EQ(alloc.blocks_free(), 0u);

  // Evict seq 1: blocks return, the blob is charged to the far tier.
  tier.swap_out(1, std::vector<std::uint8_t>(100, 0xAB));
  EXPECT_EQ(alloc.blocks_free(), 5u);
  EXPECT_TRUE(tier.is_swapped(1));
  EXPECT_EQ(tier.blocks_held(1), 0u);
  EXPECT_EQ(tier.far_bytes_total(), 100u);
  EXPECT_EQ(tier.stats().evictions, 1u);
  EXPECT_EQ(tier.stats().bytes_swapped_out, 100u);
  EXPECT_EQ(tier.stats().far_bytes_peak, 100u);

  // Resume: the blob comes back out and the far entry clears.
  const auto blob = tier.take_blob(1);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->size(), 100u);
  EXPECT_FALSE(tier.is_swapped(1));
  EXPECT_EQ(tier.far_bytes_total(), 0u);
  EXPECT_EQ(tier.stats().rehydrations, 1u);
  EXPECT_EQ(tier.stats().bytes_swapped_in, 100u);

  // Release frees everything a sequence still holds.
  tier.release(0);
  EXPECT_EQ(alloc.blocks_free(), 8u);
  EXPECT_EQ(tier.stats().hot_bytes_admitted, 8u * 256u);
  EXPECT_EQ(tier.stats().hot_bytes_released, 8u * 256u);
}

// ------------------------------------------------- tiered planner (unit)

TEST(TieredScheduler, PriorityOrdersPhaseAgeAndBudget) {
  SchedulerConfig cfg;
  cfg.tiered = true;
  cfg.preempt_stall_limit = 4;
  const Scheduler sched(cfg);
  using View = Scheduler::TieredSeqView;
  const auto decode = [](std::size_t remaining, std::size_t ordinal,
                         std::size_t stall = 0) {
    View v;
    v.state = RequestState::kDecoding;
    v.prompt_len = 10;
    v.prefill_done = 10;
    v.tokens = 10;
    v.max_new = remaining;
    v.stall_steps = stall;
    v.ordinal = ordinal;
    return v;
  };
  View prefill = decode(5, 0);
  prefill.state = RequestState::kPrefill;
  prefill.prefill_done = 2;
  View swapped = decode(5, 0);
  swapped.state = RequestState::kSwapped;
  swapped.resume_state = RequestState::kDecoding;

  // Decode beats prefill; resident beats swapped; shorter remaining work
  // beats longer; older admission breaks ties; starvation trumps all.
  EXPECT_TRUE(sched.tiered_priority_before(decode(5, 1), prefill));
  EXPECT_TRUE(sched.tiered_priority_before(decode(5, 1), swapped));
  EXPECT_TRUE(sched.tiered_priority_before(decode(3, 1), decode(5, 0)));
  EXPECT_TRUE(sched.tiered_priority_before(decode(5, 0), decode(5, 1)));
  EXPECT_TRUE(sched.tiered_priority_before(decode(9, 9, 4), decode(3, 0)));
  EXPECT_TRUE(sched.tiered_priority_before(decode(9, 9, 6), decode(9, 8, 5)));
}

TEST(TieredScheduler, PlanEvictsLowestPriorityUnderPressure) {
  SchedulerConfig cfg;
  cfg.tiered = true;
  cfg.block_tokens = 8;
  cfg.prefill_chunk_tokens = 8;
  const Scheduler sched(cfg);
  using View = Scheduler::TieredSeqView;
  // Three decoders, 16 tokens each (2 blocks; 3 after the step's append
  // lands on a block boundary... 17 tokens -> 3 blocks), pool of 6 blocks:
  // two fit, the lowest-priority third is displaced.
  const auto decoder = [](std::size_t remaining, std::size_t ordinal) {
    View v;
    v.state = RequestState::kDecoding;
    v.prompt_len = 16;
    v.prefill_done = 16;
    v.tokens = 16;
    v.max_new = remaining;
    v.ordinal = ordinal;
    return v;
  };
  const std::vector<View> running = {decoder(8, 0), decoder(2, 1),
                                     decoder(8, 2)};
  const TieredStepPlan plan = sched.plan_tiered(running, 6);
  // Priority: seq 1 (shortest remaining), then 0 (older), then 2.
  EXPECT_EQ(plan.step.decode, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(plan.evict, (std::vector<std::size_t>{2}));
  EXPECT_TRUE(plan.resume.empty());

  // A swapped sequence scheduled by the planner lands in the resume list.
  std::vector<View> with_swapped = running;
  with_swapped[1].state = RequestState::kSwapped;
  with_swapped[1].resume_state = RequestState::kDecoding;
  const TieredStepPlan plan2 = sched.plan_tiered(with_swapped, 12);
  EXPECT_EQ(plan2.resume, (std::vector<std::size_t>{1}));
}

// ------------------------------------- PR 4 under-admission (regression)

TEST(TieredScheduler, CanEverAdmitRoutesThroughTierCapacity) {
  SchedulerConfig cfg;
  cfg.block_tokens = 8;
  cfg.free_block_floor = 3;
  const Scheduler sched(cfg);
  BlockAllocator alloc(10, 256);
  KvTierManager tier(alloc, {.block_tokens = 8});

  ServingRequest req;
  req.prompt.assign(40, 1);
  req.max_new_tokens = 24;  // 64 tokens -> 8 blocks
  // FCFS folds the floor in: 8 + 3 > 10 rejects — the PR 4 under-admission.
  EXPECT_FALSE(sched.can_ever_admit(req, &alloc));
  // The tier capacity model only asks "fits the pool alone": 8 <= 10.
  EXPECT_TRUE(sched.can_ever_admit(req, &tier));
  // A request that can never be fully hot is still rejected.
  req.max_new_tokens = 48;  // 88 tokens -> 11 blocks > pool
  EXPECT_FALSE(sched.can_ever_admit(req, &tier));
}

TEST(ServingEngine, TieredAdmitsAndCompletesWhatFcfsRejects) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_variant(4, true, true), 7);
  };
  const auto reqs = make_requests({{40, 24}}, cfg.vocab);  // 8 blocks

  ServingEngineConfig fcfs = reference_config();
  fcfs.scheduler.free_block_floor = 3;
  BlockAllocator fcfs_pool(10, 256);
  ServingReport fcfs_report;
  run_engine(weights, maker, reqs, fcfs, &fcfs_pool, &fcfs_report);
  EXPECT_EQ(fcfs_report.requests[0].state, RequestState::kRejected);
  EXPECT_EQ(fcfs_report.engine.rejected, 1u);

  ServingEngineConfig tiered = tiered_config();
  tiered.scheduler.free_block_floor = 3;  // ignored by tiered admission
  BlockAllocator tiered_pool(10, 256);
  ServingReport tiered_report;
  const auto got = run_engine(weights, maker, reqs, tiered, &tiered_pool,
                              &tiered_report);
  EXPECT_EQ(tiered_report.requests[0].state, RequestState::kFinished);
  EXPECT_EQ(got.at(0).size(), 24u);
  EXPECT_EQ(tiered_pool.blocks_free(), 10u);  // everything released
}

// -------------------------------------------- evict→rehydrate bit-identity

// The core invisibility property: a tiered run under heavy pressure (pool
// ~1.5 sequences, 5 active) must generate exactly the tokens of a
// never-evicted run, for every bit-width and flag combination — evictions
// must actually happen for the sweep to mean anything.
TEST(KvTiering, EvictRehydrateBitIdenticalAcrossFormats) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const auto reqs = make_requests(
      {{24, 8}, {17, 6}, {31, 8}, {12, 10}, {20, 6}}, cfg.vocab);

  struct Variant {
    int kv_bits;
    bool rqe, se;
    Rounding rounding;
  };
  const std::vector<Variant> variants = {
      {2, true, true, Rounding::kStochastic},
      {4, true, true, Rounding::kStochastic},
      {8, true, true, Rounding::kStochastic},
      {4, false, true, Rounding::kStochastic},
      {4, true, false, Rounding::kStochastic},
      {2, false, false, Rounding::kNearest},
  };
  for (const Variant& v : variants) {
    const FactoryMaker maker = [v] {
      return make_hack_layer_backend(
          hack_variant(v.kv_bits, v.rqe, v.se, v.rounding), 7);
    };
    const auto reference =
        run_engine(weights, maker, reqs, reference_config());

    BlockAllocator pool(8, 256);  // 64 tokens hot — far below the working set
    ServingReport report;
    const auto tiered = run_engine(weights, maker, reqs, tiered_config(),
                                   &pool, &report);
    EXPECT_GT(report.engine.tier.evictions, 0u)
        << "kv_bits=" << v.kv_bits << " rqe=" << v.rqe << " se=" << v.se
        << ": sweep is vacuous without evictions";
    EXPECT_EQ(report.engine.tier.evictions, report.engine.tier.rehydrations);
    EXPECT_EQ(tiered, reference)
        << "kv_bits=" << v.kv_bits << " rqe=" << v.rqe << " se=" << v.se;
    EXPECT_EQ(pool.blocks_free(), 8u);
  }
}

// ------------------------------------------- schedule determinism (bitwise)

TEST(KvTiering, PreemptionScheduleReplaysBitwise) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_variant(2, true, true), 7);
  };
  const auto reqs = make_requests(
      {{24, 8}, {17, 6}, {31, 8}, {12, 10}, {20, 6}}, cfg.vocab);

  const auto run_once = [&](ServingReport* report) {
    BlockAllocator pool(8, 256);
    return run_engine(weights, maker, reqs, tiered_config(), &pool, report);
  };
  ServingReport a, b;
  const auto tokens_a = run_once(&a);
  const auto tokens_b = run_once(&b);

  EXPECT_EQ(tokens_a, tokens_b);
  ASSERT_GT(a.engine.swap_events.size(), 0u);
  EXPECT_EQ(a.engine.swap_events, b.engine.swap_events);
  EXPECT_EQ(a.engine.tier.evictions, b.engine.tier.evictions);
  EXPECT_EQ(a.engine.tier.rehydrations, b.engine.tier.rehydrations);
  EXPECT_EQ(a.engine.tier.prefetch_hits, b.engine.tier.prefetch_hits);
  EXPECT_EQ(a.engine.tier.bytes_swapped_out, b.engine.tier.bytes_swapped_out);
  EXPECT_EQ(a.engine.tier.bytes_swapped_in, b.engine.tier.bytes_swapped_in);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].evictions, b.requests[i].evictions) << i;
    EXPECT_EQ(a.requests[i].rehydrations, b.requests[i].rehydrations) << i;
  }
}

// --------------------------------------------------- forced thrash sweep

// Pool sized for ~1 sequence, N=5 active: the starvation boost must
// round-robin the pool through every sequence — all finish, none starves,
// and the ledger drains exactly (every eviction rehydrated, far tier empty).
TEST(KvTiering, ForcedThrashTerminatesWithoutStarvation) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_variant(2, true, true), 7);
  };
  const auto reqs = make_requests(
      {{24, 8}, {20, 8}, {16, 8}, {28, 8}, {18, 8}}, cfg.vocab);

  for (const std::size_t stall_limit : {1u, 3u, 6u}) {
    BlockAllocator pool(5, 256);  // 40 hot tokens: one sequence's worst case
    ServingReport report;
    const auto got = run_engine(weights, maker, reqs,
                                tiered_config(stall_limit), &pool, &report);
    for (const ServingRecord& rec : report.requests) {
      EXPECT_EQ(rec.state, RequestState::kFinished)
          << "request " << rec.request.id << " starved at stall limit "
          << stall_limit;
      EXPECT_EQ(rec.generated.size(), rec.request.max_new_tokens);
    }
    EXPECT_GT(report.engine.tier.evictions, 0u);
    EXPECT_EQ(report.engine.tier.evictions, report.engine.tier.rehydrations);
    EXPECT_EQ(pool.blocks_free(), 5u);
    ASSERT_EQ(got.size(), reqs.size());
  }
}

// --------------------------------------------- prefetch hit vs cold resume

// Prefetch is timing-only: staged and cold resumes deserialize the same
// blob, so tokens are equal; with every request submitted up front and no
// eos the projection is exact, so the prefetch-on run resumes warm.
TEST(KvTiering, PrefetchHitMatchesColdResume) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_variant(4, true, true), 7);
  };
  const auto reqs = make_requests(
      {{24, 8}, {17, 6}, {31, 8}, {20, 6}}, cfg.vocab);

  ServingEngineConfig warm = tiered_config();
  ServingEngineConfig cold = tiered_config();
  cold.scheduler.prefetch = false;

  BlockAllocator warm_pool(8, 256), cold_pool(8, 256);
  ServingReport warm_report, cold_report;
  const auto warm_tokens = run_engine(weights, maker, reqs, warm,
                                      &warm_pool, &warm_report);
  const auto cold_tokens = run_engine(weights, maker, reqs, cold,
                                      &cold_pool, &cold_report);

  EXPECT_EQ(warm_tokens, cold_tokens);
  ASSERT_GT(cold_report.engine.tier.rehydrations, 0u);
  EXPECT_EQ(cold_report.engine.tier.prefetch_hits, 0u);
  EXPECT_EQ(cold_report.engine.tier.prefetch_misses,
            cold_report.engine.tier.rehydrations);
  EXPECT_GT(warm_report.engine.tier.prefetch_hits, 0u);
  // Same submissions, same policy: the evict/resume schedule is identical
  // whether resumes are staged or cold — prefetch changed nothing but time.
  EXPECT_EQ(warm_report.engine.tier.evictions,
            cold_report.engine.tier.evictions);
  EXPECT_EQ(warm_report.engine.tier.rehydrations,
            cold_report.engine.tier.rehydrations);
}

// ---------------------------------------------- acceptance: concurrency up

// Under a pool below the working set the tiered engine must hold strictly
// more concurrent requests than worst-case FCFS reservation, with zero
// token divergence from the unconstrained reference.
TEST(KvTiering, TieredBeatsFcfsConcurrencyUnderPressure) {
  const TinyConfig cfg = small_config();
  const auto weights = make_tiny_weights(cfg);
  const FactoryMaker maker = [] {
    return make_hack_layer_backend(hack_variant(2, true, true), 7);
  };
  // Five requests of 3–5 worst-case blocks each (24–36 tokens at
  // block_tokens 8, ~19 blocks total): a 12-block pool FCFS-reserves only
  // a strict subset at a time, while tiered admission holds all five.
  const auto reqs = make_requests(
      {{24, 8}, {20, 8}, {16, 8}, {28, 8}, {18, 8}}, cfg.vocab);

  const auto reference = run_engine(weights, maker, reqs, reference_config());

  ServingEngineConfig fcfs = reference_config();
  BlockAllocator fcfs_pool(12, 256);
  ServingReport fcfs_report;
  const auto fcfs_tokens = run_engine(weights, maker, reqs, fcfs,
                                      &fcfs_pool, &fcfs_report);

  BlockAllocator tiered_pool(12, 256);
  ServingReport tiered_report;
  const auto tiered_tokens = run_engine(weights, maker, reqs,
                                        tiered_config(), &tiered_pool,
                                        &tiered_report);

  EXPECT_LT(fcfs_report.engine.peak_running, reqs.size());
  EXPECT_EQ(tiered_report.engine.peak_running, reqs.size());
  EXPECT_GT(tiered_report.engine.peak_running,
            fcfs_report.engine.peak_running);
  EXPECT_EQ(tiered_tokens, reference);
  EXPECT_EQ(fcfs_tokens, reference);
  for (const ServingRecord& rec : tiered_report.requests) {
    EXPECT_EQ(rec.state, RequestState::kFinished) << rec.request.id;
  }
}

}  // namespace
}  // namespace hack
