#include "metrics/report.h"

#include <iomanip>
#include <sstream>

#include "base/check.h"

namespace hack {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  HACK_CHECK(header_.empty() || cells.size() == header_.size(),
             "row width " << cells.size() << " != header width "
                          << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    std::string rule;
    for (const std::size_t w : widths) rule += std::string(w + 2, '-');
    os << rule << "\n";
  }
  for (const auto& row : rows_) print_row(row);

  // Machine-readable mirror.
  for (const auto& row : rows_) {
    os << "csv," << title_;
    for (const auto& cell : row) os << "," << cell;
    os << "\n";
  }
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string pct(double ratio, int digits) {
  return fmt(100.0 * ratio, digits) + "%";
}

}  // namespace hack
