// Method-aware analytic kernel cost model.
//
// Converts the FLOP/byte formulas of model/flops.h into seconds on a given
// GPU under a given serving method. The method determines:
//   - the KV footprint on the wire and in decode memory,
//   - whether a per-iteration dequantization (baseline quant methods) or the
//     Eq. (4) approximation (HACK) is paid,
//   - whether attention matmuls ride the INT8 tensor-core path (HACK on GPUs
//     with INT8 support) or stay on FP16.
#pragma once

#include <string>

#include "cluster/gpu_spec.h"
#include "model/config.h"
#include "model/flops.h"

namespace hack {

enum class Method {
  kBaseline,   // FP16 KV end to end
  kCacheGen,   // bitstream codec; dequantize each iteration
  kKvQuant,    // 2-bit codec; dequantize each iteration
  kHack,       // homomorphic quantization, SE + RQE on
  kHackNoSE,   // HACK without summation elimination (ablation)
  kHackNoRQE,  // HACK without requantization elimination (ablation)
  kFp4,        // mini-float storage (§3), FP16 compute
  kFp6,
  kFp8,        // mini-float storage, 2x matmul (simulated FP8 tensor cores)
};

std::string method_name(Method m);
bool is_hack(Method m);
bool is_dequant_codec(Method m);
bool is_minifloat(Method m);

struct MethodTraits {
  double wire_fraction = 1.0;   // KV wire bytes / FP16 bytes
  double mem_fraction = 1.0;    // KV decode-memory bytes / FP16 bytes
  bool dequant_per_step = false;
  bool hack_approx = false;
  bool sum_recompute = false;   // HACK/SE pays Σb' recompute per step
  bool requant_per_step = false;  // HACK/RQE requantizes V's last block
  bool int8_attention = false;  // quantized matmuls eligible for INT8 path
  double matmul_speedup = 1.0;  // extra factor (FP8 simulation: 2x)
  // Per-partition epilogues fragment tensor-core tiles: smaller Π means
  // more Eq. (4) correction blocks per GEMM (Table 8's JCT cost of small Π).
  double tile_efficiency = 1.0;
  double convert_per_step = 0.0;  // mini-float -> FP16 ops per KV element
};

// Traits for a method with partition size pi and kv bit width (HACK family).
MethodTraits method_traits(Method m, std::size_t pi = 64, int kv_bits = 2);

// Per-request timing produced by the cost model (all seconds).
struct KernelCostModel {
  ModelConfig model;
  GpuSpec gpu;
  ParallelismPlan plan;
  MethodTraits traits;
  Method method = Method::kBaseline;

  // Efficiency knobs: fraction of peak sustained by large GEMMs, vector ops,
  // and an inflation factor for decode iterations (kernel launch, scheduler,
  // sampling overheads that dominate small-batch decode).
  double mfu = 0.45;
  double vector_eff = 0.05;
  double decode_overhead = 3.0;
  double pp_bubble = 0.10;  // pipeline bubble per extra PP stage

  // ---- prefill-side
  double prefill_s(double l_in) const;
  double prefill_quant_s(double l_in) const;

  // ---- wire
  double kv_wire_bytes(double l_in) const;

  // ---- decode-side, per iteration at context length l
  double decode_weight_read_s() const;          // shared across the batch
  // Fixed per-iteration cost of the method's extra kernel passes (e.g. the
  // codecs' per-layer dequantization launches, HACK's Eq. (4) epilogue) —
  // paid once per iteration regardless of batch size.
  double decode_iter_fixed_s() const;
  double decode_request_iter_s(double l) const; // marginal per active request
  double decode_kv_read_s(double l) const;      // component: KV memory access
  double decode_dequant_s(double l) const;      // component: dequant (codecs)
  double decode_approx_s(double l) const;       // component: Eq. (4) approx
  double decode_compute_s(double l) const;      // component: attention math

  // ---- decode-side memory footprint for admission control
  double kv_mem_bytes(double l_total) const;
  double weight_bytes_per_replica() const;

 private:
  double effective_tflops(bool attention_math) const;
  double aggregate_mem_bw() const;  // bytes/s across the replica's GPUs
  double vector_flops_per_s() const;
};

// Builds the cost model for (model, gpu, method) with the Table 3 plan.
KernelCostModel make_cost_model(const ModelConfig& model, const GpuSpec& gpu,
                                Method method, std::size_t pi = 64,
                                int kv_bits = 2);

}  // namespace hack
