#include "core/hq_matmul.h"

#include <algorithm>
#include <memory>

#include "base/thread_pool.h"
#include "core/int_gemm.h"

namespace hack {
namespace {

// Shared Eq. (4) engine. Layout differences between NN (P·V) and NT (Q·Kᵀ)
// are confined to the banded integer kernel and the Σ b' recompute loop,
// selected at compile time. The engine is split into a B-side preparation —
// reusable across every task that multiplies against the same B, e.g. GQA
// query heads sharing one KV head — and a band processor that the single and
// batched entry points dispatch over.

template <bool kNT>
void validate_operands(const QuantizedMatrix& a, const QuantizedMatrix& b) {
  HACK_CHECK(a.axis == QuantAxis::kRow, "A must be row-axis quantized");
  HACK_CHECK(a.bits >= 1 && b.bits >= 1, "operands must be quantized");
  HACK_CHECK(a.pi == b.pi, "partition size mismatch: " << a.pi << " vs "
                            << b.pi);
  if constexpr (kNT) {
    HACK_CHECK(b.axis == QuantAxis::kRow,
               "B must be row-axis quantized (token-per-row K layout)");
    HACK_CHECK(a.cols == b.cols, "hq_matmul_nt inner dim mismatch: " << a.cols
                                 << " vs " << b.cols);
  } else {
    HACK_CHECK(b.axis == QuantAxis::kCol, "B must be col-axis quantized");
    HACK_CHECK(a.cols == b.rows, "hq_matmul shape mismatch: " << a.rows << "x"
                                 << a.cols << " * " << b.rows << "x"
                                 << b.cols);
  }
}

// Hoisted per-(j, g) Eq. (4) factors and Σ b' for one B operand:
//   B1 = s_b, B2 = m_b, B3 = s_b·Σb' + |g|·m_b,
// group-major so the inner j-loop of the correction reads them contiguously.
template <bool kNT>
struct PreparedB {
  const QuantizedMatrix* b;
  const SumCache* b_sums;  // identity of the prep, for sharing across tasks
  std::size_t n;
  std::size_t z;
  PartitionScheme scheme;
  std::vector<float> b1, b2, b3;
  std::int64_t sum_flops = 0;  // NZ adds paid here when no SumCache was given

  PreparedB(const QuantizedMatrix& bm, const SumCache* sums)
      : b(&bm),
        b_sums(sums),
        n(kNT ? bm.rows : bm.cols),
        z(kNT ? bm.cols : bm.rows),
        scheme(z, bm.pi, /*allow_ragged_tail=*/true) {
    const std::size_t groups = scheme.group_count();
    HACK_CHECK(bm.group_count() == groups,
               "B group count mismatch: " << bm.group_count() << " vs "
                                          << groups);
    if (sums != nullptr) {
      HACK_CHECK(sums->outer() == n && sums->groups() == groups,
                 "SumCache does not match B");
    }

    // Σ b' per (j, g): read straight out of the SumCache's contiguous storage
    // (it uses the same outer-major layout) or recompute from the codes.
    std::vector<std::int32_t> b_col_sums_storage;
    const std::int32_t* b_col_sums = nullptr;
    if (sums != nullptr) {
      b_col_sums = sums->data();
    } else {
      b_col_sums_storage.assign(n * groups, 0);
      if constexpr (kNT) {
        // B is N x Z: each (j, g) sum is a contiguous run of row j.
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint8_t* row = bm.codes.data() + j * bm.cols;
          for (std::size_t g = 0; g < groups; ++g) {
            std::int32_t acc = 0;
            for (std::size_t zz = scheme.group_begin(g);
                 zz < scheme.group_end(g); ++zz) {
              acc += row[zz];
            }
            b_col_sums_storage[j * groups + g] = acc;
          }
        }
      } else {
        // B is Z x N: stream the rows, scattering into per-column slots.
        for (std::size_t g = 0; g < groups; ++g) {
          for (std::size_t zz = scheme.group_begin(g);
               zz < scheme.group_end(g); ++zz) {
            const std::uint8_t* row = bm.codes.data() + zz * bm.cols;
            for (std::size_t j = 0; j < n; ++j) {
              b_col_sums_storage[j * groups + g] += row[j];
            }
          }
        }
      }
      b_col_sums = b_col_sums_storage.data();
      sum_flops = static_cast<std::int64_t>(n) * z;  // NZ adds
    }

    b1.resize(groups * n);
    b2.resize(groups * n);
    b3.resize(groups * n);
    for (std::size_t g = 0; g < groups; ++g) {
      const auto group_len = static_cast<float>(scheme.group_size(g));
      float* f1 = b1.data() + g * n;
      float* f2 = b2.data() + g * n;
      float* f3 = b3.data() + g * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float sb = bm.scales[j * groups + g];
        const float mb = bm.mins[j * groups + g];
        f1[j] = sb;
        f2[j] = mb;
        f3[j] = sb * static_cast<float>(b_col_sums[j * groups + g]) +
                group_len * mb;
      }
    }
  }
};

// One row band of C: integer GEMM per group into a band-local int32 tile,
// then the vectorizable three-term correction
//   C[i,j] += A1·B1[j]·dot + A2·B2[j] + A3·B3[j]
// with A1 = s_a, A2 = s_a·Σa', A3 = m_a. Every C row is produced entirely
// inside one band, so results do not depend on the band decomposition.
template <bool kNT>
void process_band(const QuantizedMatrix& a, const PreparedB<kNT>& pb,
                  std::size_t r0, std::size_t r1, Matrix& c) {
  const std::size_t n = pb.n;
  const std::size_t groups = pb.scheme.group_count();
  const CodeView a_codes{a.codes.data(), a.rows, a.cols};
  const CodeView b_codes{pb.b->codes.data(), pb.b->rows, pb.b->cols};

  const std::size_t band = r1 - r0;
  // Σ a' per (band row, g): contiguous runs of each A row.
  std::vector<std::int32_t> a_row_sums(band * groups, 0);
  for (std::size_t i = r0; i < r1; ++i) {
    const std::uint8_t* row = a.codes.data() + i * a.cols;
    for (std::size_t g = 0; g < groups; ++g) {
      std::int32_t acc = 0;
      for (std::size_t zz = pb.scheme.group_begin(g);
           zz < pb.scheme.group_end(g); ++zz) {
        acc += row[zz];
      }
      a_row_sums[(i - r0) * groups + g] = acc;
    }
  }

  std::vector<std::int32_t> dot(band * n);
  for (std::size_t g = 0; g < groups; ++g) {
    std::fill(dot.begin(), dot.end(), 0);
    if constexpr (kNT) {
      int_gemm_nt_rows(a_codes, b_codes, r0, r1, pb.scheme.group_begin(g),
                       pb.scheme.group_end(g), dot.data(), pb.b->bits);
    } else {
      int_gemm_nn_rows(a_codes, b_codes, r0, r1, pb.scheme.group_begin(g),
                       pb.scheme.group_end(g), dot.data(), pb.b->bits);
    }
    const float* f1 = pb.b1.data() + g * n;
    const float* f2 = pb.b2.data() + g * n;
    const float* f3 = pb.b3.data() + g * n;
    for (std::size_t i = r0; i < r1; ++i) {
      const float sa = a.scales[i * groups + g];
      const float a2 =
          sa * static_cast<float>(a_row_sums[(i - r0) * groups + g]);
      const float a3 = a.mins[i * groups + g];
      float* crow = &c(i, 0);
      const std::int32_t* drow = dot.data() + (i - r0) * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += sa * f1[j] * static_cast<float>(drow[j]) + a2 * f2[j] +
                   a3 * f3[j];
      }
    }
  }
}

// Cost accounting for one task (pinned by test_cost_model / test_hq_matmul):
//   MZ adds for Σ a', and 9MN for Eq. (4) — 2 for sa·sb·dot, 2+2 for the
//   two affine terms, 2 for Z·ma·mb, 3 adds folding the terms together.
void fill_stats(HqStats* stats, std::size_t m, std::size_t n, std::size_t z,
                std::int64_t sum_flops) {
  if (stats == nullptr) return;
  HqStats local{};
  local.sum_flops = sum_flops;
  local.approx_flops = static_cast<std::int64_t>(m) * z +
                       9 * static_cast<std::int64_t>(m) * n;
  local.int_macs = static_cast<std::int64_t>(m) * n * z;
  *stats = local;
}

template <bool kNT>
Matrix hq_matmul_single(const QuantizedMatrix& a, const QuantizedMatrix& b,
                        const SumCache* b_sums, HqStats* stats, int threads) {
  validate_operands<kNT>(a, b);
  const PreparedB<kNT> pb(b, b_sums);
  const std::size_t m = a.rows;
  HACK_CHECK(a.group_count() == pb.scheme.group_count(),
             "A group count mismatch");

  Matrix c(m, pb.n, 0.0f);
  if (m == 1 || threads == 1) {
    // Decode GEMV fast path / explicit serial: no pool dispatch, the banded
    // kernels degrade to j-tiled dot loops over the single row.
    process_band<kNT>(a, pb, 0, m, c);
  } else {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(m, chunks_for_request(threads, m, pool.lanes()),
                      [&](std::size_t r0, std::size_t r1) {
                        process_band<kNT>(a, pb, r0, r1, c);
                      });
  }
  fill_stats(stats, m, pb.n, pb.z, pb.sum_flops);
  return c;
}

template <bool kNT>
void hq_matmul_batch(std::span<HqGemmTask> tasks, int threads) {
  if (tasks.empty()) return;

  // B-side preparation, shared across tasks with the same (b, b_sums) pair.
  std::vector<std::unique_ptr<PreparedB<kNT>>> preps;
  std::vector<std::size_t> prep_of(tasks.size());
  std::vector<bool> charges_sum_flops(tasks.size(), false);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const HqGemmTask& task = tasks[t];
    HACK_CHECK(task.a != nullptr && task.b != nullptr && task.c != nullptr,
               "batched HQ-GEMM task missing an operand");
    validate_operands<kNT>(*task.a, *task.b);
    std::size_t found = preps.size();
    for (std::size_t p = 0; p < preps.size(); ++p) {
      if (preps[p]->b == task.b && preps[p]->b_sums == task.b_sums) {
        found = p;
        break;
      }
    }
    if (found == preps.size()) {
      preps.push_back(std::make_unique<PreparedB<kNT>>(*task.b, task.b_sums));
      charges_sum_flops[t] = true;  // first user pays the Σ b' recompute
    }
    prep_of[t] = found;
    HACK_CHECK(task.a->group_count() == preps[found]->scheme.group_count(),
               "A group count mismatch");
    *task.c = Matrix(task.a->rows, preps[found]->n, 0.0f);
  }

  // Work items: each task's M splits into row bands; single-row tasks (the
  // batched decode GEMV case) contribute exactly one item. The split depends
  // only on the requested thread count — and every C row lives entirely
  // inside one item — so results are independent of the actual pool size.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t lanes =
      threads <= 0 ? pool.lanes() : static_cast<std::size_t>(threads);
  const std::size_t bands_per_task = std::max<std::size_t>(
      1, (2 * lanes + tasks.size() - 1) / tasks.size());

  struct Item {
    std::size_t task, r0, r1;
  };
  std::vector<Item> items;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::size_t m = tasks[t].a->rows;
    const std::size_t bands = std::min(m, bands_per_task);
    for (std::size_t band = 0; band < bands; ++band) {
      items.push_back({t, band * m / bands, (band + 1) * m / bands});
    }
  }

  const auto run_item = [&](const Item& it) {
    process_band<kNT>(*tasks[it.task].a, *preps[prep_of[it.task]], it.r0,
                      it.r1, *tasks[it.task].c);
  };
  if (threads == 1 || items.size() == 1) {
    for (const Item& it : items) run_item(it);
  } else {
    // threads <= 0: one chunk per item, claimed dynamically, so a slow head
    // does not serialize the rest of the layer. threads = N: N contiguous
    // chunks, capping concurrency at the requested width.
    pool.parallel_for(items.size(),
                      chunks_for_request(threads, items.size(),
                                         /*auto_chunks=*/items.size()),
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          run_item(items[i]);
                        }
                      });
  }

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const PreparedB<kNT>& pb = *preps[prep_of[t]];
    fill_stats(tasks[t].stats, tasks[t].a->rows, pb.n, pb.z,
               charges_sum_flops[t] ? pb.sum_flops : 0);
  }
}

}  // namespace

Matrix hq_matmul(const QuantizedMatrix& a, const QuantizedMatrix& b,
                 const SumCache* b_sums, HqStats* stats, int threads) {
  return hq_matmul_single<false>(a, b, b_sums, stats, threads);
}

Matrix hq_matmul_nt(const QuantizedMatrix& a, const QuantizedMatrix& b,
                    const SumCache* b_sums, HqStats* stats, int threads) {
  return hq_matmul_single<true>(a, b, b_sums, stats, threads);
}

void hq_matmul_batched(std::span<HqGemmTask> tasks, int threads) {
  hq_matmul_batch<false>(tasks, threads);
}

void hq_matmul_nt_batched(std::span<HqGemmTask> tasks, int threads) {
  hq_matmul_batch<true>(tasks, threads);
}

}  // namespace hack
