// Software mini-float formats: FP8 (E4M3), FP6 (E3M2), FP4 (E2M1).
//
// §3 of the paper evaluates low-precision floating-point KV storage as an
// alternative to integer quantization. None of the evaluation GPUs execute
// FP8 natively, so the paper itself simulates: store in the mini format,
// convert to FP16 before attention, and halve matmul time to model FP8
// tensor-core throughput. We reproduce the storage formats bit-exactly (with
// saturation instead of infinities, like NVIDIA's E4M3) so compression rate
// and round-trip error are real.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/matrix.h"

namespace hack {

enum class MiniFloatFormat {
  kFp8E4M3,
  kFp6E3M2,
  kFp4E2M1,
};

// Bits per stored value (8, 6, 4).
int minifloat_bits(MiniFloatFormat format);

// Human-readable name ("FP8", ...).
std::string minifloat_name(MiniFloatFormat format);

// Encodes a float into the format's bit pattern (sign + exponent + mantissa),
// round-to-nearest-even, saturating at the format's max finite value.
std::uint8_t minifloat_encode(float value, MiniFloatFormat format);

// Decodes a bit pattern back to float.
float minifloat_decode(std::uint8_t bits, MiniFloatFormat format);

// Rounds value through the format (encode + decode).
float minifloat_round(float value, MiniFloatFormat format);

// Rounds every entry of m through the format.
Matrix minifloat_round_matrix(const Matrix& m, MiniFloatFormat format);

// Compression rate versus FP16 storage: 1 - bits/16 (e.g. FP4 -> 0.75).
double minifloat_compression_vs_fp16(MiniFloatFormat format);

}  // namespace hack
