// Integer GEMM on quantization codes.
//
// Models the GPU INT8 tensor-core path HACK rides on: unsigned 8-bit codes
// multiplied with 32-bit accumulation. Two layouts cover attention's needs:
//   - NT: C = A * B^T where both A (M x Z) and B (N x Z) store the contracted
//     dimension contiguously per row (Q * K^T).
//   - NN: C = A * B where B is Z x N (P * V).
// Block-range variants compute the partial dot over one partition's z-range,
// which is how the per-group Eq. (4) correction is assembled.
//
// The row-range kernels (`int_gemm_*_rows`) are the engine room of the
// blocked HQ-GEMM path: they compute a contiguous band of C rows with 4x4
// register-blocked micro-tiles, so a thread pool can split the M dimension
// into independent bands. The whole-matrix `int_gemm_*_block` entry points
// are thin wrappers over the banded kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace hack {

// View over a row-major code matrix (uint8 codes, values < 2^bits).
struct CodeView {
  const std::uint8_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
};

// dot over z in [z_begin, z_end) of A.row(i) and B.row(j) (NT layout).
std::int32_t int_dot_nt(const CodeView& a, const CodeView& b, std::size_t i,
                        std::size_t j, std::size_t z_begin, std::size_t z_end);

// Sentinel for "the whole extent" in the offset/range parameters below.
inline constexpr std::size_t kIntGemmFull = static_cast<std::size_t>(-1);

// Banded NN kernel: accumulates rows [i_begin, i_end) of C += A * B over the
// z-range, where A is M x Z and B is row-major with N columns. `out` points
// at the output band, row-major with leading dimension N: out[(i - i_begin) *
// N + j] accumulates C[i][j]. `b_row_offset` is the column-offset stride into
// B's token rows: A column z multiplies B row `b_row_offset + z`, which is
// how a KV-tile view contracts a [M x tile] A block against the middle of a
// tall V store (0 recovers the classic A-cols == B-rows contract). `b_bits`
// is the bit width of B's codes: when they fit 6 bits (the paper's 2-/4-bit
// V cache) and the CPU supports AVX2, the kernel runs an explicit
// widening-multiply path (z-pairs through pmaddubsw, widened to int32 in
// j-order); otherwise the portable 4-row axpy tile is used. Both produce
// identical int32 results.
void int_gemm_nn_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits = 8,
                      std::size_t b_row_offset = 0);

// Banded NT kernel: same contract with B stored N x Z (C += A * B^T).
// `[j_begin, j_end)` restricts the output columns to that range of B rows —
// the KV-tile view of a Q·Kᵀ score block — with `out` leading dimension
// shrinking to j_end - j_begin (kIntGemmFull = all of B). `b_bits` is the bit
// width of B's codes (values < 2^b_bits). When B codes fit 6 bits — the
// paper's 2-/4-bit KV caches — and the CPU supports AVX2, the dot products
// run through the u8 x i8 multiply-add idiom (pmaddubsw: 255 * 63 * 2 pair
// sums stay inside int16); otherwise a portable register-blocked path is
// used. Both produce identical int32 results.
void int_gemm_nt_rows(const CodeView& a, const CodeView& b,
                      std::size_t i_begin, std::size_t i_end,
                      std::size_t z_begin, std::size_t z_end,
                      std::int32_t* out, int b_bits = 8,
                      std::size_t j_begin = 0,
                      std::size_t j_end = kIntGemmFull);

// C[i][j] += over the z-range: A (M x Z) row-major times B (Z x N) row-major.
// `out` is M x N row-major int32, accumulated into.
void int_gemm_nn_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits = 8);

// Same for the NT layout: B is N x Z.
void int_gemm_nt_block(const CodeView& a, const CodeView& b,
                       std::size_t z_begin, std::size_t z_end,
                       std::vector<std::int32_t>& out, int b_bits = 8);

}  // namespace hack
