// NIC / link model for the cluster simulator.
//
// Each model replica owns a share of its cloud instance's NIC. A Nic is a
// serialized resource with a busy horizon: transfers book bandwidth in FIFO
// order, so concurrent KV transfers queue behind each other exactly like
// flows sharing a sender NIC. Latency is the per-transfer propagation and
// handshake cost.
#pragma once

#include <cstdint>

#include "base/check.h"

namespace hack {

class Nic {
 public:
  // gbps: usable line rate in gigabits/s; latency_s: fixed per-transfer cost.
  Nic(double gbps, double latency_s = 100e-6);

  double gbps() const { return gbps_; }
  double bytes_per_second() const { return gbps_ * 1e9 / 8.0; }
  double busy_until() const { return busy_until_; }
  double total_bytes() const { return total_bytes_; }

  // Books `bytes` starting no earlier than ready_time; returns the interval
  // [start, finish] actually occupied.
  struct Booking {
    double start;
    double finish;
  };
  Booking book(double ready_time, double bytes);

 private:
  double gbps_;
  double latency_s_;
  double busy_until_ = 0.0;
  double total_bytes_ = 0.0;
};

}  // namespace hack
