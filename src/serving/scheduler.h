// Iteration-level scheduler for the continuous-batching engine.
//
// Continuous batching (Orca-style, the policy FlowKV/KVServe assume under
// their disaggregated codecs) schedules work per model iteration, not per
// request: every engine step carries the single-token decode rows of all
// running sequences plus at most one bounded chunk of one prefilling
// sequence's prompt. Decodes never wait for a whole prompt to clear
// (bounded TBT), and the prefill chunk keeps new sequences flowing in
// (bounded TTFT) without monopolizing a step.
//
// The scheduler is deliberately pure: given views of the running sequences
// it returns a StepPlan, and given a request it answers admission-control
// questions against the KV block pool (free-block watermark in
// kvcache/block_allocator.h). The engine owns the clock, the sessions, and
// the mutation.
//
// Chunk policy: prompts are ingested in chunks of at most
// `prefill_chunk_tokens` rows, with two determinism-preserving rules —
// a chunk of a multi-token prompt is never a single row, and a chunk never
// leaves a single trailing row for the next step (it absorbs it instead).
// Single-row launches take the attention engine's flat decode kernel, whose
// float path differs from the streaming prefill kernel; the rules keep every
// prompt row of a chunked prefill on the same kernel a whole-prompt prefill
// would use, which is what makes chunked generation bit-identical to
// `generate()` under deterministic rounding (docs/serving.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "kvcache/block_allocator.h"
#include "serving/request.h"

namespace hack {

class KvTierManager;

struct SchedulerConfig {
  // Max sequences holding KV concurrently (admitted but unfinished).
  std::size_t max_active = 8;
  // Per-step cap on prompt rows ingested (one sequence's chunk); the policy
  // above may stretch a chunk by one row to avoid a 1-row remainder.
  std::size_t prefill_chunk_tokens = 128;
  // KV accounting granularity: tokens per block when reserving from the
  // allocator. One sequence's worst case is ceil((prompt + max_new) /
  // block_tokens) blocks.
  std::size_t block_tokens = 16;
  // Admission keeps at least this many blocks free after a reservation —
  // headroom the engine never hands out (e.g. for bursts on a shared pool).
  // FCFS mode only: tiered step planning charges the whole pool (pressure
  // is resolved by eviction, not by refusing to plan).
  std::size_t free_block_floor = 0;

  // --- Tiered KV memory (docs/serving.md, "Tiered KV memory") ---
  // Replaces worst-case FCFS reservation with reserve-on-append +
  // evict-lowest-priority preemption against a KvTierManager: admission is
  // slots-only (a request just has to fit the pool *alone*), blocks are
  // charged as tokens append, and under pressure whole sequences swap to
  // the compressed far tier as kv_wire blobs.
  bool tiered = false;
  // Starvation boost: a sequence that sat unscheduled for preempt_stall_limit
  // consecutive planned steps outranks everything else (most-starved first),
  // preempting residents quantum-style. Off = run residents to completion
  // and admit swapped sequences only as blocks free up.
  bool preemption = true;
  std::size_t preempt_stall_limit = 8;
  // Speculative prefetch: the engine re-plans on the projected post-step
  // state and starts deserializing predicted resumes on a background thread
  // so the next step's swap-ins overlap this step's compute. Timing-only —
  // hit or miss, the restored bytes are identical.
  bool prefetch = true;
};

inline constexpr std::size_t kNoSequence = static_cast<std::size_t>(-1);

// One engine iteration's work assignment, as indices into the engine's
// running-sequence list.
struct StepPlan {
  std::vector<std::size_t> decode;       // sequences decoding one token
  std::size_t prefill = kNoSequence;     // sequence getting a prompt chunk
  std::size_t prefill_begin = 0;         // prompt row range [begin, end)
  std::size_t prefill_end = 0;
  bool empty() const { return decode.empty() && prefill == kNoSequence; }
};

// One tiered iteration: the compute plan plus the tier transitions that must
// happen before it (resume swapped runners, evict displaced residents).
// Both lists are in deterministic priority order — evict is
// lowest-priority-first, resume follows the schedule order.
struct TieredStepPlan {
  StepPlan step;
  std::vector<std::size_t> resume;  // kSwapped sequences scheduled this step
  std::vector<std::size_t> evict;   // residents displaced to the far tier
};

class Scheduler {
 public:
  // What the scheduler needs to know about one running sequence.
  struct SeqView {
    RequestState state = RequestState::kQueued;
    std::size_t prompt_len = 0;
    std::size_t prefill_done = 0;
  };

  // The tiered planner's view: everything the priority function reads.
  // Deliberately no wall-clock field — priority is a pure function of
  // phase, age (admission ordinal + stall count), and remaining budget, so
  // the same submissions replay to the same evict/resume schedule bitwise.
  struct TieredSeqView {
    RequestState state = RequestState::kQueued;  // kPrefill/kDecoding/kSwapped
    RequestState resume_state = RequestState::kPrefill;  // phase if kSwapped
    std::size_t prompt_len = 0;
    std::size_t prefill_done = 0;
    std::size_t tokens = 0;       // KV rows currently held (hot or far)
    std::size_t generated = 0;
    std::size_t max_new = 0;
    std::size_t stall_steps = 0;  // consecutive planned steps left unscheduled
    std::size_t ordinal = 0;      // admission order (age tiebreak)
  };

  explicit Scheduler(const SchedulerConfig& config);

  const SchedulerConfig& config() const { return config_; }

  // Plans one iteration over the running sequences (engine order): every
  // kDecoding sequence decodes; the first kPrefill sequence gets the next
  // chunk of its prompt.
  StepPlan plan(std::span<const SeqView> running) const;

  // Tiered iteration plan: greedily schedules sequences in priority order
  // against a `pool_blocks` budget (each runner charges its post-step
  // footprint ceil((tokens + rows) / block_tokens); the top-priority
  // candidate is always scheduled — admission guarantees it fits the pool
  // alone). Unscheduled residents keep their blocks while budget remains,
  // in priority order; the rest are evicted (lowest priority first).
  //
  // Priority (descending): starved sequences first (stall_steps >=
  // preempt_stall_limit, most-starved first — the preemption quantum that
  // makes thrash round-robin instead of starving), then residents over
  // swapped (avoid gratuitous churn), then decode over prefill, then
  // shortest-remaining-work, then admission order. The comparator is
  // exposed as tiered_priority_before for tests.
  TieredStepPlan plan_tiered(std::span<const TieredSeqView> running,
                             std::size_t pool_blocks) const;

  // True when `a` outranks `b` under the tiered priority function.
  bool tiered_priority_before(const TieredSeqView& a,
                              const TieredSeqView& b) const;

  // The next chunk [begin, end) of a prompt, honoring the chunk policy.
  std::size_t chunk_end(std::size_t begin, std::size_t prompt_len) const;

  // Worst-case KV block reservation for a request.
  std::size_t blocks_needed(const ServingRequest& request) const;

  // Whether a request may be admitted now: a running-batch slot is open and
  // the reservation fits without dipping below the free-block floor.
  // `allocator` may be null (no KV accounting — admission is slots-only).
  bool can_admit(const ServingRequest& request, std::size_t running_count,
                 const BlockAllocator* allocator) const;

  // Whether a request could EVER be admitted (fits an empty pool). False
  // means reject outright rather than queue forever.
  bool can_ever_admit(const ServingRequest& request,
                      const BlockAllocator* allocator) const;

  // Tiered admission routes through the tier manager's capacity model: the
  // request only has to fit the pool *alone* (worst case <= pool blocks) —
  // residents around it can be evicted, and the free-block floor does not
  // apply. The FCFS overload above keeps `need + floor <= num_blocks`,
  // which under-admits exactly the requests tiering can hold (regression
  // pinned in tests/test_kv_tiering.cpp). `tier` may be null (slots-only).
  bool can_ever_admit(const ServingRequest& request,
                      const KvTierManager* tier) const;

 private:
  SchedulerConfig config_;
};

}  // namespace hack
