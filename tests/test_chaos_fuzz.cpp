// Seeded randomized chaos fuzz over the fleet engine.
//
// Fifty derived (fault config × kill schedule × fleet shape) combinations,
// each run twice, pinning the robustness contract corpus-wide instead of on
// hand-picked schedules:
//
//   Replay       same seed + same kill schedule ⇒ bitwise-identical token
//                streams, routes, retry counts, backoff draws, and
//                checkpoint/resume/migration counters across the two runs.
//   Bit-identity every request that completes (wire path or local fallback)
//                produces the token stream of the fault-free single-pair
//                engine, regardless of which replicas it bounced across.
//   Ledger       the report's drop/corruption counters equal the summed
//                per-link FaultModel injection ledgers exactly — no fault is
//                double-counted or silently absorbed, checkpoint traffic
//                included.
//
// Determinism scaffolding: the fate streams are ordinal-keyed (a chunk's
// fate depends on how many chunks the link has seen, not on wall-clock
// timing), so probabilistic drops and corruption replay exactly. Link-down
// windows are time-keyed — measured compute shifts whether a transfer lands
// inside one — so the fuzzer leaves them off; the scheduled-window chaos leg
// lives in tests/test_fleet.cpp where the schedule is pinned. Down cooldowns
// are infinite for the same reason (recovery time would depend on measured
// compute).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "model/tiny_transformer.h"
#include "serving/disagg.h"
#include "serving/fleet.h"
#include "workload/corpus.h"

namespace hack {
namespace {

std::shared_ptr<const TinyModelWeights> small_weights() {
  TinyConfig tc;
  tc.vocab = 64;
  tc.layers = 2;
  tc.heads = 4;
  tc.kv_heads = 2;
  tc.d_head = 32;
  tc.d_ff = 128;
  return make_tiny_weights(tc);
}

struct FuzzCase {
  FleetConfig fc;
  std::vector<ServingRequest> requests;
  // Kill schedule: start-of-decode crashes, a mid-decode crash (armed on
  // every decode replica so it fires wherever the request lands), and
  // prefill crashes.
  std::size_t decode_kill_request = SIZE_MAX;
  std::size_t decode_kill_worker = 0;
  std::size_t mid_kill_request = SIZE_MAX;
  std::size_t mid_kill_token = 0;
  std::size_t prefill_kill_request = SIZE_MAX;
  std::size_t prefill_kill_worker = 0;
};

FuzzCase derive_case(std::uint64_t case_id) {
  Rng rng(0xF0220000u + case_id * 0x9E3779B97F4A7C15ULL);
  FuzzCase c;

  DisaggConfig dc;
  dc.attn.pi = 32;
  const int kv_bits_options[] = {2, 4, 8};
  dc.attn.kv_bits = kv_bits_options[rng.next_below(3)];
  dc.attn.summation_elimination = rng.next_below(2) == 0;
  dc.attn.requant_elimination = rng.next_below(2) == 0;
  const std::size_t chunk_options[] = {2048, 4096, 16384};
  dc.transfer_chunk_bytes = chunk_options[rng.next_below(3)];
  dc.checkpoint_every_tokens = 2 + rng.next_below(3);  // 2..4
  const double drop_options[] = {0.0, 0.05, 0.15};
  const double corrupt_options[] = {0.0, 0.01, 0.05};
  dc.transfer_faults.chunk_drop_prob = drop_options[rng.next_below(3)];
  dc.transfer_faults.chunk_corrupt_prob = corrupt_options[rng.next_below(3)];
  dc.transfer_faults.seed = 0xC0DE + case_id;
  dc.retry.max_retries = 16;

  c.fc.worker = dc;
  c.fc.prefill_workers = 1 + rng.next_below(2);  // 1..2
  c.fc.decode_workers = 1 + rng.next_below(3);   // 1..3
  c.fc.prefill_policy = &dispatch_round_robin;
  c.fc.decode_policy = &dispatch_round_robin;
  c.fc.health.down_cooldown_s = 1e9;  // time-free routing: down stays down

  const std::size_t n_requests = 3 + rng.next_below(2);  // 3..4
  SyntheticCorpus corpus({.vocab = 64}, 0x5EED + case_id);
  for (std::size_t i = 0; i < n_requests; ++i) {
    ServingRequest r;
    r.prompt = corpus.prompt(i, 30 + rng.next_below(21));  // 30..50 tokens
    r.max_new_tokens = 5 + rng.next_below(4);              // 5..8
    r.arrival_time_s = 0.01 * static_cast<double>(i);
    c.requests.push_back(std::move(r));
  }

  if (rng.next_below(2) == 0) {
    c.decode_kill_request = rng.next_below(n_requests);
    c.decode_kill_worker = rng.next_below(c.fc.decode_workers);
  }
  if (rng.next_below(2) == 0) {
    c.mid_kill_request = rng.next_below(n_requests);
    c.mid_kill_token = 2 + rng.next_below(4);  // 2..5
  }
  if (rng.next_below(3) == 0) {
    c.prefill_kill_request = rng.next_below(n_requests);
    c.prefill_kill_worker = rng.next_below(c.fc.prefill_workers);
  }
  return c;
}

struct Episode {
  FleetReport report;
  FaultStats ledger;
};

Episode run_case(const std::shared_ptr<const TinyModelWeights>& weights,
                 const FuzzCase& c) {
  FleetEngine engine(weights, c.fc);
  if (c.decode_kill_request != SIZE_MAX) {
    engine.decode_worker(c.decode_kill_worker)
        .inject_crash(c.decode_kill_request);
  }
  if (c.mid_kill_request != SIZE_MAX) {
    for (std::size_t j = 0; j < c.fc.decode_workers; ++j) {
      engine.decode_worker(j).inject_crash_at_token(c.mid_kill_request,
                                                    c.mid_kill_token);
    }
  }
  if (c.prefill_kill_request != SIZE_MAX) {
    engine.prefill_worker(c.prefill_kill_worker)
        .inject_crash(c.prefill_kill_request);
  }
  Episode e;
  e.report = engine.run(c.requests);
  e.ledger = engine.fault_ledger();
  return e;
}

TEST(ChaosFuzz, FiftySeededEpisodesReplayExactlyAndStayBitIdentical) {
  const auto weights = small_weights();
  // Corpus-wide non-vacuousness: the derived schedules must actually
  // exercise every fault class and the checkpoint/resume machinery.
  std::size_t total_drops = 0;
  std::size_t total_corruptions = 0;
  std::size_t total_crashes = 0;
  std::size_t total_resumes = 0;
  std::size_t total_checkpoints = 0;
  std::size_t total_completed = 0;

  for (std::uint64_t case_id = 0; case_id < 50; ++case_id) {
    SCOPED_TRACE(testing::Message() << "fuzz case " << case_id);
    const FuzzCase c = derive_case(case_id);

    // The contract's reference: the fault-free single-pair engine with the
    // same worker config (checkpoint cadence off — cadence must not change
    // tokens either).
    DisaggConfig clean = c.fc.worker;
    clean.transfer_faults = {};
    clean.checkpoint_every_tokens = 0;
    DisaggEngine reference(weights, clean);
    const DisaggReport ref = reference.run(c.requests);

    const Episode a = run_case(weights, c);
    const Episode b = run_case(weights, c);

    // ---- Replay: the two runs are bitwise-identical. ----
    ASSERT_EQ(a.report.requests.size(), b.report.requests.size());
    for (std::size_t i = 0; i < a.report.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      const FleetRecord& ra = a.report.requests[i];
      const FleetRecord& rb = b.report.requests[i];
      EXPECT_EQ(ra.prefill_route, rb.prefill_route);
      EXPECT_EQ(ra.decode_route, rb.decode_route);
      EXPECT_EQ(ra.d.generated, rb.d.generated);
      EXPECT_EQ(ra.d.retries, rb.d.retries);
      EXPECT_EQ(ra.d.backoff_s, rb.d.backoff_s);  // bitwise jitter replay
      EXPECT_EQ(ra.d.checkpoints, rb.d.checkpoints);
      EXPECT_EQ(ra.d.checkpoint_bytes, rb.d.checkpoint_bytes);
      EXPECT_EQ(ra.d.resumes, rb.d.resumes);
      EXPECT_EQ(ra.d.tokens_replayed, rb.d.tokens_replayed);
      EXPECT_EQ(ra.d.tokens_recomputed, rb.d.tokens_recomputed);
      EXPECT_EQ(ra.migrations, rb.migrations);
      EXPECT_EQ(ra.drains, rb.drains);
      EXPECT_EQ(ra.shed, rb.shed);
      EXPECT_EQ(ra.d.rejected, rb.d.rejected);
      EXPECT_EQ(ra.d.fallback_local, rb.d.fallback_local);
    }
    EXPECT_EQ(a.report.reroutes_total, b.report.reroutes_total);
    EXPECT_EQ(a.report.re_prefills_total, b.report.re_prefills_total);
    EXPECT_EQ(a.report.chunks_dropped_total, b.report.chunks_dropped_total);
    EXPECT_EQ(a.report.chunks_corrupted_total,
              b.report.chunks_corrupted_total);
    EXPECT_EQ(a.report.crc_failures_total, b.report.crc_failures_total);
    EXPECT_EQ(a.report.checkpoints_total, b.report.checkpoints_total);
    EXPECT_EQ(a.report.checkpoint_failures_total,
              b.report.checkpoint_failures_total);
    EXPECT_EQ(a.report.resumes_total, b.report.resumes_total);
    EXPECT_EQ(a.report.migrations_total, b.report.migrations_total);
    EXPECT_EQ(a.report.drain_events_total, b.report.drain_events_total);
    EXPECT_EQ(a.report.health_transitions_total,
              b.report.health_transitions_total);

    // ---- Ledger: report counters equal the injected ground truth. ----
    EXPECT_EQ(a.report.chunks_dropped_total, a.ledger.drops);
    EXPECT_EQ(a.report.chunks_corrupted_total, a.ledger.corruptions);
    EXPECT_EQ(a.ledger.down_delays, 0u);  // no windows in the fuzz corpus

    // ---- Bit-identity: every completed request matches the reference. ----
    for (std::size_t i = 0; i < a.report.requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      const FleetRecord& rec = a.report.requests[i];
      if (rec.d.rejected) continue;  // budget genuinely exhausted
      EXPECT_EQ(rec.d.generated, ref.requests[i].generated);
      ++total_completed;
    }
    // The decode-crash headline holds corpus-wide.
    EXPECT_EQ(a.report.re_prefills_from_decode_crashes, 0u);

    total_drops += a.ledger.drops;
    total_corruptions += a.ledger.corruptions;
    total_crashes +=
        a.report.decode_crashes_total + a.report.prefill_crashes_total;
    total_resumes += a.report.resumes_total;
    total_checkpoints += a.report.checkpoints_total;
  }

  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_corruptions, 0u);
  EXPECT_GT(total_crashes, 0u);
  EXPECT_GT(total_resumes, 0u);
  EXPECT_GT(total_checkpoints, 0u);
  EXPECT_GT(total_completed, 0u);
}

}  // namespace
}  // namespace hack
