// Summary statistics over sample vectors.
#pragma once

#include <vector>

namespace hack {

struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

SampleStats compute_stats(std::vector<double> samples);

// Percentile with linear interpolation; q in [0, 1].
double percentile(std::vector<double> samples, double q);

}  // namespace hack
