// Shared model weights + per-request model sessions.
//
// A serving instance loads one set of transformer weights and runs many
// concurrent requests over it. The seed model (`TinyTransformer`) fused the
// two: every instance owned a private weight copy and a monolithic `forward`
// that ran a whole token batch through every layer, so weights were
// duplicated per request and a scheduler had no seam to interleave requests
// at layer granularity. This header splits the model along that seam:
//
//   - TinyModelWeights: the immutable parameter set (embeddings, per-layer
//     projections, norms). Constructed once, shared by any number of
//     sessions via shared_ptr — one copy serves N concurrent requests.
//   - TinyModelSession: everything one request owns — its per-layer KV
//     backends and its position on the timeline — plus a per-layer stepping
//     API. `forward_layer(layer, x, start_pos)` advances a chunk of hidden
//     states through one layer; the serving engine instead calls the split
//     halves (`project_and_append`, then attend, then `finish_layer`) so the
//     attention of many sequences can fuse into one batched launch.
//
// The per-layer KV backend interfaces (HeadBackend / LayerBackend) and their
// factories live here too: a session is exactly "position + one LayerBackend
// per layer", and the backends are what a session instantiates per request.
//
// `TinyTransformer` (model/tiny_transformer.h) remains as a thin
// weights-plus-one-session wrapper with the original prefill/decode/generate
// API.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "attention/dequant_attention.h"
#include "attention/hack_attention.h"
#include "codec/codec.h"
#include "quant/minifloat.h"
#include "tensor/matrix.h"

namespace hack {

class HackLayerKvState;

// One KV head's cache + attention kernel. With grouped-query attention a
// single backend serves every query head in its group: the model appends the
// group's K/V once, then attends once per query head.
class HeadBackend {
 public:
  virtual ~HeadBackend() = default;

  // Appends new tokens' K/V rows ([n, d_head] each) to the cache.
  virtual void append(const Matrix& k_new, const Matrix& v_new) = 0;

  // Causal attention of q over all cached tokens; `key_offset` is the
  // timeline index of q's first row.
  virtual Matrix attend(const Matrix& q, std::size_t key_offset) = 0;

  // Bytes the cache occupies in its stored (possibly compressed) form.
  virtual std::size_t stored_bytes() const = 0;
};

using BackendFactory =
    std::function<std::unique_ptr<HeadBackend>(std::size_t d_head)>;

// All KV heads of one transformer layer behind one interface. The model
// appends a layer's K/V once ([n, kv_heads * d_head] slabs) and attends all
// query heads in one call ([n, heads * d_head] in, same shape out) — which
// lets the HACK backend run the batched multi-head engine
// (attention/layer_attention.h) instead of a per-head loop.
class LayerBackend {
 public:
  virtual ~LayerBackend() = default;

  // Appends new tokens' K/V rows for every KV head.
  virtual void append(const Matrix& k_all, const Matrix& v_all) = 0;

  // Causal attention of all query heads over the cached tokens; `key_offset`
  // is the timeline index of q_all's first row.
  virtual Matrix attend(const Matrix& q_all, std::size_t key_offset) = 0;

  // Bytes this layer's caches occupy in stored (possibly compressed) form.
  virtual std::size_t stored_bytes() const = 0;

  // The batched HACK layer state behind this backend, when there is one.
  // The serving engine uses it to fuse the attends of many sequences into a
  // single multi-sequence launch (MultiAttendBatch in
  // attention/layer_attention.h). Null for per-head adapted backends.
  virtual HackLayerKvState* hack_state() { return nullptr; }
};

using LayerBackendFactory = std::function<std::unique_ptr<LayerBackend>(
    std::size_t d_head, std::size_t kv_heads, std::size_t query_heads)>;

// Factories for each method. Stochastic backends fork deterministic RNG
// streams from `seed`.
BackendFactory make_exact_backend();
BackendFactory make_fp16_backend();
BackendFactory make_hack_backend(HackAttentionConfig config,
                                 std::uint64_t seed);
BackendFactory make_codec_backend(std::shared_ptr<const KvCodec> codec,
                                  std::uint64_t seed);
BackendFactory make_minifloat_backend(MiniFloatFormat format);

// Adapts a per-head factory into a layer backend that loops KV heads on
// append and query heads on attend — the pre-batching model behavior, still
// used by every non-HACK method.
LayerBackendFactory per_head_layer_factory(BackendFactory factory);

// Native batched HACK layer backend over HackLayerKvState: one quantize pass
// and fused head-parallel HQ-GEMM launches per layer. Seeded so that KV head
// h of layer l draws the same stream as the per-head backend
// make_hack_backend(config, seed) would give it — generation is
// bit-identical between the two, the batched path just runs wider.
LayerBackendFactory make_hack_layer_backend(HackAttentionConfig config,
                                            std::uint64_t seed);

struct TinyConfig {
  std::size_t vocab = 256;   // byte-level tokens
  std::size_t layers = 2;
  std::size_t heads = 4;
  std::size_t kv_heads = 2;  // GQA: heads % kv_heads == 0
  std::size_t d_head = 64;
  std::size_t d_ff = 512;
  float rope_base = 10000.0f;
  std::uint64_t weight_seed = 0x7acc5eedULL;

  std::size_t d_model() const { return heads * d_head; }
};

// The immutable parameter set of the tiny transformer: token embeddings
// (tied LM head), per-layer attention/SwiGLU projections, norm gains.
// Weights are a deterministic function of config.weight_seed. One instance
// is shared read-only by every concurrent session; nothing here mutates
// after construction.
class TinyModelWeights {
 public:
  struct LayerWeights {
    Matrix wq, wk, wv, wo;          // attention projections
    Matrix w_gate, w_up, w_down;    // SwiGLU
    std::vector<float> norm_attn;   // RMSNorm gains
    std::vector<float> norm_mlp;
  };

  explicit TinyModelWeights(const TinyConfig& config);

  const TinyConfig& config() const { return config_; }
  const LayerWeights& layer(std::size_t i) const { return layers_[i]; }

  // Embedding rows for a token batch.
  Matrix embed(const std::vector<int>& tokens) const;

  // Final RMSNorm + tied LM head over one hidden row.
  std::vector<float> logits(std::span<const float> hidden_row) const;

  // Batched LM head: one [rows × d] · [d × vocab] launch over the tied
  // embedding for several sequences' final hidden rows. Row r of the result
  // is bit-identical to logits(hidden.row(r)) — same rms_norm, same
  // per-element accumulation order — the batching only hoists the vocab
  // sweep so M emitting lanes read the embedding matrix once per step
  // instead of M times. `threads` follows the library convention (0 = auto
  // on the shared pool, 1 = serial, N = at most N chunks of vocab rows).
  Matrix logits_batch(const Matrix& hidden, int threads = 0) const;

  // In-place RoPE over the leading `head_count` heads of x, positions
  // starting at start_pos.
  void apply_rope(Matrix& x, std::size_t head_count,
                  std::size_t start_pos) const;

  // Parameter bytes (FP32) — the per-instance memory a shared weight set
  // amortizes across sessions.
  std::size_t weight_bytes() const;

 private:
  TinyConfig config_;
  Matrix embedding_;  // vocab x d_model (tied LM head)
  std::vector<LayerWeights> layers_;
  std::vector<float> norm_final_;
};

std::shared_ptr<const TinyModelWeights> make_tiny_weights(
    const TinyConfig& config);

// Greedy decoding's token choice: first index of the maximum logit. Shared
// by TinyTransformer::generate and the serving engine so both pick the same
// token on exact ties.
int argmax_logits(std::span<const float> logits);

// One request's model state: a per-layer KV backend stack plus the position
// of the next token on the timeline. Sessions are cheap relative to weights
// (they own only KV state) and every session holds the same shared
// TinyModelWeights.
//
// Stepping contract: a chunk of `n` rows starting at position() is run
// through layers 0..L-1 (forward_layer, or the split
// project_and_append / attend / finish_layer), then advance(n) commits the
// chunk. All layers of one chunk see the same start position.
class TinyModelSession {
 public:
  TinyModelSession(std::shared_ptr<const TinyModelWeights> weights,
                   const LayerBackendFactory& factory);

  const TinyModelWeights& weights() const { return *weights_; }
  const std::shared_ptr<const TinyModelWeights>& weights_ptr() const {
    return weights_;
  }
  const TinyConfig& config() const { return weights_->config(); }
  std::size_t position() const { return position_; }
  std::size_t layers() const { return backends_.size(); }
  LayerBackend& backend(std::size_t layer) { return *backends_[layer]; }

  // Phase A of one layer over hidden rows x ([n, d_model]) at start_pos
  // (== position()): pre-norm, Q/K/V projections, RoPE, KV append. Returns
  // the rotated Q slab ([n, heads * d_head]); x is untouched.
  Matrix project_and_append(std::size_t layer, const Matrix& x,
                            std::size_t start_pos);

  // Phase B: folds the attention output back into x (Wo + residual) and
  // runs the SwiGLU MLP (+ residual). Consumes and returns the hidden state.
  Matrix finish_layer(std::size_t layer, Matrix x,
                      const Matrix& attn_out) const;

  // Phase A + this session's own backend attend + phase B.
  Matrix forward_layer(std::size_t layer, const Matrix& x,
                       std::size_t start_pos);

  // Runs a token chunk through the whole stack at the current position and
  // commits it: embed → forward_layer per layer → advance. Returns the final
  // hidden states. TinyTransformer::forward and the disaggregated workers
  // (serving/disagg.h) share this one implementation, which is what keeps
  // their per-layer call sequences — and thus their stochastic quantizer
  // draws — identical across the worker boundary.
  Matrix forward_rows(const std::vector<int>& tokens);

  // Commits a chunk: position() += rows.
  void advance(std::size_t rows);

  // Rehydration hook for the disaggregated handoff (kvcache/kv_wire.h): a
  // fresh decode-side session imports the prefill instance's per-layer KV
  // state, then jumps its timeline position here. Only a fresh session may
  // jump; a used one would desynchronize from its backends.
  void restore_position(std::size_t position);

  // Final norm + tied LM head for row `row` of a hidden-state chunk.
  std::vector<float> logits_for_row(const Matrix& hidden,
                                    std::size_t row) const;

  // Total stored KV bytes across all layers.
  std::size_t kv_stored_bytes() const;

 private:
  std::shared_ptr<const TinyModelWeights> weights_;
  std::vector<std::unique_ptr<LayerBackend>> backends_;  // one per layer
  std::size_t position_ = 0;
};

}  // namespace hack
