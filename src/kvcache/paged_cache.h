// Paged FP16 KV cache — the baseline decode-instance cache structure.
//
// One logical cache serves one (layer, head) pair; the model owns a grid of
// them. Tokens map to (block, slot) through a per-sequence block table; data
// lives in FP16 (stored as raw binary16 bits). Forking a sequence shares its
// full blocks copy-on-write, modeling prefix KV sharing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kvcache/block_allocator.h"
#include "tensor/matrix.h"

namespace hack {

using SeqId = std::uint64_t;

class PagedKvCache {
 public:
  // block_tokens: tokens per block. Block bytes = tokens * d_head * 2 (K+V)
  // * 2 (FP16).
  PagedKvCache(BlockAllocator& allocator, std::size_t d_head,
               std::size_t block_tokens);

  static std::size_t block_bytes_for(std::size_t d_head,
                                     std::size_t block_tokens) {
    return block_tokens * d_head * 2 * 2;
  }

  std::size_t d_head() const { return d_head_; }
  std::size_t block_tokens() const { return block_tokens_; }

  bool has_sequence(SeqId seq) const { return tables_.contains(seq); }
  std::size_t tokens(SeqId seq) const;

  // Appends K/V rows ([n, d_head] each) for `seq`, allocating blocks as
  // needed. Returns false (and rolls back; the sequence is untouched) if the
  // pool cannot cover the append — including the copy-on-write copies a
  // forked sequence's shared blocks would need, which the preflight counts so
  // exhaustion can never strike mid-write.
  bool append(SeqId seq, const Matrix& k_new, const Matrix& v_new);

  // Cumulative append() calls refused for lack of free blocks (each one a
  // clean rollback the scheduler's admission control should have prevented).
  std::size_t oom_appends() const { return oom_appends_; }

  // Cumulative copy-on-write block copies (a fork wrote into a shared block).
  std::size_t cow_copies() const { return cow_copies_; }

  // Reconstructs the sequence's K (or V) as an [tokens, d_head] matrix.
  Matrix gather_k(SeqId seq) const;
  Matrix gather_v(SeqId seq) const;

  // Shares all of src's blocks with a new sequence id (copy-on-write refs).
  void fork(SeqId src, SeqId dst);

  // Releases every block held by the sequence.
  void drop(SeqId seq);

  std::size_t blocks_held(SeqId seq) const;

 private:
  struct Table {
    std::vector<BlockId> blocks;
    std::size_t tokens = 0;
    // Block index below which blocks may be shared with a fork; writing into
    // a shared block triggers copy-on-write.
    bool forked = false;
  };

  float read(BlockId block, std::size_t slot, std::size_t col, bool v) const;
  void write(BlockId block, std::size_t slot, std::size_t col, bool v,
             float value);
  // Ensures the block holding `block_idx` is uniquely owned; copies if shared.
  void make_unique(Table& table, std::size_t block_idx);

  BlockAllocator& allocator_;
  std::size_t d_head_;
  std::size_t block_tokens_;
  std::size_t oom_appends_ = 0;
  std::size_t cow_copies_ = 0;
  std::unordered_map<SeqId, Table> tables_;
  // Backing storage for every block in the pool, FP16 bits.
  std::vector<std::vector<std::uint16_t>> storage_;
};

}  // namespace hack
