#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "base/thread_pool.h"

namespace hack {
namespace {

// MAC count above which a dense matmul fans its output rows out over the
// shared pool. Every output row is computed by the same serial inner code
// whatever the row partitioning, so the threaded result is bit-identical to
// the serial one; below the threshold the dispatch overhead dominates (and
// single-row products — the decode path — never split).
inline constexpr std::size_t kParallelMatmulMinMacs = std::size_t{1} << 21;

// Runs fn(i) for every output row, pool-parallel when the product is large
// enough. Nested calls (e.g. from a per-sequence serving-engine task) run
// inline on the caller via the pool's re-entrancy guard.
void for_each_row(std::size_t m, std::size_t macs,
                  const std::function<void(std::size_t)>& fn) {
  if (m <= 1 || macs < kParallelMatmulMinMacs) {
    for (std::size_t i = 0; i < m; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for(
      m, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.cols() == b.rows(), "matmul shape mismatch: " << a.rows() << "x"
                                   << a.cols() << " * " << b.rows() << "x"
                                   << b.cols());
  const std::size_t m = a.rows(), z = a.cols(), n = b.cols();
  Matrix c(m, n);
  // ikj loop order keeps the B row contiguous in the inner loop.
  for_each_row(m, m * z * n, [&](std::size_t i) {
    for (std::size_t k = 0; k < z; ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.cols() == b.cols(), "matmul_nt inner dim mismatch: "
                                   << a.cols() << " vs " << b.cols());
  const std::size_t m = a.rows(), z = a.cols(), n = b.rows();
  Matrix c(m, n);
  for_each_row(m, m * z * n, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < z; ++k) {
        acc += a(i, k) * b(j, k);
      }
      c(i, j) = acc;
    }
  });
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

Matrix softmax_rows(const Matrix& scores) {
  Matrix p(scores.rows(), scores.cols());
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const auto row = scores.row(i);
    const float row_max = *std::max_element(row.begin(), row.end());
    float denom = 0.0f;
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      const float e = std::exp(scores(i, j) - row_max);
      p(i, j) = e;
      denom += e;
    }
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      p(i, j) /= denom;
    }
  }
  return p;
}

Matrix softmax_rows_causal(const Matrix& scores, std::size_t key_offset) {
  Matrix p(scores.rows(), scores.cols(), 0.0f);
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const std::size_t valid = std::min(scores.cols(), key_offset + i + 1);
    HACK_CHECK(valid > 0, "causal row with no visible keys");
    float row_max = scores(i, 0);
    for (std::size_t j = 1; j < valid; ++j) {
      row_max = std::max(row_max, scores(i, j));
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < valid; ++j) {
      const float e = std::exp(scores(i, j) - row_max);
      p(i, j) = e;
      denom += e;
    }
    for (std::size_t j = 0; j < valid; ++j) {
      p(i, j) /= denom;
    }
  }
  return p;
}

Matrix add(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "add shape mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.flat()[i] = a.flat()[i] + b.flat()[i];
  }
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  HACK_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "sub shape mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.flat()[i] = a.flat()[i] - b.flat()[i];
  }
  return c;
}

Matrix scale(const Matrix& a, float alpha) {
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    c.flat()[i] = alpha * a.flat()[i];
  }
  return c;
}

Matrix vstack(const Matrix& base, const Matrix& extra) {
  if (base.empty()) return extra;
  HACK_CHECK(base.cols() == extra.cols(), "vstack column mismatch");
  Matrix c(base.rows() + extra.rows(), base.cols());
  std::copy(base.flat().begin(), base.flat().end(), c.flat().begin());
  std::copy(extra.flat().begin(), extra.flat().end(),
            c.flat().begin() + static_cast<std::ptrdiff_t>(base.size()));
  return c;
}

Matrix take_rows(const Matrix& a, std::size_t begin, std::size_t end) {
  HACK_CHECK(begin <= end && end <= a.rows(), "take_rows range invalid");
  Matrix c(end - begin, a.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const auto src = a.row(i);
    std::copy(src.begin(), src.end(), c.row(i - begin).begin());
  }
  return c;
}

Matrix take_cols(const Matrix& a, std::size_t begin, std::size_t end) {
  HACK_CHECK(begin <= end && end <= a.cols(), "take_cols range invalid");
  Matrix c(a.rows(), end - begin);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = begin; j < end; ++j) {
      c(i, j - begin) = a(i, j);
    }
  }
  return c;
}

}  // namespace hack
