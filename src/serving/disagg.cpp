#include "serving/disagg.h"

#include <algorithm>
#include <chrono>

#include "netsim/transfer.h"
#include "serving/scheduler.h"

namespace hack {
namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

PrefillWorker::PrefillWorker(std::shared_ptr<const TinyModelWeights> weights,
                             const DisaggConfig& config)
    : weights_(std::move(weights)), config_(config),
      nic_(config.prefill_nic_gbps) {}

PrefillWorker::Result PrefillWorker::prefill(const ServingRequest& request) {
  HACK_CHECK(!request.prompt.empty(), "prefill needs a non-empty prompt");
  TinyModelSession session(
      weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));

  Result result;
  const auto compute_start = std::chrono::steady_clock::now();
  SchedulerConfig chunk_cfg;
  chunk_cfg.prefill_chunk_tokens = config_.prefill_chunk_tokens == 0
                                       ? request.prompt.size()
                                       : config_.prefill_chunk_tokens;
  const Scheduler chunker(chunk_cfg);
  std::vector<float> last_logits;
  std::size_t begin = 0;
  while (begin < request.prompt.size()) {
    const std::size_t end = chunker.chunk_end(begin, request.prompt.size());
    const std::vector<int> chunk(request.prompt.begin() + begin,
                                 request.prompt.begin() + end);
    const Matrix hidden = session.forward_rows(chunk);
    if (end == request.prompt.size()) {
      last_logits = session.logits_for_row(hidden, hidden.rows() - 1);
    }
    ++result.prefill_chunks;
    begin = end;
  }
  result.first_token = argmax_logits(last_logits);
  result.prefill_s = seconds_since(compute_start);

  const auto serialize_start = std::chrono::steady_clock::now();
  result.blob = serialize_session_kv(session, &result.sections);
  result.serialize_s = seconds_since(serialize_start);
  return result;
}

DecodeWorker::DecodeWorker(std::shared_ptr<const TinyModelWeights> weights,
                           const DisaggConfig& config)
    : weights_(std::move(weights)), config_(config),
      nic_(config.decode_nic_gbps) {
  if (config_.decode_kv_blocks > 0) {
    // Accounting blocks sized like the serving engine's: FP16 K+V bytes of
    // block_tokens tokens across all layers and KV heads.
    const TinyConfig& c = weights_->config();
    allocator_ = std::make_unique<BlockAllocator>(
        config_.decode_kv_blocks,
        config_.block_tokens * c.kv_heads * c.d_head * 2 * 2 * c.layers);
  }
}

DecodeWorker::Result DecodeWorker::decode(std::span<const std::uint8_t> blob,
                                          int first_token,
                                          const ServingRequest& request) {
  Result result;
  const KvWireInfo info = parse_kv_wire_header(blob);

  // Worst-case block reservation, like the engine's admission control:
  // prompt tokens already in the blob plus every token we may yet append.
  std::vector<BlockId> reserved;
  if (allocator_ != nullptr) {
    const std::size_t need =
        (info.tokens + request.max_new_tokens + config_.block_tokens - 1) /
        config_.block_tokens;
    if (!allocator_->can_allocate(need)) {
      return result;  // not admitted
    }
    for (std::size_t i = 0; i < need; ++i) {
      reserved.push_back(allocator_->allocate());
    }
    result.kv_blocks = reserved.size();
  }
  result.admitted = true;

  const auto deser_start = std::chrono::steady_clock::now();
  TinyModelSession session(
      weights_, make_hack_layer_backend(config_.attn, config_.backend_seed));
  deserialize_session_kv(blob, session);
  result.deserialize_s = seconds_since(deser_start);

  // The continuation of TinyTransformer::generate after its prefill: the
  // prefill worker already took the argmax of the prompt logits, so the loop
  // below replays generate()'s decode iterations exactly — same eos/max
  // semantics, same per-step call sequence, same stochastic draws (the wire
  // restored every RNG stream).
  const auto decode_start = std::chrono::steady_clock::now();
  int token = first_token;
  for (std::size_t i = 0; i < request.max_new_tokens; ++i) {
    if (token == request.eos) break;
    result.generated.push_back(token);
    const Matrix hidden = session.forward_rows({token});
    token = argmax_logits(session.logits_for_row(hidden, hidden.rows() - 1));
  }
  result.decode_s = seconds_since(decode_start);

  for (const BlockId id : reserved) allocator_->release(id);
  return result;
}

DisaggEngine::DisaggEngine(std::shared_ptr<const TinyModelWeights> weights,
                           DisaggConfig config)
    : weights_(std::move(weights)), config_(config),
      prefill_(weights_, config_), decode_(weights_, config_) {}

DisaggReport DisaggEngine::run(std::vector<ServingRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const ServingRequest& a, const ServingRequest& b) {
              return a.arrival_time_s < b.arrival_time_s;
            });

  DisaggReport report;
  std::vector<double> ttfts, jcts;
  const TinyConfig& c = weights_->config();
  for (const ServingRequest& request : requests) {
    DisaggRecord rec;
    rec.request = request;

    // Prefill occupies its worker for the measured compute + serialize time;
    // the transfer then rides the NICs while the worker takes the next
    // prompt (the overlap the paper's pipelining discussion assumes).
    const double prefill_start =
        std::max(request.arrival_time_s, prefill_free_s_);
    PrefillWorker::Result pre = prefill_.prefill(request);
    rec.prefill_s = pre.prefill_s;
    rec.serialize_s = pre.serialize_s;
    rec.prefill_chunks = pre.prefill_chunks;
    rec.wire_bytes = pre.blob.size();
    rec.sections = pre.sections;
    rec.fp16_kv_bytes = parse_kv_wire_header(pre.blob).tokens * c.kv_heads *
                        c.d_head * 2 * 2 * c.layers;
    prefill_free_s_ = prefill_start + pre.prefill_s + pre.serialize_s;

    const TransferResult transfer = nccl_transfer(
        prefill_.nic(), decode_.nic(), prefill_free_s_,
        static_cast<double>(pre.blob.size()),
        kv_wire_transfer_chunks(pre.blob.size(), config_.transfer_chunk_bytes));
    rec.transfer_s = transfer.duration();
    report.transfer_s_total += rec.transfer_s;

    DecodeWorker::Result dec =
        decode_.decode(pre.blob, pre.first_token, request);
    rec.deserialize_s = dec.deserialize_s;
    rec.decode_s = dec.decode_s;
    rec.decode_kv_blocks = dec.kv_blocks;
    if (!dec.admitted) {
      rec.rejected = true;
      report.requests.push_back(std::move(rec));
      continue;
    }
    rec.generated = std::move(dec.generated);

    const double decode_ready =
        std::max(transfer.finish, decode_free_s_) + dec.deserialize_s;
    const double decode_end = decode_ready + dec.decode_s;
    decode_free_s_ = decode_end;
    rec.ttft_s = decode_ready - request.arrival_time_s;
    rec.jct_s = decode_end - request.arrival_time_s;
    ttfts.push_back(rec.ttft_s);
    jcts.push_back(rec.jct_s);

    report.total_generated += rec.generated.size();
    report.wire_bytes_total += rec.wire_bytes;
    report.fp16_kv_bytes_total += rec.fp16_kv_bytes;
    report.makespan_s = std::max(report.makespan_s, decode_end);
    report.requests.push_back(std::move(rec));
  }

  if (report.fp16_kv_bytes_total > 0) {
    report.wire_vs_fp16 =
        static_cast<double>(report.wire_bytes_total) /
        static_cast<double>(report.fp16_kv_bytes_total);
  }
  if (!ttfts.empty()) report.ttft_s = compute_stats(std::move(ttfts));
  if (!jcts.empty()) report.jct_s = compute_stats(std::move(jcts));
  return report;
}

DisaggRecord DisaggEngine::serve(const ServingRequest& request) {
  DisaggReport report = run({request});
  HACK_CHECK(report.requests.size() == 1, "single-request episode");
  return std::move(report.requests[0]);
}

}  // namespace hack
