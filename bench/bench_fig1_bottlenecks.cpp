// Figure 1: bottlenecks in disaggregated LLM inference (baseline, no KV
// compression).
//   (a) average time ratios vs prefill GPU   (Llama-3.1 70B, Cocktail)
//   (b) average time ratios vs model         (Cocktail / F-arXiv, A10G)
//   (c) average time ratios vs dataset       (Llama-3.1 70B, A10G)
//   (d) pipelining: comm ratio vs RPS        (Llama-3.1 70B, Cocktail)
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  {
    Table t("Fig 1a: baseline time ratios across prefill GPUs (L, Cocktail)");
    t.header({"gpu", "prefill", "comm", "decode", "avg_jct_s"});
    for (const std::string& gpu : prefill_gpus()) {
      const SimSummary s =
          run(standard_cluster(gpu, "L", "Cocktail", Method::kBaseline));
      t.row({gpu, pct(s.prefill_ratio), pct(s.comm_ratio), pct(s.decode_ratio),
             fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }

  {
    Table t("Fig 1b: baseline time ratios across models (A10G prefill)");
    t.header({"model", "prefill", "comm", "decode", "avg_jct_s"});
    for (const ModelScenario& sc : model_scenarios()) {
      const SimSummary s = run(standard_cluster(
          "A10G", sc.model_letter, sc.dataset, Method::kBaseline));
      t.row({sc.label, pct(s.prefill_ratio), pct(s.comm_ratio),
             pct(s.decode_ratio), fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }

  {
    Table t("Fig 1c: baseline time ratios across datasets (L, A10G prefill)");
    t.header({"dataset", "prefill", "comm", "decode", "kv_mem_access",
              "avg_jct_s"});
    for (const std::string& dataset : dataset_names()) {
      const SimSummary s =
          run(standard_cluster("A10G", "L", dataset, Method::kBaseline));
      t.row({dataset, pct(s.prefill_ratio), pct(s.comm_ratio),
             pct(s.decode_ratio), pct(s.kv_access_ratio), fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }

  {
    Table t("Fig 1d: pipelining, avg comm ratio vs RPS (L, Cocktail)");
    t.header({"gpu", "rps=0.06", "rps=0.10", "rps=0.14", "rps=0.18"});
    for (const std::string& gpu : prefill_gpus()) {
      std::vector<std::string> cells = {gpu};
      for (const double rps : {0.06, 0.10, 0.14, 0.18}) {
        ClusterConfig config =
            standard_cluster(gpu, "L", "Cocktail", Method::kBaseline, rps);
        config.pipelining = true;
        // Pipelining's breaking point (§2.1 case ii) is decode memory; the
        // paper's fleet saturates near RPS 0.18 — reproduce with a budget
        // matched to that operating point.
        config.activation_reserve_gb = 120.0;
        const SimSummary s = run(config);
        cells.push_back(pct(s.comm_ratio));
      }
      t.row(cells);
    }
    t.print();
  }
  return 0;
}
