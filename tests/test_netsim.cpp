#include <gtest/gtest.h>

#include "netsim/link.h"
#include "netsim/transfer.h"

namespace hack {
namespace {

constexpr double kGB = 1e9;

TEST(Nic, TransferTimeMatchesRate) {
  Nic nic(80.0, /*latency_s=*/0.0);  // 10 GB/s
  const auto booking = nic.book(0.0, 10.0 * kGB);
  EXPECT_DOUBLE_EQ(booking.start, 0.0);
  EXPECT_NEAR(booking.finish, 1.0, 1e-9);
}

TEST(Nic, LatencyAdds) {
  Nic nic(80.0, 0.001);
  const auto booking = nic.book(0.0, 0.0);
  EXPECT_NEAR(booking.finish, 0.001, 1e-12);
}

TEST(Nic, SerializesConcurrentTransfers) {
  Nic nic(80.0, 0.0);
  const auto first = nic.book(0.0, 10.0 * kGB);
  const auto second = nic.book(0.0, 10.0 * kGB);  // queued behind first
  EXPECT_NEAR(second.start, first.finish, 1e-9);
  EXPECT_NEAR(second.finish, 2.0, 1e-9);
}

TEST(Nic, IdleGapRespectsReadyTime) {
  Nic nic(80.0, 0.0);
  (void)nic.book(0.0, 10.0 * kGB);
  const auto late = nic.book(5.0, 10.0 * kGB);
  EXPECT_DOUBLE_EQ(late.start, 5.0);
}

TEST(Nic, TracksTotalBytes) {
  Nic nic(100.0, 0.0);
  (void)nic.book(0.0, 123.0);
  (void)nic.book(0.0, 877.0);
  EXPECT_DOUBLE_EQ(nic.total_bytes(), 1000.0);
}

TEST(NcclTransfer, BottleneckIsSlowerNic) {
  // 10 GB over a 10 GB/s sender into a 5 GB/s receiver: ~2s end to end
  // (+ one pipeline-fill chunk on the sender).
  Nic fast(80.0, 0.0), slow(40.0, 0.0);
  const TransferResult result = nccl_transfer(fast, slow, 0.0, 10.0 * kGB, 8);
  EXPECT_GT(result.finish, 2.0);
  EXPECT_LT(result.finish, 2.3);
}

TEST(NcclTransfer, PipeliningBeatsSerial) {
  // With chunking, total < sum of full store-and-forward times (2s + 2s).
  Nic a(40.0, 0.0), b(40.0, 0.0);
  const TransferResult result = nccl_transfer(a, b, 0.0, 10.0 * kGB, 16);
  EXPECT_LT(result.duration(), 2.5);
  EXPECT_GT(result.duration(), 2.0);  // can't beat the line rate
}

TEST(NcclTransfer, ContentionBetweenFlows) {
  // Two transfers sharing the sender NIC take twice as long in aggregate.
  Nic src(80.0, 0.0);
  Nic dst1(400.0, 0.0), dst2(400.0, 0.0);
  const TransferResult r1 = nccl_transfer(src, dst1, 0.0, 10.0 * kGB, 4);
  const TransferResult r2 = nccl_transfer(src, dst2, 0.0, 10.0 * kGB, 4);
  EXPECT_GT(r2.finish, 1.9);
  EXPECT_GT(r2.finish, r1.finish);
}

TEST(NcclTransfer, ReadyTimeDelaysStart) {
  Nic a(80.0, 0.0), b(80.0, 0.0);
  const TransferResult r = nccl_transfer(a, b, 3.0, 1.0 * kGB, 4);
  EXPECT_GE(r.start, 3.0);
  EXPECT_GT(r.finish, 3.1);
}

TEST(NcclTransfer, ZeroBytesCostsOnlyLatency) {
  Nic a(80.0, 1e-4), b(80.0, 1e-4);
  const TransferResult r = nccl_transfer(a, b, 0.0, 0.0, 2);
  EXPECT_LT(r.finish, 1e-3);
}

TEST(Nic, RejectsBadParameters) {
  EXPECT_THROW(Nic(0.0), CheckError);
  EXPECT_THROW(Nic(-5.0), CheckError);
  Nic nic(10.0);
  EXPECT_THROW(nic.book(0.0, -1.0), CheckError);
}

// ------------------------------------------------------------ transfer edges

TEST(NcclTransfer, ZeroByteTransferIsWellDefined) {
  Nic a(80.0, 1e-4), b(80.0, 1e-4);
  const FaultyTransferResult r =
      nccl_transfer_faulty(a, b, 0.0, 0.0, 2, nullptr);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.chunks.size(), 2u);
  EXPECT_LT(r.result.finish, 1e-3);  // latency only, no wire time
  EXPECT_DOUBLE_EQ(r.result.bytes, 0.0);
}

TEST(NcclTransfer, SingleChunkMatchesStoreAndForward) {
  // One chunk cannot pipeline: finish = send + receive back to back.
  Nic a(80.0, 0.0), b(80.0, 0.0);  // 10 GB/s each
  const TransferResult r = nccl_transfer(a, b, 0.0, 10.0 * kGB, 1);
  EXPECT_NEAR(r.finish, 2.0, 1e-9);
}

TEST(NcclTransfer, MoreChunksThanBytesStillDelivers) {
  // 3 bytes over 8 chunks: fractional chunk_bytes, every chunk booked.
  Nic a(80.0, 1e-6), b(80.0, 1e-6);
  const FaultyTransferResult r =
      nccl_transfer_faulty(a, b, 0.0, 3.0, 8, nullptr);
  EXPECT_EQ(r.chunks.size(), 8u);
  EXPECT_GT(r.result.finish, r.result.start);
  EXPECT_NEAR(a.total_bytes(), 3.0, 1e-9);
}

TEST(NcclTransfer, FaultFreeModelMatchesCleanTransfer) {
  // A null fault model and an inactive one both reproduce nccl_transfer's
  // timing exactly — fault injection is free when off.
  Nic a1(40.0, 1e-5), b1(40.0, 1e-5);
  Nic a2(40.0, 1e-5), b2(40.0, 1e-5);
  Nic a3(40.0, 1e-5), b3(40.0, 1e-5);
  const TransferResult clean = nccl_transfer(a1, b1, 0.5, 2.0 * kGB, 8);
  const FaultyTransferResult null_model =
      nccl_transfer_faulty(a2, b2, 0.5, 2.0 * kGB, 8, nullptr);
  FaultModel inactive;
  EXPECT_FALSE(inactive.active());
  const FaultyTransferResult off =
      nccl_transfer_faulty(a3, b3, 0.5, 2.0 * kGB, 8, &inactive);
  EXPECT_DOUBLE_EQ(null_model.result.start, clean.start);
  EXPECT_DOUBLE_EQ(null_model.result.finish, clean.finish);
  EXPECT_DOUBLE_EQ(off.result.start, clean.start);
  EXPECT_DOUBLE_EQ(off.result.finish, clean.finish);
  EXPECT_TRUE(off.clean());
  EXPECT_EQ(inactive.stats().chunks_seen, 8u);
}

TEST(NcclTransfer, ConcurrentTransfersContendDuringRetransmit) {
  // A retransmit round on flow 1 shares the sender NIC with flow 2's fresh
  // transfer: the NIC busy horizon serializes them, so the retransmit lands
  // after flow 2's booking — contention is modeled, not wished away.
  Nic src(80.0, 0.0);  // 10 GB/s shared sender
  Nic dst1(400.0, 0.0), dst2(400.0, 0.0);

  FaultModel faults;
  faults.script_fate(3, ChunkFate::kDropped);  // last chunk of flow 1 drops
  const FaultyTransferResult first =
      nccl_transfer_faulty(src, dst1, 0.0, 8.0 * kGB, 4, &faults);
  ASSERT_FALSE(first.clean());

  // Flow 2 books the shared sender before flow 1's retransmit goes out.
  const FaultyTransferResult second =
      nccl_transfer_faulty(src, dst2, 0.0, 8.0 * kGB, 4, &faults);
  const FaultyTransferResult retransmit = nccl_transfer_faulty(
      src, dst1, first.result.finish, 2.0 * kGB, 1, &faults);
  EXPECT_TRUE(retransmit.clean());
  // The sender was busy with flow 2's sends until ~1.6s (8 GB at 10 GB/s
  // after flow 1's 0.8s); the retransmit queues behind that horizon even
  // though it was ready at flow 1's 0.8s finish.
  EXPECT_NEAR(retransmit.result.start, 1.6, 1e-9);
  EXPECT_GT(retransmit.result.start, first.result.finish + 0.5);
  EXPECT_GT(second.result.finish, 1.6);  // flow 2's last receive trails
  EXPECT_NEAR(src.total_bytes(), 18.0 * kGB, 1.0);
}

// ------------------------------------------------------------- fault model

TEST(FaultModel, SameSeedReplaysSameSchedule) {
  FaultConfig cfg;
  cfg.chunk_drop_prob = 0.3;
  cfg.chunk_corrupt_prob = 0.2;
  cfg.latency_spike_prob = 0.1;
  cfg.latency_spike_s = 0.05;
  cfg.seed = 1234;
  FaultModel a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    const ChunkEvent ea = a.next_chunk();
    const ChunkEvent eb = b.next_chunk();
    EXPECT_EQ(ea.fate, eb.fate);
    EXPECT_DOUBLE_EQ(ea.spike_s, eb.spike_s);
    EXPECT_EQ(ea.corrupt_entropy, eb.corrupt_entropy);
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().corruptions, b.stats().corruptions);
  EXPECT_GT(a.stats().drops, 0u);  // 0.3 over 200 draws
  EXPECT_EQ(a.stats().chunks_seen, 200u);
}

TEST(FaultModel, ScriptedFatesOverrideWithoutShiftingTheStream) {
  FaultConfig cfg;
  cfg.chunk_drop_prob = 0.25;
  cfg.seed = 77;
  FaultModel plain(cfg);
  std::vector<ChunkFate> baseline;
  for (int i = 0; i < 50; ++i) baseline.push_back(plain.next_chunk().fate);

  FaultModel scripted(cfg);
  scripted.script_fate(10, ChunkFate::kCorrupted);
  scripted.script_fate(20, ChunkFate::kDropped);
  for (int i = 0; i < 50; ++i) {
    const ChunkEvent e = scripted.next_chunk();
    if (i == 10) {
      EXPECT_EQ(e.fate, ChunkFate::kCorrupted);
    } else if (i == 20) {
      EXPECT_EQ(e.fate, ChunkFate::kDropped);
    } else {
      // Every unscripted chunk keeps its baseline fate.
      EXPECT_EQ(e.fate, baseline[static_cast<std::size_t>(i)]) << "chunk " << i;
    }
  }
  // Scripting a chunk that was already drawn is a caller bug.
  EXPECT_THROW(scripted.script_fate(5, ChunkFate::kDropped), CheckError);
}

TEST(FaultModel, DownWindowDelaysAndLedgers) {
  FaultConfig cfg;
  cfg.down_windows = {{1.0, 1.5}};
  FaultModel faults(cfg);
  EXPECT_TRUE(faults.active());
  EXPECT_DOUBLE_EQ(faults.down_delay(0.5), 0.0);
  EXPECT_NEAR(faults.down_delay(1.2), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(faults.down_delay(1.5), 0.0);  // window is half-open
  EXPECT_EQ(faults.stats().down_delays, 1u);

  Nic a(80.0, 0.0), b(80.0, 0.0);
  const FaultyTransferResult r =
      nccl_transfer_faulty(a, b, 1.2, 1.0 * kGB, 1, &faults);
  EXPECT_GE(r.result.start, 1.5);  // waited out the window
  EXPECT_NEAR(r.fault_delay_s, 0.3, 1e-9);
}

TEST(FaultModel, DroppedChunksNeverReachTheReceiver) {
  FaultModel faults;
  for (std::size_t i = 0; i < 4; ++i) faults.script_fate(i, ChunkFate::kDropped);
  Nic a(80.0, 0.0), b(80.0, 0.0);
  const FaultyTransferResult r =
      nccl_transfer_faulty(a, b, 0.0, 4.0 * kGB, 4, &faults);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(faults.stats().drops, 4u);
  EXPECT_NEAR(a.total_bytes(), 4.0 * kGB, 1.0);  // sender burned wire time
  EXPECT_DOUBLE_EQ(b.total_bytes(), 0.0);        // receiver saw nothing
  // Finish is the last *send* when everything dropped.
  EXPECT_NEAR(r.result.finish, 0.4, 1e-9);
}

TEST(FaultModel, RejectsBadProbabilities) {
  FaultConfig cfg;
  cfg.chunk_drop_prob = 1.5;
  EXPECT_THROW(FaultModel{cfg}, CheckError);
  FaultConfig neg;
  neg.chunk_corrupt_prob = -0.1;
  EXPECT_THROW(FaultModel{neg}, CheckError);
  FaultConfig window;
  window.down_windows = {{2.0, 1.0}};
  EXPECT_THROW(FaultModel{window}, CheckError);
}

}  // namespace
}  // namespace hack
