#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/sum_cache.h"

namespace hack {
namespace {

QuantizedMatrix make_quantized(std::size_t rows, std::size_t cols,
                               std::size_t pi, QuantAxis axis, Rng& rng,
                               bool ragged = false) {
  const Matrix m = Matrix::random_gaussian(rows, cols, rng);
  Rng qrng = rng.fork();
  return quantize(m, 2, pi, axis, Rounding::kStochastic, qrng, ragged);
}

std::int32_t naive_sum(const QuantizedMatrix& q, std::size_t outer,
                       std::size_t group) {
  const PartitionScheme scheme(q.inner(), q.pi, true);
  std::int32_t acc = 0;
  for (std::size_t z = scheme.group_begin(group); z < scheme.group_end(group);
       ++z) {
    acc += q.axis == QuantAxis::kRow ? q.code_at(outer, z) : q.code_at(z, outer);
  }
  return acc;
}

TEST(SumCache, MatchesNaiveRowAxis) {
  Rng rng(1);
  const QuantizedMatrix q = make_quantized(6, 64, 32, QuantAxis::kRow, rng);
  const SumCache cache = SumCache::build(q);
  EXPECT_EQ(cache.outer(), 6u);
  EXPECT_EQ(cache.groups(), 2u);
  for (std::size_t o = 0; o < 6; ++o) {
    for (std::size_t g = 0; g < 2; ++g) {
      EXPECT_EQ(cache.sum(o, g), naive_sum(q, o, g));
    }
  }
}

TEST(SumCache, MatchesNaiveColAxis) {
  Rng rng(2);
  const QuantizedMatrix q = make_quantized(96, 5, 32, QuantAxis::kCol, rng);
  const SumCache cache = SumCache::build(q);
  EXPECT_EQ(cache.outer(), 5u);
  EXPECT_EQ(cache.groups(), 3u);
  for (std::size_t o = 0; o < 5; ++o) {
    for (std::size_t g = 0; g < 3; ++g) {
      EXPECT_EQ(cache.sum(o, g), naive_sum(q, o, g));
    }
  }
}

TEST(SumCache, AppendRowsMatchesRebuild) {
  Rng rng(3);
  QuantizedMatrix q = make_quantized(4, 64, 64, QuantAxis::kRow, rng);
  SumCache cache = SumCache::build(q);
  const QuantizedMatrix extra = make_quantized(3, 64, 64, QuantAxis::kRow, rng);
  cache.append_rows(extra);
  append_rows(q, extra);
  const SumCache rebuilt = SumCache::build(q);
  EXPECT_EQ(cache.outer(), rebuilt.outer());
  for (std::size_t o = 0; o < cache.outer(); ++o) {
    EXPECT_EQ(cache.sum(o, 0), rebuilt.sum(o, 0));
  }
}

TEST(SumCache, AppendInnerGroupsMatchesRebuild) {
  Rng rng(4);
  QuantizedMatrix q = make_quantized(64, 4, 32, QuantAxis::kCol, rng);
  SumCache cache = SumCache::build(q);
  const QuantizedMatrix extra = make_quantized(32, 4, 32, QuantAxis::kCol, rng);
  cache.append_inner_groups(extra);
  append_inner_groups(q, extra);
  const SumCache rebuilt = SumCache::build(q);
  EXPECT_EQ(cache.groups(), rebuilt.groups());
  for (std::size_t o = 0; o < cache.outer(); ++o) {
    for (std::size_t g = 0; g < cache.groups(); ++g) {
      EXPECT_EQ(cache.sum(o, g), rebuilt.sum(o, g)) << o << "," << g;
    }
  }
}

TEST(SumCache, StorageIsInt16PerEntry) {
  Rng rng(5);
  const QuantizedMatrix q = make_quantized(8, 128, 64, QuantAxis::kRow, rng);
  const SumCache cache = SumCache::build(q);
  // 8 rows * 2 groups * 2 bytes.
  EXPECT_EQ(cache.storage_bytes(), 32u);
}

TEST(SumCache, MaxPossibleSumFitsInt16) {
  // Π=128 of 2-bit codes: max sum = 3*128 = 384; for 8-bit Π=64: 255*64 =
  // 16320 < 32767. Both within the INT16 model (§6).
  Matrix m(1, 128, 100.0f);
  for (std::size_t c = 0; c < 128; ++c) m(0, c) = c % 2 ? 100.0f : -100.0f;
  Rng qrng(6);
  const QuantizedMatrix q =
      quantize(m, 8, 64, QuantAxis::kRow, Rounding::kNearest, qrng);
  EXPECT_NO_THROW(SumCache::build(q));
}

TEST(SumCache, IndexChecks) {
  Rng rng(7);
  const QuantizedMatrix q = make_quantized(2, 32, 32, QuantAxis::kRow, rng);
  const SumCache cache = SumCache::build(q);
  EXPECT_THROW(cache.sum(2, 0), CheckError);
  EXPECT_THROW(cache.sum(0, 1), CheckError);
}

TEST(SumCache, RaggedTailGroups) {
  Rng rng(8);
  const QuantizedMatrix q =
      make_quantized(5, 100, 32, QuantAxis::kRow, rng, /*ragged=*/true);
  const SumCache cache = SumCache::build(q);
  EXPECT_EQ(cache.groups(), 4u);
  for (std::size_t o = 0; o < 5; ++o) {
    EXPECT_EQ(cache.sum(o, 3), naive_sum(q, o, 3));
  }
}

}  // namespace
}  // namespace hack
