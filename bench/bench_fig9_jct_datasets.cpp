// Figure 9: average JCT across requests for Llama-3.1 70B with varying
// datasets (A10G prefill), four methods. The paper's headline orderings:
// HACK < CacheGen/KVQuant < Baseline, with larger HACK gains on the
// long-sequence datasets (arXiv, Cocktail).
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  const Method methods[] = {Method::kBaseline, Method::kCacheGen,
                            Method::kKvQuant, Method::kHack};
  Table t("Fig 9: avg JCT (s) for L across datasets (A10G prefill)");
  t.header({"dataset", "Baseline", "CacheGen", "KVQuant", "HACK",
            "HACK_vs_base", "HACK_vs_CacheGen", "HACK_vs_KVQuant"});
  for (const std::string& dataset : dataset_names()) {
    double jct[4] = {};
    for (int m = 0; m < 4; ++m) {
      jct[m] =
          run(standard_cluster("A10G", "L", dataset, methods[m])).avg_jct_s;
    }
    t.row({dataset, fmt(jct[0], 1), fmt(jct[1], 1), fmt(jct[2], 1),
           fmt(jct[3], 1), pct(1.0 - jct[3] / jct[0]),
           pct(1.0 - jct[3] / jct[1]), pct(1.0 - jct[3] / jct[2])});
  }
  t.print();
  return 0;
}
