// Quantized KV cache for whole sequences — HACK's modified vLLM cache (§6).
//
// Holds one HackKvState per (layer, kv-head) for each sequence, tracks the
// exact byte footprint of packed codes, FP16 (m, s) metadata, INT16 sum
// values (SE) and the FP16 last-block-of-V buffer (RQE), and enforces a GPU
// byte budget. When admission would exceed the budget the sequence is
// parked in "CPU memory" instead (the prefill-side swap of §4/Fig. 5 step 6)
// until capacity frees up.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "attention/hack_attention.h"
#include "kvcache/paged_cache.h"

namespace hack {

struct QuantizedCacheUsage {
  std::size_t packed_kv_bytes = 0;
  std::size_t sum_cache_bytes = 0;
  std::size_t fp16_tail_bytes = 0;
  std::size_t total() const {
    return packed_kv_bytes + sum_cache_bytes + fp16_tail_bytes;
  }
};

class QuantizedKvCache {
 public:
  QuantizedKvCache(std::size_t layers, std::size_t kv_heads,
                   std::size_t d_head, HackAttentionConfig config,
                   std::size_t gpu_byte_budget);

  std::size_t layers() const { return layers_; }
  std::size_t kv_heads() const { return kv_heads_; }

  // Admits a sequence to GPU memory; false -> caller must keep it on CPU.
  bool admit(SeqId seq);

  // True if the sequence is resident on the GPU.
  bool resident(SeqId seq) const { return gpu_.contains(seq); }

  // Access to the per-(layer, head) state of a resident sequence.
  HackKvState& state(SeqId seq, std::size_t layer, std::size_t head);

  // Appends one token's K/V across all layers/heads.
  // k/v are [layers * kv_heads] matrices of shape [n, d_head].
  void append_tokens(SeqId seq, const std::vector<Matrix>& k,
                     const std::vector<Matrix>& v, Rng& rng,
                     HackAttnStats* stats = nullptr);

  void drop(SeqId seq);

  QuantizedCacheUsage usage(SeqId seq) const;
  QuantizedCacheUsage total_usage() const;
  std::size_t gpu_bytes_in_use() const { return total_usage().total(); }
  std::size_t budget() const { return budget_; }

 private:
  using States = std::vector<HackKvState>;  // layers * kv_heads

  std::size_t index(std::size_t layer, std::size_t head) const {
    HACK_CHECK(layer < layers_ && head < kv_heads_, "layer/head out of range");
    return layer * kv_heads_ + head;
  }

  std::size_t layers_;
  std::size_t kv_heads_;
  std::size_t d_head_;
  HackAttentionConfig config_;
  std::size_t budget_;
  std::unordered_map<SeqId, States> gpu_;
};

}  // namespace hack
