// Disaggregated serving scenario: Llama-3.1 70B serving a long-context
// information-retrieval workload (Cocktail), prefill on an A10G fleet and
// decode on A100s — the paper's default testbed (§7.1).
//
// Runs the discrete-event cluster simulator once per method and prints the
// JCT decomposition, showing where HACK's wins come from: compressed KV
// transfers, INT8 prefill, and the eliminated per-iteration dequantization.
//
// Build & run:  ./build/examples/disaggregated_serving
#include <cstdio>

#include "cluster/simulator.h"
#include "metrics/report.h"

using namespace hack;

int main() {
  std::printf("Disaggregated serving: Llama-3.1 70B + Cocktail\n");
  std::printf("prefill: 5 A10G replicas (TP4/PP2), decode: 4 A100 replicas "
              "(TP4)\n");

  Table t("JCT decomposition by method");
  t.header({"method", "jct_s", "prefill_s", "comm_s", "dequant/approx_s",
            "decode_s", "peak_mem", "swapped"});
  for (const Method method :
       {Method::kBaseline, Method::kCacheGen, Method::kKvQuant,
        Method::kHack}) {
    ClusterConfig config =
        standard_cluster("A10G", "L", "Cocktail", method);
    config.num_requests = 40;
    config.seed = 11;
    const SimSummary s = run_cluster_sim(config);
    t.row({method_name(method), fmt(s.avg_jct_s, 1), fmt(s.mean_prefill_s, 1),
           fmt(s.mean_comm_s, 2), fmt(s.mean_dequant_or_approx_s, 2),
           fmt(s.mean_decode_s, 1), pct(s.peak_decode_mem_fraction),
           std::to_string(s.swapped_requests)});
  }
  t.print();

  // The pipelining counterpoint (§2.1): overlap helps until decode memory
  // runs out, at which point KV must park in prefill CPU memory.
  Table p("Pipelining at increasing load (baseline)");
  p.header({"rps", "comm_ratio", "swapped"});
  for (const double rps : {0.06, 0.12, 0.18, 0.24}) {
    ClusterConfig config =
        standard_cluster("A10G", "L", "Cocktail", Method::kBaseline, rps);
    config.pipelining = true;
    config.num_requests = 40;
    config.seed = 11;
    config.activation_reserve_gb = 120.0;
    const SimSummary s = run_cluster_sim(config);
    p.row({fmt(rps, 2), pct(s.comm_ratio), std::to_string(s.swapped_requests)});
  }
  p.print();
  return 0;
}
