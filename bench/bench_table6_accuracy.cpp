// Table 6: accuracy performance of Baseline / HACK(Π=32,64,128) /
// CacheGen / KVQuant across models and datasets.
//
// Substitution (DESIGN.md): the paper scores real LLMs on real datasets
// (ROUGE-1 for arXiv, Edit Similarity for HumanEval, task accuracy
// otherwise). Here the mechanism under test — KV quantization error flowing
// through attention into generated tokens — runs end-to-end in the tiny
// transformer. Five weight seeds stand in for the five models (M/P/Y/L/F);
// each method is scored by teacher-forced token agreement against the
// exact-arithmetic model (see accuracy_util.h), and the agreement is
// projected onto the paper's baseline score for that cell so numbers are
// directly comparable to the published table.
#include <map>

#include "accuracy_util.h"
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

namespace {

struct Cell {
  std::string dataset;
  std::size_t prompt_len;
  std::size_t gen_len;
};

const Cell kCells[] = {
    {"IMDb", 96, 20},
    {"arXiv", 256, 32},
    {"Cocktail", 384, 28},
    {"HumanEval", 80, 32},
};

// Paper Table 6 baseline scores for (dataset, model-letter).
const std::map<std::string, std::map<std::string, double>> kPaperBaseline = {
    {"IMDb",
     {{"M", 84.81}, {"P", 87.84}, {"Y", 93.87}, {"L", 95.73}, {"F", 85.63}}},
    {"arXiv",
     {{"M", 79.40}, {"P", 86.35}, {"Y", 87.75}, {"L", 83.79}, {"F", 79.42}}},
    {"Cocktail",
     {{"M", 75.18}, {"P", 83.92}, {"Y", 85.25}, {"L", 86.39}}},
    {"HumanEval",
     {{"M", 89.37}, {"P", 91.62}, {"Y", 90.79}, {"L", 92.45}, {"F", 85.21}}},
};

BackendFactory backend_for(const std::string& method, std::uint64_t seed) {
  HackAttentionConfig hc;
  if (method == "Baseline") return make_fp16_backend();
  if (method == "HACK(32)") {
    hc.pi = 32;
    return make_hack_backend(hc, seed);
  }
  if (method == "HACK(64)") {
    hc.pi = 64;
    return make_hack_backend(hc, seed);
  }
  if (method == "HACK(128)") {
    hc.pi = 128;
    return make_hack_backend(hc, seed);
  }
  if (method == "CacheGen") {
    return make_codec_backend(make_codec("cachegen"), seed);
  }
  return make_codec_backend(make_codec("kvquant"), seed);
}

}  // namespace

int main() {
  const std::vector<std::string> methods = {"Baseline", "HACK(32)", "HACK(64)",
                                            "CacheGen", "KVQuant",
                                            "HACK(128)"};
  const std::vector<std::pair<std::string, std::uint64_t>> models = {
      {"M", 11}, {"P", 22}, {"Y", 33}, {"L", 44}, {"F", 55}};
  constexpr int kPrompts = 2;  // averaged per cell

  for (const Cell& cell : kCells) {
    Table raw("Table 6 raw [" + cell.dataset +
              "]: teacher-forced token agreement vs FP32");
    Table paper("Table 6 projected [" + cell.dataset +
                "]: paper-scale accuracy");
    std::vector<std::string> header = {"method"};
    for (const auto& [letter, seed] : models) {
      if (kPaperBaseline.at(cell.dataset).contains(letter)) {
        header.push_back(letter);
      }
    }
    raw.header(header);
    paper.header(header);

    // Reference continuations, computed once per (model, prompt).
    SyntheticCorpus corpus({.vocab = 256}, 4242);
    std::map<std::string, std::vector<std::vector<int>>> prompts_by_model;
    std::map<std::string, std::vector<std::vector<int>>> refs_by_model;
    for (const auto& [letter, seed] : models) {
      if (!kPaperBaseline.at(cell.dataset).contains(letter)) continue;
      const TinyConfig cfg = accuracy_model_config(seed);
      for (int p = 0; p < kPrompts; ++p) {
        auto prompt =
            corpus.prompt(static_cast<std::size_t>(p), cell.prompt_len);
        refs_by_model[letter].push_back(
            reference_tokens(cfg, prompt, cell.gen_len));
        prompts_by_model[letter].push_back(std::move(prompt));
      }
    }

    for (const std::string& method : methods) {
      std::vector<std::string> raw_row = {method};
      std::vector<std::string> paper_row = {method};
      for (const auto& [letter, seed] : models) {
        if (!kPaperBaseline.at(cell.dataset).contains(letter)) continue;
        const TinyConfig cfg = accuracy_model_config(seed);
        double agreement = 0.0;
        for (int p = 0; p < kPrompts; ++p) {
          agreement += token_agreement(cfg, backend_for(method, 1000 + seed),
                                       prompts_by_model[letter][p],
                                       refs_by_model[letter][p]) /
                       kPrompts;
        }
        raw_row.push_back(pct(agreement));
        const double base = kPaperBaseline.at(cell.dataset).at(letter);
        paper_row.push_back(fmt(base * agreement, 2) + "%");
      }
      raw.row(raw_row);
      paper.row(paper_row);
    }
    raw.print();
    paper.print();
  }
  return 0;
}
