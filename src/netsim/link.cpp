#include "netsim/link.h"

#include <algorithm>

namespace hack {

Nic::Nic(double gbps, double latency_s) : gbps_(gbps), latency_s_(latency_s) {
  HACK_CHECK(gbps > 0.0, "NIC bandwidth must be positive");
  HACK_CHECK(latency_s >= 0.0, "negative latency");
}

Nic::Booking Nic::book(double ready_time, double bytes) {
  HACK_CHECK(bytes >= 0.0, "negative transfer size");
  const double start = std::max(ready_time, busy_until_);
  const double duration = latency_s_ + bytes / bytes_per_second();
  busy_until_ = start + duration;
  total_bytes_ += bytes;
  return {start, busy_until_};
}

}  // namespace hack
