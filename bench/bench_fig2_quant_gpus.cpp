// Figure 2: CacheGen / KVQuant time ratios across prefill GPUs
// (Llama-3.1 70B, Cocktail). The new column vs Fig. 1a is the per-iteration
// KV dequantization share the codecs introduce.
#include "bench_util.h"

using namespace hack;
using namespace hack::bench;

int main() {
  for (const Method method : {Method::kCacheGen, Method::kKvQuant}) {
    Table t("Fig 2 (" + method_name(method) +
            "): time ratios across prefill GPUs (L, Cocktail)");
    t.header({"gpu", "prefill", "comm", "dequant", "decode", "avg_jct_s"});
    for (const std::string& gpu : prefill_gpus()) {
      const SimSummary s = run(standard_cluster(gpu, "L", "Cocktail", method));
      t.row({gpu, pct(s.prefill_ratio), pct(s.comm_ratio),
             pct(s.dequant_or_approx_ratio), pct(s.decode_ratio),
             fmt(s.avg_jct_s, 1)});
    }
    t.print();
  }

  // The comparison the paper draws from Fig. 1a vs Fig. 2: how much of the
  // communication share the codecs remove on each GPU tier.
  Table t("Fig 2 summary: comm-ratio reduction vs baseline");
  t.header({"gpu", "baseline_comm", "cachegen_comm", "kvquant_comm"});
  for (const std::string& gpu : prefill_gpus()) {
    const SimSummary base =
        run(standard_cluster(gpu, "L", "Cocktail", Method::kBaseline));
    const SimSummary cg =
        run(standard_cluster(gpu, "L", "Cocktail", Method::kCacheGen));
    const SimSummary kvq =
        run(standard_cluster(gpu, "L", "Cocktail", Method::kKvQuant));
    t.row({gpu, pct(base.comm_ratio), pct(cg.comm_ratio),
           pct(kvq.comm_ratio)});
  }
  t.print();
  return 0;
}
