// Reusable fixed-size thread pool with static-partition parallel_for.
//
// Built for the HQ-GEMM engine but generic: any subsystem that wants to split
// an index range across cores can use it. Design choices:
//   - Fixed worker count, created once; parallel loops are frequent and short,
//     so thread churn per call would dominate.
//   - parallel_for splits [0, n) into contiguous chunks (static partitioning;
//     the kernels it serves have uniform per-index cost) and the calling
//     thread works alongside the pool, so a pool of W workers gives W + 1
//     lanes and `ThreadPool(0)` degenerates to plain serial execution.
//   - Chunk decomposition depends only on the requested lane count, never on
//     how many workers happen to exist, so results of floating-point loops
//     are reproducible across machines with different core counts.
//   - The first exception thrown by any chunk is rethrown on the caller after
//     all chunks finish.
//
// The process-global pool (`ThreadPool::global()`) sizes itself from the
// HACK_NUM_THREADS environment variable when set, else from
// std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hack {

// Maps the public `threads` request convention used across the library
// (0 = auto, 1 = serial on the caller, N = at most N concurrent chunks) onto
// a parallel_for chunk count. `auto_chunks` is what "auto" means at the call
// site: the pool's lane count for static band splits, or one chunk per item
// for dynamically claimed work lists.
inline std::size_t chunks_for_request(int threads, std::size_t n,
                                      std::size_t auto_chunks) {
  return threads <= 0 ? std::min(n, auto_chunks)
                      : std::min(n, static_cast<std::size_t>(threads));
}

// Runs fn(i) for every i in [0, n) on the global pool, following the public
// `threads` request convention (0 = auto with one dynamically claimed chunk
// per index, 1 = serial on the caller, N = at most N concurrent chunks).
// The shared workhorse behind per-head attention tasks and per-sequence
// serving-engine lanes: every index is an independent work item, so
// scheduling cannot change results, and bodies may re-enter parallel_for
// (the re-entrancy guard runs nested loops inline).
void parallel_for_each_index(std::size_t n, int threads,
                             const std::function<void(std::size_t)>& fn);

class ThreadPool {
 public:
  // Spawns `workers` background threads. 0 is valid: every parallel_for then
  // runs inline on the caller.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Background worker threads (excludes the caller).
  std::size_t workers() const { return threads_.size(); }
  // Execution lanes available to parallel_for: workers + the calling thread.
  std::size_t lanes() const { return threads_.size() + 1; }

  // The body of a parallel loop: processes indices [begin, end).
  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;

  // Splits [0, n) into min(chunks, n) contiguous ranges of near-equal size
  // and runs `fn` once per range. The caller participates; workers pick up
  // the remaining chunks. Blocks until every chunk is done; if any chunk
  // threw, the first exception is rethrown here. `chunks == 0` means "use
  // all lanes".
  void parallel_for(std::size_t n, std::size_t chunks, const RangeFn& fn);

  // Convenience overload: one chunk per lane.
  void parallel_for(std::size_t n, const RangeFn& fn) {
    parallel_for(n, lanes(), fn);
  }

  // Re-entrancy guard state. A parallel_for issued from inside this pool's
  // own machinery (a worker running a chunk, or the dispatching caller) runs
  // all its chunks inline on the current thread instead of deadlocking on
  // the dispatch lock — with the same chunk decomposition, so results do not
  // change. The serving engine leans on this: a per-sequence step task may
  // call quantize/matmul, which themselves try to go parallel.
  //
  // current() is the pool whose parallel_for machinery this thread is
  // executing inside (nullptr outside any); in_parallel_region() asks the
  // same of a specific pool.
  static const ThreadPool* current();
  bool in_parallel_region() const { return current() == this; }

  // Process-wide shared pool, created on first use with
  // default_thread_count() - 1 workers.
  static ThreadPool& global();

  // Lane count for the global pool: HACK_NUM_THREADS when set and valid,
  // else hardware_concurrency(), never less than 1.
  static std::size_t default_thread_count();

  // Parses a HACK_NUM_THREADS-style override. Returns 0 when `value` is
  // null, empty, non-numeric, or out of range — meaning "no override".
  // Exposed for tests.
  static std::size_t parse_thread_override(const char* value);

 private:
  struct Batch;  // one parallel_for dispatch

  void worker_loop();
  static void run_chunks(Batch& batch);

  std::vector<std::thread> threads_;

  std::mutex dispatch_mu_;  // serializes parallel_for dispatches on this pool

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Batch> batch_;  // most recently dispatched batch
  std::size_t generation_ = 0;    // bumped per dispatch so workers re-wake
  bool stop_ = false;
};

}  // namespace hack
