#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace hack {

double percentile(std::vector<double> samples, double q) {
  HACK_CHECK(!samples.empty(), "percentile of empty sample set");
  HACK_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

SampleStats compute_stats(std::vector<double> samples) {
  HACK_CHECK(!samples.empty(), "stats of empty sample set");
  SampleStats s;
  s.count = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (const double v : samples) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  return s;
}

}  // namespace hack
