#include <gtest/gtest.h>

#include "kvcache/block_allocator.h"

namespace hack {
namespace {

TEST(BlockAllocator, AllocateUntilExhausted) {
  BlockAllocator alloc(4, 1024);
  std::vector<BlockId> ids;
  for (int i = 0; i < 4; ++i) {
    const BlockId id = alloc.allocate();
    ASSERT_NE(id, kInvalidBlock);
    ids.push_back(id);
  }
  EXPECT_EQ(alloc.allocate(), kInvalidBlock);
  EXPECT_EQ(alloc.blocks_in_use(), 4u);
  EXPECT_EQ(alloc.bytes_in_use(), 4096u);
}

TEST(BlockAllocator, DistinctIds) {
  BlockAllocator alloc(8, 64);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 8; ++i) {
    const BlockId id = alloc.allocate();
    ASSERT_LT(id, 8u);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(BlockAllocator, ReleaseReturnsToPool) {
  BlockAllocator alloc(2, 64);
  const BlockId a = alloc.allocate();
  const BlockId b = alloc.allocate();
  EXPECT_EQ(alloc.allocate(), kInvalidBlock);
  alloc.release(a);
  const BlockId c = alloc.allocate();
  EXPECT_NE(c, kInvalidBlock);
  EXPECT_NE(c, b);
}

TEST(BlockAllocator, RefCountingSharesBlocks) {
  BlockAllocator alloc(2, 64);
  const BlockId a = alloc.allocate();
  alloc.add_ref(a);
  EXPECT_EQ(alloc.ref_count(a), 2);
  alloc.release(a);
  EXPECT_EQ(alloc.ref_count(a), 1);
  EXPECT_EQ(alloc.blocks_in_use(), 1u);  // still held
  alloc.release(a);
  EXPECT_EQ(alloc.blocks_in_use(), 0u);
}

TEST(BlockAllocator, PeakTracksHighWater) {
  BlockAllocator alloc(4, 64);
  const BlockId a = alloc.allocate();
  const BlockId b = alloc.allocate();
  const BlockId c = alloc.allocate();
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.peak_blocks_in_use(), 3u);
  alloc.release(a);
  EXPECT_EQ(alloc.peak_blocks_in_use(), 3u);
}

TEST(BlockAllocator, MisuseThrows) {
  BlockAllocator alloc(2, 64);
  EXPECT_THROW(alloc.release(0), CheckError);     // not allocated
  EXPECT_THROW(alloc.add_ref(1), CheckError);     // not allocated
  EXPECT_THROW(alloc.ref_count(7), CheckError);   // out of range
  const BlockId a = alloc.allocate();
  alloc.release(a);
  EXPECT_THROW(alloc.release(a), CheckError);     // double free
}

TEST(BlockAllocator, WatermarkTracksMinimumFree) {
  BlockAllocator alloc(4, 64);
  EXPECT_EQ(alloc.min_free_watermark(), 4u);
  const BlockId a = alloc.allocate();
  const BlockId b = alloc.allocate();
  const BlockId c = alloc.allocate();
  EXPECT_EQ(alloc.min_free_watermark(), 1u);
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
  // Releases never raise the watermark back up.
  EXPECT_EQ(alloc.min_free_watermark(), 1u);
  (void)alloc.allocate();
  EXPECT_EQ(alloc.min_free_watermark(), 1u);
}

TEST(BlockAllocator, FailedAllocationsAccumulate) {
  BlockAllocator alloc(2, 64);
  EXPECT_EQ(alloc.failed_allocations(), 0u);
  (void)alloc.allocate();
  (void)alloc.allocate();
  EXPECT_EQ(alloc.allocate(), kInvalidBlock);
  EXPECT_EQ(alloc.allocate(), kInvalidBlock);
  EXPECT_EQ(alloc.failed_allocations(), 2u);
  EXPECT_EQ(alloc.min_free_watermark(), 0u);
}

TEST(BlockAllocator, CanAllocatePredicate) {
  BlockAllocator alloc(3, 64);
  EXPECT_TRUE(alloc.can_allocate(3));
  EXPECT_FALSE(alloc.can_allocate(4));
  (void)alloc.allocate();
  EXPECT_TRUE(alloc.can_allocate(2));
  EXPECT_FALSE(alloc.can_allocate(3));
}

}  // namespace
}  // namespace hack
